(* A rolling upgrade under live traffic.

   Three interchangeable key-value replicas (s1 s2 s3) serve a seeded
   open-loop request stream. A rolling wave upgrades them one at a
   time to the v2 build: each member drains (the bus reroutes its
   traffic to the siblings), is replaced through the journaled script,
   and holds the slot as a canary until the SLO gates pass. Then the
   same machinery meets a deliberately-bad build — every canary fails
   its error-rate gate, is rolled back, and the wave aborts with the
   fleet back on v2, no request lost.

   Run with: dune exec examples/rolling_upgrade.exe *)

module Bus = Dr_bus.Bus
module Kv = Dr_workloads.Kvstore
module Rolling = Dr_reconfig.Rolling

let show_report r = Format.printf "%a@." Rolling.pp_report r

let show_stats (s : Kv.Loadgen.stats) =
  Printf.printf
    "  traffic: %d sent, %d answered, %d wrong, %d shed, %d in flight\n"
    s.st_sent s.st_answered s.st_wrong s.st_shed s.st_inflight

let () =
  let n = 3 in
  let system = Kv.Replica.load ~n in
  let bus = Kv.Replica.start ~n system in
  let group = Kv.Replica.group ~n in
  let roster = Hashtbl.create 4 in
  List.iter (fun (slot, inst) -> Hashtbl.replace roster slot inst) group;
  let lg =
    Kv.Loadgen.start bus
      { Kv.Loadgen.default_conf with lc_rate = 6.0; lc_duration = 300.0 }
      ~slots:group
  in
  Bus.run ~until:10.0 bus;

  print_endline "rolling the fleet to the v2 build...";
  let cfg =
    { (Rolling.default_config ~target:"rstorev2") with
      rc_drain_timeout = 6.0;
      rc_canary_window = 8.0 }
  in
  let report =
    match
      Rolling.run bus cfg ~group
        ~on_retarget:(fun ~slot ~instance ->
          Hashtbl.replace roster slot instance;
          Kv.Loadgen.retarget lg ~slot ~instance)
        ()
    with
    | Ok r -> r
    | Error e -> failwith e
  in
  show_report report;
  show_stats (Kv.Loadgen.stats lg);

  print_endline "\nnow rolling to a bad build (every canary must fail)...";
  let group2 =
    List.map (fun (slot, _) -> (slot, Hashtbl.find roster slot)) group
  in
  let report2 =
    match
      Rolling.run bus
        { cfg with rc_target = "rstorebad"; rc_retries = 2; rc_backoff = 1.0 }
        ~group:group2
        ~on_retarget:(fun ~slot ~instance ->
          Hashtbl.replace roster slot instance;
          Kv.Loadgen.retarget lg ~slot ~instance)
        ()
    with
    | Ok r -> r
    | Error e -> failwith e
  in
  show_report report2;

  Kv.Loadgen.stop lg;
  Bus.run ~until:(Bus.now bus +. 20.0) bus;
  let s = Kv.Loadgen.stats lg in
  show_stats s;
  List.iter
    (fun (slot, _) ->
      let inst = Hashtbl.find roster slot in
      Printf.printf "  %s -> %s (%s)\n" slot inst
        (Option.value ~default:"?" (Bus.instance_module bus ~instance:inst)))
    group;
  if s.st_inflight <> 0 then failwith "requests lost";
  if s.st_sent <> s.st_answered + s.st_shed then failwith "accounting broken";
  print_endline "\ndone: two waves, zero lost requests."
