(* Heterogeneous migration with heap state.

   A key-value store keeps its table in a heap-allocated array reached
   through a global (plus an interior pointer — the paper's symbolic
   pointer translation case). We migrate the store across three hosts
   with different architectures:

     hostA: x86_64  (little-endian, 64-bit)
     hostC: sparc32 (big-endian,    32-bit)
     hostB: arm32   (little-endian, 32-bit)

   At each hop the state image is re-encoded through the abstract format
   (§1.2): native(src) → abstract → native(dst). Values written before
   any hop remain readable after every hop.

   Run with: dune exec examples/hetero_kv.exe *)

module Bus = Dr_bus.Bus
module Kv = Dr_workloads.Kvstore

let wait_for_replies bus k =
  Bus.run_while bus ~max_events:3_000_000 (fun () ->
      List.length (Kv.client_got bus) < k)

let report bus label =
  let got = Kv.client_got bus in
  let correct = List.for_all (fun (k, v) -> v = k * 7) got in
  Printf.printf "%-28s %2d replies, all correct: %b (store on %s)\n" label
    (List.length got) correct
    (Option.value ~default:"?"
       (List.find_map
          (fun inst ->
            if inst <> "client" then Bus.instance_host bus ~instance:inst
            else None)
          (Bus.instances bus)))

let () =
  let system = Kv.load () in
  let bus = Kv.start system in
  wait_for_replies bus 3;
  report bus "initial (x86_64):";
  (match Dynrecon.System.migrate bus ~instance:"store" ~new_instance:"store_b" ~new_host:"hostC" with
  | Ok _ -> ()
  | Error e -> failwith ("hop 1: " ^ e));
  wait_for_replies bus 6;
  report bus "after hop to sparc32:";
  (match Dynrecon.System.migrate bus ~instance:"store_b" ~new_instance:"store_c" ~new_host:"hostB" with
  | Ok _ -> ()
  | Error e -> failwith ("hop 2: " ^ e));
  wait_for_replies bus 9;
  report bus "after hop to arm32:";
  print_endline "\nstate-image traffic:";
  List.iter
    (fun (e : Dr_sim.Trace.entry) ->
      if e.category = "state" then Printf.printf "  [%7.1f] %s\n" e.time e.detail)
    (Dr_sim.Trace.entries (Bus.trace bus));
  (* demonstrate the word-size hazard: a 64-bit-only value cannot move to
     a 32-bit architecture *)
  print_endline "\nword-size hazard (expected failure):";
  let oversized =
    Dr_state.Image.make ~source_module:"store"
      ~records:
        [ { Dr_state.Image.location = 1;
            values = [ Dr_state.Value.Vint 0x1_0000_0000_0 ] } ]
      ~heap:[]
  in
  match
    Dr_reconfig.Primitives.translate_image bus ~src_host:"hostA" ~dst_host:"hostC"
      oversized
  with
  | Error e -> Printf.printf "  translation refused: %s\n" e
  | Ok _ -> print_endline "  unexpectedly succeeded!"
