module Prng = Dr_sim.Prng
module Pqueue = Dr_sim.Pqueue
module Engine = Dr_sim.Engine
module Trace = Dr_sim.Trace

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 in
  let b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create ~seed:1 in
  let b = Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b)) then
      differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_prng_int_bounds () =
  let t = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int t 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_prng_float_bounds () =
  let t = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.float t 3.5 in
    if v < 0.0 || v >= 3.5 then Alcotest.failf "out of range: %f" v
  done

let test_prng_int_rejects_nonpositive () =
  let t = Prng.create ~seed:7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0))

let test_prng_copy_independent () =
  let a = Prng.create ~seed:9 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b)

let test_prng_split () =
  let a = Prng.create ~seed:3 in
  let b = Prng.split a in
  let xa = Prng.next_int64 a and xb = Prng.next_int64 b in
  Alcotest.(check bool) "split stream differs" true (not (Int64.equal xa xb))

let test_pqueue_orders_by_time () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:3.0 ~seq:0 "c";
  Pqueue.push q ~time:1.0 ~seq:1 "a";
  Pqueue.push q ~time:2.0 ~seq:2 "b";
  let order = List.init 3 (fun _ -> match Pqueue.pop q with Some (_, _, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order

let test_pqueue_ties_by_seq () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:1.0 ~seq:5 "second";
  Pqueue.push q ~time:1.0 ~seq:2 "first";
  let first = match Pqueue.pop q with Some (_, _, x) -> x | None -> "?" in
  Alcotest.(check string) "seq breaks tie" "first" first

let test_pqueue_empty () =
  let q : int Pqueue.t = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek none" true (Pqueue.peek_time q = None)

let prop_pqueue_sorts =
  Support.qcheck "pqueue pops sorted" QCheck2.Gen.(list (pair (float_bound_inclusive 1000.0) small_nat))
    (fun entries ->
      let q = Pqueue.create () in
      List.iteri (fun i (time, payload) -> Pqueue.push q ~time ~seq:i payload) entries;
      let rec drain acc =
        match Pqueue.pop q with
        | Some (time, _, _) -> drain (time :: acc)
        | None -> List.rev acc
      in
      let times = drain [] in
      List.sort compare times = times)

let test_pqueue_clear () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:1.0 ~seq:0 "a";
  Pqueue.push q ~time:2.0 ~seq:1 "b";
  Pqueue.clear q;
  Alcotest.(check bool) "empty after clear" true (Pqueue.is_empty q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop q = None);
  Pqueue.push q ~time:3.0 ~seq:2 "c";
  Alcotest.(check bool) "usable after clear" true
    (match Pqueue.pop q with Some (_, _, "c") -> true | _ -> false)

let test_pqueue_releases_popped () =
  (* regression: popped entries used to linger in the heap array's spare
     slots, retaining their payloads (event closures) indefinitely *)
  let q = Pqueue.create () in
  let w = Weak.create 2 in
  let fill () =
    for i = 0 to 9 do
      let payload = ref i in
      if i = 0 then Weak.set w 0 (Some payload);
      if i = 9 then Weak.set w 1 (Some payload);
      Pqueue.push q ~time:(float_of_int i) ~seq:i payload
    done
  in
  fill ();
  for _ = 1 to 10 do ignore (Pqueue.pop q) done;
  Gc.full_major ();
  Alcotest.(check bool) "popped payloads not retained by the heap array" true
    (Weak.get w 0 = None && Weak.get w 1 = None)

let test_pqueue_clear_releases () =
  let q = Pqueue.create () in
  let w = Weak.create 1 in
  let fill () =
    let payload = ref 0 in
    Weak.set w 0 (Some payload);
    Pqueue.push q ~time:1.0 ~seq:0 payload
  in
  fill ();
  Pqueue.clear q;
  Gc.full_major ();
  Alcotest.(check bool) "cleared payloads not retained" true (Weak.get w 0 = None)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun () -> log := "late" :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := "early" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "early"; "late" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 2.0 (Engine.now e)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let hits = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      hits := Engine.now e :: !hits;
      Engine.schedule e ~delay:1.5 (fun () -> hits := Engine.now e :: !hits));
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "times" [ 1.0; 2.5 ] (List.rev !hits)

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count)
  done;
  Engine.run ~until:5.0 e;
  Alcotest.(check int) "only first five" 5 !count;
  Alcotest.(check int) "five pending" 5 (Engine.pending e)

let test_engine_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count)
  done;
  Engine.run ~max_events:3 e;
  Alcotest.(check int) "three fired" 3 !count

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  Engine.schedule e ~delay:5.0 (fun () ->
      Engine.schedule e ~delay:(-10.0) (fun () ->
          Alcotest.(check (float 1e-9)) "clamped to now" 5.0 (Engine.now e)));
  Engine.run e

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo within a timestamp" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_trace_records_and_filters () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 ~category:"a" ~detail:"one";
  Trace.record t ~time:2.0 ~category:"b" ~detail:"two";
  Trace.record t ~time:3.0 ~category:"a" ~detail:"three";
  Alcotest.(check int) "length" 3 (Trace.length t);
  Alcotest.(check (list string)) "filter a" [ "one"; "three" ]
    (List.map (fun (e : Trace.entry) -> e.detail) (Trace.by_category t "a"));
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.length t)

let () =
  Alcotest.run "sim"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "rejects bad bound" `Quick test_prng_int_rejects_nonpositive;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
          Alcotest.test_case "split" `Quick test_prng_split ] );
      ( "pqueue",
        [ Alcotest.test_case "orders by time" `Quick test_pqueue_orders_by_time;
          Alcotest.test_case "ties by seq" `Quick test_pqueue_ties_by_seq;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          Alcotest.test_case "pop releases payloads" `Quick
            test_pqueue_releases_popped;
          Alcotest.test_case "clear releases payloads" `Quick
            test_pqueue_clear_releases;
          prop_pqueue_sorts ] );
      ( "engine",
        [ Alcotest.test_case "runs in order" `Quick test_engine_runs_in_order;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "max events" `Quick test_engine_max_events;
          Alcotest.test_case "negative delay clamped" `Quick
            test_engine_negative_delay_clamped;
          Alcotest.test_case "same-time fifo" `Quick test_engine_same_time_fifo ] );
      ( "trace",
        [ Alcotest.test_case "records and filters" `Quick
            test_trace_records_and_filters ] ) ]
