(* QCheck2 generators for property-based tests: syntactically valid
   MiniProc ASTs (for parser/printer round-trips), MIL configurations,
   and state images (for codec round-trips). *)

module Ast = Dr_lang.Ast
module G = QCheck2.Gen

let ident =
  G.oneofl [ "a"; "b"; "c"; "x"; "y"; "count"; "total"; "foo_bar"; "v1"; "tmp2" ]

let label_name = G.oneofl [ "L1"; "L2"; "R"; "again"; "top" ]

let proc_name = G.oneofl [ "helper"; "work"; "step_once"; "refresh" ]

(* Strings over characters the lexer can escape and re-read. *)
let safe_string =
  G.map
    (fun chars -> String.concat "" chars)
    (G.small_list
       (G.oneofl [ "a"; "Z"; "0"; " "; "_"; "\\"; "\""; "\n"; "\t"; "!"; "%" ]))

let ty =
  G.sized_size (G.int_bound 1) @@ fun depth ->
  let base = G.oneofl [ Ast.Tint; Ast.Tfloat; Ast.Tbool; Ast.Tstr ] in
  if depth = 0 then base
  else
    G.oneof
      [ base;
        G.map (fun t -> Ast.Tarr t) base;
        G.map (fun t -> Ast.Tptr t) base ]

let literal =
  G.oneof
    [ G.map (fun i -> Ast.Int i) G.small_nat;
      G.map (fun f -> Ast.Float (Float.abs f)) G.float;
      G.map (fun b -> Ast.Bool b) G.bool;
      G.map (fun s -> Ast.Str s) safe_string;
      G.return Ast.Null ]

let literal =
  (* exclude NaN/infinite floats: they have no literal syntax *)
  G.map
    (function
      | Ast.Float f when not (Float.is_finite f) -> Ast.Float 0.5
      | e -> e)
    literal

let binop =
  G.oneofl
    [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Eq; Ast.Ne; Ast.Lt;
      Ast.Le; Ast.Gt; Ast.Ge; Ast.And; Ast.Or; Ast.Cat ]

(* Builtin names valid in expression position (parser maps them back to
   Builtin nodes). *)
let expr_builtin_name =
  G.oneofl [ "mh_query"; "len"; "float"; "int"; "str"; "now"; "mh_getstatus" ]

let expr =
  G.sized @@ G.fix (fun self depth ->
      if depth <= 0 then G.oneof [ literal; G.map (fun v -> Ast.Var v) ident ]
      else
        let sub = self (depth / 2) in
        G.oneof
          [ literal;
            G.map (fun v -> Ast.Var v) ident;
            G.map2 (fun a i -> Ast.Index (a, i)) sub sub;
            G.map2 (fun n i -> Ast.Addr (n, i)) ident sub;
            G.map (fun e -> Ast.Unop (Ast.Neg, e)) sub;
            G.map (fun e -> Ast.Unop (Ast.Not, e)) sub;
            G.map3 (fun op a b -> Ast.Binop (op, a, b)) binop sub sub;
            G.map2 (fun name args -> Ast.Call (name, args)) proc_name
              (G.list_size (G.int_bound 2) sub);
            G.map2 (fun name args -> Ast.Builtin (name, args)) expr_builtin_name
              (G.list_size (G.int_bound 2) sub) ])

let lvalue =
  G.oneof
    [ G.map (fun v -> Ast.Lvar v) ident;
      G.map2 (fun v i -> Ast.Lindex (v, i)) ident expr ]

(* Statement-builtin applications that match the parser's signatures. *)
let builtin_stmt =
  G.oneof
    [ G.return (Ast.BuiltinS ("mh_init", []));
      G.map2
        (fun iface lv -> Ast.BuiltinS ("mh_read", [ Ast.Aexpr iface; Ast.Alv lv ]))
        expr lvalue;
      G.map2
        (fun iface v ->
          Ast.BuiltinS ("mh_write", [ Ast.Aexpr iface; Ast.Aexpr v ]))
        expr expr;
      G.map2
        (fun loc vs ->
          Ast.BuiltinS
            ("mh_capture", Ast.Aexpr loc :: List.map (fun e -> Ast.Aexpr e) vs))
        expr
        (G.list_size (G.int_bound 3) expr);
      G.map2
        (fun loc lvs ->
          Ast.BuiltinS
            ("mh_restore", Ast.Alv loc :: List.map (fun lv -> Ast.Alv lv) lvs))
        lvalue
        (G.list_size (G.int_bound 3) lvalue);
      G.return (Ast.BuiltinS ("mh_encode", []));
      G.return (Ast.BuiltinS ("mh_decode", [])) ]

let stmt =
  G.sized @@ G.fix (fun self depth ->
      let block = G.list_size (G.int_bound 2) (self (depth / 2)) in
      let leaf_kinds =
        [ G.map3 (fun n t e -> Ast.Decl (n, t, e)) ident ty (G.option expr);
          G.map2 (fun lv e -> Ast.Assign (lv, e)) lvalue expr;
          G.map2 (fun name args -> Ast.CallS (name, args)) proc_name
            (G.list_size (G.int_bound 2) expr);
          G.map (fun e -> Ast.Return e) (G.option expr);
          G.map (fun l -> Ast.Goto l) label_name;
          G.map (fun es -> Ast.Print es) (G.list_size (G.int_bound 2) expr);
          G.map (fun e -> Ast.Sleep e) expr;
          builtin_stmt |> G.map (function Ast.BuiltinS (n, a) -> Ast.BuiltinS (n, a) | k -> k);
          G.return Ast.Skip ]
      in
      let kind =
        if depth <= 0 then G.oneof leaf_kinds
        else
          G.oneof
            (leaf_kinds
            @ [ G.map3 (fun c t e -> Ast.If (c, t, e)) expr block block;
                G.map2 (fun c b -> Ast.While (c, b)) expr block ])
      in
      G.map2 (fun label kind -> Ast.stmt ?label kind) (G.option label_name) kind)

let param =
  G.map3 (fun pname pty pref -> { Ast.pname; pty; pref }) ident ty G.bool

let proc =
  G.map3
    (fun proc_name params (ret, body) ->
      { Ast.proc_name; params; ret; body; proc_line = 0 })
    proc_name
    (G.list_size (G.int_bound 3) param)
    (G.pair (G.option ty) (G.list_size (G.int_bound 4) stmt))

let global =
  G.map3
    (fun gname gty ginit -> { Ast.gname; gty; ginit; gline = 0 })
    ident ty (G.option expr)

let program =
  G.map2
    (fun globals procs ->
      (* procedure names must be unique for find_proc determinism *)
      let seen = Hashtbl.create 8 in
      let procs =
        List.filteri
          (fun i (p : Ast.proc) ->
            ignore i;
            if Hashtbl.mem seen p.proc_name then false
            else begin
              Hashtbl.replace seen p.proc_name ();
              true
            end)
          procs
      in
      { Ast.module_name = "generated"; globals; procs })
    (G.list_size (G.int_bound 3) global)
    (G.list_size (G.int_bound 4) proc)

(* ---------------------------------------------------------------- MIL *)

let mil_ident =
  G.oneofl [ "alpha"; "beta"; "gamma"; "relay"; "hub"; "probe"; "sink2" ]

let mil_msg_ty =
  G.oneofl [ Dr_mil.Spec.Mint; Dr_mil.Spec.Mfloat; Dr_mil.Spec.Mbool; Dr_mil.Spec.Mstr ]

let mil_iface =
  G.map3
    (fun (if_name, role) pattern (accepts, returns) ->
      { Dr_mil.Spec.if_name; role; pattern; accepts; returns })
    (G.pair mil_ident
       (G.oneofl
          [ Dr_mil.Spec.Client; Dr_mil.Spec.Server; Dr_mil.Spec.Use;
            Dr_mil.Spec.Define ]))
    (G.list_size (G.int_bound 2) mil_msg_ty)
    (G.pair
       (G.list_size (G.int_bound 1) mil_msg_ty)
       (G.list_size (G.int_bound 1) mil_msg_ty))

let mil_point =
  G.map2
    (fun rp_label rp_state -> { Dr_mil.Spec.rp_label; rp_state })
    (G.oneofl [ "R"; "R1"; "Rmid" ])
    (G.option (G.list_size (G.int_bound 3) ident))

let mil_module =
  G.map3
    (fun ms_name (source, machine) (ifaces, points) ->
      { Dr_mil.Spec.ms_name; source; machine; ifaces; points; attrs = [] })
    mil_ident
    (G.pair (G.option (G.oneofl [ "./a.exe"; "./b.out" ]))
       (G.option (G.oneofl [ "hostA"; "hostB" ])))
    (G.pair
       (G.list_size (G.int_bound 3) mil_iface)
       (G.list_size (G.int_bound 2) mil_point))

let mil_endpoint = G.pair mil_ident mil_ident

let mil_application =
  G.map3
    (fun app_name instances binds ->
      { Dr_mil.Spec.app_name; instances; binds })
    mil_ident
    (G.list_size (G.int_bound 3)
       (G.map3
          (fun inst_name inst_module inst_host ->
            { Dr_mil.Spec.inst_name; inst_module; inst_host })
          mil_ident mil_ident
          (G.option (G.oneofl [ "h1"; "h2" ]))))
    (G.list_size (G.int_bound 3)
       (G.map2
          (fun b_from b_to -> { Dr_mil.Spec.b_from; b_to })
          mil_endpoint mil_endpoint))

let mil_config =
  G.map2
    (fun modules apps -> { Dr_mil.Spec.modules; apps })
    (G.list_size (G.int_bound 3) mil_module)
    (G.list_size (G.int_bound 2) mil_application)

(* ------------------------------------------------------------- images *)

let value_scalar =
  G.oneof
    [ G.map (fun i -> Dr_state.Value.Vint i) G.int;
      G.map
        (fun f ->
          Dr_state.Value.Vfloat (if Float.is_nan f then 0.25 else f))
        G.float;
      G.map (fun b -> Dr_state.Value.Vbool b) G.bool;
      G.map (fun s -> Dr_state.Value.Vstr s) G.string_printable;
      G.return Dr_state.Value.Vnull ]

let value =
  G.oneof
    [ value_scalar;
      G.map (fun b -> Dr_state.Value.Varr (abs b)) G.small_nat;
      G.map2
        (fun b o -> Dr_state.Value.Vptr (abs b, abs o))
        G.small_nat G.small_nat ]

let value_32bit =
  (* values representable on a 32-bit architecture *)
  let int32ish = G.map (fun i -> i mod 0x40000000) G.int in
  G.oneof
    [ G.map (fun i -> Dr_state.Value.Vint i) int32ish;
      G.map
        (fun f -> Dr_state.Value.Vfloat (if Float.is_nan f then 0.25 else f))
        G.float;
      G.map (fun b -> Dr_state.Value.Vbool b) G.bool;
      G.map (fun s -> Dr_state.Value.Vstr s) G.string_printable;
      G.return Dr_state.Value.Vnull;
      G.map (fun b -> Dr_state.Value.Varr (abs b)) G.small_nat ]

let record value_gen =
  G.map2
    (fun location values -> { Dr_state.Image.location; values })
    G.small_nat
    (G.list_size (G.int_bound 5) value_gen)

let heap_block value_gen =
  G.map2
    (fun elem_ty cells ->
      { Dr_state.Image.elem_ty; cells = Array.of_list cells })
    ty
    (G.list_size (G.int_bound 5) value_gen)

let image_with value_gen =
  G.map2
    (fun records blocks ->
      let heap = List.mapi (fun i b -> (i, b)) blocks in
      Dr_state.Image.make ~source_module:"generated" ~records ~heap)
    (G.list_size (G.int_bound 5) (record value_gen))
    (G.list_size (G.int_bound 3) (heap_block value_gen))

let image = image_with value

let image_32bit = image_with value_32bit
