(* Model-checker tests: the committed counterexample that flushed out
   the divulge-fencing bug, exploration regressions over the checked
   configuration catalogue, and a qcheck harness for replay stability.

   The counterexample schedule is pinned verbatim: it must keep parsing,
   keep replaying deterministically, and keep NOT firing any monitor.
   Before the fix (Script.replace's divulge continuation running after a
   controller crash interrupted the deadline rollback) it fired
   wal-consistent with "entry during rollback of script #1". *)

module Explorer = Dr_mc.Explorer
module Configs = Dr_mc.Configs

let config name =
  match Configs.by_name name with
  | Some c -> c
  | None -> Alcotest.failf "unknown mc config %s" name

let check_clean ~name (r : Explorer.result) =
  List.iter
    (fun ((v : Dr_mc.Monitor.violation), sched) ->
      Alcotest.failf "%s: monitor %s fired: %s\nschedule: %s" name
        v.Dr_mc.Monitor.v_monitor v.Dr_mc.Monitor.v_detail
        (String.concat " " (List.map Explorer.token_to_string sched)))
    r.Explorer.res_violations

let check_exhaustive ~name (r : Explorer.result) =
  let s = r.Explorer.res_stats in
  if s.Explorer.capped || s.Explorer.depth_cuts > 0 then
    Alcotest.failf "%s: exploration not exhaustive (capped=%b depth_cuts=%d)"
      name s.Explorer.capped s.Explorer.depth_cuts

(* The schedule the checker minimized for the controller-crash /
   deadline-rollback / late-divulge race, committed the day it was
   found. [fire 8] is the replace deadline firing before the target's
   quantum [fire 6]; [ctlcrash] arms the controller to die on the
   rollback's own journal append. *)
let ctlcrash_divulge_schedule =
  "config single-replace-crash\n\
   fire 0\n\
   fire 1\n\
   deliver\n\
   fire 2\n\
   fire 3\n\
   fire 4\n\
   deliver\n\
   fire 5\n\
   deliver\n\
   fire 8\n\
   ctlcrash\n\
   fire 6\n\
   fire 7\n\
   deliver\n\
   fire 9\n\
   deliver\n\
   fire 10\n\
   fire 11\n\
   fire 12\n\
   fire 13\n\
   fire 14\n\
   fire 15\n\
   fire 16\n"

let test_ctlcrash_counterexample () =
  match Explorer.schedule_of_string ctlcrash_divulge_schedule with
  | Error e -> Alcotest.failf "schedule parse: %s" e
  | Ok (name, tokens) ->
    let name = Option.get name in
    Alcotest.(check string) "config header" "single-replace-crash" name;
    let r = Explorer.replay (config name) tokens in
    (match r.Explorer.rp_violation with
    | Some v ->
      Alcotest.failf "counterexample regressed: [%s] %s"
        v.Dr_mc.Monitor.v_monitor v.Dr_mc.Monitor.v_detail
    | None -> ());
    (* the fixed run departs from the buggy trajectory after the crash
       point, so full consumption isn't guaranteed — but a replay that
       stops before the [ctlcrash] token (position 11) never tested the
       race this schedule was minimized for *)
    if List.length r.Explorer.rp_schedule < 12 then
      Alcotest.failf "replay stopped before the crash point (%d choices)"
        (List.length r.Explorer.rp_schedule)

(* Exhaustive exploration of the acceptance configuration: every
   interleaving of one request against one replacement, all five
   monitors armed. *)
let test_single_replace_exhaustive () =
  let r = Explorer.explore ~mode:Explorer.Dpor (config "single-replace") in
  check_clean ~name:"single-replace" r;
  check_exhaustive ~name:"single-replace" r;
  let s = r.Explorer.res_stats in
  if s.Explorer.states < 50 then
    Alcotest.failf "suspiciously small state space: %d states"
      s.Explorer.states

(* The configuration that caught the divulge-fencing bug, explored in
   full: a crash budget of one (kill or controller crash) and the
   controller-crash adversary enabled. *)
let test_crash_config_clean () =
  let r =
    Explorer.explore ~mode:Explorer.Dpor (config "single-replace-crash")
  in
  check_clean ~name:"single-replace-crash" r

(* One fault decision (drop or duplicate) anywhere in the run: the
   reliable layer must still deliver exactly once, epochs must not
   regress, and the journal must stay scannable. *)
let test_faults_config_clean () =
  let r =
    Explorer.explore ~mode:Explorer.Dpor (config "single-replace-faults")
  in
  check_clean ~name:"single-replace-faults" r

(* A dropped first request forces the retransmission path; the explorer
   necessarily visits such a schedule. Pin one as a deterministic
   replay: it must reach quiescence with no monitor firing. *)
let test_drop_schedule_replays () =
  let cfg = config "single-replace-faults" in
  let found = ref None in
  let on_exec (r : Explorer.exec_report) =
    match (!found, r.Explorer.ex_end) with
    | None, Explorer.Quiescent
      when List.mem Explorer.Drop r.Explorer.ex_schedule ->
      found := Some r.Explorer.ex_schedule
    | _ -> ()
  in
  ignore (Explorer.explore ~mode:Explorer.Dpor ~on_exec cfg);
  match !found with
  | None -> Alcotest.fail "no quiescent schedule with a drop was explored"
  | Some sched ->
    let r = Explorer.replay cfg sched in
    (match r.Explorer.rp_violation with
    | Some v ->
      Alcotest.failf "drop schedule fired [%s] %s" v.Dr_mc.Monitor.v_monitor
        v.Dr_mc.Monitor.v_detail
    | None -> ());
    Alcotest.(check string) "replays to quiescence" "quiescent"
      r.Explorer.rp_end

(* qcheck: any fault-free schedule the explorer visited replays to the
   same ending with no monitor firing — replay is deterministic and the
   monitors are quiet on the nominal subset. *)
let replay_stability =
  QCheck.Test.make ~count:25 ~name:"mc fault-free schedules replay clean"
    QCheck.(make Gen.int)
    (fun salt ->
      let cfg = config "single-replace" in
      let pool = ref [] in
      let on_exec (r : Explorer.exec_report) =
        match r.Explorer.ex_end with
        | Explorer.Quiescent -> pool := r.Explorer.ex_schedule :: !pool
        | _ -> ()
      in
      ignore (Explorer.explore ~mode:Explorer.Dpor ~on_exec cfg);
      let pool = Array.of_list !pool in
      Array.length pool > 0
      &&
      let sched = pool.(abs salt mod Array.length pool) in
      let r = Explorer.replay cfg sched in
      r.Explorer.rp_violation = None
      && String.equal r.Explorer.rp_end "quiescent")

let () =
  Alcotest.run "mc"
    [ ( "counterexamples",
        [ Alcotest.test_case "ctlcrash divulge race stays fixed" `Quick
            test_ctlcrash_counterexample;
          Alcotest.test_case "dropped request replays clean" `Quick
            test_drop_schedule_replays ] );
      ( "exploration",
        [ Alcotest.test_case "single-replace exhaustive and clean" `Quick
            test_single_replace_exhaustive;
          Alcotest.test_case "crash budget finds nothing" `Quick
            test_crash_config_clean;
          Alcotest.test_case "fault budget finds nothing" `Quick
            test_faults_config_clean ] );
      ( "stability",
        [ QCheck_alcotest.to_alcotest replay_stability ] ) ]
