(* The indexed bus must be observationally identical to the seed
   implementation: these tests replay the monitor and ring scenarios and
   require a byte-identical trace against goldens recorded from the
   list-based seed bus. *)

let read_golden name = In_channel.with_open_bin name In_channel.input_all

let check_golden name produced =
  let expected = read_golden name in
  if not (String.equal expected produced) then begin
    let lines s = String.split_on_char '\n' s in
    let e = lines expected and p = lines produced in
    let rec first_diff i = function
      | [], [] -> None
      | x :: xs, y :: ys when String.equal x y -> first_diff (i + 1) (xs, ys)
      | x :: _, y :: _ -> Some (i, x, y)
      | x :: _, [] -> Some (i, x, "<missing>")
      | [], y :: _ -> Some (i, "<missing>", y)
    in
    match first_diff 1 (e, p) with
    | Some (i, x, y) ->
      Alcotest.failf "%s differs at line %d:\n  golden:   %s\n  produced: %s"
        name i x y
    | None ->
      Alcotest.failf "%s differs (lengths %d vs %d)" name
        (String.length expected) (String.length produced)
  end

let test_monitor () = check_golden "golden_monitor.trace" (Golden.monitor_trace ())
let test_ring () = check_golden "golden_ring.trace" (Golden.ring_trace ())
let test_chaos () = check_golden "golden_chaos.trace" (Golden.chaos_trace ())

(* The metrics plane must be invisible to the simulation: the same
   scenarios, replayed with a registry attached, must still match the
   goldens byte-for-byte. *)
let test_monitor_metrics () =
  check_golden "golden_monitor.trace" (Golden.monitor_trace ~metrics:true ())

let test_ring_metrics () =
  check_golden "golden_ring.trace" (Golden.ring_trace ~metrics:true ())

let test_chaos_metrics () =
  check_golden "golden_chaos.trace" (Golden.chaos_trace ~metrics:true ())

let () =
  Alcotest.run "golden_trace"
    [ ( "byte-identical to seed",
        [ Alcotest.test_case "monitor migration" `Quick test_monitor;
          Alcotest.test_case "ring insertion" `Quick test_ring;
          Alcotest.test_case "seeded chaos replace" `Quick test_chaos ] );
      ( "byte-identical with metrics on",
        [ Alcotest.test_case "monitor migration" `Quick test_monitor_metrics;
          Alcotest.test_case "ring insertion" `Quick test_ring_metrics;
          Alcotest.test_case "seeded chaos replace" `Quick test_chaos_metrics ]
      ) ]
