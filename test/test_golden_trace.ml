(* The indexed bus must be observationally identical to the seed
   implementation: these tests replay the monitor and ring scenarios and
   require a byte-identical trace against goldens recorded from the
   list-based seed bus. *)

let read_golden name = In_channel.with_open_bin name In_channel.input_all

let check_golden name produced =
  let expected = read_golden name in
  if not (String.equal expected produced) then begin
    let lines s = String.split_on_char '\n' s in
    let e = lines expected and p = lines produced in
    let rec first_diff i = function
      | [], [] -> None
      | x :: xs, y :: ys when String.equal x y -> first_diff (i + 1) (xs, ys)
      | x :: _, y :: _ -> Some (i, x, y)
      | x :: _, [] -> Some (i, x, "<missing>")
      | [], y :: _ -> Some (i, "<missing>", y)
    in
    match first_diff 1 (e, p) with
    | Some (i, x, y) ->
      Alcotest.failf "%s differs at line %d:\n  golden:   %s\n  produced: %s"
        name i x y
    | None ->
      Alcotest.failf "%s differs (lengths %d vs %d)" name
        (String.length expected) (String.length produced)
  end

let test_monitor () = check_golden "golden_monitor.trace" (Golden.monitor_trace ())
let test_ring () = check_golden "golden_ring.trace" (Golden.ring_trace ())
let test_chaos () = check_golden "golden_chaos.trace" (Golden.chaos_trace ())

(* The metrics plane must be invisible to the simulation: the same
   scenarios, replayed with a registry attached, must still match the
   goldens byte-for-byte. *)
let test_monitor_metrics () =
  check_golden "golden_monitor.trace" (Golden.monitor_trace ~metrics:true ())

let test_ring_metrics () =
  check_golden "golden_ring.trace" (Golden.ring_trace ~metrics:true ())

let test_chaos_metrics () =
  check_golden "golden_chaos.trace" (Golden.chaos_trace ~metrics:true ())

(* Shard count 1 is the classic code path: replaying with an explicit
   [~shards:1] must still match the seed goldens byte-for-byte — the
   sharded bus exists only behind [shards > 1]. *)
let test_ring_shards1 () =
  check_golden "golden_ring.trace" (Golden.ring_trace ~shards:1 ())

let test_chaos_shards1 () =
  check_golden "golden_chaos.trace" (Golden.chaos_trace ~shards:1 ())

(* The 4-domain run is pinned by its own golden, recorded from the same
   gen_goldens run — and must also be metrics-invisible. *)
let test_ring_sharded () =
  check_golden "golden_ring_sharded.trace" (Golden.ring_sharded_trace ())

let test_ring_sharded_metrics () =
  check_golden "golden_ring_sharded.trace"
    (Golden.ring_sharded_trace ~metrics:true ())

let () =
  Alcotest.run "golden_trace"
    [ ( "byte-identical to seed",
        [ Alcotest.test_case "monitor migration" `Quick test_monitor;
          Alcotest.test_case "ring insertion" `Quick test_ring;
          Alcotest.test_case "seeded chaos replace" `Quick test_chaos ] );
      ( "byte-identical with metrics on",
        [ Alcotest.test_case "monitor migration" `Quick test_monitor_metrics;
          Alcotest.test_case "ring insertion" `Quick test_ring_metrics;
          Alcotest.test_case "seeded chaos replace" `Quick test_chaos_metrics ]
      );
      ( "sharded bus",
        [ Alcotest.test_case "ring at explicit shards=1" `Quick
            test_ring_shards1;
          Alcotest.test_case "chaos at explicit shards=1" `Quick
            test_chaos_shards1;
          Alcotest.test_case "ring at shards=4" `Quick test_ring_sharded;
          Alcotest.test_case "ring at shards=4, metrics on" `Quick
            test_ring_sharded_metrics ] ) ]
