(* Rolling replacement: drain-aware routing, the autonomic wave
   controller, its WAL wave records, and the per-bus detector tunables
   it depends on.

   The acceptance signal throughout is the load generator's
   exactly-once-or-shed accounting: every request is answered exactly
   once or explicitly shed, whatever the wave does. *)

module Bus = Dr_bus.Bus
module Faults = Dr_bus.Faults
module Detector = Dr_reconfig.Detector
module Supervisor = Dr_reconfig.Supervisor
module Rolling = Dr_reconfig.Rolling
module Recovery = Dr_reconfig.Recovery
module Storage = Dr_wal.Storage
module Wal = Dr_wal.Wal
module Kv = Dr_workloads.Kvstore
module Farm = Dr_workloads.Farm

let ok_exn = function Ok v -> v | Error e -> Alcotest.failf "unexpected: %s" e

(* exactly one live instance stands for [slot]: itself or a generation
   [slot@wid.gen] *)
let serving bus ~slot =
  let pfx = slot ^ "@" in
  let plen = String.length pfx in
  match
    List.filter
      (fun inst ->
        inst = slot
        || (String.length inst >= plen && String.sub inst 0 plen = pfx))
      (Bus.instances bus)
  with
  | [ inst ] -> inst
  | insts ->
    Alcotest.failf "slot %s served by [%s]" slot (String.concat "; " insts)

let check_accounting (s : Kv.Loadgen.stats) =
  Alcotest.(check int) "nothing in flight" 0 s.st_inflight;
  Alcotest.(check int) "nothing duplicated" 0 s.st_duplicated;
  Alcotest.(check int) "no strays" 0 s.st_stray;
  Alcotest.(check int) "sent = answered + shed" s.st_sent
    (s.st_answered + s.st_shed)

let deploy ?(n = 3) ?(rate = 4.0) () =
  let bus = Kv.Replica.start ~n (Kv.Replica.load ~n) in
  let group = Kv.Replica.group ~n in
  let lg =
    Kv.Loadgen.start bus
      { Kv.Loadgen.default_conf with lc_rate = rate; lc_duration = 400.0 }
      ~slots:group
  in
  Bus.run ~until:8.0 bus;
  (bus, group, lg)

let quick_cfg ~target =
  { (Rolling.default_config ~target) with
    rc_drain_timeout = 4.0;
    rc_canary_window = 6.0;
    rc_backoff = 1.0 }

let finish bus lg =
  Kv.Loadgen.stop lg;
  Bus.run ~until:(Bus.now bus +. 20.0) bus;
  Kv.Loadgen.stats lg

(* ------------------------------------------------- detector tunables *)

let test_detector_config_validation () =
  let bus = Kv.Replica.start ~n:2 (Kv.Replica.load ~n:2) in
  let check_rejected name cfg =
    match Bus.set_detector_config bus cfg with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.failf "%s accepted" name
  in
  let d = Bus.default_detector_config in
  check_rejected "zero period" { d with Bus.dc_period = 0.0 };
  check_rejected "negative timeout" { d with Bus.dc_timeout = -1.0 };
  check_rejected "zero threshold" { d with Bus.dc_threshold = 0 };
  let custom = { Bus.dc_period = 0.5; dc_timeout = 2.0; dc_threshold = 3 } in
  Bus.set_detector_config bus custom;
  Alcotest.(check bool) "round-trips" true (Bus.detector_config bus = custom)

let test_detector_uses_bus_config () =
  let bus = Kv.Replica.start ~n:2 (Kv.Replica.load ~n:2) in
  (* halve the heartbeat period on the bus; an unparameterised detector
     must pick it up and emit twice the beats *)
  Bus.set_detector_config bus
    { Bus.default_detector_config with Bus.dc_period = 0.5 };
  let d = Detector.start bus ~watch:[ "s1" ] () in
  Bus.run ~until:(Bus.now bus +. 10.0) bus;
  let fast_beats = Detector.beats_emitted d in
  Detector.stop d;
  let bus2 = Kv.Replica.start ~n:2 (Kv.Replica.load ~n:2) in
  let d2 = Detector.start bus2 ~watch:[ "s1" ] () in
  Bus.run ~until:(Bus.now bus2 +. 10.0) bus2;
  let default_beats = Detector.beats_emitted d2 in
  Detector.stop d2;
  Alcotest.(check bool)
    (Printf.sprintf "%d beats at period 0.5 vs %d at default" fast_beats
       default_beats)
    true
    (fast_beats >= (2 * default_beats) - 2)

(* Regression: a replace that completes inside ONE heartbeat interval
   must not be flagged by the failure detector. The new generation has
   emitted no heartbeat yet when the supervisor's check runs; adoption
   must reset its evidence rather than inherit the old instance's
   silence. *)
let test_replace_inside_heartbeat_interval () =
  let bus, group, lg = deploy ~n:2 () in
  (* slow heartbeats: the whole per-slot upgrade fits inside one period *)
  Bus.set_detector_config bus
    { Bus.dc_period = 30.0; dc_timeout = 90.0; dc_threshold = 2 };
  let sup = Supervisor.start bus ~watch:(List.map snd group) () in
  let cfg =
    { (quick_cfg ~target:"rstorev2") with
      rc_drain_timeout = 2.0;
      rc_canary_window = 4.0 }
  in
  let report =
    ok_exn
      (Rolling.run bus cfg ~group ~supervisor:sup
         ~on_retarget:(fun ~slot ~instance ->
           Kv.Loadgen.retarget lg ~slot ~instance)
         ())
  in
  Alcotest.(check bool) "committed" true report.Rolling.rp_committed;
  (* no false-positive restart: the upgrades were planned replacements *)
  Alcotest.(check int) "no supervisor restarts" 0
    (List.length (Supervisor.restarts sup));
  List.iter
    (fun (slot, _) ->
      Alcotest.(check (option string))
        (slot ^ " upgraded") (Some "rstorev2")
        (Bus.instance_module bus ~instance:(serving bus ~slot)))
    group;
  check_accounting (finish bus lg)

(* --------------------------------------------- drain-aware routing *)

let test_drain_redirect_and_shed () =
  let bus, group, lg = deploy ~n:3 () in
  Bus.set_drain_group bus ~members:(List.map snd group);
  (* one draining member: siblings absorb, nothing shed *)
  Bus.mark_draining bus ~instance:"s2";
  Alcotest.(check bool) "marked" true (Bus.is_draining bus ~instance:"s2");
  (* resolve_drain rotates among live siblings; assert membership,
     not a specific pick *)
  (match Bus.resolve_drain bus ~instance:"s2" with
  | Some ("s1" | "s3") -> ()
  | other ->
    Alcotest.failf "expected redirect to a live sibling, got %s"
      (Option.value ~default:"<shed>" other));
  Bus.run ~until:(Bus.now bus +. 10.0) bus;
  Alcotest.(check int) "nothing shed with live siblings" 0
    (Kv.Loadgen.stats lg).st_shed;
  (* the whole group draining but alive: members keep serving their own
     traffic rather than dropping it — availability first *)
  List.iter (fun (_, i) -> Bus.mark_draining bus ~instance:i) group;
  Bus.run ~until:(Bus.now bus +. 10.0) bus;
  Alcotest.(check int) "draining-but-alive members self-admit" 0
    (Kv.Loadgen.stats lg).st_shed;
  (* the group shrinks mid-drain: the addressed member dies while every
     sibling is draining-but-alive. The cursor scan used to shed here —
     skipping live siblings — which the model checker flagged; traffic
     must fall through to an alive sibling instead (availability first,
     same rationale as self-admission above) *)
  Bus.crash_process bus ~instance:"s2" ~reason:"test kill";
  (match Bus.resolve_drain bus ~instance:"s2" with
  | Some ("s1" | "s3") -> ()
  | other ->
    Alcotest.failf "expected fallthrough to an alive sibling, got %s"
      (Option.value ~default:"<shed>" other));
  Bus.run ~until:(Bus.now bus +. 10.0) bus;
  Alcotest.(check int) "nothing shed while a live sibling exists" 0
    (Kv.Loadgen.stats lg).st_shed;
  (* only when no member is alive at all does admission control shed
     explicitly instead of queueing against corpses *)
  Bus.crash_process bus ~instance:"s1" ~reason:"test kill";
  Bus.crash_process bus ~instance:"s3" ~reason:"test kill";
  Bus.run ~until:(Bus.now bus +. 10.0) bus;
  let s = Kv.Loadgen.stats lg in
  Alcotest.(check bool)
    (Printf.sprintf "shed > 0 (got %d)" s.st_shed)
    true (s.st_shed > 0);
  List.iter (fun (_, i) -> Bus.clear_draining bus ~instance:i) group;
  Alcotest.(check (list string)) "marks cleared" []
    (Bus.draining_instances bus);
  (* crashing every serving member deliberately strands whatever was in
     flight to them, so "nothing in flight" does not apply here; the
     ledger must still close and nothing may be duplicated *)
  let s = finish bus lg in
  Alcotest.(check int) "nothing duplicated" 0 s.st_duplicated;
  Alcotest.(check int) "no strays" 0 s.st_stray;
  Alcotest.(check int) "ledger closes" s.st_sent
    (s.st_answered + s.st_shed + s.st_inflight)

(* The farm exercises the ROUTED delivery path (the kvstore loadgen
   injects directly): jobs round-robinned to a draining worker must be
   absorbed by its siblings, and every job must still complete exactly
   once. *)
let test_farm_routed_drain () =
  let bus = Farm.start (Farm.load ()) in
  Bus.run ~until:2.0 bus;
  ignore (ok_exn (Farm.scale_out bus ~slot:2 ~host:"hostB"));
  ignore (ok_exn (Farm.scale_out bus ~slot:3 ~host:"hostC"));
  let members = Farm.worker_drain_group bus in
  Alcotest.(check (list string)) "group" [ "w1"; "w2"; "w3" ] members;
  Bus.mark_draining bus ~instance:"w2";
  Bus.run ~until:200.0 bus;
  Alcotest.(check (list int)) "every job exactly once" Farm.expected_results
    (List.sort compare (Farm.results bus))

(* ------------------------------------------------- the wave itself *)

let test_wave_commits_under_traffic () =
  let bus, group, lg = deploy () in
  let report =
    ok_exn
      (Rolling.run bus
         (quick_cfg ~target:"rstorev2")
         ~group
         ~on_retarget:(fun ~slot ~instance ->
           Kv.Loadgen.retarget lg ~slot ~instance)
         ())
  in
  Alcotest.(check bool) "committed" true report.Rolling.rp_committed;
  List.iter
    (fun rr ->
      match rr.Rolling.rr_outcome with
      | Rolling.Upgraded _ -> ()
      | _ -> Alcotest.failf "%s not upgraded" rr.Rolling.rr_slot)
    report.Rolling.rp_replicas;
  let s = finish bus lg in
  Alcotest.(check int) "no wrong answers" 0 s.st_wrong;
  check_accounting s

let test_bad_canary_rolls_back_and_aborts () =
  let bus, group, lg = deploy () in
  let report =
    ok_exn
      (Rolling.run bus
         { (quick_cfg ~target:"rstorebad") with rc_retries = 2 }
         ~group
         ~on_retarget:(fun ~slot ~instance ->
           Kv.Loadgen.retarget lg ~slot ~instance)
         ())
  in
  Alcotest.(check bool) "aborted" false report.Rolling.rp_committed;
  (match report.Rolling.rp_replicas with
  | first :: rest ->
    (match first.Rolling.rr_outcome with
    | Rolling.Rolled_back _ ->
      Alcotest.(check int) "both attempts canaried" 2 first.Rolling.rr_attempts
    | _ -> Alcotest.fail "first slot not rolled back");
    List.iter
      (fun rr ->
        Alcotest.(check bool)
          (rr.Rolling.rr_slot ^ " skipped")
          true
          (rr.Rolling.rr_outcome = Rolling.Skipped))
      rest
  | [] -> Alcotest.fail "empty report");
  (* the fleet is back on the original build, one generation per slot *)
  List.iter
    (fun (slot, _) ->
      Alcotest.(check (option string))
        (slot ^ " on v1") (Some "rstore")
        (Bus.instance_module bus ~instance:(serving bus ~slot)))
    group;
  let s = finish bus lg in
  Alcotest.(check bool)
    (Printf.sprintf "bad build answered wrongly (%d)" s.st_wrong)
    true (s.st_wrong > 0);
  check_accounting s

(* Supervisor x rolling: a crash injected into the OLD generation
   mid-drain is restarted fenced by the supervisor; the wave re-resolves
   the slot and upgrades it exactly once — no double replacement. *)
let test_crash_mid_drain_single_replacement () =
  let bus, group, lg = deploy () in
  let sup = Supervisor.start bus ~watch:(List.map snd group) () in
  (* the wave starts at ~8.0 and drains s1 first; kill s1 inside the
     drain's settle chunk (8.0..8.5) so the crash lands mid-drain *)
  Faults.install bus ~seed:7
    (Faults.plan ~events:[ (8.3, Faults.Process_crash "s1") ] ());
  let report =
    ok_exn
      (Rolling.run bus
         (quick_cfg ~target:"rstorev2")
         ~group ~supervisor:sup
         ~on_retarget:(fun ~slot ~instance ->
           Kv.Loadgen.retarget lg ~slot ~instance)
         ())
  in
  Alcotest.(check bool) "committed" true report.Rolling.rp_committed;
  (* the supervisor did restart the crashed generation... *)
  (match Supervisor.restarts sup with
  | [ r ] -> Alcotest.(check string) "victim" "s1" r.Supervisor.rs_old
  | rs -> Alcotest.failf "%d restart(s), expected 1" (List.length rs));
  (* ...and the wave upgraded the slot once, through the restarted
     generation: exactly one live instance serves s1, on the target *)
  Alcotest.(check (option string)) "s1 upgraded once" (Some "rstorev2")
    (Bus.instance_module bus ~instance:(serving bus ~slot:"s1"));
  check_accounting (finish bus lg)

(* ------------------------------------------------- WAL wave records *)

let test_ctl_crash_mid_wave_recovers () =
  let bus, group, lg = deploy () in
  let mem = Storage.memory () in
  Bus.set_wal bus (ok_exn (Wal.create (Storage.storage_of_mem mem)));
  (* die inside the second slot's replace: slot 1 is durably done *)
  Bus.arm_ctl_crash bus ~after:9;
  (match
     Rolling.run bus
       (quick_cfg ~target:"rstorev2")
       ~group
       ~on_retarget:(fun ~slot ~instance ->
         Kv.Loadgen.retarget lg ~slot ~instance)
       ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wave survived an armed controller crash");
  Alcotest.(check bool) "controller down" true (Bus.controller_down bus);
  (* controller memory is gone: reopen the log from (synced) storage *)
  Storage.crash mem;
  Bus.set_wal bus (ok_exn (Wal.create (Storage.storage_of_mem mem)));
  let _report, waves = ok_exn (Rolling.recover bus) in
  (match waves with
  | [ w ] ->
    Alcotest.(check bool) "wave reported open" true
      (w.Recovery.wv_status = Recovery.Wave_open);
    Alcotest.(check string) "target" "rstorev2" w.Recovery.wv_target
  | ws -> Alcotest.failf "%d wave(s) in the log, expected 1" (List.length ws));
  Alcotest.(check (list string)) "drain marks cleared" []
    (Bus.draining_instances bus);
  (* consistent roster: every slot wholly on one generation, serving *)
  List.iter
    (fun (slot, _) ->
      let inst = serving bus ~slot in
      match Bus.instance_module bus ~instance:inst with
      | Some ("rstore" | "rstorev2") -> Kv.Loadgen.retarget lg ~slot ~instance:inst
      | m ->
        Alcotest.failf "%s serves %s" slot
          (Option.value ~default:"?" m))
    group;
  (* and traffic keeps flowing cleanly on the held roster *)
  Bus.run ~until:(Bus.now bus +. 15.0) bus;
  let s = finish bus lg in
  Alcotest.(check int) "no wrong answers" 0 s.st_wrong;
  check_accounting s

let test_wave_records_survive_in_recovery_scan () =
  let bus, group, lg = deploy ~n:2 () in
  let mem = Storage.memory () in
  let wal = ok_exn (Wal.create (Storage.storage_of_mem mem)) in
  Bus.set_wal bus wal;
  let report =
    ok_exn
      (Rolling.run bus
         { (quick_cfg ~target:"rstorev2") with rc_drain_timeout = 2.0 }
         ~group
         ~on_retarget:(fun ~slot ~instance ->
           Kv.Loadgen.retarget lg ~slot ~instance)
         ())
  in
  Alcotest.(check bool) "committed" true report.Rolling.rp_committed;
  (* the committed wave's records are still scannable before checkpoint *)
  (match Recovery.waves wal with
  | Ok [ w ] ->
    Alcotest.(check bool) "committed status" true
      (w.Recovery.wv_status = Recovery.Wave_committed);
    Alcotest.(check int) "both slots durably done" 2
      (List.length w.Recovery.wv_done)
  | Ok ws -> Alcotest.failf "%d wave(s), expected 1" (List.length ws)
  | Error e -> Alcotest.fail e);
  check_accounting (finish bus lg)

(* ------------------------------------------------------- validation *)

let test_run_rejects_bad_config () =
  let bus, group, lg = deploy ~n:2 () in
  let expect_error name cfg =
    match Rolling.run bus cfg ~group () with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" name
  in
  let good = quick_cfg ~target:"rstorev2" in
  expect_error "zero retries" { good with Rolling.rc_retries = 0 };
  expect_error "negative backoff" { good with Rolling.rc_backoff = -1.0 };
  expect_error "unknown target" { good with Rolling.rc_target = "nosuch" };
  (match Rolling.run bus good ~group:[ ("sx", "sx") ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown group member accepted");
  check_accounting (finish bus lg)

let () =
  Alcotest.run "rolling"
    [ ( "detector-config",
        [ Alcotest.test_case "validation" `Quick test_detector_config_validation;
          Alcotest.test_case "bus tunables" `Quick test_detector_uses_bus_config;
          Alcotest.test_case "replace inside one heartbeat" `Quick
            test_replace_inside_heartbeat_interval ] );
      ( "drain",
        [ Alcotest.test_case "redirect and shed" `Quick
            test_drain_redirect_and_shed;
          Alcotest.test_case "farm routed path" `Quick test_farm_routed_drain ]
      );
      ( "wave",
        [ Alcotest.test_case "commits under traffic" `Quick
            test_wave_commits_under_traffic;
          Alcotest.test_case "bad canary aborts" `Quick
            test_bad_canary_rolls_back_and_aborts;
          Alcotest.test_case "crash mid-drain, single replacement" `Quick
            test_crash_mid_drain_single_replacement ] );
      ( "wal",
        [ Alcotest.test_case "ctl crash mid-wave recovers" `Quick
            test_ctl_crash_mid_wave_recovers;
          Alcotest.test_case "wave records scan" `Quick
            test_wave_records_survive_in_recovery_scan ] );
      ( "validation",
        [ Alcotest.test_case "bad config rejected" `Quick
            test_run_rejects_bad_config ] ) ]
