module Bus = Dr_bus.Bus
module Machine = Dr_interp.Machine
module Value = Dr_state.Value

let hosts =
  [ { Bus.host_name = "hostA"; arch = Dr_state.Arch.x86_64 };
    { Bus.host_name = "hostB"; arch = Dr_state.Arch.sparc32 } ]

let make_bus ?params () = Bus.create ?params ~hosts ()

let register bus source =
  match Bus.register_program bus (Support.parse source) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "register: %s" e

let spawn bus ~instance ~module_name ~host =
  match Bus.spawn bus ~instance ~module_name ~host () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "spawn: %s" e

let producer =
  {|
module producer;
var i: int = 0;
proc main() {
  mh_init();
  while (i < 5) {
    i = i + 1;
    mh_write("out", i);
  }
}
|}

let consumer =
  {|
module consumer;
proc main() {
  var x: int;
  var got: int;
  mh_init();
  while (got < 5) {
    mh_read("in", x);
    got = got + 1;
    print("recv ", x);
  }
}
|}

let test_spawn_and_route () =
  let bus = make_bus () in
  register bus producer;
  register bus consumer;
  spawn bus ~instance:"p" ~module_name:"producer" ~host:"hostA";
  spawn bus ~instance:"c" ~module_name:"consumer" ~host:"hostB";
  Bus.add_route bus ~src:("p", "out") ~dst:("c", "in");
  Bus.run bus;
  Alcotest.(check (list string)) "all delivered in order"
    [ "recv 1"; "recv 2"; "recv 3"; "recv 4"; "recv 5" ]
    (Bus.outputs bus ~instance:"c");
  Alcotest.(check bool) "producer halted" true
    (Bus.process_status bus ~instance:"p" = Some Machine.Halted);
  Alcotest.(check bool) "consumer halted" true
    (Bus.process_status bus ~instance:"c" = Some Machine.Halted)

let test_unbound_interface_drops () =
  let bus = make_bus () in
  register bus producer;
  spawn bus ~instance:"p" ~module_name:"producer" ~host:"hostA";
  Bus.run bus;
  let drops = Dr_sim.Trace.by_category (Bus.trace bus) "drop" in
  Alcotest.(check int) "five dropped" 5 (List.length drops)

let test_fanout () =
  let bus = make_bus () in
  register bus producer;
  register bus consumer;
  spawn bus ~instance:"p" ~module_name:"producer" ~host:"hostA";
  spawn bus ~instance:"c1" ~module_name:"consumer" ~host:"hostA";
  spawn bus ~instance:"c2" ~module_name:"consumer" ~host:"hostB";
  Bus.add_route bus ~src:("p", "out") ~dst:("c1", "in");
  Bus.add_route bus ~src:("p", "out") ~dst:("c2", "in");
  Bus.run bus;
  Alcotest.(check int) "c1 got all" 5 (List.length (Bus.outputs bus ~instance:"c1"));
  Alcotest.(check int) "c2 got all" 5 (List.length (Bus.outputs bus ~instance:"c2"))

let test_latency_ordering () =
  (* same-host delivery is faster than cross-host delivery *)
  let params =
    { Bus.default_params with local_latency = 0.1; remote_latency = 50.0 }
  in
  let bus = make_bus ~params () in
  register bus producer;
  register bus consumer;
  spawn bus ~instance:"p" ~module_name:"producer" ~host:"hostA";
  spawn bus ~instance:"near" ~module_name:"consumer" ~host:"hostA";
  spawn bus ~instance:"far" ~module_name:"consumer" ~host:"hostB";
  Bus.add_route bus ~src:("p", "out") ~dst:("near", "in");
  Bus.add_route bus ~src:("p", "out") ~dst:("far", "in");
  let near_done = ref infinity and far_done = ref infinity in
  Bus.run_while bus (fun () ->
      if !near_done = infinity && List.length (Bus.outputs bus ~instance:"near") = 5
      then near_done := Bus.now bus;
      if !far_done = infinity && List.length (Bus.outputs bus ~instance:"far") = 5
      then far_done := Bus.now bus;
      !near_done = infinity || !far_done = infinity);
  Alcotest.(check bool) "near finishes first" true (!near_done < !far_done)

let test_routes_add_del () =
  let bus = make_bus () in
  Bus.add_route bus ~src:("a", "x") ~dst:("b", "y");
  Bus.add_route bus ~src:("a", "x") ~dst:("c", "z");
  Bus.add_route bus ~src:("a", "x") ~dst:("b", "y");
  Alcotest.(check int) "no duplicate routes" 2
    (List.length (Bus.routes_from bus ("a", "x")));
  Bus.del_route bus ~src:("a", "x") ~dst:("b", "y");
  Alcotest.(check (list (pair string string))) "one left" [ ("c", "z") ]
    (Bus.routes_from bus ("a", "x"));
  Alcotest.(check (list (pair string string))) "reverse lookup" [ ("a", "x") ]
    (Bus.routes_to bus ("c", "z"))

let test_queue_operations () =
  let bus = make_bus () in
  register bus consumer;
  spawn bus ~instance:"c1" ~module_name:"consumer" ~host:"hostA";
  spawn bus ~instance:"c2" ~module_name:"consumer" ~host:"hostA";
  (* park both consumers first *)
  Bus.run bus;
  Bus.inject bus ~dst:("c1", "spare") (Value.Vint 1);
  Bus.inject bus ~dst:("c1", "spare") (Value.Vint 2);
  Alcotest.(check int) "two pending" 2 (Bus.pending_messages bus ("c1", "spare"));
  Bus.copy_queue bus ~src:("c1", "spare") ~dst:("c2", "spare");
  Alcotest.(check int) "source drained" 0 (Bus.pending_messages bus ("c1", "spare"));
  Alcotest.(check int) "destination filled" 2
    (Bus.pending_messages bus ("c2", "spare"));
  Bus.drop_queue bus ("c2", "spare");
  Alcotest.(check int) "dropped" 0 (Bus.pending_messages bus ("c2", "spare"))

let test_copy_queue_to_self () =
  (* regression: copying a queue onto itself used to iterate over the
     queue while appending to it, which never terminates *)
  let bus = make_bus () in
  register bus consumer;
  spawn bus ~instance:"c1" ~module_name:"consumer" ~host:"hostA";
  Bus.run bus;
  Bus.inject bus ~dst:("c1", "spare") (Value.Vint 1);
  Bus.inject bus ~dst:("c1", "spare") (Value.Vint 2);
  Bus.copy_queue bus ~src:("c1", "spare") ~dst:("c1", "spare");
  Alcotest.(check int) "still two pending" 2
    (Bus.pending_messages bus ("c1", "spare"));
  Alcotest.(check bool) "order preserved" true
    (Bus.take_queue bus ("c1", "spare") = [ Value.Vint 1; Value.Vint 2 ])

let test_blocking_read_wakes () =
  let bus = make_bus () in
  register bus consumer;
  spawn bus ~instance:"c" ~module_name:"consumer" ~host:"hostA";
  Bus.run bus;
  Alcotest.(check bool) "blocked on in" true
    (Bus.process_status bus ~instance:"c" = Some (Machine.Blocked_read "in"));
  List.iter (fun i -> Bus.inject bus ~dst:("c", "in") (Value.Vint i)) [ 1; 2; 3; 4; 5 ];
  Bus.run bus;
  Alcotest.(check int) "woke and consumed" 5
    (List.length (Bus.outputs bus ~instance:"c"))

let test_kill_and_redirect () =
  let bus = make_bus () in
  register bus producer;
  register bus consumer;
  spawn bus ~instance:"p" ~module_name:"producer" ~host:"hostA";
  spawn bus ~instance:"old" ~module_name:"consumer" ~host:"hostB";
  spawn bus ~instance:"new" ~module_name:"consumer" ~host:"hostB";
  Bus.add_route bus ~src:("p", "out") ~dst:("old", "in");
  (* let the producer send everything; messages are in flight to old *)
  Bus.run_while bus (fun () ->
      Bus.process_status bus ~instance:"p" <> Some Machine.Halted);
  (* rebind to new and kill old while messages are still in flight *)
  Bus.del_route bus ~src:("p", "out") ~dst:("old", "in");
  Bus.add_route bus ~src:("p", "out") ~dst:("new", "in");
  Bus.kill bus ~instance:"old";
  Bus.run bus;
  Alcotest.(check int) "in-flight messages redirected to the new binding" 5
    (List.length (Bus.outputs bus ~instance:"new"))

let test_redirect_no_multicast_duplicates () =
  (* regression: a lost in-flight message used to be re-fanned-out to
     every current route of its source, so on a multicast binding the
     surviving destinations received it a second time *)
  let bus = make_bus () in
  register bus producer;
  register bus consumer;
  spawn bus ~instance:"p" ~module_name:"producer" ~host:"hostA";
  spawn bus ~instance:"d1" ~module_name:"consumer" ~host:"hostB";
  spawn bus ~instance:"d2" ~module_name:"consumer" ~host:"hostB";
  Bus.add_route bus ~src:("p", "out") ~dst:("d1", "in");
  Bus.add_route bus ~src:("p", "out") ~dst:("d2", "in");
  Bus.run_while bus (fun () ->
      Bus.process_status bus ~instance:"p" <> Some Machine.Halted);
  (* messages are in flight to both; rebind d1's half to a fresh
     instance and kill d1 *)
  spawn bus ~instance:"d1n" ~module_name:"consumer" ~host:"hostB";
  Bus.del_route bus ~src:("p", "out") ~dst:("d1", "in");
  Bus.add_route bus ~src:("p", "out") ~dst:("d1n", "in");
  Bus.kill bus ~instance:"d1";
  Bus.run bus;
  Alcotest.(check int) "redirected to the rebinding only" 5
    (List.length (Bus.outputs bus ~instance:"d1n"));
  Alcotest.(check int) "surviving destination got no duplicates" 5
    (List.length (Bus.outputs bus ~instance:"d2"))

let trace_details bus ~category =
  List.map
    (fun (e : Dr_sim.Trace.entry) -> e.detail)
    (Dr_sim.Trace.by_category (Bus.trace bus) category)

let test_kill_accounting () =
  let bus = make_bus () in
  register bus consumer;
  spawn bus ~instance:"c" ~module_name:"consumer" ~host:"hostA";
  Bus.run bus;
  Bus.inject bus ~dst:("c", "spare") (Value.Vint 1);
  Bus.inject bus ~dst:("c", "spare") (Value.Vint 2);
  Bus.inject bus ~dst:("c", "other") (Value.Vint 3);
  Bus.on_divulge bus ~instance:"c" (fun _ ->
      Alcotest.fail "cancelled callback must not fire");
  Bus.kill bus ~instance:"c";
  Alcotest.(check bool) "pending divulge callback cancellation traced" true
    (List.mem "c removed with a pending divulge callback; cancelled"
       (trace_details bus ~category:"state"));
  Alcotest.(check bool) "undelivered messages counted" true
    (List.mem "c removed with 3 undelivered message(s)"
       (trace_details bus ~category:"queue"));
  (* late reconfiguration traffic aimed at the dead instance must leave
     an audit trail rather than silently no-op *)
  Bus.on_divulge bus ~instance:"c" (fun _ -> ());
  Bus.deposit_state bus ~instance:"c"
    (Dr_state.Image.empty ~source_module:"consumer");
  let audit = trace_details bus ~category:"audit" in
  Alcotest.(check bool) "late on_divulge traced" true
    (List.mem "divulge callback for dead instance c discarded" audit);
  Alcotest.(check bool) "late deposit_state traced" true
    (List.mem "state image for dead instance c discarded" audit)

let test_spawn_errors () =
  let bus = make_bus () in
  register bus producer;
  (match Bus.spawn bus ~instance:"x" ~module_name:"ghost" ~host:"hostA" () with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown module accepted");
  (match Bus.spawn bus ~instance:"x" ~module_name:"producer" ~host:"nohost" () with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown host accepted");
  spawn bus ~instance:"x" ~module_name:"producer" ~host:"hostA";
  match Bus.spawn bus ~instance:"x" ~module_name:"producer" ~host:"hostA" () with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate instance accepted"

let test_register_rejects_ill_typed () =
  let bus = make_bus () in
  match Bus.register_program bus (Support.parse "module bad;\nproc main() { x = 1; }") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "ill-typed program registered"

let test_instr_cost_advances_clock () =
  (* with a tiny quantum, virtual time accumulates per executed slice;
     only the final (halting) quantum's cost goes unaccounted *)
  let params = { Bus.default_params with instr_cost = 1.0; quantum = 4 } in
  let bus = Bus.create ~params ~hosts () in
  register bus producer;
  spawn bus ~instance:"p" ~module_name:"producer" ~host:"hostA";
  Bus.run bus;
  let executed =
    Machine.instr_count (Option.get (Bus.machine bus ~instance:"p"))
  in
  Alcotest.(check bool) "clock reflects instruction cost" true
    (Bus.now bus >= float_of_int (executed - 4) *. 1.0)

let test_crash_is_traced () =
  let bus = make_bus () in
  register bus "module boom;\nproc main() { print(1 / 0); }";
  spawn bus ~instance:"b" ~module_name:"boom" ~host:"hostA";
  Bus.run bus;
  (match Bus.process_status bus ~instance:"b" with
  | Some (Machine.Crashed _) -> ()
  | s ->
    Alcotest.failf "expected crash, got %s"
      (match s with Some s -> Fmt.str "%a" Machine.pp_status s | None -> "gone"));
  Alcotest.(check int) "crash traced" 1
    (List.length (Dr_sim.Trace.by_category (Bus.trace bus) "crash"))

let test_deterministic_runs () =
  let run () =
    let bus = make_bus () in
    register bus producer;
    register bus consumer;
    spawn bus ~instance:"p" ~module_name:"producer" ~host:"hostA";
    spawn bus ~instance:"c" ~module_name:"consumer" ~host:"hostB";
    Bus.add_route bus ~src:("p", "out") ~dst:("c", "in");
    Bus.run bus;
    ( Bus.now bus,
      Bus.outputs bus ~instance:"c",
      Dr_sim.Trace.length (Bus.trace bus) )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_deploy_monitor_app () =
  (* Deploy.deploy wiring: instances, hosts, routes (incl. the reverse
     client/server route) *)
  let system = Dr_workloads.Monitor.load () in
  let bus = Dr_workloads.Monitor.start system in
  Alcotest.(check (list string)) "instances" [ "display"; "compute"; "sensor" ]
    (Bus.instances bus);
  Alcotest.(check (option string)) "compute host" (Some "hostA")
    (Bus.instance_host bus ~instance:"compute");
  let routes = Bus.all_routes bus in
  Alcotest.(check int) "client/server gives two routes + define/use one" 3
    (List.length routes);
  Alcotest.(check bool) "reply route exists" true
    (List.mem (("compute", "display"), ("display", "temper")) routes)

let test_deploy_host_preference () =
  (* precedence: instance `on` clause > module `machine` attribute >
     default host *)
  let mil =
    {|
module w {
  machine = "hostB";
  define interface out pattern {integer};
}
module plain {
  define interface out pattern {integer};
}
application app {
  instance pinned = w on "hostA";
  instance attributed = w;
  instance fallback = plain;
}
|}
  in
  let source name =
    Printf.sprintf "module %s;\nproc main() { mh_init(); sleep(100); }" name
  in
  let system =
    match
      Dynrecon.System.load ~mil
        ~sources:[ ("w", source "w"); ("plain", source "plain") ]
        ()
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "load: %s" e
  in
  let bus =
    match
      Dynrecon.System.start system ~app:"app" ~hosts ~default_host:"hostA" ()
    with
    | Ok bus -> bus
    | Error e -> Alcotest.failf "start: %s" e
  in
  Alcotest.(check (option string)) "on clause wins" (Some "hostA")
    (Bus.instance_host bus ~instance:"pinned");
  Alcotest.(check (option string)) "machine attribute next" (Some "hostB")
    (Bus.instance_host bus ~instance:"attributed");
  Alcotest.(check (option string)) "default host last" (Some "hostA")
    (Bus.instance_host bus ~instance:"fallback")

let test_deploy_unknown_app () =
  let system = Dr_workloads.Monitor.load () in
  match
    Dynrecon.System.start system ~app:"nonexistent"
      ~hosts:Dr_workloads.Monitor.hosts ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown application deployed"

let test_roster_records_history () =
  let bus = make_bus () in
  register bus producer;
  spawn bus ~instance:"p" ~module_name:"producer" ~host:"hostA";
  Bus.run bus;
  Bus.kill bus ~instance:"p";
  match Bus.roster bus with
  | [ entry ] ->
    Alcotest.(check string) "instance" "p" entry.r_instance;
    Alcotest.(check string) "module" "producer" entry.r_module;
    Alcotest.(check bool) "removed" true (entry.r_status = None);
    Alcotest.(check bool) "end recorded" true (entry.r_ended <> None);
    Alcotest.(check bool) "work recorded" true (entry.r_instrs > 0)
  | roster -> Alcotest.failf "expected one entry, got %d" (List.length roster)

let () =
  Alcotest.run "bus"
    [ ( "messaging",
        [ Alcotest.test_case "spawn and route" `Quick test_spawn_and_route;
          Alcotest.test_case "unbound drops" `Quick test_unbound_interface_drops;
          Alcotest.test_case "fanout" `Quick test_fanout;
          Alcotest.test_case "latency" `Quick test_latency_ordering;
          Alcotest.test_case "blocking read wakes" `Quick test_blocking_read_wakes ] );
      ( "routes and queues",
        [ Alcotest.test_case "add/del routes" `Quick test_routes_add_del;
          Alcotest.test_case "queue ops" `Quick test_queue_operations;
          Alcotest.test_case "copy queue to itself" `Quick test_copy_queue_to_self;
          Alcotest.test_case "kill and redirect" `Quick test_kill_and_redirect;
          Alcotest.test_case "redirect without multicast duplicates" `Quick
            test_redirect_no_multicast_duplicates ] );
      ( "lifecycle",
        [ Alcotest.test_case "spawn errors" `Quick test_spawn_errors;
          Alcotest.test_case "register rejects ill-typed" `Quick
            test_register_rejects_ill_typed;
          Alcotest.test_case "crash traced" `Quick test_crash_is_traced;
          Alcotest.test_case "kill accounting" `Quick test_kill_accounting ] );
      ( "timing",
        [ Alcotest.test_case "instr cost" `Quick test_instr_cost_advances_clock;
          Alcotest.test_case "deterministic" `Quick test_deterministic_runs ] );
      ( "deploy",
        [ Alcotest.test_case "monitor app" `Quick test_deploy_monitor_app;
          Alcotest.test_case "host preference" `Quick test_deploy_host_preference;
          Alcotest.test_case "unknown app" `Quick test_deploy_unknown_app;
          Alcotest.test_case "roster history" `Quick test_roster_records_history ] ) ]
