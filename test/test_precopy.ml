(* Live pre-copy end to end (lib/reconfig/script.ml) and the delta-image
   algebra it rests on (lib/state/image.ml).

   End-to-end: a pre-copy migrate must capture a live base at the
   target's next reconfiguration point, keep the module serving until
   the freeze, and divulge a delta when (and only when) the move is
   same-layout — cross-architecture moves fall back to the full image
   with the reason on the zero-width [delta] marker. The disruption
   window opens at the freeze, so the signal/drain children are
   zero-width and the phase identity still tiles the root span.

   Property: for any generated image and any dirty pattern,
   [apply_delta ~base (diff ~base ~masks ~heap_dirty final)]
   reconstructs [final] exactly, and ships exactly the dirty slots. *)

module Bus = Dr_bus.Bus
module Script = Dr_reconfig.Script
module Metrics = Dr_obs.Metrics
module Image = Dr_state.Image
module Value = Dr_state.Value
module Synthetic = Dr_workloads.Synthetic
module I = Dr_transform.Instrument
module G = QCheck2.Gen

let hosts =
  [ { Bus.host_name = "hostA"; arch = Dr_state.Arch.x86_64 };
    { Bus.host_name = "hostB"; arch = Dr_state.Arch.sparc32 };
    { Bus.host_name = "hostD"; arch = Dr_state.Arch.x86_64 } ]

let attr span name = List.assoc_opt name (Metrics.span_attrs span)

let child root kind =
  List.find_opt
    (fun s -> String.equal (Metrics.span_kind s) kind)
    (Metrics.span_children root)

let dur span = Option.value ~default:0.0 (Metrics.span_duration span)

(* spawn the instrumented deeprec_payload worker on hostA, let it dive,
   migrate it with or without pre-copy, and return the migrate span *)
let run_migrate ~dst ~precopy =
  let registry = Metrics.create () in
  let bus = Bus.create ~hosts () in
  Bus.set_metrics bus registry;
  let prepared =
    match
      I.prepare
        (Synthetic.deeprec_payload ~depth:6 ~payload:4)
        ~points:Synthetic.deeprec_points
    with
    | Ok p -> p.I.prepared_program
    | Error e -> Alcotest.failf "instrument: %s" e
  in
  (match Bus.register_program bus prepared with
  | Ok () -> ()
  | Error e -> Alcotest.failf "register: %s" e);
  (match Bus.spawn bus ~instance:"w" ~module_name:"deeppay" ~host:"hostA" () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "spawn: %s" e);
  Bus.run ~until:5.0 bus;
  (match
     Script.run_sync bus (fun ~on_done ->
         Script.migrate bus ~precopy ~instance:"w" ~new_instance:"w2"
           ~new_host:dst ~on_done ())
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "migrate: %s" e);
  Bus.run ~until:(Bus.now bus +. 10.0) bus;
  Alcotest.(check bool) "clone is live" true
    (Option.is_some (Bus.machine bus ~instance:"w2"));
  match
    List.filter
      (fun s -> String.equal (Metrics.span_kind s) "migrate")
      (Metrics.roots registry)
  with
  | [ root ] -> root
  | roots -> Alcotest.failf "expected one migrate span, got %d" (List.length roots)

let test_same_arch_ships_delta () =
  let root = run_migrate ~dst:"hostD" ~precopy:true in
  Alcotest.(check (option string)) "span marked precopy" (Some "on")
    (attr root "precopy");
  (match child root "precopy" with
  | None -> Alcotest.fail "no precopy marker"
  | Some pc ->
    let records = int_of_string (Option.get (attr pc "base_records")) in
    Alcotest.(check bool) "base captured whole stack" true (records > 6);
    Alcotest.(check bool) "module served before the freeze" true
      (float_of_string (Option.get (attr pc "wait")) > 0.0));
  (match child root "delta" with
  | None -> Alcotest.fail "no delta marker"
  | Some dc ->
    Alcotest.(check (option string)) "no fallback" (Some "none")
      (attr dc "fallback");
    Alcotest.(check bool) "dirty slots shipped" true
      (int_of_string (Option.get (attr dc "delta_slots")) > 0));
  (* freeze-origin accounting: signal and drain collapse to zero width
     and the phase identity still tiles the window *)
  let phase k = match child root k with Some s -> dur s | None -> 0.0 in
  Alcotest.(check (float 1e-9)) "signal zero-width" 0.0 (phase "signal");
  Alcotest.(check (float 1e-9)) "drain zero-width" 0.0 (phase "drain");
  let sum =
    phase "signal" +. phase "drain" +. phase "capture" +. phase "translate"
    +. phase "restore"
  in
  Alcotest.(check (float 1e-9)) "phases tile the window" (dur root) sum

let test_cross_arch_falls_back () =
  let root = run_migrate ~dst:"hostB" ~precopy:true in
  match child root "delta" with
  | None -> Alcotest.fail "no delta marker"
  | Some dc ->
    Alcotest.(check (option string)) "cross-arch fallback" (Some "cross_arch")
      (attr dc "fallback");
    Alcotest.(check (option string)) "nothing shipped as delta" (Some "0")
      (attr dc "delta_slots")

let test_off_mode_has_no_markers () =
  let root = run_migrate ~dst:"hostD" ~precopy:false in
  Alcotest.(check (option string)) "no precopy attr" None (attr root "precopy");
  Alcotest.(check bool) "no precopy marker" true (child root "precopy" = None);
  Alcotest.(check bool) "no delta marker" true (child root "delta" = None);
  Alcotest.(check bool) "signal phase present" true
    (Option.is_some (child root "signal"))

(* ------------------------------------------------- delta differential *)

let dirty seed i j = (seed + (31 * i) + (7 * j)) mod 3 = 0

(* replace the dirty slots of [base] with fresh values; clean slots are
   untouched, exactly the write-barrier guarantee [diff] relies on *)
let mutate seed (base : Image.t) =
  let records =
    List.mapi
      (fun i (r : Image.record) ->
        { r with
          Image.values =
            List.mapi
              (fun j v ->
                if dirty seed i j then Value.Vint (seed + (100 * i) + j) else v)
              r.values })
      base.Image.records
  in
  Image.make ~source_module:base.Image.source_module ~records
    ~heap:base.Image.heap

let qcheck_delta_roundtrip =
  Support.qcheck ~count:300 "apply_delta . diff reconstructs the capture"
    (G.pair Gen.image (G.int_bound 1000))
    (fun (base, seed) ->
      let final = mutate seed base in
      let masks =
        List.mapi
          (fun i (r : Image.record) ->
            Array.init (List.length r.Image.values) (fun j -> dirty seed i j))
          base.Image.records
      in
      let dirty_count =
        List.fold_left
          (fun acc m -> Array.fold_left (fun a b -> if b then a + 1 else a) acc m)
          0 masks
      in
      match Image.diff ~base ~masks ~heap_dirty:(fun _ -> false) final with
      | None -> QCheck2.Test.fail_report "diff refused a well-formed pair"
      | Some d -> (
        if List.length d.Image.d_slots <> dirty_count then
          QCheck2.Test.fail_reportf "shipped %d slots for %d dirty"
            (List.length d.Image.d_slots)
            dirty_count
        else
          match Image.apply_delta ~base d with
          | None -> QCheck2.Test.fail_report "apply_delta refused its own diff"
          | Some rebuilt -> Image.equal rebuilt final))

let qcheck_delta_wrong_base =
  Support.qcheck ~count:100 "apply_delta refuses a foreign base"
    (G.pair Gen.image (G.int_bound 1000))
    (fun (base, seed) ->
      let final = mutate seed base in
      let masks =
        List.mapi
          (fun i (r : Image.record) ->
            Array.init (List.length r.Image.values) (fun j -> dirty seed i j))
          base.Image.records
      in
      match Image.diff ~base ~masks ~heap_dirty:(fun _ -> false) final with
      | None -> QCheck2.Test.fail_report "diff refused a well-formed pair"
      | Some d ->
        let foreign =
          Image.push_record base
            { Image.location = 99; values = [ Value.Vint 1 ] }
        in
        Image.apply_delta ~base:foreign d = None)

let () =
  Alcotest.run "precopy"
    [ ( "end to end",
        [ Alcotest.test_case "same-arch ships a delta" `Quick
            test_same_arch_ships_delta;
          Alcotest.test_case "cross-arch falls back" `Quick
            test_cross_arch_falls_back;
          Alcotest.test_case "off mode unchanged" `Quick
            test_off_mode_has_no_markers ] );
      ("delta", [ qcheck_delta_roundtrip; qcheck_delta_wrong_base ]) ]
