module I = Dr_transform.Instrument
module Ast = Dr_lang.Ast
module Rg = Dr_analysis.Reconfig_graph

let monitor_compute =
  {|
module compute;

proc main() {
  var n: int;
  var response: float;
  mh_init();
  while (true) {
    while (mh_query("display")) {
      mh_read("display", n);
      compute(n, n, response);
      mh_write("display", response);
    }
    if (mh_query("sensor")) {
      compute(1, 1, response);
    }
    sleep(2);
  }
}

proc compute(num: int, n: int, ref rp: float) {
  var temper: int;
  if (n <= 0) { rp = 0.0; return; }
  compute(num, n - 1, rp);
  R: mh_read("sensor", temper);
  rp = rp + float(temper) / float(num);
}
|}

let prepared = lazy (Support.prepare monitor_compute [ Support.point "compute" "R" ])

let count_in_block pred block =
  let n = ref 0 in
  Ast.iter_stmts (fun s -> if pred s then incr n) block;
  !n

let is_capture_block (s : Ast.stmt) =
  match s.kind with
  | Ast.If (Var "mh_capturestack", body, []) ->
    List.exists
      (fun (b : Ast.stmt) ->
        match b.kind with Ast.BuiltinS ("mh_capture", _) -> true | _ -> false)
      body
  | _ -> false

let is_point_block (s : Ast.stmt) =
  match s.kind with
  | Ast.If (Var "mh_reconfig", body, []) ->
    List.exists
      (fun (b : Ast.stmt) ->
        match b.kind with Ast.BuiltinS ("mh_capture", _) -> true | _ -> false)
      body
  | _ -> false

let is_restore_block (s : Ast.stmt) =
  match s.kind with
  | Ast.If (Var "mh_restoring", body, []) ->
    List.exists
      (fun (b : Ast.stmt) ->
        match b.kind with Ast.BuiltinS ("mh_restore", _) -> true | _ -> false)
      body
  | _ -> false

let proc_of prog name = Option.get (Ast.find_proc prog name)

let test_flags_and_handler_added () =
  let p = (Lazy.force prepared).I.prepared_program in
  List.iter
    (fun flag ->
      match Ast.find_global p flag with
      | Some _ -> ()
      | None -> Alcotest.failf "missing flag global %s" flag)
    I.flag_globals;
  match Ast.find_proc p I.handler_proc_name with
  | Some handler -> (
    match handler.body with
    | [ { kind = Ast.Assign (Lvar "mh_reconfig", Bool true); _ } ] -> ()
    | _ -> Alcotest.fail "handler body should set mh_reconfig")
  | None -> Alcotest.fail "missing handler proc"

let test_paper_numbering () =
  (* main first in the source, as in Fig. 3, so edges are numbered as in
     Fig. 4: 1 and 2 in main, 3 for compute's self-call, 4 for R *)
  let graph = (Lazy.force prepared).I.graph in
  let kinds =
    List.map
      (function
        | Rg.Call_edge { index; src; _ } -> (index, src, "call")
        | Rg.Point_edge { index; src; _ } -> (index, src, "point"))
      graph.edges
  in
  Alcotest.(check (list (triple int string string)))
    "edges 1..4"
    [ (1, "main", "call"); (2, "main", "call"); (3, "compute", "call");
      (4, "compute", "point") ]
    kinds

let test_capture_blocks_placed () =
  let p = (Lazy.force prepared).I.prepared_program in
  let main = proc_of p "main" in
  let compute = proc_of p "compute" in
  Alcotest.(check int) "two call-edge capture blocks in main" 2
    (count_in_block is_capture_block main.body);
  Alcotest.(check int) "no point blocks in main" 0
    (count_in_block is_point_block main.body);
  Alcotest.(check int) "one call-edge capture block in compute" 1
    (count_in_block is_capture_block compute.body);
  Alcotest.(check int) "one point block in compute" 1
    (count_in_block is_point_block compute.body)

let test_restore_blocks_at_top () =
  let p = (Lazy.force prepared).I.prepared_program in
  let compute = proc_of p "compute" in
  (match compute.body with
  | first :: _ ->
    Alcotest.(check bool) "compute starts with restore block" true
      (is_restore_block first)
  | [] -> Alcotest.fail "empty compute");
  let main = proc_of p "main" in
  match main.body with
  | status_check :: restore :: signal_install :: _ ->
    (match status_check.kind with
    | Ast.If (Binop (Eq, Builtin ("mh_getstatus", []), Str "clone"), _, _) -> ()
    | _ -> Alcotest.fail "main should start with the clone-status check");
    Alcotest.(check bool) "then restore block" true (is_restore_block restore);
    (match signal_install.kind with
    | Ast.BuiltinS ("signal", [ Aexpr (Str h) ]) ->
      Alcotest.(check string) "installs handler" I.handler_proc_name h
    | _ -> Alcotest.fail "main should install the signal handler")
  | _ -> Alcotest.fail "main prelude too short"

let test_main_encodes () =
  let p = (Lazy.force prepared).I.prepared_program in
  let has_encode block =
    count_in_block
      (fun s -> match s.kind with Ast.BuiltinS ("mh_encode", _) -> true | _ -> false)
      block
  in
  Alcotest.(check int) "main capture blocks encode" 2 (has_encode (proc_of p "main").body);
  Alcotest.(check int) "compute never encodes" 0
    (has_encode (proc_of p "compute").body);
  let has_decode block =
    count_in_block
      (fun s -> match s.kind with Ast.BuiltinS ("mh_decode", _) -> true | _ -> false)
      block
  in
  Alcotest.(check int) "main decodes" 1 (has_decode (proc_of p "main").body);
  Alcotest.(check int) "compute never decodes" 0
    (has_decode (proc_of p "compute").body)

let test_generated_labels () =
  let p = (Lazy.force prepared).I.prepared_program in
  let labels proc = Ast.labels_in_block (proc_of p proc).body in
  Alcotest.(check bool) "main has _L1 and _L2" true
    (List.mem (I.generated_label 1) (labels "main")
    && List.mem (I.generated_label 2) (labels "main"));
  Alcotest.(check bool) "compute has _L3 and keeps R" true
    (List.mem (I.generated_label 3) (labels "compute")
    && List.mem "R" (labels "compute"))

let test_capture_sets () =
  let prepared = Lazy.force prepared in
  Alcotest.(check (list string)) "main captures locals (no globals present)"
    [ "n"; "response" ]
    (List.assoc "main" prepared.I.capture_sets);
  Alcotest.(check (list string)) "compute captures params then locals"
    [ "num"; "n"; "rp"; "temper" ]
    (List.assoc "compute" prepared.I.capture_sets)

let test_globals_captured_in_main () =
  let prepared =
    Support.prepare
      "module t;\nvar g: int = 1;\nproc main() { while (true) { R: sleep(1); } }"
      [ Support.point "main" "R" ]
  in
  Alcotest.(check (list string)) "globals appended to main's set" [ "g" ]
    (List.assoc "main" prepared.I.capture_sets)

let test_output_reparses_and_typechecks () =
  let p = (Lazy.force prepared).I.prepared_program in
  let printed = Dr_lang.Pretty.program_to_string p in
  let reparsed = Support.parse printed in
  Alcotest.(check bool) "reparses equal" true (Ast.equal_program p reparsed);
  Support.typecheck_ok reparsed

let test_untouched_procs () =
  (* procedures outside the reconfiguration graph are left alone *)
  let source =
    "module t;\n\
     proc pure(x: int): int { return x + 1; }\n\
     proc hot() { R: skip; }\n\
     proc main() { var y: int; y = pure(1); hot(); }"
  in
  let prepared = Support.prepare source [ Support.point "hot" "R" ] in
  let original = Support.parse source in
  let p = prepared.I.prepared_program in
  Alcotest.(check bool) "pure unchanged" true
    (Ast.equal_proc (proc_of original "pure") (proc_of p "pure"))

let test_reserved_names_rejected () =
  let reject source =
    match
      I.prepare (Support.parse source) ~points:[ Support.point "main" "R" ]
    with
    | Error e ->
      Alcotest.(check bool) "mentions reserved" true
        (let contains needle haystack =
           let n = String.length needle and h = String.length haystack in
           let rec go i =
             i + n <= h && (String.sub haystack i n = needle || go (i + 1))
           in
           n = 0 || go 0
         in
         contains "reserved" e)
    | Ok _ -> Alcotest.fail "expected rejection"
  in
  reject "module t;\nvar mh_reconfig: bool;\nproc main() { R: skip; }";
  reject "module t;\nproc mh_catchreconfig() { }\nproc main() { R: skip; }";
  reject "module t;\nproc main() { var mh_location: int; R: skip; }";
  reject "module t;\nproc main() { _L1: skip; R: skip; }"

let test_ill_typed_rejected () =
  match
    I.prepare
      (Support.parse "module t;\nproc main() { x = 1; R: skip; }")
      ~points:[ Support.point "main" "R" ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected typecheck rejection"

let test_dummy_arguments () =
  (* the restore re-invocation must replace faultable argument
     expressions (calls, division, indexing) with dummies, but keep
     variables, literals and safe arithmetic *)
  let source =
    {|
module t;

proc risky(): int { return 1; }

proc f(a: int, b: int, c: int, d: int, ref out: int) {
  R: out = a + b + c + d;
}

proc main() {
  var x: int;
  var arr: int[];
  var r: int;
  arr = alloc_int(4);
  while (true) {
    f(x, x + 1, arr[0], risky(), r);
  }
}
|}
  in
  let prepared = Support.prepare source [ Support.point "f" "R" ] in
  let main = proc_of prepared.I.prepared_program "main" in
  let restore_calls = ref [] in
  Ast.iter_stmts
    (fun s ->
      match s.kind with
      | Ast.If (Var "mh_restoring", body, []) ->
        Ast.iter_stmts
          (fun inner ->
            match inner.kind with
            | Ast.CallS ("f", args) -> restore_calls := args :: !restore_calls
            | _ -> ())
          body
      | _ -> ())
    main.body;
  match !restore_calls with
  | [ [ a; b; c; d; out ] ] ->
    Alcotest.(check bool) "variable kept" true (a = Ast.Var "x");
    Alcotest.(check bool) "safe arithmetic kept" true
      (b = Ast.Binop (Ast.Add, Var "x", Int 1));
    Alcotest.(check bool) "index dummied" true (c = Ast.Int 0);
    Alcotest.(check bool) "call dummied" true (d = Ast.Int 0);
    Alcotest.(check bool) "ref kept" true (out = Ast.Var "r")
  | calls -> Alcotest.failf "expected one restore call, got %d" (List.length calls)

let test_liveness_trims () =
  let source =
    {|
module t;

proc f(used: int, dead: int) {
  var live_later: int;
  var never: int;
  live_later = used;
  while (true) {
    R: print(live_later);
    sleep(1);
  }
}

proc main() { f(1, 2); }
|}
  in
  let with_liveness =
    Support.prepare ~options:{ I.default_options with use_liveness = true } source
      [ Support.point "f" "R" ]
  in
  let without =
    Support.prepare source [ Support.point "f" "R" ]
  in
  Alcotest.(check (list string)) "default keeps everything"
    [ "used"; "dead"; "live_later"; "never" ]
    (List.assoc "f" without.I.capture_sets);
  Alcotest.(check (list string)) "liveness keeps only the live"
    [ "live_later" ]
    (List.assoc "f" with_liveness.I.capture_sets)

let test_point_vars_validated () =
  let ok =
    I.prepare (Support.parse monitor_compute)
      ~points:
        [ { I.pt_proc = "compute"; pt_label = "R"; pt_vars = Some [ "num"; "n"; "rp" ] } ]
  in
  (match ok with Ok _ -> () | Error e -> Alcotest.failf "should accept: %s" e);
  match
    I.prepare (Support.parse monitor_compute)
      ~points:
        [ { I.pt_proc = "compute"; pt_label = "R"; pt_vars = Some [ "ghost" ] } ]
  with
  | Error e ->
    Alcotest.(check bool) "mentions variable" true
      (let contains needle haystack =
         let n = String.length needle and h = String.length haystack in
         let rec go i =
           i + n <= h && (String.sub haystack i n = needle || go (i + 1))
         in
         n = 0 || go 0
       in
       contains "ghost" e)
  | Ok _ -> Alcotest.fail "expected rejection of unknown state variable"

let test_multiple_points_share_call_captures () =
  (* two points reachable through the same call site must not duplicate
     that site's capture block (paper §3: "reconfiguration points can
     share capture blocks") *)
  let source =
    {|
module t;

proc worker(mode: int) {
  if (mode == 0) { R1: skip; } else { R2: skip; }
}

proc main() {
  while (true) {
    worker(0);
    sleep(1);
  }
}
|}
  in
  let prepared =
    Support.prepare source [ Support.point "worker" "R1"; Support.point "worker" "R2" ]
  in
  let main = proc_of prepared.I.prepared_program "main" in
  Alcotest.(check int) "single capture block at the shared call site" 1
    (count_in_block is_capture_block main.body)

let test_point_in_main_directly () =
  let source =
    "module t;\nvar count: int = 0;\nproc main() { while (true) { count = count + 1; R: sleep(1); } }"
  in
  let prepared = Support.prepare source [ Support.point "main" "R" ] in
  let main = proc_of prepared.I.prepared_program "main" in
  Alcotest.(check int) "point block present" 1 (count_in_block is_point_block main.body);
  (* the point block in main must encode before returning *)
  let encodes_in_point = ref false in
  Ast.iter_stmts
    (fun s ->
      if is_point_block s then
        match s.kind with
        | Ast.If (_, body, _) ->
          List.iter
            (fun (b : Ast.stmt) ->
              match b.kind with
              | Ast.BuiltinS ("mh_encode", _) -> encodes_in_point := true
              | _ -> ())
            body
        | _ -> ())
    main.body;
  Alcotest.(check bool) "encodes" true !encodes_in_point

let test_transparency_hotloop () =
  (* with no signal, the instrumented program prints exactly what the
     original prints *)
  let original = Dr_workloads.Synthetic.hotloop ~rounds:8 ~inner:5 in
  List.iter
    (fun placement ->
      match
        I.prepare original ~points:(Dr_workloads.Synthetic.hotloop_points placement)
      with
      | Error e -> Alcotest.failf "prepare failed: %s" e
      | Ok prepared ->
        let run program =
          let sio = Support.script_io () in
          let m = Dr_interp.Machine.create ~io:sio.Support.io program in
          Dr_interp.Machine.run ~max_steps:1_000_000 m;
          Support.printed sio
        in
        Alcotest.(check (list string)) "same output" (run original)
          (run prepared.I.prepared_program))
    [ `Inner; `Outer; `Rare ]

(* Robustness fuzzing: prepare must never raise on arbitrary ASTs — it
   either rejects with a message or returns a program that typechecks
   and round-trips through the printer. *)
let prop_prepare_total =
  Support.qcheck ~count:300 "prepare is total and sound on random ASTs"
    Gen.program
    (fun program ->
      (* nominate every label that exists as a point (if any) *)
      let points =
        List.concat_map
          (fun (p : Ast.proc) ->
            List.map
              (fun label ->
                { I.pt_proc = p.proc_name; pt_label = label; pt_vars = None })
              (Ast.labels_in_block p.body))
          program.procs
      in
      match I.prepare program ~points with
      | Error _ -> true  (* rejection with a message is fine *)
      | Ok prepared ->
        let out = prepared.I.prepared_program in
        (match Dr_lang.Typecheck.check out with
        | Ok () -> ()
        | Error _ -> QCheck2.Test.fail_report "instrumented output ill-typed");
        let printed = Dr_lang.Pretty.program_to_string out in
        (match Dr_lang.Parser.parse_program printed with
        | reparsed ->
          if not (Ast.equal_program out reparsed) then
            QCheck2.Test.fail_report "instrumented output does not round-trip"
        | exception _ ->
          QCheck2.Test.fail_report "instrumented output unparseable");
        true
      | exception e ->
        QCheck2.Test.fail_reportf "prepare raised: %s" (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Capture/restore bug sweep: signal-timing differentials.

   For every step count k we run the instrumented program standalone,
   deliver the reconfiguration signal after k steps, restore the
   divulged image into a clone, and require the combined output to
   match an unsignalled reference run.  Running the sweep on both the
   compiled machine and the AST reference machine makes each engine an
   oracle for the other. *)

type engine = {
  eng_name : string;
  eng_run_plain : Ast.program -> string list;
  eng_run_signalled : Ast.program -> int -> string list * bool;
      (* output incl. clone, and whether an image was divulged *)
}

let compiled_engine =
  let module M = Dr_interp.Machine in
  let finish label m =
    M.run ~max_steps:1_000_000 m;
    match M.status m with
    | M.Halted -> ()
    | s -> Alcotest.failf "%s not halted: %a" label M.pp_status s
  in
  { eng_name = "compiled";
    eng_run_plain =
      (fun program ->
        let sio = Support.script_io () in
        let m = M.create ~io:sio.Support.io program in
        finish "reference" m;
        Support.printed sio);
    eng_run_signalled =
      (fun program k ->
        let sio = Support.script_io () in
        let m = M.create ~io:sio.Support.io program in
        let steps = ref 0 in
        while M.status m = M.Ready && !steps < k do
          M.step m;
          incr steps
        done;
        M.deliver_signal m;
        finish "signalled run" m;
        match List.rev sio.Support.divulged with
        | [] -> (Support.printed sio, false)
        | [ image ] ->
          let cio = Support.script_io () in
          let clone = M.create ~status_attr:"clone" ~io:cio.Support.io program in
          M.feed_image clone image;
          finish "clone" clone;
          (Support.printed sio @ Support.printed cio, true)
        | images -> Alcotest.failf "divulged %d images" (List.length images)) }

let ast_engine =
  let module M = Dr_interp.Ast_machine in
  let finish label m =
    M.run ~max_steps:1_000_000 m;
    match M.status m with
    | M.Halted -> ()
    | s -> Alcotest.failf "%s not halted: %a" label M.pp_status s
  in
  { eng_name = "ast";
    eng_run_plain =
      (fun program ->
        let sio = Support.script_io () in
        let m = M.create ~io:sio.Support.io program in
        finish "reference" m;
        Support.printed sio);
    eng_run_signalled =
      (fun program k ->
        let sio = Support.script_io () in
        let m = M.create ~io:sio.Support.io program in
        let steps = ref 0 in
        while M.status m = M.Ready && !steps < k do
          M.step m;
          incr steps
        done;
        M.deliver_signal m;
        finish "signalled run" m;
        match List.rev sio.Support.divulged with
        | [] -> (Support.printed sio, false)
        | [ image ] ->
          let cio = Support.script_io () in
          let clone = M.create ~status_attr:"clone" ~io:cio.Support.io program in
          M.feed_image clone image;
          finish "clone" clone;
          (Support.printed sio @ Support.printed cio, true)
        | images -> Alcotest.failf "divulged %d images" (List.length images)) }

let signal_sweep ?(max_k = 150) ~options source points =
  let prepared = Support.prepare ~options source points in
  let program = prepared.I.prepared_program in
  List.iter
    (fun eng ->
      let reference = eng.eng_run_plain program in
      let any_divulged = ref false in
      for k = 0 to max_k do
        let prints, divulged = eng.eng_run_signalled program k in
        if divulged then any_divulged := true;
        if prints <> reference then
          Alcotest.failf "[%s] k=%d: got [%s], want [%s]" eng.eng_name k
            (String.concat "; " prints)
            (String.concat "; " reference)
      done;
      Alcotest.(check bool)
        (eng.eng_name ^ ": some signal divulged an image")
        true !any_divulged)
    [ compiled_engine; ast_engine ];
  prepared

(* Regression (liveness at back edges): a declaration without an
   initialiser lowers to no instruction, so its frame slot carries the
   previous iteration's value around the loop back edge.  The liveness
   trim used to treat the bare decl as a definition and drop the
   variable from the capture set at a point inside the loop. *)
let test_noinit_decl_backedge () =
  ignore
    (signal_sweep
       ~options:{ I.default_options with use_liveness = true }
       {|module i;
proc main() {
  var i: int = 0;
  var s: int = 0;
  while (i < 5) {
    R: skip;
    var t: int;
    s = s + t;
    t = i * 10;
    i = i + 1;
  }
  print(s);
}|}
       [ Support.point "main" "R" ])

(* Same defect observed through a call edge instead of a point edge. *)
let test_noinit_decl_call_edge () =
  ignore
    (signal_sweep
       ~options:{ I.default_options with use_liveness = true }
       {|module j;
proc leaf() { R: skip; }
proc main() {
  var i: int = 0;
  var s: int = 0;
  while (i < 5) {
    leaf();
    var t: int;
    s = s + t;
    t = i * 10;
    i = i + 1;
  }
  print(s);
}|}
       [ Support.point "leaf" "R" ])

let shadowed_global_source =
  {|module g;
var counter: int = 100;
proc tick() { counter = counter + 1; R: skip; }
proc main() {
  var counter: int = 0;
  while (counter < 5) {
    tick();
    counter = counter + 1;
  }
  print(counter);
  report();
}
proc report() { print(counter); }|}

(* Regression (restore with shadowed names): main's capture list is
   params @ locals @ globals, so a main local shadowing a module global
   produced two records with the same name — and both capture and
   restore resolved to the local slot, silently losing the global's
   value across reconfiguration.  [prepare] now alpha-renames the
   shadowing local first. *)
let test_shadowed_global () =
  List.iter
    (fun use_liveness ->
      ignore
        (signal_sweep
           ~options:{ I.default_options with use_liveness }
           shadowed_global_source
           [ Support.point "tick" "R" ]))
    [ false; true ]

(* The renamed local must appear in main's capture set alongside the
   global, with no duplicate names left. *)
let test_shadow_rename_in_capture_set () =
  let prepared =
    Support.prepare shadowed_global_source [ Support.point "tick" "R" ]
  in
  let main_set =
    match List.assoc_opt "main" prepared.I.capture_sets with
    | Some vars -> vars
    | None -> Alcotest.failf "main has no capture set"
  in
  Alcotest.(check bool)
    "renamed local captured" true
    (List.mem "counter_l0" main_set);
  Alcotest.(check bool) "global captured" true (List.mem "counter" main_set);
  Alcotest.(check int) "no duplicate names"
    (List.length main_set)
    (List.length (List.sort_uniq String.compare main_set))

(* Shadowing across a recursive procedure with two reconfiguration
   points: the clone must rebuild the whole activation-record stack and
   still keep the shadowed global distinct from main's local. *)
let test_shadowed_global_recursive_two_points () =
  ignore
    (signal_sweep
       ~options:{ I.default_options with use_liveness = true }
       {|module g2;
var depth: int = 0;
proc dive(n: int, ref acc: int) {
  var here: int = n * 10;
  if (n > 0) {
    dive(n - 1, acc);
    R1: acc = acc + here;
  }
  depth = depth + 1;
  R2: skip;
}
proc main() {
  var depth: int = 0;
  var total: int = 0;
  while (depth < 3) {
    dive(2, total);
    depth = depth + 1;
  }
  print(depth);
  print(total);
  report();
}
proc report() { print(depth); }|}
       [ Support.point "dive" "R1"; Support.point "dive" "R2" ])

(* A local shadowing a parameter of the same procedure is statically
   illegal (locals are function-scoped), so that variant of the hazard
   cannot reach the transform at all. *)
let test_local_shadowing_param_rejected () =
  let errors =
    Support.typecheck_errors
      (Support.parse
         {|module bad;
proc f(x: int) {
  var x: int = 0;
  R: print(x);
}
proc main() { f(1); }|})
  in
  Alcotest.(check bool) "rejected" true (errors <> []);
  Alcotest.(check bool) "mentions duplicate" true
    (List.exists
       (fun m ->
         let has needle =
           let nl = String.length needle and ml = String.length m in
           let rec scan i = i + nl <= ml && (String.sub m i nl = needle || scan (i + 1)) in
           scan 0
         in
         has "duplicate")
       errors)

(* Regression (silent empty capture set): a point naming a procedure
   absent from the capture-set table must fail loudly, never validate
   vacuously. *)
let test_unknown_point_proc_loud () =
  let table = Hashtbl.create 4 in
  Hashtbl.replace table "main" [ "x"; "y" ];
  (match
     I.validate_point_vars
       [ { I.pt_proc = "mian"; pt_label = "R"; pt_vars = Some [ "x" ] } ]
       table
   with
  | Ok () -> Alcotest.failf "unknown procedure validated silently"
  | Error msg ->
    Alcotest.(check bool) "message names the procedure" true
      (let needle = "mian" in
       let nl = String.length needle and ml = String.length msg in
       let rec scan i = i + nl <= ml && (String.sub msg i nl = needle || scan (i + 1)) in
       scan 0));
  (* and the same point without declared vars is still an error: the
     table entry is missing, not merely unchecked *)
  match
    I.validate_point_vars
      [ { I.pt_proc = "mian"; pt_label = "R"; pt_vars = None } ]
      table
  with
  | Ok () -> Alcotest.failf "unknown procedure without pt_vars validated silently"
  | Error _ -> ()

let () =
  Alcotest.run "transform"
    [ ( "structure",
        [ Alcotest.test_case "flags and handler" `Quick test_flags_and_handler_added;
          Alcotest.test_case "paper numbering" `Quick test_paper_numbering;
          Alcotest.test_case "capture blocks" `Quick test_capture_blocks_placed;
          Alcotest.test_case "restore blocks" `Quick test_restore_blocks_at_top;
          Alcotest.test_case "main encodes/decodes" `Quick test_main_encodes;
          Alcotest.test_case "generated labels" `Quick test_generated_labels;
          Alcotest.test_case "capture sets" `Quick test_capture_sets;
          Alcotest.test_case "globals in main" `Quick test_globals_captured_in_main;
          Alcotest.test_case "untouched procs" `Quick test_untouched_procs;
          Alcotest.test_case "shared capture blocks" `Quick
            test_multiple_points_share_call_captures;
          Alcotest.test_case "point in main" `Quick test_point_in_main_directly ] );
      ( "validity",
        [ Alcotest.test_case "output reparses+typechecks" `Quick
            test_output_reparses_and_typechecks;
          Alcotest.test_case "reserved names" `Quick test_reserved_names_rejected;
          Alcotest.test_case "ill-typed input" `Quick test_ill_typed_rejected;
          Alcotest.test_case "point vars validated" `Quick test_point_vars_validated ] );
      ( "semantics",
        [ Alcotest.test_case "dummy arguments" `Quick test_dummy_arguments;
          Alcotest.test_case "liveness trimming" `Quick test_liveness_trims;
          Alcotest.test_case "transparency" `Quick test_transparency_hotloop ] );
      ( "bug sweep",
        [ Alcotest.test_case "no-init decl at back edge" `Quick
            test_noinit_decl_backedge;
          Alcotest.test_case "no-init decl at call edge" `Quick
            test_noinit_decl_call_edge;
          Alcotest.test_case "shadowed global" `Quick test_shadowed_global;
          Alcotest.test_case "shadow rename in capture set" `Quick
            test_shadow_rename_in_capture_set;
          Alcotest.test_case "recursive two-point shadow" `Quick
            test_shadowed_global_recursive_two_points;
          Alcotest.test_case "local shadowing param rejected" `Quick
            test_local_shadowing_param_rejected;
          Alcotest.test_case "unknown point proc is loud" `Quick
            test_unknown_point_proc_loud ] );
      ("properties", [ prop_prepare_total ]) ]
