(* The durable control plane: WAL storage, log recovery, and
   crash-recovery of reconfiguration scripts.

   Three layers under test. The log itself (Dr_wal.Wal) must recover a
   clean prefix or fail loudly — never mis-parse — whatever a crash or
   a corruptor does to its blobs (fuzzed: torn tails, flipped bits,
   duplicated segments, empty files). Its safety invariants (LSNs
   strictly increasing and contiguous across segments, checkpoint
   monotonic) are checked as monitors over randomised op sequences.
   And the journal's write-ahead discipline must make controller
   crashes invisible: replaying the log after a crash at any append
   index rolls an in-flight script back with a trace byte-identical
   (per rollback line) to the rollback a live controller would have
   performed on the same prefix. *)

module Bus = Dr_bus.Bus
module Faults = Dr_bus.Faults
module Script = Dr_reconfig.Script
module Journal = Dr_reconfig.Journal
module Persist = Dr_reconfig.Persist
module Recovery = Dr_reconfig.Recovery
module Storage = Dr_wal.Storage
module Wal = Dr_wal.Wal
module Ring = Dr_workloads.Ring

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* fresh memory-backed log *)
let mem_wal ?config () =
  let mem = Storage.memory () in
  (mem, ok (Wal.create ?config (Storage.storage_of_mem mem)))

let reopen ?config mem = Wal.create ?config (Storage.storage_of_mem mem)

let payload i = Bytes.of_string (Printf.sprintf "record-%04d" i)

let append_n wal ~n =
  for i = 1 to n do
    ignore (Wal.append wal ~kind:2 (payload i) : int)
  done

let lsns records = List.map (fun (lsn, _, _) -> lsn) records

let rec is_prefix shorter longer =
  match (shorter, longer) with
  | [], _ -> true
  | _, [] -> false
  | a :: s, b :: l -> a = b && is_prefix s l

(* --------------------------------------------------------- log basics *)

let test_roundtrip () =
  let mem, wal = mem_wal () in
  append_n wal ~n:10;
  Alcotest.(check (list int)) "contiguous LSNs from 1"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (lsns (Wal.records wal));
  let wal2 = ok (reopen mem) in
  Alcotest.(check bool) "reopen preserves records" true
    (Wal.records wal = Wal.records wal2);
  Alcotest.(check int) "next lsn resumes" 11 (Wal.next_lsn wal2);
  ok (Wal.check_invariants wal2)

let test_crash_loses_unsynced_tail () =
  let mem, wal = mem_wal ~config:{ Wal.segment_bytes = 1 lsl 16; sync_every = 100 } () in
  append_n wal ~n:8;
  Wal.sync wal;
  append_n wal ~n:3;
  (* 3 appends buffered, never synced *)
  Storage.crash mem;
  let wal2 = ok (reopen mem) in
  Alcotest.(check (list int)) "synced prefix survives"
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    (lsns (Wal.records wal2));
  ok (Wal.check_invariants wal2)

let test_torn_tail_truncated () =
  let mem, wal = mem_wal () in
  append_n wal ~n:6;
  let seg = List.hd (Wal.segment_names wal) in
  let storage = Storage.storage_of_mem mem in
  let size = Bytes.length (ok (storage.Storage.st_read seg)) in
  Storage.truncate_blob mem ~blob:seg ~len:(size - 5);
  let wal2 = ok (reopen mem) in
  let r = Wal.open_report wal2 in
  Alcotest.(check int) "one record lost" 5 r.or_records;
  Alcotest.(check bool) "truncation reported" true (r.or_truncated_bytes > 0);
  (* the heal is durable: a second reopen sees a clean log *)
  let wal3 = ok (reopen mem) in
  Alcotest.(check int) "no further truncation" 0
    (Wal.open_report wal3).or_truncated_bytes;
  ok (Wal.check_invariants wal3)

let test_early_segment_damage_fails_loudly () =
  let config = { Wal.segment_bytes = 64; sync_every = 1 } in
  let mem, wal = mem_wal ~config () in
  append_n wal ~n:20;
  Alcotest.(check bool) "multiple segments" true
    (List.length (Wal.segment_names wal) > 2);
  (* damage the FIRST segment: that is corruption, not a crash *)
  Storage.corrupt_byte mem ~blob:(List.hd (Wal.segment_names wal)) ~at:10;
  (match reopen mem with
  | Error e ->
    Alcotest.(check bool) "error names the segment" true (contains "seg-" e)
  | Ok _ -> Alcotest.fail "damaged early segment recovered silently")

let test_checkpoint_gc_and_state () =
  let config = { Wal.segment_bytes = 128; sync_every = 1 } in
  let mem, wal = mem_wal ~config () in
  append_n wal ~n:30;
  Wal.checkpoint ~state:(Bytes.of_string "cp-state") wal;
  append_n wal ~n:5;
  Alcotest.(check int) "only post-checkpoint records live" 5
    (List.length (Wal.records wal));
  let wal2 = ok (reopen ~config mem) in
  Alcotest.(check int) "checkpoint survives reopen" (Wal.checkpoint_lsn wal)
    (Wal.checkpoint_lsn wal2);
  Alcotest.(check (option string)) "checkpoint state survives reopen"
    (Some "cp-state")
    (Option.map Bytes.to_string (Wal.checkpoint_state wal2));
  Alcotest.(check int) "records after reopen" 5
    (List.length (Wal.records wal2));
  ok (Wal.check_invariants wal2)

let test_empty_log () =
  let mem, wal = mem_wal () in
  Alcotest.(check int) "no records" 0 (List.length (Wal.records wal));
  let wal2 = ok (reopen mem) in
  Alcotest.(check int) "reopen of fresh log" 0
    (Wal.open_report wal2).or_records;
  ok (Wal.check_invariants wal2)

(* ------------------------------------------------------- file backend *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let tmp_counter = ref 0

let with_tmpdir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "drwal-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_file_backend_roundtrip () =
  with_tmpdir @@ fun dir ->
  let config = { Wal.segment_bytes = 256; sync_every = 1 } in
  let wal = ok (Wal.create ~config (Storage.file ~dir)) in
  append_n wal ~n:25;
  Wal.sync wal;
  let first = Wal.records wal in
  (* a second process opens the same directory *)
  let wal2 = ok (Wal.create ~config (Storage.file ~dir)) in
  Alcotest.(check bool) "records survive on disk" true
    (first = Wal.records wal2);
  Alcotest.(check int) "25 records" 25 (List.length first);
  ok (Wal.check_invariants wal2)

let test_file_backend_torn_tail () =
  with_tmpdir @@ fun dir ->
  let wal = ok (Wal.create (Storage.file ~dir)) in
  append_n wal ~n:4;
  Wal.sync wal;
  let seg = List.hd (Wal.segment_names wal) in
  let path = Filename.concat dir seg in
  let size = (Unix.stat path).Unix.st_size in
  Unix.truncate path (size - 3);
  let wal2 = ok (Wal.create (Storage.file ~dir)) in
  Alcotest.(check int) "clean prefix recovered" 3
    (Wal.open_report wal2).or_records;
  ok (Wal.check_invariants wal2)

(* -------------------------------------------------------- decoder fuzz *)

(* reference: records of a freshly written log *)
let build_log ~seg_bytes ~n =
  let config = { Wal.segment_bytes = seg_bytes; sync_every = 1 } in
  let mem, wal = mem_wal ~config () in
  append_n wal ~n;
  (mem, Wal.records wal)

let fuzz_truncated_tail =
  Support.qcheck ~count:100 "fuzz: truncated tail recovers a clean prefix"
    QCheck2.Gen.(pair (int_range 1 40) (int_range 0 200))
    (fun (n, cut) ->
      let mem, original = build_log ~seg_bytes:256 ~n in
      let storage = Storage.storage_of_mem mem in
      let segs =
        List.filter (fun b -> contains "seg-" b) (storage.Storage.st_list ())
      in
      let last = List.nth segs (List.length segs - 1) in
      let size = Bytes.length (ok (storage.Storage.st_read last)) in
      Storage.truncate_blob mem ~blob:last ~len:(max 0 (size - cut));
      match reopen mem with
      | Error _ -> true (* loud failure is acceptable, silence is not *)
      | Ok wal ->
        let recovered = Wal.records wal in
        is_prefix recovered original
        && Result.is_ok (Wal.check_invariants wal))

let fuzz_bit_flip =
  Support.qcheck ~count:200 "fuzz: flipped bit never mis-parses"
    QCheck2.Gen.(triple (int_range 1 40) (int_range 0 10_000) (int_range 0 10_000))
    (fun (n, blob_pick, at_pick) ->
      let mem, original = build_log ~seg_bytes:256 ~n in
      let storage = Storage.storage_of_mem mem in
      let blobs = storage.Storage.st_list () in
      let blob = List.nth blobs (blob_pick mod List.length blobs) in
      let size = Bytes.length (ok (storage.Storage.st_read blob)) in
      if size = 0 then true
      else begin
        Storage.corrupt_byte mem ~blob ~at:(at_pick mod size);
        match reopen mem with
        | Error _ -> true
        | Ok wal -> (
          match Wal.records wal with
          | recovered -> is_prefix recovered original
          | exception Invalid_argument _ -> true)
      end)

let fuzz_duplicated_segment =
  Support.qcheck ~count:100 "fuzz: duplicated segment rejected or truncated"
    QCheck2.Gen.(pair (int_range 4 40) (int_range 0 100))
    (fun (n, gap) ->
      let mem, original = build_log ~seg_bytes:128 ~n in
      let storage = Storage.storage_of_mem mem in
      let segs =
        List.filter (fun b -> contains "seg-" b) (storage.Storage.st_list ())
      in
      let data = ok (storage.Storage.st_read (List.hd segs)) in
      (* replay the first segment's bytes under a name past the head *)
      let clone = Printf.sprintf "seg-%012d.wal" (n + 1 + gap) in
      storage.Storage.st_write clone data;
      match reopen mem with
      | Error _ -> true
      | Ok wal ->
        let recovered = Wal.records wal in
        is_prefix recovered original
        && Result.is_ok (Wal.check_invariants wal))

let fuzz_empty_segment =
  Support.qcheck ~count:50 "fuzz: empty segment file never mis-parses"
    QCheck2.Gen.(pair (int_range 1 30) (int_range 0 50))
    (fun (n, gap) ->
      let mem, original = build_log ~seg_bytes:256 ~n in
      let storage = Storage.storage_of_mem mem in
      let name = Printf.sprintf "seg-%012d.wal" (n + 1 + gap) in
      storage.Storage.st_write name (Bytes.create 0);
      match reopen mem with
      | Error _ -> true
      | Ok wal -> is_prefix (Wal.records wal) original)

let fuzz_persist_decode_total =
  Support.qcheck ~count:300 "fuzz: Persist.decode never raises"
    QCheck2.Gen.(pair (int_range 0 8) (string_size (int_range 0 64)))
    (fun (kind, junk) ->
      match Persist.decode ~kind (Bytes.of_string junk) with
      | Ok _ | Error _ -> true)

(* ------------------------------------------- invariant monitors (fuzz) *)

(* Random op sequences against a model of durable content. After every
   crash+reopen: records must equal the model's durable prefix (at or
   above the checkpoint), invariants must hold, and the checkpoint LSN
   must never move backwards. *)
let fuzz_invariant_monitor =
  Support.qcheck ~count:100 "monitor: LSN/checkpoint invariants under random ops"
    QCheck2.Gen.(list_size (int_range 1 60) (int_range 0 99))
    (fun ops ->
      let config = { Wal.segment_bytes = 200; sync_every = 1000 } in
      let mem = Storage.memory () in
      let wal = ref (ok (Wal.create ~config (Storage.storage_of_mem mem))) in
      let appended = ref [] in (* (lsn, body) newest first *)
      let durable = ref 0 in
      let last_cp = ref (Wal.checkpoint_lsn !wal) in
      let next_body = ref 0 in
      let check_cp () =
        let cp = Wal.checkpoint_lsn !wal in
        let okcp = cp >= !last_cp in
        last_cp := cp;
        okcp
      in
      List.for_all
        (fun op ->
          match op mod 10 with
          | 0 | 1 | 2 | 3 | 4 | 5 ->
            incr next_body;
            let body = payload !next_body in
            let lsn = Wal.append !wal ~kind:2 body in
            appended := (lsn, body) :: !appended;
            (* rolling to a fresh segment syncs implicitly *)
            durable := max !durable (Wal.durable_lsn !wal);
            check_cp ()
          | 6 ->
            Wal.sync !wal;
            durable := Wal.durable_lsn !wal;
            check_cp ()
          | 7 ->
            Wal.checkpoint !wal;
            durable := Wal.durable_lsn !wal;
            check_cp ()
          | _ -> (
            Storage.crash mem;
            match Wal.create ~config (Storage.storage_of_mem mem) with
            | Error _ -> false (* an un-corrupted log must always reopen *)
            | Ok w ->
              wal := w;
              appended :=
                List.filter (fun (lsn, _) -> lsn <= !durable) !appended;
              let cp = Wal.checkpoint_lsn w in
              let expect =
                List.rev
                  (List.filter_map
                     (fun (lsn, body) ->
                       if lsn >= cp then Some (lsn, 2, body) else None)
                     !appended)
              in
              let got = Wal.records w in
              let sorted =
                let rec strict = function
                  | a :: (b :: _ as r) -> a + 1 = b && strict r
                  | _ -> true
                in
                strict (lsns got)
              in
              got = expect && sorted
              && Result.is_ok (Wal.check_invariants w)
              && check_cp ()))
        ops)

(* ----------------------------------------- journal recovery end to end *)

let snapshot bus =
  let routes =
    List.sort compare
      (List.map
         (fun ((src, dst) : Bus.endpoint * Bus.endpoint) ->
           (fst src, snd src, fst dst, snd dst))
         (Bus.all_routes bus))
  in
  (routes, List.sort String.compare (Bus.instances bus))

let rollback_lines bus =
  List.filter_map
    (fun (e : Dr_sim.Trace.entry) ->
      if String.equal e.category "rollback" then Some e.detail else None)
    (Dr_sim.Trace.entries (Bus.trace bus))

(* Run the ring with a logged controller and a replacement that always
   rolls back (deadline shorter than any divulge). [ctl_crash] arms the
   controller crash; on crash the controller's memory and unsynced
   storage tail are discarded and the log is reopened and replayed. *)
let deadline_trial ?ctl_crash () =
  let bus = Ring.start (Ring.load ()) in
  let mem = Storage.memory () in
  let wal = ok (Wal.create (Storage.storage_of_mem mem)) in
  Bus.set_wal bus wal;
  (match ctl_crash with
  | Some n -> Faults.install bus ~seed:1 (Faults.plan ~ctl_crash:n ())
  | None -> ());
  Bus.run ~until:8.0 bus;
  let before = snapshot bus in
  let outcome =
    Script.run_sync bus (fun ~on_done ->
        Script.replace bus ~instance:"c" ~new_instance:"c2" ~deadline:0.001
          ~retry:Script.no_retry ~on_done ())
  in
  let crashed = Bus.controller_down bus in
  if crashed then begin
    Storage.crash mem;
    Bus.set_wal bus (ok (reopen mem));
    match Recovery.replay bus with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "recovery failed: %s" e
  end;
  (bus, mem, before, outcome, crashed)

(* locate the LSN of the Abort record in a dry run's log *)
let abort_lsn mem =
  let wal = ok (reopen mem) in
  let hit =
    List.find_map
      (fun (lsn, kind, body) ->
        match Persist.decode ~kind body with
        | Ok (Persist.Abort _) -> Some lsn
        | _ -> None)
      (Wal.records wal)
  in
  match hit with
  | Some lsn -> lsn
  | None -> Alcotest.fail "dry run logged no Abort record"

let test_trace_parity () =
  let bus_live, mem_live, before_live, _, crashed = deadline_trial () in
  Alcotest.(check bool) "dry run keeps its controller" false crashed;
  let live = rollback_lines bus_live in
  Alcotest.(check bool) "live rollback restored the snapshot" true
    (snapshot bus_live = before_live);
  let abort = abort_lsn mem_live in
  (* crash exactly on the Abort append: the whole rollback replays *)
  let bus_a, _, before_a, _, crashed_a = deadline_trial ~ctl_crash:abort () in
  Alcotest.(check bool) "crashed at abort" true crashed_a;
  Alcotest.(check bool) "replayed rollback restored the snapshot" true
    (snapshot bus_a = before_a);
  (* pre-crash the live controller traced the header; recovery then
     re-traces the full rollback — header and steps byte-identical *)
  Alcotest.(check (list string)) "full replayed rollback is byte-identical"
    (List.hd live :: live) (rollback_lines bus_a);
  (* crash after the first Undo_done: recovery RESUMES, skipping the
     already-undone step and keeping the original numbering *)
  let bus_r, _, before_r, _, crashed_r =
    deadline_trial ~ctl_crash:(abort + 1) ()
  in
  Alcotest.(check bool) "crashed mid-rollback" true crashed_r;
  Alcotest.(check bool) "resumed rollback restored the snapshot" true
    (snapshot bus_r = before_r);
  let resumed_lines =
    List.filter
      (fun l -> not (contains "resuming rollback" l))
      (rollback_lines bus_r)
  in
  Alcotest.(check (list string))
    "undo lines minus the resume header are byte-identical" live resumed_lines;
  Alcotest.(check bool) "a resume header was traced" true
    (List.exists
       (fun l -> contains "resuming rollback" l)
       (rollback_lines bus_r))

let test_rollback_lines_carry_label_and_index () =
  let bus, _, _, _, _ = deadline_trial () in
  let steps =
    List.filter (fun l -> contains "[1/" l) (rollback_lines bus)
  in
  Alcotest.(check bool) "indexed undo lines present" true (steps <> []);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line carries the script label" true
        (contains "replace c -> c2 [1/" l))
    steps

let test_crash_mid_script_rolls_back () =
  (* a generous deadline: the dry script COMMITS; then crash at every
     entry append before the commit and check recovery restores the
     pre-script world *)
  let trial ?ctl_crash () =
    let bus = Ring.start (Ring.load ()) in
    let mem = Storage.memory () in
    Bus.set_wal bus (ok (Wal.create (Storage.storage_of_mem mem)));
    (match ctl_crash with
    | Some n -> Faults.install bus ~seed:1 (Faults.plan ~ctl_crash:n ())
    | None -> ());
    Bus.run ~until:8.0 bus;
    let before = snapshot bus in
    let outcome =
      Script.run_sync bus (fun ~on_done ->
          Script.replace bus ~instance:"c" ~new_instance:"c2" ~deadline:25.0
            ~retry:Script.no_retry ~on_done ())
    in
    (bus, mem, before, outcome)
  in
  let _, mem, _, outcome = trial () in
  Alcotest.(check bool) "dry run commits" true (Result.is_ok outcome);
  let total = List.length (Wal.records (ok (reopen mem))) in
  Alcotest.(check bool) "a real script logged records" true (total > 4);
  (* crash mid-script (entry appends), then recover *)
  List.iter
    (fun n ->
      let bus, mem, before, _ = trial ~ctl_crash:n () in
      Alcotest.(check bool) "controller died" true (Bus.controller_down bus);
      Storage.crash mem;
      Bus.set_wal bus (ok (reopen mem));
      (match Recovery.replay bus with
      | Ok r ->
        Alcotest.(check int)
          (Printf.sprintf "crash@%d rolled one script back" n)
          1 r.Recovery.rp_rolled_back
      | Error e -> Alcotest.failf "recovery: %s" e);
      Alcotest.(check bool)
        (Printf.sprintf "crash@%d restored the snapshot" n)
        true
        (snapshot bus = before))
    [ 2; 3; total / 2 ]

let test_crash_after_commit_keeps_replacement () =
  let bus = Ring.start (Ring.load ()) in
  let mem = Storage.memory () in
  Bus.set_wal bus (ok (Wal.create (Storage.storage_of_mem mem)));
  Bus.run ~until:8.0 bus;
  let dry_outcome =
    Script.run_sync bus (fun ~on_done ->
        Script.replace bus ~instance:"c" ~new_instance:"c2" ~deadline:25.0
          ~retry:Script.no_retry ~on_done ())
  in
  Alcotest.(check bool) "dry run commits" true (Result.is_ok dry_outcome);
  let total = List.length (Wal.records (ok (reopen mem))) in
  (* the last append of a committing script is its Commit record *)
  let bus = Ring.start (Ring.load ()) in
  let mem = Storage.memory () in
  Bus.set_wal bus (ok (Wal.create (Storage.storage_of_mem mem)));
  Faults.install bus ~seed:1 (Faults.plan ~ctl_crash:total ());
  Bus.run ~until:8.0 bus;
  ignore
    (Script.run_sync bus (fun ~on_done ->
         Script.replace bus ~instance:"c" ~new_instance:"c2" ~deadline:25.0
           ~retry:Script.no_retry ~on_done ()));
  Alcotest.(check bool) "controller died on the commit append" true
    (Bus.controller_down bus);
  Storage.crash mem;
  Bus.set_wal bus (ok (reopen mem));
  (match Recovery.replay bus with
  | Ok r ->
    Alcotest.(check int) "committed script needs no rollback" 0
      r.Recovery.rp_rolled_back;
    Alcotest.(check int) "one committed script seen" 1 r.Recovery.rp_committed
  | Error e -> Alcotest.failf "recovery: %s" e);
  Alcotest.(check bool) "replacement stands" true
    (List.mem "c2" (Bus.instances bus)
    && not (List.mem "c" (Bus.instances bus)))

(* Pre-copy writes two extra entry kinds to the log: the live base
   snapshot (Precopy_base) and the delta-form divulge (Divulged_delta,
   resolved against the base by digest at scan time). An in-place
   replace is same-layout, so the delta path is taken for real. *)
let precopy_trial ?ctl_crash () =
  let bus = Bus.create ~hosts:Dr_workloads.Monitor.hosts () in
  let mem = Storage.memory () in
  Bus.set_wal bus (ok (Wal.create (Storage.storage_of_mem mem)));
  let prepared =
    match
      Dr_transform.Instrument.prepare
        (Dr_workloads.Synthetic.deeprec_payload ~depth:4 ~payload:2)
        ~points:Dr_workloads.Synthetic.deeprec_points
    with
    | Ok p -> p.Dr_transform.Instrument.prepared_program
    | Error e -> Alcotest.failf "instrument: %s" e
  in
  ok (Bus.register_program bus prepared);
  ok (Bus.spawn bus ~instance:"w" ~module_name:"deeppay" ~host:"hostA" ());
  (match ctl_crash with
  | Some n -> Faults.install bus ~seed:1 (Faults.plan ~ctl_crash:n ())
  | None -> ());
  Bus.run ~until:5.0 bus;
  let before = snapshot bus in
  let outcome =
    Script.run_sync bus (fun ~on_done ->
        Script.replace bus ~precopy:true ~instance:"w" ~new_instance:"w2"
          ~on_done ())
  in
  (bus, mem, before, outcome)

let test_precopy_delta_logged_and_recovered () =
  let _, mem, _, outcome = precopy_trial () in
  Alcotest.(check bool) "dry run commits" true (Result.is_ok outcome);
  let records = Wal.records (ok (reopen mem)) in
  let lsns_of p =
    List.filter_map
      (fun (lsn, kind, body) ->
        match Persist.decode ~kind body with
        | Ok e when p e -> Some lsn
        | _ -> None)
      records
  in
  let bases =
    lsns_of (function
      | Persist.Entry { entry = Persist.Precopy_base _; _ } -> true
      | _ -> false)
  in
  let deltas =
    lsns_of (function
      | Persist.Entry { entry = Persist.Divulged_delta _; _ } -> true
      | _ -> false)
  in
  Alcotest.(check int) "one pre-copy base logged" 1 (List.length bases);
  Alcotest.(check int) "one delta divulge logged" 1 (List.length deltas);
  Alcotest.(check bool) "base precedes the delta" true
    (List.hd bases < List.hd deltas);
  (* crash on the base append and on the delta append: recovery must
     resolve the delta against the logged base and roll the in-flight
     script back to the pre-script world *)
  List.iter
    (fun n ->
      let bus, mem, before, _ = precopy_trial ~ctl_crash:n () in
      Alcotest.(check bool) "controller died" true (Bus.controller_down bus);
      Storage.crash mem;
      Bus.set_wal bus (ok (reopen mem));
      (match Recovery.replay bus with
      | Ok r ->
        Alcotest.(check int)
          (Printf.sprintf "crash@%d rolled one script back" n)
          1 r.Recovery.rp_rolled_back
      | Error e -> Alcotest.failf "recovery: %s" e);
      Alcotest.(check bool)
        (Printf.sprintf "crash@%d restored the snapshot" n)
        true
        (snapshot bus = before))
    [ List.hd bases; List.hd deltas ]

let test_replay_idempotent () =
  let bus, _, _, _, crashed = deadline_trial ~ctl_crash:3 () in
  Alcotest.(check bool) "crashed" true crashed;
  (* the first replay already ran inside deadline_trial; a second must
     find a clean, checkpointed log *)
  match Recovery.replay bus with
  | Ok r ->
    Alcotest.(check int) "nothing left to roll back" 0
      (r.Recovery.rp_rolled_back + r.Recovery.rp_resumed);
    Alcotest.(check int) "log was checkpointed" 0 r.Recovery.rp_records
  | Error e -> Alcotest.failf "second replay: %s" e

let test_scan_rejects_orphan_records () =
  let _, wal = mem_wal () in
  ignore
    (Wal.append wal ~kind:(Persist.kind_of (Persist.Commit { sid = 7 }))
       (Persist.encode (Persist.Commit { sid = 7 }))
      : int);
  match Recovery.scan wal with
  | Error e ->
    Alcotest.(check bool) "error names the unknown script" true
      (contains "unknown script" e)
  | Ok _ -> Alcotest.fail "commit without begin accepted"

let test_journal_accessors () =
  let bus = Ring.start (Ring.load ()) in
  let mem = Storage.memory () in
  Bus.set_wal bus (ok (Wal.create (Storage.storage_of_mem mem)));
  Bus.run ~until:2.0 bus;
  let j = Journal.create bus ~label:"probe" in
  Alcotest.(check string) "label" "probe" (Journal.label j);
  Alcotest.(check bool) "durable sid assigned" true (Journal.sid j >= 1);
  Alcotest.(check int) "empty journal" 0 (Journal.entry_count j);
  Journal.add_route j ~src:("a", "x1") ~dst:("b", "x1");
  Journal.add_route j ~src:("a", "x2") ~dst:("b", "x2");
  Alcotest.(check int) "two entries" 2 (Journal.entry_count j);
  Journal.rollback j ~reason:"probe done";
  Alcotest.(check int) "empty after rollback" 0 (Journal.entry_count j);
  Alcotest.(check bool) "undo lines indexed [i/2]" true
    (List.exists (fun l -> contains "probe [2/2]:" l) (rollback_lines bus)
    && List.exists (fun l -> contains "probe [1/2]:" l) (rollback_lines bus))

(* ------------------------------------------------------- faults parsing *)

let test_ctlcrash_parse () =
  (match Faults.parse_plan "seed=3,ctlcrash@4" with
  | Ok (seed, plan) ->
    Alcotest.(check int) "seed" 3 seed;
    Alcotest.(check (option int)) "ctlcrash index" (Some 4) plan.Faults.fp_ctl_crash
  | Error e -> Alcotest.failf "parse: %s" e);
  (match Faults.parse_plan "ctlcrash@0" with
  | Error e -> Alcotest.(check bool) "zero rejected" true (contains "start at 1" e)
  | Ok _ -> Alcotest.fail "ctlcrash@0 accepted");
  (match Faults.parse_plan "ctlcrash@x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ctlcrash@x accepted");
  match Faults.parse_plan "ctlcrash@2,ctlcrash@5" with
  | Error e -> Alcotest.(check bool) "duplicate rejected" true (contains "duplicate" e)
  | Ok _ -> Alcotest.fail "duplicate ctlcrash accepted"

(* ----------------------------------------------------------------- run *)

let () =
  Alcotest.run "wal"
    [ ( "log",
        [ Alcotest.test_case "roundtrip and reopen" `Quick test_roundtrip;
          Alcotest.test_case "crash loses unsynced tail" `Quick
            test_crash_loses_unsynced_tail;
          Alcotest.test_case "torn tail truncated" `Quick
            test_torn_tail_truncated;
          Alcotest.test_case "early damage fails loudly" `Quick
            test_early_segment_damage_fails_loudly;
          Alcotest.test_case "checkpoint, GC, state" `Quick
            test_checkpoint_gc_and_state;
          Alcotest.test_case "empty log" `Quick test_empty_log ] );
      ( "file backend",
        [ Alcotest.test_case "roundtrip on disk" `Quick
            test_file_backend_roundtrip;
          Alcotest.test_case "torn tail on disk" `Quick
            test_file_backend_torn_tail ] );
      ( "decoder fuzz",
        [ fuzz_truncated_tail; fuzz_bit_flip; fuzz_duplicated_segment;
          fuzz_empty_segment; fuzz_persist_decode_total ] );
      ("monitors", [ fuzz_invariant_monitor ]);
      ( "crash recovery",
        [ Alcotest.test_case "replayed rollback trace parity" `Quick
            test_trace_parity;
          Alcotest.test_case "rollback lines carry label+index" `Quick
            test_rollback_lines_carry_label_and_index;
          Alcotest.test_case "crash mid-script rolls back" `Quick
            test_crash_mid_script_rolls_back;
          Alcotest.test_case "precopy base+delta logged and recovered" `Quick
            test_precopy_delta_logged_and_recovered;
          Alcotest.test_case "crash after commit keeps replacement" `Quick
            test_crash_after_commit_keeps_replacement;
          Alcotest.test_case "replay is idempotent" `Quick
            test_replay_idempotent;
          Alcotest.test_case "scan rejects orphan records" `Quick
            test_scan_rejects_orphan_records;
          Alcotest.test_case "journal accessors" `Quick test_journal_accessors
        ] );
      ("faults", [ Alcotest.test_case "ctlcrash parsing" `Quick test_ctlcrash_parse ])
    ]
