(* Broker-domain sharding: shard count is a performance knob, never a
   semantic one. These tests pin that down from four angles:
   - a differential replay of the evolving-ring scenario at shard
     counts 1/2/4 (same passes, same tap history),
   - per-route FIFO under batched fan-in delivery,
   - a 1k kill/re-spawn regression: arena slot reuse must never let a
     stale handle or out-route memo misroute a delivery,
   - detector overhead flatness: suspicion bookkeeping is incremental,
     so checks stay constant per instance and stop once suspected.
   Plus a guard that the full scaling artifact carries every row. *)

module Bus = Dr_bus.Bus
module Ring = Dr_workloads.Ring
module Detector = Dr_reconfig.Detector
module Machine = Dr_interp.Machine

(* ------------------------------------ differential ring replay *)

(* The golden-trace scenario, reduced to its observable results: how
   often each member passed the token and what the tap saw, in order. *)
let ring_result ~shards =
  let system = Ring.load () in
  let bus = Ring.start ~shards system in
  Bus.run ~until:30.0 bus;
  (match
     Ring.insert_member bus ~instance:"d" ~host:"hostC" ~after:"c" ~before:"a"
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "insert_member: %s" e);
  Bus.run ~until:60.0 bus;
  let passes =
    List.map (fun m -> (m, Ring.passes bus ~instance:m)) [ "a"; "b"; "c"; "d" ]
  in
  (passes, Ring.tap_history bus)

let test_ring_differential () =
  let base_passes, base_tap = ring_result ~shards:1 in
  Alcotest.(check bool) "ring makes progress" true (base_tap <> []);
  List.iter
    (fun shards ->
      let passes, tap = ring_result ~shards in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "passes at shards=%d" shards)
        base_passes passes;
      Alcotest.(check (list int))
        (Printf.sprintf "tap history at shards=%d" shards)
        base_tap tap)
    [ 2; 4 ]

(* ------------------------------------ per-route FIFO under batching *)

(* Two producers on one host write interleaved token streams into a
   single consumer: at shards > 1 their same-instant sends land in the
   same inter-domain batch, and the drain must still deliver each
   route's tokens in send order. *)
let fan_mil =
  {|
module prod {
  source = "./prod.exe";
  use interface in pattern {integer};
  define interface out pattern {integer};
}

module cons {
  source = "./cons.exe";
  use interface in pattern {integer};
}

application fan {
  instance pa = prod on "hostA";
  instance pb = prod on "hostA";
  instance k = cons on "hostA";
  bind "pa out" "k in";
  bind "pb out" "k in";
}
|}

let prod_source =
  {|
module prod;

var i: int = 0;
var base: int = 0;

proc main() {
  mh_init();
  mh_read("in", base);
  while (i < 8) {
    i = i + 1;
    mh_write("out", base + i);
  }
}
|}

let cons_source =
  {|
module cons;

var seen: int = 0;

proc main() {
  var v: int;
  mh_init();
  while (true) {
    mh_read("in", v);
    seen = seen + 1;
    print(v);
  }
}
|}

let fan_history ~shards =
  let system =
    match
      Dynrecon.System.load ~mil:fan_mil
        ~sources:[ ("prod", prod_source); ("cons", cons_source) ]
        ()
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "fan load: %s" e
  in
  let bus =
    match
      Dynrecon.System.start system ~app:"fan" ~hosts:Ring.hosts ~shards
        ~default_host:"hostA" ()
    with
    | Ok bus -> bus
    | Error e -> Alcotest.failf "fan start: %s" e
  in
  Bus.inject bus ~dst:("pa", "in") (Dr_state.Value.Vint 100);
  Bus.inject bus ~dst:("pb", "in") (Dr_state.Value.Vint 200);
  Bus.run bus;
  List.filter_map int_of_string_opt (Bus.outputs bus ~instance:"k")

let test_fan_in_fifo () =
  let expect_route base history =
    List.filter (fun v -> v > base && v <= base + 100) history
  in
  let base_history = fan_history ~shards:1 in
  List.iter
    (fun shards ->
      let history = fan_history ~shards in
      Alcotest.(check int)
        (Printf.sprintf "token count at shards=%d" shards)
        16 (List.length history);
      (* order within each producer->consumer route is send order *)
      List.iter
        (fun base ->
          Alcotest.(check (list int))
            (Printf.sprintf "route order (base %d) at shards=%d" base shards)
            (List.init 8 (fun i -> base + i + 1))
            (expect_route base history))
        [ 100; 200 ];
      (* contents are shard-invariant even where global interleaving
         isn't pinned *)
      Alcotest.(check (list int))
        (Printf.sprintf "delivery contents at shards=%d" shards)
        (List.sort compare base_history)
        (List.sort compare history))
    [ 2; 4 ]

(* ------------------------------------ 1k kill/re-spawn regression *)

(* n relay->store pairs across two hosts. Stores are killed and
   re-spawned under the same names in reverse order, so the arena free
   list hands every re-spawn a slot that used to belong to a different
   instance — exactly the aliasing trap for stale handles in out-route
   memos and parked batch entries. *)
let pairs_n = 1000

let pairs_mil ~n =
  let buf = Buffer.create (512 + (n * 96)) in
  Buffer.add_string buf
    {|module relay {
  source = "./relay.exe";
  use interface in pattern {integer};
  define interface out pattern {integer};
}

module store {
  source = "./store.exe";
  use interface in pattern {integer};
}

application pairs {
|};
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  instance s%d = relay on \"hostA\";\n" i);
    Buffer.add_string buf
      (Printf.sprintf "  instance r%d = store on \"hostB\";\n" i)
  done;
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "  bind \"s%d out\" \"r%d in\";\n" i i)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let relay_source =
  {|
module relay;

proc main() {
  var v: int;
  mh_init();
  while (true) {
    mh_read("in", v);
    v = v + 1;
    mh_write("out", v);
  }
}
|}

let store_source =
  {|
module store;

var seen: int = 0;

proc main() {
  var v: int;
  mh_init();
  while (true) {
    mh_read("in", v);
    seen = v;
  }
}
|}

let store_seen bus i =
  match Bus.machine bus ~instance:(Printf.sprintf "r%d" i) with
  | Some m -> (
    match Machine.read_global m "seen" with
    | Some (Dr_state.Value.Vint v) -> v
    | _ -> min_int)
  | None -> min_int

let assert_stores bus ~phase ~expect =
  for i = 0 to pairs_n - 1 do
    let got = store_seen bus i in
    if got <> expect i then
      Alcotest.failf "%s: store r%d saw %d, expected %d (misrouted delivery)"
        phase i got (expect i);
    let pending = Bus.pending_messages bus (Printf.sprintf "r%d" i, "in") in
    if pending <> 0 then
      Alcotest.failf "%s: store r%d still has %d queued messages" phase i
        pending
  done

let kill_and_respawn_reversed bus =
  for i = 0 to pairs_n - 1 do
    Bus.kill bus ~instance:(Printf.sprintf "r%d" i)
  done;
  for i = pairs_n - 1 downto 0 do
    match
      Bus.spawn bus
        ~instance:(Printf.sprintf "r%d" i)
        ~module_name:"store" ~host:"hostB" ()
    with
    | Ok () -> ()
    | Error e -> Alcotest.failf "respawn r%d: %s" i e
  done

let test_kill_respawn_no_misroute () =
  let system =
    match
      Dynrecon.System.load ~mil:(pairs_mil ~n:pairs_n)
        ~sources:[ ("relay", relay_source); ("store", store_source) ]
        ()
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "pairs load: %s" e
  in
  let bus =
    match
      Dynrecon.System.start system ~app:"pairs" ~hosts:Ring.hosts ~shards:4
        ~default_host:"hostA" ()
    with
    | Ok bus -> bus
    | Error e -> Alcotest.failf "pairs start: %s" e
  in
  (* phase 1: warm every relay's out-route memo *)
  for i = 0 to pairs_n - 1 do
    Bus.inject bus
      ~dst:(Printf.sprintf "s%d" i, "in")
      (Dr_state.Value.Vint (10 * i))
  done;
  Bus.run bus;
  assert_stores bus ~phase:"warmup" ~expect:(fun i -> (10 * i) + 1);
  (* phase 2: stale memos — every slot now holds a different instance *)
  kill_and_respawn_reversed bus;
  for i = 0 to pairs_n - 1 do
    Bus.inject bus
      ~dst:(Printf.sprintf "s%d" i, "in")
      (Dr_state.Value.Vint (20 * i))
  done;
  Bus.run bus;
  assert_stores bus ~phase:"after re-spawn" ~expect:(fun i -> (20 * i) + 1);
  (* phase 3: kill/re-spawn while deliveries are parked in inter-domain
     batches, so the stale handles inside pending entries must
     generation-fail and fall back to by-name resolution *)
  for i = 0 to pairs_n - 1 do
    Bus.inject bus
      ~dst:(Printf.sprintf "s%d" i, "in")
      (Dr_state.Value.Vint (30 * i))
  done;
  Dr_sim.Engine.schedule (Bus.engine bus) ~delay:0.5 (fun () ->
      kill_and_respawn_reversed bus);
  Bus.run bus;
  assert_stores bus ~phase:"in-flight re-spawn" ~expect:(fun i -> (30 * i) + 1)

(* ------------------------------------ detector overhead flatness *)

(* Watch n instances that never produce evidence: each costs exactly
   [threshold] silence checks (one per escalation level) and then,
   suspected, costs nothing at all — however long the run and however
   big the fleet. *)
let detector_checks ~n ~until =
  let bus = Bus.create ~shards:4 ~hosts:Ring.hosts () in
  let names = List.init n (Printf.sprintf "ghost%d") in
  let det =
    Detector.start bus ~period:1.0 ~timeout:3.0 ~threshold:2 ~watch:names ()
  in
  Bus.run ~until bus;
  let checks = Detector.checks_performed det in
  let beats = Detector.beats_emitted det in
  Detector.stop det;
  (checks, beats)

let test_detector_flat () =
  let threshold = 2 in
  (* constant per instance, independent of fleet size *)
  List.iter
    (fun n ->
      let checks, beats = detector_checks ~n ~until:20.0 in
      Alcotest.(check int)
        (Printf.sprintf "checks for %d silent instances" n)
        (threshold * n) checks;
      Alcotest.(check int)
        (Printf.sprintf "beats for %d unspawned instances" n)
        0 beats)
    [ 40; 400 ];
  (* flat over time: once suspected, a run 4x longer costs no more *)
  let short, _ = detector_checks ~n:100 ~until:12.0 in
  let long, _ = detector_checks ~n:100 ~until:48.0 in
  Alcotest.(check int) "no further checks after suspicion" short long

(* ------------------------------------ scaling artifact row set *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  go 0

(* The full artifact lives at the repo root (a dune dep of this test).
   A quick CI sweep writes BENCH_scaling_quick.json instead, so the
   full row set — N = 10 .. 100k, single and multi domain — must
   always be present here. *)
let test_scaling_artifact_rows () =
  let data =
    In_channel.with_open_bin "../BENCH_scaling.json" In_channel.input_all
  in
  Alcotest.(check bool)
    "artifact is the scaling suite" true
    (contains ~sub:"\"suite\": \"scaling\"" data);
  List.iter
    (fun (n, shards) ->
      let key = Printf.sprintf "\"n\": %d, \"shards\": %d" n shards in
      if not (contains ~sub:key data) then
        Alcotest.failf "BENCH_scaling.json is missing the row {%s}" key)
    [ (10, 1); (10, 4); (100, 1); (100, 4); (1000, 1); (1000, 4);
      (10_000, 1); (10_000, 8); (100_000, 1); (100_000, 8) ]

let () =
  Alcotest.run "domains"
    [ ( "shard-count invariance",
        [ Alcotest.test_case "ring differential at shards 1/2/4" `Quick
            test_ring_differential;
          Alcotest.test_case "fan-in FIFO under batching" `Quick
            test_fan_in_fifo ] );
      ( "arena reuse",
        [ Alcotest.test_case "1k kill/re-spawn, zero misroutes" `Quick
            test_kill_respawn_no_misroute ] );
      ( "detector overhead",
        [ Alcotest.test_case "checks flat per instance and over time" `Quick
            test_detector_flat ] );
      ( "artifacts",
        [ Alcotest.test_case "full scaling artifact keeps every row" `Quick
            test_scaling_artifact_rows ] ) ]
