(* Regenerate the golden trace files compared by test_golden_trace.ml.
   Usage: dune exec test/gen_goldens.exe -- <output-dir> *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  let write name data =
    Out_channel.with_open_bin (Filename.concat dir name) (fun oc ->
        output_string oc data)
  in
  write "golden_monitor.trace" (Golden.monitor_trace ());
  write "golden_ring.trace" (Golden.ring_trace ());
  write "golden_chaos.trace" (Golden.chaos_trace ());
  write "golden_ring_sharded.trace" (Golden.ring_sharded_trace ());
  print_endline ("goldens written to " ^ dir)
