module System = Dynrecon.System
module Bus = Dr_bus.Bus
module Machine = Dr_interp.Machine

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ----------------------------------------------------------- loading *)

let test_load_monitor () =
  let system = Dr_workloads.Monitor.load () in
  Alcotest.(check int) "four modules" 4 (List.length system.modules);
  let compute = Option.get (System.find_module system "compute") in
  Alcotest.(check bool) "compute prepared" true (compute.lm_prepared <> None);
  let sensor = Option.get (System.find_module system "sensor") in
  Alcotest.(check bool) "sensor untouched" true (sensor.lm_prepared = None)

let test_instrumented_source_is_fig4_shaped () =
  let system = Dr_workloads.Monitor.load () in
  let source = Option.get (System.instrumented_source system "compute") in
  List.iter
    (fun fragment ->
      if not (contains fragment source) then
        Alcotest.failf "instrumented source lacks %S" fragment)
    [ "mh_reconfig"; "mh_capturestack"; "mh_restoring"; "mh_location";
      "mh_catchreconfig"; "mh_getstatus() == \"clone\""; "mh_decode();";
      "mh_capture("; "mh_restore(mh_location"; "mh_encode();";
      "signal(\"mh_catchreconfig\");"; "goto R;" ]

let expect_load_error ~mil ~sources fragment =
  match System.load ~mil ~sources () with
  | Ok _ -> Alcotest.failf "expected load failure (%s)" fragment
  | Error e ->
    if not (contains fragment e) then
      Alcotest.failf "error %S lacks %S" e fragment

let test_load_errors () =
  let m = Dr_workloads.Monitor.mil in
  expect_load_error ~mil:"module {" ~sources:[] "parse error";
  expect_load_error ~mil:m ~sources:[] "no source provided";
  expect_load_error ~mil:m
    ~sources:
      (("sensor", "module wrong_name;\nproc main() { }")
      :: List.remove_assoc "sensor" Dr_workloads.Monitor.sources)
    "declares module wrong_name";
  expect_load_error ~mil:m
    ~sources:
      (("compute", "module compute;\nproc main() { y = 1; }")
      :: List.remove_assoc "compute" Dr_workloads.Monitor.sources)
    "unbound variable";
  (* a spec point without a matching label *)
  expect_load_error ~mil:m
    ~sources:
      (("compute",
        "module compute;\nproc main() { var r: float; mh_init(); mh_write(\"display\", r); }")
      :: List.remove_assoc "compute" Dr_workloads.Monitor.sources)
    "no matching label"

(* ------------------------------------------------------------ running *)

let displayed bus =
  List.filter_map Dr_workloads.Monitor.parse_displayed
    (Bus.outputs bus ~instance:"display")

let test_monitor_end_to_end_migration () =
  let system = Dr_workloads.Monitor.load () in
  let bus = Dr_workloads.Monitor.start system in
  Bus.run ~until:30.0 bus;
  let before = List.length (displayed bus) in
  Alcotest.(check bool) "some averages before" true (before >= 2);
  (match System.migrate bus ~instance:"compute" ~new_instance:"compute2" ~new_host:"hostB" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "migrate: %s" e);
  Bus.run ~until:(Bus.now bus +. 40.0) bus;
  let after = displayed bus in
  Alcotest.(check bool) "more averages after" true (List.length after > before);
  Alcotest.(check bool) "all plausible" true
    (Dr_workloads.Monitor.averages_plausible ~n:4 (List.map snd after));
  Alcotest.(check (option string)) "on hostB" (Some "hostB")
    (Bus.instance_host bus ~instance:"compute2")

let test_monitor_migration_with_liveness_option () =
  let system =
    Dr_workloads.Monitor.load ~options:{ Dr_transform.Instrument.default_options with use_liveness = true } ()
  in
  let bus = Dr_workloads.Monitor.start system in
  Bus.run ~until:30.0 bus;
  (match System.migrate bus ~instance:"compute" ~new_instance:"c2" ~new_host:"hostC" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "migrate: %s" e);
  Bus.run ~until:(Bus.now bus +. 40.0) bus;
  Alcotest.(check bool) "still correct with trimmed capture sets" true
    (Dr_workloads.Monitor.averages_plausible ~n:4 (List.map snd (displayed bus)))

let test_pipeline_stage_replacement () =
  let system = Dr_workloads.Pipeline.load () in
  let bus = Dr_workloads.Pipeline.start system in
  Bus.run_while bus ~max_events:2_000_000 (fun () ->
      List.length (Dr_workloads.Pipeline.sink_values bus) < 4);
  (* replace the scale stage mid-stream *)
  (match System.replace bus ~instance:"scale" ~new_instance:"scale2" () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "replace: %s" e);
  Bus.run_while bus ~max_events:2_000_000 (fun () ->
      List.length (Dr_workloads.Pipeline.sink_values bus) < 10);
  let values = Dr_workloads.Pipeline.sink_values bus in
  Alcotest.(check (list int)) "no item lost, duplicated or reordered"
    (Dr_workloads.Pipeline.expected_prefix 10)
    values;
  (* the processed counter survived into the clone *)
  match Bus.machine bus ~instance:"scale2" with
  | Some m ->
    (match Machine.read_global m "processed" with
    | Some (Dr_state.Value.Vint n) ->
      Alcotest.(check bool) "counter continued (not reset)" true (n >= 4)
    | _ -> Alcotest.fail "no counter")
  | None -> Alcotest.fail "scale2 missing"

let test_pipeline_migrate_offset_stage () =
  let system = Dr_workloads.Pipeline.load () in
  let bus = Dr_workloads.Pipeline.start system in
  Bus.run_while bus ~max_events:2_000_000 (fun () ->
      List.length (Dr_workloads.Pipeline.sink_values bus) < 3);
  (match System.migrate bus ~instance:"offset" ~new_instance:"offset2" ~new_host:"hostC" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "migrate: %s" e);
  Bus.run_while bus ~max_events:2_000_000 (fun () ->
      List.length (Dr_workloads.Pipeline.sink_values bus) < 8);
  Alcotest.(check (list int)) "stream intact across migration"
    (Dr_workloads.Pipeline.expected_prefix 8)
    (Dr_workloads.Pipeline.sink_values bus)

let test_kvstore_migration_preserves_heap () =
  let system = Dr_workloads.Kvstore.load () in
  let bus = Dr_workloads.Kvstore.start system in
  Bus.run_while bus ~max_events:2_000_000 (fun () ->
      List.length (Dr_workloads.Kvstore.client_got bus) < 3);
  let before = Dr_workloads.Kvstore.client_got bus in
  (* move the store from x86_64 to big-endian sparc32 *)
  (match System.migrate bus ~instance:"store" ~new_instance:"store2" ~new_host:"hostC" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "migrate: %s" e);
  Bus.run_while bus ~max_events:2_000_000 (fun () ->
      List.length (Dr_workloads.Kvstore.client_got bus) < List.length before + 4);
  let got = Dr_workloads.Kvstore.client_got bus in
  Alcotest.(check bool) "got more replies after migration" true
    (List.length got > List.length before);
  (* every reply correct: value = key * 7 — including keys written
     before the migration and read after it *)
  List.iter
    (fun (k, v) ->
      if v <> k * 7 then Alcotest.failf "wrong value for %d: %d" k v)
    got

let test_replicate_through_facade () =
  let system = Dr_workloads.Monitor.load () in
  let bus = Dr_workloads.Monitor.start system in
  Bus.run ~until:15.0 bus;
  (match System.replicate bus ~instance:"compute" ~replica_instance:"compute_r" () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "replicate: %s" e);
  Alcotest.(check bool) "both incarnations live" true
    (List.mem "compute" (Bus.instances bus)
    && List.mem "compute_r" (Bus.instances bus))

let test_migration_during_burst () =
  (* saturate compute with requests, then migrate mid-burst *)
  let system = Dr_workloads.Monitor.load () in
  let bus = Dr_workloads.Monitor.start system in
  Bus.run ~until:12.0 bus;
  for _ = 1 to 5 do
    Bus.inject bus ~dst:("compute", "display") (Dr_state.Value.Vint 4)
  done;
  (match System.migrate bus ~instance:"compute" ~new_instance:"c2" ~new_host:"hostB" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "migrate: %s" e);
  Bus.run ~until:(Bus.now bus +. 60.0) bus;
  (* responses to the burst arrive (display only reads one per cycle but
     compute should have answered every queued request without crashing) *)
  Alcotest.(check bool) "clone healthy" true
    (match Bus.process_status bus ~instance:"c2" with
    | Some (Machine.Crashed _) | None -> false
    | Some _ -> true)

let test_double_migration_end_to_end () =
  let system = Dr_workloads.Monitor.load () in
  let bus = Dr_workloads.Monitor.start system in
  Bus.run ~until:20.0 bus;
  (match System.migrate bus ~instance:"compute" ~new_instance:"c2" ~new_host:"hostB" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first migrate: %s" e);
  Bus.run ~until:(Bus.now bus +. 20.0) bus;
  (match System.migrate bus ~instance:"c2" ~new_instance:"c3" ~new_host:"hostC" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "second migrate: %s" e);
  Bus.run ~until:(Bus.now bus +. 30.0) bus;
  Alcotest.(check (option string)) "ended on hostC" (Some "hostC")
    (Bus.instance_host bus ~instance:"c3");
  Alcotest.(check bool) "averages correct throughout" true
    (Dr_workloads.Monitor.averages_plausible ~n:4 (List.map snd (displayed bus)))

let test_token_ring_invariant () =
  let system = Dr_workloads.Ring.load () in
  let bus = Dr_workloads.Ring.start system in
  Bus.run ~until:25.0 bus;
  (match
     Dr_workloads.Ring.insert_member bus ~instance:"d" ~host:"hostC" ~after:"a"
       ~before:"b"
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "insert: %s" e);
  Bus.run ~until:(Bus.now bus +. 25.0) bus;
  let b_passes_before = Dr_workloads.Ring.passes bus ~instance:"b" in
  (match System.migrate bus ~instance:"b" ~new_instance:"b2" ~new_host:"hostC" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "migrate: %s" e);
  Bus.run ~until:(Bus.now bus +. 25.0) bus;
  Alcotest.(check bool) "b2 counter continued" true
    (Dr_workloads.Ring.passes bus ~instance:"b2" >= b_passes_before);
  Dr_workloads.Ring.bypass_member bus ~instance:"c" ~pred:"b2" ~succ:"a";
  Bus.run ~until:(Bus.now bus +. 15.0) bus;
  Dr_reconfig.Script.remove_module bus ~instance:"c";
  Bus.run ~until:(Bus.now bus +. 15.0) bus;
  let history = Dr_workloads.Ring.tap_history bus in
  Alcotest.(check bool) "enough circulation" true (List.length history > 20);
  Alcotest.(check bool) "token never lost, duplicated or reordered" true
    (Dr_workloads.Ring.history_consecutive history)

let test_worker_farm_exactly_once () =
  let system = Dr_workloads.Farm.load () in
  let bus = Dr_workloads.Farm.start system in
  Bus.run ~until:10.0 bus;
  (match Dr_workloads.Farm.scale_out bus ~slot:2 ~host:"hostB" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "scale out: %s" e);
  (match Dr_workloads.Farm.scale_out bus ~slot:3 ~host:"hostC" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "scale out: %s" e);
  Bus.run ~until:(Bus.now bus +. 8.0) bus;
  (match
     System.migrate bus ~instance:"dispatcher" ~new_instance:"d2" ~new_host:"hostC"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "migrate dispatcher: %s" e);
  Bus.run ~until:(Bus.now bus +. 10.0) bus;
  Dr_workloads.Farm.scale_in bus;
  Bus.run_while bus ~max_events:3_000_000 (fun () ->
      List.length (Dr_workloads.Farm.results bus) < Dr_workloads.Farm.job_count);
  Alcotest.(check (list int)) "every job exactly once"
    Dr_workloads.Farm.expected_results
    (List.sort compare (Dr_workloads.Farm.results bus));
  (* slot counter survived the dispatcher migration *)
  match Bus.machine bus ~instance:"d2" with
  | Some m -> (
    match Machine.read_global m "active" with
    | Some (Dr_state.Value.Vint n) ->
      Alcotest.(check bool) "active slots restored then lowered" true (n >= 1)
    | _ -> Alcotest.fail "no active counter")
  | None -> Alcotest.fail "migrated dispatcher missing"

let test_replace_without_points_times_out () =
  (* the sensor module has no reconfiguration points: it can never
     divulge state, so a replacement script cannot complete *)
  let system = Dr_workloads.Monitor.load () in
  let bus = Dr_workloads.Monitor.start system in
  Bus.run ~until:10.0 bus;
  match
    Dr_reconfig.Script.run_sync bus ~max_events:20_000 (fun ~on_done ->
        Dr_reconfig.Script.replace bus ~instance:"sensor" ~new_instance:"s2"
          ~on_done ())
  with
  | Error e ->
    Alcotest.(check bool) "did not complete" true
      (contains "did not complete" e);
    (* and the application is unharmed *)
    Alcotest.(check bool) "sensor still running" true
      (List.mem "sensor" (Bus.instances bus))
  | Ok _ -> Alcotest.fail "replacement of a point-less module succeeded?"

let test_replace_unknown_instance () =
  let system = Dr_workloads.Monitor.load () in
  let bus = Dr_workloads.Monitor.start system in
  match
    Dr_reconfig.Script.run_sync bus (fun ~on_done ->
        Dr_reconfig.Script.replace bus ~instance:"ghost" ~new_instance:"g2"
          ~on_done ())
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure"

let test_load_with_optimize () =
  (* the whole monitor pipeline still works with the optimiser enabled *)
  let system =
    match
      Dynrecon.System.load ~mil:Dr_workloads.Monitor.mil
        ~sources:Dr_workloads.Monitor.sources ~optimize:true ()
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "load with optimize: %s" e
  in
  let bus =
    match
      Dynrecon.System.start system ~app:"monitor"
        ~hosts:Dr_workloads.Monitor.hosts ~default_host:"hostA" ()
    with
    | Ok bus -> bus
    | Error e -> Alcotest.failf "start: %s" e
  in
  Bus.run ~until:30.0 bus;
  (match System.migrate bus ~instance:"compute" ~new_instance:"c2" ~new_host:"hostB" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "migrate: %s" e);
  Bus.run ~until:(Bus.now bus +. 30.0) bus;
  Alcotest.(check bool) "correct with optimiser on" true
    (Dr_workloads.Monitor.averages_plausible ~n:4 (List.map snd (displayed bus)))

let test_crash_after_signal_never_completes () =
  (* a module that crashes on its way to the reconfiguration point never
     divulges: the script times out and the rest of the application is
     unharmed *)
  let mil =
    {|
module doomed {
  use interface in pattern {integer};
  reconfiguration point R;
}
application app { instance doomed on "hostA"; }
|}
  in
  let source =
    {|
module doomed;

var countdown: int = 3;

proc main() {
  var x: int;
  mh_init();
  while (true) {
    R: sleep(1);
    countdown = countdown - 1;
    if (countdown == 0) {
      x = 1 / (countdown * 0);
    }
  }
}
|}
  in
  let system =
    match Dynrecon.System.load ~mil ~sources:[ ("doomed", source) ] () with
    | Ok s -> s
    | Error e -> Alcotest.failf "load: %s" e
  in
  let bus =
    match
      Dynrecon.System.start system ~app:"app" ~hosts:Dr_workloads.Monitor.hosts ()
    with
    | Ok bus -> bus
    | Error e -> Alcotest.failf "start: %s" e
  in
  (* let it run to just before the crash, then ask for a replacement at
     the exact moment it is about to die *)
  Bus.run ~until:2.5 bus;
  (* force the crash before the next point passage: exhaust countdown *)
  Bus.run ~until:10.0 bus;
  (match Bus.process_status bus ~instance:"doomed" with
  | Some (Machine.Crashed _) -> ()
  | s ->
    Alcotest.failf "expected crashed module, got %s"
      (match s with
      | Some s -> Fmt.str "%a" Machine.pp_status s
      | None -> "gone"));
  match
    Dr_reconfig.Script.run_sync bus ~max_events:5_000 (fun ~on_done ->
        Dr_reconfig.Script.replace bus ~instance:"doomed" ~new_instance:"d2"
          ~on_done ())
  with
  | Error e ->
    Alcotest.(check bool) "script reports non-completion" true
      (contains "did not complete" e)
  | Ok _ -> Alcotest.fail "replacement of a crashed module completed?"

let test_malformed_image_crashes_clone () =
  (* restoring a wrong-shaped image must crash the clone cleanly, not
     corrupt it silently *)
  let system = Dr_workloads.Monitor.load () in
  let compute = Option.get (System.find_module system "compute") in
  let program = System.deployed_program compute in
  let sio_io = Dr_interp.Io_intf.null () in
  let clone = Dr_interp.Machine.create ~status_attr:"clone" ~io:sio_io program in
  let bogus =
    Dr_state.Image.make ~source_module:"compute"
      ~records:
        [ { Dr_state.Image.location = 1; values = [ Dr_state.Value.Vint 7 ] } ]
      ~heap:[]
  in
  Dr_interp.Machine.feed_image clone bogus;
  Dr_interp.Machine.run ~max_steps:100_000 clone;
  match Dr_interp.Machine.status clone with
  | Dr_interp.Machine.Crashed message ->
    Alcotest.(check bool) "mentions record shape" true
      (contains "values" message || contains "restore" message)
  | s ->
    Alcotest.failf "expected crash, got %a" Dr_interp.Machine.pp_status s

let () =
  Alcotest.run "system"
    [ ( "loading",
        [ Alcotest.test_case "monitor loads" `Quick test_load_monitor;
          Alcotest.test_case "instrumented source" `Quick
            test_instrumented_source_is_fig4_shaped;
          Alcotest.test_case "load errors" `Quick test_load_errors ] );
      ( "end to end",
        [ Alcotest.test_case "monitor migration" `Quick
            test_monitor_end_to_end_migration;
          Alcotest.test_case "with liveness trimming" `Quick
            test_monitor_migration_with_liveness_option;
          Alcotest.test_case "pipeline replacement" `Quick
            test_pipeline_stage_replacement;
          Alcotest.test_case "pipeline migration" `Quick
            test_pipeline_migrate_offset_stage;
          Alcotest.test_case "kv heap migration" `Quick
            test_kvstore_migration_preserves_heap;
          Alcotest.test_case "replicate" `Quick test_replicate_through_facade;
          Alcotest.test_case "burst" `Quick test_migration_during_burst;
          Alcotest.test_case "double migration" `Quick
            test_double_migration_end_to_end;
          Alcotest.test_case "token ring invariant" `Quick
            test_token_ring_invariant;
          Alcotest.test_case "worker farm exactly-once" `Quick
            test_worker_farm_exactly_once ] );
      ( "options",
        [ Alcotest.test_case "load with optimize" `Quick test_load_with_optimize ] );
      ( "failure paths",
        [ Alcotest.test_case "point-less module times out" `Quick
            test_replace_without_points_times_out;
          Alcotest.test_case "crash after signal" `Quick
            test_crash_after_signal_never_completes;
          Alcotest.test_case "unknown instance" `Quick test_replace_unknown_instance;
          Alcotest.test_case "malformed image" `Quick
            test_malformed_image_crashes_clone ] ) ]
