module Image = Dr_state.Image
module Codec = Dr_state.Codec
module Arch = Dr_state.Arch
module Value = Dr_state.Value

let sample_image =
  Image.make ~source_module:"compute"
    ~records:
      [ { Image.location = 4; values = [ Value.Vint 4; Vint 3; Vfloat 0.75; Vint 0 ] };
        { Image.location = 3; values = [ Value.Vint 4; Vint 4; Vfloat 0.75; Vint 0 ] };
        { Image.location = 1; values = [ Value.Vint 4; Vfloat 0.75 ] } ]
    ~heap:
      [ (0, { Image.elem_ty = Tint; cells = [| Value.Vint 1; Vint 2 |] });
        (3, { Image.elem_ty = Tarr Tint; cells = [| Value.Varr 0; Vnull |] }) ]

let test_abstract_roundtrip () =
  let bytes = Codec.encode_abstract sample_image in
  match Codec.decode_abstract bytes with
  | Ok decoded -> Alcotest.check Support.image "identical" sample_image decoded
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_abstract_deterministic () =
  let a = Codec.encode_abstract sample_image in
  let b = Codec.encode_abstract sample_image in
  Alcotest.(check bytes) "stable encoding" a b

let test_native_roundtrip_per_arch () =
  List.iter
    (fun arch ->
      match Codec.Native.encode arch sample_image with
      | Error e -> Alcotest.failf "%s: encode failed: %s" arch.Arch.arch_name e
      | Ok bytes -> (
        match Codec.Native.decode arch bytes with
        | Ok decoded ->
          Alcotest.check Support.image arch.Arch.arch_name sample_image decoded
        | Error e -> Alcotest.failf "%s: decode failed: %s" arch.Arch.arch_name e))
    Arch.all

let test_native_formats_differ () =
  let le = Result.get_ok (Codec.Native.encode Arch.x86_64 sample_image) in
  let be = Result.get_ok (Codec.Native.encode Arch.m68k sample_image) in
  Alcotest.(check bool) "little- and big-endian bytes differ" true (le <> be);
  let b32 = Result.get_ok (Codec.Native.encode Arch.arm32 sample_image) in
  Alcotest.(check bool) "32-bit image is smaller" true
    (Bytes.length b32 < Bytes.length le)

let test_translate_across_archs () =
  List.iter
    (fun (src, dst) ->
      let native_src = Result.get_ok (Codec.Native.encode src sample_image) in
      match Codec.Native.translate ~src ~dst native_src with
      | Error e ->
        Alcotest.failf "%s->%s: %s" src.Arch.arch_name dst.Arch.arch_name e
      | Ok native_dst -> (
        match Codec.Native.decode dst native_dst with
        | Ok decoded ->
          Alcotest.check Support.image
            (Printf.sprintf "%s->%s" src.Arch.arch_name dst.Arch.arch_name)
            sample_image decoded
        | Error e -> Alcotest.failf "decode after translate: %s" e))
    [ (Arch.x86_64, Arch.sparc32);
      (Arch.sparc32, Arch.x86_64);
      (Arch.arm32, Arch.m68k);
      (Arch.m68k, Arch.arm32) ]

let test_word_overflow_detected () =
  let big =
    Image.make ~source_module:"t"
      ~records:[ { Image.location = 1; values = [ Value.Vint 0x7FFFFFFFFF ] } ]
      ~heap:[]
  in
  (match Codec.Native.encode Arch.sparc32 big with
  | Error e ->
    Alcotest.(check bool) "mentions 32-bit" true
      (let contains needle haystack =
         let n = String.length needle and h = String.length haystack in
         let rec go i =
           i + n <= h && (String.sub haystack i n = needle || go (i + 1))
         in
         n = 0 || go 0
       in
       contains "32-bit" e)
  | Ok _ -> Alcotest.fail "expected overflow error");
  match Codec.Native.encode Arch.x86_64 big with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "64-bit should fit: %s" e

let test_malformed_inputs () =
  let expect_error name bytes =
    match Codec.decode_abstract bytes with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected decode error" name
  in
  expect_error "empty" (Bytes.create 0);
  expect_error "bad magic" (Bytes.of_string "XXXXXXXXXXXXXXXX");
  let valid = Codec.encode_abstract sample_image in
  expect_error "truncated" (Bytes.sub valid 0 (Bytes.length valid - 3));
  let extended = Bytes.cat valid (Bytes.of_string "junk") in
  expect_error "trailing bytes" extended;
  let corrupted = Bytes.copy valid in
  (* flip a tag byte deep inside the payload *)
  Bytes.set corrupted (Bytes.length corrupted - 9) '\xEE';
  match Codec.decode_abstract corrupted with
  | Error _ -> ()
  | Ok decoded ->
    (* a flipped value byte may still decode; it must then differ *)
    Alcotest.(check bool) "differs if decodable" false
      (Image.equal sample_image decoded)

let test_meta_roundtrip () =
  (* version 3: a metrics snapshot rides along with the image *)
  let registry = Dr_obs.Metrics.create () in
  Dr_obs.Metrics.incr registry ~labels:[ ("instance", "compute") ] ~by:7
    "interp.instructions";
  Dr_obs.Metrics.observe registry "capture.bytes" 184.0;
  let snapshot = Dr_obs.Metrics.snapshot_json ~now:42.0 registry in
  let bytes = Codec.encode_abstract ~meta:snapshot sample_image in
  Alcotest.(check char) "version byte is 3" '\x03' (Bytes.get bytes 6);
  (match Codec.decode_abstract_full bytes with
  | Ok (decoded, Some meta) ->
    Alcotest.check Support.image "image intact" sample_image decoded;
    Alcotest.(check string) "meta intact" snapshot meta
  | Ok (_, None) -> Alcotest.fail "meta lost"
  | Error e -> Alcotest.failf "decode_abstract_full: %s" e);
  (* the plain decoder accepts version 3 and drops the meta *)
  (match Codec.decode_abstract bytes with
  | Ok decoded -> Alcotest.check Support.image "plain decode" sample_image decoded
  | Error e -> Alcotest.failf "decode_abstract on v3: %s" e);
  (* the checksum covers the meta: corrupting it fails decode *)
  let corrupted = Bytes.copy bytes in
  Bytes.set corrupted 20 '\xEE';
  (match Codec.decode_abstract_full corrupted with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted meta decoded");
  (* meta-less encodes are unchanged: version 2, no meta reported *)
  let plain = Codec.encode_abstract sample_image in
  Alcotest.(check char) "version byte is 2" '\x02' (Bytes.get plain 6);
  match Codec.decode_abstract_full plain with
  | Ok (decoded, None) ->
    Alcotest.check Support.image "v2 via full decoder" sample_image decoded
  | Ok (_, Some _) -> Alcotest.fail "phantom meta on v2"
  | Error e -> Alcotest.failf "v2 via full decoder: %s" e

let test_legacy_v1_decode () =
  (* a version-1 container is the version-2 one minus the version byte
     and the CRC trailer, under the old magic *)
  let v2 = Codec.encode_abstract sample_image in
  let body = Bytes.sub v2 7 (Bytes.length v2 - 7 - 4) in
  let v1 = Bytes.cat (Bytes.of_string "DRIMG1") body in
  (match Codec.decode_abstract v1 with
  | Ok decoded -> Alcotest.check Support.image "v1 decodes" sample_image decoded
  | Error e -> Alcotest.failf "legacy decode: %s" e);
  match Codec.decode_abstract_full v1 with
  | Ok (decoded, None) ->
    Alcotest.check Support.image "v1 via full decoder" sample_image decoded
  | Ok (_, Some _) -> Alcotest.fail "phantom meta on v1"
  | Error e -> Alcotest.failf "legacy full decode: %s" e

let test_empty_image () =
  let empty = Image.empty ~source_module:"nil" in
  let bytes = Codec.encode_abstract empty in
  match Codec.decode_abstract bytes with
  | Ok decoded -> Alcotest.check Support.image "empty" empty decoded
  | Error e -> Alcotest.failf "empty image: %s" e

let test_image_push_pop () =
  let img = Image.empty ~source_module:"m" in
  let r1 = { Image.location = 1; values = [ Value.Vint 1 ] } in
  let r2 = { Image.location = 2; values = [ Value.Vint 2 ] } in
  let img = Image.push_record (Image.push_record img r1) r2 in
  Alcotest.(check int) "depth" 2 (Image.depth img);
  match Image.pop_record img with
  | Some (popped, rest) ->
    Alcotest.(check int) "LIFO pops last pushed" 2 popped.Image.location;
    (match Image.pop_record rest with
    | Some (popped2, rest2) ->
      Alcotest.(check int) "then first" 1 popped2.Image.location;
      Alcotest.(check bool) "empty after" true (Image.pop_record rest2 = None)
    | None -> Alcotest.fail "second pop")
  | None -> Alcotest.fail "first pop"

let test_gather_blocks_sharing_and_cycles () =
  let blocks =
    [ (0, { Image.elem_ty = Dr_lang.Ast.Tarr Tint; cells = [| Value.Varr 1; Varr 1 |] });
      (1, { Image.elem_ty = Dr_lang.Ast.Tarr Tint; cells = [| Value.Varr 0 |] });
      (2, { Image.elem_ty = Dr_lang.Ast.Tint; cells = [| Value.Vint 9 |] }) ]
  in
  let lookup id = List.assoc_opt id blocks in
  let gathered = Image.gather_blocks ~lookup [ Value.Varr 0 ] in
  Alcotest.(check (list int)) "cycle-safe, shared once, unreachable excluded"
    [ 0; 1 ] (List.map fst gathered);
  let via_ptr = Image.gather_blocks ~lookup [ Value.Vptr (2, 0) ] in
  Alcotest.(check (list int)) "pointers reach blocks" [ 2 ] (List.map fst via_ptr);
  let dangling = Image.gather_blocks ~lookup [ Value.Varr 99 ] in
  Alcotest.(check (list int)) "dangling ignored" [] (List.map fst dangling)

let test_byte_size_monotone () =
  let small = Image.empty ~source_module:"m" in
  let bigger =
    Image.push_record small { Image.location = 1; values = [ Value.Vstr "hello" ] }
  in
  Alcotest.(check bool) "adding a record grows the image" true
    (Image.byte_size bigger > Image.byte_size small)

(* ------------------------------------------- delta container (DRIMGD1) *)

let sample_delta =
  { Image.d_source_module = "compute";
    d_base_digest = Image.digest sample_image;
    d_record_count = 3;
    d_slots =
      [ (0, 1, Value.Vint 9); (1, 0, Value.Vstr "fresh"); (2, 1, Value.Vfloat 1.5) ];
    d_heap_new =
      [ (5, { Image.elem_ty = Dr_lang.Ast.Tint; cells = [| Value.Vint 7 |] }) ];
    d_heap_keep = [ 0; 3 ] }

let delta_equal (a : Image.delta) (b : Image.delta) =
  String.equal a.d_source_module b.d_source_module
  && Int64.equal a.d_base_digest b.d_base_digest
  && a.d_record_count = b.d_record_count
  && List.equal
       (fun (i1, j1, v1) (i2, j2, v2) -> i1 = i2 && j1 = j2 && Value.equal v1 v2)
       a.d_slots b.d_slots
  && List.equal
       (fun (i1, (b1 : Image.heap_block)) (i2, (b2 : Image.heap_block)) ->
         i1 = i2 && b1.elem_ty = b2.elem_ty
         && Array.to_list b1.cells = Array.to_list b2.cells)
       a.d_heap_new b.d_heap_new
  && List.equal Int.equal a.d_heap_keep b.d_heap_keep

let test_delta_roundtrip () =
  let bytes = Codec.encode_delta sample_delta in
  match Codec.decode_delta bytes with
  | Ok decoded ->
    Alcotest.(check bool) "delta round-trips" true (delta_equal sample_delta decoded)
  | Error e -> Alcotest.failf "delta decode: %s" e

let test_delta_deterministic () =
  Alcotest.(check bool) "byte-identical re-encode" true
    (Bytes.equal (Codec.encode_delta sample_delta) (Codec.encode_delta sample_delta))

let test_delta_corruption_detected () =
  (* every single-byte flip anywhere in the container must fail decode
     loudly — magic/version damage as a format error, anything else via
     the CRC trailer; none may mis-parse into a different delta *)
  let valid = Codec.encode_delta sample_delta in
  for i = 0 to Bytes.length valid - 1 do
    let corrupted = Bytes.copy valid in
    Bytes.set corrupted i (Char.chr (Char.code (Bytes.get corrupted i) lxor 0x41));
    match Codec.decode_delta corrupted with
    | Error _ -> ()
    | Ok decoded ->
      if not (delta_equal sample_delta decoded) then
        Alcotest.failf "flip at byte %d decoded into a different delta" i
      else Alcotest.failf "flip at byte %d went undetected" i
  done

let test_delta_truncation_detected () =
  (* a torn write at any prefix length must fail decode, never parse *)
  let valid = Codec.encode_delta sample_delta in
  for len = 0 to Bytes.length valid - 1 do
    match Codec.decode_delta (Bytes.sub valid 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes decoded" len
  done

let prop_abstract_roundtrip =
  Support.qcheck ~count:300 "abstract codec round-trips" Gen.image (fun img ->
      match Codec.decode_abstract (Codec.encode_abstract img) with
      | Ok decoded -> Image.equal img decoded
      | Error e -> QCheck2.Test.fail_reportf "decode error: %s" e)

let prop_cross_arch_roundtrip =
  Support.qcheck ~count:200 "32-bit-safe images survive any arch pair"
    Gen.image_32bit (fun img ->
      List.for_all
        (fun (src, dst) ->
          match Codec.Native.encode src img with
          | Error _ -> false
          | Ok bytes -> (
            match Codec.Native.translate ~src ~dst bytes with
            | Error _ -> false
            | Ok out -> (
              match Codec.Native.decode dst out with
              | Ok decoded -> Image.equal img decoded
              | Error _ -> false)))
        [ (Arch.x86_64, Arch.sparc32); (Arch.sparc32, Arch.arm32) ])

let () =
  Alcotest.run "codec"
    [ ( "abstract",
        [ Alcotest.test_case "roundtrip" `Quick test_abstract_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_abstract_deterministic;
          Alcotest.test_case "empty image" `Quick test_empty_image;
          Alcotest.test_case "meta roundtrip (v3)" `Quick test_meta_roundtrip;
          Alcotest.test_case "legacy v1 decode" `Quick test_legacy_v1_decode;
          Alcotest.test_case "malformed" `Quick test_malformed_inputs ] );
      ( "native",
        [ Alcotest.test_case "per-arch roundtrip" `Quick
            test_native_roundtrip_per_arch;
          Alcotest.test_case "formats differ" `Quick test_native_formats_differ;
          Alcotest.test_case "translate across archs" `Quick
            test_translate_across_archs;
          Alcotest.test_case "word overflow" `Quick test_word_overflow_detected ] );
      ( "delta",
        [ Alcotest.test_case "roundtrip" `Quick test_delta_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_delta_deterministic;
          Alcotest.test_case "bit-flip fuzz" `Quick test_delta_corruption_detected;
          Alcotest.test_case "truncation fuzz" `Quick
            test_delta_truncation_detected ] );
      ( "image",
        [ Alcotest.test_case "push/pop LIFO" `Quick test_image_push_pop;
          Alcotest.test_case "gather blocks" `Quick
            test_gather_blocks_sharing_and_cycles;
          Alcotest.test_case "byte size" `Quick test_byte_size_monotone ] );
      ("properties", [ prop_abstract_roundtrip; prop_cross_arch_roundtrip ]) ]
