module Liveness = Dr_analysis.Liveness

let analyze ?with_program source proc_name =
  let program = Support.parse source in
  let proc =
    match Dr_lang.Ast.find_proc program proc_name with
    | Some p -> p
    | None -> Alcotest.failf "no proc %s" proc_name
  in
  match with_program with
  | Some () -> Liveness.analyze ~program proc
  | None -> Liveness.analyze proc

let check_live name expected info label =
  match Liveness.live_at_label info label with
  | Some vars -> Alcotest.(check (list string)) name expected vars
  | None -> Alcotest.failf "no label %s" label

let test_straight_line () =
  let info =
    analyze
      {|
module t;
proc f(a: int, b: int) {
  var x: int;
  x = a + 1;
  L: print(x);
  print(b);
}
proc main() { f(1, 2); }
|}
      "f"
  in
  (* at L: x is about to be read, b later; a is dead *)
  check_live "live at L" [ "b"; "x" ] info "L"

let test_dead_after_last_use () =
  let info =
    analyze
      {|
module t;
proc f(a: int) {
  print(a);
  L: skip;
}
proc main() { f(1); }
|}
      "f"
  in
  check_live "nothing live at L" [] info "L"

let test_loop_keeps_alive () =
  let info =
    analyze
      {|
module t;
proc f(n: int) {
  var i: int;
  i = 0;
  while (i < n) {
    L: i = i + 1;
  }
}
proc main() { f(3); }
|}
      "f"
  in
  (* i and n both live inside the loop (read at the condition on the next
     iteration) *)
  check_live "loop variables" [ "i"; "n" ] info "L"

let test_goto_flow () =
  let info =
    analyze
      {|
module t;
proc f(a: int, b: int) {
  goto L2;
  L1: print(a);
  return;
  L2: print(b);
  goto L1;
}
proc main() { f(1, 2); }
|}
      "f"
  in
  (* at L2 both are live: b printed here, a printed at L1 afterwards *)
  check_live "goto chain" [ "a"; "b" ] info "L2";
  check_live "after jump to L1" [ "a" ] info "L1"

let test_write_kills () =
  let info =
    analyze
      {|
module t;
proc f(a: int) {
  L: a = 5;
  print(a);
}
proc main() { f(1); }
|}
      "f"
  in
  (* a is overwritten before being read: dead at L *)
  check_live "killed by write" [] info "L"

let test_branch_union () =
  let info =
    analyze
      {|
module t;
proc f(a: int, b: int, c: bool) {
  L: if (c) { print(a); } else { print(b); }
}
proc main() { f(1, 2, true); }
|}
      "f"
  in
  check_live "both branches" [ "a"; "b"; "c" ] info "L"

let test_array_base_live () =
  let info =
    analyze
      {|
module t;
proc f(a: int[], i: int) {
  L: a[i] = 3;
}
proc main() { var a: int[]; f(a, 0); }
|}
      "f"
  in
  (* writing a[i] reads both the base and the index *)
  check_live "base and index" [ "a"; "i" ] info "L"

let test_live_after_call () =
  let source =
    {|
module t;
proc g(x: int) { print(x); }
proc f(a: int, b: int) {
  g(a);
  print(b);
}
proc main() { f(1, 2); }
|}
  in
  let program = Support.parse source in
  let proc = Option.get (Dr_lang.Ast.find_proc program "f") in
  let info = Liveness.analyze ~program proc in
  (match Liveness.live_after_call info 0 with
  | Some vars -> Alcotest.(check (list string)) "after g(a)" [ "b" ] vars
  | None -> Alcotest.fail "no call site 0");
  Alcotest.(check bool) "no site 5" true (Liveness.live_after_call info 5 = None)

let test_ref_args_defined () =
  let source =
    {|
module t;
proc g(ref out: int) { out = 1; }
proc f() {
  var x: int;
  L: g(x);
  print(x);
}
proc main() { f(); }
|}
  in
  let program = Support.parse source in
  let proc = Option.get (Dr_lang.Ast.find_proc program "f") in
  let info = Liveness.analyze ~program proc in
  (* with program context, x is defined by the ref call, so it is not
     live before L (its later read is satisfied by the call's write) —
     but the call also uses it conservatively, keeping it live *)
  match Liveness.live_at_label info "L" with
  | Some vars -> Alcotest.(check (list string)) "conservative" [ "x" ] vars
  | None -> Alcotest.fail "no L"

let test_entry_liveness () =
  let info =
    analyze
      "module t;\nproc f(a: int, b: int) { print(a); }\nproc main() { f(1,2); }"
      "f"
  in
  Alcotest.(check (list string)) "only a live at entry" [ "a" ]
    (Liveness.live_at_entry info)

let test_used_anywhere () =
  let info =
    analyze
      "module t;\nproc f(a: int) { var x: int; x = a; }\nproc main() { f(1); }"
      "f"
  in
  Alcotest.(check (list string)) "all" [ "a"; "x" ] (Liveness.used_anywhere info)

let test_noinit_decl_is_not_a_def () =
  (* A declaration without an initialiser lowers to no instruction: the
     frame slot keeps the previous iteration's value around the loop
     back edge, so the bare decl must not kill liveness above it. *)
  let info =
    analyze
      {|
module t;
proc main() {
  var i: int = 0;
  var s: int = 0;
  while (i < 5) {
    R: skip;
    var t: int;
    s = s + t;
    t = i * 10;
    i = i + 1;
  }
  print(s);
}
|}
      "main"
  in
  check_live "t live at R" [ "i"; "s"; "t" ] info "R"

let () =
  Alcotest.run "liveness"
    [ ( "dataflow",
        [ Alcotest.test_case "straight line" `Quick test_straight_line;
          Alcotest.test_case "dead after last use" `Quick test_dead_after_last_use;
          Alcotest.test_case "loop keeps alive" `Quick test_loop_keeps_alive;
          Alcotest.test_case "goto flow" `Quick test_goto_flow;
          Alcotest.test_case "write kills" `Quick test_write_kills;
          Alcotest.test_case "branch union" `Quick test_branch_union;
          Alcotest.test_case "array base" `Quick test_array_base_live;
          Alcotest.test_case "live after call" `Quick test_live_after_call;
          Alcotest.test_case "ref args" `Quick test_ref_args_defined;
          Alcotest.test_case "entry" `Quick test_entry_liveness;
          Alcotest.test_case "used anywhere" `Quick test_used_anywhere;
          Alcotest.test_case "no-init decl is not a def" `Quick
            test_noinit_decl_is_not_a_def ] ) ]
