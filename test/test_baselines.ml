module Machine = Dr_interp.Machine
module Checkpoint = Dr_baselines.Checkpoint
module Quiescence = Dr_baselines.Quiescence
module Proc_update = Dr_baselines.Proc_update
module Bus = Dr_bus.Bus

(* ------------------------------------------------------------ checkpoint *)

let counting_program iterations =
  Support.parse
    (Printf.sprintf
       "module work;\nvar done_marker: int = 0;\nproc main() { var i: int; while (i < %d) { i = i + 1; } done_marker = i; print(i); }"
       iterations)

let test_checkpoint_cadence () =
  let sio = Support.script_io () in
  let cp = Checkpoint.create ~interval:100 ~io:sio.Support.io (counting_program 200) in
  Checkpoint.run cp ~max_steps:1_000_000;
  let stats = Checkpoint.stats cp in
  Alcotest.(check bool) "halted" true (Machine.status (Checkpoint.machine cp) = Machine.Halted);
  let expected = stats.instructions_run / 100 in
  Alcotest.(check bool)
    (Printf.sprintf "snapshot count ~ instructions/interval (%d vs %d)"
       stats.checkpoints_taken expected)
    true
    (abs (stats.checkpoints_taken - expected) <= 1);
  Alcotest.(check bool) "cost accumulates" true (stats.snapshot_cost > 0.0)

let test_checkpoint_interval_tradeoff () =
  let run interval =
    let sio = Support.script_io () in
    let cp = Checkpoint.create ~interval ~io:sio.Support.io (counting_program 500) in
    Checkpoint.run cp ~max_steps:1_000_000;
    Checkpoint.stats cp
  in
  let fine = run 50 and coarse = run 500 in
  Alcotest.(check bool) "finer interval costs more" true
    (fine.snapshot_cost > coarse.snapshot_cost);
  Alcotest.(check bool) "finer interval snapshots more" true
    (fine.checkpoints_taken > coarse.checkpoints_taken)

let test_checkpoint_rollback_loses_work () =
  let sio = Support.script_io () in
  let cp = Checkpoint.create ~interval:100 ~io:sio.Support.io (counting_program 1000) in
  Checkpoint.run cp ~max_steps:350;
  let sio2 = Support.script_io () in
  match Checkpoint.rollback cp ~io:sio2.Support.io with
  | None -> Alcotest.fail "no checkpoint to roll back to"
  | Some (restored, lost) ->
    Alcotest.(check bool) "some work lost" true (lost > 0);
    Alcotest.(check bool) "bounded by interval" true (lost <= 100);
    (* the restored machine finishes correctly, repeating the lost work *)
    Machine.run ~max_steps:1_000_000 restored;
    Alcotest.(check (list string)) "correct final state" [ "1000" ]
      (Support.printed sio2)

let test_checkpoint_no_rollback_before_first () =
  let sio = Support.script_io () in
  let cp = Checkpoint.create ~interval:1000 ~io:sio.Support.io (counting_program 10) in
  (* runs to completion in < 1000 instructions: no checkpoint taken *)
  Checkpoint.run cp ~max_steps:50;
  match Checkpoint.rollback cp ~io:sio.Support.io with
  | None -> ()
  | Some _ -> Alcotest.fail "unexpected checkpoint"

let test_checkpoint_rejects_bad_interval () =
  let sio = Support.script_io () in
  match Checkpoint.create ~interval:0 ~io:sio.Support.io (counting_program 1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "interval 0 accepted"

(* ----------------------------------------------------------- quiescence *)

let idle_server =
  {|
module idler;
var served: int = 0;
proc main() {
  var x: int;
  mh_init();
  while (true) {
    while (mh_query("in")) {
      mh_read("in", x);
      served = served + 1;
    }
    sleep(5);
  }
}
|}

let busy_server =
  {|
module busy;
proc main() {
  var i: int;
  mh_init();
  while (true) {
    i = i + 1;
  }
}
|}

let hosts = Dr_workloads.Monitor.hosts

let test_quiescent_update_succeeds () =
  let bus = Bus.create ~hosts () in
  (match Bus.register_program bus (Support.parse idle_server) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "register: %s" e);
  (match Bus.spawn bus ~instance:"s" ~module_name:"idler" ~host:"hostA" () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "spawn: %s" e);
  Bus.add_route bus ~src:("feed", "out") ~dst:("s", "in");
  Bus.run ~until:20.0 bus;
  let result = ref None in
  Quiescence.update_when_quiescent bus ~instance:"s" ~new_instance:"s2"
    ~on_done:(fun r -> result := Some r)
    ();
  Bus.run_while bus ~max_events:100_000 (fun () -> !result = None);
  (match !result with
  | Some (Ok outcome) ->
    Alcotest.(check bool) "completed" true outcome.completed;
    Alcotest.(check bool) "replacement running" true
      (List.mem "s2" (Bus.instances bus));
    Alcotest.(check bool) "old gone" true (not (List.mem "s" (Bus.instances bus)));
    (* routes retargeted *)
    Alcotest.(check (list (pair string string))) "route moved" [ ("s2", "in") ]
      (Bus.routes_from bus ("feed", "out"))
  | Some (Error e) -> Alcotest.failf "update: %s" e
  | None -> Alcotest.fail "did not finish");
  (* crucially: no state transfer — the fresh instance lost the counter.
     (That is the documented limitation of module-level atomicity.) *)
  match Bus.machine bus ~instance:"s2" with
  | Some m ->
    Alcotest.check Support.value "state lost" (Dr_state.Value.Vint 0)
      (Option.value ~default:(Dr_state.Value.Vint (-1)) (Machine.read_global m "served"))
  | None -> Alcotest.fail "no machine"

let test_busy_module_never_quiesces () =
  let bus = Bus.create ~hosts () in
  (match Bus.register_program bus (Support.parse busy_server) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "register: %s" e);
  (match Bus.spawn bus ~instance:"b" ~module_name:"busy" ~host:"hostA" () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "spawn: %s" e);
  let result = ref None in
  Quiescence.update_when_quiescent bus ~instance:"b" ~new_instance:"b2"
    ~give_up_after:50.0
    ~on_done:(fun r -> result := Some r)
    ();
  Bus.run_while bus ~max_events:500_000 (fun () -> !result = None);
  match !result with
  | Some (Ok outcome) ->
    Alcotest.(check bool) "gave up" false outcome.completed;
    Alcotest.(check bool) "waited the full budget" true (outcome.waited >= 50.0);
    Alcotest.(check bool) "old still running" true
      (List.mem "b" (Bus.instances bus))
  | Some (Error e) -> Alcotest.failf "unexpected error: %s" e
  | None -> Alcotest.fail "did not finish"

let test_quiescence_requires_empty_queues () =
  let bus = Bus.create ~hosts () in
  (match Bus.register_program bus (Support.parse idle_server) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "register: %s" e);
  (match Bus.spawn bus ~instance:"s" ~module_name:"idler" ~host:"hostA" () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "spawn: %s" e);
  Bus.run ~until:3.0 bus;
  (* while sleeping, a pending message means NOT quiescent *)
  Bus.inject bus ~dst:("s", "in") (Dr_state.Value.Vint 1);
  Alcotest.(check bool) "pending message blocks quiescence" false
    (Quiescence.is_quiescent bus ~instance:"s" ~ifaces:[ "in" ])

(* --------------------------------------------------------- proc update *)

let make_update ~iterations ~change =
  let old_program = Dr_workloads.Synthetic.layered ~iterations in
  let new_program = Dr_workloads.Synthetic.layered_variant ~iterations ~change in
  let sio = Support.script_io () in
  let machine = Machine.create ~io:sio.Support.io old_program in
  (Proc_update.create ~machine ~old_program ~new_program, machine, sio)

let test_changed_set_detection () =
  let updater, _, _ = make_update ~iterations:10 ~change:`Leaf in
  Alcotest.(check (list string)) "leaf only" [ "leaf" ]
    (Proc_update.changed_procs updater);
  let updater, _, _ = make_update ~iterations:10 ~change:`Mid in
  Alcotest.(check (list string)) "mid only" [ "mid" ]
    (Proc_update.changed_procs updater);
  let updater, _, _ = make_update ~iterations:10 ~change:`Main in
  Alcotest.(check (list string)) "main only" [ "main" ]
    (Proc_update.changed_procs updater)

let test_leaf_update_fast () =
  let updater, machine, _ = make_update ~iterations:1000 ~change:`Leaf in
  let progress = Proc_update.run updater ~max_steps:2_000_000 in
  Alcotest.(check bool) "completed" true progress.completed;
  Alcotest.(check bool) "long before termination" true
    (Machine.status machine = Machine.Ready);
  Alcotest.(check (list string)) "leaf swapped" [ "leaf" ] progress.replaced

let test_main_update_waits_for_termination () =
  (* the paper: "when the main procedure has changed, the update cannot
     complete until the program terminates" *)
  let updater, machine, _ = make_update ~iterations:500 ~change:`Main in
  (* run a while: main is always on the stack, so nothing happens *)
  let rec spin n =
    if n > 0 && Machine.status machine = Machine.Ready then begin
      Proc_update.step updater;
      spin (n - 1)
    end
  in
  spin 1000;
  Alcotest.(check bool) "not completed while running" false
    (Proc_update.progress updater).completed;
  (* run to termination: only then can main be replaced *)
  let progress = Proc_update.run updater ~max_steps:10_000_000 in
  Alcotest.(check bool) "machine finished" true (Machine.status machine = Machine.Halted);
  Alcotest.(check bool) "completed at termination" true progress.completed

let test_bottom_up_ordering () =
  (* when both leaf and mid change, mid may only be swapped after leaf *)
  let old_program = Dr_workloads.Synthetic.layered ~iterations:300 in
  let new_program =
    Support.parse
      (Dr_lang.Pretty.program_to_string
         (Dr_workloads.Synthetic.layered_variant ~iterations:300 ~change:`Leaf))
  in
  (* additionally change mid *)
  let new_program =
    { new_program with
      procs =
        List.map
          (fun (p : Dr_lang.Ast.proc) ->
            if p.proc_name = "mid" then
              { p with
                body =
                  p.body
                  @ [ Dr_lang.Ast.stmt (Dr_lang.Ast.Return (Some (Dr_lang.Ast.Int 0))) ] }
            else p)
          new_program.procs }
  in
  let sio = Support.script_io () in
  let machine = Machine.create ~io:sio.Support.io old_program in
  let updater = Proc_update.create ~machine ~old_program ~new_program in
  Alcotest.(check (list string)) "both changed" [ "leaf"; "mid" ]
    (Proc_update.changed_procs updater);
  let progress = Proc_update.run updater ~max_steps:10_000_000 in
  Alcotest.(check bool) "completed" true progress.completed;
  Alcotest.(check (list string)) "bottom-up: leaf before mid" [ "leaf"; "mid" ]
    progress.replaced

let test_new_code_takes_effect () =
  (* after the update, calls use the new implementation: outputs differ
     from a pure old run and match a pure new run's tail behaviour *)
  let old_program = Dr_workloads.Synthetic.layered ~iterations:50 in
  let new_program = Dr_workloads.Synthetic.layered_variant ~iterations:50 ~change:`Leaf in
  let run_pure program =
    let sio = Support.script_io () in
    let m = Machine.create ~io:sio.Support.io program in
    Machine.run ~max_steps:1_000_000 m;
    Support.printed sio
  in
  let pure_old = run_pure old_program in
  let pure_new = run_pure new_program in
  Alcotest.(check bool) "programs differ" true (pure_old <> pure_new);
  let sio = Support.script_io () in
  let machine = Machine.create ~io:sio.Support.io old_program in
  let updater = Proc_update.create ~machine ~old_program ~new_program in
  let progress = Proc_update.run updater ~max_steps:10_000_000 in
  Alcotest.(check bool) "completed" true progress.completed;
  Machine.run ~max_steps:1_000_000 machine;
  let mixed = Support.printed sio in
  (* updated early (first step), so the whole run used the new leaf *)
  Alcotest.(check (list string)) "behaves as new version" pure_new mixed

(* ----------------------------------------------------- recompilation *)

let monitor_compute =
  {|
module compute;

proc main() {
  var n: int;
  var response: float;
  mh_init();
  while (true) {
    while (mh_query("display")) {
      mh_read("display", n);
      compute(n, n, response);
      mh_write("display", response);
    }
    sleep(2);
  }
}

proc compute(num: int, n: int, ref rp: float) {
  var temper: int;
  if (n <= 0) { rp = 0.0; return; }
  compute(num, n - 1, rp);
  R: mh_read("sensor", temper);
  rp = rp + float(temper) / float(num);
}
|}

let test_recompile_monitor_mid_recursion () =
  let prepared =
    Support.prepare monitor_compute [ Support.point "compute" "R" ]
  in
  let sensor = List.init 32 (fun i -> i + 1) in
  let _old, _clone, image, _sio =
    Support.capture_and_clone prepared.Dr_transform.Instrument.prepared_program
      ~feeds:[ ("display", [ Dr_state.Value.Vint 4 ]) ]
      ~sensor_values:sensor ~signal_after_reads:2
  in
  match Dr_baselines.Recompile.synthesize ~prepared ~image with
  | Error e -> Alcotest.failf "synthesize: %s" e
  | Ok migration_program ->
    (* the migration program is an ordinary module: printable,
       re-parseable, and runnable with NO restore buffer and NO clone
       status *)
    let printed = Dr_lang.Pretty.program_to_string migration_program in
    let reparsed = Support.parse printed in
    Support.typecheck_ok reparsed;
    let sio =
      Support.script_io ~feeds:[ ("sensor", List.map (fun i -> Dr_state.Value.Vint i) [ 3; 4 ]) ] ()
    in
    let m = Machine.create ~io:sio.Support.io reparsed in
    let guard = ref 0 in
    while
      Machine.status m = Machine.Ready && sio.Support.written = [] && !guard < 200_000
    do
      Machine.step m;
      incr guard
    done;
    (match Support.written sio with
    | [ ("display", Dr_state.Value.Vfloat avg) ] ->
      Alcotest.(check (float 1e-9)) "resumes and answers 2.5" 2.5 avg
    | w -> Alcotest.failf "unexpected writes: %d" (List.length w))

let test_recompile_heap_blocks () =
  let source =
    {|
module heapy;

var table: int[];
var cur: int*;

proc main() {
  var steps: int;
  mh_init();
  table = alloc_int(6);
  table[2] = 42;
  cur = &table[2];
  while (true) {
    R: steps = steps + 1;
    sleep(1);
  }
}
|}
  in
  let prepared = Support.prepare source [ Support.point "main" "R" ] in
  let sio = Support.script_io () in
  let m = Machine.create ~io:sio.Support.io prepared.Dr_transform.Instrument.prepared_program in
  Machine.run ~max_steps:100_000 m;
  Machine.deliver_signal m;
  Machine.set_ready m;
  Machine.run ~max_steps:100_000 m;
  let image = List.hd sio.Support.divulged in
  match Dr_baselines.Recompile.synthesize ~prepared ~image with
  | Error e -> Alcotest.failf "synthesize: %s" e
  | Ok migration_program ->
    let sio2 = Support.script_io () in
    let m2 = Machine.create ~io:sio2.Support.io migration_program in
    Machine.run ~max_steps:100_000 m2;
    Alcotest.(check bool) "resumed into the loop" true
      (match Machine.status m2 with Machine.Sleeping _ -> true | _ -> false);
    (* heap rebuilt from literals, with the interior pointer intact *)
    (match Machine.read_global m2 "table", Machine.read_global m2 "cur" with
    | Some (Dr_state.Value.Varr b), Some (Dr_state.Value.Vptr (b', 2)) ->
      Alcotest.(check int) "pointer into the same block" b b';
      (match Machine.heap_block m2 b with
      | Some block ->
        Alcotest.check Support.value "cell preserved" (Dr_state.Value.Vint 42)
          block.cells.(2)
      | None -> Alcotest.fail "missing block")
    | _ -> Alcotest.fail "heap globals not restored")

let test_recompile_rejects_garbage_image () =
  let prepared =
    Support.prepare monitor_compute [ Support.point "compute" "R" ]
  in
  let bogus =
    Dr_state.Image.make ~source_module:"compute"
      ~records:[ { Dr_state.Image.location = 99; values = [] } ]
      ~heap:[]
  in
  match Dr_baselines.Recompile.synthesize ~prepared ~image:bogus with
  | Error e ->
    Alcotest.(check bool) "mentions location" true
      (let contains needle haystack =
         let n = String.length needle and h = String.length haystack in
         let rec go i =
           i + n <= h && (String.sub haystack i n = needle || go (i + 1))
         in
         n = 0 || go 0
       in
       contains "location" e)
  | Ok _ -> Alcotest.fail "expected rejection"

(* --------------------------------------------- machine-specific move *)

let test_machine_move_same_arch () =
  (* hostA is x86_64 and so is nowhere else in the monitor set; add a
     twin host for the same-architecture case *)
  let hosts =
    { Bus.host_name = "hostA2"; arch = Dr_state.Arch.x86_64 }
    :: Dr_workloads.Monitor.hosts
  in
  let system = Dr_workloads.Monitor.load () in
  let bus =
    match
      Dynrecon.System.start system ~app:"monitor" ~hosts ~default_host:"hostA" ()
    with
    | Ok bus -> bus
    | Error e -> Alcotest.failf "start: %s" e
  in
  Bus.run ~until:20.0 bus;
  (match
     Dr_baselines.Machine_move.move bus ~instance:"compute"
       ~new_instance:"compute_raw" ~new_host:"hostA2"
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "same-arch move: %s" e);
  Alcotest.(check (option string)) "moved" (Some "hostA2")
    (Bus.instance_host bus ~instance:"compute_raw");
  (* the application keeps producing correct averages: the raw snapshot
     carried the mid-statement state with it *)
  Bus.run ~until:(Bus.now bus +. 40.0) bus;
  let avgs =
    List.filter_map Dr_workloads.Monitor.parse_displayed
      (Bus.outputs bus ~instance:"display")
  in
  Alcotest.(check bool) "still correct" true
    (Dr_workloads.Monitor.averages_plausible ~n:4 (List.map snd avgs))

let test_machine_move_refuses_cross_arch () =
  let system = Dr_workloads.Monitor.load () in
  let bus = Dr_workloads.Monitor.start system in
  Bus.run ~until:10.0 bus;
  match
    Dr_baselines.Machine_move.move bus ~instance:"compute"
      ~new_instance:"compute_raw" ~new_host:"hostB"
  with
  | Error e ->
    let contains needle haystack =
      let n = String.length needle and h = String.length haystack in
      let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
      n = 0 || go 0
    in
    Alcotest.(check bool) "explains the architecture barrier" true
      (contains "architecture" e);
    Alcotest.(check bool) "original untouched" true
      (List.mem "compute" (Bus.instances bus))
  | Ok () -> Alcotest.fail "cross-architecture raw snapshot accepted"

let prop_recompile_equivalent =
  Support.qcheck ~count:15 "migration program equivalent to restore buffer"
    QCheck2.Gen.(1 -- 24)
    (fun depth ->
      let program = Dr_workloads.Synthetic.deeprec ~depth in
      match
        Dr_transform.Instrument.prepare program
          ~points:Dr_workloads.Synthetic.deeprec_points
      with
      | Error e -> QCheck2.Test.fail_reportf "prepare: %s" e
      | Ok prepared ->
        let sio = Support.script_io () in
        let m =
          Machine.create ~io:sio.Support.io
            prepared.Dr_transform.Instrument.prepared_program
        in
        Machine.run ~max_steps:1_000_000 m;
        Machine.deliver_signal m;
        Machine.set_ready m;
        Machine.run ~max_steps:1_000_000 m;
        let image = List.hd sio.Support.divulged in
        (* ours *)
        let clone =
          Machine.create ~status_attr:"clone" ~io:(Dr_interp.Io_intf.null ())
            prepared.Dr_transform.Instrument.prepared_program
        in
        Machine.feed_image clone image;
        Machine.run ~max_steps:1_000_000 clone;
        (* theirs *)
        (match Dr_baselines.Recompile.synthesize ~prepared ~image with
        | Error e -> QCheck2.Test.fail_reportf "synthesize: %s" e
        | Ok migration_program ->
          let mig =
            Machine.create ~io:(Dr_interp.Io_intf.null ()) migration_program
          in
          Machine.run ~max_steps:1_000_000 mig;
          Machine.stack_depth clone = Machine.stack_depth mig
          && Machine.stack_procs clone = Machine.stack_procs mig
          && Machine.read_global clone "ticks" = Machine.read_global mig "ticks"))

let () =
  Alcotest.run "baselines"
    [ ( "checkpoint",
        [ Alcotest.test_case "cadence" `Quick test_checkpoint_cadence;
          Alcotest.test_case "interval tradeoff" `Quick
            test_checkpoint_interval_tradeoff;
          Alcotest.test_case "rollback loses work" `Quick
            test_checkpoint_rollback_loses_work;
          Alcotest.test_case "no checkpoint yet" `Quick
            test_checkpoint_no_rollback_before_first;
          Alcotest.test_case "bad interval" `Quick
            test_checkpoint_rejects_bad_interval ] );
      ( "quiescence",
        [ Alcotest.test_case "idle module updates" `Quick
            test_quiescent_update_succeeds;
          Alcotest.test_case "busy module never" `Quick
            test_busy_module_never_quiesces;
          Alcotest.test_case "queues must drain" `Quick
            test_quiescence_requires_empty_queues ] );
      ( "proc update",
        [ Alcotest.test_case "changed set" `Quick test_changed_set_detection;
          Alcotest.test_case "leaf fast" `Quick test_leaf_update_fast;
          Alcotest.test_case "main waits" `Quick
            test_main_update_waits_for_termination;
          Alcotest.test_case "bottom-up order" `Quick test_bottom_up_ordering;
          Alcotest.test_case "new code effective" `Quick test_new_code_takes_effect ] );
      ( "recompilation",
        [ Alcotest.test_case "mid-recursion migration program" `Quick
            test_recompile_monitor_mid_recursion;
          Alcotest.test_case "heap rebuilt from literals" `Quick
            test_recompile_heap_blocks;
          Alcotest.test_case "garbage image rejected" `Quick
            test_recompile_rejects_garbage_image;
          prop_recompile_equivalent ] );
      ( "machine move",
        [ Alcotest.test_case "same architecture works" `Quick
            test_machine_move_same_arch;
          Alcotest.test_case "cross architecture refused" `Quick
            test_machine_move_refuses_cross_arch ] ) ]
