(* Superinstruction fusion (lib/interp/resolve.ml fused tables +
   lib/interp/machine.ml run dispatch) must be observationally
   invisible: with fusion enabled the resolved engine has to produce
   instruction counts, prints, statuses, divulged images and final
   globals identical to its own unfused execution — on the workload
   corpus, on random expression programs, and under adversarial quantum
   budgets (a fused run must never overrun the quantum it was
   dispatched in). A tracer bypasses the fused tables entirely, so
   traced runs stay byte-identical too. *)

module Ast = Dr_lang.Ast
module Resolve = Dr_interp.Resolve
module Machine = Dr_interp.Machine
module Value = Dr_state.Value
module Image = Dr_state.Image
module Synthetic = Dr_workloads.Synthetic
module Ring = Dr_workloads.Ring

type outcome = {
  o_status : string;
  o_instrs : int;
  o_prints : string list;
  o_images : Image.t list;
  o_globals : (string * Value.t) list;
}

(* Run a program to quiescence under the resolved engine, waking it
   from sleeps up to [wake_limit] times (optionally delivering the
   reconfiguration signal on wake [signal_at_wake]). [quantum] is the
   per-run step budget — small odd values force fused runs to butt
   against the budget boundary. *)
let drive ~fusion ?signal_at_wake ?(wake_limit = 20) ?(quantum = 20_000)
    ?(feeds = []) (program : Ast.program) =
  let sio = Support.script_io ~feeds () in
  let m = Machine.create ~io:sio.Support.io program in
  Machine.set_fusion m fusion;
  let wakes = ref 0 in
  let running = ref true in
  let rounds = ref 0 in
  while !running && !rounds < 1_000_000 do
    incr rounds;
    Machine.run ~max_steps:quantum m;
    match Machine.status m with
    | Machine.Sleeping _ when !wakes < wake_limit ->
      incr wakes;
      if signal_at_wake = Some !wakes then Machine.deliver_signal m;
      Machine.set_ready m
    | Machine.Ready -> ()
    | _ -> running := false
  done;
  { o_status = Fmt.str "%a" Machine.pp_status (Machine.status m);
    o_instrs = Machine.instr_count m;
    o_prints = Support.printed sio;
    o_images = List.rev sio.Support.divulged;
    o_globals =
      List.map
        (fun (g : Ast.global) ->
          (g.gname, Option.value ~default:Value.Vnull (Machine.read_global m g.gname)))
        program.globals }

let outcome_equal a b =
  String.equal a.o_status b.o_status
  && a.o_instrs = b.o_instrs
  && List.equal String.equal a.o_prints b.o_prints
  && List.length a.o_images = List.length b.o_images
  && List.for_all2 Image.equal a.o_images b.o_images
  && List.equal
       (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && Value.equal v1 v2)
       a.o_globals b.o_globals

let check_differential ?signal_at_wake ?wake_limit ?quantum ?feeds name program
    =
  let plain =
    drive ~fusion:false ?signal_at_wake ?wake_limit ?quantum ?feeds program
  in
  let fused =
    drive ~fusion:true ?signal_at_wake ?wake_limit ?quantum ?feeds program
  in
  Alcotest.(check string) (name ^ ": status") plain.o_status fused.o_status;
  Alcotest.(check int) (name ^ ": instr count") plain.o_instrs fused.o_instrs;
  Alcotest.(check (list string)) (name ^ ": prints") plain.o_prints fused.o_prints;
  Alcotest.(check bool) (name ^ ": images") true
    (List.length plain.o_images = List.length fused.o_images
    && List.for_all2 Image.equal plain.o_images fused.o_images);
  Alcotest.(check bool) (name ^ ": globals") true
    (List.equal
       (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && Value.equal v1 v2)
       plain.o_globals fused.o_globals)

(* ------------------------------------------------------ workload corpus *)

let test_corpus_differential () =
  check_differential "hotloop" (Synthetic.hotloop ~rounds:4 ~inner:4);
  check_differential "layered" (Synthetic.layered ~iterations:5);
  check_differential "layered_pointed" (Synthetic.layered_pointed ~iterations:4);
  check_differential "hoistable"
    (Synthetic.hoistable ~point:`Inner ~rounds:3 ~inner:3 ());
  check_differential "deeprec raw" ~wake_limit:5 (Synthetic.deeprec ~depth:4);
  check_differential "deeprec payload" ~wake_limit:5
    (Synthetic.deeprec_payload ~depth:4 ~payload:3);
  check_differential "ring member" ~wake_limit:10
    ~feeds:[ ("in", [ Value.Vint 0; Value.Vint 1; Value.Vint 2 ]) ]
    (Support.parse (List.assoc "member" Ring.sources))

let test_capture_differential () =
  (* instrumented deeprec with the signal delivered mid-flight: the
     fused engine must unwind, capture and encode the very same image *)
  let prepared =
    match
      Dr_transform.Instrument.prepare (Synthetic.deeprec ~depth:6)
        ~points:Synthetic.deeprec_points
    with
    | Ok p -> p.Dr_transform.Instrument.prepared_program
    | Error e -> Alcotest.failf "transform failed: %s" e
  in
  check_differential "deeprec capture" ~signal_at_wake:2 ~wake_limit:8 prepared

let test_quantum_boundaries () =
  (* tiny and prime quantum budgets: a fused run near the boundary must
     fall back to single-instruction execution, never overrun, and the
     counts must stay identical to the unfused engine under the same
     budget *)
  List.iter
    (fun quantum ->
      check_differential
        (Printf.sprintf "hotloop quantum=%d" quantum)
        ~quantum
        (Synthetic.hotloop ~rounds:3 ~inner:5))
    [ 1; 2; 3; 7; 13 ]

let test_tracer_bypasses_fusion () =
  (* with a tracer attached the fused tables are ignored: the trace of
     a fusion-enabled machine is byte-identical to an unfused one *)
  let trace_of ~fusion program =
    let sio = Support.script_io () in
    let m = Machine.create ~io:sio.Support.io program in
    Machine.set_fusion m fusion;
    let trace = ref [] in
    Machine.set_tracer m
      (Some
         (fun proc pc instr ->
           trace :=
             Fmt.str "%s:%d %a" proc pc Dr_interp.Ir.pp_instr instr :: !trace));
    Machine.run ~max_steps:20_000 m;
    (List.rev !trace, Machine.instr_count m)
  in
  let program = Synthetic.hotloop ~rounds:3 ~inner:4 in
  let plain, n_plain = trace_of ~fusion:false program in
  let fused, n_fused = trace_of ~fusion:true program in
  Alcotest.(check int) "instr count" n_plain n_fused;
  Alcotest.(check (list string)) "trace byte-identical" plain fused

let test_fused_tables_built () =
  (* the hot loop really is covered: its resolved program must carry at
     least one multi-instruction Fcjump_run (the loop head) *)
  let program = Synthetic.hotloop ~rounds:3 ~inner:4 in
  let code = Dr_interp.Lower.lower_program program in
  let resolved = Resolve.resolve_program program code in
  let runs =
    Array.fold_left
      (fun acc (rproc : Resolve.rproc) ->
        Array.fold_left
          (fun acc f ->
            match f with
            | Some (Resolve.Fcjump_run _ as fu) ->
              acc + Resolve.fused_length fu
            | _ -> acc)
          acc rproc.Resolve.rp_fused)
      0 resolved.Resolve.rg_procs
  in
  Alcotest.(check bool) "a loop-head run exists" true (runs >= 3)

(* ------------------------------------------------------- random programs *)

let harness_globals =
  [ ("a", "int", "1"); ("b", "int", "2"); ("c", "int[]", "alloc_int(4)");
    ("x", "int", "4"); ("y", "float", "2.5"); ("count", "int", "0");
    ("total", "int", "7"); ("foo_bar", "bool", "true");
    ("v1", "string", "\"v\"");
    ("tmp2", "int", "10") ]

let harness_program expr_src =
  let globals =
    String.concat ""
      (List.map
         (fun (n, ty, init) -> Printf.sprintf "var %s: %s = %s;\n" n ty init)
         harness_globals)
  in
  Printf.sprintf
    {|
module t;
%s
proc helper(k: int): int {
  return k + 1;
}

proc work(k: int, j: int): int {
  return k * j + 1;
}

proc main() {
  var r: int;
  count = count + 1;
  r = %s;
  print(str(r));
}
|}
    globals expr_src

(* untypechecked programs may escape the Runtime_error net; the engines
   must agree on the escaped exception too *)
let safely drive program =
  match drive program with o -> Ok o | exception e -> Error (Printexc.to_string e)

let qcheck_random_exprs =
  Support.qcheck ~count:200 "fused = unfused engine on random expressions"
    Gen.expr (fun e ->
      let source = harness_program (Dr_lang.Pretty.expr_to_string e) in
      let program = Support.parse source in
      let plain = safely (drive ~fusion:false ~quantum:5_000) program in
      let fused = safely (drive ~fusion:true ~quantum:5_000) program in
      match (plain, fused) with
      | Ok a, Ok b -> outcome_equal a b
      | Error ea, Error eb -> String.equal ea eb
      | _ -> false)

let () =
  Alcotest.run "fusion"
    [ ( "differential",
        [ Alcotest.test_case "workload corpus" `Quick test_corpus_differential;
          Alcotest.test_case "instrumented capture" `Quick
            test_capture_differential;
          Alcotest.test_case "quantum boundaries" `Quick test_quantum_boundaries
        ] );
      ( "dispatch",
        [ Alcotest.test_case "tracer bypasses fusion" `Quick
            test_tracer_bypasses_fusion;
          Alcotest.test_case "fused tables built" `Quick test_fused_tables_built
        ] );
      ("random", [ qcheck_random_exprs ]) ]
