(* Reliable delivery, failure detection, and state-image integrity.

   The reliable layer must mask injected loss and duplication (tokens
   arrive exactly once), survive renames with its sequence state, and
   fence the frames of a displaced generation. The detector must
   suspect a silent instance from bus evidence alone and stay quiet
   while evidence flows. The codec's checksum must catch an injected
   image corruption, quarantine the image, and let the script's retry
   complete the replacement. *)

module Bus = Dr_bus.Bus
module Faults = Dr_bus.Faults
module Reliable = Dr_bus.Reliable
module Detector = Dr_reconfig.Detector
module Supervisor = Dr_reconfig.Supervisor
module Script = Dr_reconfig.Script
module Ring = Dr_workloads.Ring
module Monitor = Dr_workloads.Monitor

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let trace_has bus ~category ~detail =
  List.exists
    (fun (e : Dr_sim.Trace.entry) ->
      String.equal e.category category && contains detail e.detail)
    (Dr_sim.Trace.entries (Bus.trace bus))

(* Drain: let every outstanding retransmission land on a fault-free
   network before judging the tap history. *)
let drain bus ~for_:dt =
  Faults.install bus ~seed:1 Faults.no_faults;
  Bus.run ~until:(Bus.now bus +. dt) bus

(* ------------------------------------------------------- loss masking *)

let test_loss_masked () =
  let system = Ring.load () in
  let bus = Ring.start system in
  let r = Reliable.attach bus in
  Reliable.enable_all r;
  Faults.install bus ~seed:3
    (Faults.plan ~rules:[ Faults.rule ~loss:0.25 () ] ());
  Bus.run ~until:40.0 bus;
  drain bus ~for_:30.0;
  let history = Ring.tap_history bus in
  Alcotest.(check bool) "made progress" true (List.length history >= 10);
  Alcotest.(check bool) "exactly-once under 25% loss" true
    (Ring.history_exactly_once history);
  Alcotest.(check bool) "losses were actually injected" true
    (trace_has bus ~category:"fault" ~detail:"injected loss");
  Alcotest.(check bool) "retransmissions happened" true
    (Reliable.total_retx r > 0
    && trace_has bus ~category:"retx" ~detail:"retransmit")
(* no unacked-count check here: the members are still producing when the
   run stops, so a fresh frame is legitimately in flight — the
   quiescent-sender fence test pins [total_unacked = 0] *)

(* -------------------------------------------------------- dup masking *)

let pulse_sink_bus ~pulse_source =
  let bus = Bus.create ~hosts:Monitor.hosts () in
  let register source =
    match Bus.register_program bus (Support.parse source) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "register: %s" e
  in
  register pulse_source;
  register
    "module sink;\n\
     proc main() { var t: int; mh_init(); while (true) { mh_read(\"in\", t); \
     print(t); } }";
  let spawn instance host =
    match Bus.spawn bus ~instance ~module_name:instance ~host () with
    | Ok () -> ()
    | Error e -> Alcotest.failf "spawn: %s" e
  in
  spawn "pulse" "hostA";
  spawn "sink" "hostB";
  Bus.add_route bus ~src:("pulse", "out") ~dst:("sink", "in");
  bus

let test_dup_masked () =
  let bus =
    pulse_sink_bus
      ~pulse_source:
        "module pulse;\n\
         proc main() { var i: int; mh_init(); i = 0; while (i < 3) { i = i + \
         1; mh_write(\"out\", i); sleep(1); } }"
  in
  let r = Reliable.attach bus in
  Reliable.enable_all r;
  (* every frame and ack is duplicated in flight *)
  Faults.install bus ~seed:5 (Faults.plan ~rules:[ Faults.rule ~dup:1.0 () ] ());
  Bus.run ~until:30.0 bus;
  Alcotest.(check (list string)) "each value printed once, in order"
    [ "1"; "2"; "3" ]
    (Bus.outputs bus ~instance:"sink");
  Alcotest.(check bool) "duplicates suppressed by the receiver" true
    (trace_has bus ~category:"retx" ~detail:"dup suppressed")

(* ---------------------------------------------------- epoch fencing *)

let test_fence_discards_stale_frames () =
  (* One frame is in flight (hostA -> hostB latency is 1.0) when the
     sender is renamed with a fence: the old-epoch frame must arrive
     inert, and the surviving retransmission timer must redeliver it
     under the new epoch — exactly one copy reaches the sink. *)
  let bus =
    pulse_sink_bus
      ~pulse_source:
        "module pulse;\n\
         proc main() { mh_init(); mh_write(\"out\", 7); while (true) { \
         sleep(5); } }"
  in
  let r = Reliable.attach bus in
  Reliable.enable_all r;
  Bus.run ~until:0.5 bus;
  Bus.transport_rename bus ~old_instance:"pulse" ~new_instance:"pulse~1"
    ~fence:true;
  Bus.run ~until:30.0 bus;
  Alcotest.(check (list string)) "delivered exactly once" [ "7" ]
    (Bus.outputs bus ~instance:"sink");
  Alcotest.(check bool) "stale frame fenced" true
    (trace_has bus ~category:"retx" ~detail:"fenced stale frame");
  Alcotest.(check bool) "redelivered by retransmission" true
    (trace_has bus ~category:"retx" ~detail:"retransmit");
  Alcotest.(check int) "nothing left unacked" 0 (Reliable.total_unacked r)

(* --------------------------------- exactly-once replace (acceptance) *)

type sweep_scenario = {
  sw_name : string;
  sw_dup : float;
  sw_jitter : float;
  sw_hot_route : bool;
  sw_double : bool;
}

let sweep_scenarios =
  [ { sw_name = "uniform loss"; sw_dup = 0.0; sw_jitter = 0.0;
      sw_hot_route = false; sw_double = false };
    { sw_name = "loss + dup"; sw_dup = 0.10; sw_jitter = 0.0;
      sw_hot_route = false; sw_double = false };
    { sw_name = "loss + jitter"; sw_dup = 0.0; sw_jitter = 0.5;
      sw_hot_route = false; sw_double = false };
    { sw_name = "loss + dup + jitter"; sw_dup = 0.10; sw_jitter = 0.5;
      sw_hot_route = false; sw_double = false };
    { sw_name = "hot route b>c"; sw_dup = 0.0; sw_jitter = 0.0;
      sw_hot_route = true; sw_double = false };
    { sw_name = "double replace"; sw_dup = 0.05; sw_jitter = 0.0;
      sw_hot_route = false; sw_double = true } ]

let sweep_losses = [ 0.0; 0.05; 0.10; 0.15; 0.20 ]

let replace_sync bus ~instance ~new_instance =
  Script.run_sync bus ~deadline:150.0 (fun ~on_done ->
      Script.replace bus ~instance ~new_instance ~deadline:60.0
        ~retry:{ Script.attempts = 3; backoff = 5.0; alt_hosts = [] }
        ~on_done ())

let test_exactly_once_replace_sweep () =
  (* Acceptance: at every loss rate up to 20%, across six fault
     scenarios, a reconfiguration over reliable routes completes and
     the receiver log is exactly-once — no gap, no duplicate. *)
  List.iter
    (fun scenario ->
      List.iter
        (fun loss ->
          let label what =
            Printf.sprintf "%s @ %.0f%%: %s" scenario.sw_name (100.0 *. loss)
              what
          in
          let system = Ring.load () in
          let bus = Ring.start system in
          let r = Reliable.attach bus in
          Reliable.enable_all r;
          let rules =
            (if scenario.sw_hot_route then
               [ Faults.rule ~src:"b" ~dst:"c"
                   ~loss:(Float.min 1.0 (2.0 *. loss))
                   ~dup:scenario.sw_dup () ]
             else [])
            @ [ Faults.rule ~loss ~dup:scenario.sw_dup () ]
          in
          Faults.install bus ~seed:3
            (Faults.plan ~rules ~jitter:scenario.sw_jitter ());
          Bus.run ~until:8.0 bus;
          let outcome = replace_sync bus ~instance:"c" ~new_instance:"c2" in
          let outcome =
            if scenario.sw_double && Result.is_ok outcome then
              replace_sync bus ~instance:"b" ~new_instance:"b2"
            else outcome
          in
          (match outcome with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "%s" (label ("failed: " ^ e)));
          drain bus ~for_:40.0;
          let history = Ring.tap_history bus in
          Alcotest.(check bool) (label "progress") true
            (List.length history > 0);
          Alcotest.(check bool) (label "exactly-once") true
            (Ring.history_exactly_once history))
        sweep_losses)
    sweep_scenarios

(* --------------------------------------------------- failure detector *)

let test_detector_suspects_crashed_instance () =
  let system = Ring.load () in
  let bus = Ring.start system in
  Faults.install bus ~seed:1
    (Faults.plan ~events:[ (5.0, Faults.Process_crash "c") ] ());
  let d =
    Detector.start bus ~period:1.0 ~timeout:2.0 ~threshold:2 ~watch:[ "c" ] ()
  in
  Bus.run ~until:4.0 bus;
  Alcotest.(check bool) "not suspected while alive" false
    (Detector.suspected d ~instance:"c");
  Bus.run ~until:15.0 bus;
  Alcotest.(check bool) "suspected after the crash" true
    (Detector.suspected d ~instance:"c");
  Alcotest.(check bool) "suspicion traced" true
    (trace_has bus ~category:"suspect" ~detail:"c suspected");
  Detector.stop d

let test_detector_activity_is_evidence () =
  (* Heartbeats from c are starved, but c's data traffic (one token
     pass every ~5.1 time units) still crosses the bus; with a timeout
     wider than the token period that evidence must keep c clear. *)
  let system = Ring.load () in
  let bus = Ring.start system in
  Faults.install bus ~seed:1
    (Faults.plan
       ~rules:[ Faults.rule ~src:"c" ~dst:"_detector" ~loss:1.0 () ]
       ());
  let d =
    Detector.start bus ~period:1.0 ~timeout:6.0 ~threshold:2 ~watch:[ "c" ] ()
  in
  Bus.run ~until:30.0 bus;
  Alcotest.(check bool) "never suspected" false
    (Detector.suspected d ~instance:"c");
  Alcotest.(check bool) "no suspicion trace" false
    (trace_has bus ~category:"suspect" ~detail:"c suspected");
  Detector.stop d

let test_false_suspicion_fenced_restart () =
  (* Acceptance: only c's heartbeats are lost, so the detector's
     suspicion is a false positive — c is alive when the supervisor
     replaces it. The fenced rename must keep the displaced
     generation's output inert: the tap history stays exactly-once. *)
  let system = Ring.load () in
  let bus = Ring.start system in
  let r = Reliable.attach bus in
  Reliable.enable_all r;
  Faults.install bus ~seed:2
    (Faults.plan
       ~rules:[ Faults.rule ~src:"c" ~dst:"_detector" ~loss:1.0 () ]
       ());
  let d =
    Detector.start bus ~period:0.5 ~timeout:1.0 ~threshold:1 ~watch:[] ()
  in
  let sup = Supervisor.start bus ~period:0.5 ~detector:d ~watch:[ "c" ] () in
  Bus.run ~until:20.0 bus;
  Alcotest.(check (option string)) "supervisor replaced the suspect"
    (Some "c~1")
    (Supervisor.current sup ~base:"c");
  Alcotest.(check bool) "c~1 live, c gone" true
    (List.mem "c~1" (Bus.instances bus)
    && not (List.mem "c" (Bus.instances bus)));
  Alcotest.(check bool) "restart traced" true
    (trace_has bus ~category:"supervisor" ~detail:"restarted c as c~1");
  drain bus ~for_:30.0;
  let history = Ring.tap_history bus in
  Alcotest.(check bool) "progress" true (List.length history > 0);
  Alcotest.(check bool)
    "no duplicate, no gap: the fenced loser had no visible effect" true
    (Ring.history_exactly_once history);
  Supervisor.stop sup;
  Detector.stop d

(* ------------------------------------------------ image integrity *)

let displayed bus =
  List.filter_map Monitor.parse_displayed (Bus.outputs bus ~instance:"display")

let run_until_displays bus k =
  Bus.run_while bus ~max_events:2_000_000 (fun () ->
      List.length (displayed bus) < k)

let test_corrupt_image_quarantined_then_retry () =
  let system = Monitor.load () in
  let bus = Monitor.start system in
  Faults.install bus ~seed:1
    (Faults.plan ~events:[ (0.5, Faults.Image_corrupt "compute") ] ());
  run_until_displays bus 2;
  Alcotest.(check bool) "corruption armed" true
    (trace_has bus ~category:"fault" ~detail:"image corruption armed");
  let outcome =
    Script.run_sync bus (fun ~on_done ->
        Script.replace bus ~instance:"compute" ~new_instance:"c2"
          ~retry:{ Script.attempts = 2; backoff = 0.5; alt_hosts = [] }
          ~on_done ())
  in
  (match outcome with
  | Ok fresh -> Alcotest.(check string) "second attempt lands" "c2" fresh
  | Error e -> Alcotest.failf "replace did not recover: %s" e);
  Alcotest.(check bool) "corruption injected" true
    (trace_has bus ~category:"fault" ~detail:"injected image corruption");
  Alcotest.(check bool) "image quarantined, not restored" true
    (trace_has bus ~category:"quarantine" ~detail:"image from compute");
  (match Bus.quarantined bus with
  | [ q ] ->
    Alcotest.(check string) "quarantine names the instance" "compute"
      q.Bus.q_instance;
    Alcotest.(check bool) "reason is the checksum" true
      (contains "checksum" q.Bus.q_reason);
    Alcotest.(check bool) "bytes preserved for audit" true (q.Bus.q_byte_size > 0)
  | l -> Alcotest.failf "expected one quarantined image, got %d" (List.length l));
  Alcotest.(check bool) "attempt 1 rolled back to service" true
    (trace_has bus ~category:"rollback" ~detail:"restored instance compute");
  Alcotest.(check bool) "attempt 1 failure traced" true
    (trace_has bus ~category:"script" ~detail:"attempt 1 failed");
  (* the replacement really serves *)
  let shown = List.length (displayed bus) in
  run_until_displays bus (shown + 2);
  Alcotest.(check bool) "c2 keeps the display fed" true
    (List.length (displayed bus) >= shown + 2)

let test_corrupt_clause_parses () =
  match Faults.parse_plan "corrupt=compute@3" with
  | Ok (_, p) ->
    Alcotest.(check bool) "one corrupt event" true
      (p.Faults.fp_events = [ (3.0, Faults.Image_corrupt "compute") ])
  | Error e -> Alcotest.failf "parse: %s" e

(* -------------------------------------------------- disabled layer *)

let test_disabled_layer_is_inert () =
  (* Without attach, runs are byte-for-byte the classic bus (the golden
     traces pin this globally; here: no retx category ever appears). *)
  let system = Ring.load () in
  let bus = Ring.start system in
  Bus.run ~until:20.0 bus;
  Alcotest.(check bool) "no protocol traffic" false
    (List.exists
       (fun (e : Dr_sim.Trace.entry) -> String.equal e.category "retx")
       (Dr_sim.Trace.entries (Bus.trace bus)));
  Alcotest.(check bool) "token history still consecutive" true
    (Ring.history_consecutive (Ring.tap_history bus))

let () =
  Alcotest.run "reliable"
    [ ( "reliable channels",
        [ Alcotest.test_case "25% loss masked, exactly-once" `Quick
            test_loss_masked;
          Alcotest.test_case "100% duplication suppressed" `Quick
            test_dup_masked;
          Alcotest.test_case "fenced rename discards stale frames" `Quick
            test_fence_discards_stale_frames;
          Alcotest.test_case "exactly-once replace, loss 0-20% x 6 scenarios"
            `Quick test_exactly_once_replace_sweep;
          Alcotest.test_case "disabled layer is inert" `Quick
            test_disabled_layer_is_inert ] );
      ( "failure detector",
        [ Alcotest.test_case "suspects a crashed instance" `Quick
            test_detector_suspects_crashed_instance;
          Alcotest.test_case "bus activity counts as evidence" `Quick
            test_detector_activity_is_evidence;
          Alcotest.test_case "false suspicion: fenced restart stays \
                             exactly-once"
            `Quick test_false_suspicion_fenced_restart ] );
      ( "image integrity",
        [ Alcotest.test_case "corrupt image quarantined, retry succeeds"
            `Quick test_corrupt_image_quarantined_then_retry;
          Alcotest.test_case "corrupt= clause parses" `Quick
            test_corrupt_clause_parses ] ) ]
