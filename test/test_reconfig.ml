module Bus = Dr_bus.Bus
module P = Dr_reconfig.Primitives
module Script = Dr_reconfig.Script
module Machine = Dr_interp.Machine

let monitor () =
  let system = Dr_workloads.Monitor.load () in
  Dr_workloads.Monitor.start system

let displayed bus =
  List.filter_map Dr_workloads.Monitor.parse_displayed
    (Bus.outputs bus ~instance:"display")

let run_until_displays bus k =
  Bus.run_while bus ~max_events:2_000_000 (fun () ->
      List.length (displayed bus) < k)

let test_obj_cap () =
  let bus = monitor () in
  match P.obj_cap bus ~instance:"compute" with
  | Error e -> Alcotest.failf "obj_cap: %s" e
  | Ok cap ->
    Alcotest.(check string) "module" "compute" cap.cap_module;
    Alcotest.(check string) "host" "hostA" cap.cap_host;
    Alcotest.(check (list string)) "ifaces" [ "display"; "sensor" ] cap.cap_ifaces;
    Alcotest.(check int) "one outgoing route (reply to display)" 1
      (List.length cap.cap_out_routes);
    Alcotest.(check int) "two incoming routes" 2 (List.length cap.cap_in_routes)

let test_obj_cap_missing () =
  let bus = monitor () in
  match P.obj_cap bus ~instance:"ghost" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let test_rebind_batch_applies_atomically () =
  let bus = monitor () in
  let batch = P.bind_cap () in
  P.edit_bind batch (P.Del (("sensor", "out"), ("compute", "sensor")));
  P.edit_bind batch (P.Add (("sensor", "out"), ("elsewhere", "sensor")));
  Alcotest.(check int) "batch holds two commands" 2
    (List.length (P.batch_commands batch));
  (* nothing applied yet *)
  Alcotest.(check (list (pair string string))) "untouched before rebind"
    [ ("compute", "sensor") ]
    (Bus.routes_from bus ("sensor", "out"));
  P.rebind bus batch;
  Alcotest.(check (list (pair string string))) "applied after rebind"
    [ ("elsewhere", "sensor") ]
    (Bus.routes_from bus ("sensor", "out"))

let test_translate_image_across_hosts () =
  let bus = monitor () in
  let image =
    Dr_state.Image.make ~source_module:"compute"
      ~records:
        [ { Dr_state.Image.location = 1; values = [ Dr_state.Value.Vint 7 ] } ]
      ~heap:[]
  in
  (match P.translate_image bus ~src_host:"hostA" ~dst_host:"hostB" image with
  | Ok translated -> Alcotest.check Support.image "identical" image translated
  | Error e -> Alcotest.failf "translate: %s" e);
  match P.translate_image bus ~src_host:"hostA" ~dst_host:"nohost" image with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown host accepted"

let test_translate_overflow_fails () =
  let bus = monitor () in
  let image =
    Dr_state.Image.make ~source_module:"compute"
      ~records:
        [ { Dr_state.Image.location = 1;
            values = [ Dr_state.Value.Vint 0x7FFF_FFFF_FF ] } ]
      ~heap:[]
  in
  (* hostB is sparc32: the 40-bit integer cannot migrate there *)
  match P.translate_image bus ~src_host:"hostA" ~dst_host:"hostB" image with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected word-size failure"

let test_migrate_monitor () =
  let bus = monitor () in
  run_until_displays bus 2;
  let before = List.length (displayed bus) in
  let result =
    Script.run_sync bus (fun ~on_done ->
        Script.migrate bus ~instance:"compute" ~new_instance:"compute2"
          ~new_host:"hostB" ~on_done ())
  in
  (match result with
  | Ok "compute2" -> ()
  | Ok other -> Alcotest.failf "unexpected instance %s" other
  | Error e -> Alcotest.failf "migrate: %s" e);
  Alcotest.(check (option string)) "moved" (Some "hostB")
    (Bus.instance_host bus ~instance:"compute2");
  Alcotest.(check bool) "old gone" true
    (not (List.mem "compute" (Bus.instances bus)));
  run_until_displays bus (before + 3);
  let avgs = List.map snd (displayed bus) in
  Alcotest.(check bool) "averages stay correct across the move" true
    (Dr_workloads.Monitor.averages_plausible ~n:4 avgs);
  (* ordering property from Fig. 5: the old module divulges before the
     rebinding commands apply *)
  let trace = Dr_sim.Trace.entries (Bus.trace bus) in
  let time_of pred =
    List.find_map
      (fun (e : Dr_sim.Trace.entry) -> if pred e then Some e.time else None)
      trace
  in
  let divulge_t =
    time_of (fun e -> e.category = "state" && e.detail <> "" && String.length e.detail > 7 && String.sub e.detail 0 7 = "compute")
  in
  let rebind_t = time_of (fun e -> e.category = "bind" && String.length e.detail > 3 && String.sub e.detail 0 3 = "del") in
  match divulge_t, rebind_t with
  | Some d, Some r -> Alcotest.(check bool) "divulge before rebind" true (d <= r)
  | _ -> Alcotest.fail "missing trace entries"

let test_replace_same_host () =
  let bus = monitor () in
  run_until_displays bus 1;
  let result =
    Script.run_sync bus (fun ~on_done ->
        Script.replace bus ~instance:"compute" ~new_instance:"compute_b" ~on_done ())
  in
  (match result with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "replace: %s" e);
  Alcotest.(check (option string)) "same host" (Some "hostA")
    (Bus.instance_host bus ~instance:"compute_b");
  run_until_displays bus 3;
  Alcotest.(check bool) "still correct" true
    (Dr_workloads.Monitor.averages_plausible ~n:4 (List.map snd (displayed bus)))

let test_update_to_v2 () =
  (* software maintenance: swap in compute_v2, which reports served
     requests — the served counter must carry over *)
  let bus = monitor () in
  run_until_displays bus 2;
  let result =
    Script.run_sync bus (fun ~on_done ->
        Script.replace bus ~instance:"compute" ~new_instance:"compute_next"
          ~new_module:"compute_v2" ~on_done ())
  in
  (match result with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "update: %s" e);
  run_until_displays bus 4;
  Alcotest.(check bool) "correct across version change" true
    (Dr_workloads.Monitor.averages_plausible ~n:4 (List.map snd (displayed bus)));
  (* v2 prints the served counter: it must continue from v1's count, so
     the first report is at least 3 (two served before + one after) *)
  let served =
    List.filter_map
      (fun line ->
        try Scanf.sscanf line "served %d request(s)" (fun n -> Some n)
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
      (Bus.outputs bus ~instance:"compute_next")
  in
  match served with
  | first :: _ ->
    Alcotest.(check bool) "counter preserved across update" true (first >= 3)
  | [] -> Alcotest.fail "v2 never reported"

let test_replicate () =
  let bus = monitor () in
  run_until_displays bus 1;
  let result =
    Script.run_sync bus (fun ~on_done ->
        Script.replicate bus ~instance:"sensor_sink_placeholder" ~replica_instance:"r"
          ~on_done ())
  in
  (match result with
  | Error _ -> ()  (* replicating a non-existent instance fails cleanly *)
  | Ok _ -> Alcotest.fail "expected failure");
  let result =
    Script.run_sync bus (fun ~on_done ->
        Script.replicate bus ~instance:"compute" ~replica_instance:"compute_r"
          ~replica_host:"hostC" ~on_done ())
  in
  (match result with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "replicate: %s" e);
  Alcotest.(check bool) "original still present" true
    (List.mem "compute" (Bus.instances bus));
  Alcotest.(check bool) "replica present" true
    (List.mem "compute_r" (Bus.instances bus));
  Alcotest.(check (option string)) "replica host" (Some "hostC")
    (Bus.instance_host bus ~instance:"compute_r");
  (* the sensor stream now fans out to both computes *)
  Alcotest.(check int) "sensor fans out" 2
    (List.length (Bus.routes_from bus ("sensor", "out")))

let test_add_remove_module () =
  let bus = monitor () in
  let spare =
    Support.parse
      "module spare;\nproc main() { var x: int; mh_init(); while (true) { mh_read(\"tap\", x); print(\"tap \", x); } }"
  in
  (match Bus.register_program bus spare with
  | Ok () -> ()
  | Error e -> Alcotest.failf "register: %s" e);
  (match
     Script.add_module bus ~instance:"tap" ~module_name:"spare" ~host:"hostB"
       ~binds:[ (("sensor", "out"), ("tap", "tap")) ]
       ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "add: %s" e);
  Bus.run_while bus ~max_events:200_000 (fun () ->
      Bus.outputs bus ~instance:"tap" = []);
  Alcotest.(check bool) "tap observes sensor traffic" true
    (Bus.outputs bus ~instance:"tap" <> []);
  Script.remove_module bus ~instance:"tap";
  Alcotest.(check bool) "tap gone" true (not (List.mem "tap" (Bus.instances bus)));
  Alcotest.(check bool) "its routes gone" true
    (not
       (List.exists
          (fun ((src : Bus.endpoint), (dst : Bus.endpoint)) ->
            fst src = "tap" || fst dst = "tap")
          (Bus.all_routes bus)))

let test_pending_queue_moves () =
  (* kill the display momentarily so requests pile up at compute, then
     replace compute: queued requests must transfer (the "cq" command) *)
  let bus = monitor () in
  run_until_displays bus 1;
  (* inject extra display requests straight into compute's queue *)
  Bus.inject bus ~dst:("compute", "display") (Dr_state.Value.Vint 4);
  Bus.inject bus ~dst:("compute", "display") (Dr_state.Value.Vint 4);
  let result =
    Script.run_sync bus (fun ~on_done ->
        Script.replace bus ~instance:"compute" ~new_instance:"c2" ~on_done ())
  in
  (match result with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "replace: %s" e);
  (* queued requests either moved to c2's queue or were consumed while
     the script waited for the reconfiguration point *)
  let queue_entries =
    List.filter
      (fun (e : Dr_sim.Trace.entry) -> e.category = "queue")
      (Dr_sim.Trace.entries (Bus.trace bus))
  in
  Alcotest.(check bool) "cq/rmq commands executed" true (queue_entries <> []);
  Bus.run_while bus ~max_events:2_000_000 (fun () ->
      List.length (displayed bus) < 3);
  Alcotest.(check bool) "no request lost: averages keep flowing" true
    (List.length (displayed bus) >= 3)

let test_replace_stateless () =
  (* the sensor has no reconfiguration points; SURGEON-style stateless
     replacement swaps it immediately and the application keeps
     working (the sensor stream restarts at 1) *)
  let bus = monitor () in
  run_until_displays bus 2;
  let before = List.length (displayed bus) in
  (match
     Script.replace_stateless bus ~instance:"sensor" ~new_instance:"sensor2" ()
   with
  | Ok "sensor2" -> ()
  | Ok other -> Alcotest.failf "unexpected %s" other
  | Error e -> Alcotest.failf "stateless replace: %s" e);
  Alcotest.(check bool) "immediate (no waiting for a point)" true
    (List.mem "sensor2" (Bus.instances bus)
    && not (List.mem "sensor" (Bus.instances bus)));
  run_until_displays bus (before + 3);
  Alcotest.(check bool) "application still producing" true
    (List.length (displayed bus) >= before + 3);
  (* but the stream restarted: the post-replacement averages come from a
     fresh 1,2,3,… sequence — visible evidence that state was lost *)
  let after = List.filteri (fun i _ -> i >= before) (displayed bus) in
  match after with
  | (_, first_avg) :: _ ->
    Alcotest.(check bool) "stream restarted low" true (first_avg < 30.0)
  | [] -> Alcotest.fail "no averages after"

let test_freeze_thaw_cold_restart () =
  (* freeze compute to bytes, shut the whole platform down, start a NEW
     bus (a "platform upgrade"), thaw from the bytes, and verify the
     application resumes with its state *)
  let bus = monitor () in
  run_until_displays bus 2;
  let served_before =
    match Bus.machine bus ~instance:"compute" with
    | Some m -> (
      match Machine.read_global m "served" with
      | Some (Dr_state.Value.Vint n) -> n
      | _ -> 0)
    | None -> 0
  in
  Alcotest.(check bool) "some requests served" true (served_before >= 2);
  let frozen =
    match Dr_reconfig.Freeze.freeze bus ~instance:"compute" () with
    | Ok bytes -> bytes
    | Error e -> Alcotest.failf "freeze: %s" e
  in
  Alcotest.(check bool) "instance gone after freeze" true
    (not (List.mem "compute" (Bus.instances bus)));
  (* round-trip through "disk" *)
  let path = Filename.temp_file "dynrecon" ".img" in
  (match Dr_reconfig.Freeze.save ~path frozen with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %s" e);
  let reloaded =
    match Dr_reconfig.Freeze.load ~path with
    | Ok bytes -> bytes
    | Error e -> Alcotest.failf "load: %s" e
  in
  Sys.remove path;
  (* brand new platform instance *)
  let bus2 = monitor () in
  Bus.kill bus2 ~instance:"compute";
  (match
     Dr_reconfig.Freeze.thaw bus2 ~instance:"compute_thawed"
       ~module_name:"compute" ~host:"hostB" reloaded
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "thaw: %s" e);
  (* re-point the monitor's routes at the thawed instance *)
  List.iter
    (fun ((src : Bus.endpoint), (dst : Bus.endpoint)) ->
      if fst src = "compute" || fst dst = "compute" then
        Bus.del_route bus2 ~src ~dst)
    (Bus.all_routes bus2);
  Bus.add_route bus2 ~src:("display", "temper") ~dst:("compute_thawed", "display");
  Bus.add_route bus2 ~src:("compute_thawed", "display") ~dst:("display", "temper");
  Bus.add_route bus2 ~src:("sensor", "out") ~dst:("compute_thawed", "sensor");
  Bus.run_while bus2 ~max_events:2_000_000 (fun () ->
      List.length (displayed bus2) < 2);
  (* the served counter survived the platform restart *)
  match Bus.machine bus2 ~instance:"compute_thawed" with
  | Some m -> (
    match Machine.read_global m "served" with
    | Some (Dr_state.Value.Vint n) ->
      Alcotest.(check bool) "state survived cold restart" true
        (n >= served_before)
    | _ -> Alcotest.fail "no counter")
  | None -> Alcotest.fail "thawed instance missing"

let test_thaw_rejects_corrupt_bytes () =
  let bus = monitor () in
  match
    Dr_reconfig.Freeze.thaw bus ~instance:"x" ~module_name:"compute"
      ~host:"hostA" (Bytes.of_string "not an image")
  with
  | Error e ->
    Alcotest.(check bool) "mentions corruption" true
      (let contains needle haystack =
         let n = String.length needle and h = String.length haystack in
         let rec go i =
           i + n <= h && (String.sub haystack i n = needle || go (i + 1))
         in
         n = 0 || go 0
       in
       contains "corrupt" e)
  | Ok () -> Alcotest.fail "corrupt bytes accepted"

(* Fail-fast guards: a crashed or halted target can never comply with a
   reconfiguration signal, so [Freeze.freeze] and [Script.run_sync
   ~watch] must report that instead of spinning the event budget on
   bystander processes (the busy module below never stops). *)

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let doomed_bus () =
  let bus = Bus.create ~hosts:Dr_workloads.Monitor.hosts () in
  let register source =
    match Bus.register_program bus (Support.parse source) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "register: %s" e
  in
  register "module crashy;\nproc main() { mh_init(); sleep(2); print(1 / 0); }";
  register "module busy;\nproc main() { mh_init(); while (true) { sleep(1); } }";
  register "module quit;\nproc main() { mh_init(); }";
  let spawn instance =
    match Bus.spawn bus ~instance ~module_name:instance ~host:"hostA" () with
    | Ok () -> ()
    | Error e -> Alcotest.failf "spawn: %s" e
  in
  spawn "crashy";
  spawn "busy";
  spawn "quit";
  bus

let test_freeze_fails_fast_on_crash () =
  let bus = doomed_bus () in
  match Dr_reconfig.Freeze.freeze bus ~instance:"crashy" () with
  | Ok _ -> Alcotest.fail "froze a crashed instance"
  | Error e ->
    Alcotest.(check bool) "reports the crash" true (contains "crashed" e);
    (* fail fast: busy must not get to burn the event budget *)
    Alcotest.(check bool) "stopped promptly" true (Bus.now bus < 1000.0)

let test_freeze_fails_fast_on_halt () =
  let bus = doomed_bus () in
  Bus.run_while bus ~max_events:100_000 (fun () ->
      Bus.process_status bus ~instance:"quit" <> Some Machine.Halted);
  match Dr_reconfig.Freeze.freeze bus ~instance:"quit" () with
  | Ok _ -> Alcotest.fail "froze a halted instance"
  | Error e -> Alcotest.(check bool) "reports the halt" true (contains "halted" e)

let test_run_sync_watch_fails_fast () =
  let bus = doomed_bus () in
  let result =
    Script.run_sync bus ~watch:"crashy" (fun ~on_done ->
        Script.replace bus ~instance:"crashy" ~new_instance:"crashy2" ~on_done ())
  in
  match result with
  | Ok _ -> Alcotest.fail "replacement of a crashing instance succeeded"
  | Error e ->
    Alcotest.(check bool) "reports the crash" true (contains "crashed" e);
    Alcotest.(check bool) "stopped promptly" true (Bus.now bus < 1000.0)

let test_script_trace_order () =
  (* Fig. 5 event order: script starts -> signal -> divulge -> rebind ->
     clone starts -> old removed *)
  let bus = monitor () in
  run_until_displays bus 1;
  let _ =
    Script.run_sync bus (fun ~on_done ->
        Script.migrate bus ~instance:"compute" ~new_instance:"c2" ~new_host:"hostB"
          ~on_done ())
  in
  let entries = Dr_sim.Trace.entries (Bus.trace bus) in
  let index_of pred =
    let rec go i = function
      | [] -> None
      | e :: rest -> if pred e then Some i else go (i + 1) rest
    in
    go 0 entries
  in
  let starts_with prefix (e : Dr_sim.Trace.entry) =
    String.length e.detail >= String.length prefix
    && String.sub e.detail 0 (String.length prefix) = prefix
  in
  let signal_i =
    index_of (fun e -> e.category = "signal" && starts_with "reconfiguration" e)
  in
  let divulge_i = index_of (fun e -> e.category = "state" && starts_with "compute divulged" e) in
  let clone_i = index_of (fun e -> e.category = "lifecycle" && starts_with "c2" e) in
  let removed_i = index_of (fun e -> e.category = "lifecycle" && starts_with "compute removed" e) in
  match signal_i, divulge_i, clone_i, removed_i with
  | Some s, Some d, Some c, Some r ->
    Alcotest.(check bool) "signal < divulge < clone < removed" true
      (s < d && d < c && c < r)
  | _ -> Alcotest.fail "missing script trace entries"

let () =
  Alcotest.run "reconfig"
    [ ( "primitives",
        [ Alcotest.test_case "obj_cap" `Quick test_obj_cap;
          Alcotest.test_case "obj_cap missing" `Quick test_obj_cap_missing;
          Alcotest.test_case "rebind batch" `Quick
            test_rebind_batch_applies_atomically;
          Alcotest.test_case "translate image" `Quick
            test_translate_image_across_hosts;
          Alcotest.test_case "translate overflow" `Quick
            test_translate_overflow_fails ] );
      ( "scripts",
        [ Alcotest.test_case "migrate monitor" `Quick test_migrate_monitor;
          Alcotest.test_case "replace same host" `Quick test_replace_same_host;
          Alcotest.test_case "update to v2" `Quick test_update_to_v2;
          Alcotest.test_case "replicate" `Quick test_replicate;
          Alcotest.test_case "add/remove module" `Quick test_add_remove_module;
          Alcotest.test_case "pending queues move" `Quick test_pending_queue_moves;
          Alcotest.test_case "stateless replacement" `Quick test_replace_stateless;
          Alcotest.test_case "script trace order" `Quick test_script_trace_order ] );
      ( "freeze/thaw",
        [ Alcotest.test_case "cold restart" `Quick test_freeze_thaw_cold_restart;
          Alcotest.test_case "corrupt bytes" `Quick test_thaw_rejects_corrupt_bytes ] );
      ( "fail fast",
        [ Alcotest.test_case "freeze on crash" `Quick
            test_freeze_fails_fast_on_crash;
          Alcotest.test_case "freeze on halt" `Quick test_freeze_fails_fast_on_halt;
          Alcotest.test_case "run_sync watch" `Quick
            test_run_sync_watch_fails_fast ] ) ]
