(* Fault injection and transactional reconfiguration.

   The fault plane (Dr_bus.Faults) must be deterministic from its seed
   and invisible when disabled; the journalled scripts must either
   complete or roll the configuration back to exactly the pre-script
   route set and instance roster. *)

module Bus = Dr_bus.Bus
module Faults = Dr_bus.Faults
module Script = Dr_reconfig.Script
module Supervisor = Dr_reconfig.Supervisor
module Machine = Dr_interp.Machine
module Ring = Dr_workloads.Ring
module Monitor = Dr_workloads.Monitor

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let trace_has bus ~category ~detail =
  List.exists
    (fun (e : Dr_sim.Trace.entry) ->
      String.equal e.category category && contains detail e.detail)
    (Dr_sim.Trace.entries (Bus.trace bus))

let snapshot bus =
  let routes =
    List.sort compare
      (List.map
         (fun ((src, dst) : Bus.endpoint * Bus.endpoint) ->
           (fst src, snd src, fst dst, snd dst))
         (Bus.all_routes bus))
  in
  (routes, List.sort String.compare (Bus.instances bus))

let config = Alcotest.(pair (list (Alcotest.testable Fmt.nop ( = ))) (list string))

(* ---------------------------------------------------------- fault plane *)

let test_host_crash_and_recover () =
  let system = Ring.load () in
  let bus = Ring.start system in
  Bus.run ~until:5.0 bus;
  Bus.crash_host bus ~host:"hostB";
  (* c is the only hostB resident *)
  (match Bus.process_status bus ~instance:"c" with
  | Some (Machine.Crashed _) -> ()
  | other ->
    Alcotest.failf "c not crashed: %s"
      (match other with
      | Some s -> Fmt.str "%a" Machine.pp_status s
      | None -> "gone"));
  Alcotest.(check bool) "fault traced" true
    (trace_has bus ~category:"fault" ~detail:"host hostB crashed");
  (match Bus.spawn bus ~instance:"d" ~module_name:"member" ~host:"hostB" () with
  | Error e -> Alcotest.(check bool) "spawn names the down host" true (contains "down" e)
  | Ok () -> Alcotest.fail "spawned onto a down host");
  Bus.recover_host bus ~host:"hostB";
  (match Bus.spawn bus ~instance:"d" ~module_name:"member" ~host:"hostB" () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "spawn after recovery: %s" e);
  Alcotest.(check bool) "recovery traced" true
    (trace_has bus ~category:"fault" ~detail:"host hostB recovered")

let chaos_dump ~seed =
  let system = Ring.load () in
  let plan =
    Ring.chaos_plan ~loss:0.1 ~dup:0.05 ~host_crash:("hostB", 10.0)
      ~host_recover:15.0 ()
  in
  let bus = Ring.start_chaos ~seed ~plan system in
  Bus.run ~until:25.0 bus;
  Fmt.str "%a" Dr_sim.Trace.dump (Bus.trace bus)

let test_chaos_replay_deterministic () =
  (* the whole point of seeding: a chaos run replays byte-for-byte *)
  Alcotest.(check string) "same seed, same trace" (chaos_dump ~seed:42)
    (chaos_dump ~seed:42);
  Alcotest.(check bool) "loss actually injected" true
    (contains "injected loss" (chaos_dump ~seed:42))

let test_parse_plan () =
  (match Faults.parse_plan "seed=9,loss=0.05,dup=0.01,jitter=0.2,crash=hostB@4,recover=hostB@8,kill=b@3" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok (seed, p) ->
    Alcotest.(check int) "seed" 9 seed;
    Alcotest.(check int) "merged into one rule" 1 (List.length p.fp_rules);
    let r = List.hd p.fp_rules in
    Alcotest.(check (float 1e-9)) "loss" 0.05 r.r_loss;
    Alcotest.(check (float 1e-9)) "dup" 0.01 r.r_dup;
    Alcotest.(check int) "three events" 3 (List.length p.fp_events));
  (match Faults.parse_plan "loss@a>*=0.5" with
  | Ok (_, p) ->
    let r = List.hd p.fp_rules in
    Alcotest.(check (option string)) "src scoped" (Some "a") r.r_src;
    Alcotest.(check (option string)) "dst wildcard" None r.r_dst
  | Error e -> Alcotest.failf "scoped parse: %s" e);
  match Faults.parse_plan "bogus=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a bogus clause"

let expect_parse_error spec needle =
  match Faults.parse_plan spec with
  | Ok _ -> Alcotest.failf "accepted %S" spec
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "%S rejected with %S, got %S" spec needle e)
      true (contains needle e)

let test_parse_plan_validation () =
  (* malformed @T clauses *)
  expect_parse_error "crash=hostB@-1" "non-negative";
  expect_parse_error "crash=hostB@x" "name@time";
  expect_parse_error "crash=@4" "name@time";
  expect_parse_error "corrupt=c@-0.5" "non-negative";
  (* contradictory clauses *)
  expect_parse_error "kill=b@3,kill=b@3" "duplicate kill clause b@3";
  expect_parse_error "crash=hostB@4,recover=hostB@4"
    "crash and recover of hostB at the same time";
  (* a later, narrower rule a broader earlier rule shadows (first match
     wins, so it could never fire) *)
  expect_parse_error "loss=0.1,loss@a>b=0.5" "shadowed";
  expect_parse_error "loss@a>*=0.1,dup@a>b=0.5" "shadowed";
  (* narrow before broad is the legal spelling *)
  (match Faults.parse_plan "loss@a>b=0.5,loss=0.1" with
  | Ok (_, p) ->
    Alcotest.(check int) "narrow-then-broad keeps both rules" 2
      (List.length p.fp_rules)
  | Error e -> Alcotest.failf "narrow-then-broad: %s" e);
  (* same scope merges; distinct times are distinct events *)
  (match Faults.parse_plan "loss=0.05,dup=0.01" with
  | Ok (_, p) -> Alcotest.(check int) "same scope merges" 1 (List.length p.fp_rules)
  | Error e -> Alcotest.failf "merge: %s" e);
  match Faults.parse_plan "crash=hostB@4,recover=hostB@8" with
  | Ok (_, p) ->
    Alcotest.(check int) "crash then later recover is legal" 2
      (List.length p.fp_events)
  | Error e -> Alcotest.failf "crash/recover: %s" e

(* --------------------------------------------------- idempotent bus ops *)

let test_kill_wake_idempotent () =
  let bus = Bus.create ~hosts:Monitor.hosts () in
  (match Bus.register_program bus (Support.parse "module quit;\nproc main() { mh_init(); }") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "register: %s" e);
  (match Bus.spawn bus ~instance:"q" ~module_name:"quit" ~host:"hostA" () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "spawn: %s" e);
  (* never spawned: both must be safe no-ops with an audit trail *)
  Bus.kill bus ~instance:"ghost";
  Bus.wake bus ~instance:"ghost";
  Alcotest.(check bool) "kill audited" true
    (trace_has bus ~category:"audit" ~detail:"kill ignored: no instance ghost");
  Alcotest.(check bool) "wake audited" true
    (trace_has bus ~category:"audit" ~detail:"wake ignored: no instance ghost");
  (* halted: waking must not resurrect *)
  Bus.run_while bus ~max_events:100_000 (fun () ->
      Bus.process_status bus ~instance:"q" <> Some Machine.Halted);
  Bus.wake bus ~instance:"q";
  Alcotest.(check bool) "halted wake audited" true
    (trace_has bus ~category:"audit" ~detail:"wake ignored: q already stopped");
  Alcotest.(check (option bool)) "still halted" (Some true)
    (Option.map (( = ) Machine.Halted) (Bus.process_status bus ~instance:"q"))

(* ------------------------------------------------ transactional scripts *)

let displayed bus =
  List.filter_map Monitor.parse_displayed (Bus.outputs bus ~instance:"display")

let run_until_displays bus k =
  Bus.run_while bus ~max_events:2_000_000 (fun () ->
      List.length (displayed bus) < k)

let test_replace_rolls_back_failed_spawn () =
  (* Regression: the clone spawn fails *after* the target divulged (the
     name is taken). The old code stranded the application — compute
     halted, the clone missing, routes half-rebound. The journal must
     restore the exact pre-script configuration and return compute to
     service with its own image. *)
  let system = Monitor.load () in
  let bus = Monitor.start system in
  run_until_displays bus 2;
  let before = snapshot bus in
  let shown = List.length (displayed bus) in
  (match
     Script.run_sync bus (fun ~on_done ->
         Script.replace bus ~instance:"compute" ~new_instance:"display"
           ~on_done ())
   with
  | Ok _ -> Alcotest.fail "replacement onto a taken name succeeded"
  | Error e -> Alcotest.(check bool) "reports the collision" true (contains "display" e));
  Alcotest.check config "configuration restored" before (snapshot bus);
  Alcotest.(check bool) "rollback traced" true
    (trace_has bus ~category:"rollback" ~detail:"restored instance compute");
  (* the restored compute must actually serve: more readings appear *)
  run_until_displays bus (shown + 2);
  Alcotest.(check bool) "restored compute keeps serving" true
    (List.length (displayed bus) >= shown + 2)

let stuck_bus () =
  (* [stuck]'s only reconfiguration opportunity sits behind a read that
     never receives a message: statically reachable, dynamically not.
     [busy] keeps the event loop hot so only the deadline can end it. *)
  let bus = Bus.create ~hosts:Monitor.hosts () in
  let register source =
    match Bus.register_program bus (Support.parse source) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "register: %s" e
  in
  register
    "module stuck;\nproc main() { var x: int; mh_init(); R: mh_read(\"in\", x); }";
  register "module busy;\nproc main() { mh_init(); while (true) { sleep(1); } }";
  let spawn instance =
    match Bus.spawn bus ~instance ~module_name:instance ~host:"hostA" () with
    | Ok () -> ()
    | Error e -> Alcotest.failf "spawn: %s" e
  in
  spawn "stuck";
  spawn "busy";
  bus

let test_replace_deadline_expires () =
  let bus = stuck_bus () in
  Bus.run ~until:1.0 bus;
  let before = snapshot bus in
  (match
     Script.run_sync bus (fun ~on_done ->
         Script.replace bus ~instance:"stuck" ~new_instance:"s2" ~deadline:5.0
           ~on_done ())
   with
  | Ok _ -> Alcotest.fail "replacement of an unreachable point succeeded"
  | Error e -> Alcotest.(check bool) "reports the deadline" true (contains "deadline" e));
  Alcotest.(check bool) "stopped at the deadline, not the event budget" true
    (Bus.now bus < 100.0);
  Alcotest.check config "configuration restored" before (snapshot bus);
  Alcotest.(check bool) "callback disarmed" true
    (trace_has bus ~category:"rollback" ~detail:"disarmed divulge callback for stuck");
  (* the static analysis rejects the truly unreachable variant outright *)
  let orphan =
    Support.parse
      "module orphan;\nproc lost() { R: skip; }\nproc main() { skip; }"
  in
  match Dr_analysis.Reconfig_graph.build orphan ~points:[ ("lost", "R") ] with
  | Error e -> Alcotest.(check bool) "names the unreachable proc" true (contains "lost" e)
  | Ok _ -> Alcotest.fail "analysis accepted an unreachable point"

let test_replace_retries () =
  let bus = stuck_bus () in
  let retry = { Script.attempts = 2; backoff = 1.0; alt_hosts = [ "hostB" ] } in
  (match
     Script.run_sync bus (fun ~on_done ->
         Script.replace bus ~instance:"stuck" ~new_instance:"s2" ~deadline:3.0
           ~retry ~on_done ())
   with
  | Ok _ -> Alcotest.fail "retry of an unreachable point succeeded"
  | Error _ -> ());
  Alcotest.(check bool) "first attempt traced" true
    (trace_has bus ~category:"script" ~detail:"attempt 1 failed");
  Alcotest.(check bool) "retry targeted the alternate host" true
    (trace_has bus ~category:"script" ~detail:"retrying on hostB");
  (* two deadlines plus one backoff: both attempts rolled back *)
  Alcotest.(check int) "two rollbacks" 2
    (List.length
       (List.filter
          (fun (e : Dr_sim.Trace.entry) ->
            String.equal e.category "rollback" && contains "rolling back" e.detail)
          (Dr_sim.Trace.entries (Bus.trace bus))))

let test_replicate_replica_host_down () =
  let system = Monitor.load () in
  let bus = Monitor.start system in
  run_until_displays bus 2;
  let before = snapshot bus in
  (* hostB dies while the script is waiting for compute to divulge *)
  Dr_sim.Engine.schedule (Bus.engine bus) ~delay:0.01 (fun () ->
      Bus.crash_host bus ~host:"hostB");
  (match
     Script.run_sync bus (fun ~on_done ->
         Script.replicate bus ~instance:"compute" ~replica_instance:"c2"
           ~replica_host:"hostB" ~on_done ())
   with
  | Ok _ -> Alcotest.fail "replicated onto a down host"
  | Error e -> Alcotest.(check bool) "reports the down host" true (contains "down" e));
  (* phase 1 restored the original; phase 2's failure undid only itself *)
  Alcotest.check config "configuration restored" before (snapshot bus);
  let shown = List.length (displayed bus) in
  run_until_displays bus (shown + 2);
  Alcotest.(check bool) "restored compute keeps serving" true
    (List.length (displayed bus) >= shown + 2)

let test_chaos_replace_consistent () =
  (* Acceptance: a replacement attempted during a host crash plus 5%
     message loss either completes or rolls back to the fully routed old
     configuration — for every seed. *)
  for seed = 1 to 10 do
    let system = Ring.load () in
    let plan =
      Ring.chaos_plan ~loss:0.05 ~host_crash:("hostB", 8.5) ()
    in
    let bus = Ring.start_chaos ~seed ~plan system in
    Bus.run ~until:8.0 bus;
    let before = snapshot bus in
    let outcome =
      Script.run_sync bus (fun ~on_done ->
          Script.replace bus ~instance:"c" ~new_instance:"c2" ~deadline:25.0
            ~on_done ())
    in
    (match outcome with
    | Ok _ ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: clone live" seed)
        true
        (List.mem "c2" (Bus.instances bus)
        && not (List.mem "c" (Bus.instances bus)))
    | Error _ ->
      Alcotest.check config
        (Printf.sprintf "seed %d: rolled back to the pre-script config" seed)
        before (snapshot bus));
    (* either way, no route may dangle *)
    let live = Bus.instances bus in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: fully routed" seed)
      true
      (List.for_all
         (fun ((src, dst) : Bus.endpoint * Bus.endpoint) ->
           List.mem (fst src) live && List.mem (fst dst) live)
         (Bus.all_routes bus))
  done

(* ----------------------------------------------------------- double faults *)

module Journal = Dr_reconfig.Journal
module Primitives = Dr_reconfig.Primitives

let compute_cap bus =
  match Primitives.obj_cap bus ~instance:"compute" with
  | Ok cap -> cap
  | Error e -> Alcotest.failf "obj_cap: %s" e

let test_rollback_with_host_down_leaves_crashed () =
  (* The fault that matters arrives *during* the rollback: compute has
     divulged and halted when its host dies. Undoing [note_divulged]
     must not kill the shell and fail the respawn (losing the instance
     outright) — it leaves it for a supervisor and says so. *)
  let system = Monitor.load () in
  let bus = Monitor.start system in
  run_until_displays bus 2;
  let cap = compute_cap bus in
  let j = Journal.create bus ~label:"double-fault" in
  let got = ref None in
  Journal.arm_divulge j ~instance:"compute" (fun image -> got := Some image);
  Bus.signal_reconfig bus ~instance:"compute";
  Bus.run_while bus ~max_events:2_000_000 (fun () -> Option.is_none !got);
  Journal.note_divulged j ~cap ~image:(Option.get !got);
  let before = snapshot bus in
  Bus.crash_host bus ~host:"hostA";
  Journal.rollback j ~reason:"double fault";
  Alcotest.(check bool) "refuses to restore onto a down host" true
    (trace_has bus ~category:"rollback"
       ~detail:"cannot restore compute: host hostA is down");
  Alcotest.check config "routes and roster untouched" before (snapshot bus)

let test_rollback_respawn_failure_is_traced () =
  (* Journalled kill, then the host dies before the rollback: the undo's
     respawn must fail loudly (traced), not resurrect a phantom. *)
  let system = Monitor.load () in
  let bus = Monitor.start system in
  run_until_displays bus 2;
  let cap = compute_cap bus in
  let j = Journal.create bus ~label:"double-fault" in
  Journal.kill j ~instance:"compute" ~module_name:cap.Primitives.cap_module
    ~host:cap.Primitives.cap_host ();
  Alcotest.(check bool) "killed" false (List.mem "compute" (Bus.instances bus));
  Bus.crash_host bus ~host:cap.Primitives.cap_host;
  Journal.rollback j ~reason:"double fault";
  Alcotest.(check bool) "respawn failure traced" true
    (trace_has bus ~category:"rollback"
       ~detail:"FAILED to restore instance compute");
  Alcotest.(check bool) "no phantom instance" false
    (List.mem "compute" (Bus.instances bus))

(* ------------------------------------------------------------ supervisor *)

let test_supervisor_restarts () =
  let system = Ring.load () in
  let bus = Ring.start system in
  Faults.install bus ~seed:1
    (Faults.plan ~events:[ (5.0, Faults.Process_crash "b") ] ());
  let sup = Supervisor.start bus ~period:1.0 ~watch:[ "b" ] () in
  Bus.run ~until:12.0 bus;
  Alcotest.(check (option string)) "b~1 stands in for b" (Some "b~1")
    (Supervisor.current sup ~base:"b");
  Alcotest.(check bool) "b~1 live, b gone" true
    (List.mem "b~1" (Bus.instances bus) && not (List.mem "b" (Bus.instances bus)));
  (match Supervisor.restarts sup with
  | [ r ] ->
    Alcotest.(check string) "old" "b" r.Supervisor.rs_old;
    Alcotest.(check string) "new" "b~1" r.Supervisor.rs_new
  | l -> Alcotest.failf "expected one restart, got %d" (List.length l));
  Alcotest.(check bool) "supervisor traced" true
    (trace_has bus ~category:"supervisor" ~detail:"restarted b as b~1")

let test_supervisor_fallback_host () =
  let system = Ring.load () in
  let bus = Ring.start system in
  (* c lives on hostB; the whole host dies and stays down *)
  Faults.install bus ~seed:1
    (Faults.plan ~events:[ (5.0, Faults.Host_crash "hostB") ] ());
  let sup =
    Supervisor.start bus ~period:1.0 ~fallback_hosts:[ "hostC" ] ~watch:[ "c" ] ()
  in
  Bus.run ~until:12.0 bus;
  Alcotest.(check (option string)) "restarted on the fallback host"
    (Some "hostC")
    (Bus.instance_host bus ~instance:"c~1");
  ignore sup

let () =
  Alcotest.run "faults"
    [ ( "fault plane",
        [ Alcotest.test_case "host crash and recovery" `Quick
            test_host_crash_and_recover;
          Alcotest.test_case "seeded replay is deterministic" `Quick
            test_chaos_replay_deterministic;
          Alcotest.test_case "parse fault specs" `Quick test_parse_plan;
          Alcotest.test_case "reject malformed and contradictory specs" `Quick
            test_parse_plan_validation ] );
      ( "double faults",
        [ Alcotest.test_case "rollback with the host down" `Quick
            test_rollback_with_host_down_leaves_crashed;
          Alcotest.test_case "rollback respawn failure is traced" `Quick
            test_rollback_respawn_failure_is_traced ] );
      ( "idempotent ops",
        [ Alcotest.test_case "kill/wake on dead instances" `Quick
            test_kill_wake_idempotent ] );
      ( "transactional scripts",
        [ Alcotest.test_case "rollback on failed clone spawn" `Quick
            test_replace_rolls_back_failed_spawn;
          Alcotest.test_case "deadline on unreachable point" `Quick
            test_replace_deadline_expires;
          Alcotest.test_case "retry with alternate host" `Quick
            test_replace_retries;
          Alcotest.test_case "replicate with replica host down" `Quick
            test_replicate_replica_host_down;
          Alcotest.test_case "chaos replace stays consistent" `Quick
            test_chaos_replace_consistent ] );
      ( "supervisor",
        [ Alcotest.test_case "restarts a crashed instance" `Quick
            test_supervisor_restarts;
          Alcotest.test_case "falls back to a live host" `Quick
            test_supervisor_fallback_host ] ) ]
