(* Tests for the resolution pass (lib/interp/resolve.ml) and the
   resolved execution engine: slot assignment for shadowed names, goto
   into nested loop bodies after resolution, hot-swap of resolved code,
   the program cache, and a differential property — the resolved engine
   must produce instruction counts, prints, traces, statuses and final
   state identical to the AST-walking reference engine (Ast_machine) on
   the workload corpus and on random expression programs. *)

module Ast = Dr_lang.Ast
module Ir = Dr_interp.Ir
module Lower = Dr_interp.Lower
module Resolve = Dr_interp.Resolve
module Machine = Dr_interp.Machine
module Ast_machine = Dr_interp.Ast_machine
module Cache = Dr_interp.Cache
module Value = Dr_state.Value
module Image = Dr_state.Image
module Synthetic = Dr_workloads.Synthetic
module Ring = Dr_workloads.Ring

(* ------------------------------------------------- differential driver *)

type outcome = {
  o_status : string;
  o_instrs : int;
  o_prints : string list;
  o_trace : string list;
  o_images : Image.t list;
  o_globals : (string * Value.t) list;
}

(* Run a program to quiescence, waking it from sleeps up to [wake_limit]
   times (optionally delivering the reconfiguration signal on wake
   [signal_at_wake]), recording every observable. *)
let drive_resolved ?signal_at_wake ?(wake_limit = 20) ?(max_steps = 20_000)
    ?(feeds = []) (program : Ast.program) =
  let sio = Support.script_io ~feeds () in
  let m = Machine.create ~io:sio.Support.io program in
  let trace = ref [] in
  Machine.set_tracer m
    (Some
       (fun proc pc instr ->
         trace := Fmt.str "%s:%d %a" proc pc Ir.pp_instr instr :: !trace));
  let wakes = ref 0 in
  let running = ref true in
  while !running do
    Machine.run ~max_steps m;
    match Machine.status m with
    | Machine.Sleeping _ when !wakes < wake_limit ->
      incr wakes;
      if signal_at_wake = Some !wakes then Machine.deliver_signal m;
      Machine.set_ready m
    | _ -> running := false
  done;
  { o_status = Fmt.str "%a" Machine.pp_status (Machine.status m);
    o_instrs = Machine.instr_count m;
    o_prints = Support.printed sio;
    o_trace = List.rev !trace;
    o_images = List.rev sio.Support.divulged;
    o_globals =
      List.map
        (fun (g : Ast.global) ->
          (g.gname, Option.value ~default:Value.Vnull (Machine.read_global m g.gname)))
        program.globals }

let drive_ast ?signal_at_wake ?(wake_limit = 20) ?(max_steps = 20_000)
    ?(feeds = []) (program : Ast.program) =
  let sio = Support.script_io ~feeds () in
  let m = Ast_machine.create ~io:sio.Support.io program in
  let trace = ref [] in
  Ast_machine.set_tracer m
    (Some
       (fun proc pc instr ->
         trace := Fmt.str "%s:%d %a" proc pc Ir.pp_instr instr :: !trace));
  let wakes = ref 0 in
  let running = ref true in
  while !running do
    Ast_machine.run ~max_steps m;
    match Ast_machine.status m with
    | Ast_machine.Sleeping _ when !wakes < wake_limit ->
      incr wakes;
      if signal_at_wake = Some !wakes then Ast_machine.deliver_signal m;
      Ast_machine.set_ready m
    | _ -> running := false
  done;
  { o_status = Fmt.str "%a" Ast_machine.pp_status (Ast_machine.status m);
    o_instrs = Ast_machine.instr_count m;
    o_prints = Support.printed sio;
    o_trace = List.rev !trace;
    o_images = List.rev sio.Support.divulged;
    o_globals =
      List.map
        (fun (g : Ast.global) ->
          ( g.gname,
            Option.value ~default:Value.Vnull (Ast_machine.read_global m g.gname)
          ))
        program.globals }

let outcome_equal a b =
  String.equal a.o_status b.o_status
  && a.o_instrs = b.o_instrs
  && List.equal String.equal a.o_prints b.o_prints
  && List.equal String.equal a.o_trace b.o_trace
  && List.length a.o_images = List.length b.o_images
  && List.for_all2 Image.equal a.o_images b.o_images
  && List.equal
       (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && Value.equal v1 v2)
       a.o_globals b.o_globals

let check_differential ?signal_at_wake ?wake_limit ?max_steps ?feeds name
    program =
  let a = drive_ast ?signal_at_wake ?wake_limit ?max_steps ?feeds program in
  let r = drive_resolved ?signal_at_wake ?wake_limit ?max_steps ?feeds program in
  Alcotest.(check string) (name ^ ": status") a.o_status r.o_status;
  Alcotest.(check int) (name ^ ": instr count") a.o_instrs r.o_instrs;
  Alcotest.(check (list string)) (name ^ ": prints") a.o_prints r.o_prints;
  Alcotest.(check (list string)) (name ^ ": trace") a.o_trace r.o_trace;
  Alcotest.(check bool) (name ^ ": images") true
    (List.length a.o_images = List.length r.o_images
    && List.for_all2 Image.equal a.o_images r.o_images);
  Alcotest.(check bool) (name ^ ": globals") true
    (List.equal
       (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && Value.equal v1 v2)
       a.o_globals r.o_globals)

(* -------------------------------------------------- resolver edge cases *)

let nested_goto_source =
  {|
module t;

proc main() {
  var i: int;
  var j: int;
  i = 0;
  goto Inner;
  while (i < 2) {
    j = 0;
    while (j < 3) {
      Inner: print("i=", i, ",j=", j);
      j = j + 1;
    }
    i = i + 1;
  }
  print("done");
}
|}

let test_goto_nested_loops () =
  (* after resolution, jumping into the middle of a nested loop body
     must land on the same slot-indexed instruction and run the loops
     to completion *)
  Alcotest.(check (list string))
    "prints"
    [ "i=0,j=0"; "i=0,j=1"; "i=0,j=2"; "i=1,j=0"; "i=1,j=1"; "i=1,j=2"; "done" ]
    (Support.prints_of nested_goto_source);
  check_differential "nested goto" (Support.parse nested_goto_source)

let shadow_source =
  {|
module t;

var x: int = 10;
var result: int = 0;

proc main() {
  var x: int;
  x = 42;
  result = x;
  sleep(1);
}
|}

let test_shadowed_slots () =
  let program = Support.parse shadow_source in
  Support.typecheck_ok program;
  let resolved = Resolve.resolve_program program (Lower.lower_program program) in
  let main =
    resolved.Resolve.rg_procs.(Hashtbl.find resolved.Resolve.rg_proc_index
                                 "main")
  in
  (* the local x gets a frame slot; the global x keeps its global slot *)
  Alcotest.(check bool) "local x has a frame slot" true
    (Hashtbl.mem main.Resolve.rp_slot_index "x");
  Alcotest.(check bool) "global x is indexed" true
    (Hashtbl.mem resolved.Resolve.rg_global_index "x");
  let writes_frame_slot =
    Array.exists
      (function
        | Resolve.Rassign (Resolve.Rlvar (Resolve.Sframe _), _) -> true
        | _ -> false)
      main.Resolve.rp_instrs
  in
  Alcotest.(check bool) "x = 42 targets the frame slot" true writes_frame_slot;
  (* behaviourally: while main sleeps, the local and the global are
     distinct cells, each readable through its single-probe API *)
  let sio = Support.script_io () in
  let m = Machine.create ~io:sio.Support.io program in
  Machine.run ~max_steps:1_000 m;
  (match Machine.status m with
  | Machine.Sleeping _ -> ()
  | s -> Alcotest.failf "expected sleeping, got %a" Machine.pp_status s);
  Alcotest.(check (option Support.value)) "read_local x" (Some (Value.Vint 42))
    (Machine.read_local m "x");
  Alcotest.(check (option Support.value)) "read_global x" (Some (Value.Vint 10))
    (Machine.read_global m "x");
  Alcotest.(check (option Support.value)) "read_global result"
    (Some (Value.Vint 42))
    (Machine.read_global m "result")

let test_forward_global_init () =
  (* a global initialiser referencing a later global stays unbound and
     falls back to the type default — in both engines *)
  let source =
    "module t;\nvar a: int = b + 1;\nvar b: int = 5;\nproc main() { print(a, \":\", b); }"
  in
  Alcotest.(check (list string)) "prints" [ "0:5" ] (Support.prints_of source);
  check_differential "forward global init" (Support.parse source)

(* ------------------------------------------------------------ hot swap *)

let test_replace_resolved_code () =
  (* replace a procedure mid-run with code that calls a brand-new
     procedure: the swapped code resolves against the machine's index,
     the unknown callee falls back to by-name lookup, and both engines
     agree on the result *)
  let source =
    {|
module t;

var out: int = 0;

proc helper(x: int): int {
  return x + 1;
}

proc main() {
  var i: int;
  i = 0;
  while (i < 4) {
    out = out + helper(i);
    sleep(1);
    i = i + 1;
  }
}
|}
  in
  let replacement =
    Support.parse
      {|
module t2;

proc helper(x: int): int {
  var y: int;
  y = boost(x);
  return y;
}

proc boost(x: int): int {
  return x * 10;
}
|}
  in
  let new_code = Lower.lower_program replacement in
  let run_with_swap (type m) (create : Ast.program -> m) ~run ~status ~set_ready
      ~replace ~instr_count ~read_global =
    let m = create (Support.parse source) in
    let swapped = ref false in
    let wakes = ref 0 in
    let running = ref true in
    while !running do
      run m;
      match status m with
      | `Sleeping when !wakes < 10 ->
        incr wakes;
        if not !swapped then begin
          swapped := true;
          Hashtbl.iter (fun _ code -> replace m code) new_code
        end;
        set_ready m
      | _ -> running := false
    done;
    (instr_count m, read_global m "out")
  in
  let resolved =
    run_with_swap
      (fun p -> Machine.create ~io:(Dr_interp.Io_intf.null ()) p)
      ~run:(fun m -> Machine.run ~max_steps:10_000 m)
      ~status:(fun m ->
        match Machine.status m with Machine.Sleeping _ -> `Sleeping | _ -> `Other)
      ~set_ready:Machine.set_ready ~replace:Machine.replace_proc_code
      ~instr_count:Machine.instr_count ~read_global:Machine.read_global
  in
  let reference =
    run_with_swap
      (fun p -> Ast_machine.create ~io:(Dr_interp.Io_intf.null ()) p)
      ~run:(fun m -> Ast_machine.run ~max_steps:10_000 m)
      ~status:(fun m ->
        match Ast_machine.status m with
        | Ast_machine.Sleeping _ -> `Sleeping
        | _ -> `Other)
      ~set_ready:Ast_machine.set_ready ~replace:Ast_machine.replace_proc_code
      ~instr_count:Ast_machine.instr_count ~read_global:Ast_machine.read_global
  in
  let instrs, out = resolved in
  let instrs', out' = reference in
  Alcotest.(check int) "instr count matches reference" instrs' instrs;
  Alcotest.(check (option Support.value)) "out matches reference" out' out;
  (* first iteration ran old helper (0+1), later ones the boosted chain *)
  Alcotest.(check (option Support.value)) "out value"
    (Some (Value.Vint (1 + 10 + 20 + 30)))
    out

(* ------------------------------------------------------ workload corpus *)

let test_corpus_differential () =
  check_differential "hotloop" (Synthetic.hotloop ~rounds:4 ~inner:4);
  check_differential "layered" (Synthetic.layered ~iterations:5);
  check_differential "layered_pointed" (Synthetic.layered_pointed ~iterations:4);
  check_differential "hoistable"
    (Synthetic.hoistable ~point:`Inner ~rounds:3 ~inner:3 ());
  check_differential "deeprec raw" ~wake_limit:5 (Synthetic.deeprec ~depth:4);
  check_differential "ring member" ~wake_limit:10
    ~feeds:[ ("in", [ Value.Vint 0; Value.Vint 1; Value.Vint 2 ]) ]
    (Support.parse (List.assoc "member" Ring.sources))

let test_corpus_capture_differential () =
  (* instrumented deeprec: signal on the second wake, so both engines
     run the handler, capture the full depth-6 stack and encode the
     image — traces, counts and the image itself must match *)
  let prepared =
    match
      Dr_transform.Instrument.prepare (Synthetic.deeprec ~depth:6)
        ~points:Synthetic.deeprec_points
    with
    | Ok p -> p.Dr_transform.Instrument.prepared_program
    | Error e -> Alcotest.failf "transform failed: %s" e
  in
  check_differential "deeprec capture" ~signal_at_wake:2 ~wake_limit:8 prepared

(* ------------------------------------------------------- random programs *)

(* Random call-free-or-not expressions from the shared generator,
   dropped into a fixed harness program: globals covering every ident
   the generator can emit (including an array and a float), two of the
   four callable proc names defined (the others exercise the
   unknown-procedure path identically in both engines). Programs are
   deliberately NOT typechecked: runtime errors must also match. *)
let harness_globals =
  [ ("a", "int", "1"); ("b", "int", "2"); ("c", "int[]", "alloc_int(4)");
    ("x", "int", "4"); ("y", "float", "2.5"); ("count", "int", "0");
    ("total", "int", "7"); ("foo_bar", "bool", "true");
    ("v1", "string", "\"v\"");
    ("tmp2", "int", "10") ]

let harness_program expr_src =
  let globals =
    String.concat ""
      (List.map
         (fun (n, ty, init) -> Printf.sprintf "var %s: %s = %s;\n" n ty init)
         harness_globals)
  in
  Printf.sprintf
    {|
module t;
%s
proc helper(k: int): int {
  return k + 1;
}

proc work(k: int, j: int): int {
  return k * j + 1;
}

proc main() {
  var r: int;
  count = count + 1;
  r = %s;
  print(str(r));
}
|}
    globals expr_src

(* Untypechecked programs can escape the Runtime_error net (e.g. a
   builtin applied to too few arguments raises [Failure "nth"] in both
   engines); the property demands the engines agree on the escaped
   exception too. *)
let safely drive program =
  match drive program with o -> Ok o | exception e -> Error (Printexc.to_string e)

let qcheck_random_exprs =
  Support.qcheck ~count:200 "resolved = ast engine on random expressions"
    Gen.expr (fun e ->
      let source = harness_program (Dr_lang.Pretty.expr_to_string e) in
      let program = Support.parse source in
      let a = safely (drive_ast ~max_steps:5_000) program in
      let r = safely (drive_resolved ~max_steps:5_000) program in
      match (a, r) with
      | Ok a, Ok r -> outcome_equal a r
      | Error ea, Error er -> String.equal ea er
      | _ -> false)

(* --------------------------------------------------------- program cache *)

let test_cache_scaling () =
  (* the N=1000 ring: one member module, so exactly one lowering +
     resolution; all 1000 instances share the artifact *)
  Cache.reset ();
  let system = Ring.load_large ~n:1000 in
  let bus = Ring.start_large system ~n:1000 in
  Alcotest.(check int) "one compilation for 1000 instances" 1 (Cache.misses ());
  Alcotest.(check bool) "all instances live" true
    (List.for_all
       (fun m -> Option.is_some (Dr_bus.Bus.machine bus ~instance:m))
       (Ring.members ~n:1000));
  (* a second deployment of the same module text is a cache hit *)
  let system2 = Ring.load_large ~n:10 in
  let bus2 = Ring.start_large system2 ~n:10 in
  ignore bus2;
  Alcotest.(check int) "still one compilation" 1 (Cache.misses ());
  Alcotest.(check bool) "second deployment hit the cache" true
    (Cache.hits () >= 1);
  (* and the ring still works: tokens actually circulate *)
  Dr_bus.Bus.run ~max_events:2_000 bus;
  Alcotest.(check bool) "tokens circulated" true
    (Ring.total_passes bus ~instances:(Ring.members ~n:1000) > 0)

let () =
  Alcotest.run "resolve"
    [ ( "resolver",
        [ Alcotest.test_case "goto into nested loop bodies" `Quick
            test_goto_nested_loops;
          Alcotest.test_case "shadowed local vs global slots" `Quick
            test_shadowed_slots;
          Alcotest.test_case "forward global init" `Quick
            test_forward_global_init;
          Alcotest.test_case "hot-swap resolved code" `Quick
            test_replace_resolved_code ] );
      ( "differential",
        [ Alcotest.test_case "workload corpus" `Quick test_corpus_differential;
          Alcotest.test_case "capture/restore corpus" `Quick
            test_corpus_capture_differential;
          qcheck_random_exprs ] );
      ( "cache",
        [ Alcotest.test_case "N=1000 spawns share one artifact" `Quick
            test_cache_scaling ] ) ]
