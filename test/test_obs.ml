(* Unit tests for the passive metrics registry (lib/obs) and its
   report rendering, plus one end-to-end check that a bus-level
   migration records a span tree whose phases tile the disruption
   window. *)

module Metrics = Dr_obs.Metrics
module Bus = Dr_bus.Bus
module Script = Dr_reconfig.Script

(* ------------------------------------------------------- instruments *)

let test_counters () =
  let r = Metrics.create () in
  Metrics.incr r "events";
  Metrics.incr r ~by:4 "events";
  Alcotest.(check int) "accumulates" 5 (Metrics.counter_value r "events");
  Alcotest.(check int) "missing reads 0" 0 (Metrics.counter_value r "ghost");
  (* label order must not matter *)
  Metrics.incr r ~labels:[ ("a", "1"); ("b", "2") ] "routed";
  Metrics.incr r ~labels:[ ("b", "2"); ("a", "1") ] "routed";
  Alcotest.(check int) "labels canonicalised" 2
    (Metrics.counter_value r ~labels:[ ("a", "1"); ("b", "2") ] "routed");
  Alcotest.(check int) "distinct labels are distinct" 0
    (Metrics.counter_value r ~labels:[ ("a", "1") ] "routed");
  Alcotest.(check int) "reads do not create instruments" 2
    (List.length (Metrics.counters r))

let test_gauges () =
  let r = Metrics.create () in
  Alcotest.(check (option (float 0.))) "missing gauge" None
    (Metrics.gauge_value r "depth");
  Metrics.set_gauge r "depth" 3.0;
  Metrics.set_gauge r "depth" 7.0;
  Alcotest.(check (option (float 0.))) "last write wins" (Some 7.0)
    (Metrics.gauge_value r "depth");
  Metrics.add_gauge r "in_flight" 1.0;
  Metrics.add_gauge r "in_flight" 1.0;
  Metrics.add_gauge r "in_flight" (-1.0);
  Alcotest.(check (option (float 0.))) "add accumulates" (Some 1.0)
    (Metrics.gauge_value r "in_flight")

let test_histograms () =
  let r = Metrics.create () in
  List.iter (Metrics.observe r "lat") [ 0.0; 0.5; 1.0; 2.0; 3.0; 1024.0 ];
  Alcotest.(check int) "count" 6 (Metrics.histogram_count r "lat");
  Alcotest.(check int) "missing histogram" 0 (Metrics.histogram_count r "nope");
  let json = Metrics.snapshot_json ~now:0.0 r in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  (* 0 lands in the le0 bucket; 1024 = 2^10 in bucket 10 *)
  Alcotest.(check bool) "le0 bucket" true (contains {|"le0":1|});
  Alcotest.(check bool) "2^10 bucket" true (contains {|"10":1|});
  Alcotest.(check bool) "sum" true (contains {|"sum":1030.5|})

let test_collectors () =
  let r = Metrics.create () in
  let sampled = ref 0 in
  Metrics.register_collector r (fun reg ->
      incr sampled;
      Metrics.set_gauge reg "sampled.depth" (float_of_int !sampled));
  Alcotest.(check (option (float 0.))) "not run yet" None
    (Metrics.gauge_value r "sampled.depth");
  Metrics.run_collectors r;
  Alcotest.(check (option (float 0.))) "sampled" (Some 1.0)
    (Metrics.gauge_value r "sampled.depth");
  ignore (Metrics.snapshot_json ~now:1.0 r);
  Alcotest.(check int) "snapshot runs collectors" 2 !sampled

(* ------------------------------------------------------------- spans *)

let test_span_tree () =
  let r = Metrics.create () in
  let root = Metrics.span r ~kind:"replace" ~start:1.0 () in
  let a = Metrics.child root ~kind:"drain" ~start:1.0 () in
  let b = Metrics.child root ~kind:"restore" ~start:2.0 () in
  Metrics.finish a ~at:2.0;
  Metrics.finish a ~at:99.0;
  Alcotest.(check (option (float 0.))) "first finish wins" (Some 1.0)
    (Metrics.span_duration a);
  Alcotest.(check (list string)) "children in creation order"
    [ "drain"; "restore" ]
    (List.map Metrics.span_kind (Metrics.span_children root));
  Alcotest.(check (option (float 0.))) "open span has no end" None
    (Metrics.span_end b);
  Metrics.set_attr b "outcome" "ok";
  Metrics.set_attr b "outcome" "error";
  Alcotest.(check (list (pair string string))) "set_attr replaces"
    [ ("outcome", "error") ] (Metrics.span_attrs b);
  Alcotest.(check int) "one root" 1 (List.length (Metrics.roots r))

let test_span_lazy_end () =
  let cell = ref None in
  let r = Metrics.create () in
  let s = Metrics.span r ~kind:"restore" ~start:5.0 () in
  Metrics.finish_with s (fun () -> !cell);
  Alcotest.(check (option (float 0.))) "thunk says not yet" None
    (Metrics.span_end s);
  cell := Some 9.0;
  Alcotest.(check (option (float 0.))) "thunk resolves later" (Some 9.0)
    (Metrics.span_end s);
  cell := None;
  Alcotest.(check (option (float 0.))) "resolution is sticky" (Some 9.0)
    (Metrics.span_end s)

let test_snapshot_deterministic () =
  let build order =
    let r = Metrics.create () in
    List.iter
      (fun (name, labels) -> Metrics.incr r ~labels name)
      order;
    Metrics.set_gauge r "g" 2.5;
    let s = Metrics.span r ~kind:"k" ~start:0.5 () in
    Metrics.finish s ~at:1.5;
    Metrics.snapshot_json ~now:2.0 r
  in
  let a =
    build [ ("x", [ ("i", "1") ]); ("x", [ ("i", "2") ]); ("y", []) ]
  in
  let b =
    build [ ("y", []); ("x", [ ("i", "2") ]); ("x", [ ("i", "1") ]) ]
  in
  Alcotest.(check string) "insertion order invisible" a b;
  let r = Metrics.create () in
  Metrics.incr r "n";
  Alcotest.(check string) "snapshot is repeatable"
    (Metrics.snapshot_json ~now:3.0 r)
    (Metrics.snapshot_json ~now:3.0 r)

(* ---------------------------------------------- end-to-end span tree *)

let test_migration_span_decomposition () =
  let system = Dr_workloads.Monitor.load () in
  let bus = Dr_workloads.Monitor.start system in
  let registry = Metrics.create () in
  Bus.set_metrics bus registry;
  Bus.run ~until:12.0 bus;
  (match
     Script.run_sync bus (fun ~on_done ->
         Script.migrate bus ~instance:"compute" ~new_instance:"c2"
           ~new_host:"hostB" ~on_done ())
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "migrate: %s" e);
  Bus.run ~until:(Bus.now bus +. 10.0) bus;
  let root =
    match Metrics.roots registry with
    | [ s ] -> s
    | roots -> Alcotest.failf "expected one root span, got %d" (List.length roots)
  in
  Alcotest.(check string) "kind" "migrate" (Metrics.span_kind root);
  Alcotest.(check (list string)) "phases in order"
    [ "signal"; "drain"; "capture"; "translate"; "restore" ]
    (List.map Metrics.span_kind (Metrics.span_children root));
  let total =
    match Metrics.span_duration root with
    | Some d -> d
    | None -> Alcotest.fail "window still open"
  in
  let sum =
    List.fold_left
      (fun acc s ->
        match Metrics.span_duration s with
        | Some d -> acc +. d
        | None -> Alcotest.failf "%s still open" (Metrics.span_kind s))
      0.0 (Metrics.span_children root)
  in
  Alcotest.(check (float 1e-9)) "phases tile the window" total sum;
  Alcotest.(check bool) "instructions counted" true
    (Metrics.counter_value registry
       ~labels:[ ("instance", "compute") ]
       "interp.instructions"
    > 0);
  Alcotest.(check int) "one signal" 1
    (Metrics.counter_value registry
       ~labels:[ ("instance", "compute") ]
       "reconfig.signals");
  let text = Dr_report.Obs_report.render ~now:(Bus.now bus) registry in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report shows the window" true
    (contains "disruption windows (virtual time):");
  Alcotest.(check bool) "report names the move" true
    (contains "migrate compute -> c2 (hostA => hostB)")

let () =
  Alcotest.run "obs"
    [ ( "instruments",
        [ Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "collectors" `Quick test_collectors ] );
      ( "spans",
        [ Alcotest.test_case "tree" `Quick test_span_tree;
          Alcotest.test_case "lazy end" `Quick test_span_lazy_end;
          Alcotest.test_case "snapshot determinism" `Quick
            test_snapshot_deterministic ] );
      ( "end to end",
        [ Alcotest.test_case "migration decomposition" `Quick
            test_migration_span_decomposition ] ) ]
