(* Reference scenarios whose full trace output is pinned byte-for-byte
   against golden files recorded from the seed (list-based) bus. The
   indexed bus must reproduce them exactly: same events, same order,
   same virtual times. Regenerate with:
     dune exec test/gen_goldens.exe -- test   (from the repo root) *)

module Bus = Dr_bus.Bus

let dump bus = Fmt.str "%a" Dr_sim.Trace.dump (Bus.trace bus)

(* [~metrics:true] attaches a metrics registry before the scenario runs.
   The registry is passive by design, so every golden below must come
   out byte-identical either way — that's the non-perturbation test. *)
let observe metrics bus =
  if metrics then Bus.set_metrics bus (Dr_obs.Metrics.create ())

(* The paper's monitor application: run, migrate compute to the
   big-endian host mid-execution, keep running. *)
let monitor_trace ?(metrics = false) () =
  let system = Dr_workloads.Monitor.load () in
  let bus = Dr_workloads.Monitor.start system in
  observe metrics bus;
  Bus.run ~until:12.0 bus;
  (match
     Dynrecon.System.migrate bus ~instance:"compute" ~new_instance:"c2"
       ~new_host:"hostB"
   with
  | Ok _ -> ()
  | Error e -> failwith ("golden monitor: migrate: " ^ e));
  Bus.run ~until:40.0 bus;
  dump bus

(* The evolving token ring: run, splice a member in, keep running.
   [~shards] picks the broker-domain count — the default (1) is the
   classic single-domain bus and must stay byte-identical to the seed
   golden; shard count 4 is pinned by its own golden below. *)
let ring_trace ?(metrics = false) ?shards () =
  let system = Dr_workloads.Ring.load () in
  let bus = Dr_workloads.Ring.start ?shards system in
  observe metrics bus;
  Bus.run ~until:30.0 bus;
  (match
     Dr_workloads.Ring.insert_member bus ~instance:"d" ~host:"hostC" ~after:"c"
       ~before:"a"
   with
  | Ok () -> ()
  | Error e -> failwith ("golden ring: insert: " ^ e));
  Bus.run ~until:60.0 bus;
  dump bus

(* The same ring scenario on a 4-domain sharded bus. Batched delivery
   may legitimately change the event *count*, but the trace — what was
   delivered, where, in what order, at what virtual time — is pinned by
   its own golden so sharded behaviour can't drift silently. *)
let ring_sharded_trace ?(metrics = false) () =
  ring_trace ~metrics ~shards:4 ()

(* A seeded chaos run: 5% message loss plus a host crash in the middle
   of a transactional replacement's signal->divulge window. Pins the
   fault plane's PRNG consumption order and the journal's rollback
   records byte-for-byte. *)
let chaos_trace ?(metrics = false) ?shards () =
  let system = Dr_workloads.Ring.load () in
  let plan =
    Dr_workloads.Ring.chaos_plan ~loss:0.05 ~host_crash:("hostB", 8.5)
      ~host_recover:20.0 ()
  in
  let bus = Dr_workloads.Ring.start_chaos ~seed:7 ~plan ?shards system in
  observe metrics bus;
  Bus.run ~until:8.0 bus;
  (match
     Dr_reconfig.Script.run_sync bus (fun ~on_done ->
         Dr_reconfig.Script.replace bus ~instance:"c" ~new_instance:"c2"
           ~deadline:25.0 ~on_done ())
   with
  | Ok _ | Error _ -> ());
  Bus.run ~until:40.0 bus;
  dump bus
