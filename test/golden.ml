(* Reference scenarios whose full trace output is pinned byte-for-byte
   against golden files recorded from the seed (list-based) bus. The
   indexed bus must reproduce them exactly: same events, same order,
   same virtual times. Regenerate with:
     dune exec test/gen_goldens.exe -- test   (from the repo root) *)

module Bus = Dr_bus.Bus

let dump bus = Fmt.str "%a" Dr_sim.Trace.dump (Bus.trace bus)

(* The paper's monitor application: run, migrate compute to the
   big-endian host mid-execution, keep running. *)
let monitor_trace () =
  let system = Dr_workloads.Monitor.load () in
  let bus = Dr_workloads.Monitor.start system in
  Bus.run ~until:12.0 bus;
  (match
     Dynrecon.System.migrate bus ~instance:"compute" ~new_instance:"c2"
       ~new_host:"hostB"
   with
  | Ok _ -> ()
  | Error e -> failwith ("golden monitor: migrate: " ^ e));
  Bus.run ~until:40.0 bus;
  dump bus

(* The evolving token ring: run, splice a member in, keep running. *)
let ring_trace () =
  let system = Dr_workloads.Ring.load () in
  let bus = Dr_workloads.Ring.start system in
  Bus.run ~until:30.0 bus;
  (match
     Dr_workloads.Ring.insert_member bus ~instance:"d" ~host:"hostC" ~after:"c"
       ~before:"a"
   with
  | Ok () -> ()
  | Error e -> failwith ("golden ring: insert: " ^ e));
  Bus.run ~until:60.0 bus;
  dump bus
