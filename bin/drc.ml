(* drc — the dynamic-reconfiguration platform's command-line tool.

     drc transform module.mp --point proc:R      instrument a module
     drc graph module.mp --point proc:R          reconfiguration graph
     drc callgraph module.mp                     static call graph
     drc check --mil app.mil --src m=path ...    validate a configuration
     drc run --mil app.mil --src m=path --app a  deploy and simulate
     drc run ... --wal DIR                       ... with a durable control log
     drc recover DIR                             audit a control log
     drc mc --config single-replace              model-check a configuration
     drc mc --repro cex.sched --trace            replay a counterexample
     drc roll --replicas 3 --target rstorev2     rolling replacement demo
     drc exec module.mp                          run one module standalone *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_program_file path =
  try Ok (Dr_lang.Parser.parse_program (read_file path)) with
  | Dr_lang.Parser.Error (message, line) ->
    Error (Printf.sprintf "%s:%d: %s" path line message)
  | Dr_lang.Lexer.Error (message, line) ->
    Error (Printf.sprintf "%s:%d: %s" path line message)
  | Sys_error e -> Error e

let parse_point spec =
  match String.split_on_char ':' spec with
  | [ proc; label ] when proc <> "" && label <> "" ->
    Ok { Dr_transform.Instrument.pt_proc = proc; pt_label = label; pt_vars = None }
  | _ -> Error (`Msg (Printf.sprintf "bad point %S: expected proc:label" spec))

let point_conv =
  Arg.conv
    ( (fun s -> parse_point s),
      fun ppf p ->
        Fmt.pf ppf "%s:%s" p.Dr_transform.Instrument.pt_proc
          p.Dr_transform.Instrument.pt_label )

let parse_source_binding spec =
  match String.index_opt spec '=' with
  | Some i ->
    Ok (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
  | None -> Error (`Msg (Printf.sprintf "bad source %S: expected module=path" spec))

let src_conv =
  Arg.conv
    ( (fun s -> parse_source_binding s),
      fun ppf (m, p) -> Fmt.pf ppf "%s=%s" m p )

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniProc source file.")

let points_arg =
  Arg.(
    value & opt_all point_conv []
    & info [ "point"; "p" ] ~docv:"PROC:LABEL"
        ~doc:"Reconfiguration point (repeatable).")

let liveness_arg =
  Arg.(
    value & flag
    & info [ "liveness" ]
        ~doc:"Trim capture sets with live-variable analysis (paper §3's \
              suggested refinement).")

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("error: " ^ e);
    exit 1

(* Validated numeric converters for the retry flags: zero and negative
   values are configuration mistakes, rejected at parse time with an
   error that names the flag. *)

let positive_int_conv ~flag =
  Arg.conv
    ( (fun s ->
        match int_of_string_opt s with
        | None ->
          Error (`Msg (Printf.sprintf "%s: expected an integer, got %S" flag s))
        | Some n when n <= 0 ->
          Error
            (`Msg
               (Printf.sprintf
                  "%s: must be at least 1 (got %d) — it counts total \
                   attempts, including the first"
                  flag n))
        | Some n -> Ok n),
      Fmt.int )

let positive_ms_conv ~flag =
  Arg.conv
    ( (fun s ->
        match float_of_string_opt s with
        | None ->
          Error
            (`Msg
               (Printf.sprintf "%s: expected milliseconds, got %S" flag s))
        | Some ms when ms <= 0.0 || not (Float.is_finite ms) ->
          Error
            (`Msg
               (Printf.sprintf
                  "%s: must be a positive number of milliseconds (got %s)"
                  flag s))
        | Some ms -> Ok ms),
      fun ppf ms -> Fmt.pf ppf "%g" ms )

let retry_arg =
  Arg.(
    value
    & opt (some (positive_int_conv ~flag:"--retry")) None
    & info [ "retry" ] ~docv:"N"
        ~doc:
          "Attempt a failed operation up to N times in total (including \
           the first try). Must be at least 1.")

let backoff_arg =
  Arg.(
    value
    & opt (some (positive_ms_conv ~flag:"--backoff")) None
    & info [ "backoff" ] ~docv:"MS"
        ~doc:
          "Delay between attempts, in milliseconds (virtual time for \
           simulated runs, wall clock for $(b,drc exec)). Must be \
           positive. Default 1000.")

(* --retry/--backoff into a Script retry policy; None when neither flag
   was given so single-shot runs keep the classic fail-fast watch *)
let retry_policy retry backoff =
  match (retry, backoff) with
  | None, None -> None
  | _ ->
    Some
      { Dr_reconfig.Script.attempts = Option.value retry ~default:1;
        backoff = Option.value backoff ~default:1000.0 /. 1000.0;
        alt_hosts = [] }

(* ------------------------------------------------------------ transform *)

let transform_cmd =
  let run file points liveness =
    let program = or_die (parse_program_file file) in
    let options = { Dr_transform.Instrument.default_options with use_liveness = liveness } in
    match Dr_transform.Instrument.prepare ~options program ~points with
    | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
    | Ok prepared ->
      print_string
        (Dr_lang.Pretty.program_to_string prepared.Dr_transform.Instrument.prepared_program)
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:"Prepare a module for reconfiguration (emit instrumented source).")
    Term.(const run $ file_arg $ points_arg $ liveness_arg)

(* ---------------------------------------------------------------- graph *)

let dot_arg = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz.")

let graph_cmd =
  let run file points dot =
    let program = or_die (parse_program_file file) in
    let pts =
      List.map
        (fun p -> (p.Dr_transform.Instrument.pt_proc, p.Dr_transform.Instrument.pt_label))
        points
    in
    match Dr_analysis.Reconfig_graph.build program ~points:pts with
    | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
    | Ok graph ->
      if dot then print_string (Dr_analysis.Reconfig_graph.to_dot graph)
      else Fmt.pr "%a@." Dr_analysis.Reconfig_graph.pp graph
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Build and print the reconfiguration graph (Fig. 6).")
    Term.(const run $ file_arg $ points_arg $ dot_arg)

let callgraph_cmd =
  let run file dot =
    let program = or_die (parse_program_file file) in
    let graph = Dr_analysis.Callgraph.build program in
    if dot then print_string (Dr_analysis.Callgraph.to_dot graph)
    else
      List.iter
        (fun (s : Dr_analysis.Callgraph.site) ->
          Printf.printf "%s -> %s (line %d%s)\n" s.caller s.callee s.line
            (match s.position with
            | Dr_analysis.Callgraph.Expr_call -> ", expression"
            | Dr_analysis.Callgraph.Stmt_call -> ""))
        (Dr_analysis.Callgraph.sites graph)
  in
  Cmd.v
    (Cmd.info "callgraph" ~doc:"Print the static call graph of a module.")
    Term.(const run $ file_arg $ dot_arg)

let advise_cmd =
  let run file =
    let program = or_die (parse_program_file file) in
    (match Dr_lang.Typecheck.check program with
    | Ok () -> ()
    | Error errors ->
      List.iter (fun e -> Fmt.epr "error: %a@." Dr_lang.Typecheck.pp_error e) errors;
      exit 1);
    match Dr_analysis.Placement.advise program with
    | [] ->
      print_endline
        "no labelled statements found; add candidate labels to rank them"
    | advices ->
      List.iter (fun a -> Fmt.pr "%a@." Dr_analysis.Placement.pp_advice a) advices;
      print_endline
        "\nguidance (paper §4): prefer warm/cold points outside computationally\n\
         intensive loops; points in hot loops respond fastest but cost the most\n\
         flag tests and can inhibit optimisation."
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:"Rank labelled statements as candidate reconfiguration points.")
    Term.(const run $ file_arg)

let optimize_cmd =
  let run file stats_only =
    let program = or_die (parse_program_file file) in
    (match Dr_lang.Typecheck.check program with
    | Ok () -> ()
    | Error errors ->
      List.iter (fun e -> Fmt.epr "error: %a@." Dr_lang.Typecheck.pp_error e) errors;
      exit 1);
    let optimized, stats = Dr_opt.Optimize.optimize program in
    if not stats_only then
      print_string (Dr_lang.Pretty.program_to_string optimized);
    Fmt.epr
      "[optimize] folded %d expression(s), pruned %d branch(es), hoisted %d \
       assignment(s); %d loop(s) pinned by labels@."
      stats.folded stats.pruned stats.hoisted stats.blocked_by_labels
  in
  let stats_only =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print statistics only.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Constant-fold and hoist loop invariants (labels are motion \
             barriers).")
    Term.(const run $ file_arg $ stats_only)

(* ---------------------------------------------------------------- check *)

let mil_arg =
  Arg.(
    required & opt (some file) None
    & info [ "mil" ] ~docv:"FILE" ~doc:"Configuration specification file.")

let srcs_arg =
  Arg.(
    value & opt_all src_conv []
    & info [ "src" ] ~docv:"MODULE=PATH" ~doc:"Module source (repeatable).")

let load_system mil srcs =
  let sources = List.map (fun (m, path) -> (m, read_file path)) srcs in
  Dynrecon.System.load ~mil:(read_file mil) ~sources ()

let check_cmd =
  let run mil srcs =
    match load_system mil srcs with
    | Ok system ->
      List.iter
        (fun (m : Dynrecon.System.loaded_module) ->
          Printf.printf "module %-12s %s\n" m.lm_name
            (match m.lm_prepared with
            | Some prepared ->
              Printf.sprintf "prepared (%d reconfiguration edge(s))"
                (List.length prepared.Dr_transform.Instrument.graph.edges)
            | None -> "no reconfiguration points"))
        system.modules;
      print_endline "configuration OK"
    | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Validate a configuration and its module sources; prepare modules.")
    Term.(const run $ mil_arg $ srcs_arg)

(* ------------------------------------------------------------------ run *)

let app_arg =
  Arg.(
    required & opt (some string) None
    & info [ "app" ] ~docv:"NAME" ~doc:"Application to deploy.")

let until_arg =
  Arg.(
    value & opt float 100.0
    & info [ "until" ] ~docv:"T" ~doc:"Virtual time to simulate.")

let hosts_arg =
  Arg.(
    value
    & opt_all string [ "hostA=x86_64"; "hostB=sparc32"; "hostC=arm32" ]
    & info [ "host" ] ~docv:"NAME=ARCH" ~doc:"Simulated host (repeatable).")

let migrate_arg =
  Arg.(
    value & opt (some string) None
    & info [ "migrate" ] ~docv:"INST:NEW:HOST@T"
        ~doc:"Migrate INST to HOST as NEW at virtual time T.")

let precopy_arg =
  Arg.(
    value & flag
    & info [ "precopy" ]
        ~doc:
          "Live pre-copy for --migrate: snapshot the module's state at its \
           next reconfiguration point while it keeps serving, then freeze \
           and ship only the slots dirtied since (falling back to the full \
           image across architectures). Shrinks the disruption window; the \
           outcome is unchanged.")

let trace_arg = Arg.(value & flag & info [ "trace" ] ~doc:"Dump the bus trace.")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Seeded fault-injection plan: comma-separated clauses seed=N, \
           loss=P, dup=P (optionally scoped loss@SRC>DST=P with * wildcards), \
           jitter=J, crash=HOST@T, recover=HOST@T, kill=INSTANCE@T, \
           corrupt=INSTANCE@T (corrupt the next state image captured from \
           INSTANCE after time T), ctlcrash@N (crash the controller after \
           its Nth control-log append; requires --wal).")

let reliable_arg =
  Arg.(
    value & flag
    & info [ "reliable" ]
        ~doc:
          "Layer reliable delivery (sequencing, acknowledgement, \
           retransmission) over every route, masking injected loss and \
           duplication.")

let timeline_arg =
  Arg.(value & flag & info [ "timeline" ] ~doc:"Draw an ASCII timeline of the run.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition the bus into N broker domains (default 1). Instances \
           are assigned round-robin; cross-domain deliveries are batched \
           per destination domain. Delivery contents and per-route order \
           are unchanged at any shard count.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"OUT.json"
        ~doc:
          "Attach the metrics plane (counters, gauges, reconfiguration \
           span trees) and write a JSON snapshot to OUT.json at the end of \
           the run; a text rendering of the disruption windows is printed \
           to stdout. Observation is passive: the simulated event sequence \
           is identical with or without this flag.")

let wal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal" ] ~docv:"DIR"
        ~doc:
          "Attach a durable control log in DIR (created if missing). Every \
           journalled reconfiguration primitive is appended — durably, \
           before it applies — so a controller crash (ctlcrash@N) leaves a \
           log that $(b,drc recover) can audit and replay.")

let attach_wal bus dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let storage = Dr_wal.Storage.file ~dir in
  match Dr_wal.Wal.create storage with
  | Error e -> or_die (Error (Printf.sprintf "--wal %s: %s" dir e))
  | Ok wal ->
    let r = Dr_wal.Wal.open_report wal in
    if r.or_records > 0 || r.or_truncated_bytes > 0 then
      Printf.printf
        "control log: %d segment(s), %d live record(s), last lsn %d%s\n"
        r.or_segments r.or_records r.or_last_lsn
        (if r.or_truncated_bytes > 0 then
           Printf.sprintf " (torn tail: %d byte(s) truncated)"
             r.or_truncated_bytes
         else "");
    Dr_bus.Bus.set_wal bus wal

let parse_hosts specs =
  List.map
    (fun spec ->
      match String.split_on_char '=' spec with
      | [ name; arch ] -> (
        match Dr_state.Arch.by_name arch with
        | Some arch -> { Dr_bus.Bus.host_name = name; arch }
        | None -> failwith (Printf.sprintf "unknown architecture %s" arch))
      | _ -> failwith (Printf.sprintf "bad host %S" spec))
    specs

let run_cmd =
  let run mil srcs app until hosts shards migrate precopy retry backoff faults
      reliable trace timeline metrics wal =
    let system = match load_system mil srcs with Ok s -> s | Error e -> or_die (Error e) in
    let hosts = parse_hosts hosts in
    let bus =
      match Dynrecon.System.start system ~app ~hosts ~shards () with
      | Ok bus -> bus
      | Error e -> or_die (Error e)
    in
    Option.iter (attach_wal bus) wal;
    let registry =
      match metrics with
      | None -> Dr_bus.Bus.metrics bus (* DRC_METRICS may have attached one *)
      | Some _ ->
        let r =
          match Dr_bus.Bus.metrics bus with
          | Some r -> r
          | None ->
            let r = Dr_obs.Metrics.create () in
            Dr_bus.Bus.set_metrics bus r;
            r
        in
        Some r
    in
    (match faults with
    | None -> ()
    | Some spec -> (
      match Dr_bus.Faults.parse_plan spec with
      | Ok (seed, plan) -> Dr_bus.Faults.install bus ~seed plan
      | Error e -> or_die (Error e)));
    if reliable then begin
      let r = Dr_bus.Reliable.attach bus in
      Dr_bus.Reliable.enable_all r
    end;
    (match migrate with
    | None -> Dr_bus.Bus.run ~until bus
    | Some spec -> (
      match Scanf.sscanf_opt spec "%s@:%s@:%s@@%f" (fun a b c t -> (a, b, c, t)) with
      | None -> or_die (Error (Printf.sprintf "bad --migrate %S" spec))
      | Some (inst, fresh, host, t) ->
        Dr_bus.Bus.run ~until:t bus;
        (match
           Dynrecon.System.migrate bus ~precopy
             ?retry:(retry_policy retry backoff) ~instance:inst
             ~new_instance:fresh ~new_host:host
         with
        | Ok _ -> Printf.printf "migrated %s -> %s on %s\n" inst fresh host
        | Error e when Dr_bus.Bus.controller_down bus ->
          Printf.printf "migration abandoned: %s\n" e
        | Error e -> or_die (Error e));
        Dr_bus.Bus.run ~until bus));
    if Dr_bus.Bus.controller_down bus then begin
      Printf.printf
        "controller crashed after control-log append %d; replaying the log\n"
        (Dr_bus.Bus.ctl_appends bus);
      match Dr_reconfig.Recovery.replay bus with
      | Ok report ->
        Fmt.pr "recovery: %a@." Dr_reconfig.Recovery.pp_report report;
        Dr_bus.Bus.run ~until bus
      | Error e -> or_die (Error ("recovery failed: " ^ e))
    end;
    List.iter
      (fun inst ->
        Printf.printf "--- %s (%s) ---\n" inst
          (Option.value ~default:"?" (Dr_bus.Bus.instance_host bus ~instance:inst));
        List.iter (Printf.printf "%s\n") (Dr_bus.Bus.outputs bus ~instance:inst))
      (Dr_bus.Bus.instances bus);
    if timeline then print_string (Dr_report.Timeline.render bus);
    (match (metrics, registry) with
    | Some path, Some r ->
      let now = Dr_bus.Bus.now bus in
      print_string (Dr_report.Obs_report.render ~now r);
      let oc = open_out path in
      output_string oc (Dr_obs.Metrics.snapshot_json ~now r);
      output_char oc '\n';
      close_out oc;
      Printf.printf "metrics snapshot written to %s\n" path
    | _ -> ());
    if trace then Fmt.pr "%a" Dr_sim.Trace.dump (Dr_bus.Bus.trace bus)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Deploy an application and simulate it.")
    Term.(
      const run $ mil_arg $ srcs_arg $ app_arg $ until_arg $ hosts_arg
      $ shards_arg $ migrate_arg $ precopy_arg $ retry_arg $ backoff_arg
      $ faults_arg $ reliable_arg $ trace_arg $ timeline_arg $ metrics_arg
      $ wal_arg)

let inspect_cmd =
  let run file =
    match Dr_reconfig.Freeze.load ~path:file with
    | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
    | Ok frozen -> (
      match Dr_state.Codec.decode_abstract frozen with
      | Error e ->
        prerr_endline ("error: corrupt image: " ^ e);
        exit 1
      | Ok image ->
        Fmt.pr "%a@." Dr_state.Image.pp image;
        Fmt.pr "abstract encoding: %d byte(s)@." (Bytes.length frozen);
        List.iter
          (fun arch ->
            match Dr_state.Codec.Native.encode arch image with
            | Ok bytes ->
              Fmt.pr "native %-8s %d byte(s)@." arch.Dr_state.Arch.arch_name
                (Bytes.length bytes)
            | Error e ->
              Fmt.pr "native %-8s unrepresentable: %s@."
                arch.Dr_state.Arch.arch_name e)
          Dr_state.Arch.all)
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"IMAGE"
           ~doc:"Frozen state image file (see Freeze.save).")
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Describe a frozen state image.")
    Term.(const run $ file)

(* -------------------------------------------------------------- recover *)

let recover_cmd =
  let run dir verbose =
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      or_die (Error (Printf.sprintf "%s: not a directory" dir));
    let storage = Dr_wal.Storage.file ~dir in
    let wal =
      match Dr_wal.Wal.create storage with
      | Ok wal -> wal
      | Error e -> or_die (Error e)
    in
    let r = Dr_wal.Wal.open_report wal in
    Printf.printf
      "control log: %d segment(s), %d live record(s), checkpoint lsn %d, \
       last lsn %d\n"
      r.or_segments r.or_records
      (Dr_wal.Wal.checkpoint_lsn wal)
      r.or_last_lsn;
    if r.or_truncated_bytes > 0 then
      Printf.printf "torn tail: %d byte(s) truncated\n" r.or_truncated_bytes;
    (match Dr_wal.Wal.check_invariants wal with
    | Ok () -> ()
    | Error e -> or_die (Error ("invariant violation: " ^ e)));
    if verbose then
      List.iter
        (fun (lsn, kind, body) ->
          match Dr_reconfig.Persist.decode ~kind body with
          | Ok record ->
            Printf.printf "%6d  %s\n" lsn (Dr_reconfig.Persist.describe record)
          | Error e -> or_die (Error (Printf.sprintf "lsn %d: %s" lsn e)))
        (Dr_wal.Wal.records wal);
    match Dr_reconfig.Recovery.scan wal with
    | Error e -> or_die (Error e)
    | Ok scripts ->
      List.iter
        (fun (s : Dr_reconfig.Recovery.script) ->
          Printf.printf "script #%d %-24s %d step(s)  %s\n" s.sc_sid
            s.sc_label
            (List.length s.sc_entries)
            (match s.sc_status with
            | Dr_reconfig.Recovery.Committed -> "committed"
            | Dr_reconfig.Recovery.Aborted -> "aborted (rollback complete)"
            | Dr_reconfig.Recovery.Rolling_back { undone; reason } ->
              Printf.sprintf
                "MID-ROLLBACK (%d/%d step(s) undone): %s — replay resumes it"
                undone
                (List.length s.sc_entries)
                reason
            | Dr_reconfig.Recovery.In_flight ->
              "IN FLIGHT — replay rolls it back"))
        scripts;
      let pending =
        List.filter
          (fun (s : Dr_reconfig.Recovery.script) ->
            match s.sc_status with
            | Dr_reconfig.Recovery.In_flight
            | Dr_reconfig.Recovery.Rolling_back _ ->
              true
            | _ -> false)
          scripts
      in
      if pending = [] then print_endline "log is clean: nothing to recover"
      else
        Printf.printf "%d script(s) need recovery (run with --wal to replay)\n"
          (List.length pending)
  in
  let dir =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Control-log directory (as given to --wal).")
  in
  let verbose =
    Arg.(value & flag & info [ "records" ] ~doc:"Print every live record.")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Audit a control log: verify checksums and invariants, heal a torn \
          tail, and report per-script status (committed, aborted, in flight, \
          mid-rollback).")
    Term.(const run $ dir $ verbose)

(* ----------------------------------------------------------------- roll *)

(* A self-contained rolling-replacement demo over the bundled replica
   workload: the canary judgement needs live traffic recorded into the
   Rolling metric contract, so the command deploys the kvstore replica
   group and its load generator rather than an arbitrary --mil app. *)
let roll_cmd =
  let run replicas rate target retry backoff drain window precopy supervise
      faults wal =
    let module Kv = Dr_workloads.Kvstore in
    let module Rolling = Dr_reconfig.Rolling in
    let n = replicas in
    let system = Kv.Replica.load ~n in
    let bus =
      match
        Dynrecon.System.start system ~app:"rgroup" ~hosts:(Kv.Replica.hosts ~n)
          ~default_host:"rh1" ()
      with
      | Ok bus -> bus
      | Error e -> or_die (Error e)
    in
    Option.iter (attach_wal bus) wal;
    (match faults with
    | None -> ()
    | Some spec -> (
      match Dr_bus.Faults.parse_plan spec with
      | Ok (seed, plan) -> Dr_bus.Faults.install bus ~seed plan
      | Error e -> or_die (Error e)));
    let group = Kv.Replica.group ~n in
    let supervisor =
      if supervise then
        Some
          (Dr_reconfig.Supervisor.start bus ~watch:(List.map snd group) ())
      else None
    in
    let lg =
      Kv.Loadgen.start bus
        { Kv.Loadgen.default_conf with lc_rate = rate; lc_duration = 500.0 }
        ~slots:group
    in
    Dr_bus.Bus.run ~until:10.0 bus;
    let cfg =
      { (Rolling.default_config ~target) with
        rc_drain_timeout = drain;
        rc_canary_window = window;
        rc_precopy = precopy;
        rc_retries = Option.value retry ~default:3;
        rc_backoff = Option.value backoff ~default:2000.0 /. 1000.0 }
    in
    Printf.printf "rolling %d replica(s) to %s...\n" n target;
    (match
       Rolling.run bus cfg ~group ?supervisor
         ~on_retarget:(fun ~slot ~instance ->
           Kv.Loadgen.retarget lg ~slot ~instance)
         ()
     with
    | Ok report -> Fmt.pr "%a@." Rolling.pp_report report
    | Error e when Dr_bus.Bus.controller_down bus -> (
      Printf.printf "wave interrupted: %s\n" e;
      match Rolling.recover bus with
      | Error e -> or_die (Error ("recovery failed: " ^ e))
      | Ok (report, waves) ->
        Fmt.pr "recovery: %a@." Dr_reconfig.Recovery.pp_report report;
        List.iter
          (fun (w : Dr_reconfig.Recovery.wave) ->
            Printf.printf "wave #%d -> %s: %s, %d slot(s) done\n" w.wv_wid
              w.wv_target
              (match w.wv_status with
              | Dr_reconfig.Recovery.Wave_committed -> "committed"
              | Dr_reconfig.Recovery.Wave_aborted r -> "aborted (" ^ r ^ ")"
              | Dr_reconfig.Recovery.Wave_open ->
                "open — roster held, re-roll at your discretion")
              (List.length w.wv_done))
          waves)
    | Error e -> or_die (Error e));
    Kv.Loadgen.stop lg;
    Dr_bus.Bus.run ~until:(Dr_bus.Bus.now bus +. 30.0) bus;
    let s = Kv.Loadgen.stats lg in
    Printf.printf
      "traffic: %d sent, %d answered, %d wrong, %d shed, %d duplicated, %d \
       in flight\n"
      s.st_sent s.st_answered s.st_wrong s.st_shed s.st_duplicated
      s.st_inflight;
    if s.st_inflight <> 0 || s.st_sent <> s.st_answered + s.st_shed then
      or_die (Error "request accounting violated (lost traffic)")
  in
  let replicas =
    Arg.(
      value
      & opt (positive_int_conv ~flag:"--replicas") 3
      & info [ "replicas" ] ~docv:"N" ~doc:"Replica-group size (default 3).")
  in
  let rate =
    Arg.(
      value & opt float 4.0
      & info [ "rate" ] ~docv:"R"
          ~doc:"Client request rate, requests per unit of virtual time.")
  in
  let target =
    Arg.(
      value & opt string "rstorev2"
      & info [ "target" ] ~docv:"MODULE"
          ~doc:
            "Module to roll the group to: $(b,rstorev2) (the good v2 \
             build) or $(b,rstorebad) (the deliberately-bad canary \
             build, to watch the SLO gates roll it back).")
  in
  let drain =
    Arg.(
      value & opt float 6.0
      & info [ "drain" ] ~docv:"T"
          ~doc:"Drain timeout per replica, virtual time.")
  in
  let window =
    Arg.(
      value & opt float 8.0
      & info [ "window" ] ~docv:"T"
          ~doc:"Canary observation window, virtual time.")
  in
  let supervise =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Start a crash supervisor over the group; the wave adopts \
             each new generation so supervision survives the upgrades.")
  in
  Cmd.v
    (Cmd.info "roll"
       ~doc:
         "Roll a live replica group to a new build: drain, replace, \
          canary under SLO gates, rollback on failure — a demo of the \
          autonomic rolling-replacement controller over the bundled \
          kvstore replica workload.")
    Term.(
      const run $ replicas $ rate $ target $ retry_arg $ backoff_arg $ drain
      $ window $ precopy_arg $ supervise $ faults_arg $ wal_arg)

(* ----------------------------------------------------------------- exec *)

let exec_cmd =
  let run file max_steps faults trace retry backoff =
    let program = or_die (parse_program_file file) in
    (match Dr_lang.Typecheck.check program with
    | Ok () -> ()
    | Error errors ->
      List.iter
        (fun e -> Fmt.epr "error: %a@." Dr_lang.Typecheck.pp_error e)
        errors;
      exit 1);
    let crash_at =
      match faults with
      | None -> None
      | Some spec -> (
        match Scanf.sscanf_opt spec "kill@%d" (fun n -> n) with
        | Some n when n > 0 -> Some n
        | _ ->
          or_die (Error (Printf.sprintf "bad --faults %S: expected kill@N" spec)))
    in
    let attempts = Option.value retry ~default:1 in
    let backoff_ms = Option.value backoff ~default:1000.0 in
    let one_attempt () =
      let io = Dr_interp.Io_intf.null ~print:print_endline () in
      let machine = Dr_interp.Machine.create ~io program in
      let executed = ref 0 in
      if trace || Option.is_some crash_at then
        Dr_interp.Machine.set_tracer machine
          (Some
             (fun proc pc instr ->
               incr executed;
               (match crash_at with
               | Some n when !executed = n ->
                 Dr_interp.Machine.force_crash machine "injected crash"
               | _ -> ());
               if trace then
                 Fmt.epr "[trace] %-12s %4d  %a@." proc pc Dr_interp.Ir.pp_instr
                   instr));
      Dr_interp.Machine.run ~max_steps machine;
      machine
    in
    let rec go attempt =
      let machine = one_attempt () in
      (match Dr_interp.Machine.status machine with
      | Dr_interp.Machine.Crashed reason when attempt < attempts ->
        (* exponential backoff, wall clock: standalone execution has no
           virtual clock to wait on *)
        let delay_ms = backoff_ms *. (2.0 ** float_of_int (attempt - 1)) in
        Fmt.pr "[attempt %d/%d crashed: %s; retrying in %g ms]@." attempt
          attempts reason delay_ms;
        Unix.sleepf (delay_ms /. 1000.0);
        go (attempt + 1)
      | _ ->
        Fmt.pr "[%a after %d instruction(s)%s]@." Dr_interp.Machine.pp_status
          (Dr_interp.Machine.status machine)
          (Dr_interp.Machine.instr_count machine)
          (if attempt > 1 then Printf.sprintf ", attempt %d/%d" attempt attempts
           else ""))
    in
    go 1
  in
  let max_steps =
    Arg.(
      value & opt int 10_000_000
      & info [ "max-steps" ] ~docv:"N" ~doc:"Instruction budget.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print each executed instruction.")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"kill@N"
          ~doc:"Inject a crash after N executed instructions.")
  in
  Cmd.v
    (Cmd.info "exec" ~doc:"Run a single module standalone (no bus).")
    Term.(
      const run $ file_arg $ max_steps $ faults $ trace $ retry_arg
      $ backoff_arg)

(* ------------------------------------------------------------------- mc *)

(* Systematic state-space exploration of the checked configuration
   catalogue (Dr_mc.Configs), and replay of recorded counterexample
   schedules. *)
let mc_cmd =
  let module Explorer = Dr_mc.Explorer in
  let module Configs = Dr_mc.Configs in
  let run config_name mode depth max_execs list repro trace_dump =
    if list then begin
      List.iter print_endline Configs.names;
      exit 0
    end;
    let parse_mode = function
      | "naive" -> Explorer.Naive
      | "sleep" -> Explorer.Sleep
      | "dpor" -> Explorer.Dpor
      | m -> or_die (Error (Printf.sprintf "unknown mode %S" m))
    in
    let get_config name =
      match Configs.by_name name with
      | Some cfg -> cfg
      | None ->
        or_die
          (Error
             (Printf.sprintf "unknown config %S (try: %s)" name
                (String.concat ", " Configs.names)))
    in
    match repro with
    | Some path -> (
      let text = read_file path in
      match Explorer.schedule_of_string text with
      | Error e -> or_die (Error (path ^ ": " ^ e))
      | Ok (header_name, tokens) ->
        let name =
          match (config_name, header_name) with
          | Some n, _ -> n  (* explicit flag wins over the file header *)
          | None, Some n -> n
          | None, None ->
            or_die
              (Error "schedule has no `config NAME` header; pass --config")
        in
        let cfg = get_config name in
        Printf.printf "replaying %d-choice schedule against %s\n"
          (List.length tokens) name;
        let r = Explorer.replay cfg tokens in
        Printf.printf "end: %s\n" r.Explorer.rp_end;
        (match r.Explorer.rp_violation with
        | Some v ->
          Printf.printf "VIOLATION [%s] %s\n" v.Dr_mc.Monitor.v_monitor
            v.Dr_mc.Monitor.v_detail
        | None -> Printf.printf "no monitor fired\n");
        (match r.Explorer.rp_run with
        | Some run when trace_dump ->
          print_endline "--- trace ---";
          Fmt.pr "%a@." Dr_sim.Trace.dump
            (Dr_bus.Bus.trace run.Explorer.r_bus)
        | _ -> ());
        if r.Explorer.rp_violation <> None then exit 1)
    | None ->
      let name = Option.value config_name ~default:"single-replace" in
      let cfg = get_config name in
      let cfg =
        { cfg with
          Explorer.c_depth = Option.value depth ~default:cfg.Explorer.c_depth;
          c_max_execs =
            Option.value max_execs ~default:cfg.Explorer.c_max_execs }
      in
      let r = Explorer.explore ~mode:(parse_mode mode) cfg in
      Fmt.pr "%a" Explorer.pp_result r;
      List.iter
        (fun ((v : Dr_mc.Monitor.violation), sched) ->
          Printf.printf
            "\nsave the schedule below and re-run it with `drc mc --repro \
             FILE`:\n%s"
            (Explorer.schedule_to_string ~config_name:name sched);
          ignore v)
        r.Explorer.res_violations;
      if r.Explorer.res_violations <> [] then exit 1
  in
  let config_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "config" ] ~docv:"NAME"
          ~doc:"Checked configuration (see --list).")
  in
  let mode_arg =
    Arg.(
      value & opt string "dpor"
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Reduction tier: naive, sleep, or dpor.")
  in
  let depth_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "depth" ] ~docv:"N" ~doc:"Override the per-execution depth bound.")
  in
  let max_execs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-execs" ] ~docv:"N" ~doc:"Override the execution cap.")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List checked configurations.")
  in
  let repro_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "repro" ] ~docv:"FILE"
          ~doc:
            "Replay a recorded counterexample schedule instead of exploring.")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ] ~doc:"With --repro: dump the full simulation trace.")
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Model-check a reconfiguration protocol configuration: explore \
          every interleaving (with DPOR reduction), check the delivery / \
          epoch / state-transfer / restart / journal monitors, and replay \
          minimized counterexamples.")
    Term.(
      const run $ config_arg $ mode_arg $ depth_arg $ max_execs_arg $ list_arg
      $ repro_arg $ trace_arg)

let () =
  let info =
    Cmd.info "drc" ~version:"1.0.0"
      ~doc:"Dynamic reconfiguration platform for distributed applications."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ transform_cmd; graph_cmd; callgraph_cmd; advise_cmd; optimize_cmd;
            check_cmd; run_cmd; roll_cmd; exec_cmd; inspect_cmd; recover_cmd; mc_cmd ]))
