(** Crash recovery: rebuild the reconfiguration journal from the
    control log and finish what the dead controller started.

    The crash model is the controller's, not the fleet's: an armed
    [ctlcrash@N] fault ({!Dr_bus.Bus.arm_ctl_crash}) kills the
    controller between a durable control record and the next journalled
    primitive, while the application modules keep running. {!replay}
    reads the durable records back ({!Dr_wal.Wal.records}), restarts
    the controller, and — for every script the log leaves unterminated —
    restores its journal and rolls it back: a script with no terminator
    is fully undone, a script whose [Abort] landed but whose
    [Abort_done] did not resumes its rollback exactly where it stopped
    (the logged [Undo_done] steps are skipped, the [i/N] numbering is
    preserved). Committed and fully-aborted scripts need nothing. The
    log is then checkpointed, so the next restart replays only what
    comes after. *)

(** What the log says happened to one script. *)
type status =
  | Committed  (** terminated cleanly; nothing to do *)
  | Aborted  (** rollback ran to completion before the log ended *)
  | Rolling_back of { undone : int; reason : string }
      (** [Abort] logged, [undone] [Undo_done] steps followed, no
          [Abort_done] — the controller died mid-rollback *)
  | In_flight  (** no terminator at all — died mid-script *)

type script = {
  sc_sid : int;
  sc_label : string;
  sc_entries : Journal.entry list;  (** application order *)
  sc_status : status;
}

val scan : Dr_wal.Wal.t -> (script list, string) result
(** Decode and validate the durable control records from the checkpoint
    on, grouped per script in first-[Begin] order. Fails loudly — never
    guesses — on a record that does not decode, a record for an unknown
    script id, an entry after a terminator, an [Undo_done] out of
    sequence, or a duplicate [Begin]. Wave records
    ({!Persist.is_wave_kind}) are skipped — see {!waves}. *)

(** {1 Rolling waves}

    The wave records a {!Rolling} controller logs around its per-replica
    scripts. They share the WAL but form their own, coarser grammar. *)

type wave_status =
  | Wave_committed
  | Wave_aborted of string
  | Wave_open  (** no terminator — the controller died mid-wave *)

type wave = {
  wv_wid : int;
  wv_target : string;  (** module each slot is being upgraded to *)
  wv_group : (string * string) list;
      (** [(slot, instance at wave start)] for every member *)
  wv_done : (string * string) list;
      (** [(slot, new instance)] for slots whose canary committed,
          in completion order *)
  wv_status : wave_status;
}

val waves : Dr_wal.Wal.t -> (wave list, string) result
(** Decode and validate the wave records from the checkpoint on, in
    begin order. Call {e before} {!replay} — replay ends by
    checkpointing the log, which garbage-collects wave records along
    with everything else. *)

type report = {
  rp_records : int;  (** control records replayed *)
  rp_scripts : int;  (** scripts seen on the log *)
  rp_committed : int;
  rp_aborted : int;  (** rollbacks already complete on the log *)
  rp_rolled_back : int;  (** in-flight scripts rolled back by replay *)
  rp_resumed : int;  (** mid-rollback scripts resumed by replay *)
}

val replay : Dr_bus.Bus.t -> (report, string) result
(** Recover the controller of [bus] from its attached control log
    ({!Dr_bus.Bus.set_wal} must have been called). Idempotent: a log
    with no unterminated scripts recovers to a no-op. [Error] when no
    log is attached or {!scan} rejects the log. *)

val pp_report : Format.formatter -> report -> unit
