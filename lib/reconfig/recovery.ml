module Bus = Dr_bus.Bus
module Wal = Dr_wal.Wal

type status =
  | Committed
  | Aborted
  | Rolling_back of { undone : int; reason : string }
  | In_flight

type script = {
  sc_sid : int;
  sc_label : string;
  sc_entries : Journal.entry list;
  sc_status : status;
}

(* mutable accumulator while walking the log *)
type acc = {
  a_sid : int;
  a_label : string;
  mutable a_entries : Persist.entry list;  (* newest first *)
  mutable a_committed : bool;
  mutable a_abort : string option;
  mutable a_undone : int;
  mutable a_abort_done : bool;
}

let scan wal =
  let scripts : (int, acc) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  (* pre-copy bases seen so far, keyed by image digest: a Divulged_delta
     is resolved to a full Divulged entry the moment it is read (its
     base always precedes it in log order), so everything downstream of
     scan — undo, inspection — works on complete images *)
  let bases : (int64, Dr_state.Image.t) Hashtbl.t = Hashtbl.create 4 in
  let fail fmt = Format.kasprintf (fun s -> failwith s) fmt in
  let resolve_entry lsn (entry : Persist.entry) =
    match entry with
    | Persist.Precopy_base { pb_image; _ } ->
      Hashtbl.replace bases (Dr_state.Image.digest pb_image) pb_image;
      entry
    | Persist.Divulged_delta { dd_cap; dd_delta } -> (
      match Hashtbl.find_opt bases dd_delta.Dr_state.Image.d_base_digest with
      | None ->
        fail "lsn %d: delta divulge of %s references unknown base %016Lx" lsn
          dd_cap.Primitives.cap_instance dd_delta.Dr_state.Image.d_base_digest
      | Some base -> (
        match Dr_state.Image.apply_delta ~base dd_delta with
        | Some image -> Persist.Divulged { d_cap = dd_cap; d_image = image }
        | None ->
          fail "lsn %d: delta divulge of %s does not apply to base %016Lx" lsn
            dd_cap.Primitives.cap_instance
            dd_delta.Dr_state.Image.d_base_digest))
    | _ -> entry
  in
  let lookup ~what lsn sid =
    match Hashtbl.find_opt scripts sid with
    | Some a -> a
    | None -> fail "lsn %d: %s for unknown script #%d" lsn what sid
  in
  let terminated a = a.a_committed || a.a_abort_done in
  try
    List.iter
      (fun (lsn, kind, body) ->
        (* wave records share the log but not the per-script grammar;
           they are Rolling.waves's concern *)
        if Persist.is_wave_kind kind then ()
        else
        match Persist.decode ~kind body with
        | Error e -> fail "lsn %d: %s" lsn e
        | Ok record -> (
          match record with
          | Persist.Wave_begin _ | Persist.Wave_replica_done _
          | Persist.Wave_commit _ | Persist.Wave_abort _ ->
            assert false (* filtered by kind above *)
          | Persist.Begin { sid; label } ->
            if Hashtbl.mem scripts sid then
              fail "lsn %d: duplicate begin for script #%d" lsn sid;
            Hashtbl.replace scripts sid
              { a_sid = sid;
                a_label = label;
                a_entries = [];
                a_committed = false;
                a_abort = None;
                a_undone = 0;
                a_abort_done = false };
            order := sid :: !order
          | Persist.Entry { sid; entry } ->
            let a = lookup ~what:"entry" lsn sid in
            if terminated a then
              fail "lsn %d: entry after terminator for script #%d" lsn sid;
            if Option.is_some a.a_abort then
              fail "lsn %d: entry during rollback of script #%d" lsn sid;
            a.a_entries <- resolve_entry lsn entry :: a.a_entries
          | Persist.Commit { sid } ->
            let a = lookup ~what:"commit" lsn sid in
            if terminated a || Option.is_some a.a_abort then
              fail "lsn %d: commit of finished script #%d" lsn sid;
            a.a_committed <- true
          | Persist.Abort { sid; reason } ->
            let a = lookup ~what:"abort" lsn sid in
            if terminated a || Option.is_some a.a_abort then
              fail "lsn %d: abort of finished script #%d" lsn sid;
            a.a_abort <- Some reason
          | Persist.Undo_done { sid; index } ->
            let a = lookup ~what:"undo-done" lsn sid in
            if terminated a then
              fail "lsn %d: undo-done after terminator for script #%d" lsn sid;
            if Option.is_none a.a_abort then
              fail "lsn %d: undo-done outside rollback of script #%d" lsn sid;
            let expected = List.length a.a_entries - a.a_undone in
            if index <> expected then
              fail "lsn %d: undo-done step %d of script #%d, expected %d" lsn
                index sid expected;
            a.a_undone <- a.a_undone + 1
          | Persist.Abort_done { sid } ->
            let a = lookup ~what:"abort-done" lsn sid in
            if terminated a then
              fail "lsn %d: abort-done after terminator for script #%d" lsn sid;
            if Option.is_none a.a_abort then
              fail "lsn %d: abort-done outside rollback of script #%d" lsn sid;
            a.a_abort_done <- true))
      (Wal.records wal);
    Ok
      (List.rev_map
         (fun sid ->
           let a = Hashtbl.find scripts sid in
           { sc_sid = a.a_sid;
             sc_label = a.a_label;
             sc_entries = List.rev a.a_entries;
             sc_status =
               (if a.a_committed then Committed
                else
                  match a.a_abort with
                  | None -> In_flight
                  | Some reason ->
                    if a.a_abort_done then Aborted
                    else Rolling_back { undone = a.a_undone; reason }) })
         !order)
  with
  | Failure e -> Error e
  | Invalid_argument e -> Error e (* Wal.records on a damaged log *)

(* ------------------------------------------------------------- waves *)

type wave_status = Wave_committed | Wave_aborted of string | Wave_open

type wave = {
  wv_wid : int;
  wv_target : string;
  wv_group : (string * string) list;
  wv_done : (string * string) list;
  wv_status : wave_status;
}

type wacc = {
  wa_wid : int;
  wa_target : string;
  wa_group : (string * string) list;
  mutable wa_done : (string * string) list;  (* newest first *)
  mutable wa_status : wave_status;
}

let waves wal =
  let tbl : (int, wacc) Hashtbl.t = Hashtbl.create 4 in
  let order = ref [] in
  let fail fmt = Format.kasprintf (fun s -> failwith s) fmt in
  let lookup ~what lsn wid =
    match Hashtbl.find_opt tbl wid with
    | Some a -> a
    | None -> fail "lsn %d: %s for unknown wave #%d" lsn what wid
  in
  try
    List.iter
      (fun (lsn, kind, body) ->
        if not (Persist.is_wave_kind kind) then ()
        else
          match Persist.decode ~kind body with
          | Error e -> fail "lsn %d: %s" lsn e
          | Ok (Persist.Wave_begin { wid; w_group; w_target }) ->
            if Hashtbl.mem tbl wid then
              fail "lsn %d: duplicate begin for wave #%d" lsn wid;
            Hashtbl.replace tbl wid
              { wa_wid = wid; wa_target = w_target; wa_group = w_group;
                wa_done = []; wa_status = Wave_open };
            order := wid :: !order
          | Ok (Persist.Wave_replica_done { wid; wr_slot; wr_instance }) ->
            let a = lookup ~what:"replica-done" lsn wid in
            if a.wa_status <> Wave_open then
              fail "lsn %d: replica-done after terminator for wave #%d" lsn wid;
            if not (List.mem_assoc wr_slot a.wa_group) then
              fail "lsn %d: replica-done for unknown slot %s of wave #%d" lsn
                wr_slot wid;
            a.wa_done <- (wr_slot, wr_instance) :: a.wa_done
          | Ok (Persist.Wave_commit { wid }) ->
            let a = lookup ~what:"commit" lsn wid in
            if a.wa_status <> Wave_open then
              fail "lsn %d: commit of finished wave #%d" lsn wid;
            a.wa_status <- Wave_committed
          | Ok (Persist.Wave_abort { wid; w_reason }) ->
            let a = lookup ~what:"abort" lsn wid in
            if a.wa_status <> Wave_open then
              fail "lsn %d: abort of finished wave #%d" lsn wid;
            a.wa_status <- Wave_aborted w_reason
          | Ok _ -> assert false (* is_wave_kind filtered *))
      (Wal.records wal);
    Ok
      (List.rev_map
         (fun wid ->
           let a = Hashtbl.find tbl wid in
           { wv_wid = a.wa_wid;
             wv_target = a.wa_target;
             wv_group = a.wa_group;
             wv_done = List.rev a.wa_done;
             wv_status = a.wa_status })
         !order)
  with
  | Failure e -> Error e
  | Invalid_argument e -> Error e

type report = {
  rp_records : int;
  rp_scripts : int;
  rp_committed : int;
  rp_aborted : int;
  rp_rolled_back : int;
  rp_resumed : int;
}

let record bus fmt =
  Format.kasprintf
    (fun detail ->
      Dr_sim.Trace.record (Bus.trace bus) ~time:(Bus.now bus)
        ~category:"recover" ~detail)
    fmt

let replay bus =
  match Bus.wal bus with
  | None -> Error "no control log attached to this bus"
  | Some wal -> (
    match scan wal with
    | Error _ as e -> e
    | Ok scripts ->
      let rp_records = List.length (Wal.records wal) in
      Bus.recover_controller bus;
      List.iter (fun s -> Bus.note_script_id bus s.sc_sid) scripts;
      let count p = List.length (List.filter p scripts) in
      let pending =
        (* newest first: concurrent scripts unwind LIFO, mirroring how a
           live controller nests them *)
        List.sort
          (fun a b -> compare b.sc_sid a.sc_sid)
          (List.filter
             (fun s ->
               match s.sc_status with
               | In_flight | Rolling_back _ -> true
               | Committed | Aborted -> false)
             scripts)
      in
      record bus
        "replaying %d control record(s): %d script(s), %d unterminated"
        rp_records (List.length scripts) (List.length pending);
      (* account the scripts we are about to unwind as open, so the
         checkpoint policy cannot garbage-collect one script's records
         while a sibling is still mid-rollback *)
      List.iter (fun _ -> Bus.ctl_script_opened bus) pending;
      let rolled = ref 0 and resumed = ref 0 in
      List.iter
        (fun s ->
          let j =
            Journal.restore bus ~label:s.sc_label ~sid:s.sc_sid
              ~entries:s.sc_entries
          in
          match s.sc_status with
          | In_flight ->
            incr rolled;
            Journal.rollback j ~reason:"controller crashed"
          | Rolling_back { undone; reason } ->
            incr resumed;
            Journal.resume_rollback j ~reason ~already_undone:undone
              ~abort_logged:true
          | Committed | Aborted -> assert false)
        pending;
      Wal.checkpoint wal;
      record bus "recovery complete: log checkpointed at lsn %d"
        (Wal.checkpoint_lsn wal);
      Ok
        { rp_records;
          rp_scripts = List.length scripts;
          rp_committed = count (fun s -> s.sc_status = Committed);
          rp_aborted = count (fun s -> s.sc_status = Aborted);
          rp_rolled_back = !rolled;
          rp_resumed = !resumed })

let pp_report ppf r =
  Format.fprintf ppf
    "%d record(s), %d script(s): %d committed, %d aborted, %d rolled back, %d \
     resumed"
    r.rp_records r.rp_scripts r.rp_committed r.rp_aborted r.rp_rolled_back
    r.rp_resumed
