module Bus = Dr_bus.Bus
module Codec = Dr_state.Codec
module Machine = Dr_interp.Machine

(* A crashed, halted or removed instance can never reach a
   reconfiguration point; waiting on one would spin the full event
   budget while unrelated processes keep generating events. *)
let doomed bus ~instance =
  match Bus.process_status bus ~instance with
  | Some (Machine.Crashed _) | Some Machine.Halted | None -> true
  | Some _ -> false

let doom_error bus ~instance ~waiting_for =
  match Bus.process_status bus ~instance with
  | Some (Machine.Crashed message) ->
    Some
      (Printf.sprintf "%s crashed before %s: %s" instance waiting_for message)
  | Some Machine.Halted ->
    Some (Printf.sprintf "%s halted before %s" instance waiting_for)
  | None -> Some (Printf.sprintf "%s was removed before %s" instance waiting_for)
  | Some _ -> None

let freeze bus ~instance ?(max_events = 1_000_000) () =
  match Bus.instance_module bus ~instance with
  | None -> Error (Printf.sprintf "no such instance %s" instance)
  | Some _ ->
    let result = ref None in
    Bus.on_divulge bus ~instance (fun image -> result := Some image);
    Bus.signal_reconfig bus ~instance;
    Bus.run_while bus ~max_events (fun () ->
        Option.is_none !result && not (doomed bus ~instance));
    (match !result with
    | None ->
      let waiting_for = "reaching a reconfiguration point" in
      Error
        (match doom_error bus ~instance ~waiting_for with
        | Some e -> e
        | None ->
          Printf.sprintf
            "%s did not reach a reconfiguration point within the event budget"
            instance)
    | Some image ->
      Bus.kill bus ~instance;
      Ok (Codec.encode_abstract image))

let thaw bus ~instance ~module_name ~host ?spec frozen =
  match Codec.decode_abstract frozen with
  | Error e -> Error (Printf.sprintf "frozen state is corrupt: %s" e)
  | Ok image -> (
    match Bus.spawn bus ~instance ~module_name ~host ?spec ~status:"clone" () with
    | Error _ as e -> e
    | Ok () ->
      Bus.deposit_state bus ~instance image;
      Ok ())

let save ~path frozen =
  try
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_bytes oc frozen);
    Ok ()
  with Sys_error e -> Error e

let load ~path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (Bytes.of_string (really_input_string ic (in_channel_length ic))))
  with Sys_error e -> Error e
