module Image = Dr_state.Image
module Codec = Dr_state.Codec

type module_cap = {
  cap_instance : string;
  cap_module : string;
  cap_host : string;
  cap_spec : Dr_mil.Spec.module_spec option;
  cap_ifaces : string list;
  cap_out_routes : (Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint) list;
  cap_in_routes : (Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint) list;
}

let obj_cap bus ~instance =
  match Dr_bus.Bus.instance_module bus ~instance with
  | None -> Error (Printf.sprintf "no such instance %s" instance)
  | Some module_name ->
    let host = Option.get (Dr_bus.Bus.instance_host bus ~instance) in
    let spec = Dr_bus.Bus.instance_spec bus ~instance in
    let out_routes, in_routes =
      List.partition
        (fun ((src, _dst) : Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint) ->
          String.equal (fst src) instance)
        (List.filter
           (fun ((src, dst) : Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint) ->
             String.equal (fst src) instance || String.equal (fst dst) instance)
           (Dr_bus.Bus.all_routes bus))
    in
    let ifaces =
      match spec with
      | Some s -> List.map (fun i -> i.Dr_mil.Spec.if_name) s.ifaces
      | None ->
        List.sort_uniq String.compare
          (List.map (fun ((src : Dr_bus.Bus.endpoint), _) -> snd src) out_routes
          @ List.map (fun (_, (dst : Dr_bus.Bus.endpoint)) -> snd dst) in_routes)
    in
    Ok
      { cap_instance = instance;
        cap_module = module_name;
        cap_host = host;
        cap_spec = spec;
        cap_ifaces = ifaces;
        cap_out_routes = out_routes;
        cap_in_routes = in_routes }

type bind_command =
  | Add of Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint
  | Del of Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint
  | Copy_queue of Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint
  | Remove_queue of Dr_bus.Bus.endpoint

type bind_batch = { mutable commands : bind_command list }

let bind_cap () = { commands = [] }

let edit_bind batch command = batch.commands <- batch.commands @ [ command ]

let batch_commands batch = batch.commands

let rebind bus batch =
  List.iter
    (fun command ->
      match command with
      | Add (src, dst) -> Dr_bus.Bus.add_route bus ~src ~dst
      | Del (src, dst) -> Dr_bus.Bus.del_route bus ~src ~dst
      | Copy_queue (src, dst) -> Dr_bus.Bus.copy_queue bus ~src ~dst
      | Remove_queue ep -> Dr_bus.Bus.drop_queue bus ep)
    batch.commands

let objstate_move bus ~old_instance ~deliver () =
  Dr_bus.Bus.on_divulge bus ~instance:old_instance deliver;
  Dr_bus.Bus.signal_reconfig bus ~instance:old_instance

let translate_image bus ?for_instance ~src_host ~dst_host image =
  match Dr_bus.Bus.find_host bus src_host, Dr_bus.Bus.find_host bus dst_host with
  | Some src, Some dst -> (
    match Codec.Native.encode src.arch image with
    | Error e -> Error e
    | Ok native_src ->
      (* an armed [Image_corrupt] fault flips a byte of the native
         wire image here — between capture and translation, where real
         corruption would strike; the codec's checksum must catch it *)
      let native_src =
        match for_instance with
        | Some instance
          when Dr_bus.Bus.consume_image_corruption bus ~instance ->
          let corrupted = Bytes.copy native_src in
          let pos = Bytes.length corrupted / 2 in
          Bytes.set corrupted pos
            (Char.chr (Char.code (Bytes.get corrupted pos) lxor 0x5A));
          corrupted
        | _ -> native_src
      in
      let result =
        let ( let* ) = Result.bind in
        (* [recode] is the zero-copy fast path: when both hosts share
           byte order and word width the native bytes pass through
           untouched — no abstract-tree round trip. The destination
           decode below still verifies the container CRC, so the
           corruption fault above is caught on either path. *)
        let* native_dst =
          Codec.Native.recode ~src:src.arch ~dst:dst.arch native_src
        in
        Codec.Native.decode dst.arch native_dst
      in
      (match result, for_instance with
      | Error reason, Some instance ->
        Dr_bus.Bus.quarantine_image bus ~instance ~reason
          ~byte_size:(Bytes.length native_src)
      | _ -> ());
      result)
  | None, _ -> Error (Printf.sprintf "unknown host %s" src_host)
  | _, None -> Error (Printf.sprintf "unknown host %s" dst_host)

let chg_obj_add bus ~instance ~module_name ~host ?spec ?(status = "normal") () =
  Dr_bus.Bus.spawn bus ~instance ~module_name ~host ?spec ~status ()

let chg_obj_del bus ~instance = Dr_bus.Bus.kill bus ~instance
