module P = Primitives
module Bus = Dr_bus.Bus
module Image = Dr_state.Image
module Codec = Dr_state.Codec
module Metrics = Dr_obs.Metrics
module Machine = Dr_interp.Machine

type outcome = (string, string) result

(* --------------------------------------------------------------- spans *)

(* Disruption-window spans. Each replace/migrate/replicate attempt opens
   a root span at signal time; at divulge time the old machine's
   virtual-time stamps decompose the window into

     signal  — signal sent -> handler frame pushed
     drain   — handler pushed -> first mh_capture (unwinding to a point)
     capture — first mh_capture -> image divulged
     translate — zero-width marker carrying byte sizes
     restore — deposit -> the clone's last mh_restore (lazy: the clone
               executes its restore dispatch after the script returns)

   Span construction reads clocks and machine stamps only — it never
   schedules events or touches the trace, so metrics-on runs replay the
   exact golden event sequence. *)

let open_span bus ~kind ~attrs =
  match Bus.metrics bus with
  | None -> None
  | Some r -> Some (Metrics.span r ~attrs ~kind ~start:(Bus.now bus) ())

let fail_span bus sp reason =
  match sp with
  | None -> ()
  | Some s ->
    Metrics.set_attr s "outcome" "error";
    Metrics.set_attr s "reason" reason;
    Metrics.finish s ~at:(Bus.now bus)

(* Children with concrete times, built at divulge time from the old
   machine's stamps; the restore child (and the root) end lazily when
   the restored machine consumes its last record.

   Pre-copy runs open the root span at the freeze (the old machine's
   capture stamp) rather than at the signal: until the capture block
   ran, the module was still serving — with a warm base already copied
   — so the signal and drain children collapse to zero width. They add
   two zero-width markers: [precopy] (how big the live base snapshot
   was and how long the module kept serving after the request, the
   [wait] attr) and [delta] (how much of the capture actually shipped,
   or why the full image stayed authoritative). The identity total ==
   signal + drain + capture + translate + restore holds in every mode. [retx_wait] is the
   reliable layer's retransmission backoff accumulated inside the
   window — the part of drain that is network stall, not quiescence. *)
let divulge_children bus sp ~t0 ~old_machine ~restored_instance ~bytes_in
    ~bytes_out ?precopy ?delta ?retx_wait () =
  match sp with
  | None -> ()
  | Some s ->
    let t_div = Bus.now bus in
    (* clamp the machine stamps into [t0, t_div]: under pre-copy the
       window origin is the freeze, so the signal/drain phases (which
       happened while the module was still serving) collapse to zero
       width and the identity still tiles *)
    let t_sig =
      Float.max t0 (Option.value ~default:t0 (Machine.signal_handled_at old_machine))
    in
    let t_cap =
      Float.max t_sig
        (Option.value ~default:t_div (Machine.capture_started_at old_machine))
    in
    let interval kind a b =
      Metrics.finish (Metrics.child s ~kind ~start:a ()) ~at:b
    in
    interval "signal" t0 t_sig;
    let dr = Metrics.child s ~kind:"drain" ~start:t_sig () in
    (match retx_wait with
    | Some w when w > 0.0 ->
      Metrics.set_attr dr "retransmit_wait" (Printf.sprintf "%.3f" w);
      (match Bus.metrics bus with
      | Some r -> Metrics.observe r "drain.retransmit" w
      | None -> ())
    | _ -> ());
    Metrics.finish dr ~at:t_cap;
    interval "capture" t_cap t_div;
    (match precopy with
    | Some (base_bytes, base_records, wait) ->
      let pc = Metrics.child s ~kind:"precopy" ~start:t_div () in
      Metrics.set_attr pc "base_bytes" (string_of_int base_bytes);
      Metrics.set_attr pc "base_records" (string_of_int base_records);
      Metrics.set_attr pc "wait" (Printf.sprintf "%.3f" wait);
      Metrics.finish pc ~at:t_div
    | None -> ());
    (match delta with
    | Some (fallback, slots, bytes) ->
      let dc = Metrics.child s ~kind:"delta" ~start:t_div () in
      Metrics.set_attr dc "fallback" fallback;
      Metrics.set_attr dc "delta_slots" (string_of_int slots);
      Metrics.set_attr dc "delta_bytes" (string_of_int bytes);
      Metrics.finish dc ~at:t_div
    | None -> ());
    let tr = Metrics.child s ~kind:"translate" ~start:t_div () in
    Metrics.set_attr tr "bytes_in" (string_of_int bytes_in);
    Metrics.set_attr tr "bytes_out" (string_of_int bytes_out);
    Metrics.finish tr ~at:t_div;
    let rs = Metrics.child s ~kind:"restore" ~start:t_div () in
    Metrics.set_attr s "outcome" "ok";
    match Bus.machine bus ~instance:restored_instance with
    | Some clone ->
      let done_at () = Machine.restore_done_at clone in
      Metrics.finish_with rs done_at;
      Metrics.finish_with s done_at
    | None ->
      Metrics.finish rs ~at:t_div;
      Metrics.finish s ~at:t_div

type retry = { attempts : int; backoff : float; alt_hosts : string list }

let no_retry = { attempts = 1; backoff = 0.0; alt_hosts = [] }

let record bus fmt =
  Format.kasprintf
    (fun detail ->
      Dr_sim.Trace.record (Bus.trace bus) ~time:(Bus.now bus)
        ~category:"script" ~detail)
    fmt

(* The rebinding batch of Fig. 5: for every interface of the old module,
   retarget outgoing and incoming routes to the new instance of the same
   interface name, move pending queues across, and drop the old ones. *)
let rebind_batch (cap : P.module_cap) ~new_instance =
  let batch = P.bind_cap () in
  List.iter
    (fun ((src : Bus.endpoint), dst) ->
      P.edit_bind batch (P.Del (src, dst));
      P.edit_bind batch (P.Add ((new_instance, snd src), dst)))
    cap.cap_out_routes;
  List.iter
    (fun (src, (dst : Bus.endpoint)) ->
      P.edit_bind batch (P.Del (src, dst));
      P.edit_bind batch (P.Add (src, (new_instance, snd dst))))
    cap.cap_in_routes;
  List.iter
    (fun iface ->
      P.edit_bind batch
        (P.Copy_queue ((cap.cap_instance, iface), (new_instance, iface)));
      P.edit_bind batch (P.Remove_queue (cap.cap_instance, iface)))
    cap.cap_ifaces;
  batch

(* Transactional replacement: every primitive goes through a {!Journal};
   a failure at any point — spawn error, translation error, deadline
   expiry while the module travels to its reconfiguration point — rolls
   the journal back, leaving the old configuration fully routed. On the
   success path the journal commits silently, so the trace is exactly
   the Fig. 5 sequence it always was.

   With [~precopy:true] the freeze signal is deferred: a one-shot hook
   parks at the target's next reconfiguration point, snapshots the
   running state there ({!Machine.live_capture}), arms the write
   barrier, and only then signals. The module keeps serving while the
   base image exists elsewhere; the post-freeze capture needs to ship
   only the slots dirtied since — a delta against the base — when the
   move is same-architecture and the stack shape held. Every guard
   failure falls back to the full image, so pre-copy can only shrink
   the window, never change the outcome. *)
let replace bus ?(span_kind = "replace") ?(precopy = false) ~instance
    ~new_instance ?new_module ?new_host ?deadline ?(retry = no_retry) ~on_done
    () =
  let rec attempt n ~host_override =
    let finish outcome =
      match outcome with
      | Ok _ -> on_done outcome
      | Error e when n < retry.attempts ->
        let next_host =
          match retry.alt_hosts with
          | [] -> host_override
          | hosts -> Some (List.nth hosts ((n - 1) mod List.length hosts))
        in
        record bus "replace %s: attempt %d failed (%s); retrying%s in %.1f"
          instance n e
          (match next_host with Some h -> " on " ^ h | None -> "")
          retry.backoff;
        Dr_sim.Engine.schedule
          ~label:
            (Dr_sim.Engine.label
               ~info:(Printf.sprintf "replace %s: retry" instance)
               "ctl")
          (Bus.engine bus)
          ~delay:(Float.max 0.0 retry.backoff)
          (fun () ->
            (* a retry scheduled before the controller died must not run
               as a ghost of it *)
            if not (Bus.controller_down bus) then
              attempt (n + 1) ~host_override:next_host)
      | Error _ -> on_done outcome
    in
    match P.obj_cap bus ~instance with
    | Error e -> finish (Error e)
    | Ok cap0 ->
      let module_name = Option.value ~default:cap0.cap_module new_module in
      let host =
        match host_override with
        | Some h -> h
        | None -> Option.value ~default:cap0.cap_host new_host
      in
      record bus "replace %s: %s on %s -> %s: %s on %s" instance
        cap0.cap_module cap0.cap_host new_instance module_name host;
      let t_req = Bus.now bus in
      let t0 = ref t_req in
      let span_attrs =
        [ ("instance", instance); ("new_instance", new_instance);
          ("module", module_name); ("src_host", cap0.cap_host);
          ("dst_host", host); ("attempt", string_of_int n) ]
        @ if precopy then [ ("precopy", "on") ] else []
      in
      (* in the pre-copy mode the span (and t0) opens at the freeze —
         the wait for the module to pass a point is service, not
         disruption; without pre-copy it opens here, exactly as before *)
      let sp = ref None in
      if not precopy then sp := open_span bus ~kind:span_kind ~attrs:span_attrs;
      let j =
        Journal.create bus
          ~label:(Printf.sprintf "replace %s -> %s" instance new_instance)
      in
      let settled = ref false in
      let conclude outcome =
        if not !settled then begin
          settled := true;
          (match outcome with
          | Error e -> fail_span bus !sp e
          | Ok _ -> ());
          finish outcome
        end
      in
      let disarm_hook () =
        match Bus.machine bus ~instance with
        | Some m -> Machine.set_point_hook m None
        | None -> ()
      in
      let fail e =
        disarm_hook ();
        Journal.rollback j ~reason:e;
        conclude (Error e)
      in
      (* the live base snapshot and how long the module served on after
         the request before reaching a point *)
      let base_info = ref None in
      let retx0 = ref 0.0 in
      let divulge image =
        (* A crash during the deadline rollback unwinds out of the
           journal append before [conclude] can settle the script, so
           [settled] alone cannot fence this continuation: without the
           controller-down check the armed divulge would later drive
           the forward path of a journal that is mid-rollback (found by
           the model checker: single-replace-crash, wal-consistent). *)
        if !settled then ()
        else if Bus.controller_down bus then
          record bus "replace %s: divulge ignored: controller is down"
            instance
        else
          try
          (* the reliable layer's backoff accumulated against the old
             name so far; sampled before the rename hands its channels
             to the clone *)
          let retx_w = Bus.transport_retx_wait bus ~instance -. !retx0 in
          (* Grab the old machine's handle now, before [Journal.kill]
             removes the instance — its virtual-time stamps decompose
             the disruption window after it is gone. *)
          let old_machine = Bus.machine bus ~instance in
          (* Pre-copy accounting: the window opens at the freeze. The
             module served normally — with a warm base already copied
             and dirty tracking armed — right up to the moment its
             capture block ran; shifting that service time out of the
             window is the entire point of pre-copy. The pre-freeze
             serving time is reported on the [precopy] marker as
             [wait]. *)
          (if precopy && Option.is_none !sp then
             let t_freeze =
               match old_machine with
               | Some om ->
                 Option.value ~default:(Bus.now bus)
                   (Machine.capture_started_at om)
               | None -> Bus.now bus
             in
             t0 := t_freeze;
             sp :=
               match Bus.metrics bus with
               | None -> None
               | Some r ->
                 Some
                   (Metrics.span r ~attrs:span_attrs ~kind:span_kind
                      ~start:t_freeze ()));
          (* Re-snapshot NOW: other reconfigurations may have rebound
             the module's interfaces while it was travelling to its
             reconfiguration point, and the batch must edit the
             *current* configuration (the paper: obj_cap "corresponds
             to the current configuration, which could have been
             changed dynamically"). *)
          match P.obj_cap bus ~instance with
          | Error e -> fail e
          | Ok cap ->
            let same_arch =
              match Bus.find_host bus cap.cap_host, Bus.find_host bus host with
              | Some s, Some d -> Codec.Native.same_layout s.Bus.arch d.Bus.arch
              | _ -> false
            in
            (* ship a delta only when every guard holds: a base exists,
               the move is same-layout (translate would be identity),
               the stack shape matched the base, the diff is structurally
               sound, and re-applying it reproduces the capture digest.
               Any failure leaves the full image authoritative. *)
            let delta_info =
              match !base_info, old_machine with
              | Some (base, _), Some om when same_arch -> (
                match Machine.delta_basis om with
                | None -> Error "misaligned"
                | Some (masks, heap_dirty) -> (
                  match Image.diff ~base ~masks ~heap_dirty image with
                  | None -> Error "misaligned"
                  | Some d -> (
                    match Image.apply_delta ~base d with
                    | Some applied
                      when
                        Int64.equal (Image.digest applied) (Image.digest image)
                      ->
                      Ok (d, applied)
                    | _ -> Error "misaligned")))
              | Some _, _ when not same_arch -> Error "cross_arch"
              | _ -> Error "disabled"
            in
            Journal.note_divulged
              ?delta:(match delta_info with Ok (d, _) -> Some d | Error _ -> None)
              j ~cap ~image;
            (* end-to-end integrity: the digest taken at capture must
               survive encode/translate/decode, and [deposit_state
               ~expect] re-verifies it at the restore boundary *)
            let d0 = Image.digest image in
            let translated =
              match delta_info with
              | Ok (d, applied) ->
                (* same layout both sides: the delta-applied image is
                   digest-verified against the capture above, so no wire
                   round trip is needed *)
                record bus
                  "replace %s: delta divulge: %d of %d slot(s), %d of %d \
                   byte(s)"
                  instance
                  (List.length d.Image.d_slots)
                  (List.fold_left
                     (fun acc (r : Image.record) -> acc + List.length r.values)
                     0 image.Image.records)
                  (Image.delta_byte_size d) (Image.byte_size image);
                Ok (applied, Image.delta_byte_size d)
              | Error _ -> (
                match
                  P.translate_image bus ~for_instance:instance
                    ~src_host:cap.cap_host ~dst_host:host image
                with
                | Error e ->
                  Error (Printf.sprintf "state translation failed: %s" e)
                | Ok image' when not (Int64.equal (Image.digest image') d0) ->
                  Bus.quarantine_image bus ~instance
                    ~reason:"digest mismatch after translation"
                    ~byte_size:(Image.byte_size image');
                  Error "state image digest mismatch after translation"
                | Ok image' -> Ok (image', Image.byte_size image'))
            in
            (match translated with
            | Error e -> fail e
            | Ok (image', bytes_out) -> (
              let batch = rebind_batch cap ~new_instance in
              (* The old module has complied. Start the new instance
                 first so the batch's queue-copy commands have a live
                 destination, then apply the rebinding commands all at
                 once, deposit the state, and remove the old instance.
                 All of this happens at one instant of virtual time —
                 no quantum runs in between. *)
              match
                Journal.spawn j ~instance:new_instance ~module_name ~host
                  ?spec:cap.cap_spec ~status:"clone" ()
              with
              | Error e -> fail e
              | Ok () ->
                Journal.rebind j batch;
                (* hand the old name's reliable channels (sequence
                   state and all) to the clone: a graceful replace
                   keeps the epoch, so in-flight frames still count *)
                Journal.rename_transport j ~old_instance:instance
                  ~new_instance ~fence:false;
                Bus.deposit_state bus ~instance:new_instance ~expect:d0 image';
                (match old_machine with
                | Some om ->
                  let precopy_marker =
                    Option.map
                      (fun (base, wait) ->
                        ( Image.byte_size base,
                          List.length base.Image.records,
                          wait ))
                      !base_info
                  in
                  let delta_marker =
                    if not precopy then None
                    else
                      Some
                        (match delta_info with
                        | Ok (d, _) ->
                          ( "none",
                            List.length d.Image.d_slots,
                            Image.delta_byte_size d )
                        | Error reason -> (reason, 0, 0))
                  in
                  divulge_children bus !sp ~t0:!t0 ~old_machine:om
                    ~restored_instance:new_instance
                    ~bytes_in:(Image.byte_size image) ~bytes_out
                    ?precopy:precopy_marker ?delta:delta_marker
                    ~retx_wait:retx_w ()
                | None -> ());
                Journal.kill j ~instance ~module_name:cap.cap_module
                  ~host:cap.cap_host ?spec:cap.cap_spec ~image ();
                Journal.commit j;
                record bus "replace %s -> %s complete" instance new_instance;
                conclude (Ok new_instance)))
          with Bus.Controller_crash ->
            (* the callback runs inside the target's own quantum; a
               crash armed on one of the divulge's journal appends must
               kill the script, not the bystander machine *)
            ()
      in
      let engage () =
        t0 := Bus.now bus;
        Journal.arm_divulge j ~instance divulge;
        retx0 := Bus.transport_retx_wait bus ~instance;
        Bus.signal_reconfig bus ~instance
      in
      (if not precopy then engage ()
       else
         match Bus.machine bus ~instance with
         | None ->
           (* nothing to snapshot live (externally backed process):
              plain freeze path *)
           engage ()
         | Some m ->
           record bus "replace %s: pre-copy armed at next point" instance;
           Machine.set_point_hook m
             (Some
                (fun () ->
                  if (not !settled) && not (Bus.controller_down bus) then
                    (* the hook runs inside the target's own quantum; a
                       controller crash armed on the journal record must
                       kill the script, not the bystander machine *)
                    try
                      (match Machine.live_capture m with
                      | Some base ->
                        Journal.note_precopy_base j ~instance ~image:base;
                        Machine.begin_dirty_tracking m;
                        base_info := Some (base, Bus.now bus -. t_req);
                        record bus
                          "replace %s: pre-copy base captured: %d record(s), \
                           %d byte(s)"
                          instance
                          (List.length base.Image.records)
                          (Image.byte_size base)
                      | None -> ());
                      engage ()
                    with Bus.Controller_crash -> ())));
      match deadline with
      | None -> ()
      | Some window ->
        (* the signal→divulge window of the paper's §4 placement hazard:
           a module that never reaches a reconfiguration point (or
           crashed on the way) triggers rollback instead of spinning the
           event budget; under pre-copy it also bounds the wait for the
           first point *)
        Dr_sim.Engine.schedule
          ~label:
            (Dr_sim.Engine.label
               ~info:(Printf.sprintf "replace %s: deadline" instance)
               "ctl")
          (Bus.engine bus) ~delay:window (fun () ->
            if (not !settled) && not (Bus.controller_down bus) then begin
              record bus "replace %s: deadline (%.1f) expired before divulge"
                instance window;
              disarm_hook ();
              Journal.rollback j ~reason:"deadline expired";
              conclude
                (Error
                   (Printf.sprintf
                      "%s did not divulge within the %.1f deadline" instance
                      window))
            end)
  in
  attempt 1 ~host_override:None

let migrate bus ?precopy ~instance ~new_instance ~new_host ~on_done () =
  replace bus ~span_kind:"migrate" ?precopy ~instance ~new_instance ~new_host
    ~on_done ()

let replicate bus ~instance ~replica_instance ?replica_host ~on_done () =
  match P.obj_cap bus ~instance with
  | Error e -> on_done (Error e)
  | Ok cap0 ->
    let replica_host = Option.value ~default:cap0.cap_host replica_host in
    record bus "replicate %s -> %s on %s" instance replica_instance
      replica_host;
    let t0 = Bus.now bus in
    let sp =
      open_span bus ~kind:"replicate"
        ~attrs:
          [ ("instance", instance); ("replica_instance", replica_instance);
            ("module", cap0.cap_module); ("src_host", cap0.cap_host);
            ("dst_host", replica_host) ]
    in
    let j =
      Journal.create bus
        ~label:(Printf.sprintf "replicate %s -> %s" instance replica_instance)
    in
    Journal.arm_divulge j ~instance (fun image ->
        let old_machine = Bus.machine bus ~instance in
        (* re-snapshot: bindings may have changed while waiting *)
        match P.obj_cap bus ~instance with
        | Error e ->
          Journal.rollback j ~reason:e;
          fail_span bus sp e;
          on_done (Error e)
        | Ok cap -> (
          Journal.note_divulged j ~cap ~image;
          (* Phase 1 — restart the original in place: it halted after
             divulging; bring it back under its own name with the same
             image, preserving any messages still queued at its
             interfaces. Committed on its own: if the replica later
             fails, the restored original *is* the consistent rollback
             state and must not be undone. *)
          let parked =
            List.map
              (fun iface ->
                (iface, Bus.take_queue bus (cap.cap_instance, iface)))
              cap.cap_ifaces
          in
          Journal.kill j ~instance ~module_name:cap.cap_module
            ~host:cap.cap_host ?spec:cap.cap_spec ~image ();
          match
            Journal.spawn j ~instance ~module_name:cap.cap_module
              ~host:cap.cap_host ?spec:cap.cap_spec ~status:"clone" ()
          with
          | Error e ->
            Journal.rollback j ~reason:e;
            fail_span bus sp e;
            on_done (Error e)
          | Ok () -> (
            Bus.deposit_state bus ~instance image;
            (* phase 1 restored the original in place: decompose the
               window against it now; the replica adds its own lazy
               restore child below *)
            (match old_machine with
            | Some om ->
              divulge_children bus sp ~t0 ~old_machine:om
                ~restored_instance:instance
                ~bytes_in:(Image.byte_size image)
                ~bytes_out:(Image.byte_size image) ()
            | None -> ());
            List.iter
              (fun (iface, values) ->
                List.iter
                  (fun v -> Bus.inject bus ~dst:(instance, iface) v)
                  values)
              parked;
            Journal.commit j;
            (* Phase 2 — start the replica under a fresh journal: on
               failure only the replica-side edits are undone and the
               restored original keeps serving. *)
            let j2 =
              Journal.create bus
                ~label:
                  (Printf.sprintf "replicate %s -> %s (replica)" instance
                     replica_instance)
            in
            let fail e =
              Journal.rollback j2 ~reason:e;
              fail_span bus sp e;
              on_done (Error e)
            in
            match
              P.translate_image bus ~for_instance:instance
                ~src_host:cap.cap_host ~dst_host:replica_host image
            with
            | Error e -> fail e
            | Ok image' -> (
              match
                Journal.spawn j2 ~instance:replica_instance
                  ~module_name:cap.cap_module ~host:replica_host
                  ?spec:cap.cap_spec ~status:"clone" ()
              with
              | Error e -> fail e
              | Ok () ->
                Bus.deposit_state bus ~instance:replica_instance image';
                (match sp, Bus.machine bus ~instance:replica_instance with
                | Some s, Some rm ->
                  let rs =
                    Metrics.child s ~kind:"replica_restore"
                      ~attrs:[ ("instance", replica_instance) ]
                      ~start:(Bus.now bus) ()
                  in
                  Metrics.finish_with rs (fun () -> Machine.restore_done_at rm)
                | _ -> ());
                (* duplicate the original's bindings for the replica *)
                List.iter
                  (fun ((src : Bus.endpoint), dst) ->
                    Journal.add_route j2
                      ~src:(replica_instance, snd src) ~dst)
                  cap.cap_out_routes;
                List.iter
                  (fun (src, (dst : Bus.endpoint)) ->
                    Journal.add_route j2 ~src
                      ~dst:(replica_instance, snd dst))
                  cap.cap_in_routes;
                Journal.commit j2;
                record bus "replicate %s -> %s complete" instance
                  replica_instance;
                on_done (Ok replica_instance)))));
    Bus.signal_reconfig bus ~instance

let replace_stateless bus ~instance ~new_instance ?new_module ?new_host
    ?(fence = false) () =
  match P.obj_cap bus ~instance with
  | Error e -> Error e
  | Ok cap -> (
    let module_name = Option.value ~default:cap.cap_module new_module in
    let host = Option.value ~default:cap.cap_host new_host in
    record bus "replace-stateless %s -> %s: %s on %s" instance new_instance
      module_name host;
    let sp =
      open_span bus ~kind:"replace_stateless"
        ~attrs:
          [ ("instance", instance); ("new_instance", new_instance);
            ("module", module_name); ("dst_host", host) ]
    in
    let j =
      Journal.create bus
        ~label:
          (Printf.sprintf "replace-stateless %s -> %s" instance new_instance)
    in
    let batch = rebind_batch cap ~new_instance in
    match
      Journal.spawn j ~instance:new_instance ~module_name ~host
        ?spec:cap.cap_spec ~status:"normal" ()
    with
    | Error e ->
      Journal.rollback j ~reason:e;
      fail_span bus sp e;
      Error e
    | Ok () ->
      Journal.rebind j batch;
      (* [fence:true] is the supervisor's case — the old generation is
         only *suspected* dead, so frames it already sent must arrive
         inert; its unacked frames are retransmitted under the new
         epoch and name instead *)
      Journal.rename_transport j ~old_instance:instance ~new_instance ~fence;
      Journal.kill j ~instance ~module_name:cap.cap_module ~host:cap.cap_host
        ?spec:cap.cap_spec ();
      Journal.commit j;
      record bus "replace-stateless %s -> %s complete" instance new_instance;
      (* synchronous and stateless: the whole window is one instant *)
      (match sp with
      | Some s ->
        Metrics.set_attr s "outcome" "ok";
        Metrics.finish s ~at:(Bus.now bus)
      | None -> ());
      Ok new_instance)

let add_module bus ~instance ~module_name ~host ?spec ~binds () =
  let j =
    Journal.create bus ~label:(Printf.sprintf "add-module %s" instance)
  in
  match Journal.spawn j ~instance ~module_name ~host ?spec () with
  | Error e ->
    Journal.rollback j ~reason:e;
    Error e
  | Ok () ->
    List.iter (fun (src, dst) -> Journal.add_route j ~src ~dst) binds;
    Journal.commit j;
    Ok ()

let remove_module bus ~instance =
  match P.obj_cap bus ~instance with
  | Error _ ->
    (* no such instance: still sweep any dangling routes, as before *)
    List.iter
      (fun ((src : Bus.endpoint), (dst : Bus.endpoint)) ->
        if String.equal (fst src) instance || String.equal (fst dst) instance
        then Bus.del_route bus ~src ~dst)
      (Bus.all_routes bus);
    Bus.kill bus ~instance
  | Ok cap ->
    let j =
      Journal.create bus ~label:(Printf.sprintf "remove-module %s" instance)
    in
    List.iter
      (fun ((src : Bus.endpoint), (dst : Bus.endpoint)) ->
        if String.equal (fst src) instance || String.equal (fst dst) instance
        then Journal.del_route j ~src ~dst)
      (Bus.all_routes bus);
    Journal.kill j ~instance ~module_name:cap.cap_module ~host:cap.cap_host
      ?spec:cap.cap_spec ();
    Journal.commit j

let run_sync bus ?(max_events = 1_000_000) ?deadline ?watch script =
  let result = ref None in
  (* the script's synchronous prefix (journal begin, arm, signal) can
     die on an armed controller crash before any engine event fires;
     treat it exactly like a crash inside an event — the fleet keeps
     running, the script just never completes *)
  (try script ~on_done:(fun r -> result := Some r)
   with Bus.Controller_crash -> ());
  (* a watched instance that crashes, halts or disappears before the
     script completes can never comply with the reconfiguration signal;
     fail fast instead of spinning the event budget on the other
     processes' events *)
  let module Machine = Dr_interp.Machine in
  let doomed () =
    match watch with
    | None -> false
    | Some instance -> (
      match Bus.process_status bus ~instance with
      | Some (Machine.Crashed _) | Some Machine.Halted | None -> true
      | Some _ -> false)
  in
  let started = Bus.now bus in
  let expired () =
    match deadline with
    | None -> false
    | Some d -> Bus.now bus -. started > d
  in
  Bus.run_while bus ~max_events (fun () ->
      Option.is_none !result
      && (not (doomed ()))
      && (not (expired ()))
      && not (Bus.controller_down bus));
  match !result with
  | Some r -> r
  | None -> (
    match watch with
    | _ when Bus.controller_down bus ->
      Error "the controller crashed before the reconfiguration completed"
    | Some instance when doomed () ->
      Error
        (match Bus.process_status bus ~instance with
        | Some (Machine.Crashed message) ->
          Printf.sprintf "%s crashed before the reconfiguration completed: %s"
            instance message
        | Some Machine.Halted ->
          Printf.sprintf "%s halted before the reconfiguration completed"
            instance
        | _ ->
          Printf.sprintf "%s was removed before the reconfiguration completed"
            instance)
    | _ when expired () ->
      Error
        (Printf.sprintf
           "reconfiguration did not complete within the %.1f deadline"
           (Option.get deadline))
    | _ -> Error "reconfiguration script did not complete")
