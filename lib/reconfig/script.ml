module P = Primitives
module Bus = Dr_bus.Bus
module Image = Dr_state.Image
module Metrics = Dr_obs.Metrics
module Machine = Dr_interp.Machine

type outcome = (string, string) result

(* --------------------------------------------------------------- spans *)

(* Disruption-window spans. Each replace/migrate/replicate attempt opens
   a root span at signal time; at divulge time the old machine's
   virtual-time stamps decompose the window into

     signal  — signal sent -> handler frame pushed
     drain   — handler pushed -> first mh_capture (unwinding to a point)
     capture — first mh_capture -> image divulged
     translate — zero-width marker carrying byte sizes
     restore — deposit -> the clone's last mh_restore (lazy: the clone
               executes its restore dispatch after the script returns)

   Span construction reads clocks and machine stamps only — it never
   schedules events or touches the trace, so metrics-on runs replay the
   exact golden event sequence. *)

let open_span bus ~kind ~attrs =
  match Bus.metrics bus with
  | None -> None
  | Some r -> Some (Metrics.span r ~attrs ~kind ~start:(Bus.now bus) ())

let fail_span bus sp reason =
  match sp with
  | None -> ()
  | Some s ->
    Metrics.set_attr s "outcome" "error";
    Metrics.set_attr s "reason" reason;
    Metrics.finish s ~at:(Bus.now bus)

(* Children with concrete times, built at divulge time from the old
   machine's stamps; the restore child (and the root) end lazily when
   the restored machine consumes its last record. *)
let divulge_children bus sp ~t0 ~old_machine ~restored_instance ~bytes_in
    ~bytes_out =
  match sp with
  | None -> ()
  | Some s ->
    let t_div = Bus.now bus in
    let t_sig = Option.value ~default:t0 (Machine.signal_handled_at old_machine) in
    let t_cap =
      Option.value ~default:t_div (Machine.capture_started_at old_machine)
    in
    let interval kind a b =
      Metrics.finish (Metrics.child s ~kind ~start:a ()) ~at:b
    in
    interval "signal" t0 t_sig;
    interval "drain" t_sig t_cap;
    interval "capture" t_cap t_div;
    let tr = Metrics.child s ~kind:"translate" ~start:t_div () in
    Metrics.set_attr tr "bytes_in" (string_of_int bytes_in);
    Metrics.set_attr tr "bytes_out" (string_of_int bytes_out);
    Metrics.finish tr ~at:t_div;
    let rs = Metrics.child s ~kind:"restore" ~start:t_div () in
    Metrics.set_attr s "outcome" "ok";
    match Bus.machine bus ~instance:restored_instance with
    | Some clone ->
      let done_at () = Machine.restore_done_at clone in
      Metrics.finish_with rs done_at;
      Metrics.finish_with s done_at
    | None ->
      Metrics.finish rs ~at:t_div;
      Metrics.finish s ~at:t_div

type retry = { attempts : int; backoff : float; alt_hosts : string list }

let no_retry = { attempts = 1; backoff = 0.0; alt_hosts = [] }

let record bus fmt =
  Format.kasprintf
    (fun detail ->
      Dr_sim.Trace.record (Bus.trace bus) ~time:(Bus.now bus)
        ~category:"script" ~detail)
    fmt

(* The rebinding batch of Fig. 5: for every interface of the old module,
   retarget outgoing and incoming routes to the new instance of the same
   interface name, move pending queues across, and drop the old ones. *)
let rebind_batch (cap : P.module_cap) ~new_instance =
  let batch = P.bind_cap () in
  List.iter
    (fun ((src : Bus.endpoint), dst) ->
      P.edit_bind batch (P.Del (src, dst));
      P.edit_bind batch (P.Add ((new_instance, snd src), dst)))
    cap.cap_out_routes;
  List.iter
    (fun (src, (dst : Bus.endpoint)) ->
      P.edit_bind batch (P.Del (src, dst));
      P.edit_bind batch (P.Add (src, (new_instance, snd dst))))
    cap.cap_in_routes;
  List.iter
    (fun iface ->
      P.edit_bind batch
        (P.Copy_queue ((cap.cap_instance, iface), (new_instance, iface)));
      P.edit_bind batch (P.Remove_queue (cap.cap_instance, iface)))
    cap.cap_ifaces;
  batch

(* Transactional replacement: every primitive goes through a {!Journal};
   a failure at any point — spawn error, translation error, deadline
   expiry while the module travels to its reconfiguration point — rolls
   the journal back, leaving the old configuration fully routed. On the
   success path the journal commits silently, so the trace is exactly
   the Fig. 5 sequence it always was. *)
let replace bus ?(span_kind = "replace") ~instance ~new_instance ?new_module
    ?new_host ?deadline ?(retry = no_retry) ~on_done () =
  let rec attempt n ~host_override =
    let finish outcome =
      match outcome with
      | Ok _ -> on_done outcome
      | Error e when n < retry.attempts ->
        let next_host =
          match retry.alt_hosts with
          | [] -> host_override
          | hosts -> Some (List.nth hosts ((n - 1) mod List.length hosts))
        in
        record bus "replace %s: attempt %d failed (%s); retrying%s in %.1f"
          instance n e
          (match next_host with Some h -> " on " ^ h | None -> "")
          retry.backoff;
        Dr_sim.Engine.schedule (Bus.engine bus)
          ~delay:(Float.max 0.0 retry.backoff)
          (fun () ->
            (* a retry scheduled before the controller died must not run
               as a ghost of it *)
            if not (Bus.controller_down bus) then
              attempt (n + 1) ~host_override:next_host)
      | Error _ -> on_done outcome
    in
    match P.obj_cap bus ~instance with
    | Error e -> finish (Error e)
    | Ok cap0 ->
      let module_name = Option.value ~default:cap0.cap_module new_module in
      let host =
        match host_override with
        | Some h -> h
        | None -> Option.value ~default:cap0.cap_host new_host
      in
      record bus "replace %s: %s on %s -> %s: %s on %s" instance
        cap0.cap_module cap0.cap_host new_instance module_name host;
      let t0 = Bus.now bus in
      let sp =
        open_span bus ~kind:span_kind
          ~attrs:
            [ ("instance", instance); ("new_instance", new_instance);
              ("module", module_name); ("src_host", cap0.cap_host);
              ("dst_host", host); ("attempt", string_of_int n) ]
      in
      let j =
        Journal.create bus
          ~label:(Printf.sprintf "replace %s -> %s" instance new_instance)
      in
      let settled = ref false in
      let conclude outcome =
        if not !settled then begin
          settled := true;
          (match outcome with
          | Error e -> fail_span bus sp e
          | Ok _ -> ());
          finish outcome
        end
      in
      let fail e =
        Journal.rollback j ~reason:e;
        conclude (Error e)
      in
      Journal.arm_divulge j ~instance (fun image ->
          if not !settled then
            (* Grab the old machine's handle now, before [Journal.kill]
               removes the instance — its virtual-time stamps decompose
               the disruption window after it is gone. *)
            let old_machine = Bus.machine bus ~instance in
            (* Re-snapshot NOW: other reconfigurations may have rebound
               the module's interfaces while it was travelling to its
               reconfiguration point, and the batch must edit the
               *current* configuration (the paper: obj_cap "corresponds
               to the current configuration, which could have been
               changed dynamically"). *)
            match P.obj_cap bus ~instance with
            | Error e -> fail e
            | Ok cap -> (
              Journal.note_divulged j ~cap ~image;
              (* end-to-end integrity: the digest taken at capture must
                 survive encode/translate/decode, and [deposit_state
                 ~expect] re-verifies it at the restore boundary *)
              let d0 = Image.digest image in
              match
                P.translate_image bus ~for_instance:instance
                  ~src_host:cap.cap_host ~dst_host:host image
              with
              | Error e -> fail (Printf.sprintf "state translation failed: %s" e)
              | Ok image' when not (Int64.equal (Image.digest image') d0) ->
                Bus.quarantine_image bus ~instance
                  ~reason:"digest mismatch after translation"
                  ~byte_size:(Image.byte_size image');
                fail "state image digest mismatch after translation"
              | Ok image' -> (
                let batch = rebind_batch cap ~new_instance in
                (* The old module has complied. Start the new instance
                   first so the batch's queue-copy commands have a live
                   destination, then apply the rebinding commands all at
                   once, deposit the state, and remove the old instance.
                   All of this happens at one instant of virtual time —
                   no quantum runs in between. *)
                match
                  Journal.spawn j ~instance:new_instance ~module_name ~host
                    ?spec:cap.cap_spec ~status:"clone" ()
                with
                | Error e -> fail e
                | Ok () ->
                  Journal.rebind j batch;
                  (* hand the old name's reliable channels (sequence
                     state and all) to the clone: a graceful replace
                     keeps the epoch, so in-flight frames still count *)
                  Journal.rename_transport j ~old_instance:instance
                    ~new_instance ~fence:false;
                  Bus.deposit_state bus ~instance:new_instance ~expect:d0
                    image';
                  (match old_machine with
                  | Some om ->
                    divulge_children bus sp ~t0 ~old_machine:om
                      ~restored_instance:new_instance
                      ~bytes_in:(Image.byte_size image)
                      ~bytes_out:(Image.byte_size image')
                  | None -> ());
                  Journal.kill j ~instance ~module_name:cap.cap_module
                    ~host:cap.cap_host ?spec:cap.cap_spec ~image ();
                  Journal.commit j;
                  record bus "replace %s -> %s complete" instance new_instance;
                  conclude (Ok new_instance))));
      Bus.signal_reconfig bus ~instance;
      match deadline with
      | None -> ()
      | Some window ->
        (* the signal→divulge window of the paper's §4 placement hazard:
           a module that never reaches a reconfiguration point (or
           crashed on the way) triggers rollback instead of spinning the
           event budget *)
        Dr_sim.Engine.schedule (Bus.engine bus) ~delay:window (fun () ->
            if (not !settled) && not (Bus.controller_down bus) then begin
              record bus "replace %s: deadline (%.1f) expired before divulge"
                instance window;
              Journal.rollback j ~reason:"deadline expired";
              conclude
                (Error
                   (Printf.sprintf
                      "%s did not divulge within the %.1f deadline" instance
                      window))
            end)
  in
  attempt 1 ~host_override:None

let migrate bus ~instance ~new_instance ~new_host ~on_done () =
  replace bus ~span_kind:"migrate" ~instance ~new_instance ~new_host ~on_done ()

let replicate bus ~instance ~replica_instance ?replica_host ~on_done () =
  match P.obj_cap bus ~instance with
  | Error e -> on_done (Error e)
  | Ok cap0 ->
    let replica_host = Option.value ~default:cap0.cap_host replica_host in
    record bus "replicate %s -> %s on %s" instance replica_instance
      replica_host;
    let t0 = Bus.now bus in
    let sp =
      open_span bus ~kind:"replicate"
        ~attrs:
          [ ("instance", instance); ("replica_instance", replica_instance);
            ("module", cap0.cap_module); ("src_host", cap0.cap_host);
            ("dst_host", replica_host) ]
    in
    let j =
      Journal.create bus
        ~label:(Printf.sprintf "replicate %s -> %s" instance replica_instance)
    in
    Journal.arm_divulge j ~instance (fun image ->
        let old_machine = Bus.machine bus ~instance in
        (* re-snapshot: bindings may have changed while waiting *)
        match P.obj_cap bus ~instance with
        | Error e ->
          Journal.rollback j ~reason:e;
          fail_span bus sp e;
          on_done (Error e)
        | Ok cap -> (
          Journal.note_divulged j ~cap ~image;
          (* Phase 1 — restart the original in place: it halted after
             divulging; bring it back under its own name with the same
             image, preserving any messages still queued at its
             interfaces. Committed on its own: if the replica later
             fails, the restored original *is* the consistent rollback
             state and must not be undone. *)
          let parked =
            List.map
              (fun iface ->
                (iface, Bus.take_queue bus (cap.cap_instance, iface)))
              cap.cap_ifaces
          in
          Journal.kill j ~instance ~module_name:cap.cap_module
            ~host:cap.cap_host ?spec:cap.cap_spec ~image ();
          match
            Journal.spawn j ~instance ~module_name:cap.cap_module
              ~host:cap.cap_host ?spec:cap.cap_spec ~status:"clone" ()
          with
          | Error e ->
            Journal.rollback j ~reason:e;
            fail_span bus sp e;
            on_done (Error e)
          | Ok () -> (
            Bus.deposit_state bus ~instance image;
            (* phase 1 restored the original in place: decompose the
               window against it now; the replica adds its own lazy
               restore child below *)
            (match old_machine with
            | Some om ->
              divulge_children bus sp ~t0 ~old_machine:om
                ~restored_instance:instance
                ~bytes_in:(Image.byte_size image)
                ~bytes_out:(Image.byte_size image)
            | None -> ());
            List.iter
              (fun (iface, values) ->
                List.iter
                  (fun v -> Bus.inject bus ~dst:(instance, iface) v)
                  values)
              parked;
            Journal.commit j;
            (* Phase 2 — start the replica under a fresh journal: on
               failure only the replica-side edits are undone and the
               restored original keeps serving. *)
            let j2 =
              Journal.create bus
                ~label:
                  (Printf.sprintf "replicate %s -> %s (replica)" instance
                     replica_instance)
            in
            let fail e =
              Journal.rollback j2 ~reason:e;
              fail_span bus sp e;
              on_done (Error e)
            in
            match
              P.translate_image bus ~for_instance:instance
                ~src_host:cap.cap_host ~dst_host:replica_host image
            with
            | Error e -> fail e
            | Ok image' -> (
              match
                Journal.spawn j2 ~instance:replica_instance
                  ~module_name:cap.cap_module ~host:replica_host
                  ?spec:cap.cap_spec ~status:"clone" ()
              with
              | Error e -> fail e
              | Ok () ->
                Bus.deposit_state bus ~instance:replica_instance image';
                (match sp, Bus.machine bus ~instance:replica_instance with
                | Some s, Some rm ->
                  let rs =
                    Metrics.child s ~kind:"replica_restore"
                      ~attrs:[ ("instance", replica_instance) ]
                      ~start:(Bus.now bus) ()
                  in
                  Metrics.finish_with rs (fun () -> Machine.restore_done_at rm)
                | _ -> ());
                (* duplicate the original's bindings for the replica *)
                List.iter
                  (fun ((src : Bus.endpoint), dst) ->
                    Journal.add_route j2
                      ~src:(replica_instance, snd src) ~dst)
                  cap.cap_out_routes;
                List.iter
                  (fun (src, (dst : Bus.endpoint)) ->
                    Journal.add_route j2 ~src
                      ~dst:(replica_instance, snd dst))
                  cap.cap_in_routes;
                Journal.commit j2;
                record bus "replicate %s -> %s complete" instance
                  replica_instance;
                on_done (Ok replica_instance)))));
    Bus.signal_reconfig bus ~instance

let replace_stateless bus ~instance ~new_instance ?new_module ?new_host
    ?(fence = false) () =
  match P.obj_cap bus ~instance with
  | Error e -> Error e
  | Ok cap -> (
    let module_name = Option.value ~default:cap.cap_module new_module in
    let host = Option.value ~default:cap.cap_host new_host in
    record bus "replace-stateless %s -> %s: %s on %s" instance new_instance
      module_name host;
    let sp =
      open_span bus ~kind:"replace_stateless"
        ~attrs:
          [ ("instance", instance); ("new_instance", new_instance);
            ("module", module_name); ("dst_host", host) ]
    in
    let j =
      Journal.create bus
        ~label:
          (Printf.sprintf "replace-stateless %s -> %s" instance new_instance)
    in
    let batch = rebind_batch cap ~new_instance in
    match
      Journal.spawn j ~instance:new_instance ~module_name ~host
        ?spec:cap.cap_spec ~status:"normal" ()
    with
    | Error e ->
      Journal.rollback j ~reason:e;
      fail_span bus sp e;
      Error e
    | Ok () ->
      Journal.rebind j batch;
      (* [fence:true] is the supervisor's case — the old generation is
         only *suspected* dead, so frames it already sent must arrive
         inert; its unacked frames are retransmitted under the new
         epoch and name instead *)
      Journal.rename_transport j ~old_instance:instance ~new_instance ~fence;
      Journal.kill j ~instance ~module_name:cap.cap_module ~host:cap.cap_host
        ?spec:cap.cap_spec ();
      Journal.commit j;
      record bus "replace-stateless %s -> %s complete" instance new_instance;
      (* synchronous and stateless: the whole window is one instant *)
      (match sp with
      | Some s ->
        Metrics.set_attr s "outcome" "ok";
        Metrics.finish s ~at:(Bus.now bus)
      | None -> ());
      Ok new_instance)

let add_module bus ~instance ~module_name ~host ?spec ~binds () =
  let j =
    Journal.create bus ~label:(Printf.sprintf "add-module %s" instance)
  in
  match Journal.spawn j ~instance ~module_name ~host ?spec () with
  | Error e ->
    Journal.rollback j ~reason:e;
    Error e
  | Ok () ->
    List.iter (fun (src, dst) -> Journal.add_route j ~src ~dst) binds;
    Journal.commit j;
    Ok ()

let remove_module bus ~instance =
  match P.obj_cap bus ~instance with
  | Error _ ->
    (* no such instance: still sweep any dangling routes, as before *)
    List.iter
      (fun ((src : Bus.endpoint), (dst : Bus.endpoint)) ->
        if String.equal (fst src) instance || String.equal (fst dst) instance
        then Bus.del_route bus ~src ~dst)
      (Bus.all_routes bus);
    Bus.kill bus ~instance
  | Ok cap ->
    let j =
      Journal.create bus ~label:(Printf.sprintf "remove-module %s" instance)
    in
    List.iter
      (fun ((src : Bus.endpoint), (dst : Bus.endpoint)) ->
        if String.equal (fst src) instance || String.equal (fst dst) instance
        then Journal.del_route j ~src ~dst)
      (Bus.all_routes bus);
    Journal.kill j ~instance ~module_name:cap.cap_module ~host:cap.cap_host
      ?spec:cap.cap_spec ();
    Journal.commit j

let run_sync bus ?(max_events = 1_000_000) ?deadline ?watch script =
  let result = ref None in
  (* the script's synchronous prefix (journal begin, arm, signal) can
     die on an armed controller crash before any engine event fires;
     treat it exactly like a crash inside an event — the fleet keeps
     running, the script just never completes *)
  (try script ~on_done:(fun r -> result := Some r)
   with Bus.Controller_crash -> ());
  (* a watched instance that crashes, halts or disappears before the
     script completes can never comply with the reconfiguration signal;
     fail fast instead of spinning the event budget on the other
     processes' events *)
  let module Machine = Dr_interp.Machine in
  let doomed () =
    match watch with
    | None -> false
    | Some instance -> (
      match Bus.process_status bus ~instance with
      | Some (Machine.Crashed _) | Some Machine.Halted | None -> true
      | Some _ -> false)
  in
  let started = Bus.now bus in
  let expired () =
    match deadline with
    | None -> false
    | Some d -> Bus.now bus -. started > d
  in
  Bus.run_while bus ~max_events (fun () ->
      Option.is_none !result
      && (not (doomed ()))
      && (not (expired ()))
      && not (Bus.controller_down bus));
  match !result with
  | Some r -> r
  | None -> (
    match watch with
    | _ when Bus.controller_down bus ->
      Error "the controller crashed before the reconfiguration completed"
    | Some instance when doomed () ->
      Error
        (match Bus.process_status bus ~instance with
        | Some (Machine.Crashed message) ->
          Printf.sprintf "%s crashed before the reconfiguration completed: %s"
            instance message
        | Some Machine.Halted ->
          Printf.sprintf "%s halted before the reconfiguration completed"
            instance
        | _ ->
          Printf.sprintf "%s was removed before the reconfiguration completed"
            instance)
    | _ when expired () ->
      Error
        (Printf.sprintf
           "reconfiguration did not complete within the %.1f deadline"
           (Option.get deadline))
    | _ -> Error "reconfiguration script did not complete")
