module P = Primitives

type outcome = (string, string) result

let record bus fmt =
  Format.kasprintf
    (fun detail ->
      Dr_sim.Trace.record (Dr_bus.Bus.trace bus) ~time:(Dr_bus.Bus.now bus)
        ~category:"script" ~detail)
    fmt

(* The rebinding batch of Fig. 5: for every interface of the old module,
   retarget outgoing and incoming routes to the new instance of the same
   interface name, move pending queues across, and drop the old ones. *)
let rebind_batch (cap : P.module_cap) ~new_instance =
  let batch = P.bind_cap () in
  List.iter
    (fun ((src : Dr_bus.Bus.endpoint), dst) ->
      P.edit_bind batch (P.Del (src, dst));
      P.edit_bind batch (P.Add ((new_instance, snd src), dst)))
    cap.cap_out_routes;
  List.iter
    (fun (src, (dst : Dr_bus.Bus.endpoint)) ->
      P.edit_bind batch (P.Del (src, dst));
      P.edit_bind batch (P.Add (src, (new_instance, snd dst))))
    cap.cap_in_routes;
  List.iter
    (fun iface ->
      P.edit_bind batch
        (P.Copy_queue ((cap.cap_instance, iface), (new_instance, iface)));
      P.edit_bind batch (P.Remove_queue (cap.cap_instance, iface)))
    cap.cap_ifaces;
  batch

let replace bus ~instance ~new_instance ?new_module ?new_host ~on_done () =
  match P.obj_cap bus ~instance with
  | Error e -> on_done (Error e)
  | Ok cap0 ->
    let module_name = Option.value ~default:cap0.cap_module new_module in
    let host = Option.value ~default:cap0.cap_host new_host in
    record bus "replace %s: %s on %s -> %s: %s on %s" instance cap0.cap_module
      cap0.cap_host new_instance module_name host;
    P.objstate_move bus ~old_instance:instance
      ~deliver:(fun image ->
        (* Re-snapshot NOW: other reconfigurations may have rebound the
           module's interfaces while it was travelling to its
           reconfiguration point, and the batch must edit the *current*
           configuration (the paper: obj_cap "corresponds to the current
           configuration, which could have been changed dynamically"). *)
        match P.obj_cap bus ~instance with
        | Error e -> on_done (Error e)
        | Ok cap -> (
          match
            P.translate_image bus ~src_host:cap.cap_host ~dst_host:host image
          with
          | Error e ->
            on_done (Error (Printf.sprintf "state translation failed: %s" e))
          | Ok image' -> (
            let batch = rebind_batch cap ~new_instance in
            (* The old module has complied. Start the new instance first
               so the batch's queue-copy commands have a live
               destination, then apply the rebinding commands all at
               once, deposit the state, and remove the old instance. All
               of this happens at one instant of virtual time — no
               quantum runs in between. *)
            match
              P.chg_obj_add bus ~instance:new_instance ~module_name ~host
                ?spec:cap.cap_spec ~status:"clone" ()
            with
            | Error e -> on_done (Error e)
            | Ok () ->
              P.rebind bus batch;
              Dr_bus.Bus.deposit_state bus ~instance:new_instance image';
              P.chg_obj_del bus ~instance;
              record bus "replace %s -> %s complete" instance new_instance;
              on_done (Ok new_instance))))
      ()

let migrate bus ~instance ~new_instance ~new_host ~on_done () =
  replace bus ~instance ~new_instance ~new_host ~on_done ()

let replicate bus ~instance ~replica_instance ?replica_host ~on_done () =
  match P.obj_cap bus ~instance with
  | Error e -> on_done (Error e)
  | Ok cap0 ->
    let replica_host = Option.value ~default:cap0.cap_host replica_host in
    record bus "replicate %s -> %s on %s" instance replica_instance replica_host;
    P.objstate_move bus ~old_instance:instance
      ~deliver:(fun image ->
        let ( let* ) = Result.bind in
        (* re-snapshot: bindings may have changed while waiting *)
        let outcome =
          let* cap = P.obj_cap bus ~instance in
          let restart_old () =
          (* the original halted after divulging; restart it in place
             under its own name with the same image, preserving any
             messages still queued at its interfaces *)
          let parked =
            List.map
              (fun iface ->
                (iface, Dr_bus.Bus.take_queue bus (cap.cap_instance, iface)))
              cap.cap_ifaces
          in
          P.chg_obj_del bus ~instance;
          let* () =
            P.chg_obj_add bus ~instance ~module_name:cap.cap_module
              ~host:cap.cap_host ?spec:cap.cap_spec ~status:"clone" ()
          in
          Dr_bus.Bus.deposit_state bus ~instance image;
          List.iter
            (fun (iface, values) ->
              List.iter
                (fun v -> Dr_bus.Bus.inject bus ~dst:(instance, iface) v)
                values)
            parked;
          Ok ()
        in
        let start_replica () =
          let* image' =
            P.translate_image bus ~src_host:cap.cap_host ~dst_host:replica_host
              image
          in
          let* () =
            P.chg_obj_add bus ~instance:replica_instance
              ~module_name:cap.cap_module ~host:replica_host ?spec:cap.cap_spec
              ~status:"clone" ()
          in
          Dr_bus.Bus.deposit_state bus ~instance:replica_instance image';
          (* duplicate the original's bindings for the replica *)
          List.iter
            (fun ((src : Dr_bus.Bus.endpoint), dst) ->
              Dr_bus.Bus.add_route bus ~src:(replica_instance, snd src) ~dst)
            cap.cap_out_routes;
          List.iter
            (fun (src, (dst : Dr_bus.Bus.endpoint)) ->
              Dr_bus.Bus.add_route bus ~src ~dst:(replica_instance, snd dst))
            cap.cap_in_routes;
          Ok ()
        in
          let* () = restart_old () in
          start_replica ()
        in
        match outcome with
        | Error e -> on_done (Error e)
        | Ok () ->
          record bus "replicate %s -> %s complete" instance replica_instance;
          on_done (Ok replica_instance))
      ()

let replace_stateless bus ~instance ~new_instance ?new_module ?new_host () =
  match P.obj_cap bus ~instance with
  | Error e -> Error e
  | Ok cap -> (
    let module_name = Option.value ~default:cap.cap_module new_module in
    let host = Option.value ~default:cap.cap_host new_host in
    record bus "replace-stateless %s -> %s: %s on %s" instance new_instance
      module_name host;
    let batch = rebind_batch cap ~new_instance in
    match
      P.chg_obj_add bus ~instance:new_instance ~module_name ~host
        ?spec:cap.cap_spec ~status:"normal" ()
    with
    | Error e -> Error e
    | Ok () ->
      P.rebind bus batch;
      P.chg_obj_del bus ~instance;
      record bus "replace-stateless %s -> %s complete" instance new_instance;
      Ok new_instance)

let add_module bus ~instance ~module_name ~host ?spec ~binds () =
  match Dr_bus.Bus.spawn bus ~instance ~module_name ~host ?spec () with
  | Error _ as e -> e
  | Ok () ->
    List.iter (fun (src, dst) -> Dr_bus.Bus.add_route bus ~src ~dst) binds;
    Ok ()

let remove_module bus ~instance =
  List.iter
    (fun ((src : Dr_bus.Bus.endpoint), (dst : Dr_bus.Bus.endpoint)) ->
      if String.equal (fst src) instance || String.equal (fst dst) instance then
        Dr_bus.Bus.del_route bus ~src ~dst)
    (Dr_bus.Bus.all_routes bus);
  Dr_bus.Bus.kill bus ~instance

let run_sync bus ?(max_events = 1_000_000) ?watch script =
  let result = ref None in
  script ~on_done:(fun r -> result := Some r);
  (* a watched instance that crashes, halts or disappears before the
     script completes can never comply with the reconfiguration signal;
     fail fast instead of spinning the event budget on the other
     processes' events *)
  let module Machine = Dr_interp.Machine in
  let doomed () =
    match watch with
    | None -> false
    | Some instance -> (
      match Dr_bus.Bus.process_status bus ~instance with
      | Some (Machine.Crashed _) | Some Machine.Halted | None -> true
      | Some _ -> false)
  in
  Dr_bus.Bus.run_while bus ~max_events (fun () ->
      Option.is_none !result && not (doomed ()));
  match !result with
  | Some r -> r
  | None -> (
    match watch with
    | Some instance when doomed () ->
      Error
        (match Dr_bus.Bus.process_status bus ~instance with
        | Some (Machine.Crashed message) ->
          Printf.sprintf "%s crashed before the reconfiguration completed: %s"
            instance message
        | Some Machine.Halted ->
          Printf.sprintf "%s halted before the reconfiguration completed"
            instance
        | _ ->
          Printf.sprintf "%s was removed before the reconfiguration completed"
            instance)
    | _ -> Error "reconfiguration script did not complete")
