module Bus = Dr_bus.Bus
module Value = Dr_state.Value
module Image = Dr_state.Image
module Codec = Dr_state.Codec
module Wire = Codec.Wire
module Bin_util = Dr_state.Bin_util

type entry =
  | Added_route of Bus.endpoint * Bus.endpoint
  | Deleted_route of Bus.endpoint * Bus.endpoint
  | Moved_queue of { mq_src : Bus.endpoint; mq_dst : Bus.endpoint }
  | Dropped_queue of Bus.endpoint * Value.t list
  | Spawned of string
  | Killed of {
      k_instance : string;
      k_module : string;
      k_host : string;
      k_spec : Dr_mil.Spec.module_spec option;
      k_image : Image.t option;
      k_queues : (string * Value.t list) list;
    }
  | Armed_divulge of string
  | Divulged of { d_cap : Primitives.module_cap; d_image : Image.t }
  | Renamed_transport of { rt_old : string; rt_new : string; rt_fence : bool }
  | Precopy_base of { pb_instance : string; pb_image : Image.t }
  | Divulged_delta of { dd_cap : Primitives.module_cap; dd_delta : Image.delta }

type record =
  | Begin of { sid : int; label : string }
  | Entry of { sid : int; entry : entry }
  | Commit of { sid : int }
  | Abort of { sid : int; reason : string }
  | Undo_done of { sid : int; index : int }
  | Abort_done of { sid : int }
  | Wave_begin of { wid : int; w_group : (string * string) list; w_target : string }
  | Wave_replica_done of { wid : int; wr_slot : string; wr_instance : string }
  | Wave_commit of { wid : int }
  | Wave_abort of { wid : int; w_reason : string }

let malformed fmt = Format.kasprintf (fun s -> raise (Codec.Malformed s)) fmt

(* ------------------------------------------------------------- helpers *)

let w_ep buf (a, b) =
  Wire.write_string buf a;
  Wire.write_string buf b

let r_ep r =
  let a = Wire.read_string r in
  let b = Wire.read_string r in
  (a, b)

let w_list w buf l =
  Wire.write_int buf (List.length l);
  List.iter (w buf) l

let r_list rd r =
  let n = Wire.read_int r in
  if n < 0 || n > 1_000_000 then malformed "bad list length %d" n;
  List.init n (fun _ -> rd r)

let w_opt w buf = function
  | None -> Bin_util.write_u8 buf 0
  | Some v ->
    Bin_util.write_u8 buf 1;
    w buf v

let r_opt rd r =
  match Bin_util.read_u8 r with
  | 0 -> None
  | 1 -> Some (rd r)
  | tag -> malformed "bad option tag %d" tag

let w_bool buf b = Bin_util.write_u8 buf (if b then 1 else 0)
let r_bool r = Bin_util.read_u8 r <> 0

(* images travel as complete DRIMG2 containers: double integrity (the
   container CRC inside the log record's CRC), and one codec for every
   durable artefact *)
let w_image buf image =
  Wire.write_string buf (Bytes.unsafe_to_string (Codec.encode_abstract image))

let r_image r =
  match Codec.decode_abstract (Bytes.of_string (Wire.read_string r)) with
  | Ok image -> image
  | Error e -> malformed "embedded image: %s" e

(* module specifications round-trip through the MIL surface syntax *)
let w_spec buf spec =
  Wire.write_string buf (Format.asprintf "%a" Dr_mil.Mil_pretty.pp_module spec)

let r_spec r =
  let text = Wire.read_string r in
  match (Dr_mil.Mil_parser.parse_config text).Dr_mil.Spec.modules with
  | [ m ] -> m
  | l -> malformed "embedded spec: expected 1 module, found %d" (List.length l)
  | exception Dr_mil.Mil_parser.Error (e, line) ->
    malformed "embedded spec: parse error at line %d: %s" line e
  | exception Dr_lang.Lexer.Error (e, line) ->
    malformed "embedded spec: lexical error at line %d: %s" line e

let w_queues buf qs =
  w_list
    (fun buf (iface, values) ->
      Wire.write_string buf iface;
      w_list Wire.write_value buf values)
    buf qs

let r_queues r =
  r_list
    (fun r ->
      let iface = Wire.read_string r in
      let values = r_list Wire.read_value r in
      (iface, values))
    r

let w_cap buf (c : Primitives.module_cap) =
  Wire.write_string buf c.cap_instance;
  Wire.write_string buf c.cap_module;
  Wire.write_string buf c.cap_host;
  w_opt w_spec buf c.cap_spec;
  w_list (fun buf s -> Wire.write_string buf s) buf c.cap_ifaces;
  w_list (fun buf (s, d) -> w_ep buf s; w_ep buf d) buf c.cap_out_routes;
  w_list (fun buf (s, d) -> w_ep buf s; w_ep buf d) buf c.cap_in_routes

let r_cap r : Primitives.module_cap =
  let cap_instance = Wire.read_string r in
  let cap_module = Wire.read_string r in
  let cap_host = Wire.read_string r in
  let cap_spec = r_opt r_spec r in
  let cap_ifaces = r_list Wire.read_string r in
  let r_route r =
    let s = r_ep r in
    let d = r_ep r in
    (s, d)
  in
  let cap_out_routes = r_list r_route r in
  let cap_in_routes = r_list r_route r in
  { cap_instance; cap_module; cap_host; cap_spec; cap_ifaces; cap_out_routes;
    cap_in_routes }

(* -------------------------------------------------------------- entries *)

let w_entry buf = function
  | Added_route (src, dst) ->
    Bin_util.write_u8 buf 1;
    w_ep buf src;
    w_ep buf dst
  | Deleted_route (src, dst) ->
    Bin_util.write_u8 buf 2;
    w_ep buf src;
    w_ep buf dst
  | Moved_queue { mq_src; mq_dst } ->
    Bin_util.write_u8 buf 3;
    w_ep buf mq_src;
    w_ep buf mq_dst
  | Dropped_queue (ep, values) ->
    Bin_util.write_u8 buf 4;
    w_ep buf ep;
    w_list Wire.write_value buf values
  | Spawned instance ->
    Bin_util.write_u8 buf 5;
    Wire.write_string buf instance
  | Killed { k_instance; k_module; k_host; k_spec; k_image; k_queues } ->
    Bin_util.write_u8 buf 6;
    Wire.write_string buf k_instance;
    Wire.write_string buf k_module;
    Wire.write_string buf k_host;
    w_opt w_spec buf k_spec;
    w_opt w_image buf k_image;
    w_queues buf k_queues
  | Armed_divulge instance ->
    Bin_util.write_u8 buf 7;
    Wire.write_string buf instance
  | Divulged { d_cap; d_image } ->
    Bin_util.write_u8 buf 8;
    w_cap buf d_cap;
    w_image buf d_image
  | Renamed_transport { rt_old; rt_new; rt_fence } ->
    Bin_util.write_u8 buf 9;
    Wire.write_string buf rt_old;
    Wire.write_string buf rt_new;
    w_bool buf rt_fence
  | Precopy_base { pb_instance; pb_image } ->
    Bin_util.write_u8 buf 10;
    Wire.write_string buf pb_instance;
    w_image buf pb_image
  | Divulged_delta { dd_cap; dd_delta } ->
    Bin_util.write_u8 buf 11;
    w_cap buf dd_cap;
    (* like images, deltas travel as complete DRIMGD1 containers *)
    Wire.write_string buf
      (Bytes.unsafe_to_string (Codec.encode_delta dd_delta))

let r_entry r =
  match Bin_util.read_u8 r with
  | 1 ->
    let src = r_ep r in
    let dst = r_ep r in
    Added_route (src, dst)
  | 2 ->
    let src = r_ep r in
    let dst = r_ep r in
    Deleted_route (src, dst)
  | 3 ->
    let mq_src = r_ep r in
    let mq_dst = r_ep r in
    Moved_queue { mq_src; mq_dst }
  | 4 ->
    let ep = r_ep r in
    let values = r_list Wire.read_value r in
    Dropped_queue (ep, values)
  | 5 -> Spawned (Wire.read_string r)
  | 6 ->
    let k_instance = Wire.read_string r in
    let k_module = Wire.read_string r in
    let k_host = Wire.read_string r in
    let k_spec = r_opt r_spec r in
    let k_image = r_opt r_image r in
    let k_queues = r_queues r in
    Killed { k_instance; k_module; k_host; k_spec; k_image; k_queues }
  | 7 -> Armed_divulge (Wire.read_string r)
  | 8 ->
    let d_cap = r_cap r in
    let d_image = r_image r in
    Divulged { d_cap; d_image }
  | 9 ->
    let rt_old = Wire.read_string r in
    let rt_new = Wire.read_string r in
    let rt_fence = r_bool r in
    Renamed_transport { rt_old; rt_new; rt_fence }
  | 10 ->
    let pb_instance = Wire.read_string r in
    let pb_image = r_image r in
    Precopy_base { pb_instance; pb_image }
  | 11 ->
    let dd_cap = r_cap r in
    let dd_delta =
      match Codec.decode_delta (Bytes.of_string (Wire.read_string r)) with
      | Ok d -> d
      | Error e -> malformed "embedded delta: %s" e
    in
    Divulged_delta { dd_cap; dd_delta }
  | tag -> malformed "unknown journal entry tag %d" tag

(* -------------------------------------------------------------- records *)

let kind_begin = 1
let kind_entry = 2
let kind_commit = 3
let kind_abort = 4
let kind_undo_done = 5
let kind_abort_done = 6
let kind_wave_begin = 7
let kind_wave_replica_done = 8
let kind_wave_commit = 9
let kind_wave_abort = 10

let kind_of = function
  | Begin _ -> kind_begin
  | Entry _ -> kind_entry
  | Commit _ -> kind_commit
  | Abort _ -> kind_abort
  | Undo_done _ -> kind_undo_done
  | Abort_done _ -> kind_abort_done
  | Wave_begin _ -> kind_wave_begin
  | Wave_replica_done _ -> kind_wave_replica_done
  | Wave_commit _ -> kind_wave_commit
  | Wave_abort _ -> kind_wave_abort

let is_wave_kind kind = kind >= kind_wave_begin && kind <= kind_wave_abort

let sid_of = function
  | Begin { sid; _ }
  | Entry { sid; _ }
  | Commit { sid }
  | Abort { sid; _ }
  | Undo_done { sid; _ }
  | Abort_done { sid } ->
    sid
  | Wave_begin { wid; _ }
  | Wave_replica_done { wid; _ }
  | Wave_commit { wid }
  | Wave_abort { wid; _ } ->
    wid

let encode record =
  Bin_util.with_buffer @@ fun buf ->
  Wire.write_int buf (sid_of record);
  (match record with
  | Begin { label; _ } -> Wire.write_string buf label
  | Entry { entry; _ } -> w_entry buf entry
  | Commit _ | Abort_done _ | Wave_commit _ -> ()
  | Abort { reason; _ } -> Wire.write_string buf reason
  | Undo_done { index; _ } -> Wire.write_int buf index
  | Wave_begin { w_group; w_target; _ } ->
    w_list
      (fun buf (slot, instance) ->
        Wire.write_string buf slot;
        Wire.write_string buf instance)
      buf w_group;
    Wire.write_string buf w_target
  | Wave_replica_done { wr_slot; wr_instance; _ } ->
    Wire.write_string buf wr_slot;
    Wire.write_string buf wr_instance
  | Wave_abort { w_reason; _ } -> Wire.write_string buf w_reason);
  Buffer.to_bytes buf

let decode ~kind body =
  Wire.guarded @@ fun () ->
  let r = Bin_util.reader body in
  let sid = Wire.read_int r in
  if sid < 1 then malformed "bad script id %d" sid;
  let record =
    if kind = kind_begin then Begin { sid; label = Wire.read_string r }
    else if kind = kind_entry then Entry { sid; entry = r_entry r }
    else if kind = kind_commit then Commit { sid }
    else if kind = kind_abort then Abort { sid; reason = Wire.read_string r }
    else if kind = kind_undo_done then
      Undo_done { sid; index = Wire.read_int r }
    else if kind = kind_abort_done then Abort_done { sid }
    else if kind = kind_wave_begin then begin
      let w_group =
        r_list
          (fun r ->
            let slot = Wire.read_string r in
            let instance = Wire.read_string r in
            (slot, instance))
          r
      in
      let w_target = Wire.read_string r in
      Wave_begin { wid = sid; w_group; w_target }
    end
    else if kind = kind_wave_replica_done then begin
      let wr_slot = Wire.read_string r in
      let wr_instance = Wire.read_string r in
      Wave_replica_done { wid = sid; wr_slot; wr_instance }
    end
    else if kind = kind_wave_commit then Wave_commit { wid = sid }
    else if kind = kind_wave_abort then
      Wave_abort { wid = sid; w_reason = Wire.read_string r }
    else malformed "unknown control-log record kind %d" kind
  in
  if Bin_util.remaining r <> 0 then
    malformed "%d trailing byte(s) in control-log record" (Bin_util.remaining r);
  record

let describe_entry = function
  | Added_route (s, d) ->
    Printf.sprintf "add %s.%s -> %s.%s" (fst s) (snd s) (fst d) (snd d)
  | Deleted_route (s, d) ->
    Printf.sprintf "del %s.%s -> %s.%s" (fst s) (snd s) (fst d) (snd d)
  | Moved_queue { mq_src = s; mq_dst = d } ->
    Printf.sprintf "cq %s.%s -> %s.%s" (fst s) (snd s) (fst d) (snd d)
  | Dropped_queue (ep, vs) ->
    Printf.sprintf "rmq %s.%s (%d message(s))" (fst ep) (snd ep)
      (List.length vs)
  | Spawned i -> Printf.sprintf "spawned %s" i
  | Killed { k_instance; k_image; _ } ->
    Printf.sprintf "killed %s%s" k_instance
      (match k_image with
      | Some img -> Printf.sprintf " (image: %d byte(s))" (Image.byte_size img)
      | None -> "")
  | Armed_divulge i -> Printf.sprintf "armed divulge for %s" i
  | Divulged { d_cap; d_image } ->
    Printf.sprintf "%s divulged %d byte(s), digest %016Lx"
      d_cap.Primitives.cap_instance
      (Image.byte_size d_image) (Image.digest d_image)
  | Renamed_transport { rt_old; rt_new; rt_fence } ->
    Printf.sprintf "renamed transport %s -> %s%s" rt_old rt_new
      (if rt_fence then " (fenced)" else "")
  | Precopy_base { pb_instance; pb_image } ->
    Printf.sprintf "pre-copy base of %s: %d byte(s), digest %016Lx"
      pb_instance (Image.byte_size pb_image) (Image.digest pb_image)
  | Divulged_delta { dd_cap; dd_delta } ->
    Printf.sprintf "%s divulged delta: %d slot(s), %d byte(s), base %016Lx"
      dd_cap.Primitives.cap_instance
      (List.length dd_delta.Image.d_slots)
      (Image.delta_byte_size dd_delta) dd_delta.Image.d_base_digest

let describe = function
  | Begin { sid; label } -> Printf.sprintf "begin   #%d %s" sid label
  | Entry { sid; entry } -> Printf.sprintf "entry   #%d %s" sid (describe_entry entry)
  | Commit { sid } -> Printf.sprintf "commit  #%d" sid
  | Abort { sid; reason } -> Printf.sprintf "abort   #%d %s" sid reason
  | Undo_done { sid; index } -> Printf.sprintf "undone  #%d step %d" sid index
  | Abort_done { sid } -> Printf.sprintf "aborted #%d" sid
  | Wave_begin { wid; w_group; w_target } ->
    Printf.sprintf "wave    #%d begin: %d replica(s) -> %s" wid
      (List.length w_group) w_target
  | Wave_replica_done { wid; wr_slot; wr_instance } ->
    Printf.sprintf "wave    #%d slot %s now %s" wid wr_slot wr_instance
  | Wave_commit { wid } -> Printf.sprintf "wave    #%d committed" wid
  | Wave_abort { wid; w_reason } ->
    Printf.sprintf "wave    #%d aborted: %s" wid w_reason
