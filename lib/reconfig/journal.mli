(** Transactional journal for reconfiguration scripts.

    Every primitive a script applies to the bus — routes deleted and
    added, queues moved and dropped, instances spawned and killed,
    divulge callbacks armed — goes through the journal, which records
    the undo information before applying the operation. On any mid-script
    failure (spawn error, state-translation failure, target crash,
    deadline expiry) {!rollback} undoes the applied prefix in reverse
    order, restoring the old routes and queues, cancelling armed
    callbacks, killing a half-started clone, and returning the old
    instance to service (re-depositing its own image if it already
    halted after divulging). {!commit} discards the journal silently, so
    the success path of a script produces exactly the trace it produced
    before journalling existed (pinned by the golden-trace tests). *)

type t

val create : Dr_bus.Bus.t -> label:string -> t
(** [label] names the transaction in rollback trace entries. *)

val entry_count : t -> int
(** Applied-and-not-yet-committed primitives. *)

(** {1 Journalled primitives}

    Each applies the bus operation (producing its usual trace) and
    records the inverse. *)

val add_route : t -> src:Dr_bus.Bus.endpoint -> dst:Dr_bus.Bus.endpoint -> unit

val del_route : t -> src:Dr_bus.Bus.endpoint -> dst:Dr_bus.Bus.endpoint -> unit

val copy_queue : t -> src:Dr_bus.Bus.endpoint -> dst:Dr_bus.Bus.endpoint -> unit

val drop_queue : t -> Dr_bus.Bus.endpoint -> unit

val spawn :
  t ->
  instance:string ->
  module_name:string ->
  host:string ->
  ?spec:Dr_mil.Spec.module_spec ->
  ?status:string ->
  unit ->
  (unit, string) result

val kill :
  t ->
  instance:string ->
  module_name:string ->
  host:string ->
  ?spec:Dr_mil.Spec.module_spec ->
  ?image:Dr_state.Image.t ->
  unit ->
  unit
(** Remove [instance], first snapshotting its queued messages. Undo
    respawns it (as a clone), re-deposits [image] when given, and
    re-injects the snapshotted queues. *)

val arm_divulge : t -> instance:string -> (Dr_state.Image.t -> unit) -> unit
(** {!Dr_bus.Bus.on_divulge} through the journal; undo disarms the
    callback if it has not fired. *)

val note_divulged :
  t -> cap:Primitives.module_cap -> image:Dr_state.Image.t -> unit
(** Record that the target complied: it divulged [image] and is halting.
    Undo returns it to service — kill the halted shell, respawn it under
    its own name on its own host, re-deposit [image], and re-inject the
    messages parked at its interfaces — unless a later journal entry
    already restored it. *)

val rebind : t -> Primitives.bind_batch -> unit
(** Apply a rebinding batch through the journal, command by command, in
    order, at one instant of virtual time (as {!Primitives.rebind}). *)

val rename_transport :
  t -> old_instance:string -> new_instance:string -> fence:bool -> unit
(** Transfer the reliable layer's per-route sequence state from
    [old_instance] to [new_instance] ({!Dr_bus.Bus.transport_rename});
    undo transfers it back. A complete no-op — no journal entry
    either — when the bus has no transport installed, so fault-free
    rollback step counts are unchanged. *)

val commit : t -> unit
(** Discard the journal: the transaction is complete. Silent — no trace
    entry — so committed scripts trace exactly as they always did. *)

val rollback : t -> reason:string -> unit
(** Undo every recorded primitive, newest first. Records a ["rollback"]
    header plus one ["rollback"] entry per undone primitive. The journal
    is empty afterwards; rolling back twice is a no-op. *)
