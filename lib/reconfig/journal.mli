(** Transactional journal for reconfiguration scripts.

    Every primitive a script applies to the bus — routes deleted and
    added, queues moved and dropped, instances spawned and killed,
    divulge callbacks armed — goes through the journal, which records
    the undo information before applying the operation. On any mid-script
    failure (spawn error, state-translation failure, target crash,
    deadline expiry) {!rollback} undoes the applied prefix in reverse
    order, restoring the old routes and queues, cancelling armed
    callbacks, killing a half-started clone, and returning the old
    instance to service (re-depositing its own image if it already
    halted after divulging). {!commit} discards the journal silently, so
    the success path of a script produces exactly the trace it produced
    before journalling existed (pinned by the golden-trace tests).

    {b Durability}: when the bus carries a write-ahead log
    ({!Dr_bus.Bus.set_wal}), the journal follows the write-ahead
    discipline — each primitive's redo+undo record ({!Persist.record})
    is appended durably {e before} the bus operation applies, scripts
    open with a [Begin] record and close with [Commit] or
    [Abort]/[Undo_done]*/[Abort_done], and divulged state images are
    spilled into the log. After each record lands the journal runs the
    controller-crash tick ({!Dr_bus.Bus.ctl_tick}), so an armed
    [ctlcrash@N] fault kills the controller precisely between a durable
    record and the next primitive; {!Recovery.replay} then finishes the
    story. With no log attached every [Wal] interaction vanishes and
    behaviour is byte-identical to the in-memory journal. *)

(** The undo record of one applied primitive ({!Persist.entry},
    re-exported). *)
type entry = Persist.entry =
  | Added_route of Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint
  | Deleted_route of Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint
  | Moved_queue of {
      mq_src : Dr_bus.Bus.endpoint;
      mq_dst : Dr_bus.Bus.endpoint;
    }
  | Dropped_queue of Dr_bus.Bus.endpoint * Dr_state.Value.t list
  | Spawned of string
  | Killed of {
      k_instance : string;
      k_module : string;
      k_host : string;
      k_spec : Dr_mil.Spec.module_spec option;
      k_image : Dr_state.Image.t option;
      k_queues : (string * Dr_state.Value.t list) list;
    }
  | Armed_divulge of string
  | Divulged of {
      d_cap : Primitives.module_cap;
      d_image : Dr_state.Image.t;
    }
  | Renamed_transport of { rt_old : string; rt_new : string; rt_fence : bool }
  | Precopy_base of { pb_instance : string; pb_image : Dr_state.Image.t }
  | Divulged_delta of {
      dd_cap : Primitives.module_cap;
      dd_delta : Dr_state.Image.delta;
    }

type t

val create : Dr_bus.Bus.t -> label:string -> t
(** [label] names the transaction in rollback trace entries. On a bus
    with a control log this assigns a fresh script id and appends the
    [Begin] record. *)

val restore :
  Dr_bus.Bus.t -> label:string -> sid:int -> entries:entry list -> t
(** Rebuild a journal from entries read back off the control log
    (oldest first, application order). Appends nothing — the records
    are already durable. For {!Recovery}. *)

val entry_count : t -> int
(** Applied-and-not-yet-committed primitives. *)

val label : t -> string
(** The script label given to {!create} — rollback traces carry it, so
    recovery traces are attributable to the script that died. *)

val sid : t -> int
(** The durable script id (0 on a bus without a control log). *)

(** {1 Journalled primitives}

    Each applies the bus operation (producing its usual trace) and
    records the inverse. *)

val add_route : t -> src:Dr_bus.Bus.endpoint -> dst:Dr_bus.Bus.endpoint -> unit

val del_route : t -> src:Dr_bus.Bus.endpoint -> dst:Dr_bus.Bus.endpoint -> unit

val copy_queue : t -> src:Dr_bus.Bus.endpoint -> dst:Dr_bus.Bus.endpoint -> unit

val drop_queue : t -> Dr_bus.Bus.endpoint -> unit

val spawn :
  t ->
  instance:string ->
  module_name:string ->
  host:string ->
  ?spec:Dr_mil.Spec.module_spec ->
  ?status:string ->
  unit ->
  (unit, string) result

val kill :
  t ->
  instance:string ->
  module_name:string ->
  host:string ->
  ?spec:Dr_mil.Spec.module_spec ->
  ?image:Dr_state.Image.t ->
  unit ->
  unit
(** Remove [instance], first snapshotting its queued messages. Undo
    respawns it (as a clone), re-deposits [image] when given, and
    re-injects the snapshotted queues. *)

val arm_divulge : t -> instance:string -> (Dr_state.Image.t -> unit) -> unit
(** {!Dr_bus.Bus.on_divulge} through the journal; undo disarms the
    callback if it has not fired. *)

val note_precopy_base :
  t -> instance:string -> image:Dr_state.Image.t -> unit
(** Persist a live pre-copy snapshot of a still-running [instance].
    Nothing applied, nothing to undo — the record exists so a later
    delta divulge ({!note_divulged} [?delta]) resolves on recovery. *)

val note_divulged :
  ?delta:Dr_state.Image.delta ->
  t ->
  cap:Primitives.module_cap ->
  image:Dr_state.Image.t ->
  unit
(** Record that the target complied: it divulged [image] and is halting.
    Undo returns it to service — kill the halted shell, respawn it under
    its own name on its own host, re-deposit [image], and re-inject the
    messages parked at its interfaces — unless a later journal entry
    already restored it. With [?delta], only the dirtied slots are
    written to the log (a [Divulged_delta] against the pre-copy base);
    the in-memory undo entry still carries the full [image]. *)

val rebind : t -> Primitives.bind_batch -> unit
(** Apply a rebinding batch through the journal, command by command, in
    order, at one instant of virtual time (as {!Primitives.rebind}). *)

val rename_transport :
  t -> old_instance:string -> new_instance:string -> fence:bool -> unit
(** Transfer the reliable layer's per-route sequence state from
    [old_instance] to [new_instance] ({!Dr_bus.Bus.transport_rename});
    undo transfers it back. A complete no-op — no journal entry
    either — when the bus has no transport installed, so fault-free
    rollback step counts are unchanged. *)

val commit : t -> unit
(** Discard the journal: the transaction is complete. Silent — no trace
    entry — so committed scripts trace exactly as they always did. *)

val rollback : t -> reason:string -> unit
(** Undo every recorded primitive, newest first. Records a ["rollback"]
    header plus one ["rollback"] entry per undone primitive, each
    prefixed ["label [i/N]: "] with the entry's 1-based application
    index — so every undo line is attributable to its script and step.
    The journal is empty afterwards; rolling back twice is a no-op. On
    a logged bus this also appends [Abort], one [Undo_done] per undone
    step, and [Abort_done]. *)

val resume_rollback :
  t -> reason:string -> already_undone:int -> abort_logged:bool -> unit
(** {!rollback} for {!Recovery}: skip the [already_undone] newest
    entries (their [Undo_done] records are on the log — the controller
    died mid-rollback), keep the original [i/N] numbering, and don't
    re-append [Abort] when [abort_logged]. With [~already_undone:0
    ~abort_logged:false] this is exactly {!rollback} — replayed
    rollback traces are byte-identical to live ones. *)
