module Bus = Dr_bus.Bus
module Value = Dr_state.Value
module Image = Dr_state.Image

type entry =
  | Added_route of Bus.endpoint * Bus.endpoint
  | Deleted_route of Bus.endpoint * Bus.endpoint
  | Moved_queue of { mq_src : Bus.endpoint; mq_dst : Bus.endpoint }
  | Dropped_queue of Bus.endpoint * Value.t list
  | Spawned of string
  | Killed of {
      k_instance : string;
      k_module : string;
      k_host : string;
      k_spec : Dr_mil.Spec.module_spec option;
      k_image : Image.t option;
      k_queues : (string * Value.t list) list;
    }
  | Armed_divulge of string
  | Divulged of { d_cap : Primitives.module_cap; d_image : Image.t }
  | Renamed_transport of { rt_old : string; rt_new : string; rt_fence : bool }

type t = {
  bus : Bus.t;
  label : string;
  mutable entries : entry list;  (* newest first *)
}

let create bus ~label = { bus; label; entries = [] }

let entry_count t = List.length t.entries

let push t e = t.entries <- e :: t.entries

let record t fmt =
  Format.kasprintf
    (fun detail ->
      Dr_sim.Trace.record (Bus.trace t.bus) ~time:(Bus.now t.bus)
        ~category:"rollback" ~detail)
    fmt

(* ----------------------------------------------------------- primitives *)

let add_route t ~src ~dst =
  Bus.add_route t.bus ~src ~dst;
  push t (Added_route (src, dst))

let del_route t ~src ~dst =
  Bus.del_route t.bus ~src ~dst;
  push t (Deleted_route (src, dst))

let copy_queue t ~src ~dst =
  Bus.copy_queue t.bus ~src ~dst;
  push t (Moved_queue { mq_src = src; mq_dst = dst })

let drop_queue t ep =
  let values = Bus.peek_queue t.bus ep in
  Bus.drop_queue t.bus ep;
  push t (Dropped_queue (ep, values))

let spawn t ~instance ~module_name ~host ?spec ?status () =
  match Bus.spawn t.bus ~instance ~module_name ~host ?spec ?status () with
  | Error _ as e -> e
  | Ok () ->
    push t (Spawned instance);
    Ok ()

let instance_queues bus ~instance ~ifaces =
  List.map (fun iface -> (iface, Bus.peek_queue bus (instance, iface))) ifaces

let kill t ~instance ~module_name ~host ?spec ?image () =
  let ifaces =
    match Bus.instance_spec t.bus ~instance with
    | Some s -> List.map (fun i -> i.Dr_mil.Spec.if_name) s.ifaces
    | None ->
      List.sort_uniq String.compare
        (List.map snd
           (List.filter_map
              (fun ((src, dst) : Bus.endpoint * Bus.endpoint) ->
                if String.equal (fst dst) instance then Some dst
                else if String.equal (fst src) instance then Some src
                else None)
              (Bus.all_routes t.bus)))
  in
  let k_queues = instance_queues t.bus ~instance ~ifaces in
  Bus.kill t.bus ~instance;
  push t
    (Killed
       { k_instance = instance;
         k_module = module_name;
         k_host = host;
         k_spec = spec;
         k_image = image;
         k_queues })

let arm_divulge t ~instance callback =
  Bus.on_divulge t.bus ~instance callback;
  push t (Armed_divulge instance)

let note_divulged t ~cap ~image =
  push t (Divulged { d_cap = cap; d_image = image })

(* Deliberately a complete no-op (no journal entry, no bus call) when
   no transport is installed: on the classic fire-and-forget bus a
   rename has nothing to move, and journalling it anyway would change
   the "rolling back N step(s)" counts of fault-free runs (pinned by
   the golden traces). *)
let rename_transport t ~old_instance ~new_instance ~fence =
  if Bus.has_transport t.bus then begin
    Bus.transport_rename t.bus ~old_instance ~new_instance ~fence;
    push t
      (Renamed_transport
         { rt_old = old_instance; rt_new = new_instance; rt_fence = fence })
  end

let rebind t batch =
  List.iter
    (fun (command : Primitives.bind_command) ->
      match command with
      | Primitives.Add (src, dst) -> add_route t ~src ~dst
      | Primitives.Del (src, dst) -> del_route t ~src ~dst
      | Primitives.Copy_queue (src, dst) -> copy_queue t ~src ~dst
      | Primitives.Remove_queue ep -> drop_queue t ep)
    (Primitives.batch_commands batch)

(* ----------------------------------------------------------- undo *)

let reinject bus ~instance queues =
  List.iter
    (fun (iface, values) ->
      List.iter (fun v -> Bus.inject bus ~dst:(instance, iface) v) values)
    queues

let restore_instance t ~restored ~instance ~module_name ~host ?spec ~image
    ~queues () =
  match
    Bus.spawn t.bus ~instance ~module_name ~host ?spec ~status:"clone" ()
  with
  | Error e ->
    record t "FAILED to restore instance %s on %s: %s" instance host e
  | Ok () ->
    (match image with
    | Some image -> Bus.deposit_state t.bus ~instance image
    | None -> ());
    reinject t.bus ~instance queues;
    Hashtbl.replace restored instance ();
    record t "restored instance %s" instance

let undo t ~restored = function
  | Added_route (src, dst) ->
    Bus.del_route t.bus ~src ~dst;
    record t "removed route %s.%s -> %s.%s" (fst src) (snd src) (fst dst)
      (snd dst)
  | Deleted_route (src, dst) ->
    Bus.add_route t.bus ~src ~dst;
    record t "restored route %s.%s -> %s.%s" (fst src) (snd src) (fst dst)
      (snd dst)
  | Moved_queue { mq_src; mq_dst } ->
    (* a script moves queues only at its final instant, so at rollback
       time the destination still holds exactly the moved messages (no
       engine event has fired in between); hand them back *)
    let values = Bus.take_queue t.bus mq_dst in
    List.iter (fun v -> Bus.inject t.bus ~dst:mq_src v) values;
    record t "returned %d message(s) to %s.%s" (List.length values)
      (fst mq_src) (snd mq_src)
  | Dropped_queue (ep, values) ->
    List.iter (fun v -> Bus.inject t.bus ~dst:ep v) values;
    record t "refilled %s.%s with %d message(s)" (fst ep) (snd ep)
      (List.length values)
  | Spawned instance ->
    Bus.kill t.bus ~instance;
    record t "removed half-started instance %s" instance
  | Killed { k_instance; k_module; k_host; k_spec; k_image; k_queues } ->
    restore_instance t ~restored ~instance:k_instance ~module_name:k_module
      ~host:k_host ?spec:k_spec ~image:k_image ~queues:k_queues ()
  | Armed_divulge instance ->
    Bus.cancel_divulge t.bus ~instance;
    record t "disarmed divulge callback for %s" instance
  | Renamed_transport { rt_old; rt_new; rt_fence } ->
    Bus.transport_rename t.bus ~old_instance:rt_new ~new_instance:rt_old
      ~fence:rt_fence;
    record t "returned reliable channels of %s to %s" rt_new rt_old
  | Divulged { d_cap; d_image } ->
    (* The target complied: it divulged and is halting — it may even
       still be [Ready], winding down the tail of the quantum that
       divulged, but its continuation is spent either way. Return it to
       service with its own image, unless an earlier undo step (a
       [Killed] entry) already resurrected it. *)
    let instance = d_cap.Primitives.cap_instance in
    if Hashtbl.mem restored instance then
      record t "%s already back in service" instance
    else if Bus.host_is_down t.bus d_cap.Primitives.cap_host then
      (* killing the shell and failing the respawn would lose the
         instance outright; leave it crashed for a supervisor *)
      record t "cannot restore %s: host %s is down" instance
        d_cap.Primitives.cap_host
    else begin
      let queues =
        instance_queues t.bus ~instance ~ifaces:d_cap.Primitives.cap_ifaces
      in
      if Option.is_some (Bus.process_status t.bus ~instance) then
        Bus.kill t.bus ~instance;
      restore_instance t ~restored ~instance
        ~module_name:d_cap.Primitives.cap_module
        ~host:d_cap.Primitives.cap_host ?spec:d_cap.Primitives.cap_spec
        ~image:(Some d_image) ~queues ()
    end

let rollback t ~reason =
  match t.entries with
  | [] -> ()
  | entries ->
    t.entries <- [];
    record t "%s: rolling back %d step(s): %s" t.label (List.length entries)
      reason;
    let restored = Hashtbl.create 4 in
    List.iter (undo t ~restored) entries

let commit t = t.entries <- []
