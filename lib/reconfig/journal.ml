module Bus = Dr_bus.Bus
module Wal = Dr_wal.Wal
module Value = Dr_state.Value
module Image = Dr_state.Image

type entry = Persist.entry =
  | Added_route of Bus.endpoint * Bus.endpoint
  | Deleted_route of Bus.endpoint * Bus.endpoint
  | Moved_queue of { mq_src : Bus.endpoint; mq_dst : Bus.endpoint }
  | Dropped_queue of Bus.endpoint * Value.t list
  | Spawned of string
  | Killed of {
      k_instance : string;
      k_module : string;
      k_host : string;
      k_spec : Dr_mil.Spec.module_spec option;
      k_image : Image.t option;
      k_queues : (string * Value.t list) list;
    }
  | Armed_divulge of string
  | Divulged of { d_cap : Primitives.module_cap; d_image : Image.t }
  | Renamed_transport of { rt_old : string; rt_new : string; rt_fence : bool }
  | Precopy_base of { pb_instance : string; pb_image : Image.t }
  | Divulged_delta of { dd_cap : Primitives.module_cap; dd_delta : Image.delta }

type t = {
  bus : Bus.t;
  label : string;
  sid : int;  (* 0 when the bus has no control log *)
  mutable entries : entry list;  (* newest first *)
}

(* checkpoint the control log once this much has accumulated and no
   script is open (a checkpoint garbage-collects everything before it,
   so an open script's records must never be behind one) *)
let checkpoint_after = 64 * 1024

(* Append one control record. Returns [true] when a log is attached —
   the caller then places the controller-crash tick ([Bus.ctl_tick])
   after the corresponding bus operation has applied, so a crash always
   lands on a durable-record/applied-operation boundary and undo stays
   exact. *)
let log t record =
  match Bus.wal t.bus with
  | None -> false
  | Some wal ->
    ignore
      (Wal.append wal ~kind:(Persist.kind_of record) (Persist.encode record)
        : int);
    true

let maybe_checkpoint t =
  match Bus.wal t.bus with
  | Some wal
    when Bus.ctl_scripts_open t.bus = 0
         && Wal.bytes_since_checkpoint wal >= checkpoint_after ->
    Wal.checkpoint wal
  | _ -> ()

let create bus ~label =
  match Bus.wal bus with
  | None -> { bus; label; sid = 0; entries = [] }
  | Some _ ->
    let sid = Bus.next_script_id bus in
    let t = { bus; label; sid; entries = [] } in
    ignore (log t (Persist.Begin { sid; label }) : bool);
    Bus.ctl_script_opened bus;
    Bus.ctl_tick bus;
    t

(* Recovery: rebuild a journal from entries read back off the log.
   Nothing is appended (the records are already durable) and the
   open-script accounting is recovery's business, not ours. *)
let restore bus ~label ~sid ~entries =
  { bus; label; sid; entries = List.rev entries }

let entry_count t = List.length t.entries
let label t = t.label
let sid t = t.sid

let push t e = t.entries <- e :: t.entries

let record t fmt =
  Format.kasprintf
    (fun detail ->
      Dr_sim.Trace.record (Bus.trace t.bus) ~time:(Bus.now t.bus)
        ~category:"rollback" ~detail)
    fmt

(* ----------------------------------------------------------- primitives *)

(* Each primitive follows the write-ahead discipline: the redo+undo
   record is appended (durably) first, the bus operation applies
   second, and the crash tick runs last — so every logged record's
   operation has taken effect when a controller crash fires, and
   recovery's undo of the logged prefix is exact. *)
let logged_op t entry apply =
  let logged = log t (Persist.Entry { sid = t.sid; entry }) in
  apply ();
  push t entry;
  if logged then Bus.ctl_tick t.bus

let add_route t ~src ~dst =
  logged_op t (Added_route (src, dst)) (fun () -> Bus.add_route t.bus ~src ~dst)

let del_route t ~src ~dst =
  logged_op t (Deleted_route (src, dst)) (fun () ->
      Bus.del_route t.bus ~src ~dst)

let copy_queue t ~src ~dst =
  logged_op t
    (Moved_queue { mq_src = src; mq_dst = dst })
    (fun () -> Bus.copy_queue t.bus ~src ~dst)

let drop_queue t ep =
  let values = Bus.peek_queue t.bus ep in
  logged_op t (Dropped_queue (ep, values)) (fun () -> Bus.drop_queue t.bus ep)

let spawn t ~instance ~module_name ~host ?spec ?status () =
  (* the one primitive whose bus operation can fail: apply first, log
     only the success — a failed spawn leaves nothing to undo, and a
     record for an unapplied operation would make replay respawn a
     process that never ran. The crash tick still follows the append. *)
  match Bus.spawn t.bus ~instance ~module_name ~host ?spec ?status () with
  | Error _ as e -> e
  | Ok () ->
    let logged = log t (Persist.Entry { sid = t.sid; entry = Spawned instance }) in
    push t (Spawned instance);
    if logged then Bus.ctl_tick t.bus;
    Ok ()

let instance_queues bus ~instance ~ifaces =
  List.map (fun iface -> (iface, Bus.peek_queue bus (instance, iface))) ifaces

let kill t ~instance ~module_name ~host ?spec ?image () =
  let ifaces =
    match Bus.instance_spec t.bus ~instance with
    | Some s -> List.map (fun i -> i.Dr_mil.Spec.if_name) s.ifaces
    | None ->
      List.sort_uniq String.compare
        (List.map snd
           (List.filter_map
              (fun ((src, dst) : Bus.endpoint * Bus.endpoint) ->
                if String.equal (fst dst) instance then Some dst
                else if String.equal (fst src) instance then Some src
                else None)
              (Bus.all_routes t.bus)))
  in
  let k_queues = instance_queues t.bus ~instance ~ifaces in
  logged_op t
    (Killed
       { k_instance = instance;
         k_module = module_name;
         k_host = host;
         k_spec = spec;
         k_image = image;
         k_queues })
    (fun () -> Bus.kill t.bus ~instance)

let arm_divulge t ~instance callback =
  logged_op t (Armed_divulge instance) (fun () ->
      Bus.on_divulge t.bus ~instance callback)

let note_precopy_base t ~instance ~image =
  (* no bus operation — the pre-copy snapshot goes to the log so a later
     Divulged_delta can be resolved against it on recovery. Nothing to
     undo: a base that never gains a delta is inert. *)
  logged_op t (Precopy_base { pb_instance = instance; pb_image = image })
    (fun () -> ())

let note_divulged ?delta t ~cap ~image =
  (* no bus operation — the record spills the divulged image (its own
     DRIMG2 checksum inside the log record's CRC) so recovery can
     return the old instance to service. With [?delta] (pre-copy path)
     only the dirtied slots hit the wire as a DRIMGD1 container; the
     in-memory journal still holds the full image, so rollback never
     depends on delta resolution. *)
  match delta with
  | None -> logged_op t (Divulged { d_cap = cap; d_image = image }) (fun () -> ())
  | Some d ->
    let logged =
      log t
        (Persist.Entry
           { sid = t.sid;
             entry = Divulged_delta { dd_cap = cap; dd_delta = d } })
    in
    push t (Divulged { d_cap = cap; d_image = image });
    if logged then Bus.ctl_tick t.bus

(* Deliberately a complete no-op (no journal entry, no bus call) when
   no transport is installed: on the classic fire-and-forget bus a
   rename has nothing to move, and journalling it anyway would change
   the "rolling back N step(s)" counts of fault-free runs (pinned by
   the golden traces). *)
let rename_transport t ~old_instance ~new_instance ~fence =
  if Bus.has_transport t.bus then
    logged_op t
      (Renamed_transport
         { rt_old = old_instance; rt_new = new_instance; rt_fence = fence })
      (fun () ->
        Bus.transport_rename t.bus ~old_instance ~new_instance ~fence)

let rebind t batch =
  List.iter
    (fun (command : Primitives.bind_command) ->
      match command with
      | Primitives.Add (src, dst) -> add_route t ~src ~dst
      | Primitives.Del (src, dst) -> del_route t ~src ~dst
      | Primitives.Copy_queue (src, dst) -> copy_queue t ~src ~dst
      | Primitives.Remove_queue ep -> drop_queue t ep)
    (Primitives.batch_commands batch)

(* ----------------------------------------------------------- undo *)

let reinject bus ~instance queues =
  List.iter
    (fun (iface, values) ->
      List.iter (fun v -> Bus.inject bus ~dst:(instance, iface) v) values)
    queues

let restore_instance t ~pfx ~restored ~instance ~module_name ~host ?spec ~image
    ~queues () =
  if Option.is_some (Bus.process_status t.bus ~instance) then begin
    (* already running — a pre-crash undo step restored it before the
       controller died and recovery is re-walking the tail *)
    Hashtbl.replace restored instance ();
    record t "%s%s already back in service" pfx instance
  end
  else
    match
      Bus.spawn t.bus ~instance ~module_name ~host ?spec ~status:"clone" ()
    with
    | Error e ->
      record t "%sFAILED to restore instance %s on %s: %s" pfx instance host e
    | Ok () ->
      (match image with
      | Some image -> Bus.deposit_state t.bus ~instance image
      | None -> ());
      reinject t.bus ~instance queues;
      Hashtbl.replace restored instance ();
      record t "%srestored instance %s" pfx instance

let undo t ~pfx ~restored = function
  | Added_route (src, dst) ->
    Bus.del_route t.bus ~src ~dst;
    record t "%sremoved route %s.%s -> %s.%s" pfx (fst src) (snd src) (fst dst)
      (snd dst)
  | Deleted_route (src, dst) ->
    Bus.add_route t.bus ~src ~dst;
    record t "%srestored route %s.%s -> %s.%s" pfx (fst src) (snd src)
      (fst dst) (snd dst)
  | Moved_queue { mq_src; mq_dst } ->
    (* a script moves queues only at its final instant, so at rollback
       time the destination still holds exactly the moved messages (no
       engine event has fired in between); hand them back *)
    let values = Bus.take_queue t.bus mq_dst in
    List.iter (fun v -> Bus.inject t.bus ~dst:mq_src v) values;
    record t "%sreturned %d message(s) to %s.%s" pfx (List.length values)
      (fst mq_src) (snd mq_src)
  | Dropped_queue (ep, values) ->
    List.iter (fun v -> Bus.inject t.bus ~dst:ep v) values;
    record t "%srefilled %s.%s with %d message(s)" pfx (fst ep) (snd ep)
      (List.length values)
  | Spawned instance ->
    Bus.kill t.bus ~instance;
    record t "%sremoved half-started instance %s" pfx instance
  | Killed { k_instance; k_module; k_host; k_spec; k_image; k_queues } ->
    restore_instance t ~pfx ~restored ~instance:k_instance
      ~module_name:k_module ~host:k_host ?spec:k_spec ~image:k_image
      ~queues:k_queues ()
  | Armed_divulge instance ->
    Bus.cancel_divulge t.bus ~instance;
    record t "%sdisarmed divulge callback for %s" pfx instance
  | Renamed_transport { rt_old; rt_new; rt_fence } ->
    Bus.transport_rename t.bus ~old_instance:rt_new ~new_instance:rt_old
      ~fence:rt_fence;
    record t "%sreturned reliable channels of %s to %s" pfx rt_new rt_old
  | Precopy_base { pb_instance; _ } ->
    (* a snapshot of a still-running instance: nothing was changed *)
    record t "%spre-copy base of %s discarded" pfx pb_instance
  | Divulged_delta { dd_cap; _ } ->
    (* never in a live journal (note_divulged keeps the full image in
       memory) — only a recovery that failed to resolve the base could
       surface one, and scan rejects that earlier. Nothing sound to
       restore from a bare delta. *)
    record t "%scannot restore %s from an unresolved delta" pfx
      dd_cap.Primitives.cap_instance
  | Divulged { d_cap; d_image } ->
    (* The target complied: it divulged and is halting — it may even
       still be [Ready], winding down the tail of the quantum that
       divulged, but its continuation is spent either way. Return it to
       service with its own image, unless an earlier undo step (a
       [Killed] entry) already resurrected it. *)
    let instance = d_cap.Primitives.cap_instance in
    if Hashtbl.mem restored instance then
      record t "%s%s already back in service" pfx instance
    else if Bus.host_is_down t.bus d_cap.Primitives.cap_host then
      (* killing the shell and failing the respawn would lose the
         instance outright; leave it crashed for a supervisor *)
      record t "%scannot restore %s: host %s is down" pfx instance
        d_cap.Primitives.cap_host
    else begin
      let queues =
        instance_queues t.bus ~instance ~ifaces:d_cap.Primitives.cap_ifaces
      in
      if Option.is_some (Bus.process_status t.bus ~instance) then
        Bus.kill t.bus ~instance;
      restore_instance t ~pfx ~restored ~instance
        ~module_name:d_cap.Primitives.cap_module
        ~host:d_cap.Primitives.cap_host ?spec:d_cap.Primitives.cap_spec
        ~image:(Some d_image) ~queues ()
    end

(* drop the [n] newest entries (already undone before a crash) *)
let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r

let resume_rollback t ~reason ~already_undone ~abort_logged =
  match t.entries with
  | [] -> ()
  | entries ->
    t.entries <- [];
    let total = List.length entries in
    let remaining = drop already_undone entries in
    if already_undone = 0 then
      record t "%s: rolling back %d step(s): %s" t.label total reason
    else
      record t "%s: resuming rollback at step %d/%d: %s" t.label
        (total - already_undone) total reason;
    let logged =
      if abort_logged then Option.is_some (Bus.wal t.bus)
      else log t (Persist.Abort { sid = t.sid; reason })
    in
    if logged && not abort_logged then Bus.ctl_tick t.bus;
    let restored = Hashtbl.create 4 in
    List.iteri
      (fun j e ->
        let index = total - already_undone - j in
        let pfx = Printf.sprintf "%s [%d/%d]: " t.label index total in
        undo t ~pfx ~restored e;
        if logged then begin
          ignore (log t (Persist.Undo_done { sid = t.sid; index }) : bool);
          Bus.ctl_tick t.bus
        end)
      remaining;
    if logged then begin
      ignore (log t (Persist.Abort_done { sid = t.sid }) : bool);
      Bus.ctl_script_closed t.bus;
      Bus.ctl_tick t.bus;
      maybe_checkpoint t
    end

let rollback t ~reason =
  resume_rollback t ~reason ~already_undone:0 ~abort_logged:false

let commit t =
  let logged = log t (Persist.Commit { sid = t.sid }) in
  t.entries <- [];
  if logged then begin
    Bus.ctl_script_closed t.bus;
    Bus.ctl_tick t.bus;
    maybe_checkpoint t
  end
