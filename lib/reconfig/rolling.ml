(* Autonomic rolling replacement: drain, replace, canary, roll back.

   The controller is synchronous — it drives the bus itself through its
   drain / canary / backoff windows — but everything else stays live:
   traffic generators, detectors and supervisors are scheduled on the
   same engine and keep running while the wave advances. Time only
   moves through events, so every window plants a no-op wake event at
   its horizon; an otherwise idle bus still makes progress.

   Wave durability rides the same WAL as the per-replica scripts, as a
   second, coarser grammar (Wave_begin / Wave_replica_done /
   Wave_commit / Wave_abort). The wave holds the control log's
   checkpoint gate (Bus.ctl_script_opened) for its whole duration so
   the undo images its per-replica scripts journalled cannot be
   garbage-collected while a later canary failure might still need the
   roster they describe. *)

module Bus = Dr_bus.Bus
module Engine = Dr_sim.Engine
module Metrics = Dr_obs.Metrics
module Wal = Dr_wal.Wal
module Spec = Dr_mil.Spec

type slo = {
  slo_p99 : float option;
  slo_error_rate : float;
  slo_max_shed : int;
}

type config = {
  rc_target : string;
  rc_drain_timeout : float;
  rc_canary_window : float;
  rc_canary_min_samples : int;
  rc_retries : int;
  rc_backoff : float;
  rc_precopy : bool;
  rc_replace_deadline : float;
  rc_slo : slo;
}

let default_config ~target =
  { rc_target = target;
    rc_drain_timeout = 10.0;
    rc_canary_window = 15.0;
    rc_canary_min_samples = 5;
    rc_retries = 3;
    rc_backoff = 2.0;
    rc_precopy = false;
    rc_replace_deadline = 30.0;
    rc_slo =
      { slo_p99 = Some 16.0; slo_error_rate = 0.01; slo_max_shed = 0 } }

let latency_metric = "rolling.latency"
let answered_metric = "rolling.answered"
let error_metric = "rolling.errors"
let shed_metric = "rolling.shed"

type outcome = Upgraded of string | Rolled_back of string | Skipped

type replica_report = {
  rr_slot : string;
  rr_from : string;
  rr_attempts : int;
  rr_rollbacks : int;
  rr_outcome : outcome;
}

type report = {
  rp_wid : int;
  rp_target : string;
  rp_committed : bool;
  rp_reason : string option;
  rp_replicas : replica_report list;
  rp_unwound : int;
}

type t = {
  bus : Bus.t;
  cfg : config;
  wid : int;
  metrics : Metrics.t;
  slots : string array;  (* wave order *)
  members : (string, string) Hashtbl.t;  (* slot -> current instance *)
  origins : (string, string) Hashtbl.t;  (* slot -> module at wave start *)
  supervisor : Supervisor.t option;
  on_retarget : (slot:string -> instance:string -> unit) option;
  mutable gen : int;  (* generation-name counter, wave-unique *)
}

let record t fmt =
  Format.kasprintf
    (fun detail ->
      Dr_sim.Trace.record (Bus.trace t.bus) ~time:(Bus.now t.bus)
        ~category:"rolling" ~detail)
    fmt

let ensure_metrics bus =
  match Bus.metrics bus with
  | Some m -> m
  | None ->
    let m = Metrics.create () in
    Bus.set_metrics bus m;
    m

(* -------------------------------------------------------- wave logging *)

let log_wave t rec_ =
  if not (Bus.controller_down t.bus) then
    match Bus.wal t.bus with
    | None -> ()
    | Some wal ->
      ignore
        (Wal.append wal ~kind:(Persist.kind_of rec_) (Persist.encode rec_));
      (* a ctlcrash@N fault can land on a wave record just like on a
         script record; ctl_down is set before the raise *)
      (try Bus.ctl_tick t.bus with Bus.Controller_crash -> ())

(* ----------------------------------------------------------- plumbing *)

(* Advance virtual time to [until] even if nothing else is scheduled. *)
let drive t ~until =
  let eng = Bus.engine t.bus in
  if Engine.now eng < until then begin
    Engine.schedule_at eng ~time:until (fun () -> ());
    Bus.run ~until t.bus
  end

let current_members t =
  Array.to_list (Array.map (fun s -> Hashtbl.find t.members s) t.slots)

let set_member t ~slot ~instance =
  Hashtbl.replace t.members slot instance;
  Bus.set_drain_group t.bus ~members:(current_members t);
  (match t.supervisor with
  | Some sup -> Supervisor.adopt sup ~base:slot ~instance
  | None -> ());
  match t.on_retarget with
  | Some f -> f ~slot ~instance
  | None -> ()

(* A supervisor may have restarted the slot's generation behind our
   back (e.g. the old generation crashed mid-drain and came back
   fenced under a new name). Re-resolve, and carry the drain mark over
   so the wave keeps exactly one replace per slot. *)
let refresh t ~slot =
  let cur = Hashtbl.find t.members slot in
  match t.supervisor with
  | None -> cur
  | Some sup -> (
    match Supervisor.current sup ~base:slot with
    | None -> cur
    | Some inst when inst = cur -> cur
    | Some inst ->
      record t "slot %s: supervisor moved %s -> %s mid-wave" slot cur inst;
      if Bus.is_draining t.bus ~instance:cur then begin
        Bus.clear_draining t.bus ~instance:cur;
        Bus.mark_draining t.bus ~instance:inst
      end;
      set_member t ~slot ~instance:inst;
      inst)

let inbound_queues_empty t instance =
  match Bus.instance_spec t.bus ~instance with
  | None -> true
  | Some spec ->
    List.for_all
      (fun (i : Spec.iface) ->
        (not (Spec.can_receive i.Spec.role))
        || Bus.peek_queue t.bus (instance, i.Spec.if_name) = [])
      spec.Spec.ifaces

let gen_name t slot =
  t.gen <- t.gen + 1;
  Printf.sprintf "%s@%d.%d" slot t.wid t.gen

(* ------------------------------------------------------------- phases *)

(* Stop admitting and serve the queues out, bounded. Leftovers are
   fine — the replace moves pending queues to the successor. Returns
   the (possibly supervisor-renamed) instance, still marked draining. *)
let drain t ~slot =
  let inst = refresh t ~slot in
  Bus.mark_draining t.bus ~instance:inst;
  let deadline = Bus.now t.bus +. t.cfg.rc_drain_timeout in
  (* Always let one settle chunk pass before judging quiescence: a
     message already in transit is not in the queue yet. *)
  drive t ~until:(Float.min deadline (Bus.now t.bus +. 0.5));
  let rec loop () =
    let inst = refresh t ~slot in
    if inbound_queues_empty t inst || Bus.now t.bus >= deadline -. 1e-9 then
      inst
    else begin
      drive t ~until:(Float.min deadline (Bus.now t.bus +. 0.5));
      loop ()
    end
  in
  ignore inst;
  let inst = loop () in
  if not (inbound_queues_empty t inst) then
    record t "slot %s: drain timeout on %s, moving leftovers" slot inst;
  inst

type snap = {
  sn_buckets : (int * int) list;
  sn_answered : int;
  sn_errors : int;
  sn_shed : int;
}

let snap t ~slot =
  let labels = [ ("slot", slot) ] in
  { sn_buckets = Metrics.histogram_buckets t.metrics ~labels latency_metric;
    sn_answered = Metrics.counter_value t.metrics ~labels answered_metric;
    sn_errors = Metrics.counter_value t.metrics ~labels error_metric;
    sn_shed = Metrics.counter_value t.metrics ~labels shed_metric }

let delta_buckets ~before ~after =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (e, n) -> Hashtbl.replace tbl e n) after;
  List.iter
    (fun (e, n) ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt tbl e) in
      Hashtbl.replace tbl e (cur - n))
    before;
  Hashtbl.fold (fun e n acc -> if n > 0 then (e, n) :: acc else acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let judge t ~before ~after =
  let answered = after.sn_answered - before.sn_answered in
  let errors = after.sn_errors - before.sn_errors in
  let shed = after.sn_shed - before.sn_shed in
  if answered = 0 then Error "no traffic reached the canary"
  else
    let rate = float_of_int errors /. float_of_int answered in
    if rate > t.cfg.rc_slo.slo_error_rate +. 1e-9 then
      Error
        (Printf.sprintf "error rate %.3f over ceiling %.3f (%d of %d)" rate
           t.cfg.rc_slo.slo_error_rate errors answered)
    else if shed > t.cfg.rc_slo.slo_max_shed then
      Error
        (Printf.sprintf "shed %d request(s), ceiling %d" shed
           t.cfg.rc_slo.slo_max_shed)
    else
      let p99 =
        Metrics.bucket_quantile ~q:0.99
          (delta_buckets ~before:before.sn_buckets ~after:after.sn_buckets)
      in
      match (t.cfg.rc_slo.slo_p99, p99) with
      | Some ceiling, Some p when p > ceiling +. 1e-9 ->
        Error (Printf.sprintf "p99 latency %g over ceiling %g" p ceiling)
      | _ -> Ok answered

(* Hold the new generation under live traffic and judge the SLO gates
   over the window's metric deltas. The window extends (up to 3x) when
   traffic is too thin to reach the sample floor. *)
let canary t ~slot =
  let before = snap t ~slot in
  let base = t.cfg.rc_canary_window in
  let rec hold extension =
    drive t ~until:(Bus.now t.bus +. base);
    if Bus.controller_down t.bus then Error "controller crashed"
    else
      let after = snap t ~slot in
      if
        after.sn_answered - before.sn_answered < t.cfg.rc_canary_min_samples
        && extension < 3
      then hold (extension + 1)
      else judge t ~before ~after
  in
  hold 1

let replace_to t ~slot ~instance ~target =
  let new_instance = gen_name t slot in
  let res =
    Script.run_sync t.bus
      ~deadline:(t.cfg.rc_replace_deadline *. 4.0)
      (fun ~on_done ->
        Script.replace t.bus ~span_kind:"rolling" ~precopy:t.cfg.rc_precopy
          ~instance ~new_instance ~new_module:target
          ~deadline:t.cfg.rc_replace_deadline ~retry:Script.no_retry ~on_done
          ())
  in
  (match res with Ok inst -> set_member t ~slot ~instance:inst | Error _ -> ());
  res

(* A crashed member is the supervisor's to restart, not ours to
   replace: racing the stateless restart script against the wave's
   replace could stand up two successors for one slot. Wait (bounded)
   for the fenced restart, then upgrade that generation instead. *)
let await_restart t ~slot ~inst =
  match t.supervisor with
  | None -> inst
  | Some _ ->
    let crashed i =
      match Bus.process_status t.bus ~instance:i with
      | Some (Dr_interp.Machine.Crashed _) -> true
      | _ -> false
    in
    if not (crashed inst) then inst
    else begin
      record t "slot %s: %s crashed; waiting for its supervised restart"
        slot inst;
      let deadline = Bus.now t.bus +. t.cfg.rc_replace_deadline in
      let rec wait i =
        if (not (crashed i)) || Bus.now t.bus >= deadline -. 1e-9 then i
        else begin
          drive t ~until:(Float.min deadline (Bus.now t.bus +. 0.5));
          wait (refresh t ~slot)
        end
      in
      wait inst
    end

(* ------------------------------------------------------------- a slot *)

type slot_result =
  | Slot_upgraded of replica_report
  | Slot_failed of replica_report
  | Slot_ctl_down

let upgrade_slot t ~slot =
  let from = Hashtbl.find t.members slot in
  let origin = Hashtbl.find t.origins slot in
  let rollbacks = ref 0 in
  let rec attempt a =
    if Bus.controller_down t.bus then Slot_ctl_down
    else begin
      record t "slot %s: attempt %d of %d" slot a t.cfg.rc_retries;
      let inst = drain t ~slot in
      let inst = await_restart t ~slot ~inst in
      (* lift the mark before the script: journalled undo (queue moves,
         re-deposits) must reach the instance itself, not a sibling *)
      Bus.clear_draining t.bus ~instance:inst;
      let fail reason =
        if a < t.cfg.rc_retries then begin
          let backoff =
            t.cfg.rc_backoff *. Float.pow 2.0 (float_of_int (a - 1))
          in
          record t "slot %s: attempt %d failed (%s), backing off %g" slot a
            reason backoff;
          drive t ~until:(Bus.now t.bus +. backoff);
          attempt (a + 1)
        end
        else begin
          record t "slot %s: out of attempts (%s)" slot reason;
          Slot_failed
            { rr_slot = slot; rr_from = from; rr_attempts = a;
              rr_rollbacks = !rollbacks; rr_outcome = Rolled_back reason }
        end
      in
      match replace_to t ~slot ~instance:inst ~target:t.cfg.rc_target with
      | exception Bus.Controller_crash -> Slot_ctl_down
      | Error e ->
        if Bus.controller_down t.bus then Slot_ctl_down else fail e
      | Ok canary_inst -> (
        record t "slot %s: canary %s holding for %g" slot canary_inst
          t.cfg.rc_canary_window;
        match canary t ~slot with
        | Error reason when Bus.controller_down t.bus ->
          ignore reason;
          Slot_ctl_down
        | Ok samples ->
          Metrics.incr t.metrics ~labels:[ ("slot", slot) ] "rolling.upgrades";
          record t "slot %s: canary passed (%d sample(s)), now %s" slot
            samples canary_inst;
          log_wave t
            (Persist.Wave_replica_done
               { wid = t.wid; wr_slot = slot; wr_instance = canary_inst });
          if Bus.controller_down t.bus then Slot_ctl_down
          else
            Slot_upgraded
              { rr_slot = slot; rr_from = from; rr_attempts = a;
                rr_rollbacks = !rollbacks;
                rr_outcome = Upgraded canary_inst }
        | Error reason -> (
          record t "slot %s: canary failed (%s), rolling back to %s" slot
            reason origin;
          incr rollbacks;
          Metrics.incr t.metrics ~labels:[ ("slot", slot) ] "rolling.rollbacks";
          (* roll back = replace the canary with the original module;
             its state carries over, so writes served during the canary
             survive the rollback *)
          let inst = drain t ~slot in
          let inst = await_restart t ~slot ~inst in
          Bus.clear_draining t.bus ~instance:inst;
          match replace_to t ~slot ~instance:inst ~target:origin with
          | exception Bus.Controller_crash -> Slot_ctl_down
          | Ok _ -> fail reason
          | Error e ->
            if Bus.controller_down t.bus then Slot_ctl_down
            else fail (Printf.sprintf "%s; rollback also failed: %s" reason e)))
    end
  in
  attempt 1

(* Abort path: put every already-upgraded slot back on its original
   module, newest first. Best effort — a slot whose unwind fails is
   reported but does not stop the others. *)
let unwind t ~upgraded =
  List.fold_left
    (fun n (slot, _) ->
      let inst = drain t ~slot in
      Bus.clear_draining t.bus ~instance:inst;
      let origin = Hashtbl.find t.origins slot in
      match replace_to t ~slot ~instance:inst ~target:origin with
      | Ok inst' ->
        record t "slot %s: unwound to %s (%s)" slot origin inst';
        n + 1
      | Error e ->
        record t "slot %s: unwind failed: %s" slot e;
        n
      | exception Bus.Controller_crash -> n)
    0 (List.rev upgraded)

(* --------------------------------------------------------------- wave *)

let validate cfg ~group =
  if group = [] then Error "empty replica group"
  else if cfg.rc_retries < 1 then Error "retries must be at least 1"
  else if cfg.rc_backoff < 0.0 then Error "backoff must be non-negative"
  else if cfg.rc_drain_timeout <= 0.0 then
    Error "drain timeout must be positive"
  else if cfg.rc_canary_window <= 0.0 then
    Error "canary window must be positive"
  else Ok ()

let run bus cfg ~group ?supervisor ?on_retarget () =
  match validate cfg ~group with
  | Error _ as e -> e |> Result.map (fun _ -> assert false)
  | Ok () ->
    if Bus.controller_down bus then Error "controller is down"
    else if not (List.mem cfg.rc_target (Bus.registered_modules bus)) then
      Error
        (Printf.sprintf "target module %s is not registered with the bus"
           cfg.rc_target)
    else begin
      let missing =
        List.filter
          (fun (_, inst) ->
            Option.is_none (Bus.instance_module bus ~instance:inst))
          group
      in
      match missing with
      | (slot, inst) :: _ ->
        Error (Printf.sprintf "slot %s: unknown instance %s" slot inst)
      | [] ->
        let wid = Bus.next_script_id bus in
        let t =
          { bus; cfg; wid;
            metrics = ensure_metrics bus;
            slots = Array.of_list (List.map fst group);
            members = Hashtbl.create 8;
            origins = Hashtbl.create 8;
            supervisor;
            on_retarget;
            gen = 0 }
        in
        List.iter
          (fun (slot, inst) ->
            Hashtbl.replace t.members slot inst;
            Hashtbl.replace t.origins slot
              (Option.get (Bus.instance_module bus ~instance:inst)))
          group;
        Bus.set_drain_group bus ~members:(current_members t);
        record t "wave #%d: %d slot(s) -> %s" wid (Array.length t.slots)
          cfg.rc_target;
        log_wave t
          (Persist.Wave_begin { wid; w_group = group; w_target = cfg.rc_target });
        Bus.ctl_script_opened bus;
        let finish result =
          Bus.ctl_script_closed bus;
          List.iter
            (fun inst -> Bus.clear_draining bus ~instance:inst)
            (Bus.draining_instances bus);
          result
        in
        if Bus.controller_down bus then
          finish (Error "controller crashed mid-wave (run Rolling.recover)")
        else begin
          let upgraded = ref [] in
          let reports = ref [] in
          let abort = ref None in
          let n = Array.length t.slots in
          let i = ref 0 in
          while !i < n && !abort = None do
            let slot = t.slots.(!i) in
            (match upgrade_slot t ~slot with
            | Slot_upgraded r ->
              upgraded := (slot, r) :: !upgraded;
              reports := r :: !reports
            | Slot_failed r ->
              reports := r :: !reports;
              abort :=
                Some
                  (Printf.sprintf "slot %s exhausted %d attempt(s)" slot
                     t.cfg.rc_retries)
            | Slot_ctl_down -> abort := Some "ctl-down");
            incr i
          done;
          if Bus.controller_down bus then
            finish (Error "controller crashed mid-wave (run Rolling.recover)")
          else
            match !abort with
            | None ->
              log_wave t (Persist.Wave_commit { wid });
              record t "wave #%d committed" wid;
              finish
                (Ok
                   { rp_wid = wid; rp_target = cfg.rc_target;
                     rp_committed = true; rp_reason = None;
                     rp_replicas = List.rev !reports; rp_unwound = 0 })
            | Some reason ->
              log_wave t (Persist.Wave_abort { wid; w_reason = reason });
              record t "wave #%d aborting: %s" wid reason;
              let unwound = unwind t ~upgraded:!upgraded in
              if Bus.controller_down bus then
                finish
                  (Error "controller crashed mid-wave (run Rolling.recover)")
              else begin
                (* slots never attempted *)
                let skipped =
                  Array.to_list
                    (Array.sub t.slots !i (Array.length t.slots - !i))
                  |> List.map (fun slot ->
                         { rr_slot = slot;
                           rr_from = Hashtbl.find t.members slot;
                           rr_attempts = 0; rr_rollbacks = 0;
                           rr_outcome = Skipped })
                in
                record t "wave #%d aborted: %d slot(s) unwound" wid unwound;
                finish
                  (Ok
                     { rp_wid = wid; rp_target = cfg.rc_target;
                       rp_committed = false; rp_reason = Some reason;
                       rp_replicas = List.rev !reports @ skipped;
                       rp_unwound = unwound })
              end
        end
    end

(* ----------------------------------------------------------- recovery *)

let recover bus =
  match Bus.wal bus with
  | None -> Error "no control log attached to this bus"
  | Some wal -> (
    (* scan the wave records BEFORE replay: replay ends by
       checkpointing the log, which garbage-collects them *)
    match Recovery.waves wal with
    | Error _ as e -> e |> Result.map (fun _ -> assert false)
    | Ok waves -> (
      match Recovery.replay bus with
      | Error _ as e -> e |> Result.map (fun _ -> assert false)
      | Ok report ->
        (* drain marks are controller memory, not fleet state: a dead
           controller must not keep shedding a healthy member *)
        List.iter
          (fun inst -> Bus.clear_draining bus ~instance:inst)
          (Bus.draining_instances bus);
        (* wave ids share the script id space; keep it monotonic *)
        List.iter
          (fun (w : Recovery.wave) -> Bus.note_script_id bus w.wv_wid)
          waves;
        Ok (report, waves)))

let pp_report ppf r =
  Format.fprintf ppf "wave #%d -> %s: %s" r.rp_wid r.rp_target
    (if r.rp_committed then "committed"
     else
       Printf.sprintf "aborted (%s), %d unwound"
         (Option.value ~default:"?" r.rp_reason)
         r.rp_unwound);
  List.iter
    (fun rr ->
      Format.fprintf ppf "@\n  %s: %s" rr.rr_slot
        (match rr.rr_outcome with
        | Upgraded inst ->
          Printf.sprintf "upgraded to %s (%d attempt(s), %d rollback(s))"
            inst rr.rr_attempts rr.rr_rollbacks
        | Rolled_back reason ->
          Printf.sprintf "rolled back after %d attempt(s): %s" rr.rr_attempts
            reason
        | Skipped -> "skipped"))
    r.rp_replicas
