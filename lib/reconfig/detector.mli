(** Heartbeat failure detector.

    The distributed-systems answer to "is that instance alive?" when
    nothing can read remote state directly: watched instances are
    judged only by the evidence that crosses the bus — every message
    they send ({!Dr_bus.Bus.on_activity}) and periodic heartbeats
    emitted by a host-local watchdog agent, which travel as
    fault-plane-visible traffic ({!Dr_bus.Bus.transmit}) and can be
    lost or delayed like any message. A scoped loss rule on
    [src > _detector] starves the detector of one instance's beats.

    Suspicion is levelled: an instance silent for longer than [timeout]
    at a check tick gains a level; [threshold] consecutive silent ticks
    make it {e suspected} (transition traced under ["suspect"]). Fresh
    evidence resets the level and clears the suspicion. A suspicion can
    be {e wrong} — the supervisor's generation fencing makes acting on
    a false positive safe. *)

type t

val start :
  Dr_bus.Bus.t ->
  ?period:float ->
  ?timeout:float ->
  ?threshold:int ->
  watch:string list ->
  unit ->
  t
(** Begin watching. Parameters left unspecified default to the
    {e per-bus} tunables ({!Dr_bus.Bus.set_detector_config}; period =
    heartbeat/check tick, timeout = max silence before a tick counts
    against the instance, threshold = silent ticks until suspected —
    1.0 / 3.0 / 2 out of the box). Installs itself as the bus's single
    activity hook. *)

val stop : t -> unit
(** Stop ticking and release the activity hook. *)

val suspected : t -> instance:string -> bool
(** Current verdict; [false] for unwatched instances. *)

val suspicion : t -> instance:string -> int
(** Current suspicion level (0 = fresh evidence). *)

val last_evidence : t -> instance:string -> float option
(** Virtual time of the last liveness evidence. *)

val watch : t -> instance:string -> unit
(** Add an instance (idempotent; starts with fresh evidence). *)

val unwatch : t -> instance:string -> unit

val rewatch : t -> old_instance:string -> new_instance:string -> unit
(** The supervisor replaced a generation: stop watching the old name,
    start watching the new one with fresh evidence. *)

val watched : t -> string list
(** Watched instance names, sorted. *)

(** {1 Overhead accounting}

    Suspicion bookkeeping is incremental: checks run off per-domain due
    wheels, so a tick touches only the instances whose silence horizon
    passed, not the whole fleet. These counters expose the cost for the
    flatness regression tests. *)

val beats_emitted : t -> int
(** Heartbeats sent so far (one per live, reachable watched instance
    per tick — inherent to the protocol). *)

val checks_performed : t -> int
(** Silence evaluations so far. Stays well below
    [watched x ticks] for an active fleet, and a suspected instance
    costs nothing until evidence clears it. *)
