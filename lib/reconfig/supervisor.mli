(** Crash supervisor: restarts crash-injected instances.

    The paper's configuration manager owns the {e planned} half of
    dynamic change; the supervisor handles the unplanned half that the
    fault plane ({!Dr_bus.Faults}) introduces. It polls the watched
    instances every [period] units of virtual time and, when one is
    found [Crashed], restarts it through
    {!Script.replace_stateless} under a generation name ([pump] →
    [pump~1] → [pump~2] …), rebinding the crashed instance's routes and
    moving its pending queues — process state is lost, which is exactly
    the stateless-restart contract. If the instance's host is down, the
    first live host from [fallback_hosts] is used instead. After
    [max_restarts] generations the supervisor gives up on that instance.

    Every action emits a ["supervisor"] trace entry, so supervised runs
    stay replayable and auditable. *)

type t

type restart = {
  rs_time : float;  (** virtual time of the restart *)
  rs_old : string;  (** crashed generation *)
  rs_new : string;  (** replacement generation *)
  rs_host : string;  (** host the replacement runs on *)
}

val start :
  Dr_bus.Bus.t ->
  ?period:float ->
  ?max_restarts:int ->
  ?fallback_hosts:string list ->
  watch:string list ->
  unit ->
  t
(** Begin supervising [watch] (base instance names). Defaults:
    [period = 1.0], [max_restarts = 3], no fallback hosts. The
    supervisor stops by itself once nothing is left to watch. *)

val stop : t -> unit
(** Cancel supervision; the next scheduled tick becomes a no-op. *)

val restarts : t -> restart list
(** Restart history, oldest first. *)

val current : t -> base:string -> string option
(** The generation currently standing in for [base], if still watched
    ([Some base] itself before any restart). *)
