(** Crash supervisor: restarts suspected instances.

    The paper's configuration manager owns the {e planned} half of
    dynamic change; the supervisor handles the unplanned half that the
    fault plane ({!Dr_bus.Faults}) introduces. Its decision input is
    purely a {!Detector}'s suspicion — it never reads machine status
    (nothing real could). Every [period] units of virtual time it
    checks the watched instances and restarts a suspected one through
    {!Script.replace_stateless} under a generation name ([pump] →
    [pump~1] → [pump~2] …), rebinding the instance's routes and moving
    its pending queues — process state is lost, which is exactly the
    stateless-restart contract. If the instance's host is down, the
    first live host from [fallback_hosts] is used instead. After
    [max_restarts] generations the supervisor gives up on that instance.

    Because a suspicion can be a {e false positive} (a live instance
    whose heartbeats were lost), the restart passes [~fence:true]: the
    reliable layer bumps the renamed channels' epoch, so anything the
    displaced-but-alive generation still emits arrives fenced and
    inert. The detector is then pointed at the new generation
    ({!Detector.rewatch}).

    Every action emits a ["supervisor"] trace entry, so supervised runs
    stay replayable and auditable. *)

type t

type restart = {
  rs_time : float;  (** virtual time of the restart *)
  rs_old : string;  (** crashed generation *)
  rs_new : string;  (** replacement generation *)
  rs_host : string;  (** host the replacement runs on *)
}

val start :
  Dr_bus.Bus.t ->
  ?period:float ->
  ?max_restarts:int ->
  ?fallback_hosts:string list ->
  ?detector:Detector.t ->
  watch:string list ->
  unit ->
  t
(** Begin supervising [watch] (base instance names). Defaults:
    [period = 1.0], [max_restarts = 3], no fallback hosts. Without
    [?detector] a private {!Detector} is started with default
    parameters (and stopped with the supervisor); passing one shares
    it — the watched bases are added to it either way. The supervisor
    stops by itself once nothing is left to watch. *)

val stop : t -> unit
(** Cancel supervision; the next scheduled tick becomes a no-op. Also
    stops the supervisor's own detector (not a shared one). *)

val detector : t -> Detector.t
(** The detector the supervisor acts on. *)

val adopt : t -> base:string -> instance:string -> unit
(** A {e planned} replacement (a reconfiguration script, a rolling
    wave) swapped the generation standing in for [base]: point the
    supervision at [instance] without burning a restart from the
    budget. The detector is rewatched with fresh evidence. No-op if
    [base] is not watched or already points at [instance]. *)

val restarts : t -> restart list
(** Restart history, oldest first. *)

val current : t -> base:string -> string option
(** The generation currently standing in for [base], if still watched
    ([Some base] itself before any restart). *)
