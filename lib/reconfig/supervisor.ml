module Bus = Dr_bus.Bus

type restart = {
  rs_time : float;
  rs_old : string;
  rs_new : string;
  rs_host : string;
}

type t = {
  bus : Bus.t;
  detector : Detector.t;
  own_detector : bool;
  period : float;
  max_restarts : int;
  fallback_hosts : string list;
  (* base name -> (current generation's instance name, restarts so far) *)
  watched : (string, string * int) Hashtbl.t;
  mutable history : restart list;  (* newest first *)
  mutable running : bool;
}

let record t fmt =
  Format.kasprintf
    (fun detail ->
      Dr_sim.Trace.record (Bus.trace t.bus) ~time:(Bus.now t.bus)
        ~category:"supervisor" ~detail)
    fmt

let generation base n = Printf.sprintf "%s~%d" base n

let pick_host t ~current_host =
  if not (Bus.host_is_down t.bus current_host) then None
  else
    List.find_opt (fun h -> not (Bus.host_is_down t.bus h)) t.fallback_hosts

(* The decision is the detector's alone: the supervisor never reads
   machine status. A suspicion can be a false positive (a live instance
   whose heartbeats were lost); the restart is still safe because
   [replace_stateless ~fence:true] bumps the reliable channels' epoch,
   so whatever the displaced generation still emits arrives fenced. *)
let check t base =
  match Hashtbl.find_opt t.watched base with
  | None -> ()
  | Some (current, n) -> (
    match Bus.instance_module t.bus ~instance:current with
    | None ->
      (* removed by a reconfiguration script; nothing left to supervise *)
      Detector.unwatch t.detector ~instance:current;
      Hashtbl.remove t.watched base
    | Some _ ->
      if Detector.suspected t.detector ~instance:current then
        if n >= t.max_restarts then begin
          record t "giving up on %s after %d restart(s) (still suspected)"
            base n;
          Detector.unwatch t.detector ~instance:current;
          Hashtbl.remove t.watched base
        end
        else begin
          let next = generation base (n + 1) in
          let new_host =
            match Bus.instance_host t.bus ~instance:current with
            | None -> None
            | Some h -> pick_host t ~current_host:h
          in
          match
            Script.replace_stateless t.bus ~instance:current
              ~new_instance:next ?new_host ~fence:true ()
          with
          | Ok _ ->
            let host =
              Option.value ~default:"?"
                (Bus.instance_host t.bus ~instance:next)
            in
            record t "restarted %s as %s on %s (restart %d of %d)" current
              next host (n + 1) t.max_restarts;
            Detector.rewatch t.detector ~old_instance:current
              ~new_instance:next;
            Hashtbl.replace t.watched base (next, n + 1);
            t.history <-
              { rs_time = Bus.now t.bus; rs_old = current; rs_new = next;
                rs_host = host }
              :: t.history
          | Error e -> record t "failed to restart %s: %s" current e
        end)

let start bus ?(period = 1.0) ?(max_restarts = 3) ?(fallback_hosts = [])
    ?detector ~watch () =
  let detector, own_detector =
    match detector with
    | Some d -> (d, false)
    | None -> (Detector.start bus ~watch (), true)
  in
  List.iter (fun base -> Detector.watch detector ~instance:base) watch;
  let t =
    { bus; detector; own_detector; period; max_restarts; fallback_hosts;
      watched = Hashtbl.create 7; history = []; running = true }
  in
  List.iter (fun base -> Hashtbl.replace t.watched base (base, 0)) watch;
  let rec tick () =
    if t.running then begin
      List.iter (check t)
        (List.sort String.compare
           (List.of_seq (Hashtbl.to_seq_keys t.watched)));
      if Hashtbl.length t.watched > 0 then
        Dr_sim.Engine.schedule
          ~label:(Dr_sim.Engine.label ~info:"supervisor tick" "tick")
          (Bus.engine bus) ~delay:t.period tick
      else begin
        t.running <- false;
        if t.own_detector then Detector.stop t.detector
      end
    end
  in
  Dr_sim.Engine.schedule
    ~label:(Dr_sim.Engine.label ~info:"supervisor tick" "tick")
    (Bus.engine bus) ~delay:t.period tick;
  t

(* A planned replacement (e.g. a rolling wave) changed the instance
   standing in for [base] out from under us. Without this, the next
   tick would see [instance_module = None] for the old generation and
   silently drop the watch — and a later crash of the new generation
   would go unrestarted. Adoption keeps the restart budget: planned
   replacement is not a crash. *)
let adopt t ~base ~instance =
  match Hashtbl.find_opt t.watched base with
  | None -> ()
  | Some (current, n) ->
    if current <> instance then begin
      record t "adopting %s as the current generation of %s" instance base;
      Detector.rewatch t.detector ~old_instance:current ~new_instance:instance;
      Hashtbl.replace t.watched base (instance, n)
    end

let stop t =
  if t.running then begin
    t.running <- false;
    if t.own_detector then Detector.stop t.detector
  end

let restarts t = List.rev t.history

let current t ~base =
  Option.map fst (Hashtbl.find_opt t.watched base)

let detector t = t.detector
