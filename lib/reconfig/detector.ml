(* Heartbeat failure detector.

   The monitor side never reads machine state: its only inputs are
   (a) bus activity — every message an instance sends is liveness
   evidence, via [Bus.on_activity] — and (b) periodic heartbeats. The
   heartbeat emitter models the host-local watchdog agent: it reads the
   *local* process table (machine status, host up) to decide whether
   its instance can still beat, then sends the beat over the bus, where
   it is subject to the same loss and jitter as any message. Lost
   heartbeats during a quiet spell are exactly how a live instance gets
   falsely suspected — the race the supervisor's generation fencing
   must win.

   Suspicion: each check tick, an instance silent for longer than
   [timeout] gains one suspicion level; [threshold] consecutive silent
   ticks make it suspected (one lost heartbeat is not an outage). Any
   evidence resets the level, and clears an existing suspicion. *)

module Bus = Dr_bus.Bus
module Machine = Dr_interp.Machine
module Engine = Dr_sim.Engine

type watch_state = {
  mutable w_last_seen : float;
  mutable w_level : int;
  mutable w_suspected : bool;
}

type t = {
  bus : Bus.t;
  period : float;
  timeout : float;
  threshold : int;
  watched : (string, watch_state) Hashtbl.t;
  mutable running : bool;
}

let record t fmt =
  Format.kasprintf
    (fun detail ->
      Dr_sim.Trace.record (Bus.trace t.bus) ~time:(Bus.now t.bus)
        ~category:"suspect" ~detail)
    fmt

let evidence t instance =
  match Hashtbl.find_opt t.watched instance with
  | None -> ()
  | Some w ->
    w.w_last_seen <- Bus.now t.bus;
    w.w_level <- 0;
    if w.w_suspected then begin
      w.w_suspected <- false;
      record t "%s cleared: fresh liveness evidence" instance
    end

(* Heartbeats converge on a pseudo-endpoint; only the callback matters,
   but naming the endpoints lets fault rules scope onto the heartbeat
   traffic specifically (loss@c>_detector=1 starves the detector of
   c's beats without touching application messages). *)
let monitor_endpoint = ("_detector", "hb")

let emit_heartbeat t instance =
  match Bus.process_status t.bus ~instance with
  | None -> ()
  | Some (Machine.Halted | Machine.Crashed _) -> ()
  | Some _ ->
    let host_down =
      match Bus.instance_host t.bus ~instance with
      | Some host -> Bus.host_is_down t.bus host
      | None -> true
    in
    if not host_down then
      Bus.transmit t.bus ~src:(instance, "hb") ~dst:monitor_endpoint (fun () ->
          evidence t instance)

let check t instance w =
  if not w.w_suspected then begin
    let silence = Bus.now t.bus -. w.w_last_seen in
    if silence > t.timeout then begin
      w.w_level <- w.w_level + 1;
      if w.w_level >= t.threshold then begin
        w.w_suspected <- true;
        record t "%s suspected: silent for %.1f (level %d)" instance silence
          w.w_level
      end
    end
  end

let rec tick t () =
  if t.running then begin
    let entries =
      List.sort compare
        (Hashtbl.fold (fun k w acc -> (k, w) :: acc) t.watched [])
    in
    List.iter
      (fun (instance, w) ->
        emit_heartbeat t instance;
        check t instance w)
      entries;
    Engine.schedule (Bus.engine t.bus) ~delay:t.period (tick t)
  end

let fresh_state t =
  { w_last_seen = Bus.now t.bus; w_level = 0; w_suspected = false }

let watch t ~instance =
  if not (Hashtbl.mem t.watched instance) then
    Hashtbl.replace t.watched instance (fresh_state t)

let unwatch t ~instance = Hashtbl.remove t.watched instance

let rewatch t ~old_instance ~new_instance =
  unwatch t ~instance:old_instance;
  Hashtbl.replace t.watched new_instance (fresh_state t)

let start bus ?(period = 1.0) ?(timeout = 3.0) ?(threshold = 2) ~watch:names ()
    =
  let t =
    { bus;
      period;
      timeout;
      threshold;
      watched = Hashtbl.create 8;
      running = true }
  in
  List.iter (fun instance -> watch t ~instance) names;
  Bus.on_activity bus (Some (fun instance -> evidence t instance));
  Engine.schedule (Bus.engine bus) ~delay:period (tick t);
  t

let stop t =
  if t.running then begin
    t.running <- false;
    Bus.on_activity t.bus None
  end

let suspected t ~instance =
  match Hashtbl.find_opt t.watched instance with
  | Some w -> w.w_suspected
  | None -> false

let suspicion t ~instance =
  match Hashtbl.find_opt t.watched instance with
  | Some w -> w.w_level
  | None -> 0

let last_evidence t ~instance =
  Option.map (fun w -> w.w_last_seen) (Hashtbl.find_opt t.watched instance)

let watched t =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.watched [])
