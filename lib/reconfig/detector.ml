(* Heartbeat failure detector.

   The monitor side never reads machine state: its only inputs are
   (a) bus activity — every message an instance sends is liveness
   evidence, via [Bus.on_activity] — and (b) periodic heartbeats. The
   heartbeat emitter models the host-local watchdog agent: it reads the
   *local* process table (machine status, host up) to decide whether
   its instance can still beat, then sends the beat over the bus, where
   it is subject to the same loss and jitter as any message. Lost
   heartbeats during a quiet spell are exactly how a live instance gets
   falsely suspected — the race the supervisor's generation fencing
   must win.

   Suspicion: each check tick, an instance silent for longer than
   [timeout] gains one suspicion level; [threshold] consecutive silent
   ticks make it suspected (one lost heartbeat is not an outage). Any
   evidence resets the level, and clears an existing suspicion.

   Bookkeeping is incremental so a 100k-instance fleet doesn't pay an
   O(live) suspicion scan per tick:

   - heartbeat emission is inherently one beat per watched instance per
     period, but runs off a cached name-sorted roster array rebuilt
     only on membership change — no per-tick fold + sort allocation,
     and beat order (hence fault-plane PRNG draw order) matches the old
     sorted-scan implementation exactly;
   - suspicion checks run off per-domain due wheels (priority queues
     keyed by the time an instance's silence would exceed [timeout]).
     Evidence is O(1) — field writes only, no wheel surgery; a wheel
     entry made stale by fresh evidence is lazily re-armed at the next
     pop. Each tick therefore only touches instances whose silence
     horizon actually passed, and a suspected instance costs nothing
     until evidence clears it. *)

module Bus = Dr_bus.Bus
module Machine = Dr_interp.Machine
module Engine = Dr_sim.Engine
module Pqueue = Dr_sim.Pqueue

type watch_state = {
  mutable w_last_seen : float;
  mutable w_level : int;
  mutable w_suspected : bool;
  w_stamp : int;  (* identity of this watch incarnation *)
  mutable w_armed : bool;  (* has a live entry in a due wheel *)
  w_domain : int;  (* broker domain: which wheel holds its entries *)
}

type t = {
  bus : Bus.t;
  period : float;
  timeout : float;
  threshold : int;
  watched : (string, watch_state) Hashtbl.t;
  mutable running : bool;
  (* incremental check plane *)
  wheels : (string * int) Pqueue.t array;  (* (instance, stamp) by due *)
  mutable wheel_seq : int;
  mutable stamp_counter : int;
  mutable roster : (string * watch_state) array;  (* name-sorted cache *)
  mutable roster_dirty : bool;
  (* overhead accounting, for the flatness regression test *)
  mutable total_beats : int;
  mutable total_checks : int;
}

let record t fmt =
  Format.kasprintf
    (fun detail ->
      Dr_sim.Trace.record (Bus.trace t.bus) ~time:(Bus.now t.bus)
        ~category:"suspect" ~detail)
    fmt

(* Exactly one armed wheel entry per watched, unsuspected instance:
   armed at [watch], re-armed at pop, disarmed while suspected. *)
let arm t instance w ~due =
  if not w.w_armed then begin
    w.w_armed <- true;
    t.wheel_seq <- t.wheel_seq + 1;
    Pqueue.push t.wheels.(w.w_domain) ~time:due ~seq:t.wheel_seq
      (instance, w.w_stamp)
  end

let evidence t instance =
  match Hashtbl.find_opt t.watched instance with
  | None -> ()
  | Some w ->
    w.w_last_seen <- Bus.now t.bus;
    w.w_level <- 0;
    if w.w_suspected then begin
      w.w_suspected <- false;
      record t "%s cleared: fresh liveness evidence" instance;
      arm t instance w ~due:(w.w_last_seen +. t.timeout)
    end

(* Heartbeats converge on a pseudo-endpoint; only the callback matters,
   but naming the endpoints lets fault rules scope onto the heartbeat
   traffic specifically (loss@c>_detector=1 starves the detector of
   c's beats without touching application messages). *)
let monitor_endpoint = ("_detector", "hb")

let emit_heartbeat t instance =
  match Bus.process_status t.bus ~instance with
  | None -> ()
  | Some (Machine.Halted | Machine.Crashed _) -> ()
  | Some _ ->
    let host_down =
      match Bus.instance_host t.bus ~instance with
      | Some host -> Bus.host_is_down t.bus host
      | None -> true
    in
    if not host_down then begin
      t.total_beats <- t.total_beats + 1;
      (* Stamp the beat with the emitting incarnation's spawn generation.
         A beat is only evidence for the incarnation that emitted it: if
         the instance is killed and respawned under the same name within
         one heartbeat period, a beat already in flight must not vouch
         for the new incarnation — it would carry stale generation
         evidence and mask a silent successor. Found by the model
         checker (see test_mc). *)
      let gen = Bus.instance_generation t.bus ~instance in
      Bus.transmit t.bus ~src:(instance, "hb") ~dst:monitor_endpoint (fun () ->
          if Bus.instance_generation t.bus ~instance = gen then
            evidence t instance
          else
            record t "%s: stale-generation heartbeat dropped" instance)
    end

let check t instance w =
  if not w.w_suspected then begin
    t.total_checks <- t.total_checks + 1;
    let now = Bus.now t.bus in
    let silence = now -. w.w_last_seen in
    if silence > t.timeout then begin
      w.w_level <- w.w_level + 1;
      if w.w_level >= t.threshold then begin
        w.w_suspected <- true;
        record t "%s suspected: silent for %.1f (level %d)" instance silence
          w.w_level
        (* stays disarmed until evidence clears the suspicion *)
      end
      else
        (* still accumulating: due again at the very next tick *)
        arm t instance w ~due:now
    end
    else
      (* evidence arrived since this entry was cut: lazily re-arm at the
         current silence horizon *)
      arm t instance w ~due:(w.w_last_seen +. t.timeout)
  end

let refresh_roster t =
  if t.roster_dirty then begin
    t.roster_dirty <- false;
    t.roster <-
      Array.of_list
        (List.sort
           (fun (a, _) (b, _) -> String.compare a b)
           (Hashtbl.fold (fun k w acc -> (k, w) :: acc) t.watched []))
  end

(* Pop every entry whose due horizon has passed, across all wheels.
   Strictly before [now]: an entry due exactly now has silence = timeout,
   which does not exceed it — it stays for the next tick. *)
let take_due t ~now =
  let due = ref [] in
  Array.iter
    (fun wheel ->
      let rec drain () =
        match Pqueue.peek_time wheel with
        | Some time when time < now -> (
          match Pqueue.pop wheel with
          | Some (_, _, (instance, stamp)) -> (
            (match Hashtbl.find_opt t.watched instance with
            | Some w when w.w_stamp = stamp ->
              w.w_armed <- false;
              due := (instance, w) :: !due
            | Some _ | None -> ()  (* stale incarnation: drop *));
            drain ())
          | None -> ())
        | Some _ | None -> ()
      in
      drain ())
    t.wheels;
  (* name order, matching the old full-scan implementation's check (and
     suspicion-trace) order; only the due set is sorted, not the fleet *)
  List.sort (fun (a, _) (b, _) -> String.compare a b) !due

let rec tick t () =
  if t.running then begin
    refresh_roster t;
    Array.iter (fun (instance, _) -> emit_heartbeat t instance) t.roster;
    let now = Bus.now t.bus in
    List.iter (fun (instance, w) -> check t instance w) (take_due t ~now);
    Engine.schedule
      ~label:(Engine.label ~info:"detector tick" "tick")
      (Bus.engine t.bus) ~delay:t.period (tick t)
  end

let fresh_state t ~instance =
  t.stamp_counter <- t.stamp_counter + 1;
  let domain =
    match Bus.domain_of_instance t.bus ~instance with
    | Some d when d >= 0 && d < Array.length t.wheels -> d
    | Some _ | None -> 0
  in
  { w_last_seen = Bus.now t.bus;
    w_level = 0;
    w_suspected = false;
    w_stamp = t.stamp_counter;
    w_armed = false;
    w_domain = domain }

let watch t ~instance =
  if not (Hashtbl.mem t.watched instance) then begin
    let w = fresh_state t ~instance in
    Hashtbl.replace t.watched instance w;
    t.roster_dirty <- true;
    arm t instance w ~due:(w.w_last_seen +. t.timeout)
  end

let unwatch t ~instance =
  if Hashtbl.mem t.watched instance then begin
    Hashtbl.remove t.watched instance;
    t.roster_dirty <- true
    (* any wheel entry is now a stale incarnation and drops on pop *)
  end

let rewatch t ~old_instance ~new_instance =
  unwatch t ~instance:old_instance;
  unwatch t ~instance:new_instance;
  let w = fresh_state t ~instance:new_instance in
  Hashtbl.replace t.watched new_instance w;
  t.roster_dirty <- true;
  arm t new_instance w ~due:(w.w_last_seen +. t.timeout)

let start bus ?period ?timeout ?threshold ~watch:names () =
  (* unspecified parameters come from the per-bus tunables
     (Bus.set_detector_config), not compile-time constants: a rolling
     canary window can widen the detector's patience fleet-wide *)
  let cfg = Bus.detector_config bus in
  let period = Option.value period ~default:cfg.Bus.dc_period in
  let timeout = Option.value timeout ~default:cfg.Bus.dc_timeout in
  let threshold = Option.value threshold ~default:cfg.Bus.dc_threshold in
  let t =
    { bus;
      period;
      timeout;
      threshold;
      watched = Hashtbl.create 8;
      running = true;
      wheels =
        Array.init (max 1 (Bus.shard_count bus)) (fun _ -> Pqueue.create ());
      wheel_seq = 0;
      stamp_counter = 0;
      roster = [||];
      roster_dirty = true;
      total_beats = 0;
      total_checks = 0 }
  in
  List.iter (fun instance -> watch t ~instance) names;
  Bus.on_activity bus (Some (fun instance -> evidence t instance));
  Engine.schedule
    ~label:(Engine.label ~info:"detector tick" "tick")
    (Bus.engine bus) ~delay:period (tick t);
  t

let stop t =
  if t.running then begin
    t.running <- false;
    Bus.on_activity t.bus None
  end

let suspected t ~instance =
  match Hashtbl.find_opt t.watched instance with
  | Some w -> w.w_suspected
  | None -> false

let suspicion t ~instance =
  match Hashtbl.find_opt t.watched instance with
  | Some w -> w.w_level
  | None -> 0

let last_evidence t ~instance =
  Option.map (fun w -> w.w_last_seen) (Hashtbl.find_opt t.watched instance)

let watched t =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.watched [])

let beats_emitted t = t.total_beats
let checks_performed t = t.total_checks
