(** Autonomic rolling replacement: upgrade a replica group one member
    at a time under live traffic.

    The controller runs a {e wave} over a group of interchangeable
    replicas ([(slot, instance)] pairs — the slot is the stable name, the
    instance the generation currently serving it). For each slot, in
    order:

    + {b drain} — the member stops admitting new work
      ({!Dr_bus.Bus.mark_draining}: the bus reroutes deliveries to live
      siblings) and its queues are served out, bounded by
      [rc_drain_timeout] (leftovers are not lost — {!Script.replace}
      moves pending queues to the successor);
    + {b replace} — the drained member is upgraded to [rc_target]
      through the journaled {!Script.replace} (state transfer, atomic
      rebinding, transactional rollback on failure; live pre-copy when
      [rc_precopy]);
    + {b canary} — the new generation holds the slot under live traffic
      for [rc_canary_window] of virtual time (extended until
      [rc_canary_min_samples] responses accumulate), judged against the
      SLO gates read from the bus's metrics registry;
    + {b commit or roll back} — on pass, a [Wave_replica_done] record
      makes the slot's upgrade durable and the wave moves on; on fail,
      the canary is replaced {e back} to the slot's original module
      (its state carries over — images journalled by the per-replica
      scripts are retained until the wave ends, because the wave holds
      the control log's checkpoint gate open) and the attempt is
      retried after exponential backoff, up to [rc_retries] attempts.

    A slot that exhausts its attempts aborts the wave: a [Wave_abort]
    record is logged and every slot already upgraded in this wave is
    {e unwound} — replaced back to its original module, newest first.

    The wave is journalled through the same WAL as the per-replica
    scripts ([Wave_begin] / [Wave_replica_done] / [Wave_commit] /
    [Wave_abort]); {!recover} brings a bus whose controller died
    mid-wave back to a consistent roster: per-replica scripts are
    rolled forward/back by {!Recovery.replay} (so every slot is wholly
    on one generation), drain marks left by the dead controller are
    cleared, and the open wave is reported to the caller — conservative
    abort-and-hold, never a blind re-roll.

    If a {!Supervisor} watches the group, pass it: the controller
    re-resolves each slot's current generation through it (so a member
    crashed mid-drain and restarted fenced by the supervisor is
    upgraded once, under its new name) and {!Supervisor.adopt}s each
    new generation so supervision survives the wave. *)

(** SLO gates for the canary judgement, evaluated over the metric
    {e deltas} accumulated during the canary window. *)
type slo = {
  slo_p99 : float option;
      (** ceiling on the window's p99 response latency
          ({!Dr_obs.Metrics.bucket_quantile} over the
          {!latency_metric} histogram deltas); [None] = don't gate *)
  slo_error_rate : float;
      (** ceiling on [errors / answered] during the window *)
  slo_max_shed : int;
      (** ceiling on requests shed (dropped at admission) during the
          window *)
}

type config = {
  rc_target : string;  (** module every slot is upgraded to *)
  rc_drain_timeout : float;  (** max virtual time waiting for queues *)
  rc_canary_window : float;
  rc_canary_min_samples : int;
      (** minimum answered responses before judging; the window is
          extended (up to 3x) to reach it *)
  rc_retries : int;  (** attempts per slot, including the first *)
  rc_backoff : float;
      (** base retry delay; attempt [a] waits [rc_backoff * 2^(a-1)] *)
  rc_precopy : bool;  (** live pre-copy the replace's state transfer *)
  rc_replace_deadline : float;
      (** per-attempt signal-to-divulge deadline forwarded to
          {!Script.replace} *)
  rc_slo : slo;
}

val default_config : target:string -> config
(** Drain 10.0, canary window 15.0 / 5 samples, 3 attempts, backoff
    2.0, no pre-copy, replace deadline 30.0; SLO p99 <= 16.0, error
    rate <= 0.01, no sheds. *)

(** {1 Metric names}

    The contract between the controller and whatever drives traffic:
    the canary judge reads these instruments, labelled
    [[("slot", slot)]], from the bus's metrics registry. A load
    generator that wants its traffic judged must record into them. *)

val latency_metric : string
(** Histogram of per-request response latency. *)

val answered_metric : string
(** Counter of answered requests. *)

val error_metric : string
(** Counter of wrong/failed responses. *)

val shed_metric : string
(** Counter of requests shed at admission (no live member). *)

(** {1 Running a wave} *)

type outcome =
  | Upgraded of string  (** final instance name *)
  | Rolled_back of string  (** last failure reason; slot left on its
                               original module *)
  | Skipped  (** wave aborted before this slot was attempted *)

type replica_report = {
  rr_slot : string;
  rr_from : string;  (** generation at wave start *)
  rr_attempts : int;
  rr_rollbacks : int;  (** canary failures rolled back *)
  rr_outcome : outcome;
}

type report = {
  rp_wid : int;
  rp_target : string;
  rp_committed : bool;
  rp_reason : string option;  (** abort reason when not committed *)
  rp_replicas : replica_report list;
  rp_unwound : int;  (** upgraded slots rolled back by an abort *)
}

val run :
  Dr_bus.Bus.t ->
  config ->
  group:(string * string) list ->
  ?supervisor:Supervisor.t ->
  ?on_retarget:(slot:string -> instance:string -> unit) ->
  unit ->
  (report, string) result
(** Run one wave over [group] ([(slot, current instance)], upgraded in
    list order). Synchronous: drives the bus itself through drain,
    canary and backoff windows, so live traffic (scheduled on the same
    engine) keeps flowing. [on_retarget] fires whenever the instance
    serving a slot changes — upgrade, rollback, or unwind — so a load
    generator can follow the roster. Registers the group as a bus drain
    group and attaches a metrics registry if none is present.

    [Error] on invalid configuration, an unknown group member, or a
    controller crash mid-wave (recover with {!recover}); canary
    failures and aborted waves are reported through [Ok] with
    [rp_committed = false]. *)

val recover : Dr_bus.Bus.t -> (Recovery.report * Recovery.wave list, string) result
(** Crash recovery for a bus whose controller died mid-wave. Scans the
    wave records {e before} {!Recovery.replay} checkpoints them away,
    clears leftover drain marks, replays the per-replica scripts, and
    re-registers wave ids with the controller's id allocator. The
    returned waves tell the caller which slots the open wave (if any)
    had already upgraded — the roster holds there; re-rolling is the
    caller's decision. *)

val pp_report : Format.formatter -> report -> unit
