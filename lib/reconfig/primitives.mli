(** Reconfiguration primitives (the mh_ script operations of Fig. 5 and
    of [Purtilo & Hofmeister 1991]).

    These are the building blocks scripts are written with: capture the
    current specification of a module ([obj_cap]), prepare and atomically
    apply batches of binding edits ([bind_cap]/[edit_bind]/[rebind]),
    move divulged state between modules ([objstate_move]), and add or
    remove module instances ([chg_obj]). *)

type module_cap = {
  cap_instance : string;
  cap_module : string;
  cap_host : string;
  cap_spec : Dr_mil.Spec.module_spec option;
  cap_ifaces : string list;
      (** interface names, from the spec when present, otherwise from the
          live routing table *)
  cap_out_routes : (Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint) list;
  cap_in_routes : (Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint) list;
}

val obj_cap : Dr_bus.Bus.t -> instance:string -> (module_cap, string) result
(** Snapshot of the {e current} configuration of a module — which may
    have changed dynamically since the original specification. *)

type bind_command =
  | Add of Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint
  | Del of Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint
  | Copy_queue of Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint
  | Remove_queue of Dr_bus.Bus.endpoint

type bind_batch

val bind_cap : unit -> bind_batch

val edit_bind : bind_batch -> bind_command -> unit

val batch_commands : bind_batch -> bind_command list

val rebind : Dr_bus.Bus.t -> bind_batch -> unit
(** Apply every command in the batch, in order, at one instant of
    virtual time ("the rebinding commands are applied all at once"). *)

val objstate_move :
  Dr_bus.Bus.t ->
  old_instance:string ->
  deliver:(Dr_state.Image.t -> unit) ->
  unit ->
  unit
(** Signal [old_instance] to divulge its state at its next
    reconfiguration point, and pass the resulting image to [deliver]
    when it arrives (asynchronously, in virtual time). *)

val translate_image :
  Dr_bus.Bus.t ->
  ?for_instance:string ->
  src_host:string ->
  dst_host:string ->
  Dr_state.Image.t ->
  (Dr_state.Image.t, string) result
(** Push an image through the native wire formats of the two hosts
    (src-native → abstract → dst-native), as a real heterogeneous
    migration would. Fails when a value cannot be represented on the
    destination architecture. With [?for_instance]: an armed
    {!Dr_bus.Bus.arm_image_corruption} fault corrupts the native bytes
    in flight (the codec's checksum catches it), and any translation
    failure quarantines the image against that instance. *)

val chg_obj_add :
  Dr_bus.Bus.t ->
  instance:string ->
  module_name:string ->
  host:string ->
  ?spec:Dr_mil.Spec.module_spec ->
  ?status:string ->
  unit ->
  (unit, string) result
(** Start a module instance (the script's [mh_chg_obj (new, "add")]). *)

val chg_obj_del : Dr_bus.Bus.t -> instance:string -> unit
