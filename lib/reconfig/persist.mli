(** Durable encoding of the reconfiguration journal.

    The control-plane records appended to the write-ahead log
    ({!Dr_wal.Wal}) by {!Journal}: a script opens with {!record.Begin},
    logs one {!record.Entry} per journalled primitive ({e before} the
    bus operation applies), and closes with either {!record.Commit} or
    an {!record.Abort} followed by one {!record.Undo_done} per undone
    entry and a final {!record.Abort_done}. {!Recovery} replays this
    grammar after a controller crash.

    Everything rides the abstract wire layout ({!Dr_state.Codec.Wire}:
    big-endian, 64-bit, tagged values); state images inside [Killed]
    and [Divulged] entries are spilled as complete DRIMG2 containers
    ({!Dr_state.Codec.encode_abstract}), so each carries its own CRC in
    addition to the log record's framing checksum. Module
    specifications round-trip through the MIL pretty-printer/parser.

    The journal {e entry} type lives here (not in {!Journal}) so the
    codec and the journal don't depend on each other; {!Journal}
    re-exports it. *)

type entry =
  | Added_route of Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint
  | Deleted_route of Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint
  | Moved_queue of { mq_src : Dr_bus.Bus.endpoint; mq_dst : Dr_bus.Bus.endpoint }
  | Dropped_queue of Dr_bus.Bus.endpoint * Dr_state.Value.t list
  | Spawned of string
  | Killed of {
      k_instance : string;
      k_module : string;
      k_host : string;
      k_spec : Dr_mil.Spec.module_spec option;
      k_image : Dr_state.Image.t option;
      k_queues : (string * Dr_state.Value.t list) list;
    }
  | Armed_divulge of string
  | Divulged of { d_cap : Primitives.module_cap; d_image : Dr_state.Image.t }
  | Renamed_transport of { rt_old : string; rt_new : string; rt_fence : bool }
  | Precopy_base of { pb_instance : string; pb_image : Dr_state.Image.t }
      (** live pre-copy snapshot taken before the freeze; recovery keys
          it by digest to resolve later [Divulged_delta] entries *)
  | Divulged_delta of {
      dd_cap : Primitives.module_cap;
      dd_delta : Dr_state.Image.delta;
    }
      (** a divulge persisted as dirtied-slots-only (DRIMGD1) against
          the pre-copy base named by [dd_delta.d_base_digest] *)

type record =
  | Begin of { sid : int; label : string }
  | Entry of { sid : int; entry : entry }
  | Commit of { sid : int }
  | Abort of { sid : int; reason : string }
  | Undo_done of { sid : int; index : int }
      (** the entry at 1-based application-order [index] has been
          undone *)
  | Abort_done of { sid : int }
  | Wave_begin of { wid : int; w_group : (string * string) list; w_target : string }
      (** a rolling-replacement wave ({!Rolling}) opened over the
          [(slot, current instance)] pairs in [w_group], upgrading each
          slot to module [w_target]. Wave records share the WAL with the
          per-script grammar but form their own (coarser) grammar:
          replica completions between begin and commit/abort. *)
  | Wave_replica_done of { wid : int; wr_slot : string; wr_instance : string }
      (** slot [wr_slot] finished its canary and is now permanently
          served by [wr_instance] *)
  | Wave_commit of { wid : int }
  | Wave_abort of { wid : int; w_reason : string }

val kind_of : record -> int
(** The WAL record kind byte for this record. *)

val is_wave_kind : int -> bool
(** [true] for the four wave record kinds — {!Recovery.scan} skips
    them (they are not part of the per-script grammar);
    {!Rolling.recover} reads them. *)

val encode : record -> bytes

val decode : kind:int -> bytes -> (record, string) result
(** Inverse of {!encode} on the WAL's [(kind, body)] pair. Trailing
    bytes, unknown tags, and embedded image/spec damage all fail with a
    descriptive error — never a mis-parse. *)

val sid_of : record -> int

val describe : record -> string
(** One-line human summary (for [drc recover] inspection). *)
