(** Reconfiguration scripts (Fig. 5): procedural descriptions of the
    events occurring during a reconfiguration, built from the
    {!Primitives}.

    Scripts are asynchronous: they install callbacks and return; the
    reconfiguration completes in virtual time once the target module
    reaches a reconfiguration point and divulges its state. Use
    {!run_sync} to drive the bus until a script finishes.

    The [replace] script is the paper's parameterised replacement: it
    also performs {b migration} (same module, different host — the
    Monitor example) and {b software update} (different module
    implementation, same interfaces). *)

type outcome = (string, string) result
(** [Ok new_instance] or an error message. *)

type retry = {
  attempts : int;  (** total attempts, including the first *)
  backoff : float;  (** virtual-time delay between attempts *)
  alt_hosts : string list;
      (** hosts to cycle through on re-attempts; empty = same host *)
}
(** Retry policy for {!replace}: after a failed (and rolled-back)
    attempt, re-signal the target after [backoff] units of virtual time,
    optionally on the next host from [alt_hosts]. *)

val no_retry : retry
(** One attempt, no backoff. *)

val replace :
  Dr_bus.Bus.t ->
  ?span_kind:string ->
  ?precopy:bool ->
  instance:string ->
  new_instance:string ->
  ?new_module:string ->
  ?new_host:string ->
  ?deadline:float ->
  ?retry:retry ->
  on_done:(outcome -> unit) ->
  unit ->
  unit
(** Fig. 5: capture the old module's current specification and bindings,
    prepare the rebinding batch (delete old routes, add routes to the
    new instance, move pending queues), signal the old module, and once
    it divulges: translate the image for the destination architecture,
    apply the rebinding atomically, start the new instance as a clone,
    deposit the state, and remove the old instance.

    The script is transactional: every primitive goes through a
    {!Journal}, and any failure — spawn error, translation error, or
    [deadline] — rolls the applied prefix back, leaving the old
    configuration fully routed and the old instance in service (its own
    image re-deposited if it had already divulged).

    [deadline] bounds the signal→divulge window in virtual time: if the
    target has not divulged within [deadline] of the script starting
    (it is stuck away from its reconfiguration points, or crashed), the
    attempt is rolled back and fails. [retry] re-runs failed attempts
    after a virtual-time backoff, optionally cycling [alt_hosts].

    When the bus carries a metrics registry ({!Dr_bus.Bus.set_metrics}),
    every attempt opens a span named [span_kind] ("replace" by default;
    {!migrate} passes "migrate") whose children decompose the disruption
    window: signal, drain, capture, translate, restore.

    [?precopy] (default [false]) defers the freeze signal: a one-shot
    hook parks at the target's next reconfiguration point, snapshots
    the still-running state there ({!Dr_interp.Machine.live_capture}),
    arms the write barrier, and only then signals — so the module keeps
    serving while the bulk of its state is already persisted, and the
    post-freeze capture ships only the dirtied slots as a delta
    ({!Dr_state.Image.diff}) when the move is same-architecture. Every
    guard failure (cross-architecture layout, stack-shape divergence,
    digest mismatch) silently falls back to the full image, and with
    [precopy:false] the script is operation-for-operation the one
    above. Pre-copy spans start at signal time (the wait for the first
    point is service, not disruption) and add zero-width [precopy] and
    [delta] children recording base size, wait, shipped slots, and the
    fallback reason ([none]/[cross_arch]/[misaligned]/[disabled]). *)

val migrate :
  Dr_bus.Bus.t ->
  ?precopy:bool ->
  instance:string ->
  new_instance:string ->
  new_host:string ->
  on_done:(outcome -> unit) ->
  unit ->
  unit
(** Move a module to another machine ([replace] with a new host). *)

val replicate :
  Dr_bus.Bus.t ->
  instance:string ->
  replica_instance:string ->
  ?replica_host:string ->
  on_done:(outcome -> unit) ->
  unit ->
  unit
(** Capture the module's state once and restore it {e twice}: a clone
    replaces the original (which halted after divulging) under its own
    name and bindings, and a second clone starts under
    [replica_instance] with duplicated bindings, so sources fan out to
    both copies. *)

val replace_stateless :
  Dr_bus.Bus.t ->
  instance:string ->
  new_instance:string ->
  ?new_module:string ->
  ?new_host:string ->
  ?fence:bool ->
  unit ->
  (string, string) result
(** Replacement {e without} module participation, in the style of
    SURGEON [5]: no signal, no state capture — the old instance is
    killed, a fresh one starts with status "normal", routes are
    retargeted and pending queues move. [?fence] (default [false])
    controls the reliable layer's rename: [true] bumps the channel
    epoch so frames the old generation already sent arrive inert — the
    supervisor's choice, since its target is only {e suspected} dead.
    Completes immediately (no
    waiting for a reconfiguration point) but the process state is lost;
    only suitable for modules whose state is externally reconstructible
    (the limitation module participation removes). *)

val add_module :
  Dr_bus.Bus.t ->
  instance:string ->
  module_name:string ->
  host:string ->
  ?spec:Dr_mil.Spec.module_spec ->
  binds:(Dr_bus.Bus.endpoint * Dr_bus.Bus.endpoint) list ->
  unit ->
  (unit, string) result

val remove_module : Dr_bus.Bus.t -> instance:string -> unit
(** Delete every route touching the instance, then the instance. *)

val run_sync :
  Dr_bus.Bus.t ->
  ?max_events:int ->
  ?deadline:float ->
  ?watch:string ->
  (on_done:(outcome -> unit) -> unit) ->
  outcome
(** Launch a script and run the bus until it completes (or the event
    budget is exhausted). [watch] names the instance whose compliance
    the script waits on: if it crashes, halts or is removed before the
    script completes, [run_sync] fails fast with a descriptive error
    instead of burning the event budget on other processes' events.
    [deadline] is a coarse driver-side guard: stop (with an error) once
    the script has run for that much virtual time without completing.
    Unlike {!replace}'s own [?deadline] it does not roll anything back —
    prefer the script-level deadline for transactional behaviour. *)
