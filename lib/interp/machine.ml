(* The MiniProc abstract machine, running resolved slot-indexed code.

   Frames are flat [cell array]s and every variable access in the
   interpreter loop is an array read through a pre-computed index (see
   {!Resolve}); the per-access string hashing of the original engine
   (preserved as {!Ast_machine}) is gone. Observable behaviour — prints,
   statuses, instruction counts, tracer output, error messages — is
   identical: the differential tests in test_resolve.ml and the golden
   traces pin this. *)

open Dr_lang
module Value = Dr_state.Value
module Image = Dr_state.Image
module R = Resolve

exception Runtime_error of string

let runtime fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type status =
  | Ready
  | Sleeping of float
  | Blocked_read of string
  | Blocked_decode
  | Halted
  | Crashed of string

let pp_status ppf = function
  | Ready -> Fmt.string ppf "ready"
  | Sleeping d -> Fmt.pf ppf "sleeping(%g)" d
  | Blocked_read iface -> Fmt.pf ppf "blocked-read(%s)" iface
  | Blocked_decode -> Fmt.string ppf "blocked-decode"
  | Crashed message -> Fmt.pf ppf "crashed(%s)" message
  | Halted -> Fmt.string ppf "halted"

(* A storage cell. The generation counter is the pre-copy dirty-tracking
   write barrier: every store stamps the machine's current generation
   into the cell (branch-free), and a cell is "dirty" relative to a base
   snapshot iff its stamp reached the base generation. The counter lives
   inside the cell — not in a per-frame side table — because by-reference
   parameters alias cells across frames, and a write through the alias
   must dirty the one shared cell. *)
type cell = { mutable cv : Value.t; mutable cgen : int }

let cell_v v = { cv = v; cgen = 0 }

type frame = {
  rproc : R.rproc;
  slots : cell array;
  mutable pc : int;
  ret_slot : cell option;  (* caller's temp awaiting the result *)
}

type t = {
  prog : Ast.program;
  rprog : R.program;
  (* Machine-local view of the procedures: shared with [rprog] until the
     first [replace_proc_code], then copied (indices are stable — new
     procedures append). *)
  mutable procs : R.rproc array;
  mutable proc_index : (string, int) Hashtbl.t;
  mutable procs_local : bool;
  globals : cell array;
  global_index : (string, int) Hashtbl.t;  (* shared, read-only *)
  mutable stack : frame list;
  mutable depth : int;  (* = List.length stack, maintained on push/pop *)
  heap : (int, Image.heap_block) Hashtbl.t;
  mutable next_block : int;
  mutable mstatus : status;
  mutable pending_signal : bool;
  mutable handler : string option;
  mutable capture_records : Image.record list;  (* reverse capture order *)
  mutable restore_records : Image.record list;  (* capture order; pop from end *)
  mutable divulged_image : Image.t option;
  status_attr : string;
  io : Io_intf.t;
  mutable instrs_executed : int;
  mutable tracer : (string -> int -> Ir.instr -> unit) option;
  (* Observability timestamps (virtual time, via [io_now]) and counters.
     Written on the existing state transitions only — reading the clock
     through [io] keeps the machine free of any engine dependency. *)
  mutable signal_handled_at : float option;
  mutable capture_started_at : float option;
  mutable restore_done_at : float option;
  mutable captures_taken : int;
  mutable restores_applied : int;
  mutable frames_rebuilt : int;
  (* Pre-copy dirty tracking (see [cell]): [cur_gen] is the stamp every
     write applies; [base_gen] > 0 arms tracking, and a cell is dirty
     iff [cgen >= base_gen]. Stack alignment: the delta is sound only if
     the final capture sees exactly the frames of the base snapshot —
     same depth, and the stack never dipped below it in between
     ([min_depth], maintained on returns until the final capture
     starts). *)
  mutable cur_gen : int;
  mutable base_gen : int;
  mutable base_depth : int;
  mutable min_depth : int;
  mutable stack_aligned : bool;
  mutable capture_masks : bool array list;  (* parallel to capture_records *)
  mutable delta_masks : bool array list option;  (* latched at mh_encode *)
  dirty_heap : (int, unit) Hashtbl.t;
  (* One-shot hook parked at the next reconfiguration-point gate the
     machine executes: cleared before it runs. Used by the controller
     for live pre-copy capture at point granularity. *)
  mutable point_hook : (unit -> unit) option;
  (* Superinstruction dispatch (rp_fused): opt-in per machine, and
     automatically bypassed whenever a tracer is attached. *)
  mutable fusion : bool;
}

let max_stack_depth = 4096

let status t = t.mstatus

let set_tracer t tracer = t.tracer <- tracer
let program t = t.prog
let instr_count t = t.instrs_executed
let stack_depth t = t.depth
let divulged t = t.divulged_image
let signal_handled t = Option.is_some t.handler

let signal_handled_at t = t.signal_handled_at
let capture_started_at t = t.capture_started_at
let restore_done_at t = t.restore_done_at
let captures_taken t = t.captures_taken
let restores_applied t = t.restores_applied
let frames_rebuilt t = t.frames_rebuilt

let current_proc t =
  match t.stack with [] -> None | f :: _ -> Some f.rproc.rp_source.pc_name

let set_ready t =
  match t.mstatus with
  | Sleeping _ | Blocked_read _ | Blocked_decode -> t.mstatus <- Ready
  | Ready | Halted | Crashed _ -> ()

let deliver_signal t = t.pending_signal <- true

let force_crash t reason =
  match t.mstatus with
  | Halted | Crashed _ -> ()
  | Ready | Sleeping _ | Blocked_read _ | Blocked_decode ->
    t.mstatus <- Crashed reason

let read_global t name =
  Option.map
    (fun i -> t.globals.(i).cv)
    (Hashtbl.find_opt t.global_index name)

let read_local t name =
  match t.stack with
  | [] -> None
  | frame :: _ ->
    Option.map
      (fun i -> frame.slots.(i).cv)
      (Hashtbl.find_opt frame.rproc.R.rp_slot_index name)

let heap_block t id = Hashtbl.find_opt t.heap id

let heap_size t = Hashtbl.length t.heap

(* ------------------------------------------------------------- values *)

let cell_of_slot t frame = function
  | R.Sframe i -> frame.slots.(i)
  | R.Sglobal i -> t.globals.(i)
  | R.Sunbound name -> runtime "unbound variable %s" name

(* The write barrier: every store goes through here (or stamps inline),
   keeping the dirty-tracking generation current. Branch-free — one
   extra word store per write whether or not tracking is armed. *)
let set_cell t cell v =
  cell.cv <- v;
  cell.cgen <- t.cur_gen

let block_cells t id =
  match Hashtbl.find_opt t.heap id with
  | Some block -> block.cells
  | None -> runtime "dangling heap reference #%d" id

let heap_load t base index =
  match base with
  | Value.Varr id ->
    let cells = block_cells t id in
    if index < 0 || index >= Array.length cells then
      runtime "index %d out of bounds for block #%d of length %d" index id
        (Array.length cells);
    cells.(index)
  | Value.Vptr (id, off) ->
    let cells = block_cells t id in
    let i = off + index in
    if i < 0 || i >= Array.length cells then
      runtime "pointer access #%d+%d out of bounds (length %d)" id i
        (Array.length cells);
    cells.(i)
  | Value.Vnull -> runtime "null dereference"
  | v -> runtime "cannot index a %s" (Value.type_name v)

let heap_store t base index v =
  match base with
  | Value.Varr id ->
    let cells = block_cells t id in
    if index < 0 || index >= Array.length cells then
      runtime "index %d out of bounds for block #%d of length %d" index id
        (Array.length cells);
    cells.(index) <- v;
    if t.base_gen > 0 then Hashtbl.replace t.dirty_heap id ()
  | Value.Vptr (id, off) ->
    let cells = block_cells t id in
    let i = off + index in
    if i < 0 || i >= Array.length cells then
      runtime "pointer store #%d+%d out of bounds (length %d)" id i
        (Array.length cells);
    cells.(i) <- v;
    if t.base_gen > 0 then Hashtbl.replace t.dirty_heap id ()
  | Value.Vnull -> runtime "null dereference in store"
  | v -> runtime "cannot index a %s" (Value.type_name v)

let alloc_block t elem_ty n =
  if n < 0 then runtime "negative allocation size %d" n;
  let id = t.next_block in
  t.next_block <- id + 1;
  Hashtbl.replace t.heap id
    { Image.elem_ty; cells = Array.make n (Value.default_of_ty elem_ty) };
  Value.Varr id

(* Human-readable rendering used by print and str(): strings unquoted. *)
let display_value = function
  | Value.Vstr s -> s
  | v -> Value.to_string v

let as_int = function
  | Value.Vint i -> i
  | v -> runtime "expected an int, found %s" (Value.type_name v)

let as_bool = function
  | Value.Vbool b -> b
  | v -> runtime "expected a bool, found %s" (Value.type_name v)

let as_str = function
  | Value.Vstr s -> s
  | v -> runtime "expected a string, found %s" (Value.type_name v)

let rec eval t frame (e : R.rexpr) : Value.t =
  match e with
  | Rconst v -> v
  | Rframe i -> frame.slots.(i).cv
  | Rglobal i -> t.globals.(i).cv
  | Runbound name -> runtime "unbound variable %s" name
  | Rindex (base, idx) ->
    let b = eval t frame base in
    let i = as_int (eval t frame idx) in
    heap_load t b i
  | Raddr (slot, idx) -> (
    let i = as_int (eval t frame idx) in
    match (cell_of_slot t frame slot).cv with
    | Varr id -> Vptr (id, i)
    | Vptr (id, off) -> Vptr (id, off + i)
    | Vnull -> runtime "cannot take the address into null"
    | v -> runtime "cannot take an address into a %s" (Value.type_name v))
  | Rneg e -> (
    match eval t frame e with
    | Vint i -> Vint (-i)
    | Vfloat f -> Vfloat (-.f)
    | v -> runtime "cannot negate a %s" (Value.type_name v))
  | Rnot e -> Vbool (not (as_bool (eval t frame e)))
  | Rbinop (op, a, b) -> eval_binop t frame op a b
  | Rresidual_call name ->
    runtime "internal error: residual call to %s in expression" name
  | Rbuiltin (name, args) -> eval_builtin t frame name args

and eval_binop t frame op a b =
  let va = eval t frame a in
  let vb = eval t frame b in
  let arith fi ff =
    match va, vb with
    | Value.Vint x, Value.Vint y -> Value.Vint (fi x y)
    | Value.Vfloat x, Value.Vfloat y -> Value.Vfloat (ff x y)
    | _ ->
      runtime "arithmetic on %s and %s" (Value.type_name va) (Value.type_name vb)
  in
  let compare_values () =
    match va, vb with
    | Value.Vint x, Value.Vint y -> compare x y
    | Value.Vfloat x, Value.Vfloat y -> Float.compare x y
    | Value.Vstr x, Value.Vstr y -> String.compare x y
    | _ ->
      runtime "cannot order %s and %s" (Value.type_name va) (Value.type_name vb)
  in
  match op with
  | Ast.Add -> (
    match va, vb with
    | Value.Vptr (id, off), Value.Vint n -> Value.Vptr (id, off + n)
    | _ -> arith ( + ) ( +. ))
  | Sub -> (
    match va, vb with
    | Value.Vptr (id, off), Value.Vint n -> Value.Vptr (id, off - n)
    | _ -> arith ( - ) ( -. ))
  | Mul -> arith ( * ) ( *. )
  | Div -> (
    match va, vb with
    | Value.Vint _, Value.Vint 0 -> runtime "division by zero"
    | _ -> arith ( / ) ( /. ))
  | Mod -> (
    match va, vb with
    | Value.Vint _, Value.Vint 0 -> runtime "modulo by zero"
    | Value.Vint x, Value.Vint y -> Value.Vint (x mod y)
    | _ -> runtime "'%%' expects ints")
  | Eq -> Vbool (Value.equal va vb)
  | Ne -> Vbool (not (Value.equal va vb))
  | Lt -> Vbool (compare_values () < 0)
  | Le -> Vbool (compare_values () <= 0)
  | Gt -> Vbool (compare_values () > 0)
  | Ge -> Vbool (compare_values () >= 0)
  | And -> Vbool (as_bool va && as_bool vb)
  | Or -> Vbool (as_bool va || as_bool vb)
  | Cat -> Vstr (as_str va ^ as_str vb)

and eval_builtin t frame name args =
  let arg i = List.nth args i in
  match name with
  | "mh_query" -> Vbool (t.io.io_query (as_str (eval t frame (arg 0))))
  | "mh_getstatus" -> Vstr t.status_attr
  | "len" -> (
    match eval t frame (arg 0) with
    | Varr id -> Vint (Array.length (block_cells t id))
    | v -> runtime "len of %s" (Value.type_name v))
  | "float" -> (
    match eval t frame (arg 0) with
    | Vint i -> Vfloat (float_of_int i)
    | v -> runtime "float() of %s" (Value.type_name v))
  | "int" -> (
    match eval t frame (arg 0) with
    | Vfloat f -> Vint (int_of_float f)
    | v -> runtime "int() of %s" (Value.type_name v))
  | "str" -> Vstr (display_value (eval t frame (arg 0)))
  | "alloc_int" -> alloc_block t Tint (as_int (eval t frame (arg 0)))
  | "alloc_float" -> alloc_block t Tfloat (as_int (eval t frame (arg 0)))
  | "alloc_bool" -> alloc_block t Tbool (as_int (eval t frame (arg 0)))
  | "alloc_str" -> alloc_block t Tstr (as_int (eval t frame (arg 0)))
  | "now" -> Vfloat (t.io.io_now ())
  | _ -> runtime "unknown builtin %s" name

(* ------------------------------------------------------------- frames *)

let find_proc_code t name =
  match Hashtbl.find_opt t.proc_index name with
  | Some i -> t.procs.(i)
  | None -> runtime "call to unknown procedure %s" name

let make_frame t caller (rproc : R.rproc) (args : R.rcall_arg array) ret_slot =
  let nparams = Array.length rproc.rp_params in
  if Array.length args <> nparams then
    runtime "%s expects %d arguments, got %d" rproc.rp_source.pc_name nparams
      (Array.length args);
  let slots = Array.map cell_v rproc.rp_defaults in
  for k = 0 to nparams - 1 do
    let slot_idx, (param : Ast.param) = rproc.rp_params.(k) in
    let a = args.(k) in
    if param.pref then begin
      match a.R.ca_cell with
      | Some s ->
        (* share the caller's cell: writes propagate back *)
        slots.(slot_idx) <- cell_of_slot t caller s
      | None -> runtime "%s: ref argument must be a variable" rproc.rp_source.pc_name
    end
    else set_cell t slots.(slot_idx) (eval t caller a.R.ca_expr)
  done;
  { rproc; slots; pc = 0; ret_slot }

(* Frame for main or a signal handler: no caller, no arguments. *)
let entry_frame (rproc : R.rproc) =
  if Array.length rproc.rp_params <> 0 then
    runtime "%s expects %d arguments, got 0" rproc.rp_source.pc_name
      (Array.length rproc.rp_params);
  { rproc; slots = Array.map cell_v rproc.rp_defaults; pc = 0; ret_slot = None }

let do_return t value =
  match t.stack with
  | [] -> runtime "return with no active frame"
  | frame :: rest -> (
    (match frame.ret_slot, value with
    | Some slot, Some v -> set_cell t slot v
    | Some _, None ->
      runtime "procedure %s fell through without returning a value"
        frame.rproc.rp_source.pc_name
    | None, _ -> ());
    t.stack <- rest;
    t.depth <- t.depth - 1;
    (* Stack-alignment watermark for pre-copy deltas: once the final
       capture has started the unwind is the capture protocol itself and
       must not count as a dip. *)
    if t.base_gen > 0 && t.capture_records = [] then
      t.min_depth <- min t.min_depth t.depth;
    match rest with [] -> t.mstatus <- Halted | _ -> ())

(* ----------------------------------------------------- state capture *)

let capture t frame args =
  match args with
  | R.Raexpr loc_expr :: rest ->
    let location = as_int (eval t frame loc_expr) in
    let values =
      List.map
        (function
          | R.Raexpr e -> eval t frame e
          | R.Ralv _ -> runtime "mh_capture takes expressions")
        rest
    in
    if t.capture_records = [] then begin
      t.capture_started_at <- Some (t.io.io_now ());
      (* First record of the final capture: judge whether the stack still
         matches the pre-copy base — same depth, never dipped below it. *)
      if t.base_gen > 0 then
        t.stack_aligned <-
          t.depth = t.base_depth && t.min_depth >= t.base_depth
    end;
    if t.base_gen > 0 then begin
      let mask =
        Array.of_list
          (List.map
             (function
               | R.Raexpr (R.Rframe i) -> frame.slots.(i).cgen >= t.base_gen
               | R.Raexpr (R.Rglobal i) -> t.globals.(i).cgen >= t.base_gen
               | _ -> true (* not a plain slot: treat as dirty *))
             rest)
      in
      t.capture_masks <- mask :: t.capture_masks
    end;
    t.captures_taken <- t.captures_taken + 1;
    t.capture_records <- { Image.location; values } :: t.capture_records
  | _ -> runtime "mh_capture: missing location"

let build_image t =
  let records = List.rev t.capture_records in
  let roots = List.concat_map (fun (r : Image.record) -> r.values) records in
  let heap =
    Image.gather_blocks ~lookup:(fun id -> Hashtbl.find_opt t.heap id) roots
  in
  Image.make ~source_module:t.prog.module_name ~records ~heap

(* Materialise an incoming image's heap into this machine, remapping
   symbolic block ids to fresh local ids (sharing preserved). *)
let feed_image t (image : Image.t) =
  let mapping = Hashtbl.create 16 in
  List.iter
    (fun (old_id, (block : Image.heap_block)) ->
      let id = t.next_block in
      t.next_block <- id + 1;
      Hashtbl.replace mapping old_id id;
      Hashtbl.replace t.heap id
        { Image.elem_ty = block.elem_ty; cells = Array.copy block.cells })
    image.heap;
  let remap_value v =
    match v with
    | Value.Varr id -> (
      match Hashtbl.find_opt mapping id with
      | Some id' -> Value.Varr id'
      | None -> Value.Vnull)
    | Value.Vptr (id, off) -> (
      match Hashtbl.find_opt mapping id with
      | Some id' -> Value.Vptr (id', off)
      | None -> Value.Vnull)
    | v -> v
  in
  List.iter
    (fun (_, new_id) ->
      match Hashtbl.find_opt t.heap new_id with
      | Some block ->
        Array.iteri (fun i v -> block.cells.(i) <- remap_value v) block.cells
      | None -> ())
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) mapping []);
  let records =
    List.map
      (fun (r : Image.record) ->
        { r with Image.values = List.map remap_value r.values })
      image.records
  in
  t.restore_records <- t.restore_records @ records;
  set_ready t

let restore t frame args =
  match args with
  | R.Ralv loc_lv :: targets -> (
    match List.rev t.restore_records with
    | [] -> runtime "mh_restore: restore buffer is empty"
    | record :: rev_rest ->
      t.restore_records <- List.rev rev_rest;
      if List.length targets <> List.length record.values then
        runtime "mh_restore: record has %d values but %d targets given"
          (List.length record.values) (List.length targets);
      let assign lv v =
        match lv with
        | R.Ralv (R.Rlvar slot) -> set_cell t (cell_of_slot t frame slot) v
        | R.Ralv (R.Rlindex (slot, idx)) ->
          let base = (cell_of_slot t frame slot).cv in
          heap_store t base (as_int (eval t frame idx)) v
        | R.Raexpr _ -> runtime "mh_restore takes lvalues"
      in
      assign (R.Ralv loc_lv) (Value.Vint record.location);
      List.iter2 assign targets record.values;
      t.restores_applied <- t.restores_applied + 1;
      if t.restore_records = [] then
        t.restore_done_at <- Some (t.io.io_now ()))
  | _ -> runtime "mh_restore: missing location target"

(* --------------------------------------------------------- builtins *)

let exec_stmt_builtin t frame name args =
  let advance () = frame.pc <- frame.pc + 1 in
  match name with
  | "mh_init" -> advance ()
  | "mh_read" -> (
    match args with
    | [ R.Raexpr iface_e; Ralv target ] -> (
      let iface = as_str (eval t frame iface_e) in
      match t.io.io_read iface with
      | Some v ->
        (match target with
        | R.Rlvar slot -> set_cell t (cell_of_slot t frame slot) v
        | R.Rlindex (slot, idx) ->
          let base = (cell_of_slot t frame slot).cv in
          heap_store t base (as_int (eval t frame idx)) v);
        advance ()
      | None ->
        (* stay on this instruction; the bus re-runs it on wake-up *)
        t.mstatus <- Blocked_read iface)
    | _ -> runtime "mh_read: bad arguments")
  | "mh_write" -> (
    match args with
    | [ R.Raexpr iface_e; Raexpr value_e ] ->
      let iface = as_str (eval t frame iface_e) in
      let v = eval t frame value_e in
      t.io.io_write iface v;
      advance ()
    | _ -> runtime "mh_write: bad arguments")
  | "mh_capture" ->
    capture t frame args;
    advance ()
  | "mh_restore" ->
    restore t frame args;
    advance ()
  | "mh_encode" ->
    let image = build_image t in
    t.divulged_image <- Some image;
    t.capture_records <- [];
    (* Latch the delta basis for the controller: masks are only usable
       if the stack stayed aligned with the pre-copy base. *)
    if t.base_gen > 0 then
      t.delta_masks <-
        (if t.stack_aligned then Some (List.rev t.capture_masks) else None);
    t.capture_masks <- [];
    t.io.io_encode image;
    advance ()
  | "mh_decode" -> (
    match t.io.io_decode () with
    | Some image ->
      feed_image t image;
      advance ()
    | None ->
      if t.restore_records <> [] then advance ()
      else t.mstatus <- Blocked_decode)
  | "signal" -> (
    match args with
    | [ R.Raexpr (R.Rconst (Value.Vstr handler)) ] ->
      t.handler <- Some handler;
      advance ()
    | _ -> runtime "signal: expected a handler name literal")
  | _ -> runtime "unknown builtin statement %s" name

(* -------------------------------------------------------------- step *)

let rec exec_instr t frame (instr : R.rinstr) =
  let advance () = frame.pc <- frame.pc + 1 in
  match instr with
  | Rskip -> advance ()
  | Rassign (Rlvar slot, e) ->
    set_cell t (cell_of_slot t frame slot) (eval t frame e);
    advance ()
  | Rassign (Rlindex (slot, idx), e) ->
    let base = (cell_of_slot t frame slot).cv in
    let i = as_int (eval t frame idx) in
    heap_store t base i (eval t frame e);
    advance ()
  | Rpoint_gate inner ->
    (* A reconfiguration-point gate: fire the controller's one-shot hook
       (live pre-copy capture), then run the wrapped instruction. Counts
       as the one instruction it wraps — the tracer and golden traces
       see the original source instruction. *)
    (match t.point_hook with
    | Some hook ->
      t.point_hook <- None;
      hook ()
    | None -> ());
    exec_instr t frame inner
  | Rcall { target; callee; args; ret_slot } ->
    if t.depth >= max_stack_depth then
      runtime "stack overflow calling %s" callee;
    let rproc = if target >= 0 then t.procs.(target) else find_proc_code t callee in
    let ret =
      match ret_slot with
      | None -> None
      | Some slot -> Some (cell_of_slot t frame slot)
    in
    (* resume after the call instruction *)
    frame.pc <- frame.pc + 1;
    let new_frame = make_frame t frame rproc args ret in
    if t.restore_records <> [] then
      (* a call made while the restore buffer is non-empty is the restore
         dispatch rebuilding the activation-record stack *)
      t.frames_rebuilt <- t.frames_rebuilt + 1;
    t.stack <- new_frame :: t.stack;
    t.depth <- t.depth + 1
  | Rreturn e ->
    let v = Option.map (eval t frame) e in
    do_return t v
  | Rjump target -> frame.pc <- target
  | Rcjump { cond; if_false } ->
    if as_bool (eval t frame cond) then advance () else frame.pc <- if_false
  | Rprint es ->
    let rendered = List.map (fun e -> display_value (eval t frame e)) es in
    t.io.io_print (String.concat "" rendered);
    advance ()
  | Rsleep e -> (
    let v = eval t frame e in
    let duration =
      match v with
      | Vint i -> float_of_int i
      | Vfloat f -> f
      | v -> runtime "sleep of %s" (Value.type_name v)
    in
    (* advance first: on wake-up, execution resumes after the sleep *)
    advance ();
    t.mstatus <- Sleeping (Float.max 0.0 duration))
  | Rbuiltin_stmt (name, args) -> exec_stmt_builtin t frame name args

let run_pending_signal t =
  if t.pending_signal then begin
    t.pending_signal <- false;
    match t.handler with
    | None -> ()  (* no handler installed: signal ignored *)
    | Some handler_name ->
      let rproc = find_proc_code t handler_name in
      (* The handler runs as an interrupt: its frame is pushed without
         advancing the interrupted frame's pc. *)
      let frame = entry_frame rproc in
      t.signal_handled_at <- Some (t.io.io_now ());
      t.stack <- frame :: t.stack;
      t.depth <- t.depth + 1
  end

let step t =
  match t.mstatus with
  | Halted | Crashed _ | Sleeping _ | Blocked_read _ | Blocked_decode -> ()
  | Ready -> (
    run_pending_signal t;
    match t.stack with
    | [] -> t.mstatus <- Halted
    | frame -> (
      let frame = List.hd frame in
      if frame.pc < 0 || frame.pc >= Array.length frame.rproc.rp_instrs then
        t.mstatus <-
          Crashed
            (Printf.sprintf "pc out of range in %s" frame.rproc.rp_source.pc_name)
      else begin
        t.instrs_executed <- t.instrs_executed + 1;
        (match t.tracer with
        | Some hook ->
          hook frame.rproc.rp_source.pc_name frame.pc
            frame.rproc.rp_source.pc_instrs.(frame.pc)
        | None -> ());
        try exec_instr t frame frame.rproc.rp_instrs.(frame.pc) with
        | Runtime_error message -> t.mstatus <- Crashed message
      end))

(* Superinstruction dispatch: execute a fused straight-line run in one
   dispatch. Instruction counting is per sub-instruction (incremented
   before each exec, exactly like [step]), so counts, costs and crash
   attribution are identical to unfused execution. A false-taken
   Fcjump_run executes one instruction, not the whole run.

   Run members are pre-destructured assigns/skips, executed here with a
   three-way match instead of the full [exec_instr] dispatch. pc is
   written before each member (not advanced after, as [exec_instr]
   would), which keeps crash attribution exact: a member that raises
   leaves pc at its own index, just like unfused execution. The tail
   transfer, if any, runs through [exec_instr] with pc already at its
   index, so its pc arithmetic (call resumption, branch targets) is
   untouched. *)
let exec_run t frame ~base (body : R.fmember array) (tail : R.rinstr option) =
  for k = 0 to Array.length body - 1 do
    frame.pc <- base + k;
    t.instrs_executed <- t.instrs_executed + 1;
    match Array.unsafe_get body k with
    | R.Mskip -> ()
    | R.Massign (slot, e) -> set_cell t (cell_of_slot t frame slot) (eval t frame e)
    | R.Massign_index (slot, idx, e) ->
      let b = (cell_of_slot t frame slot).cv in
      let i = as_int (eval t frame idx) in
      heap_store t b i (eval t frame e)
  done;
  frame.pc <- base + Array.length body;
  match tail with
  | Some (R.Rjump target) ->
    (* the overwhelmingly common loop-closing tail, inlined *)
    t.instrs_executed <- t.instrs_executed + 1;
    frame.pc <- target
  | Some i ->
    t.instrs_executed <- t.instrs_executed + 1;
    exec_instr t frame i
  | None -> ()

let exec_fused t frame (f : R.fused) =
  match f with
  | R.Frun { body; tail } -> exec_run t frame ~base:frame.pc body tail
  | R.Fcjump_run { cond; if_false; body; tail } ->
    t.instrs_executed <- t.instrs_executed + 1;
    if as_bool (eval t frame cond) then
      exec_run t frame ~base:(frame.pc + 1) body tail
    else frame.pc <- if_false

(* Budgeted execution: run at most [budget] instructions while Ready,
   returning the number actually executed. This is the bus's quantum
   loop, hoisted into the machine so the hot path pays one status check
   per instruction instead of a full [step] call, and so fused pairs can
   dispatch once. Fusion engages only when enabled, no tracer is
   attached, and at least two instructions of budget remain (a fused
   pair must never overrun the quantum). *)
let exec_budget t budget =
  let start = t.instrs_executed in
  (* absolute threshold, so the loop and the fusion headroom test are
     plain int compares on the counter — no per-iteration arithmetic *)
  let stop = if budget >= max_int - start then max_int else start + budget in
  while t.mstatus = Ready && t.instrs_executed < stop do
    run_pending_signal t;
    match t.stack with
    | [] -> t.mstatus <- Halted
    | frame :: _ ->
      if frame.pc < 0 || frame.pc >= Array.length frame.rproc.rp_instrs then
        t.mstatus <-
          Crashed
            (Printf.sprintf "pc out of range in %s" frame.rproc.rp_source.pc_name)
      else begin
        match t.tracer with
        | Some hook ->
          t.instrs_executed <- t.instrs_executed + 1;
          hook frame.rproc.rp_source.pc_name frame.pc
            frame.rproc.rp_source.pc_instrs.(frame.pc);
          (try exec_instr t frame frame.rproc.rp_instrs.(frame.pc) with
          | Runtime_error message -> t.mstatus <- Crashed message)
        | None -> (
          let fused =
            if t.fusion && frame.pc < Array.length frame.rproc.rp_fused then
              Array.unsafe_get frame.rproc.rp_fused frame.pc
            else None
          in
          match fused with
          | Some f when t.instrs_executed + R.fused_length f <= stop -> (
            try exec_fused t frame f with
            | Runtime_error message -> t.mstatus <- Crashed message)
          | Some _ | None ->
            t.instrs_executed <- t.instrs_executed + 1;
            (try exec_instr t frame frame.rproc.rp_instrs.(frame.pc) with
            | Runtime_error message -> t.mstatus <- Crashed message))
      end
  done;
  t.instrs_executed - start

let run ?(max_steps = max_int) t = ignore (exec_budget t max_steps)

(* ------------------------------------------------- live pre-copy API *)

let set_fusion t on = t.fusion <- on
let fusion_enabled t = t.fusion

let set_point_hook t hook = t.point_hook <- hook

(* Arm dirty tracking against the state as of now: bump the generation
   so every later write stamps above [base_gen], and reset the stack
   watermark. Called by the controller right after [live_capture]. *)
let begin_dirty_tracking t =
  t.cur_gen <- t.cur_gen + 1;
  t.base_gen <- t.cur_gen;
  t.base_depth <- t.depth;
  t.min_depth <- t.depth;
  t.stack_aligned <- false;
  t.capture_masks <- [];
  t.delta_masks <- None;
  Hashtbl.reset t.dirty_heap

let delta_basis t =
  match t.delta_masks with
  | None -> None
  | Some masks -> Some (masks, fun id -> Hashtbl.mem t.dirty_heap id)

(* Non-destructively capture the image the machine *would* divulge if it
   froze right now. Only valid when the machine is parked at a
   reconfiguration-point gate (the point hook fires there): the capture
   arguments of the innermost frame's point block — and of each
   suspended caller's call-capture block — are read directly, without
   executing anything. Lowered layout (see Transform.Instrument):

     point block:  gate(pc) reconfig:=false capturestack:=true  mh_capture
     call  block:  cjump(capturestack)  mh_capture

   so the innermost capture instruction sits at pc+3 and each suspended
   caller's at its saved pc+1. Any deviation — a non-gate pc, a capture
   argument that is not a plain slot — returns [None] and the controller
   falls back to the freeze-and-capture path. Heap cells are deep-copied
   because the machine keeps running and will mutate them. *)
let live_capture t =
  match t.stack with
  | [] -> None
  | innermost :: outer ->
    let gate_ok =
      innermost.pc >= 0
      && innermost.pc < Array.length innermost.rproc.rp_instrs
      &&
      match innermost.rproc.rp_instrs.(innermost.pc) with
      | R.Rpoint_gate _ -> true
      | _ -> false
    in
    if not gate_ok then None
    else begin
      let exception Fallback in
      let record_of frame capture_pc =
        if capture_pc < 0 || capture_pc >= Array.length frame.rproc.rp_instrs
        then raise Fallback;
        match frame.rproc.rp_instrs.(capture_pc) with
        | R.Rbuiltin_stmt
            ("mh_capture", R.Raexpr (R.Rconst (Value.Vint location)) :: rest)
          ->
          let values =
            List.map
              (function
                | R.Raexpr (R.Rframe i) -> frame.slots.(i).cv
                | R.Raexpr (R.Rglobal i) -> t.globals.(i).cv
                | _ -> raise Fallback)
              rest
          in
          { Image.location; values }
        | _ -> raise Fallback
      in
      try
        (* Image record order: deepest frame first, main last — the same
           order [build_image] produces. *)
        let records =
          record_of innermost (innermost.pc + 3)
          :: List.map (fun f -> record_of f (f.pc + 1)) outer
        in
        let roots =
          List.concat_map (fun (r : Image.record) -> r.values) records
        in
        let heap =
          Image.gather_blocks
            ~lookup:(fun id -> Hashtbl.find_opt t.heap id)
            roots
        in
        let heap =
          List.map
            (fun (id, (b : Image.heap_block)) ->
              (id, { Image.elem_ty = b.elem_ty; cells = Array.copy b.cells }))
            heap
        in
        Some (Image.make ~source_module:t.prog.module_name ~records ~heap)
      with Fallback -> None
    end

(* ---------------------------------------------------- baseline support *)

let stack_procs t = List.map (fun f -> f.rproc.R.rp_source.pc_name) t.stack

let state_size t =
  let value_cost v = Image.value_size v in
  let cells_cost slots =
    Array.fold_left (fun acc cell -> acc + value_cost cell.cv) 0 slots
  in
  let heap_cost =
    Hashtbl.fold
      (fun _ (block : Image.heap_block) acc ->
        acc + 16 + Array.fold_left (fun a v -> a + value_cost v) 0 block.cells)
      t.heap 0
  in
  cells_cost t.globals
  + List.fold_left (fun acc f -> acc + 8 + cells_cost f.slots) 0 t.stack
  + heap_cost

(* Deep copy preserving cell aliasing (by-reference parameters share
   cells across frames; the copy must too). *)
let clone t ~io =
  let cell_map : (cell * cell) list ref = ref [] in
  let copy_cell cell =
    match List.find_opt (fun (old_cell, _) -> old_cell == cell) !cell_map with
    | Some (_, fresh) -> fresh
    | None ->
      let fresh = { cv = cell.cv; cgen = cell.cgen } in
      cell_map := (cell, fresh) :: !cell_map;
      fresh
  in
  let globals = Array.map copy_cell t.globals in
  let stack =
    List.map
      (fun f ->
        { rproc = f.rproc;
          slots = Array.map copy_cell f.slots;
          pc = f.pc;
          ret_slot = Option.map copy_cell f.ret_slot })
      t.stack
  in
  let heap = Hashtbl.create (Hashtbl.length t.heap) in
  Hashtbl.iter
    (fun id (block : Image.heap_block) ->
      Hashtbl.replace heap id
        { Image.elem_ty = block.elem_ty; cells = Array.copy block.cells })
    t.heap;
  { prog = t.prog;
    rprog = t.rprog;
    procs = t.procs;
    proc_index = t.proc_index;
    procs_local = t.procs_local;
    globals;
    global_index = t.global_index;
    stack;
    depth = t.depth;
    heap;
    next_block = t.next_block;
    mstatus = t.mstatus;
    pending_signal = t.pending_signal;
    handler = t.handler;
    capture_records = t.capture_records;
    restore_records = t.restore_records;
    divulged_image = t.divulged_image;
    status_attr = t.status_attr;
    io;
    instrs_executed = t.instrs_executed;
    tracer = None;
    signal_handled_at = t.signal_handled_at;
    capture_started_at = t.capture_started_at;
    restore_done_at = t.restore_done_at;
    captures_taken = t.captures_taken;
    restores_applied = t.restores_applied;
    frames_rebuilt = t.frames_rebuilt;
    cur_gen = t.cur_gen;
    base_gen = t.base_gen;
    base_depth = t.base_depth;
    min_depth = t.min_depth;
    stack_aligned = t.stack_aligned;
    capture_masks = t.capture_masks;
    delta_masks = t.delta_masks;
    dirty_heap = Hashtbl.copy t.dirty_heap;
    point_hook = None;  (* hooks are controller-side, never cloned *)
    fusion = t.fusion }

let replace_proc_code t (code : Ir.proc_code) =
  if not t.procs_local then begin
    t.procs <- Array.copy t.procs;
    t.proc_index <- Hashtbl.copy t.proc_index;
    t.procs_local <- true
  end;
  let rproc =
    R.resolve_proc ~global_index:t.global_index ~proc_index:t.proc_index code
  in
  match Hashtbl.find_opt t.proc_index code.pc_name with
  | Some i -> t.procs.(i) <- rproc
  | None ->
    t.procs <- Array.append t.procs [| rproc |];
    Hashtbl.replace t.proc_index code.pc_name (Array.length t.procs - 1)

let create ?(status_attr = "normal") ~io ?resolved (prog : Ast.program) =
  let rprog =
    match resolved with
    | Some r -> r
    | None -> Resolve.resolve_program prog (Lower.lower_program prog)
  in
  let globals =
    Array.map (fun (_, ty) -> cell_v (Value.default_of_ty ty)) rprog.R.rg_globals
  in
  let t =
    { prog; rprog; procs = rprog.rg_procs; proc_index = rprog.rg_proc_index;
      procs_local = false; globals; global_index = rprog.rg_global_index;
      stack = []; depth = 0; heap = Hashtbl.create 16;
      next_block = 0; mstatus = Ready; pending_signal = false; handler = None;
      capture_records = []; restore_records = []; divulged_image = None;
      status_attr; io; instrs_executed = 0; tracer = None;
      signal_handled_at = None; capture_started_at = None;
      restore_done_at = None; captures_taken = 0; restores_applied = 0;
      frames_rebuilt = 0;
      cur_gen = 1; base_gen = 0; base_depth = 0; min_depth = 0;
      stack_aligned = false; capture_masks = []; delta_masks = None;
      dirty_heap = Hashtbl.create 8; point_hook = None; fusion = false }
  in
  let scratch_frame =
    { rproc = R.scratch_proc; slots = [||]; pc = 0; ret_slot = None }
  in
  Array.iteri
    (fun i init ->
      match init with
      | Some re -> (
        (* an initialiser that fails (e.g. forward reference) leaves the
           type default in place, like the unresolved engine *)
        try t.globals.(i).cv <- eval t scratch_frame re with Runtime_error _ -> ())
      | None -> ())
    rprog.rg_global_inits;
  (match Hashtbl.find_opt t.proc_index "main" with
  | Some i ->
    let rproc = t.procs.(i) in
    if rproc.rp_source.pc_params = [] then begin
      t.stack <- [ entry_frame rproc ];
      t.depth <- 1
    end
    else t.mstatus <- Crashed "main must take no parameters"
  | None -> t.mstatus <- Crashed "program has no main procedure");
  t
