(** The MiniProc abstract machine: one single-threaded module instance.

    A machine owns its globals, heap and activation-record stack, and
    executes {!Resolve}d slot-indexed instructions one [step] at a time
    so an external scheduler (the software bus) can interleave modules,
    deliver messages and signals, and account for simulated time. Frames
    are flat arrays of mutable cells; the interpreter loop does no string
    hashing (the original hashtable engine survives as {!Ast_machine},
    the semantic reference).

    Signals are delivered between instructions, as in the paper: a
    pending reconfiguration signal runs the installed handler procedure
    (which sets [mh_reconfig]) before the next instruction of the
    interrupted frame. *)

type status =
  | Ready
  | Sleeping of float   (** remaining duration requested by [sleep] *)
  | Blocked_read of string  (** waiting for a message on an interface *)
  | Blocked_decode      (** waiting for a state image ([mh_decode]) *)
  | Halted              (** main returned *)
  | Crashed of string   (** runtime error *)

type t

val create :
  ?status_attr:string ->
  io:Io_intf.t ->
  ?resolved:Resolve.program ->
  Dr_lang.Ast.program ->
  t
(** Build a machine for [program] (which must typecheck — call
    {!Dr_lang.Typecheck.check} first) and push a frame for [main].
    [status_attr] is what [mh_getstatus()] returns ("normal" by default,
    "clone" for a module started as a restoration). [resolved] lets
    callers share one compiled artifact across many machines (see
    {!Cache}); without it the program is lowered and resolved here. *)

val status : t -> status

val program : t -> Dr_lang.Ast.program

val step : t -> unit
(** Execute one instruction (or run a pending signal handler to
    completion first). No-op unless the status is [Ready]. *)

val run : ?max_steps:int -> t -> unit
(** Step until the machine stops being [Ready] or the budget runs out. *)

val exec_budget : t -> int -> int
(** [exec_budget t n] executes at most [n] instructions while [Ready]
    and returns the number actually executed — the bus's quantum loop,
    hoisted into the machine so the hot path avoids a per-instruction
    [step] call and can dispatch fused pairs (see {!set_fusion}). *)

val set_fusion : t -> bool -> unit
(** Enable superinstruction dispatch ({!Resolve.fused}): adjacent
    compatible instructions execute in one dispatch. Off by default.
    Instruction counts, crash semantics and observable behaviour are
    unchanged; a machine with a tracer attached always runs unfused. *)

val fusion_enabled : t -> bool

val set_ready : t -> unit
(** Wake a [Sleeping]/[Blocked_*] machine (the scheduler decides when). *)

val deliver_signal : t -> unit
(** Mark the reconfiguration signal pending; handled before the next
    instruction if a handler is installed, ignored otherwise. *)

val force_crash : t -> string -> unit
(** Externally induced failure (fault injection: host crash, kill -9):
    the machine transitions to [Crashed reason] from any live status.
    No-op on a machine that already halted or crashed. *)

val signal_handled : t -> bool
(** Has a signal handler been installed? *)

val instr_count : t -> int
(** Total instructions executed (the virtual-time cost measure). *)

(** {2 Observability}

    Virtual-time stamps of the capture/restore lifecycle, read from the
    machine's [io_now]. Passive: nothing here affects execution. *)

val signal_handled_at : t -> float option
(** When the pending reconfiguration signal was consumed and its handler
    frame pushed. *)

val capture_started_at : t -> float option
(** When the first [mh_capture] of the current capture ran. *)

val restore_done_at : t -> float option
(** When the last restore record was consumed ([mh_restore] emptied the
    buffer). *)

val captures_taken : t -> int
(** Activation records captured over the machine's lifetime. *)

val restores_applied : t -> int
(** Restore records consumed by [mh_restore]. *)

val frames_rebuilt : t -> int
(** Frames pushed by the restore dispatch (calls made while the restore
    buffer was non-empty). *)

val stack_depth : t -> int

val current_proc : t -> string option
(** Name of the procedure on top of the stack. *)

val read_global : t -> string -> Dr_state.Value.t option

val read_local : t -> string -> Dr_state.Value.t option
(** Read a variable of the top frame. *)

val heap_block : t -> int -> Dr_state.Image.heap_block option

val heap_size : t -> int

val divulged : t -> Dr_state.Image.t option
(** The last image passed to [mh_encode], if any (also handed to
    [Io_intf.io_encode]). *)

val feed_image : t -> Dr_state.Image.t -> unit
(** Deposit a state image for a blocked/future [mh_decode]. Heap blocks
    in the image are materialised into this machine's heap with fresh
    ids; record values are remapped. *)

val set_tracer : t -> (string -> int -> Ir.instr -> unit) option -> unit
(** Install a per-instruction hook [(proc, pc, instr)] called before each
    instruction executes — debugging support for [drc exec --trace]. *)

val pp_status : Format.formatter -> status -> unit

(** {2 Live pre-copy capture}

    The controller can snapshot a running instance's divulgable state
    {e without} freezing it, then track writes so the post-freeze
    capture ships only the dirtied slots as an {!Dr_state.Image.delta}.
    Protocol: park a hook at the next reconfiguration point
    ({!set_point_hook}); in the hook, {!live_capture} the base image and
    {!begin_dirty_tracking}; after the real (frozen) capture divulges,
    {!delta_basis} yields the per-record dirty masks for
    {!Dr_state.Image.diff} — or [None] when the stack shape diverged
    from the base, in which case the full image is authoritative. *)

val set_point_hook : t -> (unit -> unit) option -> unit
(** One-shot hook fired the next time execution reaches a
    reconfiguration-point gate (before the point's own logic runs);
    cleared before it is invoked. *)

val live_capture : t -> Dr_state.Image.t option
(** Non-destructive capture of the image the machine would divulge if
    frozen at the current reconfiguration point. Only meaningful from
    inside a point hook (the machine must be parked at the gate);
    [None] whenever the state cannot be read without executing —
    callers fall back to the ordinary freeze path. *)

val begin_dirty_tracking : t -> unit
(** Arm the write barrier: from now until the next capture completes,
    every slot and heap write is tracked against the just-taken base. *)

val delta_basis : t -> (bool array list * (int -> bool)) option
(** After a divulge with tracking armed: per-record dirty masks (in
    image record order) and a heap-block dirty predicate, suitable for
    {!Dr_state.Image.diff} against the base. [None] if the stack shape
    diverged from the base snapshot (the delta would be unsound). *)

(** {1 Support for the baseline systems (paper §4)} *)

val stack_procs : t -> string list
(** Procedure names on the activation-record stack, top first. Used by
    the procedure-level updater, which may only replace procedures that
    are not executing. *)

val clone : t -> io:Io_intf.t -> t
(** Machine-specific state capture: a deep copy of the entire runtime
    state (globals, frames with program counters, heap, buffers). This is
    the approach the paper's abstract format replaces — it only works
    between identical "machines". Cell aliasing from by-reference
    parameters is preserved. The clone gets fresh io callbacks. *)

val state_size : t -> int
(** Abstract byte size of the full machine state (globals + all frame
    cells + heap): the cost driver for checkpointing. *)

val replace_proc_code : t -> Ir.proc_code -> unit
(** Swap in a new implementation for one procedure; takes effect on the
    next call (active frames keep running the old code). This is the
    procedure-level update granularity of Frieder & Segal. *)
