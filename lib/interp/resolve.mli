(** Resolution pass: turns lowered {!Ir.proc_code} into slot-indexed
    executable form, so the {!Machine} interpreter loop does zero string
    hashing per instruction.

    Frame variables (params, locals, temps) become indices into a flat
    [Value.t ref array]; globals become indices into a per-program
    global table; call targets become procedure indices. Expressions are
    compiled once into closed {!rexpr} trees over those slots. The
    resolved instruction array is index-aligned with the source
    [Ir.proc_code], so program counters, jump targets, tracer output and
    golden traces are unchanged.

    Unresolvable names are represented, not rejected: they raise the
    usual "unbound variable" runtime error only if execution reaches
    them — identical to the lazy hashtable lookup they replace. *)

type slot =
  | Sframe of int       (** index into the frame's slot array *)
  | Sglobal of int      (** index into the machine's global table *)
  | Sunbound of string  (** unresolvable: raises only when touched *)

type rexpr =
  | Rconst of Dr_state.Value.t
  | Rframe of int
  | Rglobal of int
  | Runbound of string
  | Rindex of rexpr * rexpr
  | Raddr of slot * rexpr
  | Rneg of rexpr
  | Rnot of rexpr
  | Rbinop of Dr_lang.Ast.binop * rexpr * rexpr
  | Rresidual_call of string
  | Rbuiltin of string * rexpr list

type rlvalue = Rlvar of slot | Rlindex of slot * rexpr

type rarg = Raexpr of rexpr | Ralv of rlvalue

type rcall_arg = {
  ca_expr : rexpr;        (** evaluated in the caller for by-value *)
  ca_cell : slot option;  (** the bare variable's cell, for by-ref *)
}

type rinstr =
  | Rassign of rlvalue * rexpr
  | Rcall of {
      target : int;  (** pre-resolved proc index; -1 = look up by name *)
      callee : string;
      args : rcall_arg array;
      ret_slot : slot option;
    }
  | Rreturn of rexpr option
  | Rjump of int
  | Rcjump of { cond : rexpr; if_false : int }
  | Rprint of rexpr list
  | Rsleep of rexpr
  | Rbuiltin_stmt of string * rarg list
  | Rskip

type rproc = {
  rp_source : Ir.proc_code;  (** index-aligned with [rp_instrs] *)
  rp_params : (int * Dr_lang.Ast.param) array;
  rp_defaults : Dr_state.Value.t array;
  rp_slot_index : (string, int) Hashtbl.t;
  rp_instrs : rinstr array;
}

type program = {
  rg_source : Dr_lang.Ast.program;
  rg_code : (string, Ir.proc_code) Hashtbl.t;
  rg_procs : rproc array;
  rg_proc_index : (string, int) Hashtbl.t;
  rg_globals : (string * Dr_lang.Ast.ty) array;
  rg_global_index : (string, int) Hashtbl.t;
  rg_global_inits : rexpr option array;
}

val resolve_program :
  Dr_lang.Ast.program -> (string, Ir.proc_code) Hashtbl.t -> program
(** Resolve a whole lowered program. Global initialiser [k] only sees
    globals declared before it (later references stay unbound), matching
    the declaration-order evaluation of the unresolved engine. *)

val resolve_proc :
  global_index:(string, int) Hashtbl.t ->
  proc_index:(string, int) Hashtbl.t ->
  Ir.proc_code ->
  rproc
(** Resolve one procedure against an existing global/procedure index —
    used by {!Machine.replace_proc_code} to compile hot-swapped code.
    Calls to names absent from [proc_index] fall back to by-name lookup
    at call time. *)

val scratch_proc : rproc
(** Empty procedure backing the scratch frame for global initialisers. *)
