(** Resolution pass: turns lowered {!Ir.proc_code} into slot-indexed
    executable form, so the {!Machine} interpreter loop does zero string
    hashing per instruction.

    Frame variables (params, locals, temps) become indices into a flat
    [Value.t ref array]; globals become indices into a per-program
    global table; call targets become procedure indices. Expressions are
    compiled once into closed {!rexpr} trees over those slots. The
    resolved instruction array is index-aligned with the source
    [Ir.proc_code], so program counters, jump targets, tracer output and
    golden traces are unchanged.

    Unresolvable names are represented, not rejected: they raise the
    usual "unbound variable" runtime error only if execution reaches
    them — identical to the lazy hashtable lookup they replace. *)

type slot =
  | Sframe of int       (** index into the frame's slot array *)
  | Sglobal of int      (** index into the machine's global table *)
  | Sunbound of string  (** unresolvable: raises only when touched *)

type rexpr =
  | Rconst of Dr_state.Value.t
  | Rframe of int
  | Rglobal of int
  | Runbound of string
  | Rindex of rexpr * rexpr
  | Raddr of slot * rexpr
  | Rneg of rexpr
  | Rnot of rexpr
  | Rbinop of Dr_lang.Ast.binop * rexpr * rexpr
  | Rresidual_call of string
  | Rbuiltin of string * rexpr list

type rlvalue = Rlvar of slot | Rlindex of slot * rexpr

type rarg = Raexpr of rexpr | Ralv of rlvalue

type rcall_arg = {
  ca_expr : rexpr;        (** evaluated in the caller for by-value *)
  ca_cell : slot option;  (** the bare variable's cell, for by-ref *)
}

type rinstr =
  | Rassign of rlvalue * rexpr
  | Rcall of {
      target : int;  (** pre-resolved proc index; -1 = look up by name *)
      callee : string;
      args : rcall_arg array;
      ret_slot : slot option;
    }
  | Rreturn of rexpr option
  | Rjump of int
  | Rcjump of { cond : rexpr; if_false : int }
  | Rprint of rexpr list
  | Rsleep of rexpr
  | Rbuiltin_stmt of string * rarg list
  | Rskip
  | Rpoint_gate of rinstr
      (** the gate opening an instrumented reconfiguration point's
          capture block ("_Pj" label): executes exactly like the wrapped
          instruction, but the machine can park a one-shot hook here
          (live pre-copy capture) that fires when control reaches the
          point *)

(** Superinstructions: maximal straight-line runs (up to
    {!max_fused_run} instructions) pre-joined at resolve time so the
    dispatch loop pays one match for the whole run. Advisory and
    index-aligned with [rp_instrs]: jump targets landing mid-run execute
    the member unfused, and observable behaviour (instruction counts,
    traces, crash points) is unchanged. *)
type fmember =
  | Mskip
  | Massign of slot * rexpr
      (** [Rassign (Rlvar _, _)] destructured at fuse time *)
  | Massign_index of slot * rexpr * rexpr  (** [slot.[idx] <- e] *)
(** Run members: fall-through instructions pre-destructured so the
    machine executes them with a three-way match and a deferred pc
    update, bypassing the full instruction dispatch. *)

type fused =
  | Frun of { body : fmember array; tail : rinstr option }
      (** a straight-line run of members, optionally closed by a
          control transfer: exec all, one dispatch *)
  | Fcjump_run of {
      cond : rexpr;
      if_false : int;
      body : fmember array;
      tail : rinstr option;
    }
      (** compare+branch heading a run: false → branch (1 instr), true →
          fall through the members into the optional tail — a tight loop
          body becomes a single dispatch per iteration *)

val max_fused_run : int
(** Upper bound on the number of instructions joined into one run. *)

val fused_length : fused -> int
(** Maximum instructions a fused run can execute (the true-path count
    for [Fcjump_run]); used for budget headroom checks. *)

type rproc = {
  rp_source : Ir.proc_code;  (** index-aligned with [rp_instrs] *)
  rp_params : (int * Dr_lang.Ast.param) array;
  rp_defaults : Dr_state.Value.t array;
  rp_slot_index : (string, int) Hashtbl.t;
  rp_instrs : rinstr array;
  rp_fused : fused option array;  (** index-aligned with [rp_instrs] *)
}

type program = {
  rg_source : Dr_lang.Ast.program;
  rg_code : (string, Ir.proc_code) Hashtbl.t;
  rg_procs : rproc array;
  rg_proc_index : (string, int) Hashtbl.t;
  rg_globals : (string * Dr_lang.Ast.ty) array;
  rg_global_index : (string, int) Hashtbl.t;
  rg_global_inits : rexpr option array;
}

val resolve_program :
  Dr_lang.Ast.program -> (string, Ir.proc_code) Hashtbl.t -> program
(** Resolve a whole lowered program. Global initialiser [k] only sees
    globals declared before it (later references stay unbound), matching
    the declaration-order evaluation of the unresolved engine. *)

val resolve_proc :
  global_index:(string, int) Hashtbl.t ->
  proc_index:(string, int) Hashtbl.t ->
  Ir.proc_code ->
  rproc
(** Resolve one procedure against an existing global/procedure index —
    used by {!Machine.replace_proc_code} to compile hot-swapped code.
    Calls to names absent from [proc_index] fall back to by-name lookup
    at call time. *)

val scratch_proc : rproc
(** Empty procedure backing the scratch frame for global initialisers. *)
