(* Content-keyed program cache: parse/typecheck/transform happen
   upstream, but lowering + resolution used to run once per
   [Bus.register_program] — and every retry, supervisor restart or
   repeated deployment of the same module text paid it again. The cache
   keys on a digest of the pretty-printed program (stable across
   re-parses of the same source and across structurally identical ASTs)
   and stores the lowered table together with the resolved artifact, so
   N instances of one module share a single compilation. *)

type artifact = {
  a_program : Dr_lang.Ast.program;
  a_code : (string, Ir.proc_code) Hashtbl.t;
  a_resolved : Resolve.program;
}

let table : (string, artifact) Hashtbl.t = Hashtbl.create 64

let hit_count = ref 0
let miss_count = ref 0

(* Bound the cache so long-running sessions that compile thousands of
   distinct programs (property tests, benches) cannot grow it without
   limit; on overflow the whole table is dropped — correctness never
   depends on a hit. *)
let max_entries = 512

let key (program : Dr_lang.Ast.program) =
  Digest.string (Dr_lang.Pretty.program_to_string program)

let prepare (program : Dr_lang.Ast.program) : artifact =
  let k = key program in
  match Hashtbl.find_opt table k with
  | Some artifact ->
    incr hit_count;
    artifact
  | None ->
    incr miss_count;
    let code = Lower.lower_program program in
    let resolved = Resolve.resolve_program program code in
    let artifact = { a_program = program; a_code = code; a_resolved = resolved } in
    if Hashtbl.length table >= max_entries then Hashtbl.reset table;
    Hashtbl.replace table k artifact;
    artifact

let hits () = !hit_count
let misses () = !miss_count
let entries () = Hashtbl.length table

let reset () =
  Hashtbl.reset table;
  hit_count := 0;
  miss_count := 0
