(* The original AST-walking execution engine, kept verbatim as the
   reference implementation: every variable access goes through a
   per-frame (string, Value.t ref) Hashtbl.t and expressions are raw
   [Ast.expr] trees. {!Machine} replaced it on the hot path with
   resolved slot-indexed code; this engine remains the semantic oracle
   for the differential property tests (test_resolve.ml) and the
   before/after comparison in [bench -- interp]. Its observable
   behaviour — prints, traces, instruction counts, error messages — is
   the contract the resolved engine must match byte for byte. *)

open Dr_lang
module Value = Dr_state.Value
module Image = Dr_state.Image

exception Runtime_error of string

let runtime fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type status =
  | Ready
  | Sleeping of float
  | Blocked_read of string
  | Blocked_decode
  | Halted
  | Crashed of string

let pp_status ppf = function
  | Ready -> Fmt.string ppf "ready"
  | Sleeping d -> Fmt.pf ppf "sleeping(%g)" d
  | Blocked_read iface -> Fmt.pf ppf "blocked-read(%s)" iface
  | Blocked_decode -> Fmt.string ppf "blocked-decode"
  | Halted -> Fmt.string ppf "halted"
  | Crashed message -> Fmt.pf ppf "crashed(%s)" message

type frame = {
  code : Ir.proc_code;
  cells : (string, Value.t ref) Hashtbl.t;
  mutable pc : int;
  ret_slot : Value.t ref option;  (* caller's temp awaiting the result *)
}

type t = {
  prog : Ast.program;
  code_table : (string, Ir.proc_code) Hashtbl.t;
  globals : (string, Value.t ref) Hashtbl.t;
  mutable stack : frame list;
  heap : (int, Image.heap_block) Hashtbl.t;
  mutable next_block : int;
  mutable mstatus : status;
  mutable pending_signal : bool;
  mutable handler : string option;
  mutable capture_records : Image.record list;  (* reverse capture order *)
  mutable restore_records : Image.record list;  (* capture order; pop from end *)
  mutable divulged_image : Image.t option;
  status_attr : string;
  io : Io_intf.t;
  mutable instrs_executed : int;
  mutable tracer : (string -> int -> Ir.instr -> unit) option;
}

let max_stack_depth = 4096

let status t = t.mstatus

let set_tracer t tracer = t.tracer <- tracer
let program t = t.prog
let instr_count t = t.instrs_executed
let stack_depth t = List.length t.stack
let divulged t = t.divulged_image
let signal_handled t = Option.is_some t.handler

let current_proc t =
  match t.stack with [] -> None | f :: _ -> Some f.code.pc_name

let set_ready t =
  match t.mstatus with
  | Sleeping _ | Blocked_read _ | Blocked_decode -> t.mstatus <- Ready
  | Ready | Halted | Crashed _ -> ()

let deliver_signal t = t.pending_signal <- true

let force_crash t reason =
  match t.mstatus with
  | Halted | Crashed _ -> ()
  | Ready | Sleeping _ | Blocked_read _ | Blocked_decode ->
    t.mstatus <- Crashed reason

let read_global t name =
  Option.map (fun cell -> !cell) (Hashtbl.find_opt t.globals name)

let read_local t name =
  match t.stack with
  | [] -> None
  | frame :: _ ->
    Option.map (fun cell -> !cell) (Hashtbl.find_opt frame.cells name)

let heap_block t id = Hashtbl.find_opt t.heap id

let heap_size t = Hashtbl.length t.heap

(* ------------------------------------------------------------- values *)

let lookup_cell t frame name =
  match Hashtbl.find_opt frame.cells name with
  | Some cell -> cell
  | None -> (
    match Hashtbl.find_opt t.globals name with
    | Some cell -> cell
    | None -> runtime "unbound variable %s" name)

let block_cells t id =
  match Hashtbl.find_opt t.heap id with
  | Some block -> block.cells
  | None -> runtime "dangling heap reference #%d" id

let heap_load t base index =
  match base with
  | Value.Varr id ->
    let cells = block_cells t id in
    if index < 0 || index >= Array.length cells then
      runtime "index %d out of bounds for block #%d of length %d" index id
        (Array.length cells);
    cells.(index)
  | Value.Vptr (id, off) ->
    let cells = block_cells t id in
    let i = off + index in
    if i < 0 || i >= Array.length cells then
      runtime "pointer access #%d+%d out of bounds (length %d)" id i
        (Array.length cells);
    cells.(i)
  | Value.Vnull -> runtime "null dereference"
  | v -> runtime "cannot index a %s" (Value.type_name v)

let heap_store t base index v =
  match base with
  | Value.Varr id ->
    let cells = block_cells t id in
    if index < 0 || index >= Array.length cells then
      runtime "index %d out of bounds for block #%d of length %d" index id
        (Array.length cells);
    cells.(index) <- v
  | Value.Vptr (id, off) ->
    let cells = block_cells t id in
    let i = off + index in
    if i < 0 || i >= Array.length cells then
      runtime "pointer store #%d+%d out of bounds (length %d)" id i
        (Array.length cells);
    cells.(i) <- v
  | Value.Vnull -> runtime "null dereference in store"
  | v -> runtime "cannot index a %s" (Value.type_name v)

let alloc_block t elem_ty n =
  if n < 0 then runtime "negative allocation size %d" n;
  let id = t.next_block in
  t.next_block <- id + 1;
  Hashtbl.replace t.heap id
    { Image.elem_ty; cells = Array.make n (Value.default_of_ty elem_ty) };
  Value.Varr id

(* Human-readable rendering used by print and str(): strings unquoted. *)
let display_value = function
  | Value.Vstr s -> s
  | v -> Value.to_string v

let as_int = function
  | Value.Vint i -> i
  | v -> runtime "expected an int, found %s" (Value.type_name v)

let as_bool = function
  | Value.Vbool b -> b
  | v -> runtime "expected a bool, found %s" (Value.type_name v)

let as_str = function
  | Value.Vstr s -> s
  | v -> runtime "expected a string, found %s" (Value.type_name v)

let rec eval t frame (e : Ast.expr) : Value.t =
  match e with
  | Int i -> Vint i
  | Float f -> Vfloat f
  | Bool b -> Vbool b
  | Str s -> Vstr s
  | Null -> Vnull
  | Var name -> !(lookup_cell t frame name)
  | Index (base, idx) ->
    let b = eval t frame base in
    let i = as_int (eval t frame idx) in
    heap_load t b i
  | Addr (name, idx) -> (
    let i = as_int (eval t frame idx) in
    match !(lookup_cell t frame name) with
    | Varr id -> Vptr (id, i)
    | Vptr (id, off) -> Vptr (id, off + i)
    | Vnull -> runtime "cannot take the address into null"
    | v -> runtime "cannot take an address into a %s" (Value.type_name v))
  | Unop (Neg, e) -> (
    match eval t frame e with
    | Vint i -> Vint (-i)
    | Vfloat f -> Vfloat (-.f)
    | v -> runtime "cannot negate a %s" (Value.type_name v))
  | Unop (Not, e) -> Vbool (not (as_bool (eval t frame e)))
  | Binop (op, a, b) -> eval_binop t frame op a b
  | Call (name, _) ->
    (* lowering removed all calls from expressions *)
    runtime "internal error: residual call to %s in expression" name
  | Builtin (name, args) -> eval_builtin t frame name args

and eval_binop t frame op a b =
  let va = eval t frame a in
  let vb = eval t frame b in
  let arith fi ff =
    match va, vb with
    | Value.Vint x, Value.Vint y -> Value.Vint (fi x y)
    | Value.Vfloat x, Value.Vfloat y -> Value.Vfloat (ff x y)
    | _ ->
      runtime "arithmetic on %s and %s" (Value.type_name va) (Value.type_name vb)
  in
  let compare_values () =
    match va, vb with
    | Value.Vint x, Value.Vint y -> compare x y
    | Value.Vfloat x, Value.Vfloat y -> Float.compare x y
    | Value.Vstr x, Value.Vstr y -> String.compare x y
    | _ ->
      runtime "cannot order %s and %s" (Value.type_name va) (Value.type_name vb)
  in
  match op with
  | Add -> (
    match va, vb with
    | Value.Vptr (id, off), Value.Vint n -> Value.Vptr (id, off + n)
    | _ -> arith ( + ) ( +. ))
  | Sub -> (
    match va, vb with
    | Value.Vptr (id, off), Value.Vint n -> Value.Vptr (id, off - n)
    | _ -> arith ( - ) ( -. ))
  | Mul -> arith ( * ) ( *. )
  | Div -> (
    match va, vb with
    | Value.Vint _, Value.Vint 0 -> runtime "division by zero"
    | _ -> arith ( / ) ( /. ))
  | Mod -> (
    match va, vb with
    | Value.Vint _, Value.Vint 0 -> runtime "modulo by zero"
    | Value.Vint x, Value.Vint y -> Value.Vint (x mod y)
    | _ -> runtime "'%%' expects ints")
  | Eq -> Vbool (Value.equal va vb)
  | Ne -> Vbool (not (Value.equal va vb))
  | Lt -> Vbool (compare_values () < 0)
  | Le -> Vbool (compare_values () <= 0)
  | Gt -> Vbool (compare_values () > 0)
  | Ge -> Vbool (compare_values () >= 0)
  | And -> Vbool (as_bool va && as_bool vb)
  | Or -> Vbool (as_bool va || as_bool vb)
  | Cat -> Vstr (as_str va ^ as_str vb)

and eval_builtin t frame name args =
  let arg i = List.nth args i in
  match name with
  | "mh_query" -> Vbool (t.io.io_query (as_str (eval t frame (arg 0))))
  | "mh_getstatus" -> Vstr t.status_attr
  | "len" -> (
    match eval t frame (arg 0) with
    | Varr id -> Vint (Array.length (block_cells t id))
    | v -> runtime "len of %s" (Value.type_name v))
  | "float" -> (
    match eval t frame (arg 0) with
    | Vint i -> Vfloat (float_of_int i)
    | v -> runtime "float() of %s" (Value.type_name v))
  | "int" -> (
    match eval t frame (arg 0) with
    | Vfloat f -> Vint (int_of_float f)
    | v -> runtime "int() of %s" (Value.type_name v))
  | "str" -> Vstr (display_value (eval t frame (arg 0)))
  | "alloc_int" -> alloc_block t Tint (as_int (eval t frame (arg 0)))
  | "alloc_float" -> alloc_block t Tfloat (as_int (eval t frame (arg 0)))
  | "alloc_bool" -> alloc_block t Tbool (as_int (eval t frame (arg 0)))
  | "alloc_str" -> alloc_block t Tstr (as_int (eval t frame (arg 0)))
  | "now" -> Vfloat (t.io.io_now ())
  | _ -> runtime "unknown builtin %s" name

(* ------------------------------------------------------------- frames *)

let find_code t name =
  match Hashtbl.find_opt t.code_table name with
  | Some code -> code
  | None -> runtime "call to unknown procedure %s" name

let make_frame t caller (code : Ir.proc_code) args ret_slot =
  let cells = Hashtbl.create 16 in
  if List.length args <> List.length code.pc_params then
    runtime "%s expects %d arguments, got %d" code.pc_name
      (List.length code.pc_params) (List.length args);
  List.iter2
    (fun (param : Ast.param) arg_expr ->
      if param.pref then begin
        match arg_expr, caller with
        | Ast.Var name, Some caller_frame ->
          (* share the caller's cell: writes propagate back *)
          Hashtbl.replace cells param.pname (lookup_cell t caller_frame name)
        | Ast.Var name, None ->
          Hashtbl.replace cells param.pname (lookup_cell t { code; cells; pc = 0; ret_slot = None } name)
        | _ -> runtime "%s: ref argument must be a variable" code.pc_name
      end
      else begin
        let v =
          match caller with
          | Some caller_frame -> eval t caller_frame arg_expr
          | None -> eval t { code; cells; pc = 0; ret_slot = None } arg_expr
        in
        Hashtbl.replace cells param.pname (ref v)
      end)
    code.pc_params args;
  List.iter
    (fun (name, ty) ->
      if not (Hashtbl.mem cells name) then
        Hashtbl.replace cells name (ref (Value.default_of_ty ty)))
    code.pc_locals;
  List.iter
    (fun name -> Hashtbl.replace cells name (ref (Value.Vint 0)))
    code.pc_temps;
  { code; cells; pc = 0; ret_slot }

let push_call t ~callee ~args ~ret_temp =
  (match t.stack with
  | [] -> runtime "call with no active frame"
  | frame :: _ ->
    if List.length t.stack >= max_stack_depth then
      runtime "stack overflow calling %s" callee;
    let code = find_code t callee in
    let ret_slot =
      match ret_temp with
      | None -> None
      | Some temp -> Some (lookup_cell t frame temp)
    in
    (* resume after the call instruction *)
    frame.pc <- frame.pc + 1;
    let new_frame = make_frame t (Some frame) code args ret_slot in
    t.stack <- new_frame :: t.stack)

let do_return t value =
  match t.stack with
  | [] -> runtime "return with no active frame"
  | frame :: rest -> (
    (match frame.ret_slot, value with
    | Some slot, Some v -> slot := v
    | Some _, None ->
      runtime "procedure %s fell through without returning a value"
        frame.code.pc_name
    | None, _ -> ());
    t.stack <- rest;
    match rest with [] -> t.mstatus <- Halted | _ -> ())

(* ----------------------------------------------------- state capture *)

let capture t frame args =
  match args with
  | Ast.Aexpr loc_expr :: rest ->
    let location = as_int (eval t frame loc_expr) in
    let values =
      List.map
        (function
          | Ast.Aexpr e -> eval t frame e
          | Ast.Alv _ -> runtime "mh_capture takes expressions")
        rest
    in
    t.capture_records <- { Image.location; values } :: t.capture_records
  | _ -> runtime "mh_capture: missing location"

let build_image t =
  let records = List.rev t.capture_records in
  let roots = List.concat_map (fun (r : Image.record) -> r.values) records in
  let heap =
    Image.gather_blocks ~lookup:(fun id -> Hashtbl.find_opt t.heap id) roots
  in
  Image.make ~source_module:t.prog.module_name ~records ~heap

(* Materialise an incoming image's heap into this machine, remapping
   symbolic block ids to fresh local ids (sharing preserved). *)
let feed_image t (image : Image.t) =
  let mapping = Hashtbl.create 16 in
  List.iter
    (fun (old_id, (block : Image.heap_block)) ->
      let id = t.next_block in
      t.next_block <- id + 1;
      Hashtbl.replace mapping old_id id;
      Hashtbl.replace t.heap id
        { Image.elem_ty = block.elem_ty; cells = Array.copy block.cells })
    image.heap;
  let remap_value v =
    match v with
    | Value.Varr id -> (
      match Hashtbl.find_opt mapping id with
      | Some id' -> Value.Varr id'
      | None -> Value.Vnull)
    | Value.Vptr (id, off) -> (
      match Hashtbl.find_opt mapping id with
      | Some id' -> Value.Vptr (id', off)
      | None -> Value.Vnull)
    | v -> v
  in
  List.iter
    (fun (_, new_id) ->
      match Hashtbl.find_opt t.heap new_id with
      | Some block ->
        Array.iteri (fun i v -> block.cells.(i) <- remap_value v) block.cells
      | None -> ())
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) mapping []);
  let records =
    List.map
      (fun (r : Image.record) ->
        { r with Image.values = List.map remap_value r.values })
      image.records
  in
  t.restore_records <- t.restore_records @ records;
  set_ready t

let restore t frame args =
  match args with
  | Ast.Alv loc_lv :: targets -> (
    match List.rev t.restore_records with
    | [] -> runtime "mh_restore: restore buffer is empty"
    | record :: rev_rest ->
      t.restore_records <- List.rev rev_rest;
      if List.length targets <> List.length record.values then
        runtime "mh_restore: record has %d values but %d targets given"
          (List.length record.values) (List.length targets);
      let assign lv v =
        match lv with
        | Ast.Alv (Ast.Lvar name) -> lookup_cell t frame name := v
        | Ast.Alv (Ast.Lindex (name, idx)) ->
          let base = !(lookup_cell t frame name) in
          heap_store t base (as_int (eval t frame idx)) v
        | Ast.Aexpr _ -> runtime "mh_restore takes lvalues"
      in
      assign (Ast.Alv loc_lv) (Value.Vint record.location);
      List.iter2 assign targets record.values)
  | _ -> runtime "mh_restore: missing location target"

(* --------------------------------------------------------- builtins *)

let exec_stmt_builtin t frame name args =
  let advance () = frame.pc <- frame.pc + 1 in
  match name with
  | "mh_init" -> advance ()
  | "mh_read" -> (
    match args with
    | [ Ast.Aexpr iface_e; Alv target ] -> (
      let iface = as_str (eval t frame iface_e) in
      match t.io.io_read iface with
      | Some v ->
        (match target with
        | Ast.Lvar name -> lookup_cell t frame name := v
        | Ast.Lindex (name, idx) ->
          let base = !(lookup_cell t frame name) in
          heap_store t base (as_int (eval t frame idx)) v);
        advance ()
      | None ->
        (* stay on this instruction; the bus re-runs it on wake-up *)
        t.mstatus <- Blocked_read iface)
    | _ -> runtime "mh_read: bad arguments")
  | "mh_write" -> (
    match args with
    | [ Ast.Aexpr iface_e; Aexpr value_e ] ->
      let iface = as_str (eval t frame iface_e) in
      let v = eval t frame value_e in
      t.io.io_write iface v;
      advance ()
    | _ -> runtime "mh_write: bad arguments")
  | "mh_capture" ->
    capture t frame args;
    advance ()
  | "mh_restore" ->
    restore t frame args;
    advance ()
  | "mh_encode" ->
    let image = build_image t in
    t.divulged_image <- Some image;
    t.capture_records <- [];
    t.io.io_encode image;
    advance ()
  | "mh_decode" -> (
    match t.io.io_decode () with
    | Some image ->
      feed_image t image;
      advance ()
    | None ->
      if t.restore_records <> [] then advance ()
      else t.mstatus <- Blocked_decode)
  | "signal" -> (
    match args with
    | [ Ast.Aexpr (Str handler) ] ->
      t.handler <- Some handler;
      advance ()
    | _ -> runtime "signal: expected a handler name literal")
  | _ -> runtime "unknown builtin statement %s" name

(* -------------------------------------------------------------- step *)

let exec_instr t frame (instr : Ir.instr) =
  let advance () = frame.pc <- frame.pc + 1 in
  match instr with
  | Iskip -> advance ()
  | Iassign (Lvar name, e) ->
    lookup_cell t frame name := eval t frame e;
    advance ()
  | Iassign (Lindex (name, idx), e) ->
    let base = !(lookup_cell t frame name) in
    let i = as_int (eval t frame idx) in
    heap_store t base i (eval t frame e);
    advance ()
  | Icall { callee; args; ret_temp } -> push_call t ~callee ~args ~ret_temp
  | Ireturn e ->
    let v = Option.map (eval t frame) e in
    do_return t v
  | Ijump target -> frame.pc <- target
  | Icjump { cond; if_false } ->
    if as_bool (eval t frame cond) then advance () else frame.pc <- if_false
  | Iprint es ->
    let rendered = List.map (fun e -> display_value (eval t frame e)) es in
    t.io.io_print (String.concat "" rendered);
    advance ()
  | Isleep e -> (
    let v = eval t frame e in
    let duration =
      match v with
      | Vint i -> float_of_int i
      | Vfloat f -> f
      | v -> runtime "sleep of %s" (Value.type_name v)
    in
    (* advance first: on wake-up, execution resumes after the sleep *)
    advance ();
    t.mstatus <- Sleeping (Float.max 0.0 duration))
  | Ibuiltin (name, args) -> exec_stmt_builtin t frame name args

let run_pending_signal t =
  if t.pending_signal then begin
    t.pending_signal <- false;
    match t.handler with
    | None -> ()  (* no handler installed: signal ignored *)
    | Some handler_name ->
      let code = find_code t handler_name in
      (* The handler runs as an interrupt: its frame is pushed without
         advancing the interrupted frame's pc. *)
      let frame = make_frame t None code [] None in
      t.stack <- frame :: t.stack
  end

let step t =
  match t.mstatus with
  | Halted | Crashed _ | Sleeping _ | Blocked_read _ | Blocked_decode -> ()
  | Ready -> (
    run_pending_signal t;
    match t.stack with
    | [] -> t.mstatus <- Halted
    | frame -> (
      let frame = List.hd frame in
      if frame.pc < 0 || frame.pc >= Array.length frame.code.pc_instrs then
        t.mstatus <- Crashed (Printf.sprintf "pc out of range in %s" frame.code.pc_name)
      else begin
        t.instrs_executed <- t.instrs_executed + 1;
        (match t.tracer with
        | Some hook -> hook frame.code.pc_name frame.pc frame.code.pc_instrs.(frame.pc)
        | None -> ());
        try exec_instr t frame frame.code.pc_instrs.(frame.pc) with
        | Runtime_error message -> t.mstatus <- Crashed message
      end))

let run ?(max_steps = max_int) t =
  let steps = ref 0 in
  while t.mstatus = Ready && !steps < max_steps do
    step t;
    incr steps
  done

(* ---------------------------------------------------- baseline support *)

let stack_procs t = List.map (fun f -> f.code.pc_name) t.stack

let state_size t =
  let value_cost v = Image.value_size v in
  let cells_cost tbl =
    Hashtbl.fold (fun _ cell acc -> acc + value_cost !cell) tbl 0
  in
  let heap_cost =
    Hashtbl.fold
      (fun _ (block : Image.heap_block) acc ->
        acc + 16 + Array.fold_left (fun a v -> a + value_cost v) 0 block.cells)
      t.heap 0
  in
  cells_cost t.globals
  + List.fold_left (fun acc f -> acc + 8 + cells_cost f.cells) 0 t.stack
  + heap_cost

(* Deep copy preserving cell aliasing (by-reference parameters share
   cells across frames; the copy must too). *)
let clone t ~io =
  let cell_map : (Value.t ref * Value.t ref) list ref = ref [] in
  let copy_cell cell =
    match List.find_opt (fun (old_cell, _) -> old_cell == cell) !cell_map with
    | Some (_, fresh) -> fresh
    | None ->
      let fresh = ref !cell in
      cell_map := (cell, fresh) :: !cell_map;
      fresh
  in
  let copy_cells tbl =
    let fresh = Hashtbl.create (Hashtbl.length tbl) in
    Hashtbl.iter (fun name cell -> Hashtbl.replace fresh name (copy_cell cell)) tbl;
    fresh
  in
  let globals = copy_cells t.globals in
  let stack =
    List.map
      (fun f ->
        { code = f.code;
          cells = copy_cells f.cells;
          pc = f.pc;
          ret_slot = Option.map copy_cell f.ret_slot })
      t.stack
  in
  let heap = Hashtbl.create (Hashtbl.length t.heap) in
  Hashtbl.iter
    (fun id (block : Image.heap_block) ->
      Hashtbl.replace heap id
        { Image.elem_ty = block.elem_ty; cells = Array.copy block.cells })
    t.heap;
  { prog = t.prog;
    code_table = t.code_table;
    globals;
    stack;
    heap;
    next_block = t.next_block;
    mstatus = t.mstatus;
    pending_signal = t.pending_signal;
    handler = t.handler;
    capture_records = t.capture_records;
    restore_records = t.restore_records;
    divulged_image = t.divulged_image;
    status_attr = t.status_attr;
    io;
    instrs_executed = t.instrs_executed;
    tracer = None }

let replace_proc_code t (code : Ir.proc_code) =
  Hashtbl.replace t.code_table code.pc_name code

let create ?(status_attr = "normal") ~io ?code (prog : Ast.program) =
  (* Copy the (shallow) code table even when shared: replace_proc_code
     must stay local to one machine. The proc_code values are immutable
     and shared. *)
  let code_table =
    match code with
    | Some c -> Hashtbl.copy c
    | None -> Lower.lower_program prog
  in
  let globals = Hashtbl.create 16 in
  let t =
    { prog; code_table; globals; stack = []; heap = Hashtbl.create 16;
      next_block = 0; mstatus = Ready; pending_signal = false; handler = None;
      capture_records = []; restore_records = []; divulged_image = None;
      status_attr; io; instrs_executed = 0; tracer = None }
  in
  let scratch_code =
    { Ir.pc_name = "<globals>"; pc_params = []; pc_ret = None; pc_locals = [];
      pc_temps = []; pc_instrs = [||]; pc_labels = [] }
  in
  let scratch_frame =
    { code = scratch_code; cells = Hashtbl.create 1; pc = 0; ret_slot = None }
  in
  List.iter
    (fun (g : Ast.global) ->
      let v =
        match g.ginit with
        | Some init -> (
          try eval t scratch_frame init
          with Runtime_error _ -> Value.default_of_ty g.gty)
        | None -> Value.default_of_ty g.gty
      in
      Hashtbl.replace globals g.gname (ref v))
    prog.globals;
  (match Hashtbl.find_opt code_table "main" with
  | Some code when code.pc_params = [] ->
    t.stack <- [ make_frame t None code [] None ]
  | Some _ -> t.mstatus <- Crashed "main must take no parameters"
  | None -> t.mstatus <- Crashed "program has no main procedure");
  t
