(* Resolution pass: [Ir.proc_code] -> slot-indexed executable form.

   Lowering leaves instructions holding raw [Ast.expr] trees, so the
   machine resolves every variable through a per-frame string hashtable
   on each access. This pass does all name resolution once, at compile
   time:

   - params, locals and temps of a procedure collapse into one flat
     slot array (param wins over a same-named local, first declaration
     wins — mirroring the hashtable population order of the unresolved
     engine), so a frame becomes a [Value.t ref array];
   - globals resolve to indices into a per-program global slot table;
   - call and jump targets become integer indices;
   - every call-free expression becomes a closed [rexpr] tree over
     slots — zero string hashing in the interpreter loop.

   Names that do not resolve are NOT an error here: they become
   [Sunbound]/[Runbound] nodes that raise the engine's usual
   "unbound variable" error only if execution actually reaches them,
   exactly like the lazy hashtable lookup they replace.

   Each resolved instruction keeps its index in the source
   [Ir.proc_code] (the arrays are index-aligned), so tracers still see
   the original [Ir.instr] and golden traces are unaffected. *)

open Dr_lang
module Value = Dr_state.Value

type slot =
  | Sframe of int       (* index into the frame's slot array *)
  | Sglobal of int      (* index into the machine's global table *)
  | Sunbound of string  (* unresolvable: raises only when touched *)

type rexpr =
  | Rconst of Value.t
  | Rframe of int
  | Rglobal of int
  | Runbound of string
  | Rindex of rexpr * rexpr
  | Raddr of slot * rexpr
  | Rneg of rexpr
  | Rnot of rexpr
  | Rbinop of Ast.binop * rexpr * rexpr
  | Rresidual_call of string  (* lowering removed all calls; guard *)
  | Rbuiltin of string * rexpr list

type rlvalue = Rlvar of slot | Rlindex of slot * rexpr

(* Statement-builtin arguments keep the Aexpr/Alv split so the runtime
   argument-shape checks (mh_read, mh_capture, ...) behave as before. *)
type rarg = Raexpr of rexpr | Ralv of rlvalue

type rcall_arg = {
  ca_expr : rexpr;          (* evaluated in the caller for by-value *)
  ca_cell : slot option;    (* the bare variable's cell, for by-ref *)
}

type rinstr =
  | Rassign of rlvalue * rexpr
  | Rcall of {
      target : int;  (* pre-resolved proc index; -1 = look up by name *)
      callee : string;
      args : rcall_arg array;
      ret_slot : slot option;
    }
  | Rreturn of rexpr option
  | Rjump of int
  | Rcjump of { cond : rexpr; if_false : int }
  | Rprint of rexpr list
  | Rsleep of rexpr
  | Rbuiltin_stmt of string * rarg list
  | Rskip
  | Rpoint_gate of rinstr
      (* the conditional jump opening an instrumented reconfiguration
         point's capture block (the transform labels it "_Pj"): executes
         exactly like the wrapped instruction, but the machine can park a
         one-shot observation hook here (live pre-copy capture) that
         fires when control reaches the point *)

(* Superinstructions: maximal straight-line runs pre-joined at resolve
   time so the dispatch loop pays one bounds-check + match for a whole
   run — up to [max_fused_run] instructions, typically an entire loop
   body (compare+branch, the load/store assigns, and the back jump or
   call). Run members are pre-destructured assigns/skips ([fmember]),
   which always fall through, so the machine executes them with a
   three-way match and a deferred pc update instead of the full
   instruction dispatch; a single control transfer (jump, conditional
   jump, call) may close the run as its [tail]. Blocking, returning,
   builtin and gated instructions never join one. The fused table is
   advisory and index-aligned with [rp_instrs]: jump targets landing
   mid-run execute from their own (shorter) entry, and tracers ignore
   the table entirely, so observable behaviour (counts, traces, crash
   points) is bit-identical. *)
type fmember =
  | Mskip
  | Massign of slot * rexpr  (* Rassign (Rlvar _, _) destructured *)
  | Massign_index of slot * rexpr * rexpr  (* slot.[idx] <- e *)

type fused =
  | Frun of { body : fmember array; tail : rinstr option }
      (* 1..max_fused_run-1 members, optionally closed by a transfer *)
  | Fcjump_run of {
      cond : rexpr;
      if_false : int;
      body : fmember array;
      tail : rinstr option;
    }
      (* compare+branch heading a run: false -> branch (1 instr), true
         -> fall through the members into the optional tail *)

let max_fused_run = 8

let tail_length = function
  | Some _ -> 1
  | None -> 0

let fused_length = function
  | Frun { body; tail } -> Array.length body + tail_length tail
  | Fcjump_run { body; tail; _ } -> 1 + Array.length body + tail_length tail

type rproc = {
  rp_source : Ir.proc_code;  (* index-aligned with rp_instrs *)
  rp_params : (int * Ast.param) array;  (* slot index per formal *)
  rp_defaults : Value.t array;  (* initial value per slot (immutable) *)
  rp_slot_index : (string, int) Hashtbl.t;  (* introspection only *)
  rp_instrs : rinstr array;
  rp_fused : fused option array;  (* index-aligned with rp_instrs *)
}

type program = {
  rg_source : Ast.program;
  rg_code : (string, Ir.proc_code) Hashtbl.t;  (* the lowered table *)
  rg_procs : rproc array;
  rg_proc_index : (string, int) Hashtbl.t;
  rg_globals : (string * Ast.ty) array;
  rg_global_index : (string, int) Hashtbl.t;
  rg_global_inits : rexpr option array;
}

type env = {
  frame_index : (string, int) Hashtbl.t;
  global_index : (string, int) Hashtbl.t;
  (* Globals at index >= cutoff are unbound: initialiser k only sees
     globals declared before it, like the incrementally-populated
     global table of the unresolved engine. *)
  global_cutoff : int;
  proc_index : (string, int) Hashtbl.t;
}

let slot_of env name =
  match Hashtbl.find_opt env.frame_index name with
  | Some i -> Sframe i
  | None -> (
    match Hashtbl.find_opt env.global_index name with
    | Some i when i < env.global_cutoff -> Sglobal i
    | Some _ | None -> Sunbound name)

let rec resolve_expr env (e : Ast.expr) : rexpr =
  match e with
  | Int i -> Rconst (Vint i)
  | Float f -> Rconst (Vfloat f)
  | Bool b -> Rconst (Vbool b)
  | Str s -> Rconst (Vstr s)
  | Null -> Rconst Vnull
  | Var name -> (
    match slot_of env name with
    | Sframe i -> Rframe i
    | Sglobal i -> Rglobal i
    | Sunbound name -> Runbound name)
  | Index (base, idx) -> Rindex (resolve_expr env base, resolve_expr env idx)
  | Addr (name, idx) -> Raddr (slot_of env name, resolve_expr env idx)
  | Unop (Neg, e) -> Rneg (resolve_expr env e)
  | Unop (Not, e) -> Rnot (resolve_expr env e)
  | Binop (op, a, b) -> Rbinop (op, resolve_expr env a, resolve_expr env b)
  | Call (name, _) -> Rresidual_call name
  | Builtin (name, args) -> Rbuiltin (name, List.map (resolve_expr env) args)

let resolve_lvalue env (lv : Ast.lvalue) : rlvalue =
  match lv with
  | Lvar name -> Rlvar (slot_of env name)
  | Lindex (name, idx) -> Rlindex (slot_of env name, resolve_expr env idx)

let resolve_arg env (a : Ast.arg) : rarg =
  match a with
  | Aexpr e -> Raexpr (resolve_expr env e)
  | Alv lv -> Ralv (resolve_lvalue env lv)

let resolve_call_arg env (e : Ast.expr) : rcall_arg =
  { ca_expr = resolve_expr env e;
    ca_cell = (match e with Ast.Var name -> Some (slot_of env name) | _ -> None)
  }

let resolve_instr env (instr : Ir.instr) : rinstr =
  match instr with
  | Iassign (lv, e) -> Rassign (resolve_lvalue env lv, resolve_expr env e)
  | Icall { callee; args; ret_temp } ->
    let target =
      match Hashtbl.find_opt env.proc_index callee with
      | Some i -> i
      | None -> -1
    in
    Rcall
      { target;
        callee;
        args = Array.of_list (List.map (resolve_call_arg env) args);
        ret_slot = Option.map (fun temp -> slot_of env temp) ret_temp }
  | Ireturn e -> Rreturn (Option.map (resolve_expr env) e)
  | Ijump target -> Rjump target
  | Icjump { cond; if_false } ->
    Rcjump { cond = resolve_expr env cond; if_false }
  | Iprint es -> Rprint (List.map (resolve_expr env) es)
  | Isleep e -> Rsleep (resolve_expr env e)
  | Ibuiltin (name, args) ->
    Rbuiltin_stmt (name, List.map (resolve_arg env) args)
  | Iskip -> Rskip

(* "_P<j>" labels mark the transform's point-capture gates (see
   {!Dr_transform.Instrument}); lowering records a statement's label at
   the pc of its first emitted instruction, which for the gate's [If] is
   its conditional jump. *)
let is_point_label label =
  String.length label >= 2 && label.[0] = '_' && label.[1] = 'P'

let fuse_pairs (instrs : rinstr array) : fused option array =
  let n = Array.length instrs in
  (* middle members must fall through unconditionally; they are
     destructured here so the dispatch loop never re-matches them *)
  let member = function
    | Rskip -> Some Mskip
    | Rassign (Rlvar slot, e) -> Some (Massign (slot, e))
    | Rassign (Rlindex (slot, idx), e) -> Some (Massign_index (slot, idx, e))
    | _ -> None
  in
  (* a control transfer may only close a run: after it, the current
     frame (or pc) is no longer the one the run was fused against *)
  let is_tail = function
    | Rjump _ | Rcjump _ | Rcall _ -> true
    | _ -> false
  in
  (* collect up to [limit] instructions of straight line starting at
     [pc]: simple members, one optional closing control transfer
     (counted against the same limit) *)
  let run_from pc limit =
    let rec go acc pc len =
      if len >= limit || pc >= n then (List.rev acc, None)
      else
        match member instrs.(pc) with
        | Some m -> go (m :: acc) (pc + 1) (len + 1)
        | None ->
          if is_tail instrs.(pc) then (List.rev acc, Some instrs.(pc))
          else (List.rev acc, None)
    in
    go [] pc 0
  in
  Array.init n (fun pc ->
      match member instrs.(pc) with
      | Some lead -> (
        match run_from (pc + 1) (max_fused_run - 1) with
        | [], None -> None  (* nothing joined: stay unfused *)
        | body, tail -> Some (Frun { body = Array.of_list (lead :: body); tail }))
      | None -> (
        match instrs.(pc) with
        | Rcjump { cond; if_false } -> (
          match run_from (pc + 1) (max_fused_run - 1) with
          | [], None -> None
          | body, tail ->
            Some (Fcjump_run { cond; if_false; body = Array.of_list body; tail }))
        | _ -> None))

let resolve_proc ~global_index ~proc_index (code : Ir.proc_code) : rproc =
  let frame_index = Hashtbl.create 16 in
  let defaults_rev = ref [] in
  let nslots = ref 0 in
  let add name default =
    if not (Hashtbl.mem frame_index name) then begin
      Hashtbl.add frame_index name !nslots;
      defaults_rev := default :: !defaults_rev;
      incr nslots
    end
  in
  let params =
    List.map
      (fun (p : Ast.param) ->
        add p.pname (Value.default_of_ty p.pty);
        (Hashtbl.find frame_index p.pname, p))
      code.pc_params
  in
  List.iter
    (fun (name, ty) -> add name (Value.default_of_ty ty))
    code.pc_locals;
  List.iter (fun name -> add name (Value.Vint 0)) code.pc_temps;
  let env =
    { frame_index; global_index; global_cutoff = max_int; proc_index }
  in
  let rp_instrs = Array.map (resolve_instr env) code.pc_instrs in
  List.iter
    (fun (label, pc) ->
      if is_point_label label && pc >= 0 && pc < Array.length rp_instrs then
        rp_instrs.(pc) <- Rpoint_gate rp_instrs.(pc))
    code.pc_labels;
  { rp_source = code;
    rp_params = Array.of_list params;
    rp_defaults = Array.of_list (List.rev !defaults_rev);
    rp_slot_index = frame_index;
    rp_instrs;
    rp_fused = fuse_pairs rp_instrs }

let no_frame : (string, int) Hashtbl.t = Hashtbl.create 1
let no_procs : (string, int) Hashtbl.t = Hashtbl.create 1

let resolve_program (prog : Ast.program) (code : (string, Ir.proc_code) Hashtbl.t)
    : program =
  let rg_globals =
    Array.of_list (List.map (fun (g : Ast.global) -> (g.gname, g.gty)) prog.globals)
  in
  let rg_global_index = Hashtbl.create 16 in
  Array.iteri (fun i (name, _) -> Hashtbl.replace rg_global_index name i) rg_globals;
  let codes =
    List.filter_map
      (fun (p : Ast.proc) -> Hashtbl.find_opt code p.proc_name)
      prog.procs
  in
  let rg_proc_index = Hashtbl.create 16 in
  List.iteri
    (fun i (c : Ir.proc_code) -> Hashtbl.replace rg_proc_index c.pc_name i)
    codes;
  let rg_procs =
    Array.of_list
      (List.map
         (resolve_proc ~global_index:rg_global_index ~proc_index:rg_proc_index)
         codes)
  in
  let rg_global_inits =
    Array.of_list
      (List.mapi
         (fun i (g : Ast.global) ->
           Option.map
             (resolve_expr
                { frame_index = no_frame;
                  global_index = rg_global_index;
                  global_cutoff = i;
                  proc_index = no_procs })
             g.ginit)
         prog.globals)
  in
  { rg_source = prog;
    rg_code = code;
    rg_procs;
    rg_proc_index;
    rg_globals;
    rg_global_index;
    rg_global_inits }

(* Empty procedure used for the scratch frame that evaluates global
   initialisers before main's frame exists. *)
let scratch_proc : rproc =
  { rp_source =
      { Ir.pc_name = "<globals>"; pc_params = []; pc_ret = None;
        pc_locals = []; pc_temps = []; pc_instrs = [||]; pc_labels = [] };
    rp_params = [||];
    rp_defaults = [||];
    rp_slot_index = Hashtbl.create 1;
    rp_instrs = [||];
    rp_fused = [||] }
