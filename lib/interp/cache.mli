(** Content-keyed cache of compiled MiniProc programs.

    Keyed on a digest of the pretty-printed program, so re-registering
    the same module text — clone spawn, [Script.replace] retries,
    supervisor restarts, the N=1000 scaling workload — reuses one
    lowered + resolved artifact instead of compiling per instance.
    Purely a memoisation: a miss compiles exactly what an uncached call
    would. *)

type artifact = {
  a_program : Dr_lang.Ast.program;  (** the program the artifact was built from *)
  a_code : (string, Ir.proc_code) Hashtbl.t;  (** lowered table *)
  a_resolved : Resolve.program;  (** slot-resolved form for {!Machine.create} *)
}

val prepare : Dr_lang.Ast.program -> artifact
(** Lower + resolve [program], or return the cached artifact for a
    structurally identical program. *)

val hits : unit -> int
val misses : unit -> int
val entries : unit -> int

val reset : unit -> unit
(** Drop all entries and zero the counters (test isolation). *)
