(** End-to-end platform API: load a configuration and module sources,
    automatically prepare modules for reconfiguration, deploy, and run
    reconfiguration scripts.

    This is the workflow of the paper: the programmer writes ordinary
    modules plus reconfiguration-point labels, declares the points in
    the configuration specification, and the platform does the rest. *)

type loaded_module = {
  lm_name : string;
  lm_spec : Dr_mil.Spec.module_spec;
  lm_original : Dr_lang.Ast.program;
  lm_prepared : Dr_transform.Instrument.prepared option;
      (** [Some] iff the specification declares reconfiguration points *)
}

type t = {
  config : Dr_mil.Spec.config;
  modules : loaded_module list;
}

val load :
  mil:string ->
  sources:(string * string) list ->
  ?options:Dr_transform.Instrument.options ->
  ?optimize:bool ->
  unit ->
  (t, string) result
(** Parse and validate the configuration, parse and typecheck each
    module source (keyed by module name), cross-check programs against
    their specifications, and run the transformation on every module
    with declared reconfiguration points. With [optimize] (default
    false), every module is constant-folded and loop-invariant-hoisted
    first; reconfiguration-point labels act as motion barriers, so the
    declared points survive unchanged. *)

val find_module : t -> string -> loaded_module option

val deployed_program : loaded_module -> Dr_lang.Ast.program
(** The program actually deployed: the instrumented one when prepared. *)

val instrumented_source : t -> string -> string option
(** Pretty-printed instrumented source of a module (Fig. 4). *)

val start :
  t ->
  app:string ->
  hosts:Dr_bus.Bus.host list ->
  ?params:Dr_bus.Bus.params ->
  ?shards:int ->
  ?default_host:string ->
  unit ->
  (Dr_bus.Bus.t, string) result
(** Create a bus over [hosts], register every module's deployed program,
    and deploy the named application. [default_host] defaults to the
    first host; [shards] is the broker-domain count
    ({!Dr_bus.Bus.create}, default 1). *)

(** {1 Synchronous reconfiguration wrappers} *)

val migrate :
  ?precopy:bool ->
  ?deadline:float ->
  ?retry:Dr_reconfig.Script.retry ->
  Dr_bus.Bus.t ->
  instance:string ->
  new_instance:string ->
  new_host:string ->
  (string, string) result
(** [deadline] and [retry] behave as in {!replace} (a migration is a
    replace onto [new_host]); without them the classic fail-fast watch
    on [instance] applies. *)

val replace :
  Dr_bus.Bus.t ->
  ?precopy:bool ->
  instance:string ->
  new_instance:string ->
  ?new_module:string ->
  ?new_host:string ->
  ?deadline:float ->
  ?retry:Dr_reconfig.Script.retry ->
  unit ->
  (string, string) result
(** [deadline] and [retry] are forwarded to
    {!Dr_reconfig.Script.replace}: a bounded signal→divulge window with
    transactional rollback, and re-attempts with virtual-time backoff.
    When a deadline or retry policy is given the run is no longer
    fail-fast on a crashed target — the script's own deadline governs.
    [precopy] (default [false]) snapshots the running state at the
    target's next reconfiguration point before the freeze signal, so
    the frozen capture ships only dirtied slots
    ({!Dr_reconfig.Script.replace}). *)

val replicate :
  Dr_bus.Bus.t ->
  instance:string ->
  replica_instance:string ->
  ?replica_host:string ->
  unit ->
  (string, string) result
