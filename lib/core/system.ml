module Spec = Dr_mil.Spec
module Ast = Dr_lang.Ast
module Instrument = Dr_transform.Instrument
module Bus = Dr_bus.Bus

type loaded_module = {
  lm_name : string;
  lm_spec : Spec.module_spec;
  lm_original : Ast.program;
  lm_prepared : Instrument.prepared option;
}

type t = {
  config : Spec.config;
  modules : loaded_module list;
}

let ( let* ) = Result.bind

let proc_containing_label (program : Ast.program) label =
  List.find_opt
    (fun (p : Ast.proc) -> List.mem label (Ast.labels_in_block p.body))
    program.procs

let point_specs (spec : Spec.module_spec) program =
  List.fold_left
    (fun acc (point : Spec.point_decl) ->
      let* acc = acc in
      match proc_containing_label program point.rp_label with
      | None ->
        Error
          (Printf.sprintf "module %s: no label %s for reconfiguration point"
             spec.ms_name point.rp_label)
      | Some proc ->
        Ok
          ({ Instrument.pt_proc = proc.proc_name;
             pt_label = point.rp_label;
             pt_vars = point.rp_state }
          :: acc))
    (Ok []) spec.points
  |> Result.map List.rev

let load_module ~optimize options (spec : Spec.module_spec) source =
  let* program =
    try Ok (Dr_lang.Parser.parse_program source) with
    | Dr_lang.Parser.Error (message, line) ->
      Error (Printf.sprintf "%s: parse error at line %d: %s" spec.ms_name line message)
    | Dr_lang.Lexer.Error (message, line) ->
      Error
        (Printf.sprintf "%s: lexical error at line %d: %s" spec.ms_name line message)
  in
  let* () =
    if String.equal program.module_name spec.ms_name then Ok ()
    else
      Error
        (Printf.sprintf "source declares module %s but the specification is %s"
           program.module_name spec.ms_name)
  in
  let* () =
    match Dr_lang.Typecheck.check program with
    | Ok () -> Ok ()
    | Error errors ->
      Error
        (Fmt.str "%s: %a" spec.ms_name
           (Fmt.list ~sep:(Fmt.any "; ") Dr_lang.Typecheck.pp_error)
           errors)
  in
  let* () =
    match Dr_mil.Validate.check_program_against_spec spec program with
    | Ok () -> Ok ()
    | Error errors -> Error (String.concat "; " errors)
  in
  let program =
    if optimize then fst (Dr_opt.Optimize.optimize program) else program
  in
  let* lm_prepared =
    if spec.points = [] then Ok None
    else
      let* points = point_specs spec program in
      let* prepared = Instrument.prepare ?options program ~points in
      Ok (Some prepared)
  in
  Ok { lm_name = spec.ms_name; lm_spec = spec; lm_original = program; lm_prepared }

let load ~mil ~sources ?options ?(optimize = false) () =
  let* config =
    try Ok (Dr_mil.Mil_parser.parse_config mil) with
    | Dr_mil.Mil_parser.Error (message, line) ->
      Error (Printf.sprintf "configuration: parse error at line %d: %s" line message)
    | Dr_lang.Lexer.Error (message, line) ->
      Error
        (Printf.sprintf "configuration: lexical error at line %d: %s" line message)
  in
  let* () =
    match Dr_mil.Validate.validate config with
    | Ok () -> Ok ()
    | Error errors -> Error (String.concat "; " errors)
  in
  let* modules =
    List.fold_left
      (fun acc (spec : Spec.module_spec) ->
        let* acc = acc in
        match List.assoc_opt spec.ms_name sources with
        | None ->
          Error (Printf.sprintf "no source provided for module %s" spec.ms_name)
        | Some source ->
          let* m = load_module ~optimize options spec source in
          Ok (m :: acc))
      (Ok []) config.modules
  in
  Ok { config; modules = List.rev modules }

let find_module t name =
  List.find_opt (fun m -> String.equal m.lm_name name) t.modules

let deployed_program m =
  match m.lm_prepared with
  | Some prepared -> prepared.prepared_program
  | None -> m.lm_original

let instrumented_source t name =
  Option.map
    (fun m -> Dr_lang.Pretty.program_to_string (deployed_program m))
    (find_module t name)

let start t ~app ~hosts ?params ?shards ?default_host () =
  let* default_host =
    match default_host, hosts with
    | Some h, _ -> Ok h
    | None, first :: _ -> Ok first.Bus.host_name
    | None, [] -> Error "no hosts given"
  in
  let bus = Bus.create ?params ?shards ~hosts () in
  let* () =
    List.fold_left
      (fun acc m ->
        let* () = acc in
        Bus.register_program bus (deployed_program m))
      (Ok ()) t.modules
  in
  let* () = Dr_bus.Deploy.deploy bus ~config:t.config ~app ~default_host in
  Ok bus

let migrate ?precopy ?deadline ?retry bus ~instance ~new_instance ~new_host =
  match (deadline, retry) with
  | None, None ->
    Dr_reconfig.Script.run_sync bus ~watch:instance (fun ~on_done ->
        Dr_reconfig.Script.migrate bus ?precopy ~instance ~new_instance
          ~new_host ~on_done ())
  | _ ->
    (* a migration is a replace onto a new host; with a deadline or a
       retry policy the script handles the non-complying target itself,
       so no fail-fast watch (see [replace]) *)
    Dr_reconfig.Script.run_sync bus (fun ~on_done ->
        Dr_reconfig.Script.replace bus ?precopy ~instance ~new_instance
          ~new_host ?deadline ?retry ~on_done ())

let replace bus ?precopy ~instance ~new_instance ?new_module ?new_host
    ?deadline ?retry () =
  (* with a script-level deadline or retry policy, the script itself
     handles a non-complying (or crashed) target by rolling back /
     re-attempting — the fail-fast watch would cut it short *)
  let watch =
    match (deadline, retry) with
    | None, None -> Some instance
    | _ -> None
  in
  Dr_reconfig.Script.run_sync bus ?watch (fun ~on_done ->
      Dr_reconfig.Script.replace bus ?precopy ~instance ~new_instance
        ?new_module ?new_host ?deadline ?retry ~on_done ())

let replicate bus ~instance ~replica_instance ?replica_host () =
  Dr_reconfig.Script.run_sync bus ~watch:instance (fun ~on_done ->
      Dr_reconfig.Script.replicate bus ~instance ~replica_instance ?replica_host
        ~on_done ())
