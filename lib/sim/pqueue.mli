(** Minimum priority queue keyed by [(time, sequence)].

    The sequence number breaks ties deterministically: events scheduled
    earlier fire earlier when their times are equal. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element, or [None] when empty. The
    vacated slot is cleared, so popped payloads are not retained by the
    heap array. *)

val clear : 'a t -> unit
(** Discard every pending element (capacity is kept, contents are
    released). *)

val peek_time : 'a t -> float option
(** Time of the minimum element without removing it. *)
