type label = {
  lb_kind : string;
  lb_touch : string list;
  lb_info : string;
}

let tau = { lb_kind = "tau"; lb_touch = []; lb_info = "" }

let label ?(touch = []) ?(info = "") kind =
  { lb_kind = kind; lb_touch = touch; lb_info = info }

type mc_event = {
  ev_seq : int;
  ev_time : float;
  ev_label : label;
  ev_thunk : unit -> unit;
}

type pending_event = {
  pe_seq : int;
  pe_time : float;
  pe_label : label;
}

type t = {
  queue : (unit -> unit) Pqueue.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  mutable guard : exn -> bool;
  (* Model-checking mode: when [mc_on], newly scheduled events are parked
     in [mc_pool] (insertion order) instead of the time-ordered heap, and
     an external explorer decides which one fires next via [mc_fire]. *)
  mutable mc_on : bool;
  mutable mc_pool : mc_event list;  (* newest first *)
}

let create () =
  { queue = Pqueue.create ();
    clock = 0.0;
    next_seq = 0;
    fired = 0;
    guard = (fun _ -> false);
    mc_on = false;
    mc_pool = [] }

let set_guard t guard = t.guard <- guard

let now t = t.clock

let schedule_at ?(label = tau) t ~time f =
  let time = if time < t.clock then t.clock else time in
  if t.mc_on then begin
    t.mc_pool <-
      { ev_seq = t.next_seq; ev_time = time; ev_label = label; ev_thunk = f }
      :: t.mc_pool;
    t.next_seq <- t.next_seq + 1
  end
  else begin
    Pqueue.push t.queue ~time ~seq:t.next_seq f;
    t.next_seq <- t.next_seq + 1
  end

let schedule ?label t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at ?label t ~time:(t.clock +. delay) f

let pending t = Pqueue.length t.queue + List.length t.mc_pool

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (time, _seq, f) ->
    t.clock <- time;
    t.fired <- t.fired + 1;
    (try f () with e when t.guard e -> ());
    true

let run ?(until = infinity) ?(max_events = max_int) t =
  let rec loop remaining =
    if remaining > 0 then
      match Pqueue.peek_time t.queue with
      | Some time when time <= until -> if step t then loop (remaining - 1)
      | Some _ | None -> ()
  in
  loop max_events

let events_fired t = t.fired

(* ------------------------------------------------------------------ *)
(* Model-checking mode                                                 *)

let mc_enable t =
  if Pqueue.length t.queue > 0 then
    invalid_arg "Engine.mc_enable: heap not empty";
  t.mc_on <- true

let mc_enabled t = t.mc_on

let mc_pending t =
  List.rev_map
    (fun ev -> { pe_seq = ev.ev_seq; pe_time = ev.ev_time; pe_label = ev.ev_label })
    t.mc_pool

let mc_fire t ~seq =
  let rec split acc = function
    | [] -> None
    | ev :: rest when ev.ev_seq = seq -> Some (ev, List.rev_append acc rest)
    | ev :: rest -> split (ev :: acc) rest
  in
  match split [] t.mc_pool with
  | None -> false
  | Some (ev, rest) ->
    t.mc_pool <- rest;
    if ev.ev_time > t.clock then t.clock <- ev.ev_time;
    t.fired <- t.fired + 1;
    (try ev.ev_thunk () with e when t.guard e -> ());
    true
