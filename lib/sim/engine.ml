type t = {
  queue : (unit -> unit) Pqueue.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  mutable guard : exn -> bool;
}

let create () =
  { queue = Pqueue.create ();
    clock = 0.0;
    next_seq = 0;
    fired = 0;
    guard = (fun _ -> false) }

let set_guard t guard = t.guard <- guard

let now t = t.clock

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  Pqueue.push t.queue ~time ~seq:t.next_seq f;
  t.next_seq <- t.next_seq + 1

let schedule t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.clock +. delay) f

let pending t = Pqueue.length t.queue

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (time, _seq, f) ->
    t.clock <- time;
    t.fired <- t.fired + 1;
    (try f () with e when t.guard e -> ());
    true

let run ?(until = infinity) ?(max_events = max_int) t =
  let rec loop remaining =
    if remaining > 0 then
      match Pqueue.peek_time t.queue with
      | Some time when time <= until -> if step t then loop (remaining - 1)
      | Some _ | None -> ()
  in
  loop max_events

let events_fired t = t.fired
