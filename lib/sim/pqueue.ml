type 'a entry = { time : float; seq : int; payload : 'a }

(* slots at or beyond [size] hold [None]: a popped entry (and the
   closure it carries) must not stay reachable from the heap array, or
   every fired event would be retained until its slot happens to be
   overwritten — a space leak over long runs *)
type 'a t = { mutable heap : 'a entry option array; mutable size : int }

let create () = { heap = [||]; size = 0 }

let is_empty t = t.size = 0

let length t = t.size

let get t i =
  match t.heap.(i) with
  | Some e -> e
  | None -> invalid_arg "pqueue: vacant slot"

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less (get t l) (get t !smallest) then smallest := l;
  if r < t.size && less (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let capacity = Array.length t.heap in
  if t.size = capacity then begin
    let capacity' = max 16 (2 * capacity) in
    let heap' = Array.make capacity' None in
    Array.blit t.heap 0 heap' 0 t.size;
    t.heap <- heap'
  end

let push t ~time ~seq payload =
  grow t;
  t.heap.(t.size) <- Some { time; seq; payload };
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      t.heap.(t.size) <- None;
      sift_down t 0
    end
    else t.heap.(0) <- None;
    Some (top.time, top.seq, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some (get t 0).time

let clear t =
  Array.fill t.heap 0 (Array.length t.heap) None;
  t.size <- 0
