(** Discrete-event simulation engine.

    The engine owns a virtual clock and a queue of timestamped events, each a
    thunk run when the clock reaches its time. Everything is deterministic:
    same schedule calls, same execution order. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at time [now t +. delay]. Negative delays
    are clamped to zero. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant. Times in the past are clamped to [now]. *)

val pending : t -> int
(** Number of events not yet fired. *)

val step : t -> bool
(** Fire the single earliest event. Returns [false] when the queue is
    empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Fire events in order until the queue empties, the clock would pass
    [until], or [max_events] events have fired. *)

val events_fired : t -> int
(** Total number of events executed so far. *)

val set_guard : t -> (exn -> bool) -> unit
(** Install an exception guard. When an event thunk raises [e] and
    [guard e] is [true], the event is abandoned where it stood and the
    loop continues with the next event — used to model a component
    (e.g. the reconfiguration controller) dying mid-event without
    tearing down the whole simulation. A [false] return re-raises.
    Default: no exception is caught. *)
