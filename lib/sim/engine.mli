(** Discrete-event simulation engine.

    The engine owns a virtual clock and a queue of timestamped events, each a
    thunk run when the clock reaches its time. Everything is deterministic:
    same schedule calls, same execution order. *)

type t

(** {1 Event labels}

    A label classifies an event for the model checker: [lb_kind] names the
    transition family ("quantum", "deliver", "net", "timer", "wake",
    "ctl", ...), [lb_touch] lists the instances the event may read or
    write — the empty list means {e global} (conservatively dependent
    with every other event) — and [lb_info] carries a human-readable
    payload digest for counterexample printing. Labels are inert outside
    model-checking mode. *)
type label = {
  lb_kind : string;
  lb_touch : string list;
  lb_info : string;
}

val tau : label
(** The default label: global touch set, no info. Sound for any event. *)

val label : ?touch:string list -> ?info:string -> string -> label

val create : unit -> t

val now : t -> float
(** Current virtual time. *)

val schedule : ?label:label -> t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at time [now t +. delay]. Negative delays
    are clamped to zero. *)

val schedule_at : ?label:label -> t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant. Times in the past are clamped to [now]. *)

val pending : t -> int
(** Number of events not yet fired (heap plus model-checking pool). *)

val step : t -> bool
(** Fire the single earliest event. Returns [false] when the queue is
    empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Fire events in order until the queue empties, the clock would pass
    [until], or [max_events] events have fired. *)

val events_fired : t -> int
(** Total number of events executed so far. *)

val set_guard : t -> (exn -> bool) -> unit
(** Install an exception guard. When an event thunk raises [e] and
    [guard e] is [true], the event is abandoned where it stood and the
    loop continues with the next event — used to model a component
    (e.g. the reconfiguration controller) dying mid-event without
    tearing down the whole simulation. A [false] return re-raises.
    Default: no exception is caught. *)

(** {1 Model-checking mode}

    With MC mode on, scheduled events are parked in a pool instead of the
    time-ordered heap; [step]/[run] see an empty heap and an external
    explorer picks the firing order with [mc_fire]. Virtual time advances
    to [max clock ev_time] on each firing, so the clock stays monotone
    even when events fire out of timestamp order. Enable immediately
    after creating the bus, before any instance is deployed. *)

type pending_event = {
  pe_seq : int;    (** stable identity: replaying the same firing prefix
                       reproduces the same sequence numbers *)
  pe_time : float;
  pe_label : label;
}

val mc_enable : t -> unit
(** Divert scheduling into the MC pool. Raises [Invalid_argument] if the
    heap already holds events. *)

val mc_enabled : t -> bool

val mc_pending : t -> pending_event list
(** Schedulable transitions, in insertion order. *)

val mc_fire : t -> seq:int -> bool
(** Fire the pooled event with sequence number [seq]. Returns [false] if
    no such event is pending. *)
