open Dr_lang
module Rg = Dr_analysis.Reconfig_graph
module Liveness = Dr_analysis.Liveness

type point_spec = {
  pt_proc : string;
  pt_label : string;
  pt_vars : string list option;
}

type options = { use_liveness : bool; substitute_dummy_args : bool }

let default_options = { use_liveness = false; substitute_dummy_args = true }

type prepared = {
  prepared_program : Ast.program;
  graph : Rg.t;
  capture_sets : (string * string list) list;
}

let flag_reconfig = "mh_reconfig"
let flag_capturestack = "mh_capturestack"
let flag_restoring = "mh_restoring"
let flag_location = "mh_location"
let handler_proc_name = "mh_catchreconfig"

let flag_globals = [ flag_reconfig; flag_capturestack; flag_restoring; flag_location ]

let generated_label i = Printf.sprintf "_L%d" i
let point_label j = Printf.sprintf "_P%d" j

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Reserved-name hygiene: the input program may not already use the    *)
(* names the transform injects.                                        *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let check_reserved (program : Ast.program) =
  let reserved name =
    List.mem name flag_globals
    || String.equal name handler_proc_name
    || starts_with "_L" name
    || starts_with "_P" name
  in
  let bad = ref None in
  let note kind name = if !bad = None && reserved name then bad := Some (kind, name) in
  List.iter (fun (g : Ast.global) -> note "global" g.gname) program.globals;
  List.iter
    (fun (p : Ast.proc) ->
      note "procedure" p.proc_name;
      List.iter (fun (prm : Ast.param) -> note "parameter" prm.pname) p.params;
      Ast.iter_stmts
        (fun s ->
          Option.iter (note "label") s.label;
          match s.kind with
          | Decl (name, _, _) -> note "local" name
          | _ -> ())
        p.body)
    program.procs;
  match !bad with
  | None -> Ok ()
  | Some (kind, name) ->
    Error
      (Printf.sprintf
         "%s %s collides with a name reserved by the transformation" kind name)

(* ------------------------------------------------------------------ *)
(* α-renaming of shadowed globals.                                     *)
(*                                                                     *)
(* [main]'s capture list is params @ locals @ globals: a local of main *)
(* that shadows a module global appears twice in the list, and both    *)
(* occurrences resolve to the local slot — so the global's value is    *)
(* captured as a duplicate of the local and silently lost across a     *)
(* reconfiguration. Shadowing is frame-entry-wide in MiniProc (locals  *)
(* are function-scoped and the resolver prefers the frame slot for the *)
(* whole body), so every occurrence of the name in main's body denotes *)
(* the local: renaming the local throughout the body is semantics-     *)
(* preserving. Programs without shadowing pass through untouched.      *)

let rec rename_expr m (e : Ast.expr) : Ast.expr =
  let var n = Option.value ~default:n (Hashtbl.find_opt m n) in
  match e with
  | Int _ | Float _ | Bool _ | Str _ | Null -> e
  | Var n -> Var (var n)
  | Index (a, i) -> Index (rename_expr m a, rename_expr m i)
  | Addr (n, i) -> Addr (var n, rename_expr m i)
  | Unop (o, e) -> Unop (o, rename_expr m e)
  | Binop (o, a, b) -> Binop (o, rename_expr m a, rename_expr m b)
  | Call (f, args) -> Call (f, List.map (rename_expr m) args)
  | Builtin (f, args) -> Builtin (f, List.map (rename_expr m) args)

let rename_lvalue m (lv : Ast.lvalue) : Ast.lvalue =
  let var n = Option.value ~default:n (Hashtbl.find_opt m n) in
  match lv with
  | Lvar n -> Lvar (var n)
  | Lindex (n, i) -> Lindex (var n, rename_expr m i)

let rename_arg m (a : Ast.arg) : Ast.arg =
  match a with
  | Aexpr e -> Aexpr (rename_expr m e)
  | Alv lv -> Alv (rename_lvalue m lv)

let rec rename_stmt m (s : Ast.stmt) : Ast.stmt =
  let var n = Option.value ~default:n (Hashtbl.find_opt m n) in
  let kind : Ast.stmt_kind =
    match s.kind with
    | Decl (n, ty, init) -> Decl (var n, ty, Option.map (rename_expr m) init)
    | Assign (lv, e) -> Assign (rename_lvalue m lv, rename_expr m e)
    | If (c, t, e) ->
      If (rename_expr m c, List.map (rename_stmt m) t, List.map (rename_stmt m) e)
    | While (c, b) -> While (rename_expr m c, List.map (rename_stmt m) b)
    | CallS (f, args) -> CallS (f, List.map (rename_expr m) args)
    | Return e -> Return (Option.map (rename_expr m) e)
    | (Goto _ | Skip) as k -> k
    | Print es -> Print (List.map (rename_expr m) es)
    | Sleep e -> Sleep (rename_expr m e)
    | BuiltinS (f, args) -> BuiltinS (f, List.map (rename_arg m) args)
  in
  { s with kind }

let rename_shadowed_globals (program : Ast.program) =
  let declared = Hashtbl.create 64 in
  let note n = Hashtbl.replace declared n () in
  List.iter (fun (g : Ast.global) -> note g.gname) program.globals;
  List.iter
    (fun (p : Ast.proc) ->
      note p.proc_name;
      List.iter (fun (prm : Ast.param) -> note prm.pname) p.params;
      Ast.iter_stmts
        (fun s ->
          Option.iter note s.label;
          match s.kind with Decl (n, _, _) -> note n | _ -> ())
        p.body)
    program.procs;
  let fresh base =
    let rec go k =
      let candidate = Printf.sprintf "%s_l%d" base k in
      if Hashtbl.mem declared candidate then go (k + 1)
      else begin
        note candidate;
        candidate
      end
    in
    go 0
  in
  let rename_proc (p : Ast.proc) =
    let is_global n = Option.is_some (Ast.find_global program n) in
    let colliding =
      List.sort_uniq String.compare
        (List.filter_map
           (fun (prm : Ast.param) ->
             if is_global prm.pname then Some prm.pname else None)
           p.params
        @ List.filter is_global (List.map fst (Typecheck.locals_of_proc p)))
    in
    if colliding = [] then p
    else begin
      let m = Hashtbl.create 4 in
      List.iter (fun n -> Hashtbl.replace m n (fresh n)) colliding;
      { p with
        params =
          List.map
            (fun (prm : Ast.param) ->
              match Hashtbl.find_opt m prm.pname with
              | Some n -> { prm with pname = n }
              | None -> prm)
            p.params;
        body = List.map (rename_stmt m) p.body }
    end
  in
  { program with
    procs =
      List.map
        (fun (p : Ast.proc) ->
          if String.equal p.proc_name "main" then rename_proc p else p)
        program.procs }

(* ------------------------------------------------------------------ *)
(* Capture sets.                                                       *)

(* Parameters then locals, in declaration order; for main, also the
   module's (user) globals. *)
let base_capture_list (program : Ast.program) (proc : Ast.proc) =
  let params = List.map (fun (p : Ast.param) -> p.pname) proc.params in
  let locals = List.map fst (Typecheck.locals_of_proc proc) in
  let globals =
    if String.equal proc.proc_name "main" then
      List.map (fun (g : Ast.global) -> g.gname) program.globals
    else []
  in
  params @ locals @ globals

let trim_by_liveness program (proc : Ast.proc) (graph : Rg.t) base =
  let info = Liveness.analyze ~program proc in
  let needed = ref [] in
  let add vars = needed := vars @ !needed in
  List.iter
    (fun edge ->
      match edge with
      | Rg.Point_edge { rlabel; _ } ->
        Option.iter add (Liveness.live_at_label info rlabel)
      | Rg.Call_edge { ordinal; _ } ->
        Option.iter add (Liveness.live_after_call info ordinal))
    (Rg.edges_from graph proc.proc_name);
  let needed = List.sort_uniq String.compare !needed in
  let ref_params =
    List.filter_map
      (fun (p : Ast.param) -> if p.pref then Some p.pname else None)
      proc.params
  in
  let globals = List.map (fun (g : Ast.global) -> g.gname) program.globals in
  List.filter
    (fun v ->
      List.mem v needed || List.mem v ref_params || List.mem v globals)
    base

let validate_point_vars (points : point_spec list) capture_table =
  (* Defense in depth: {!Rg.build} already rejects a point naming an
     unknown procedure, but silently skipping here would let a mistyped
     name validate its declared state variables against nothing — and
     capture an empty set downstream. Fail loudly. *)
  let no_capture_set pt_proc pt_label =
    Error
      (Printf.sprintf
         "reconfiguration point %s.%s names procedure %s, which has no \
          capture set (unknown procedure, or not on any path to a \
          reconfiguration point)"
         pt_proc pt_label pt_proc)
  in
  let rec check = function
    | [] -> Ok ()
    | { pt_proc; pt_label; pt_vars = Some vars } :: rest -> (
      match Hashtbl.find_opt capture_table pt_proc with
      | None -> no_capture_set pt_proc pt_label
      | Some captured ->
        let missing = List.filter (fun v -> not (List.mem v captured)) vars in
        if missing = [] then check rest
        else
          Error
            (Printf.sprintf
               "reconfiguration point %s.%s lists state variable(s) %s not \
                present in the capture set of %s"
               pt_proc pt_label (String.concat ", " missing) pt_proc))
    | { pt_proc; pt_label; pt_vars = None } :: rest ->
      if Hashtbl.mem capture_table pt_proc then check rest
      else no_capture_set pt_proc pt_label
  in
  check points

(* ------------------------------------------------------------------ *)
(* Generated statements.                                               *)

let assign_flag name value = Ast.stmt (Ast.Assign (Lvar name, Bool value))

let capture_stmt index vars =
  Ast.stmt
    (Ast.BuiltinS
       ( "mh_capture",
         Ast.Aexpr (Int index) :: List.map (fun v -> Ast.Aexpr (Ast.Var v)) vars ))

let restore_stmt vars =
  Ast.stmt
    (Ast.BuiltinS
       ( "mh_restore",
         Ast.Alv (Lvar flag_location) :: List.map (fun v -> Ast.Alv (Ast.Lvar v)) vars ))

let return_stmt (proc : Ast.proc) =
  match proc.ret with
  | None -> Ast.stmt (Ast.Return None)
  | Some ty -> Ast.stmt (Ast.Return (Some (Typecheck.default_value_expr ty)))

let encode_stmt = Ast.stmt (Ast.BuiltinS ("mh_encode", []))
let decode_stmt = Ast.stmt (Ast.BuiltinS ("mh_decode", []))

let signal_stmt =
  Ast.stmt (Ast.BuiltinS ("signal", [ Ast.Aexpr (Str handler_proc_name) ]))

(* Capture block for a call edge (Fig. 7, second form):
     if (mh_capturestack) { mh_capture(i, vars); [mh_encode();] return d; } *)
let call_capture_block ~in_main proc index vars =
  let body =
    [ capture_stmt index vars ]
    @ (if in_main then [ encode_stmt ] else [])
    @ [ return_stmt proc ]
  in
  Ast.stmt (Ast.If (Var flag_capturestack, body, []))

(* Capture block for a reconfiguration point (Fig. 7, first form):
     if (mh_reconfig) { mh_reconfig = false; mh_capturestack = true;
                        mh_capture(j, vars); [mh_encode();] return d; } *)
let point_capture_block ~in_main proc index vars =
  let body =
    [ assign_flag flag_reconfig false;
      assign_flag flag_capturestack true;
      capture_stmt index vars ]
    @ (if in_main then [ encode_stmt ] else [])
    @ [ return_stmt proc ]
  in
  Ast.stmt (Ast.If (Var flag_reconfig, body, []))

(* ------------------------------------------------------------------ *)
(* Dummy-argument substitution (paper §3): when the restore block        *)
(* re-invokes an interrupted call, argument expressions whose            *)
(* re-evaluation could fault (or re-enter a procedure) are replaced by   *)
(* type-appropriate dummies. The restored callee overwrites its          *)
(* parameters immediately, so dummy values are never observed.           *)

let rec expr_is_safe (e : Ast.expr) =
  match e with
  | Int _ | Float _ | Bool _ | Str _ | Null | Var _ -> true
  | Index _ | Addr _ | Call _ -> false
  | Unop (_, e) -> expr_is_safe e
  | Binop ((Div | Mod), _, _) -> false
  | Binop (_, a, b) -> expr_is_safe a && expr_is_safe b
  | Builtin (name, args) ->
    (* allocation re-executed during restore would leak and diverge from
       the captured heap; conversions and queries are harmless *)
    (match name with
    | "float" | "int" | "str" | "len" | "now" -> List.for_all expr_is_safe args
    | _ -> false)

let dummy_args ~enabled (callee : Ast.proc) args =
  if not enabled then args
  else
    List.map2
      (fun (param : Ast.param) arg ->
        if param.pref then arg
        else if expr_is_safe arg then arg
        else Typecheck.default_value_expr param.pty)
      callee.params args

(* ------------------------------------------------------------------ *)
(* Per-procedure rewriting.                                            *)

type call_edge_info = {
  cei_index : int;
  cei_callee : string;
  cei_args : Ast.expr list;
}

let rewrite_proc ~options (program : Ast.program) (graph : Rg.t) capture_vars
    (proc : Ast.proc) =
  let in_main = String.equal proc.proc_name "main" in
  let edges = Rg.edges_from graph proc.proc_name in
  let call_edge_by_ordinal ordinal =
    List.find_map
      (function
        | Rg.Call_edge { index; ordinal = o; _ } when o = ordinal -> Some index
        | Rg.Call_edge _ | Rg.Point_edge _ -> None)
      edges
  in
  let point_edge_by_label label =
    List.find_map
      (function
        | Rg.Point_edge { index; rlabel; _ } when String.equal rlabel label ->
          Some index
        | Rg.Point_edge _ | Rg.Call_edge _ -> None)
      edges
  in
  let collected_calls = ref [] in
  let ordinal = ref 0 in
  let rec rewrite_block stmts = List.concat_map rewrite_stmt stmts
  and rewrite_stmt (s : Ast.stmt) =
    let point_pre =
      match s.label with
      | Some label -> (
        match point_edge_by_label label with
        (* The _Pj label marks this block as a reconfiguration-point
           gate: the resolver wraps the gate's conditional jump so the
           runtime can park observation hooks (live pre-copy capture)
           exactly at point granularity. Labels are lowering metadata —
           the emitted instruction stream is unchanged. *)
        | Some j ->
          [ { (point_capture_block ~in_main proc j capture_vars) with
              label = Some (point_label j) } ]
        | None -> [])
      | None -> []
    in
    match s.kind with
    | Ast.CallS (callee, args) ->
      let this_ordinal = !ordinal in
      incr ordinal;
      (match call_edge_by_ordinal this_ordinal with
      | Some i ->
        collected_calls :=
          { cei_index = i; cei_callee = callee; cei_args = args }
          :: !collected_calls;
        (* The label _Li sits ON the capture block, not after it: the
           restore code's [goto _Li] must land where a later capture can
           still fire — otherwise a restored process could never be
           reconfigured a second time at this frame. With the flag clear
           the block falls through, so normal resumption is unaffected. *)
        point_pre
        @ [ s;
            { (call_capture_block ~in_main proc i capture_vars) with
              label = Some (generated_label i) } ]
      | None -> point_pre @ [ s ])
    | Ast.If (cond, then_b, else_b) ->
      point_pre @ [ { s with kind = Ast.If (cond, rewrite_block then_b, rewrite_block else_b) } ]
    | Ast.While (cond, body) ->
      point_pre @ [ { s with kind = Ast.While (cond, rewrite_block body) } ]
    | Ast.Decl _ | Ast.Assign _ | Ast.Return _ | Ast.Goto _ | Ast.Print _
    | Ast.Sleep _ | Ast.BuiltinS _ | Ast.Skip ->
      point_pre @ [ s ]
  in
  let rewritten_body = rewrite_block proc.body in
  (* Restore block (Fig. 8). Edge dispatch in ascending index order. *)
  let call_infos =
    List.sort (fun a b -> compare a.cei_index b.cei_index) !collected_calls
  in
  let call_restore info =
    let callee =
      match Ast.find_proc program info.cei_callee with
      | Some c -> c
      | None -> assert false (* typechecked *)
    in
    Ast.stmt
      (Ast.If
         ( Binop (Eq, Var flag_location, Int info.cei_index),
           [ Ast.stmt
               (Ast.CallS
                  ( info.cei_callee,
                    dummy_args ~enabled:options.substitute_dummy_args callee
                      info.cei_args ));
             Ast.stmt (Ast.Goto (generated_label info.cei_index)) ],
           [] ))
  in
  let point_restore index rlabel =
    Ast.stmt
      (Ast.If
         ( Binop (Eq, Var flag_location, Int index),
           [ assign_flag flag_restoring false;
             signal_stmt;
             Ast.stmt (Ast.Goto rlabel) ],
           [] ))
  in
  let dispatch =
    List.filter_map
      (fun edge ->
        match edge with
        | Rg.Call_edge { index; _ } -> (
          match List.find_opt (fun i -> i.cei_index = index) call_infos with
          | Some info -> Some (call_restore info)
          | None -> None)
        | Rg.Point_edge { index; rlabel; _ } -> Some (point_restore index rlabel))
      edges
  in
  let restore_body =
    (if in_main then [ decode_stmt ] else [])
    @ [ restore_stmt capture_vars ]
    @ dispatch
  in
  let restore_block = Ast.stmt (Ast.If (Var flag_restoring, restore_body, [])) in
  let prelude =
    if in_main then
      [ Ast.stmt
          (Ast.If
             ( Binop (Eq, Builtin ("mh_getstatus", []), Str "clone"),
               [ assign_flag flag_restoring true ],
               [ assign_flag flag_restoring false ] ));
        restore_block;
        signal_stmt ]
    else [ restore_block ]
  in
  { proc with body = prelude @ rewritten_body }

(* ------------------------------------------------------------------ *)

let prepare ?(options = default_options) (program : Ast.program) ~points =
  let* () =
    match Typecheck.check program with
    | Ok () -> Ok ()
    | Error errors ->
      Error
        (Fmt.str "program does not typecheck: %a"
           (Fmt.list ~sep:(Fmt.any "; ") Typecheck.pp_error)
           errors)
  in
  let* () = check_reserved program in
  (* From here on, work on the α-renamed program: main's locals no
     longer shadow module globals, so capture lists are duplicate-free. *)
  let program = rename_shadowed_globals program in
  let graph_points = List.map (fun p -> (p.pt_proc, p.pt_label)) points in
  let* graph = Rg.build program ~points:graph_points in
  let base_sets =
    List.filter_map
      (fun (p : Ast.proc) ->
        if Rg.is_relevant graph p.proc_name then
          Some (p, base_capture_list program p)
        else None)
      program.procs
  in
  let capture_sets =
    List.map
      (fun ((p : Ast.proc), base) ->
        let vars =
          if options.use_liveness then trim_by_liveness program p graph base
          else base
        in
        (p.proc_name, vars))
      base_sets
  in
  (* Pre-built lookup tables: O(1) per point/procedure instead of an
     assoc scan over every capture set. *)
  let base_table = Hashtbl.create 16 in
  List.iter
    (fun ((p : Ast.proc), base) -> Hashtbl.replace base_table p.proc_name base)
    base_sets;
  let capture_table = Hashtbl.create 16 in
  List.iter
    (fun (name, vars) -> Hashtbl.replace capture_table name vars)
    capture_sets;
  (* Spec-declared state variables are checked against the full
     (untrimmed) set: liveness may legitimately prune a declared variable
     that is dead at the point. *)
  let* () = validate_point_vars points base_table in
  let procs =
    List.map
      (fun (p : Ast.proc) ->
        match Hashtbl.find_opt capture_table p.proc_name with
        | Some vars -> rewrite_proc ~options program graph vars p
        | None -> p)
      program.procs
  in
  let flag_decl name ty init =
    { Ast.gname = name; gty = ty; ginit = Some init; gline = 0 }
  in
  let globals =
    program.globals
    @ [ flag_decl flag_reconfig Tbool (Bool false);
        flag_decl flag_capturestack Tbool (Bool false);
        flag_decl flag_restoring Tbool (Bool false);
        flag_decl flag_location Tint (Int 0) ]
  in
  let handler =
    { Ast.proc_name = handler_proc_name;
      params = [];
      ret = None;
      body = [ assign_flag flag_reconfig true ];
      proc_line = 0 }
  in
  let prepared_program =
    { program with globals; procs = procs @ [ handler ] }
  in
  (* The output must itself typecheck: a cheap, strong sanity net. *)
  let* () =
    match Typecheck.check prepared_program with
    | Ok () -> Ok ()
    | Error errors ->
      Error
        (Fmt.str "internal error: instrumented program does not typecheck: %a"
           (Fmt.list ~sep:(Fmt.any "; ") Typecheck.pp_error)
           errors)
  in
  Ok { prepared_program; graph; capture_sets }
