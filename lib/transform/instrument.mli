(** The source-to-source transformation of the paper (§2.1, §3).

    Given a program and its reconfiguration points, [prepare] emits a new
    program in which every procedure of the reconfiguration graph has
    been given:

    - a {b restore block} at its entry (Fig. 8);
    - a {b capture block} after each call site on a path to a point
      (Fig. 7, second form), followed by a generated label [_Li];
    - a {b capture block} before each reconfiguration point (Fig. 7,
      first form);

    plus module-level flags ([mh_reconfig], [mh_capturestack],
    [mh_restoring], [mh_location]), and the signal handler procedure
    [mh_catchreconfig]. [main] additionally gets the clone-status check,
    [mh_decode], capture of module globals, and the initial
    [signal(...)] installation (Fig. 4).

    The output is ordinary MiniProc source: it pretty-prints, re-parses
    and typechecks, and when no reconfiguration signal arrives it behaves
    exactly like the input (transform transparency).

    Capture sets are uniform per procedure — parameters, then locals (for
    [main], also module globals) — because the procedure's single restore
    block reads every record with one [mh_restore] (Fig. 8). With
    [use_liveness] the set is trimmed to the union of the live sets at
    the procedure's edges (the paper's suggested dataflow refinement);
    by-reference parameters and globals are always kept. *)

type point_spec = {
  pt_proc : string;
  pt_label : string;
  pt_vars : string list option;
      (** spec-declared state variables; validated against the computed
          capture set when present *)
}

type options = {
  use_liveness : bool;
      (** trim capture sets with live-variable analysis (§3) *)
  substitute_dummy_args : bool;
      (** replace faultable argument expressions in restore
          re-invocations (§3); disabling this reproduces the hazard the
          paper describes — kept as an ablation switch *)
}

val default_options : options

type prepared = {
  prepared_program : Dr_lang.Ast.program;
  graph : Dr_analysis.Reconfig_graph.t;
  capture_sets : (string * string list) list;
      (** per instrumented procedure, the ordered variable list each of
          its capture blocks records *)
}

val prepare :
  ?options:options ->
  Dr_lang.Ast.program ->
  points:point_spec list ->
  (prepared, string) result

val validate_point_vars :
  point_spec list -> (string, string list) Hashtbl.t -> (unit, string) result
(** Check each point's declared state variables ([pt_vars]) against the
    capture-set table. A point naming a procedure absent from the table
    is an error (never a silent skip): {!Dr_analysis.Reconfig_graph}
    already rejects unknown procedures, and this guards the same
    invariant at the capture-set layer. Exposed for direct testing. *)

val generated_label : int -> string
(** The label the transform places after call-edge [i] ("_Li"). *)

val point_label : int -> string
(** The label the transform places on point-edge [j]'s capture block
    ("_Pj") — the marker the resolver turns into a point gate. *)

val flag_globals : string list
(** Names of the injected module-level flags. *)

val handler_proc_name : string
