(** Blob storage for the write-ahead log.

    The log (see {!Wal}) is built on four primitives — list, read,
    atomic whole-blob write, append — plus [sync], which makes every
    append performed so far durable. Two backends:

    - {!memory} keeps blobs in a hashtable and {e models} durability:
      appends land in an unsynced tail that {!crash} discards, so a
      deterministic test can check exactly what a controller crash
      between [append] and [sync] loses;
    - {!file} maps blobs to files in a directory ([write] goes through a
      temp file + rename so a torn manifest update can never be
      observed; [sync] flushes the buffered appends).

    All blob names are flat (no directories) and must match
    [[A-Za-z0-9._-]+]. *)

type t = {
  st_kind : string;  (** "memory" or "file", for reports *)
  st_list : unit -> string list;  (** sorted blob names *)
  st_read : string -> (bytes, string) result;
  st_write : string -> bytes -> unit;  (** atomic whole-blob replace *)
  st_append : string -> bytes -> unit;
  st_delete : string -> unit;
  st_sync : unit -> unit;  (** make every append so far durable *)
}

(** {1 In-memory backend} *)

type mem

val memory : unit -> mem

val storage_of_mem : mem -> t

val crash : mem -> unit
(** Discard every append since the last [sync] — the unsynced page
    cache of a crashed controller. Synced bytes and whole-blob writes
    survive. *)

val sync_count : mem -> int
(** How many times [st_sync] ran (the fsync count a batching policy is
    trying to minimise). *)

val append_count : mem -> int

val corrupt_byte : mem -> blob:string -> at:int -> unit
(** Flip one bit of the named blob (fault injection for decoder
    tests). *)

val truncate_blob : mem -> blob:string -> len:int -> unit
(** Cut the named blob to [len] bytes (a torn tail). *)

(** {1 File backend} *)

val file : dir:string -> t
(** Blobs are files directly under [dir] (created if missing). *)
