module Bin_util = Dr_state.Bin_util

type config = { segment_bytes : int; sync_every : int }

let default_config = { segment_bytes = 64 * 1024; sync_every = 1 }

type open_report = {
  or_segments : int;
  or_records : int;
  or_truncated_bytes : int;
  or_last_lsn : int;
}

type t = {
  storage : Storage.t;
  config : config;
  mutable next : int;  (* next LSN to assign *)
  mutable durable : int;  (* highest synced LSN *)
  mutable cp : int;  (* checkpoint LSN *)
  mutable cp_state : bytes option;
  mutable active : string;  (* active segment blob name *)
  mutable active_bytes : int;
  mutable segs : (string * int) list;  (* (name, first LSN), ascending *)
  mutable unsynced : int;
  mutable since_cp : int;
  mutable n_appends : int;
  mutable n_syncs : int;
  report : open_report;
}

let manifest_blob = "MANIFEST"
let manifest_magic = "DRWALMF1"
let seg_name lsn = Printf.sprintf "seg-%012d.wal" lsn
let ckpt_name lsn = Printf.sprintf "ckpt-%012d" lsn

let seg_lsn name = Scanf.sscanf_opt name "seg-%12d.wal%!" (fun n -> n)
let ckpt_lsn name = Scanf.sscanf_opt name "ckpt-%12d%!" (fun n -> n)

(* ------------------------------------------------------------ framing *)

(* [u32 length][u32 crc of payload][payload = i64 lsn, u8 kind, body] *)
let frame ~lsn ~kind body =
  let payload =
    Bin_util.with_buffer @@ fun buf ->
    Bin_util.write_i64 buf ~big:true (Int64.of_int lsn);
    Bin_util.write_u8 buf kind;
    Bin_util.write_bytes buf (Bytes.unsafe_to_string body);
    Buffer.to_bytes buf
  in
  let out =
    Bin_util.with_buffer @@ fun buf ->
    Bin_util.write_i32 buf ~big:true (Bytes.length payload);
    Buffer.add_int32_be buf (Bin_util.crc32 payload);
    Bin_util.write_bytes buf (Bytes.unsafe_to_string payload);
    Buffer.to_bytes buf
  in
  out

(* ----------------------------------------------------------- scanning *)

type scan = {
  sc_records : (int * int * bytes) list;  (* ascending LSN *)
  sc_segments : (string * int) list;
  sc_ckpts : int list;
  sc_manifest_cp : int option;  (* None: no manifest blob *)
  sc_torn : (string * int) option;  (* last segment name, clean length *)
  sc_truncated_bytes : int;
  sc_last_lsn : int;  (* 0 when empty *)
}

let read_manifest storage =
  match storage.Storage.st_read manifest_blob with
  | Error _ -> Ok None
  | Ok data ->
    let n = Bytes.length data in
    let ml = String.length manifest_magic in
    if n < ml + 8 + 4 then Error "manifest truncated"
    else if not (String.equal (Bytes.sub_string data 0 ml) manifest_magic) then
      Error "manifest has a bad magic"
    else begin
      let body = Bytes.sub data 0 (n - 4) in
      if not (Int32.equal (Bytes.get_int32_be data (n - 4)) (Bin_util.crc32 body))
      then Error "manifest checksum mismatch"
      else Ok (Some (Int64.to_int (Bytes.get_int64_be data ml)))
    end

let write_manifest storage ~cp =
  let data =
    Bin_util.with_buffer @@ fun buf ->
    Bin_util.write_bytes buf manifest_magic;
    Bin_util.write_i64 buf ~big:true (Int64.of_int cp);
    Buffer.add_int32_be buf (Bin_util.crc32 (Buffer.to_bytes buf));
    Buffer.to_bytes buf
  in
  storage.Storage.st_write manifest_blob data

let read_ckpt storage lsn =
  match storage.Storage.st_read (ckpt_name lsn) with
  | Error _ -> None
  | Ok data ->
    let n = Bytes.length data in
    if n < 8 then None
    else
      let len = Int32.to_int (Bytes.get_int32_be data 0) in
      if len < 0 || len <> n - 8 then None
      else
        let body = Bytes.sub data 8 len in
        if Int32.equal (Bytes.get_int32_be data 4) (Bin_util.crc32 body) then
          Some body
        else None

let write_ckpt storage lsn state =
  let data =
    Bin_util.with_buffer @@ fun buf ->
    Bin_util.write_i32 buf ~big:true (Bytes.length state);
    Buffer.add_int32_be buf (Bin_util.crc32 state);
    Bin_util.write_bytes buf (Bytes.unsafe_to_string state);
    Buffer.to_bytes buf
  in
  storage.Storage.st_write (ckpt_name lsn) data

(* Decode one segment blob. [last] controls torn-tail handling: a
   record that is short, oversized or checksum-damaged in the last
   segment is a torn tail (return the clean prefix length); anywhere
   else it is damage and the scan fails loudly. *)
let scan_segment ~name ~first_lsn ~expected_lsn ~last data =
  let total = Bytes.length data in
  let records = ref [] in
  let expected = ref expected_lsn in
  let off = ref 0 in
  let torn = ref None in
  let err = ref None in
  let fail fmt =
    Printf.ksprintf (fun m -> err := Some (Printf.sprintf "segment %s: %s" name m)) fmt
  in
  let tear () = if last then torn := Some !off else fail "corrupt record at offset %d (not the log tail — refusing to recover)" !off
  in
  (match seg_lsn name with
  | Some n when n <> first_lsn -> assert false
  | Some n when n <> expected_lsn ->
    if n < expected_lsn then
      fail "overlaps the previous segment (starts at LSN %d, expected %d)" n
        expected_lsn
    else fail "LSN gap (starts at %d, expected %d)" n expected_lsn
  | _ -> ());
  while !err = None && !torn = None && !off < total do
    let remaining = total - !off in
    if remaining < 8 then tear ()
    else begin
      let len = Int32.to_int (Bytes.get_int32_be data !off) in
      if len < 9 || len > remaining - 8 then tear ()
      else begin
        let payload = Bytes.sub data (!off + 8) len in
        if
          not
            (Int32.equal (Bytes.get_int32_be data (!off + 4))
               (Bin_util.crc32 payload))
        then tear ()
        else begin
          let lsn = Int64.to_int (Bytes.get_int64_be payload 0) in
          let kind = Char.code (Bytes.get payload 8) in
          let body = Bytes.sub payload 9 (len - 9) in
          if lsn <> !expected then
            fail "record at offset %d has LSN %d, expected %d" !off lsn
              !expected
          else begin
            records := (lsn, kind, body) :: !records;
            incr expected;
            off := !off + 8 + len
          end
        end
      end
    end
  done;
  match !err with
  | Some e -> Error e
  | None -> Ok (List.rev !records, !expected, !torn)

let scan_storage storage =
  let ( let* ) = Result.bind in
  let blobs = storage.Storage.st_list () in
  let* () =
    List.fold_left
      (fun acc name ->
        let* () = acc in
        if
          String.equal name manifest_blob
          || Option.is_some (seg_lsn name)
          || Option.is_some (ckpt_lsn name)
          || Filename.check_suffix name ".tmp"
        then Ok ()
        else Error (Printf.sprintf "unexpected blob %s in the log" name))
      (Ok ()) blobs
  in
  let* manifest_cp = read_manifest storage in
  let segments =
    List.filter_map (fun n -> Option.map (fun l -> (n, l)) (seg_lsn n)) blobs
  in
  let ckpts = List.filter_map ckpt_lsn blobs in
  let* () =
    match manifest_cp with
    | None when segments <> [] || ckpts <> [] ->
      Error "log has segments but no readable manifest"
    | _ -> Ok ()
  in
  let segments = List.sort (fun (_, a) (_, b) -> compare a b) segments in
  let n_segments = List.length segments in
  let* records, last_lsn, torn, truncated =
    List.fold_left
      (fun acc (i, (name, first_lsn)) ->
        let* records, expected, _, _ = acc in
        let expected =
          if expected = 0 then first_lsn (* first retained segment *)
          else expected
        in
        let* data =
          Result.map_error
            (fun e -> Printf.sprintf "segment %s unreadable: %s" name e)
            (storage.Storage.st_read name)
        in
        let last = i = n_segments - 1 in
        let* segment_records, expected, torn =
          scan_segment ~name ~first_lsn ~expected_lsn:expected ~last data
        in
        let torn, truncated =
          match torn with
          | Some clean -> (Some (name, clean), Bytes.length data - clean)
          | None -> (None, 0)
        in
        Ok (List.rev_append segment_records records, expected, torn, truncated))
      (Ok ([], 0, None, 0))
      (List.mapi (fun i s -> (i, s)) segments)
  in
  let last_lsn = if last_lsn = 0 then 0 else last_lsn - 1 in
  let* () =
    match manifest_cp with
    | Some cp when cp > last_lsn + 1 && not (last_lsn = 0 && segments = []) ->
      Error
        (Printf.sprintf "manifest checkpoint %d is beyond the log head %d" cp
           (last_lsn + 1))
    | Some cp -> (
      match List.filter (fun l -> l > cp) ckpts with
      | [] -> Ok ()
      | l :: _ ->
        Error
          (Printf.sprintf
             "manifest checkpoint %d is behind checkpoint blob %d (checkpoints \
              must be monotonic)"
             cp l))
    | None -> Ok ()
  in
  Ok
    { sc_records = List.rev records;
      sc_segments = segments;
      sc_ckpts = ckpts;
      sc_manifest_cp = manifest_cp;
      sc_torn = torn;
      sc_truncated_bytes = truncated;
      sc_last_lsn = last_lsn }

(* ------------------------------------------------------------- opening *)

let create ?(config = default_config) storage =
  let ( let* ) = Result.bind in
  (* sweep temp files left by an interrupted atomic write *)
  List.iter
    (fun name ->
      if Filename.check_suffix name ".tmp" then storage.Storage.st_delete name)
    (storage.Storage.st_list ());
  let* scan = scan_storage storage in
  (* heal the torn tail: rewrite the last segment as its clean prefix *)
  (match scan.sc_torn with
  | None -> ()
  | Some (name, clean) -> (
    match storage.Storage.st_read name with
    | Error _ -> ()
    | Ok data -> storage.Storage.st_write name (Bytes.sub data 0 clean)));
  let cp = match scan.sc_manifest_cp with Some cp -> cp | None -> 1 in
  if scan.sc_manifest_cp = None then write_manifest storage ~cp;
  (* finish any garbage collection a crash interrupted *)
  let segs =
    List.filter
      (fun (name, first) ->
        let last_of_seg =
          (* a segment ends where the next one starts *)
          match
            List.find_opt (fun (_, f) -> f > first) scan.sc_segments
          with
          | Some (_, next_first) -> next_first - 1
          | None -> scan.sc_last_lsn
        in
        if last_of_seg < cp && first < cp then begin
          storage.Storage.st_delete name;
          false
        end
        else true)
      scan.sc_segments
  in
  List.iter
    (fun l -> if l < cp then storage.Storage.st_delete (ckpt_name l))
    scan.sc_ckpts;
  let next = max (scan.sc_last_lsn + 1) cp in
  let active, active_bytes =
    match List.rev segs with
    | (name, _) :: _ ->
      let size =
        match storage.Storage.st_read name with
        | Ok d -> Bytes.length d
        | Error _ -> 0
      in
      (name, size)
    | [] -> (seg_name next, 0)
  in
  let live = List.filter (fun (lsn, _, _) -> lsn >= cp) scan.sc_records in
  Ok
    { storage;
      config;
      next;
      durable = next - 1;
      cp;
      cp_state = read_ckpt storage cp;
      active;
      active_bytes;
      segs = (if segs = [] then [ (active, next) ] else segs);
      unsynced = 0;
      since_cp = List.fold_left (fun a (_, _, b) -> a + Bytes.length b) 0 live;
      n_appends = 0;
      n_syncs = 0;
      report =
        { or_segments = List.length scan.sc_segments;
          or_records = List.length live;
          or_truncated_bytes = scan.sc_truncated_bytes;
          or_last_lsn = scan.sc_last_lsn } }

let open_report t = t.report

(* ------------------------------------------------------------ appending *)

let sync t =
  if t.unsynced > 0 then begin
    t.storage.Storage.st_sync ();
    t.n_syncs <- t.n_syncs + 1;
    t.unsynced <- 0
  end;
  t.durable <- t.next - 1

let append t ~kind body =
  let lsn = t.next in
  let data = frame ~lsn ~kind body in
  if t.active_bytes > 0 && t.active_bytes + Bytes.length data > t.config.segment_bytes
  then begin
    sync t;
    t.active <- seg_name lsn;
    t.active_bytes <- 0;
    t.segs <- t.segs @ [ (t.active, lsn) ]
  end;
  t.storage.Storage.st_append t.active data;
  t.active_bytes <- t.active_bytes + Bytes.length data;
  t.since_cp <- t.since_cp + Bytes.length body;
  t.n_appends <- t.n_appends + 1;
  t.next <- t.next + 1;
  t.unsynced <- t.unsynced + 1;
  if t.unsynced >= t.config.sync_every then sync t;
  lsn

let next_lsn t = t.next
let durable_lsn t = t.durable
let checkpoint_lsn t = t.cp
let checkpoint_state t = t.cp_state
let bytes_since_checkpoint t = t.since_cp
let appends t = t.n_appends
let syncs t = t.n_syncs
let segment_names t = List.map fst t.segs

(* --------------------------------------------------------- checkpointing *)

let checkpoint ?(state = Bytes.create 0) t =
  sync t;
  let cp = t.next in
  (* blob first, manifest second, deletes last: a crash at any point
     leaves either the old checkpoint fully valid or the new one, and
     [create] finishes the interrupted GC *)
  write_ckpt t.storage cp state;
  write_manifest t.storage ~cp;
  let fresh = seg_name cp in
  if not (String.equal t.active fresh) || t.active_bytes > 0 then begin
    List.iter (fun (name, _) -> t.storage.Storage.st_delete name) t.segs;
    t.active <- fresh;
    t.active_bytes <- 0;
    t.segs <- [ (fresh, cp) ]
  end;
  List.iter
    (fun name ->
      match ckpt_lsn name with
      | Some l when l < cp -> t.storage.Storage.st_delete name
      | _ -> ())
    (t.storage.Storage.st_list ());
  t.cp <- cp;
  t.cp_state <- Some state;
  t.since_cp <- 0

(* ------------------------------------------------------------- reading *)

let records t =
  match scan_storage t.storage with
  | Error e -> invalid_arg ("wal: live scan failed: " ^ e)
  | Ok scan -> List.filter (fun (lsn, _, _) -> lsn >= t.cp) scan.sc_records

let check_invariants t =
  match scan_storage t.storage with
  | Error e -> Error e
  | Ok scan -> (
    match scan.sc_manifest_cp with
    | None -> Error "no manifest"
    | Some cp ->
      if cp <> t.cp then
        Error
          (Printf.sprintf "stored checkpoint %d disagrees with memory %d" cp
             t.cp)
      else if scan.sc_torn <> None then Error "live log has a torn tail"
      else Ok ())
