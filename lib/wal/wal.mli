(** Append-only, checksummed write-ahead log.

    The log is a sequence of records with contiguous, strictly
    increasing log sequence numbers (LSNs), stored as {e segment} blobs
    ([seg-<first lsn>.wal]) on a {!Storage.t}. Each record is framed

    {v [u32 length][u32 CRC-32 of payload][payload = i64 lsn, u8 kind, body] v}

    so a flipped bit anywhere in a record is caught by the checksum and
    a partially written record is caught by the length. A [MANIFEST]
    blob (whole-blob atomic write) carries the active checkpoint LSN;
    [ckpt-<lsn>] blobs carry an opaque checkpoint state.

    {b Open-time recovery} ({!create} on existing storage): segments are
    scanned in LSN order; a torn or corrupt record in the {e last}
    segment truncates the log to the clean prefix before it (a torn
    tail — the crash interrupted an append), while a corrupt record, an
    LSN gap, or an overlapping/duplicated segment anywhere {e earlier}
    fails loudly — that is damage, not a crash, and replaying around it
    would lie about history. A manifest whose checkpoint is behind an
    existing [ckpt-] blob is likewise rejected (checkpoints must be
    monotonic).

    {b Durability}: [append] buffers; {!sync} makes every buffered
    record durable. [sync_every] batches fsyncs (group commit): with
    [sync_every = 1] each append syncs before returning — the strict
    write-ahead discipline the reconfiguration journal uses — while
    larger values trade the tail of the log for throughput (the append
    bench measures exactly this).

    {b Checkpoint + GC}: {!checkpoint} declares every record below the
    current head settled: it rolls to a fresh segment, writes the
    checkpoint blob, atomically updates the manifest, then deletes the
    segments and checkpoint blobs that precede it — the log stays
    bounded by the live suffix. *)

type t

type config = {
  segment_bytes : int;  (** roll the active segment beyond this size *)
  sync_every : int;  (** fsync batching: sync after this many appends *)
}

val default_config : config
(** 64 KiB segments, [sync_every = 1] (strict write-ahead). *)

type open_report = {
  or_segments : int;  (** segments scanned *)
  or_records : int;  (** records recovered (at or above the checkpoint) *)
  or_truncated_bytes : int;  (** torn tail cut from the last segment *)
  or_last_lsn : int;  (** 0 when the log is empty *)
}

val create : ?config:config -> Storage.t -> (t, string) result
(** Open (recovering as described above) or initialise the log. *)

val open_report : t -> open_report

val append : t -> kind:int -> bytes -> int
(** Frame and append one record; returns its LSN. Syncs before
    returning when the batching threshold is reached. *)

val sync : t -> unit
(** Make every appended record durable now. *)

val next_lsn : t -> int

val durable_lsn : t -> int
(** Highest LSN guaranteed to survive a crash (0 when none). *)

val checkpoint_lsn : t -> int
(** First LSN replay must consider (1 for a fresh log). *)

val checkpoint : ?state:bytes -> t -> unit
(** Checkpoint at the current head and garbage-collect. [state] is an
    opaque snapshot returned by {!checkpoint_state} after reopen. *)

val checkpoint_state : t -> bytes option

val records : t -> (int * int * bytes) list
(** The {e durable} records from the checkpoint on, as
    [(lsn, kind, body)] — what a restarted controller would replay.
    Re-reads storage: buffered, unsynced appends are not included. *)

val segment_names : t -> string list

val bytes_since_checkpoint : t -> int
(** Appended payload bytes since the last checkpoint — the caller's
    checkpoint policy trigger. *)

val appends : t -> int

val syncs : t -> int

val check_invariants : t -> (unit, string) result
(** Re-scan storage and verify the safety invariants as a monitor:
    LSNs strictly increasing and contiguous across segments, every
    record's checksum valid, manifest checkpoint at or above every
    [ckpt-] blob and at most one head past the last record. *)
