type t = {
  st_kind : string;
  st_list : unit -> string list;
  st_read : string -> (bytes, string) result;
  st_write : string -> bytes -> unit;
  st_append : string -> bytes -> unit;
  st_delete : string -> unit;
  st_sync : unit -> unit;
}

(* ------------------------------------------------------------- memory *)

(* Each blob is a durable prefix plus an unsynced tail; [sync] folds the
   tail into the prefix, [crash] discards it. A whole-blob [write] is
   modelled as immediately durable (the file backend renames a fully
   written temp file into place, which is as atomic as this layer
   gets). *)
type blob = { mutable durable : Buffer.t; mutable tail : Buffer.t }

type mem = {
  blobs : (string, blob) Hashtbl.t;
  mutable syncs : int;
  mutable appends : int;
}

let memory () = { blobs = Hashtbl.create 8; syncs = 0; appends = 0 }

let mem_blob m name =
  match Hashtbl.find_opt m.blobs name with
  | Some b -> b
  | None ->
    let b = { durable = Buffer.create 64; tail = Buffer.create 64 } in
    Hashtbl.replace m.blobs name b;
    b

let mem_contents b =
  let out = Bytes.create (Buffer.length b.durable + Buffer.length b.tail) in
  Buffer.blit b.durable 0 out 0 (Buffer.length b.durable);
  Buffer.blit b.tail 0 out (Buffer.length b.durable) (Buffer.length b.tail);
  out

let storage_of_mem m =
  { st_kind = "memory";
    st_list =
      (fun () ->
        List.sort String.compare
          (Hashtbl.fold (fun name _ acc -> name :: acc) m.blobs []));
    st_read =
      (fun name ->
        match Hashtbl.find_opt m.blobs name with
        | None -> Error (Printf.sprintf "no such blob %s" name)
        | Some b -> Ok (mem_contents b));
    st_write =
      (fun name data ->
        let b = { durable = Buffer.create (Bytes.length data); tail = Buffer.create 16 } in
        Buffer.add_bytes b.durable data;
        Hashtbl.replace m.blobs name b);
    st_append =
      (fun name data ->
        m.appends <- m.appends + 1;
        Buffer.add_bytes (mem_blob m name).tail data);
    st_delete = (fun name -> Hashtbl.remove m.blobs name);
    st_sync =
      (fun () ->
        m.syncs <- m.syncs + 1;
        Hashtbl.iter
          (fun _ b ->
            Buffer.add_buffer b.durable b.tail;
            Buffer.clear b.tail)
          m.blobs) }

let crash m = Hashtbl.iter (fun _ b -> Buffer.clear b.tail) m.blobs

let sync_count m = m.syncs

let append_count m = m.appends

let corrupt_byte m ~blob ~at =
  match Hashtbl.find_opt m.blobs blob with
  | None -> invalid_arg ("corrupt_byte: no blob " ^ blob)
  | Some b ->
    let data = mem_contents b in
    if at < 0 || at >= Bytes.length data then
      invalid_arg "corrupt_byte: offset out of range";
    Bytes.set data at (Char.chr (Char.code (Bytes.get data at) lxor 0x40));
    b.durable <- Buffer.create (Bytes.length data);
    Buffer.add_bytes b.durable data;
    b.tail <- Buffer.create 16

let truncate_blob m ~blob ~len =
  match Hashtbl.find_opt m.blobs blob with
  | None -> invalid_arg ("truncate_blob: no blob " ^ blob)
  | Some b ->
    let data = mem_contents b in
    let len = min len (Bytes.length data) in
    b.durable <- Buffer.create (max 16 len);
    Buffer.add_bytes b.durable (Bytes.sub data 0 len);
    b.tail <- Buffer.create 16

(* --------------------------------------------------------------- file *)

let file ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "wal storage: %s is not a directory" dir);
  let path name = Filename.concat dir name in
  (* buffered append channels, flushed by [sync] (group commit) *)
  let open_outs : (string, out_channel) Hashtbl.t = Hashtbl.create 4 in
  let out_for name =
    match Hashtbl.find_opt open_outs name with
    | Some oc -> oc
    | None ->
      let oc =
        open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ]
          0o644 (path name)
      in
      Hashtbl.replace open_outs name oc;
      oc
  in
  let close_open name =
    match Hashtbl.find_opt open_outs name with
    | Some oc ->
      close_out_noerr oc;
      Hashtbl.remove open_outs name
    | None -> ()
  in
  { st_kind = "file";
    st_list =
      (fun () ->
        Hashtbl.iter (fun _ oc -> flush oc) open_outs;
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun n -> not (Sys.is_directory (path n)))
        |> List.sort String.compare);
    st_read =
      (fun name ->
        close_open name;
        try
          Ok
            (In_channel.with_open_bin (path name) (fun ic ->
                 Bytes.of_string (In_channel.input_all ic)))
        with Sys_error e -> Error e);
    st_write =
      (fun name data ->
        close_open name;
        let tmp = path (name ^ ".tmp") in
        Out_channel.with_open_bin tmp (fun oc ->
            output_bytes oc data;
            flush oc);
        Sys.rename tmp (path name));
    st_append = (fun name data -> output_bytes (out_for name) data);
    st_delete =
      (fun name ->
        close_open name;
        if Sys.file_exists (path name) then Sys.remove (path name));
    st_sync = (fun () -> Hashtbl.iter (fun _ oc -> flush oc) open_outs) }
