module Prng = Dr_sim.Prng
module Engine = Dr_sim.Engine

type event =
  | Host_crash of string
  | Host_recover of string
  | Process_crash of string
  | Image_corrupt of string

type rule = {
  r_src : string option;
  r_dst : string option;
  r_loss : float;
  r_dup : float;
}

type plan = {
  fp_events : (float * event) list;
  fp_rules : rule list;
  fp_jitter : float;
  fp_ctl_crash : int option;
}

let no_faults =
  { fp_events = []; fp_rules = []; fp_jitter = 0.0; fp_ctl_crash = None }

let rule ?src ?dst ?(loss = 0.0) ?(dup = 0.0) () =
  { r_src = src; r_dst = dst; r_loss = loss; r_dup = dup }

let plan ?(events = []) ?(rules = []) ?(jitter = 0.0) ?ctl_crash () =
  { fp_events = events; fp_rules = rules; fp_jitter = jitter;
    fp_ctl_crash = ctl_crash }

let matches r ~src ~dst =
  let ok filter name =
    match filter with None -> true | Some f -> String.equal f name
  in
  ok r.r_src (fst src) && ok r.r_dst (fst dst)

let fire bus = function
  | Host_crash h -> Bus.crash_host bus ~host:h
  | Host_recover h -> Bus.recover_host bus ~host:h
  | Process_crash i ->
    Bus.crash_process bus ~instance:i ~reason:"injected crash"
  | Image_corrupt i -> Bus.arm_image_corruption bus ~instance:i

let install bus ~seed p =
  List.iter
    (fun (time, event) ->
      Engine.schedule_at (Bus.engine bus) ~time (fun () -> fire bus event))
    p.fp_events;
  (match p.fp_ctl_crash with
  | Some n -> Bus.arm_ctl_crash bus ~after:n
  | None -> ());
  if p.fp_rules = [] && p.fp_jitter = 0.0 then Bus.clear_fault_hooks bus
  else begin
    let prng = Prng.create ~seed in
    (* injection accounting, attributed to the victim's broker domain on
       a sharded bus. Metrics are passive (no trace, no PRNG, no events)
       and the lookup only runs when an injection actually fires, so the
       fault decision stream is untouched. *)
    let count_injection kind ~dst =
      match Bus.metrics bus with
      | None -> ()
      | Some r ->
        let labels =
          match Bus.domain_of_instance bus ~instance:(fst dst) with
          | Some d -> [ ("kind", kind); ("domain", string_of_int d) ]
          | None -> [ ("kind", kind) ]
        in
        Dr_obs.Metrics.incr r ~labels "faults.injected"
    in
    let decide ~src ~dst =
      match List.find_opt (matches ~src ~dst) p.fp_rules with
      | None -> Bus.Deliver
      | Some r ->
        (* one draw per decision, in a fixed order, so the stream of PRNG
           consumptions — and hence the whole run — replays from the seed *)
        let u = Prng.float prng 1.0 in
        if u < r.r_loss then begin
          count_injection "loss" ~dst;
          Bus.Drop
        end
        else if r.r_dup > 0.0 && Prng.float prng 1.0 < r.r_dup then begin
          count_injection "dup" ~dst;
          Bus.Duplicate
        end
        else Bus.Deliver
    in
    let jitter () =
      if p.fp_jitter > 0.0 then Prng.float prng p.fp_jitter else 0.0
    in
    Bus.set_fault_hooks bus
      { Bus.fh_message = (fun ~src ~dst -> decide ~src ~dst);
        fh_jitter = jitter }
  end

(* --------------------------------------------------- CLI specification *)

let parse_float_clause what v =
  match float_of_string_opt v with
  | Some f when f >= 0.0 -> Ok f
  | Some _ | None -> Error (Printf.sprintf "bad %s value %S" what v)

let parse_at what v =
  (* "name@T" *)
  match String.index_opt v '@' with
  | None -> Error (Printf.sprintf "bad %s %S: expected name@time" what v)
  | Some i -> (
    let name = String.sub v 0 i in
    let time = String.sub v (i + 1) (String.length v - i - 1) in
    if name = "" then
      Error (Printf.sprintf "bad %s %S: expected name@time" what v)
    else
      match float_of_string_opt time with
      | None -> Error (Printf.sprintf "bad %s %S: expected name@time" what v)
      | Some t when t < 0.0 ->
        Error (Printf.sprintf "bad %s %S: time must be non-negative" what v)
      | Some t -> Ok (name, t))

let parse_scope scope =
  (* "src>dst" with "*" wildcards *)
  match String.split_on_char '>' scope with
  | [ src; dst ] when src <> "" && dst <> "" ->
    let f s = if String.equal s "*" then None else Some s in
    Ok (f src, f dst)
  | _ -> Error (Printf.sprintf "bad scope %S: expected src>dst" scope)

let parse_plan spec =
  let ( let* ) = Result.bind in
  let clauses =
    List.filter (fun s -> s <> "") (String.split_on_char ',' spec)
  in
  List.fold_left
    (fun acc clause ->
      let* seed, p = acc in
      let key, value =
        match String.index_opt clause '=' with
        | None -> (clause, "")
        | Some i ->
          ( String.sub clause 0 i,
            String.sub clause (i + 1) (String.length clause - i - 1) )
      in
      let scoped prefix =
        (* "loss@src>dst" *)
        let pl = String.length prefix in
        if
          String.length key > pl + 1
          && String.equal (String.sub key 0 pl) prefix
          && key.[pl] = '@'
        then Some (String.sub key (pl + 1) (String.length key - pl - 1))
        else None
      in
      let add_rule src dst loss dup =
        (* merge clauses with the same scope (loss=…,dup=… is one rule:
           only the first matching rule is consulted per message) *)
        let same r = r.r_src = src && r.r_dst = dst in
        if List.exists same p.fp_rules then
          let rules =
            List.map
              (fun r ->
                if same r then
                  { r with
                    r_loss = Float.max r.r_loss loss;
                    r_dup = Float.max r.r_dup dup }
                else r)
              p.fp_rules
          in
          Ok (seed, { p with fp_rules = rules })
        else begin
          (* first match wins, so a new rule whose scope an earlier,
             broader rule already covers can never fire — reject the
             dead clause instead of silently ignoring it *)
          let covers a b = match a with None -> true | Some _ -> a = b in
          let scope_str s d =
            (match s with None -> "*" | Some x -> x)
            ^ ">"
            ^ (match d with None -> "*" | Some x -> x)
          in
          match
            List.find_opt
              (fun r -> covers r.r_src src && covers r.r_dst dst)
              p.fp_rules
          with
          | Some r ->
            Error
              (Printf.sprintf
                 "rule for %s is shadowed by the earlier rule for %s (first \
                  match wins; put the narrower scope first)"
                 (scope_str src dst)
                 (scope_str r.r_src r.r_dst))
          | None ->
            Ok
              (seed, { p with fp_rules = p.fp_rules @ [ rule ?src ?dst ~loss ~dup () ] })
        end
      in
      let add_event what name time ev =
        if
          List.exists
            (fun (t0, e0) -> Float.equal t0 time && e0 = ev)
            p.fp_events
        then Error (Printf.sprintf "duplicate %s clause %s@%g" what name time)
        else
          let conflicting =
            match ev with
            | Host_crash h ->
              List.exists
                (fun (t0, e0) -> Float.equal t0 time && e0 = Host_recover h)
                p.fp_events
            | Host_recover h ->
              List.exists
                (fun (t0, e0) -> Float.equal t0 time && e0 = Host_crash h)
                p.fp_events
            | Process_crash _ | Image_corrupt _ -> false
          in
          if conflicting then
            Error
              (Printf.sprintf
                 "conflicting clauses: crash and recover of %s at the same \
                  time %g"
                 name time)
          else Ok (seed, { p with fp_events = p.fp_events @ [ (time, ev) ] })
      in
      match key with
      | "seed" -> (
        match int_of_string_opt value with
        | Some s -> Ok (s, p)
        | None -> Error (Printf.sprintf "bad seed %S" value))
      | "loss" ->
        let* f = parse_float_clause "loss" value in
        add_rule None None f 0.0
      | "dup" ->
        let* f = parse_float_clause "dup" value in
        add_rule None None 0.0 f
      | "jitter" ->
        let* f = parse_float_clause "jitter" value in
        Ok (seed, { p with fp_jitter = f })
      | "crash" ->
        let* h, t = parse_at "crash" value in
        add_event "crash" h t (Host_crash h)
      | "recover" ->
        let* h, t = parse_at "recover" value in
        add_event "recover" h t (Host_recover h)
      | "kill" ->
        let* i, t = parse_at "kill" value in
        add_event "kill" i t (Process_crash i)
      | "corrupt" ->
        let* i, t = parse_at "corrupt" value in
        add_event "corrupt" i t (Image_corrupt i)
      | _ when String.length key > 9 && String.sub key 0 9 = "ctlcrash@" -> (
        (* "ctlcrash@N": controller dies after the Nth control-log
           append — an index into the journal's append sequence, not a
           virtual time *)
        let n = String.sub key 9 (String.length key - 9) in
        if value <> "" then
          Error (Printf.sprintf "bad ctlcrash clause %S: expected ctlcrash@N" clause)
        else
          match int_of_string_opt n with
          | None ->
            Error (Printf.sprintf "bad ctlcrash index %S: expected ctlcrash@N" n)
          | Some n when n < 1 ->
            Error
              (Printf.sprintf
                 "bad ctlcrash index %d: append indices start at 1" n)
          | Some n -> (
            match p.fp_ctl_crash with
            | Some _ -> Error "duplicate ctlcrash clause"
            | None -> Ok (seed, { p with fp_ctl_crash = Some n })))
      | _ -> (
        match scoped "loss", scoped "dup" with
        | Some scope, _ ->
          let* src, dst = parse_scope scope in
          let* f = parse_float_clause "loss" value in
          add_rule src dst f 0.0
        | None, Some scope ->
          let* src, dst = parse_scope scope in
          let* f = parse_float_clause "dup" value in
          add_rule src dst 0.0 f
        | None, None -> Error (Printf.sprintf "unknown fault clause %S" clause)))
    (Ok (0, no_faults))
    clauses

(* Hand the per-message fault decision to an external chooser — the
   model checker's explorer turns every send into an explicit choice
   point. Jitter is zero so virtual latency stays schedule-pure: the
   explorer owns ordering, not the clock. *)
let explorable bus ~decide =
  Bus.set_fault_hooks bus
    { Bus.fh_message = decide; fh_jitter = (fun () -> 0.0) }
