(* Opt-in per-route reliable delivery.

   A channel is the unit of reliability: one (source endpoint,
   destination endpoint) pair with sender state (next sequence number,
   unacked frames, retransmission timer with exponential backoff on
   virtual time) and receiver state (next expected sequence number,
   out-of-order buffer, duplicate/fence counters). Frames and
   cumulative acks ride [Bus.transmit], so every hop still pays
   latency, draws a fault decision from the seeded PRNG, and records
   injected loss exactly like an unreliable message — Drop/Duplicate
   are masked by the protocol, never bypassed.

   Epoch fencing: a channel carries an epoch, bumped when a rename is
   applied with [fence = true] (a supervisor replacing a merely
   *suspected* instance). Frames sent under an older epoch are
   discarded on arrival, so a false-positive restart cannot let the
   displaced generation's in-flight output land twice: the new epoch's
   retransmissions are the only frames that count.

   All protocol events trace under the ["retx"] category; the layer
   installed with nothing enabled leaves the bus byte-for-byte
   identical (pinned by the golden-trace tests). *)

module Engine = Dr_sim.Engine

type params = {
  rto_initial : float;
  rto_backoff : float;
  rto_max : float;
  retx_limit : int;
}

let default_params =
  { rto_initial = 4.0; rto_backoff = 2.0; rto_max = 16.0; retx_limit = 0 }

type channel = {
  mutable ch_src : Bus.endpoint;
  mutable ch_dst : Bus.endpoint;
  mutable ch_epoch : int;
  (* sender *)
  mutable ch_next_seq : int;
  ch_unacked : (int, Dr_state.Value.t) Hashtbl.t;
  mutable ch_lowest_unacked : int;
  mutable ch_rto : float;
  mutable ch_timer_armed : bool;
  mutable ch_timer_gen : int;
  mutable ch_sent : int;
  mutable ch_retx : int;
  mutable ch_retx_wait : float;
      (* virtual time spent waiting on expired retransmission timers *)
  mutable ch_stalled_rounds : int;
      (* consecutive timer rounds that retransmitted without the ack
         cursor moving; bounded by [retx_limit] when set *)
  (* receiver *)
  mutable ch_next_expected : int;
  ch_ooo : (int, Dr_state.Value.t) Hashtbl.t;
  mutable ch_delivered : int;
  mutable ch_dups : int;
  mutable ch_fenced : int;
}

type t = {
  bus : Bus.t;
  p : params;
  channels : (Bus.endpoint * Bus.endpoint, channel) Hashtbl.t;
  mutable cover_all : bool;
}

let record t fmt =
  Format.kasprintf
    (fun detail ->
      Dr_sim.Trace.record (Bus.trace t.bus) ~time:(Bus.now t.bus)
        ~category:"retx" ~detail)
    fmt

let ep_pair src dst =
  Printf.sprintf "%s.%s -> %s.%s" (fst src) (snd src) (fst dst) (snd dst)

let create_channel t ~src ~dst =
  let ch =
    { ch_src = src;
      ch_dst = dst;
      ch_epoch = 0;
      ch_next_seq = 0;
      ch_unacked = Hashtbl.create 8;
      ch_lowest_unacked = 0;
      ch_rto = t.p.rto_initial;
      ch_timer_armed = false;
      ch_timer_gen = 0;
      ch_sent = 0;
      ch_retx = 0;
      ch_retx_wait = 0.0;
      ch_stalled_rounds = 0;
      ch_next_expected = 0;
      ch_ooo = Hashtbl.create 8;
      ch_delivered = 0;
      ch_dups = 0;
      ch_fenced = 0 }
  in
  Hashtbl.replace t.channels (src, dst) ch;
  record t "channel %s opened" (ep_pair src dst);
  ch

(* ----------------------------------------------------------- receiver *)

(* Cumulative ack: "everything below [ch_next_expected] arrived". Acks
   need no epoch — they report receiver progress, which only moves
   forward and is meaningful to whichever generation holds the sender
   state after a rename. *)
let on_ack t ch ~acked =
  ignore t;
  if acked >= ch.ch_lowest_unacked then begin
    for seq = ch.ch_lowest_unacked to acked do
      Hashtbl.remove ch.ch_unacked seq
    done;
    ch.ch_lowest_unacked <- acked + 1;
    ch.ch_stalled_rounds <- 0;
    if Hashtbl.length ch.ch_unacked = 0 then begin
      (* everything out is acked: disarm the timer and forget the
         backoff — the next fresh frame starts from a clean RTO *)
      ch.ch_timer_gen <- ch.ch_timer_gen + 1;
      ch.ch_timer_armed <- false;
      ch.ch_rto <- t.p.rto_initial
    end
  end

let send_ack t ch =
  let acked = ch.ch_next_expected - 1 in
  Bus.transmit t.bus ~src:ch.ch_dst ~dst:ch.ch_src (fun () ->
      on_ack t ch ~acked)

let rec drain_in_order t ch =
  match Hashtbl.find_opt ch.ch_ooo ch.ch_next_expected with
  | None -> ()
  | Some value ->
    if Bus.deliver_now t.bus ~dst:ch.ch_dst value then begin
      Hashtbl.remove ch.ch_ooo ch.ch_next_expected;
      ch.ch_next_expected <- ch.ch_next_expected + 1;
      ch.ch_delivered <- ch.ch_delivered + 1;
      drain_in_order t ch
    end

let on_data t ch ~epoch ~seq value =
  if epoch <> ch.ch_epoch then begin
    ch.ch_fenced <- ch.ch_fenced + 1;
    record t "fenced stale frame on %s: epoch %d (current %d), seq %d"
      (ep_pair ch.ch_src ch.ch_dst) epoch ch.ch_epoch seq
  end
  else if seq < ch.ch_next_expected then begin
    (* already delivered: a retransmission whose original got through,
       or an injected duplicate — suppress, but re-ack so the sender
       stops resending *)
    ch.ch_dups <- ch.ch_dups + 1;
    record t "dup suppressed on %s: seq %d (expected %d)"
      (ep_pair ch.ch_src ch.ch_dst) seq ch.ch_next_expected;
    send_ack t ch
  end
  else if seq = ch.ch_next_expected then begin
    if Bus.deliver_now t.bus ~dst:ch.ch_dst value then begin
      ch.ch_next_expected <- seq + 1;
      ch.ch_delivered <- ch.ch_delivered + 1;
      drain_in_order t ch;
      send_ack t ch
    end
    (* destination gone or host down: no ack — the sender's timer keeps
       the frame alive until the destination is back (or renamed) *)
  end
  else begin
    if not (Hashtbl.mem ch.ch_ooo seq) then Hashtbl.replace ch.ch_ooo seq value;
    send_ack t ch
  end

(* ------------------------------------------------------------- sender *)

let send_frame t ch ~seq value =
  let epoch = ch.ch_epoch in
  Bus.transmit t.bus ~src:ch.ch_src ~dst:ch.ch_dst (fun () ->
      on_data t ch ~epoch ~seq value)

let rec arm_timer t ch =
  if not ch.ch_timer_armed then begin
    ch.ch_timer_armed <- true;
    let gen = ch.ch_timer_gen in
    let label =
      Engine.label
        ~touch:[ fst ch.ch_src; fst ch.ch_dst ]
        ~info:
          (Printf.sprintf "retx-timer %s.%s -> %s.%s" (fst ch.ch_src)
             (snd ch.ch_src) (fst ch.ch_dst) (snd ch.ch_dst))
        "timer"
    in
    Engine.schedule ~label (Bus.engine t.bus) ~delay:ch.ch_rto (fun () ->
        on_timeout t ch ~gen)
  end

and on_timeout t ch ~gen =
  if gen = ch.ch_timer_gen && ch.ch_timer_armed then begin
    ch.ch_timer_armed <- false;
    if Hashtbl.length ch.ch_unacked > 0 then
      if t.p.retx_limit > 0 && ch.ch_stalled_rounds >= t.p.retx_limit then
        (* retransmission budget spent without ack progress: go quiet
           (timer stays disarmed) until a new send or an ack revives the
           channel. Keeps the model checker's state space finite — an
           adversary that starves the ack path can otherwise pump an
           unbounded retransmission storm. *)
        record t "retx limit reached on %s: %d round(s), pausing"
          (ep_pair ch.ch_src ch.ch_dst)
          ch.ch_stalled_rounds
      else begin
        (* the expired timer ran for [ch_rto]: that whole wait is
           retransmission backoff, attributable to the channel's
           destination (sampled by the drain phase via the bus) *)
        ch.ch_retx_wait <- ch.ch_retx_wait +. ch.ch_rto;
        for seq = ch.ch_lowest_unacked to ch.ch_next_seq - 1 do
          match Hashtbl.find_opt ch.ch_unacked seq with
          | None -> ()
          | Some value ->
            ch.ch_retx <- ch.ch_retx + 1;
            record t "retransmit on %s: seq %d (epoch %d, rto %.2f)"
              (ep_pair ch.ch_src ch.ch_dst) seq ch.ch_epoch ch.ch_rto;
            send_frame t ch ~seq value
        done;
        ch.ch_stalled_rounds <- ch.ch_stalled_rounds + 1;
        ch.ch_rto <- Float.min t.p.rto_max (ch.ch_rto *. t.p.rto_backoff);
        arm_timer t ch
      end
  end

let send t ~src ~dst value =
  let ch =
    match Hashtbl.find_opt t.channels (src, dst) with
    | Some ch -> Some ch
    | None -> if t.cover_all then Some (create_channel t ~src ~dst) else None
  in
  match ch with
  | None -> false
  | Some ch ->
    let seq = ch.ch_next_seq in
    ch.ch_next_seq <- seq + 1;
    Hashtbl.replace ch.ch_unacked seq value;
    ch.ch_sent <- ch.ch_sent + 1;
    ch.ch_stalled_rounds <- 0;
    send_frame t ch ~seq value;
    arm_timer t ch;
    true

(* ------------------------------------------------------------- rename *)

(* A reconfiguration renamed [old_instance] to [new_instance]: re-key
   every channel whose endpoints mention the old name, keeping the full
   sequence state, so the clone neither replays nor skips in-flight
   messages. With [fence = true] the epoch is also bumped: frames the
   displaced generation already put on the wire arrive with the old
   epoch and are discarded; the unacked ones are retransmitted under
   the new epoch (and new name) by the surviving timer. *)
let rename t ~old_instance ~new_instance ~fence =
  let affected =
    Hashtbl.fold
      (fun key ch acc ->
        if
          String.equal (fst (fst key)) old_instance
          || String.equal (fst (snd key)) old_instance
        then (key, ch) :: acc
        else acc)
      t.channels []
  in
  if affected <> [] then begin
    List.iter
      (fun (key, ch) ->
        Hashtbl.remove t.channels key;
        let fix (instance, iface) =
          if String.equal instance old_instance then (new_instance, iface)
          else (instance, iface)
        in
        ch.ch_src <- fix ch.ch_src;
        ch.ch_dst <- fix ch.ch_dst;
        if fence then ch.ch_epoch <- ch.ch_epoch + 1;
        Hashtbl.replace t.channels (ch.ch_src, ch.ch_dst) ch)
      affected;
    record t "%d channel(s) of %s transferred to %s%s" (List.length affected)
      old_instance new_instance
      (if fence then " (fenced)" else "")
  end

(* -------------------------------------------------------------- stats *)

type stats = {
  st_src : Bus.endpoint;
  st_dst : Bus.endpoint;
  st_epoch : int;
  st_sent : int;
  st_retx : int;
  st_retx_wait : float;
  st_delivered : int;
  st_dups : int;
  st_fenced : int;
  st_unacked : int;
}

let stats t =
  Hashtbl.fold
    (fun _ ch acc ->
      { st_src = ch.ch_src;
        st_dst = ch.ch_dst;
        st_epoch = ch.ch_epoch;
        st_sent = ch.ch_sent;
        st_retx = ch.ch_retx;
        st_retx_wait = ch.ch_retx_wait;
        st_delivered = ch.ch_delivered;
        st_dups = ch.ch_dups;
        st_fenced = ch.ch_fenced;
        st_unacked = Hashtbl.length ch.ch_unacked }
      :: acc)
    t.channels []
  |> List.sort (fun a b -> compare (a.st_src, a.st_dst) (b.st_src, b.st_dst))

let total_retx t = List.fold_left (fun acc s -> acc + s.st_retx) 0 (stats t)

(* Retransmission wait attributable to one destination instance: every
   expired timer on a channel whose frames head there. *)
let retx_wait_to t ~instance =
  Hashtbl.fold
    (fun _ ch acc ->
      if String.equal (fst ch.ch_dst) instance then acc +. ch.ch_retx_wait
      else acc)
    t.channels 0.0

let total_unacked t =
  List.fold_left (fun acc s -> acc + s.st_unacked) 0 (stats t)

(* -------------------------------------------------------------- admin *)

let attach ?(params = default_params) bus =
  let t = { bus; p = params; channels = Hashtbl.create 32; cover_all = false } in
  Bus.set_transport bus
    { Bus.tr_send = (fun ~src ~dst value -> send t ~src ~dst value);
      tr_rename =
        (fun ~old_instance ~new_instance ~fence ->
          rename t ~old_instance ~new_instance ~fence);
      tr_retx_wait = (fun ~instance -> retx_wait_to t ~instance) };
  (* Export channel statistics as gauges, sampled at snapshot time.
     Requires the registry to be on the bus before [attach]. *)
  (match Bus.metrics bus with
  | Some registry ->
    Dr_obs.Metrics.register_collector registry (fun r ->
        let route s =
          Printf.sprintf "%s.%s->%s.%s" (fst s.st_src) (snd s.st_src)
            (fst s.st_dst) (snd s.st_dst)
        in
        List.iter
          (fun s ->
            let labels = [ ("route", route s) ] in
            let g name v =
              Dr_obs.Metrics.set_gauge r ~labels name (float_of_int v)
            in
            g "reliable.sent" s.st_sent;
            g "reliable.retx" s.st_retx;
            g "reliable.delivered" s.st_delivered;
            g "reliable.dups" s.st_dups;
            g "reliable.fenced" s.st_fenced;
            g "reliable.unacked" s.st_unacked)
          (stats t);
        Dr_obs.Metrics.set_gauge r "reliable.retx_total"
          (float_of_int (total_retx t));
        Dr_obs.Metrics.set_gauge r "reliable.unacked_total"
          (float_of_int (total_unacked t));
        (* per-domain attribution on a sharded bus: aggregate channel
           traffic by the destination instance's broker domain — route
           labels stay useful on small fleets, but at 100k instances
           only the bounded per-domain series are tractable *)
        if Bus.shard_count bus > 1 then begin
          let shards = Bus.shard_count bus in
          let sent = Array.make shards 0
          and retx = Array.make shards 0
          and unacked = Array.make shards 0 in
          List.iter
            (fun s ->
              match Bus.domain_of_instance bus ~instance:(fst s.st_dst) with
              | Some d when d >= 0 && d < shards ->
                sent.(d) <- sent.(d) + s.st_sent;
                retx.(d) <- retx.(d) + s.st_retx;
                unacked.(d) <- unacked.(d) + s.st_unacked
              | Some _ | None -> ())
            (stats t);
          Array.iteri
            (fun d v ->
              let labels = [ ("domain", string_of_int d) ] in
              Dr_obs.Metrics.set_gauge r ~labels "reliable.domain_sent"
                (float_of_int v);
              Dr_obs.Metrics.set_gauge r ~labels "reliable.domain_retx"
                (float_of_int retx.(d));
              Dr_obs.Metrics.set_gauge r ~labels "reliable.domain_unacked"
                (float_of_int unacked.(d)))
            sent
        end)
  | None -> ());
  t

let detach t = Bus.clear_transport t.bus

let enable_all t = t.cover_all <- true

let enable_route t ~src ~dst =
  match Hashtbl.find_opt t.channels (src, dst) with
  | Some _ -> ()
  | None -> ignore (create_channel t ~src ~dst)

