(* Broker domains: the bus's process table, partitioned.

   A domain owns one shard of the instance fleet. Its process table is
   an arena — a flat array of slots with a free list — instead of a
   hashtable, so the delivery hot path is an array index, not a string
   hash. Handles are generational: freeing a slot bumps its generation,
   so a handle cached before a kill can never alias an instance that
   later reuses the slot — the stale handle simply stops resolving and
   the caller falls back to a by-name lookup.

   [Batch] is the inter-domain router's per-hop batching structure:
   messages bound for the same destination domain at the same virtual
   delivery time accumulate into one batch, and a single event-queue
   pop drains them all. With shard count 1 the bus never opens a batch,
   so the classic one-event-per-message path (and its golden traces)
   is untouched. *)

type handle = { h_dom : int; h_slot : int; h_gen : int }

let null_handle = { h_dom = -1; h_slot = -1; h_gen = -1 }

let is_null h = h.h_slot < 0

type 'a t = {
  dom_id : int;
  mutable slots : 'a option array;
  mutable gens : int array;
  mutable used : int;  (* high-water mark: slots at or beyond are virgin *)
  mutable free : int list;
  mutable live : int;
  (* traffic accounting, written by the bus on its hot path (plain ints,
     no labels, no hashing) and read back by [Bus.domain_stats] *)
  mutable routed : int;
  mutable delivered : int;
  mutable batches : int;
  mutable batched : int;
}

let create ~id =
  { dom_id = id;
    slots = [||];
    gens = [||];
    used = 0;
    free = [];
    live = 0;
    routed = 0;
    delivered = 0;
    batches = 0;
    batched = 0 }

let id t = t.dom_id
let live_count t = t.live

let grow t =
  let capacity = Array.length t.slots in
  if t.used = capacity then begin
    let capacity' = max 16 (2 * capacity) in
    let slots' = Array.make capacity' None in
    let gens' = Array.make capacity' 0 in
    Array.blit t.slots 0 slots' 0 t.used;
    Array.blit t.gens 0 gens' 0 t.used;
    t.slots <- slots';
    t.gens <- gens'
  end

let alloc t v =
  let slot =
    match t.free with
    | slot :: rest ->
      t.free <- rest;
      slot
    | [] ->
      grow t;
      let slot = t.used in
      t.used <- t.used + 1;
      slot
  in
  t.slots.(slot) <- Some v;
  t.live <- t.live + 1;
  { h_dom = t.dom_id; h_slot = slot; h_gen = t.gens.(slot) }

(* Freeing bumps the generation, so every handle minted for this slot
   so far is dead from here on — the aliasing guard. *)
let free t h =
  if h.h_slot >= 0 && h.h_slot < t.used && t.gens.(h.h_slot) = h.h_gen
     && Option.is_some t.slots.(h.h_slot)
  then begin
    t.slots.(h.h_slot) <- None;
    t.gens.(h.h_slot) <- t.gens.(h.h_slot) + 1;
    t.free <- h.h_slot :: t.free;
    t.live <- t.live - 1
  end

let get t h =
  if h.h_slot >= 0 && h.h_slot < t.used && t.gens.(h.h_slot) = h.h_gen then
    t.slots.(h.h_slot)
  else None

let iter_live t f =
  for slot = 0 to t.used - 1 do
    match t.slots.(slot) with Some v -> f v | None -> ()
  done

let routed t = t.routed
let delivered t = t.delivered
let batches t = t.batches
let batched t = t.batched
let count_routed t = t.routed <- t.routed + 1
let count_delivered t = t.delivered <- t.delivered + 1

let count_batch t ~size =
  t.batches <- t.batches + 1;
  t.batched <- t.batched + size

(* ------------------------------------------------------------- batches *)

module Batch = struct
  (* Open batches keyed by exact virtual delivery time. Delivery times
     repeat heavily (fixed latencies, lock-stepped workloads), which is
     precisely what makes batching pay; a jittered message lands in its
     own batch and costs what it always cost. Batches are removed when
     drained, so the table only ever holds the in-flight horizon. *)
  type 'm t = {
    pending : (float, 'm list ref) Hashtbl.t;
    mutable in_flight : int;
  }

  let create () = { pending = Hashtbl.create 32; in_flight = 0 }

  (* [true] iff this message opened a new batch — the caller then
     schedules exactly one drain event for (domain, due). *)
  let add t ~due m =
    t.in_flight <- t.in_flight + 1;
    match Hashtbl.find_opt t.pending due with
    | Some cell ->
      cell := m :: !cell;
      false
    | None ->
      Hashtbl.replace t.pending due (ref [ m ]);
      true

  (* Messages in insertion order, so per-route FIFO is preserved. *)
  let drain t ~due =
    match Hashtbl.find_opt t.pending due with
    | None -> []
    | Some cell ->
      Hashtbl.remove t.pending due;
      let messages = List.rev !cell in
      t.in_flight <- t.in_flight - List.length messages;
      messages

  let in_flight t = t.in_flight
end
