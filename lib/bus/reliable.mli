(** Opt-in per-route reliable delivery over the faulty bus.

    Installed as the bus's {!Bus.transport}, the layer gives enabled
    routes exactly-once delivery under the fault plane: sequence
    numbers stamped at the sending endpoint, receiver-side duplicate
    suppression, cumulative acks, and retransmission with exponential
    backoff on virtual time. Frames and acks ride {!Bus.transmit}, so
    injected [Drop]/[Duplicate] decisions are {e masked} by the
    protocol rather than bypassed, and the seeded PRNG draws stay
    replayable.

    Reconfiguration: {!Dr_reconfig.Journal.rename_transport} re-keys a
    renamed instance's channels with their full sequence state, so a
    clone neither replays nor skips in-flight messages. A rename with
    [fence = true] (supervisor restarting a {e suspected} instance)
    additionally bumps the channel epoch: frames the displaced
    generation already sent are discarded on arrival — the
    false-positive loser's output is inert.

    Every protocol event traces under ["retx"]. Without {!attach} the
    bus is byte-for-byte the classic fire-and-forget implementation. *)

type t

type params = {
  rto_initial : float;  (** first retransmission timeout *)
  rto_backoff : float;  (** multiplier per retransmission round *)
  rto_max : float;  (** backoff ceiling *)
  retx_limit : int;
      (** with a positive limit, a channel that has retransmitted this
          many consecutive timer rounds without the cumulative-ack
          cursor moving goes quiet until a new send or an ack revives
          it; [0] (the default) retransmits forever. The model checker
          runs with a small limit so an adversary that keeps starving
          the ack path cannot pump an unbounded retransmission storm
          (every in-flight copy is explorer state). *)
}

val default_params : params
(** [rto_initial = 4.0], [rto_backoff = 2.0], [rto_max = 16.0],
    [retx_limit = 0]. *)

val attach : ?params:params -> Bus.t -> t
(** Install the layer as the bus transport. No route is reliable until
    {!enable_route} or {!enable_all}. *)

val detach : t -> unit
(** Uninstall; the bus reverts to fire-and-forget. In-flight channel
    state is abandoned. *)

val enable_all : t -> unit
(** Every route gets a reliable channel, created on first send. *)

val enable_route : t -> src:Bus.endpoint -> dst:Bus.endpoint -> unit
(** Make one route reliable (creates its channel eagerly). *)

type stats = {
  st_src : Bus.endpoint;
  st_dst : Bus.endpoint;
  st_epoch : int;
  st_sent : int;  (** fresh frames sent *)
  st_retx : int;  (** retransmissions *)
  st_retx_wait : float;
      (** virtual time spent on expired retransmission timers *)
  st_delivered : int;  (** in-order deliveries to the destination queue *)
  st_dups : int;  (** duplicates suppressed *)
  st_fenced : int;  (** stale-epoch frames discarded *)
  st_unacked : int;  (** frames still awaiting ack *)
}

val stats : t -> stats list
(** Per-channel counters, sorted by (src, dst). *)

val total_retx : t -> int

val total_unacked : t -> int

val retx_wait_to : t -> instance:string -> float
(** Accumulated retransmission-timer wait on channels towards
    [instance] — what the bus exposes as
    {!Bus.transport_retx_wait}. The reconfiguration scripts sample it
    around the drain phase to report how much of the quiescence wait
    was really reliable-layer backoff ([drain.retransmit]). *)
