(** The software toolbus (POLYLITH's role in the paper).

    The bus owns the simulated world: hosts (each with an architecture),
    running module instances (MiniProc machines), per-interface message
    queues, directed message routes, and the discrete-event engine that
    interleaves everything deterministically.

    Responsibilities mirror the paper's description of POLYLITH:
    initiating execution of each module, establishing communication
    channels, routing messages (with inter-host latency and
    heterogeneous re-encoding), reporting the current configuration, and
    carrying divulged state between interfaces during reconfiguration. *)

type host = { host_name : string; arch : Dr_state.Arch.t }

type endpoint = string * string
(** (instance name, interface name) *)

type params = {
  instr_cost : float;       (** virtual time per executed instruction *)
  quantum : int;            (** max instructions per scheduling slice *)
  local_latency : float;    (** message latency within a host *)
  remote_latency : float;   (** message latency across hosts *)
}

val default_params : params

type t

val create : ?params:params -> ?shards:int -> hosts:host list -> unit -> t
(** [shards] partitions the fleet into that many broker domains
    (default 1). With one shard the bus runs the classic per-message
    delivery path, byte-identical to every pinned golden trace; with
    more, instances are assigned to domains round-robin at spawn, the
    hot path resolves destinations through flat-array arenas instead of
    hashtables, and deliveries bound for the same domain at the same
    virtual instant share one event-queue pop ({!Domain.Batch}).
    Delivery contents and per-route order are unchanged at any shard
    count. *)

val engine : t -> Dr_sim.Engine.t
val trace : t -> Dr_sim.Trace.t
val now : t -> float

val set_metrics : t -> Dr_obs.Metrics.t -> unit
(** Attach a metrics registry: bus counters (messages routed, drops,
    spawns/kills, reconfiguration signals), an in-flight gauge, and
    snapshot-time collectors for queue depths. Purely passive — no trace
    entries, no scheduled events, no PRNG draws — so golden traces stay
    byte-identical with metrics attached. [create] auto-attaches a fresh
    registry when the [DRC_METRICS] environment variable is set. *)

val metrics : t -> Dr_obs.Metrics.t option
val params : t -> params

val hosts : t -> host list
val find_host : t -> string -> host option

(** {1 Programs and processes} *)

val register_program : t -> Dr_lang.Ast.program -> (unit, string) result
(** Typecheck, lower once, and file under the program's module name. *)

val registered_modules : t -> string list

val registered_program : t -> string -> Dr_lang.Ast.program option

val spawn :
  t ->
  instance:string ->
  module_name:string ->
  host:string ->
  ?spec:Dr_mil.Spec.module_spec ->
  ?status:string ->
  unit ->
  (unit, string) result
(** Start an instance of a registered module on a host and schedule its
    first quantum. [status] is returned by [mh_getstatus] ("normal" by
    default; pass "clone" for a restoration). *)

val kill : t -> instance:string -> unit
(** Remove a process: it stops running, its routes remain until deleted
    explicitly (reconfiguration scripts delete them). Idempotent: killing
    an already-removed instance records an audit trace entry. *)

val spawn_snapshot :
  t ->
  of_instance:string ->
  instance:string ->
  host:string ->
  (unit, string) result
(** Machine-specific cloning (the strawman of §1.2, used by the
    baselines): deep-copy the running machine of [of_instance] —
    program counters, frames, heap, everything — into a new process on
    [host]. No architecture translation is possible for such a snapshot;
    callers must enforce same-architecture moves themselves. *)

val instances : t -> string list
(** Names of live instances. *)

val instance_host : t -> instance:string -> string option

val instance_generation : t -> instance:string -> int option
(** Monotone spawn generation of the live incarnation of [instance],
    [None] if it is not live. Virtual time can stand still across a
    kill-and-respawn of the same name, so a timestamp cannot distinguish
    the two incarnations; this counter can. The failure detector stamps
    heartbeat evidence with it. *)

val queue_contents : t -> instance:string -> (string * Dr_state.Value.t list) list
(** Snapshot of the instance's input queues (interface, queued values),
    sorted by interface name — folded into the model checker's state
    fingerprint. *)

val instance_spec : t -> instance:string -> Dr_mil.Spec.module_spec option

val instance_module : t -> instance:string -> string option

val machine : t -> instance:string -> Dr_interp.Machine.t option
(** Direct access to the underlying machine (tests, benchmarks,
    baselines). *)

val process_status : t -> instance:string -> Dr_interp.Machine.status option

val outputs : t -> instance:string -> string list
(** Lines printed by the instance so far, oldest first. *)

type roster_entry = {
  r_instance : string;
  r_module : string;
  r_host : string;
  r_status : Dr_interp.Machine.status option;  (** [None] once removed *)
  r_started : float;
  r_ended : float option;  (** removal time *)
  r_instrs : int;
}

val roster : t -> roster_entry list
(** Every instance ever spawned, in spawn order — including removed
    ones. Used by reporting and the benchmarks. *)

val wake : t -> instance:string -> unit
(** Force a blocked/sleeping machine ready and reschedule it. Safe on a
    removed or stopped instance: records an audit trace entry instead. *)

(** {1 Durable control plane}

    The reconfiguration journal ({!Dr_reconfig.Journal}) appends its
    records to a write-ahead log attached here, and the fault plane can
    arm a {e controller crash}: the controller (the reconfiguration
    manager driving the current script) dies immediately after its
    [N]-th control-log append completes. The crash point sits after the
    logged bus operation has been applied, so every record on the log
    corresponds to an applied operation and recovery's undo is exact.
    The raise is swallowed by an engine guard — the application fleet
    keeps running with the controller dead, exactly the stranded state
    {!Dr_reconfig.Recovery} exists to repair. With no WAL attached,
    none of this machinery runs. *)

exception Controller_crash
(** Raised (out of the journal's logging tick) when an armed controller
    crash fires. Never escapes the engine loop: {!arm_ctl_crash}
    installs a guard that abandons the in-flight event. *)

val set_wal : t -> Dr_wal.Wal.t -> unit
(** Attach the control-plane write-ahead log. *)

val wal : t -> Dr_wal.Wal.t option

val arm_ctl_crash : t -> after:int -> unit
(** Arm a single-shot controller crash after the [after]-th control-log
    append (1-based, counted over the bus lifetime — see
    {!ctl_appends}). *)

val ctl_tick : t -> unit
(** Count one control-log append; fires the armed crash when the count
    is reached ([ctl_down] becomes true and {!Controller_crash} is
    raised). Called by the journal, once per logged record, after the
    corresponding bus operation applied. *)

val ctl_appends : t -> int
(** Control-log appends so far (the crash-sweep index space). *)

val controller_down : t -> bool
(** True between an armed crash firing and {!recover_controller} —
    script continuations (deadlines, retries) check this and go
    silent, like callbacks into a dead process would. *)

val recover_controller : t -> unit
(** Bring the controller back (recovery replay runs after this). *)

val next_script_id : t -> int
(** Fresh monotonic script id for journal [Begin] records. *)

val note_script_id : t -> int -> unit
(** Advance the script-id counter to at least [sid] (recovery calls
    this with ids read back from the log so restarted controllers never
    reuse one). *)

val ctl_scripts_open : t -> int
(** Scripts begun and not yet committed or fully rolled back. The
    journal checkpoints the log only at zero — a checkpoint would
    garbage-collect an open script's records. Reset by
    {!recover_controller}. *)

val ctl_script_opened : t -> unit

val ctl_script_closed : t -> unit

(** {1 Fault plane}

    Installed by {!Faults} from a declarative plan; every injection is
    driven by the seeded PRNG and emits a ["fault"] trace entry, so runs
    stay deterministic and replayable from the seed. With no hooks
    installed the bus is byte-for-byte identical to the fault-free
    implementation (pinned by the golden-trace tests). *)

type fault_decision = Deliver | Drop | Duplicate

type fault_hooks = {
  fh_message : src:endpoint -> dst:endpoint -> fault_decision;
      (** consulted once per (source, destination) pair of every send *)
  fh_jitter : unit -> float;  (** extra latency added to each hop *)
}

val set_fault_hooks : t -> fault_hooks -> unit

val clear_fault_hooks : t -> unit

val host_is_down : t -> string -> bool

val crash_host : t -> host:string -> unit
(** Mark the host down: every resident instance's machine transitions to
    [Crashed], its queues are dropped (with audit trace entries), and
    in-flight deliveries to the host fail until {!recover_host}. *)

val recover_host : t -> host:string -> unit
(** Mark the host up again. Instances crashed by {!crash_host} stay
    crashed — restarting them is a supervisor's job
    ({!Dr_reconfig.Supervisor}). *)

val crash_process : t -> instance:string -> reason:string -> unit
(** Injected process crash (kill -9): the machine transitions to
    [Crashed reason]; the instance stays in the roster until killed. *)

(** {1 Transport interception}

    An installed transport (the reliable-delivery layer,
    {!Dr_bus.Reliable}) sees every per-destination send of
    [route_message] before the default fire-and-forget path runs.
    Returning [true] from [tr_send] claims the message; [false] falls
    through to the classic path, byte-for-byte. *)

type transport = {
  tr_send : src:endpoint -> dst:endpoint -> Dr_state.Value.t -> bool;
  tr_rename : old_instance:string -> new_instance:string -> fence:bool -> unit;
      (** re-key per-route delivery state when a reconfiguration renames
          an instance; [fence = true] additionally invalidates frames
          sent under the old name (generation fencing) *)
  tr_retx_wait : instance:string -> float;
      (** cumulative virtual time the transport's retransmission timers
          have spent redelivering frames towards [instance] *)
}

val set_transport : t -> transport -> unit

val clear_transport : t -> unit

val has_transport : t -> bool

val transport_rename :
  t -> old_instance:string -> new_instance:string -> fence:bool -> unit
(** Forward a rename to the installed transport; no-op without one. *)

val transport_retx_wait : t -> instance:string -> float
(** Cumulative retransmission-timer wait towards [instance] (0 without
    a transport). Sampled around the drain phase of a reconfiguration
    to separate reliable-layer backoff from genuine quiescence time. *)

val transmit :
  t -> src:endpoint -> dst:endpoint -> (unit -> unit) -> unit
(** One raw timed hop: run the callback at the receiving end after the
    inter-host latency, subject to the fault hooks (a [Drop] decision
    consumes a PRNG draw and records the loss like any message). The
    primitive under reliable frames, acks and detector heartbeats. *)

val deliver_now : t -> dst:endpoint -> Dr_state.Value.t -> bool
(** Enqueue a value at [dst] immediately — no latency, no fault
    decision, no trace on success. [false] when the destination is gone
    or its host is down (the reliable layer then withholds its ack). *)

val on_activity : t -> (string -> unit) option -> unit
(** Subscribe to message-send activity: the hook is called with the
    sending instance's name on every send. Liveness evidence for
    {!Dr_reconfig.Detector}; never traces. *)

type delivery_kind =
  | Fresh     (** first enqueue of this value at a destination *)
  | Transfer  (** requeue of an already-delivered value
                  (a replacement's [copy_queue]) *)

val set_delivery_observer :
  t -> (dst:endpoint -> kind:delivery_kind -> Dr_state.Value.t -> unit) option -> unit
(** Subscribe to successful input-queue enqueues, on every delivery path
    (classic, sharded, and the reliable layer's [deliver_now]). Strictly
    passive: never schedules, never traces. The model checker's
    exactly-once monitor counts [Fresh] deliveries per message. *)

(** {1 Image quarantine}

    State-image integrity support: the fault plane can arm a one-shot
    corruption for an instance's next capture, and any layer that
    detects a bad image (checksum or digest mismatch) quarantines it
    here with a ["quarantine"] trace entry instead of restoring it. *)

type quarantined = {
  q_time : float;
  q_instance : string;
  q_reason : string;
  q_byte_size : int;
}

val arm_image_corruption : t -> instance:string -> unit

val consume_image_corruption : t -> instance:string -> bool
(** [true] exactly once after an arm: the caller must corrupt the
    in-flight encoded image. Records the injection as a ["fault"]. *)

val quarantine_image :
  t -> instance:string -> reason:string -> byte_size:int -> unit

val quarantined : t -> quarantined list
(** Quarantine log, oldest first. *)

(** {1 Routes and queues} *)

val add_route : t -> src:endpoint -> dst:endpoint -> unit
(** Messages written at [src] are delivered to [dst]'s queue. *)

val del_route : t -> src:endpoint -> dst:endpoint -> unit

val routes_from : t -> endpoint -> endpoint list

val routes_to : t -> endpoint -> endpoint list

val all_routes : t -> (endpoint * endpoint) list

val pending_messages : t -> endpoint -> int
(** Queue length at a receiving endpoint. *)

val copy_queue : t -> src:endpoint -> dst:endpoint -> unit
(** Move the pending messages of [src] to [dst] (the script command
    ["cq"] in Fig. 5). *)

val drop_queue : t -> endpoint -> unit
(** Discard pending messages (["rmq"]). *)

val take_queue : t -> endpoint -> Dr_state.Value.t list
(** Drain and return the pending messages, oldest first (used by scripts
    that must park messages while an instance is swapped). *)

val peek_queue : t -> endpoint -> Dr_state.Value.t list
(** The pending messages, oldest first, without draining them (used by
    the reconfiguration journal to snapshot undo state; no trace). *)

val inject : t -> dst:endpoint -> Dr_state.Value.t -> unit
(** Test/driver helper: place a message directly in a queue. *)

(** {1 Drain-aware routing}

    A replica group can be registered as a {e drain group}: siblings
    that serve the same requests. While a member is marked draining
    (the first phase of a rolling replacement), messages delivered to
    it are redirected to a live, non-draining sibling so the member's
    queue runs dry while the group keeps absorbing traffic. With no
    group registered — or no member marked — every delivery path is
    byte-for-byte the classic one (pinned by the golden traces). *)

val set_drain_group : t -> members:string list -> unit
(** Register (or re-register, after a member is renamed by a
    replacement) the sibling set. Each member maps to the full list. *)

val drain_group : t -> instance:string -> string list
(** The registered siblings of [instance] ([[]] when none). *)

val mark_draining : t -> instance:string -> unit
(** Stop admitting new deliveries: subsequent messages for [instance]
    are redirected to a sibling chosen by {!resolve_drain}. Messages
    already queued stay — draining means serving them out. *)

val clear_draining : t -> instance:string -> unit

val is_draining : t -> instance:string -> bool

val draining_instances : t -> string list
(** Every instance currently marked draining, sorted — lets a recovery
    path clear marks left behind by a controller that died mid-drain,
    even when a supervisor has since renamed the generation. *)

val resolve_drain : t -> instance:string -> string option
(** Where a request addressed to [instance] should go right now:
    [instance] itself when it is admitting (live, not draining);
    otherwise a live non-draining sibling (rotating over the group for
    balance); otherwise [instance] itself if it is at least alive
    (draining but present beats dropping); [None] when the whole group
    is unavailable — the caller must {e shed} the request explicitly
    (and count it) rather than lose it silently. Open-loop load
    generators call this at send time; the bus applies the same rule
    to routed deliveries. *)

(** {1 Failure-detector tunables}

    Suspicion parameters for {!Dr_reconfig.Detector}s started on this
    bus. Per-bus rather than compile-time so a rolling-replacement
    canary window can widen the detector's patience first — a replace
    landing inside one heartbeat interval must not race the detector
    into a false suspicion (and a double replacement). *)

type detector_config = {
  dc_period : float;  (** heartbeat/check period *)
  dc_timeout : float;  (** silence beyond this gains suspicion *)
  dc_threshold : int;  (** consecutive silent checks until suspected *)
}

val default_detector_config : detector_config
(** period 1.0, timeout 3.0, threshold 2 — the former compile-time
    constants. *)

val detector_config : t -> detector_config

val set_detector_config : t -> detector_config -> unit
(** Rejects non-positive period/timeout/threshold with
    [Invalid_argument]. Detectors read the config at [start]; changing
    it does not retune detectors already running. *)

(** {1 Reconfiguration support} *)

val signal_reconfig : t -> instance:string -> unit
(** Deliver the reconfiguration signal (SIGHUP in the paper). *)

val on_divulge : t -> instance:string -> (Dr_state.Image.t -> unit) -> unit
(** One-shot callback invoked when the instance runs [mh_encode]. On a
    removed or already-stopped instance the callback would never fire;
    it is discarded with an ["audit"] trace entry (parity with
    {!wake}). *)

val cancel_divulge : t -> instance:string -> unit
(** Disarm a pending {!on_divulge} callback (rollback of a script whose
    deadline expired before the module complied). A later divulge then
    parks its image for {!take_divulged} instead of invoking anything. *)

val take_divulged : t -> instance:string -> Dr_state.Image.t option

val deposit_state :
  t -> instance:string -> ?expect:int64 -> Dr_state.Image.t -> unit
(** Hand a state image to a (possibly blocked) [mh_decode]. On a
    removed or stopped instance, records an ["audit"] trace entry
    instead (parity with {!wake}). When [expect] is given, the image's
    {!Dr_state.Image.digest} is verified first; a mismatch quarantines
    the image ({!quarantine_image}) and nothing is fed. *)

(** {1 Running} *)

val run : ?until:float -> ?max_events:int -> t -> unit

val run_while : t -> ?max_events:int -> (unit -> bool) -> unit
(** Keep firing events while the predicate holds and events remain. *)

val quiescent : t -> bool
(** No events pending (all processes parked or finished). *)

(** {1 Broker domains} *)

val shard_count : t -> int

val domain_of_instance : t -> instance:string -> int option
(** The broker domain a live instance is assigned to. *)

type domain_stats = {
  d_id : int;
  d_live : int;       (** instances currently in the domain's arena *)
  d_routed : int;     (** messages sent by this domain's instances *)
  d_delivered : int;  (** messages delivered into this domain *)
  d_batches : int;    (** inter-domain batches drained *)
  d_batched : int;    (** messages carried by those batches *)
}

val domain_stats : t -> domain_stats list
(** Per-domain traffic attribution, in domain-id order. All zeros at
    shard count 1 (the classic path does not touch the counters). *)
