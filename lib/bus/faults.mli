(** Declarative fault injection for the bus.

    A {!plan} names what goes wrong and when: host crashes and
    recoveries at virtual times, injected process crashes, per-route
    message loss and duplication probabilities, and latency jitter.
    {!install} arms the plan on a bus: timed events are scheduled on the
    engine and the probabilistic decisions are wired into the bus's
    fault hooks, driven by a {!Dr_sim.Prng} seeded from [seed] — so a
    chaos run is exactly as deterministic and replayable as a fault-free
    one. Every injection emits a ["fault"] trace entry.

    With {!no_faults} (or without [install]) the bus behaves
    byte-for-byte like the fault-free implementation. *)

type event =
  | Host_crash of string  (** mark the host down; crash its residents *)
  | Host_recover of string
  | Process_crash of string  (** kill -9 one instance *)
  | Image_corrupt of string
      (** arm a one-shot corruption of the instance's next captured
          state image ({!Bus.arm_image_corruption}); the codec's
          checksum catches it and the image is quarantined *)

type rule = {
  r_src : string option;  (** match the sending instance; [None] = any *)
  r_dst : string option;  (** match the receiving instance; [None] = any *)
  r_loss : float;  (** per-message drop probability, [0, 1] *)
  r_dup : float;  (** per-message duplication probability, [0, 1] *)
}

type plan = {
  fp_events : (float * event) list;  (** (virtual time, event) *)
  fp_rules : rule list;  (** first matching rule wins *)
  fp_jitter : float;  (** max uniform extra latency per hop *)
  fp_ctl_crash : int option;
      (** kill the reconfiguration controller after this many
          control-log appends ({!Bus.arm_ctl_crash}) — an index into
          the journal's append sequence, not a virtual time, so the
          crash lands at an exact point of the script's durable
          history regardless of scheduling *)
}

val no_faults : plan

val rule : ?src:string -> ?dst:string -> ?loss:float -> ?dup:float -> unit -> rule
(** Loss and duplication default to 0. *)

val plan :
  ?events:(float * event) list ->
  ?rules:rule list ->
  ?jitter:float ->
  ?ctl_crash:int ->
  unit ->
  plan

val install : Bus.t -> seed:int -> plan -> unit
(** Schedule the plan's timed events and set the bus's fault hooks.
    Installing {!no_faults} only clears the hooks. *)

val parse_plan : string -> (int * plan, string) result
(** Parse a command-line fault specification: comma-separated clauses
    [seed=N], [loss=P], [dup=P] (optionally scoped [loss@src>dst=P] with
    [*] wildcards), [jitter=J], [crash=host@T], [recover=host@T],
    [kill=instance@T], [corrupt=instance@T], [ctlcrash@N] (controller
    crash after the Nth control-log append, 1-based). Returns the seed
    (default 0) and the plan.

    Malformed or contradictory specifications are rejected with a
    descriptive error: negative [@T] times, duplicate timed clauses,
    a crash and recover of the same host at the same instant, and a
    loss/dup rule whose scope an earlier, broader rule already covers
    (first match wins, so the later clause could never fire). *)

val explorable :
  Bus.t -> decide:(src:Bus.endpoint -> dst:Bus.endpoint -> Bus.fault_decision) -> unit
(** Delegate every per-message fault decision to [decide] instead of the
    seeded PRNG, with zero jitter. This is the model checker's hook:
    each send becomes an explicit choice point owned by the explorer
    ({!Dr_mc.Explorer}), so loss and duplication are enumerated rather
    than sampled. *)
