module Spec = Dr_mil.Spec

let ( let* ) = Result.bind

(* Binding resolution works over pre-built Spec indexes: a
   100k-instance application resolves two endpoints per bind, and a
   linear [find_instance] scan per endpoint would make deployment
   quadratic in the fleet size. *)
let iface_role_indexed mod_index inst_index endpoint =
  let inst_name, if_name = endpoint in
  match Hashtbl.find_opt inst_index inst_name with
  | None -> None
  | Some inst -> (
    match Hashtbl.find_opt mod_index inst.Spec.inst_module with
    | None -> None
    | Some m ->
      Option.map (fun i -> i.Spec.role) (Spec.find_iface m if_name))

let routes_of_bind_indexed mod_index inst_index (bind : Spec.binding_decl) =
  match
    ( iface_role_indexed mod_index inst_index bind.b_from,
      iface_role_indexed mod_index inst_index bind.b_to )
  with
  | Some Spec.Client, Some Spec.Server ->
    [ (bind.b_from, bind.b_to); (bind.b_to, bind.b_from) ]
  | Some _, Some _ | None, _ | _, None -> [ (bind.b_from, bind.b_to) ]

let routes_of_bind config app (bind : Spec.binding_decl) =
  routes_of_bind_indexed (Spec.index_modules config) (Spec.index_instances app)
    bind

let host_for mod_index (inst : Spec.instance_decl) ~default_host =
  match inst.inst_host with
  | Some h -> h
  | None -> (
    match Hashtbl.find_opt mod_index inst.inst_module with
    | Some { Spec.machine = Some h; _ } -> h
    | Some _ | None -> default_host)

let deploy bus ~config ~app ~default_host =
  let* () =
    match Dr_mil.Validate.validate config with
    | Ok () -> Ok ()
    | Error errors -> Error (String.concat "; " errors)
  in
  let* application =
    match Spec.find_app config app with
    | Some a -> Ok a
    | None -> Error (Printf.sprintf "no application %s in the configuration" app)
  in
  let mod_index = Spec.index_modules config in
  let inst_index = Spec.index_instances application in
  (* Cross-check each instantiated module's program against its spec —
     once per distinct module, not once per instance: a mass deploy
     instantiates the same few modules tens of thousands of times and
     the check walks the whole program AST. *)
  let checked : (string, (unit, string) result) Hashtbl.t = Hashtbl.create 8 in
  let check_module name =
    match Hashtbl.find_opt checked name with
    | Some r -> r
    | None ->
      let r =
        match Hashtbl.find_opt mod_index name with
        | None -> Ok ()  (* caught by validate *)
        | Some m -> (
          match Bus.registered_program bus name with
          | None ->
            Error (Printf.sprintf "module %s has no registered program" name)
          | Some program -> (
            match Dr_mil.Validate.check_program_against_spec m program with
            | Ok () -> Ok ()
            | Error errors -> Error (String.concat "; " errors)))
      in
      Hashtbl.replace checked name r;
      r
  in
  let* () =
    List.fold_left
      (fun acc (inst : Spec.instance_decl) ->
        let* () = acc in
        check_module inst.inst_module)
      (Ok ()) application.instances
  in
  let* () =
    List.fold_left
      (fun acc (inst : Spec.instance_decl) ->
        let* () = acc in
        let spec = Hashtbl.find_opt mod_index inst.inst_module in
        let host = host_for mod_index inst ~default_host in
        Bus.spawn bus ~instance:inst.inst_name ~module_name:inst.inst_module
          ~host ?spec ())
      (Ok ()) application.instances
  in
  List.iter
    (fun bind ->
      List.iter
        (fun (src, dst) -> Bus.add_route bus ~src ~dst)
        (routes_of_bind_indexed mod_index inst_index bind))
    application.binds;
  Ok ()
