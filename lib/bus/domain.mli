(** Broker domains: flat-array process tables and inter-domain batching.

    A domain owns one shard of the bus's instance fleet in an arena — a
    flat slot array with a free list — replacing per-process hashtable
    lookups on the delivery hot path with array indexing. Handles are
    generational: {!free} bumps the slot's generation, so a cached
    handle can never alias an instance that later reuses the slot
    (it stops resolving and the caller re-resolves by name).

    {!Batch} is the inter-domain router's per-hop batching: messages
    bound for the same destination domain at the same virtual delivery
    time share one event-queue pop. *)

type handle = { h_dom : int; h_slot : int; h_gen : int }

val null_handle : handle
(** Never resolves; [h_dom = -1]. *)

val is_null : handle -> bool

type 'a t

val create : id:int -> 'a t

val id : 'a t -> int

val live_count : 'a t -> int

val alloc : 'a t -> 'a -> handle
(** Place a value in a free slot (reusing freed slots first) and mint a
    handle valid until {!free}. *)

val free : 'a t -> handle -> unit
(** Release the slot and bump its generation, invalidating every handle
    minted for it. No-op on a stale or null handle. *)

val get : 'a t -> handle -> 'a option
(** [None] once the slot was freed (even if since reused) — the
    generation check is the aliasing guard. O(1), no hashing. *)

val iter_live : 'a t -> ('a -> unit) -> unit
(** Visit occupied slots in slot order. *)

(** {1 Traffic accounting}

    Plain mutable counters bumped by the bus hot path and read back via
    [Bus.domain_stats] — no labels, no hashing, safe to update per
    message. *)

val routed : 'a t -> int
val delivered : 'a t -> int
val batches : 'a t -> int
val batched : 'a t -> int
val count_routed : 'a t -> unit
val count_delivered : 'a t -> unit
val count_batch : 'a t -> size:int -> unit

(** {1 Per-hop batching} *)

module Batch : sig
  type 'm t

  val create : unit -> 'm t

  val add : 'm t -> due:float -> 'm -> bool
  (** Append a message to the batch due at virtual time [due]. [true]
      iff this opened a new batch — the caller must then schedule
      exactly one drain event at [due]. *)

  val drain : 'm t -> due:float -> 'm list
  (** Remove and return the batch due at [due], in insertion order
      (per-route FIFO preserved). *)

  val in_flight : 'm t -> int
  (** Messages currently batched and not yet drained. *)
end
