module Engine = Dr_sim.Engine
module Trace = Dr_sim.Trace
module Machine = Dr_interp.Machine
module Value = Dr_state.Value
module Image = Dr_state.Image
module Metrics = Dr_obs.Metrics

type host = { host_name : string; arch : Dr_state.Arch.t }

type endpoint = string * string

type params = {
  instr_cost : float;
  quantum : int;
  local_latency : float;
  remote_latency : float;
}

let default_params =
  { instr_cost = 0.01; quantum = 64; local_latency = 0.1; remote_latency = 1.0 }

(* Sharded-mode hot-path structures (see [Domain]): each process holds
   a generational handle into its broker domain's arena, plus a memo of
   its last-used out-route set with destinations pre-resolved to
   handles. The memo is versioned against [routes_version] (bumped on
   any route/roster change) and its handles are gen-checked on use, so
   a kill or replace can never leave a stale entry aliasing a reused
   slot — at worst the memo falls back to the by-name lookup and
   re-warms itself. *)
type dest_entry = { de_dst : endpoint; mutable de_handle : Domain.handle }

type out_memo = {
  om_iface : string;
  om_version : int;
  om_peers : endpoint list;  (* send-time fan-out set, for redirects *)
  om_dests : dest_entry array;
}

type process = {
  p_instance : string;
  p_module : string;
  p_gen : int;
      (* monotone spawn generation: virtual time can stand still across a
         kill-and-respawn of the same name, so a timestamp cannot tell
         the two incarnations apart — this counter can *)
  mutable p_host : host;
  p_spec : Dr_mil.Spec.module_spec option;
  p_machine : Machine.t;
  p_queues : (string, Value.t Queue.t) Hashtbl.t;
  (* memo of the last queue handed out: a machine polls/reads the same
     interface repeatedly, so io_query/io_read skip the hash lookup *)
  mutable p_last_queue : (string * Value.t Queue.t) option;
  mutable p_outputs : string list;  (* reverse order *)
  mutable p_divulged : Image.t list;  (* queue of divulged images *)
  mutable p_on_divulge : (Image.t -> unit) option;
  mutable p_alive : bool;
  mutable p_scheduled : bool;
  p_started : float;
  mutable p_ended : float option;
  mutable p_handle : Domain.handle;
  mutable p_out_memo : out_memo option;
}

(* A message parked in an inter-domain batch: everything the classic
   per-message delivery event captured in its closure, as a record. *)
type pending_msg = {
  bm_src : endpoint;
  bm_dst : dest_entry;
  bm_peers : endpoint list;
  bm_value : Value.t;
}

(* Hot-path data structures: [live] indexes the current process per
   instance name and [route_index] the out-routes per source endpoint,
   so deliver/route_message are O(1) in the instance and route counts.
   [procs_rev] and [routes_rev] keep full insertion-order history
   (newest first) for roster/outputs/all_routes, whose observable order
   must match the original list-based implementation exactly. *)
(* The fault plane (see Faults): when installed, every message send
   consults [fh_message] (drop / duplicate / deliver) and [fh_jitter]
   (extra latency). With no hooks installed the bus behaves — and
   traces — exactly as before, which the golden-trace tests pin down. *)
type fault_decision = Deliver | Drop | Duplicate

type fault_hooks = {
  fh_message : src:endpoint -> dst:endpoint -> fault_decision;
  fh_jitter : unit -> float;
}

type transport = {
  tr_send : src:endpoint -> dst:endpoint -> Value.t -> bool;
  tr_rename : old_instance:string -> new_instance:string -> fence:bool -> unit;
  tr_retx_wait : instance:string -> float;
      (* accumulated retransmission-timer wait towards an instance *)
}

type quarantined = {
  q_time : float;
  q_instance : string;
  q_reason : string;
  q_byte_size : int;
}

type detector_config = {
  dc_period : float;
  dc_timeout : float;
  dc_threshold : int;
}

let default_detector_config = { dc_period = 1.0; dc_timeout = 3.0; dc_threshold = 2 }

exception Controller_crash

(* How a value reached an input queue: [Fresh] is a first-time delivery
   (classic path or the reliable layer's frame arrival), [Transfer] a
   requeue of something already delivered once (a replacement's
   [copy_queue]). The model checker's exactly-once monitor counts only
   [Fresh]. *)
type delivery_kind = Fresh | Transfer

type t = {
  engine : Engine.t;
  trace : Trace.t;
  bus_params : params;
  bus_hosts : host list;
  programs : (string, Dr_lang.Ast.program * Dr_interp.Cache.artifact) Hashtbl.t;
  mutable procs_rev : process list;
  live : (string, process) Hashtbl.t;
  mutable routes_rev : (endpoint * endpoint) list;
  route_index : (endpoint, endpoint list) Hashtbl.t;
  mutable fault_hooks : fault_hooks option;
  down_hosts : (string, unit) Hashtbl.t;
  mutable transport : transport option;
  mutable activity_hook : (string -> unit) option;
  corrupt_images : (string, unit) Hashtbl.t;
  mutable quarantine_rev : quarantined list;
  mutable bus_metrics : Metrics.t option;
  (* broker domains: [shards] partitions of the fleet, each with an
     arena process table; [inbound] holds the per-destination-domain
     delivery batches. With [shards = 1] the classic per-message send
     path runs unchanged (golden traces are pinned to it) and the
     arenas are maintained but never consulted on the hot path. *)
  shards : int;
  domains : process Domain.t array;
  inbound : pending_msg Domain.Batch.t array;
  mutable spawn_rr : int;  (* round-robin domain assignment counter *)
  mutable routes_version : int;
  dom_labels : (string * string) list array;  (* prebuilt metric labels *)
  (* durable control plane (see Journal/Recovery in dr_reconfig): the
     write-ahead log the journal appends to, plus the controller fault
     model — a counter of control-log appends and an optional armed
     crash point. With no WAL attached nothing here is ever consulted,
     so the classic traces are untouched. *)
  mutable bus_wal : Dr_wal.Wal.t option;
  mutable ctl_appends : int;
  mutable ctl_crash_at : int option;
  mutable ctl_down : bool;
  mutable ctl_next_sid : int;
  mutable ctl_open : int;  (* scripts begun and not yet committed/aborted *)
  (* drain-aware routing: replica siblings and the members currently
     draining. Both empty outside a rolling replacement, so the classic
     delivery paths never consult them (golden traces untouched). *)
  drain_members : (string, string array) Hashtbl.t;
  draining : (string, unit) Hashtbl.t;
  mutable drain_cursor : int;
  (* failure-detector tunables for detectors started on this bus *)
  mutable det_config : detector_config;
  mutable spawn_gen : int;  (* next spawn generation number *)
  (* model-checker observation point: called on every successful enqueue
     into an input queue. Passive — never schedules, never traces. *)
  mutable delivery_obs :
    (dst:endpoint -> kind:delivery_kind -> Value.t -> unit) option;
}

(* Metrics are strictly passive: these helpers never schedule events,
   never touch the trace, and never draw from the PRNG, so attaching a
   registry cannot perturb the simulation. *)
let m_incr t ?labels ?by name =
  match t.bus_metrics with
  | Some r -> Metrics.incr r ?labels ?by name
  | None -> ()

let m_add_gauge t ?labels name v =
  match t.bus_metrics with
  | Some r -> Metrics.add_gauge r ?labels name v
  | None -> ()

(* Sampled gauges: state that lives in bus structures (queue depths,
   instance count) is read at snapshot time by a collector rather than
   written through on every mutation. *)
let install_collectors t registry =
  Metrics.register_collector registry (fun r ->
      Metrics.set_gauge r "bus.live_instances"
        (float_of_int (Hashtbl.length t.live));
      Hashtbl.iter
        (fun instance p ->
          Hashtbl.iter
            (fun iface q ->
              Metrics.set_gauge r "bus.queue_depth"
                ~labels:[ ("instance", instance); ("iface", iface) ]
                (float_of_int (Queue.length q)))
            p.p_queues)
        t.live;
      (* per-domain attribution: the sharded hot path bumps plain
         counters on the Domain records; surface them (and batched
         in-flight, which the classic per-message gauge writes don't
         cover) only at snapshot time *)
      if t.shards > 1 then begin
        let in_flight = ref 0 in
        Array.iter
          (fun b -> in_flight := !in_flight + Domain.Batch.in_flight b)
          t.inbound;
        Metrics.set_gauge r "bus.in_flight" (float_of_int !in_flight);
        Array.iteri
          (fun i d ->
            let labels = t.dom_labels.(i) in
            Metrics.set_gauge r "bus.domain_live" ~labels
              (float_of_int (Domain.live_count d));
            Metrics.set_gauge r "bus.domain_routed" ~labels
              (float_of_int (Domain.routed d));
            Metrics.set_gauge r "bus.domain_delivered" ~labels
              (float_of_int (Domain.delivered d));
            Metrics.set_gauge r "bus.domain_batches" ~labels
              (float_of_int (Domain.batches d)))
          t.domains
      end)

let set_metrics t registry =
  t.bus_metrics <- Some registry;
  install_collectors t registry

let metrics t = t.bus_metrics

let create ?(params = default_params) ?(shards = 1) ~hosts () =
  let shards = max 1 shards in
  let t =
    { engine = Engine.create ();
      trace = Trace.create ();
      bus_params = params;
      bus_hosts = hosts;
      programs = Hashtbl.create 8;
      procs_rev = [];
      live = Hashtbl.create 64;
      routes_rev = [];
      route_index = Hashtbl.create 64;
      fault_hooks = None;
      down_hosts = Hashtbl.create 4;
      transport = None;
      activity_hook = None;
      corrupt_images = Hashtbl.create 4;
      quarantine_rev = [];
      bus_metrics = None;
      shards;
      domains = Array.init shards (fun i -> Domain.create ~id:i);
      inbound = Array.init shards (fun _ -> Domain.Batch.create ());
      spawn_rr = 0;
      routes_version = 0;
      dom_labels =
        Array.init shards (fun i -> [ ("domain", string_of_int i) ]);
      bus_wal = None;
      ctl_appends = 0;
      ctl_crash_at = None;
      ctl_down = false;
      ctl_next_sid = 0;
      ctl_open = 0;
      drain_members = Hashtbl.create 4;
      draining = Hashtbl.create 4;
      drain_cursor = 0;
      det_config = default_detector_config;
      spawn_gen = 0;
      delivery_obs = None }
  in
  if Metrics.enabled_from_env () then set_metrics t (Metrics.create ());
  t

let shard_count t = t.shards

let engine t = t.engine
let trace t = t.trace
let now t = Engine.now t.engine
let params t = t.bus_params
let hosts t = t.bus_hosts

let find_host t name =
  List.find_opt (fun h -> String.equal h.host_name name) t.bus_hosts

let record t category fmt =
  Format.kasprintf
    (fun detail -> Trace.record t.trace ~time:(now t) ~category ~detail)
    fmt

(* invariant: [t.live] holds exactly the processes with [p_alive];
   [kill] removes its entry, so halted/crashed machines stay findable
   (they are alive-but-stopped, as before). *)
let find_proc t instance = Hashtbl.find_opt t.live instance

(* ---------------------------------------------- durable control plane *)

let set_wal t w = t.bus_wal <- Some w
let wal t = t.bus_wal
let controller_down t = t.ctl_down
let ctl_appends t = t.ctl_appends

(* Arm a single-shot controller crash: the controller dies immediately
   after its [after]-th control-log append completes (record durable,
   bus operation applied) — the sharpest point for recovery, since every
   logged record's operation has taken effect and undo is exact. The
   engine guard swallows the unwind so the rest of the fleet keeps
   running: a dead controller does not stop the application. *)
let arm_ctl_crash t ~after =
  t.ctl_crash_at <- Some after;
  Engine.set_guard t.engine (function Controller_crash -> true | _ -> false);
  record t "fault" "controller crash armed after control-log append %d" after

let ctl_tick t =
  t.ctl_appends <- t.ctl_appends + 1;
  match t.ctl_crash_at with
  | Some n when t.ctl_appends >= n ->
    t.ctl_crash_at <- None;
    t.ctl_down <- true;
    record t "fault" "controller crashed after control-log append %d"
      t.ctl_appends;
    raise Controller_crash
  | _ -> ()

let recover_controller t =
  if t.ctl_down then begin
    t.ctl_down <- false;
    t.ctl_open <- 0;  (* whatever was open died with the controller *)
    record t "recover" "controller restarted"
  end

let ctl_scripts_open t = t.ctl_open
let ctl_script_opened t = t.ctl_open <- t.ctl_open + 1
let ctl_script_closed t = t.ctl_open <- max 0 (t.ctl_open - 1)

let next_script_id t =
  t.ctl_next_sid <- t.ctl_next_sid + 1;
  t.ctl_next_sid

let note_script_id t sid = t.ctl_next_sid <- max t.ctl_next_sid sid

(* --------------------------------------------------------------- faults *)

let set_fault_hooks t hooks = t.fault_hooks <- Some hooks
let clear_fault_hooks t = t.fault_hooks <- None

let host_is_down t name = Hashtbl.mem t.down_hosts name

(* ----------------------------------------------------------- transport *)

(* A transport intercepts [route_message]'s per-destination sends (the
   reliable-delivery layer installs one); [None] is the classic
   fire-and-forget bus, byte-for-byte. *)
let set_transport t transport = t.transport <- Some transport
let clear_transport t = t.transport <- None
let has_transport t = Option.is_some t.transport

(* How long the reliable layer's retransmission timers have kept frames
   towards [instance] waiting. 0 without a transport. The drain phase of
   a reconfiguration samples this before and after quiescing, separating
   "waiting for the module to reach a point" from "waiting for the
   reliable layer to redeliver" in the disruption decomposition. *)
let transport_retx_wait t ~instance =
  match t.transport with None -> 0.0 | Some tr -> tr.tr_retx_wait ~instance

let transport_rename t ~old_instance ~new_instance ~fence =
  match t.transport with
  | None -> ()
  | Some tr -> tr.tr_rename ~old_instance ~new_instance ~fence

(* Failure detectors subscribe here: called with the sending instance
   every time it emits a message. No trace entry — liveness observation
   must not perturb the golden traces. *)
let on_activity t hook = t.activity_hook <- hook

(* The model checker subscribes here. Like [on_activity], strictly
   passive observation. *)
let set_delivery_observer t obs = t.delivery_obs <- obs

let notify_delivery t ~dst ~kind value =
  match t.delivery_obs with
  | None -> ()
  | Some obs -> obs ~dst ~kind value

(* -------------------------------------------------- image quarantine *)

let arm_image_corruption t ~instance =
  Hashtbl.replace t.corrupt_images instance ();
  record t "fault" "image corruption armed for %s" instance

let consume_image_corruption t ~instance =
  if Hashtbl.mem t.corrupt_images instance then begin
    Hashtbl.remove t.corrupt_images instance;
    record t "fault" "injected image corruption: %s" instance;
    true
  end
  else false

let quarantine_image t ~instance ~reason ~byte_size =
  m_incr t ~labels:[ ("instance", instance) ] "reconfig.quarantined";
  t.quarantine_rev <-
    { q_time = now t; q_instance = instance; q_reason = reason;
      q_byte_size = byte_size }
    :: t.quarantine_rev;
  record t "quarantine" "image from %s quarantined (%d byte(s)): %s" instance
    byte_size reason

let quarantined t = List.rev t.quarantine_rev

let crash_process t ~instance ~reason =
  match find_proc t instance with
  | None -> record t "audit" "crash injection ignored: no instance %s" instance
  | Some p -> (
    match Machine.status p.p_machine with
    | Machine.Halted | Machine.Crashed _ -> ()
    | _ ->
      Machine.force_crash p.p_machine reason;
      record t "crash" "%s crashed: %s" p.p_instance reason)

let crash_host t ~host =
  if host_is_down t host then
    record t "audit" "host crash ignored: %s already down" host
  else begin
    Hashtbl.replace t.down_hosts host ();
    record t "fault" "host %s crashed" host;
    List.iter
      (fun p ->
        if p.p_alive && String.equal p.p_host.host_name host then begin
          crash_process t ~instance:p.p_instance
            ~reason:(Printf.sprintf "host %s crashed" host);
          let dropped =
            Hashtbl.fold (fun _ q acc -> acc + Queue.length q) p.p_queues 0
          in
          Hashtbl.iter (fun _ q -> Queue.clear q) p.p_queues;
          if dropped > 0 then
            record t "queue" "%s lost %d queued message(s) in host crash"
              p.p_instance dropped
        end)
      (List.rev t.procs_rev)
  end

let recover_host t ~host =
  if host_is_down t host then begin
    Hashtbl.remove t.down_hosts host;
    record t "fault" "host %s recovered" host
  end
  else record t "audit" "host recovery ignored: %s is up" host

(* ------------------------------------------------------------ programs *)

let register_program t (program : Dr_lang.Ast.program) =
  match Dr_lang.Typecheck.check program with
  | Error errors ->
    Error
      (Fmt.str "%s does not typecheck: %a" program.module_name
         (Fmt.list ~sep:(Fmt.any "; ") Dr_lang.Typecheck.pp_error)
         errors)
  | Ok () ->
    (* Lower + resolve through the content-keyed cache: re-registering
       the same module text (retries, restarts, repeated deployments)
       reuses one compiled artifact. *)
    let artifact = Dr_interp.Cache.prepare program in
    Hashtbl.replace t.programs program.module_name (program, artifact);
    Ok ()

let registered_program t name =
  Option.map fst (Hashtbl.find_opt t.programs name)

let registered_modules t =
  List.sort String.compare
    (Hashtbl.fold (fun name _ acc -> name :: acc) t.programs [])

(* ----------------------------------------------------------- scheduling *)

let latency t src_host dst_host =
  if String.equal src_host.host_name dst_host.host_name then
    t.bus_params.local_latency
  else t.bus_params.remote_latency

(* Event labels for the model checker: computed only in MC mode, so the
   classic hot path never pays for the route scan (and labels are inert
   there anyway). A quantum may run controller code — a divulge callback
   fires inside the target's quantum — so whenever a script is open or a
   callback is armed the label degrades to global (touch = [], dependent
   with everything). Otherwise a quantum touches its own instance plus
   every instance its out-routes can reach, which over-approximates the
   messages it may send. *)
let quantum_label t p =
  if not (Engine.mc_enabled t.engine) then Engine.tau
  else if t.ctl_open > 0 || Option.is_some p.p_on_divulge then
    Engine.label ~info:("quantum " ^ p.p_instance) "quantum"
  else
    let out =
      List.filter_map
        (fun ((si, _), (di, _)) ->
          if String.equal si p.p_instance then Some di else None)
        t.routes_rev
    in
    Engine.label
      ~touch:(p.p_instance :: out)
      ~info:("quantum " ^ p.p_instance) "quantum"

(* A delivery touches its destination — or, when the destination belongs
   to a drain group, any member the redirect may choose. (A delivery
   whose destination died in flight re-resolves the routes; route
   mutations are controller transitions, which are global, so the
   approximation is benign there.) *)
let deliver_label t ~dst value =
  if not (Engine.mc_enabled t.engine) then Engine.tau
  else
    let inst = fst dst in
    let touch =
      match Hashtbl.find_opt t.drain_members inst with
      | Some members -> Array.to_list members
      | None -> [ inst ]
    in
    Engine.label ~touch
      ~info:
        (Printf.sprintf "deliver %s.%s %s" inst (snd dst)
           (Value.to_string value))
      "deliver"

let net_label t ~src ~dst =
  if not (Engine.mc_enabled t.engine) then Engine.tau
  else
    Engine.label
      ~touch:[ fst src; fst dst ]
      ~info:
        (Printf.sprintf "net %s.%s -> %s.%s" (fst src) (snd src) (fst dst)
           (snd dst))
      "net"

let rec schedule_quantum t p ~delay =
  if p.p_alive && not p.p_scheduled then begin
    p.p_scheduled <- true;
    Engine.schedule ~label:(quantum_label t p) t.engine ~delay (fun () ->
        run_quantum t p)
  end

and run_quantum t p =
  p.p_scheduled <- false;
  (* a quantum scheduled before the machine stopped (e.g. an injected
     crash between scheduling and firing) must not re-record the halt or
     crash that was already traced when the status changed *)
  let already_stopped =
    match Machine.status p.p_machine with
    | Machine.Halted | Machine.Crashed _ -> true
    | _ -> false
  in
  if p.p_alive && not already_stopped then begin
    (* the machine's budgeted loop pays one status check per instruction
       instead of a [step] call, and dispatches fused pairs when the
       instance has fusion enabled *)
    let executed = Machine.exec_budget p.p_machine t.bus_params.quantum in
    (* the guard keeps the label list from being allocated per quantum
       when no registry is attached — this is the hottest call site *)
    if Option.is_some t.bus_metrics then
      m_incr t ~labels:[ ("instance", p.p_instance) ] ~by:executed
        "interp.instructions";
    let cost = float_of_int executed *. t.bus_params.instr_cost in
    match Machine.status p.p_machine with
    | Machine.Ready -> schedule_quantum t p ~delay:(Float.max cost t.bus_params.instr_cost)
    | Machine.Sleeping duration ->
      (* sharded mode fuses the wake with the next quantum: the classic
         path schedules a wake event that then schedules a delay-0
         quantum event (two pops per sleep); at shards > 1 the wake
         event runs the quantum directly, halving sleep overhead *)
      if t.shards > 1 then
        Engine.schedule ~label:(quantum_label t p) t.engine
          ~delay:(cost +. duration) (fun () ->
            if p.p_alive then begin
              Machine.set_ready p.p_machine;
              if not p.p_scheduled then run_quantum t p
            end)
      else
        Engine.schedule ~label:(quantum_label t p) t.engine
          ~delay:(cost +. duration) (fun () ->
            if p.p_alive then begin
              Machine.set_ready p.p_machine;
              schedule_quantum t p ~delay:0.0
            end)
    | Machine.Blocked_read _ | Machine.Blocked_decode ->
      (* parked: woken by message/state arrival *)
      ()
    | Machine.Halted -> record t "halt" "%s halted" p.p_instance
    | Machine.Crashed message ->
      record t "crash" "%s crashed: %s" p.p_instance message
  end

let wake_endpoint t p iface =
  match Machine.status p.p_machine with
  | Machine.Blocked_read blocked_iface when String.equal blocked_iface iface ->
    Machine.set_ready p.p_machine;
    schedule_quantum t p ~delay:0.0
  | _ -> ()

(* -------------------------------------------------------------- routes *)

let endpoint_equal (a1, a2) (b1, b2) = String.equal a1 b1 && String.equal a2 b2

(* per-source index buckets are kept in insertion order, so
   [routes_from] returns destinations exactly as the flat-list filter
   did — message fan-out order (and thus the trace) is unchanged *)
let index_bucket t src =
  Option.value ~default:[] (Hashtbl.find_opt t.route_index src)

let add_route t ~src ~dst =
  let bucket = index_bucket t src in
  if not (List.exists (endpoint_equal dst) bucket) then begin
    t.routes_version <- t.routes_version + 1;
    Hashtbl.replace t.route_index src (bucket @ [ dst ]);
    t.routes_rev <- (src, dst) :: t.routes_rev;
    record t "bind" "add %s.%s -> %s.%s" (fst src) (snd src) (fst dst) (snd dst)
  end

let del_route t ~src ~dst =
  t.routes_version <- t.routes_version + 1;
  (match List.filter (fun d -> not (endpoint_equal d dst)) (index_bucket t src) with
  | [] -> Hashtbl.remove t.route_index src
  | bucket -> Hashtbl.replace t.route_index src bucket);
  t.routes_rev <-
    List.filter
      (fun (s, d) -> not (endpoint_equal s src && endpoint_equal d dst))
      t.routes_rev;
  record t "bind" "del %s.%s -> %s.%s" (fst src) (snd src) (fst dst) (snd dst)

let routes_from t src = index_bucket t src

let routes_to t dst =
  List.rev
    (List.filter_map
       (fun (s, d) -> if endpoint_equal d dst then Some s else None)
       t.routes_rev)

let all_routes t = List.rev t.routes_rev

(* -------------------------------------------------------------- queues *)

let queue_of p iface =
  match p.p_last_queue with
  | Some (cached, q) when String.equal cached iface -> q
  | _ ->
    let q =
      match Hashtbl.find_opt p.p_queues iface with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace p.p_queues iface q;
        q
    in
    p.p_last_queue <- Some (iface, q);
    q

let pending_messages t (instance, iface) =
  match find_proc t instance with
  | None -> 0
  | Some p -> Queue.length (queue_of p iface)

(* ---------------------------------------------- drain-aware routing *)

let detector_config t = t.det_config

let set_detector_config t cfg =
  if cfg.dc_period <= 0.0 then
    invalid_arg "set_detector_config: period must be positive";
  if cfg.dc_timeout <= 0.0 then
    invalid_arg "set_detector_config: timeout must be positive";
  if cfg.dc_threshold <= 0 then
    invalid_arg "set_detector_config: threshold must be positive";
  t.det_config <- cfg

let set_drain_group t ~members =
  let arr = Array.of_list members in
  List.iter (fun m -> Hashtbl.replace t.drain_members m arr) members

let drain_group t ~instance =
  match Hashtbl.find_opt t.drain_members instance with
  | Some arr -> Array.to_list arr
  | None -> []

let mark_draining t ~instance =
  if not (Hashtbl.mem t.draining instance) then begin
    Hashtbl.replace t.draining instance ();
    record t "drain" "%s draining: new deliveries shed to siblings" instance
  end

let clear_draining t ~instance =
  if Hashtbl.mem t.draining instance then begin
    Hashtbl.remove t.draining instance;
    record t "drain" "%s admitting again" instance
  end

let is_draining t ~instance = Hashtbl.mem t.draining instance

let draining_instances t =
  List.sort String.compare
    (Hashtbl.fold (fun k () acc -> k :: acc) t.draining [])

(* Admitting = present, machine not stopped, host up, not draining. *)
let drain_admitting t instance =
  match find_proc t instance with
  | None -> false
  | Some p -> (
    (not (host_is_down t p.p_host.host_name))
    && (not (Hashtbl.mem t.draining instance))
    &&
    match Machine.status p.p_machine with
    | Machine.Halted | Machine.Crashed _ -> false
    | _ -> true)

let drain_alive t instance =
  match find_proc t instance with
  | None -> false
  | Some p -> (
    (not (host_is_down t p.p_host.host_name))
    &&
    match Machine.status p.p_machine with
    | Machine.Halted | Machine.Crashed _ -> false
    | _ -> true)

let resolve_drain t ~instance =
  if drain_admitting t instance then Some instance
  else
    match Hashtbl.find_opt t.drain_members instance with
    | None -> if drain_alive t instance then Some instance else None
    | Some members ->
      let n = Array.length members in
      let scan ok start =
        let rec pick i k =
          if k = 0 then None
          else
            let cand = members.(i mod n) in
            if (not (String.equal cand instance)) && ok cand then Some cand
            else pick (i + 1) (k - 1)
        in
        pick start n
      in
      t.drain_cursor <- t.drain_cursor + 1;
      (match scan (drain_admitting t) t.drain_cursor with
      | Some _ as r -> r
      | None ->
        (* No admitting sibling. Prefer the addressed member itself if it
           is merely draining (it keeps serving what it must), but when
           the group shrank mid-drain — the addressed member was killed
           between the rotation and admission — fall through to any
           sibling that is still alive even if draining: shedding the
           request while a live member exists loses it outright. Found by
           the model checker (see test_mc). *)
        if drain_alive t instance then Some instance
        else scan (drain_alive t) t.drain_cursor)

(* Consulted on the delivery paths: only when at least one member is
   draining, so fault-free runs never pay (or perturb) anything. *)
let drain_redirect t dst =
  if Hashtbl.length t.draining = 0 then dst
  else
    let instance, iface = dst in
    if not (Hashtbl.mem t.draining instance) then dst
    else
      match resolve_drain t ~instance with
      | Some target when not (String.equal target instance) ->
        m_incr t
          ~labels:[ ("from", instance); ("to", target) ]
          "bus.drain_redirect";
        record t "drain" "redirect %s.%s -> %s.%s (draining)" instance iface
          target iface;
        (target, iface)
      | Some _ | None -> dst

let deliver_k t kind ~dst value =
  let dst = drain_redirect t dst in
  let instance, iface = dst in
  match find_proc t instance with
  | None ->
    m_incr t ~labels:[ ("instance", instance) ] "bus.dropped";
    record t "drop" "message for dead instance %s.%s" instance iface
  | Some p ->
    if host_is_down t p.p_host.host_name then
      record t "fault" "delivery to %s.%s failed: host %s is down" instance
        iface p.p_host.host_name
    else begin
      m_incr t ~labels:[ ("instance", instance) ] "bus.delivered";
      notify_delivery t ~dst ~kind value;
      Queue.add value (queue_of p iface);
      wake_endpoint t p iface
    end

let deliver t ~dst value = deliver_k t Fresh ~dst value

let inject t ~dst value = deliver t ~dst value

let copy_queue t ~src ~dst =
  match find_proc t (fst src) with
  | None -> ()
  | Some sp ->
    let q = queue_of sp (snd src) in
    let moved = Queue.length q in
    (* drain first: when [dst] is (or routes back into) [src], delivery
       appends to the very queue being copied, and iterating it while
       appending is unspecified *)
    let values = List.of_seq (Queue.to_seq q) in
    Queue.clear q;
    List.iter (fun v -> deliver_k t Transfer ~dst v) values;
    record t "queue" "cq %s.%s -> %s.%s (%d message(s))" (fst src) (snd src)
      (fst dst) (snd dst) moved

let take_queue t ep =
  match find_proc t (fst ep) with
  | None -> []
  | Some p ->
    let q = queue_of p (snd ep) in
    let values = List.of_seq (Queue.to_seq q) in
    Queue.clear q;
    values

let peek_queue t ep =
  match find_proc t (fst ep) with
  | None -> []
  | Some p -> List.of_seq (Queue.to_seq (queue_of p (snd ep)))

let drop_queue t ep =
  match find_proc t (fst ep) with
  | None -> ()
  | Some p ->
    let q = queue_of p (snd ep) in
    let dropped = Queue.length q in
    Queue.clear q;
    record t "queue" "rmq %s.%s (%d message(s))" (fst ep) (snd ep) dropped

(* ------------------------------------------------------------- send *)

(* If the destination died while the message was in flight (it was
   replaced by a reconfiguration), re-resolve the current routes: the
   paper's bus applies rebinding commands atomically, so traffic follows
   the new bindings. Only the routes added since the send — the
   rebinding of the lost message's destination — receive it: re-fanning
   out to every current route would hand a duplicate to each surviving
   peer of a multicast binding. [peers] is the full destination set at
   send time. *)
let deliver_or_redirect t ~src ~dst ~peers value =
  match find_proc t (fst dst) with
  | Some _ -> deliver t ~dst value
  | None -> (
    let rebound =
      List.filter
        (fun d -> not (List.exists (endpoint_equal d) peers))
        (routes_from t src)
    in
    match rebound with
    | [] -> record t "drop" "in-flight message from %s.%s lost" (fst src) (snd src)
    | dsts -> List.iter (fun dst -> deliver t ~dst value) dsts)

(* ---------------------------------------------------- sharded routing *)

(* Resolve a destination entry: the gen-checked arena lookup when the
   cached handle is fresh — an array index, no hashing — else fall back
   to the by-name table and re-warm the handle. A handle cached before
   a kill gen-fails here even if the slot was since reused, so a stale
   memo can never alias a different instance. *)
let resolve_dest t (de : dest_entry) =
  let h = de.de_handle in
  let hit =
    if Domain.is_null h then None else Domain.get t.domains.(h.Domain.h_dom) h
  in
  match hit with
  | Some _ as r -> r
  | None -> (
    match find_proc t (fst de.de_dst) with
    | Some p ->
      de.de_handle <- p.p_handle;
      Some p
    | None -> None)

(* Rebuild the sender's out-route memo when the route table has moved
   since it was cut (or the interface changed). [om_peers] is the
   send-time fan-out set the redirect logic needs, identical to what
   the classic path recomputes per send because any add/del bumps
   [routes_version]. *)
let cut_out_memo t p iface =
  let src = (p.p_instance, iface) in
  let dsts = routes_from t src in
  let memo =
    { om_iface = iface;
      om_version = t.routes_version;
      om_peers = dsts;
      om_dests =
        Array.of_list
          (List.map
             (fun dst ->
               let handle =
                 match find_proc t (fst dst) with
                 | Some dp -> dp.p_handle
                 | None -> Domain.null_handle
               in
               { de_dst = dst; de_handle = handle })
             dsts) }
  in
  p.p_out_memo <- Some memo;
  memo

let out_memo_of t p iface =
  match p.p_out_memo with
  | Some m when m.om_version = t.routes_version && String.equal m.om_iface iface
    ->
    m
  | _ -> cut_out_memo t p iface

(* The sharded counterpart of the closure the classic path schedules per
   message: deliver one batched message, preserving the classic trace
   wording for every failure case. *)
let deliver_batched t dom (bm : pending_msg) =
  let dst = bm.bm_dst.de_dst in
  if Hashtbl.length t.draining > 0 && Hashtbl.mem t.draining (fst dst) then
    (* draining member: fall back to the classic path, which redirects
       to an admitting sibling (only drain windows pay this) *)
    deliver t ~dst bm.bm_value
  else
  match resolve_dest t bm.bm_dst with
  | Some p ->
    if host_is_down t p.p_host.host_name then
      record t "fault" "delivery to %s.%s failed: host %s is down" (fst dst)
        (snd dst) p.p_host.host_name
    else begin
      Domain.count_delivered dom;
      if Option.is_some t.bus_metrics then
        m_incr t ~labels:t.dom_labels.(Domain.id dom) "bus.delivered";
      notify_delivery t ~dst ~kind:Fresh bm.bm_value;
      Queue.add bm.bm_value (queue_of p (snd dst));
      (* fused wake: the classic path schedules a delay-0 quantum event
         for a reader blocked on this interface; here the quantum runs
         inline at the same virtual time — one event-queue pop fewer
         per delivery *)
      match Machine.status p.p_machine with
      | Machine.Blocked_read blocked_iface
        when String.equal blocked_iface (snd dst) ->
        Machine.set_ready p.p_machine;
        if not p.p_scheduled then run_quantum t p
      | _ -> ()
    end
  | None -> (
    (* destination died in flight: same redirect rule as
       [deliver_or_redirect] — only routes added since the send *)
    let rebound =
      List.filter
        (fun d -> not (List.exists (endpoint_equal d) bm.bm_peers))
        (routes_from t bm.bm_src)
    in
    match rebound with
    | [] ->
      record t "drop" "in-flight message from %s.%s lost" (fst bm.bm_src)
        (snd bm.bm_src)
    | dsts -> List.iter (fun dst -> deliver t ~dst bm.bm_value) dsts)

(* One event-queue pop delivers every message bound for this domain at
   this instant, in insertion order (per-route FIFO). *)
let drain_domain t dom_idx ~due =
  let batch = Domain.Batch.drain t.inbound.(dom_idx) ~due in
  let dom = t.domains.(dom_idx) in
  let size = List.length batch in
  Domain.count_batch dom ~size;
  (match t.bus_metrics with
  | Some r ->
    Metrics.incr r ~labels:t.dom_labels.(dom_idx) "bus.batches";
    Metrics.observe r "bus.batch_size" (float_of_int size)
  | None -> ());
  List.iter (deliver_batched t dom) batch

(* The sharded send path: memoized fan-out, handles instead of string
   keys, and per-hop batching — a message joins the batch for its
   destination domain at its exact delivery instant, and only the first
   message of a batch schedules an engine event. Fault-hook draw order
   (jitter, then decision, per destination) matches the classic path
   exactly so seeded fault plans replay identically. *)
let route_sharded t p iface value =
  (match t.activity_hook with
  | Some hook -> hook p.p_instance
  | None -> ());
  let memo = out_memo_of t p iface in
  if Array.length memo.om_dests = 0 then begin
    if Option.is_some t.bus_metrics then
      m_incr t ~labels:[ ("instance", p.p_instance) ] "bus.dropped";
    record t "drop" "%s.%s has no binding; message discarded" p.p_instance iface
  end
  else begin
    let src = (p.p_instance, iface) in
    let metrics_on = Option.is_some t.bus_metrics in
    let src_dom = p.p_handle.Domain.h_dom in
    Array.iter
      (fun de ->
        Domain.count_routed t.domains.(src_dom);
        if metrics_on then
          m_incr t ~labels:t.dom_labels.(src_dom) "bus.messages_routed";
        let handled =
          match t.transport with
          | Some tr -> tr.tr_send ~src ~dst:de.de_dst value
          | None -> false
        in
        if not handled then begin
          let dst_p = resolve_dest t de in
          let dst_host =
            match dst_p with Some dp -> dp.p_host | None -> p.p_host
          in
          let dst_dom =
            match dst_p with
            | Some dp -> dp.p_handle.Domain.h_dom
            | None -> src_dom
          in
          let delay = latency t p.p_host dst_host in
          let push ~delay =
            let due = now t +. delay in
            let opened =
              Domain.Batch.add t.inbound.(dst_dom) ~due
                { bm_src = src;
                  bm_dst = de;
                  bm_peers = memo.om_peers;
                  bm_value = value }
            in
            if opened then
              Engine.schedule_at t.engine ~time:due (fun () ->
                  drain_domain t dst_dom ~due)
          in
          match t.fault_hooks with
          | None -> push ~delay
          | Some hooks -> (
            let delay = delay +. hooks.fh_jitter () in
            match hooks.fh_message ~src ~dst:de.de_dst with
            | Deliver -> push ~delay
            | Drop ->
              record t "fault" "injected loss: %s.%s -> %s.%s" (fst src)
                (snd src) (fst de.de_dst) (snd de.de_dst)
            | Duplicate ->
              record t "fault" "injected duplicate: %s.%s -> %s.%s" (fst src)
                (snd src) (fst de.de_dst) (snd de.de_dst);
              push ~delay;
              push ~delay)
        end)
      memo.om_dests
  end

let route_message t p iface value =
  if t.shards > 1 then route_sharded t p iface value
  else begin
  let src = (p.p_instance, iface) in
  (match t.activity_hook with
  | Some hook -> hook p.p_instance
  | None -> ());
  let dsts = routes_from t src in
  if dsts = [] then begin
    m_incr t ~labels:[ ("instance", p.p_instance) ] "bus.dropped";
    record t "drop" "%s.%s has no binding; message discarded" p.p_instance iface
  end
  else
    List.iter
      (fun dst ->
        m_incr t
          ~labels:[ ("route", fst src ^ "->" ^ fst dst) ]
          "bus.messages_routed";
        let handled =
          match t.transport with
          | Some tr -> tr.tr_send ~src ~dst value
          | None -> false
        in
        if not handled then begin
          let dst_host =
            match find_proc t (fst dst) with
            | Some dp -> dp.p_host
            | None -> p.p_host
          in
          let delay = latency t p.p_host dst_host in
          let send ~delay =
            m_add_gauge t "bus.in_flight" 1.;
            Engine.schedule ~label:(deliver_label t ~dst value) t.engine ~delay
              (fun () ->
                m_add_gauge t "bus.in_flight" (-1.);
                deliver_or_redirect t ~src ~dst ~peers:dsts value)
          in
          match t.fault_hooks with
          | None -> send ~delay
          | Some hooks -> (
            let delay = delay +. hooks.fh_jitter () in
            match hooks.fh_message ~src ~dst with
            | Deliver -> send ~delay
            | Drop ->
              record t "fault" "injected loss: %s.%s -> %s.%s" (fst src)
                (snd src) (fst dst) (snd dst)
            | Duplicate ->
              record t "fault" "injected duplicate: %s.%s -> %s.%s" (fst src)
                (snd src) (fst dst) (snd dst);
              send ~delay;
              send ~delay)
        end)
      dsts
  end

(* A raw timed hop between two endpoints, subject to the fault hooks but
   carrying a callback rather than a queued value — the primitive the
   reliable layer's frames, acks and the detector's heartbeats ride on.
   [k] runs at the receiving end after the (possibly jittered) latency;
   a [Drop] decision consumes a PRNG draw and records the loss exactly
   like an application message. *)
let transmit t ~src ~dst k =
  let host_of (instance, _) =
    Option.map (fun p -> p.p_host) (find_proc t instance)
  in
  let delay =
    match (host_of src, host_of dst) with
    | Some a, Some b -> latency t a b
    | _ -> t.bus_params.local_latency
  in
  let send ~delay =
    Engine.schedule ~label:(net_label t ~src ~dst) t.engine ~delay k
  in
  match t.fault_hooks with
  | None -> send ~delay
  | Some hooks -> (
    let delay = delay +. hooks.fh_jitter () in
    match hooks.fh_message ~src ~dst with
    | Deliver -> send ~delay
    | Drop ->
      record t "fault" "injected loss: %s.%s -> %s.%s" (fst src) (snd src)
        (fst dst) (snd dst)
    | Duplicate ->
      record t "fault" "injected duplicate: %s.%s -> %s.%s" (fst src) (snd src)
        (fst dst) (snd dst);
      send ~delay;
      send ~delay)

(* Hand a value straight to a destination queue with no latency, no
   fault decision and no trace on success: the reliable layer calls this
   at frame-arrival time, after [transmit] has already charged the hop.
   Returns [false] when the destination is gone or its host is down, so
   the caller can withhold the ack and let retransmission recover. *)
let deliver_now t ~dst value =
  let instance, iface = dst in
  match find_proc t instance with
  | None -> false
  | Some p ->
    if host_is_down t p.p_host.host_name then false
    else begin
      notify_delivery t ~dst ~kind:Fresh value;
      Queue.add value (queue_of p iface);
      wake_endpoint t p iface;
      true
    end

(* -------------------------------------------------------------- spawn *)

(* The io closures need the process record, and the process record needs
   the machine built over the io: tie the knot with a forward reference,
   resolved before the machine ever steps. *)
let instance_io t (p_ref : process option ref) : Dr_interp.Io_intf.t =
  let the_proc () =
    match !p_ref with
    | Some p -> p
    | None -> invalid_arg "bus: io used before the process was registered"
  in
  { io_query =
      (fun iface -> not (Queue.is_empty (queue_of (the_proc ()) iface)));
    io_read =
      (fun iface ->
        let q = queue_of (the_proc ()) iface in
        if Queue.is_empty q then None else Some (Queue.take q));
    io_write = (fun iface value -> route_message t (the_proc ()) iface value);
    io_print =
      (fun line ->
        let p = the_proc () in
        p.p_outputs <- line :: p.p_outputs;
        record t "print" "%s: %s" p.p_instance line);
    io_now = (fun () -> now t);
    io_encode =
      (fun image ->
        let p = the_proc () in
        record t "state" "%s divulged %d record(s), %d byte(s)" p.p_instance
          (Image.depth image) (Image.byte_size image);
        match p.p_on_divulge with
        | Some callback ->
          p.p_on_divulge <- None;
          callback image
        | None -> p.p_divulged <- p.p_divulged @ [ image ]);
    io_decode = (fun () -> None)
      (* images arrive via [deposit_state], which feeds the machine
         directly; mh_decode blocks otherwise *) }

let spawn t ~instance ~module_name ~host ?spec ?(status = "normal") () =
  match find_proc t instance with
  | Some _ -> Error (Printf.sprintf "instance %s already exists" instance)
  | None -> (
    match find_host t host with
    | None -> Error (Printf.sprintf "unknown host %s" host)
    | Some _ when host_is_down t host ->
      Error (Printf.sprintf "host %s is down" host)
    | Some h -> (
      match Hashtbl.find_opt t.programs module_name with
      | None -> Error (Printf.sprintf "module %s is not registered" module_name)
      | Some (program, artifact) ->
        let p_ref = ref None in
        let io = instance_io t p_ref in
        let machine =
          Machine.create ~status_attr:status ~io
            ~resolved:artifact.Dr_interp.Cache.a_resolved program
        in
        let gen = t.spawn_gen in
        t.spawn_gen <- t.spawn_gen + 1;
        let p =
          { p_instance = instance;
            p_module = module_name;
            p_gen = gen;
            p_host = h;
            p_spec = spec;
            p_machine = machine;
            p_queues = Hashtbl.create 8;
            p_last_queue = None;
            p_outputs = [];
            p_divulged = [];
            p_on_divulge = None;
            p_alive = true;
            p_scheduled = false;
            p_started = now t;
            p_ended = None;
            p_handle = Domain.null_handle;
            p_out_memo = None }
        in
        p_ref := Some p;
        t.procs_rev <- p :: t.procs_rev;
        Hashtbl.replace t.live instance p;
        p.p_handle <- Domain.alloc t.domains.(t.spawn_rr mod t.shards) p;
        t.spawn_rr <- t.spawn_rr + 1;
        m_incr t ~labels:[ ("instance", instance) ] "bus.spawns";
        record t "lifecycle" "%s (%s) started on %s as %s" instance module_name
          h.host_name status;
        schedule_quantum t p ~delay:0.0;
        Ok ()))

let spawn_snapshot t ~of_instance ~instance ~host =
  match find_proc t instance with
  | Some _ -> Error (Printf.sprintf "instance %s already exists" instance)
  | None -> (
    match find_proc t of_instance with
    | None -> Error (Printf.sprintf "no such instance %s" of_instance)
    | Some source -> (
      match find_host t host with
      | None -> Error (Printf.sprintf "unknown host %s" host)
      | Some _ when host_is_down t host ->
        Error (Printf.sprintf "host %s is down" host)
      | Some h ->
        let p_ref = ref None in
        let io = instance_io t p_ref in
        let machine = Machine.clone source.p_machine ~io in
        let gen = t.spawn_gen in
        t.spawn_gen <- t.spawn_gen + 1;
        let p =
          { p_instance = instance;
            p_module = source.p_module;
            p_gen = gen;
            p_host = h;
            p_spec = source.p_spec;
            p_machine = machine;
            p_queues = Hashtbl.create 8;
            p_last_queue = None;
            p_outputs = [];
            p_divulged = [];
            p_on_divulge = None;
            p_alive = true;
            p_scheduled = false;
            p_started = now t;
            p_ended = None;
            p_handle = Domain.null_handle;
            p_out_memo = None }
        in
        p_ref := Some p;
        t.procs_rev <- p :: t.procs_rev;
        Hashtbl.replace t.live instance p;
        p.p_handle <- Domain.alloc t.domains.(t.spawn_rr mod t.shards) p;
        t.spawn_rr <- t.spawn_rr + 1;
        record t "lifecycle" "%s snapshot-cloned as %s on %s" of_instance
          instance h.host_name;
        (* re-arm scheduling for whatever state the snapshot was in *)
        (match Machine.status machine with
        | Machine.Ready -> schedule_quantum t p ~delay:0.0
        | Machine.Sleeping duration ->
          Engine.schedule ~label:(quantum_label t p) t.engine ~delay:duration
            (fun () ->
              if p.p_alive then begin
                Machine.set_ready p.p_machine;
                schedule_quantum t p ~delay:0.0
              end)
        | Machine.Blocked_read _ | Machine.Blocked_decode ->
          ()  (* woken by message/state arrival *)
        | Machine.Halted | Machine.Crashed _ -> ());
        Ok ()))

let kill t ~instance =
  match find_proc t instance with
  | None -> record t "audit" "kill ignored: no instance %s" instance
  | Some p ->
    p.p_alive <- false;
    p.p_ended <- Some (now t);
    Hashtbl.remove t.live instance;
    (* retire the arena slot: the generation bump invalidates every
       handle cached for this instance, so out-route memos can never
       alias whatever reuses the slot *)
    if not (Domain.is_null p.p_handle) then begin
      Domain.free t.domains.(p.p_handle.Domain.h_dom) p.p_handle;
      p.p_handle <- Domain.null_handle
    end;
    t.routes_version <- t.routes_version + 1;
    m_incr t ~labels:[ ("instance", instance) ] "bus.kills";
    record t "lifecycle" "%s removed" instance;
    (* a divulge callback armed on a dead instance can never fire; keep
       it from lingering on the dead record *)
    if Option.is_some p.p_on_divulge then begin
      p.p_on_divulge <- None;
      record t "state" "%s removed with a pending divulge callback; cancelled"
        instance
    end;
    let dropped =
      Hashtbl.fold (fun _ q acc -> acc + Queue.length q) p.p_queues 0
    in
    if dropped > 0 then
      record t "queue" "%s removed with %d undelivered message(s)" instance
        dropped

type roster_entry = {
  r_instance : string;
  r_module : string;
  r_host : string;
  r_status : Machine.status option;
  r_started : float;
  r_ended : float option;
  r_instrs : int;
}

let roster t =
  List.rev_map
    (fun p ->
      { r_instance = p.p_instance;
        r_module = p.p_module;
        r_host = p.p_host.host_name;
        r_status = (if p.p_alive then Some (Machine.status p.p_machine) else None);
        r_started = p.p_started;
        r_ended = p.p_ended;
        r_instrs = Machine.instr_count p.p_machine })
    t.procs_rev

let instances t =
  List.rev
    (List.filter_map
       (fun p -> if p.p_alive then Some p.p_instance else None)
       t.procs_rev)

let instance_host t ~instance =
  Option.map (fun p -> p.p_host.host_name) (find_proc t instance)

let instance_generation t ~instance =
  Option.map (fun p -> p.p_gen) (find_proc t instance)

(* Snapshot of an instance's input queues, sorted by interface — the
   model checker folds this into its state fingerprint. *)
let queue_contents t ~instance =
  match find_proc t instance with
  | None -> []
  | Some p ->
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold
         (fun iface q acc -> (iface, List.of_seq (Queue.to_seq q)) :: acc)
         p.p_queues [])

let instance_spec t ~instance =
  Option.bind (find_proc t instance) (fun p -> p.p_spec)

let instance_module t ~instance =
  Option.map (fun p -> p.p_module) (find_proc t instance)

let machine t ~instance = Option.map (fun p -> p.p_machine) (find_proc t instance)

let process_status t ~instance =
  Option.map (fun p -> Machine.status p.p_machine) (find_proc t instance)

let outputs t ~instance =
  (* history stays readable after an instance is removed; when a name was
     reused (replication restarts the original in place), prefer the live
     incarnation, then the most recent dead one — [procs_rev] is
     newest-first, so the first dead match is the most recent *)
  match find_proc t instance with
  | Some p -> List.rev p.p_outputs
  | None -> (
    match
      List.find_opt (fun p -> String.equal p.p_instance instance) t.procs_rev
    with
    | Some p -> List.rev p.p_outputs
    | None -> [])

let wake t ~instance =
  match find_proc t instance with
  | None -> record t "audit" "wake ignored: no instance %s" instance
  | Some p -> (
    match Machine.status p.p_machine with
    | Machine.Halted | Machine.Crashed _ ->
      (* set_ready is a no-op on a stopped machine; scheduling a quantum
         for it would be too — make the mismatch auditable instead *)
      record t "audit" "wake ignored: %s already stopped" instance
    | _ ->
      Machine.set_ready p.p_machine;
      schedule_quantum t p ~delay:0.0)

let signal_reconfig t ~instance =
  match find_proc t instance with
  | None -> ()
  | Some p ->
    m_incr t ~labels:[ ("instance", instance) ] "reconfig.signals";
    record t "signal" "reconfiguration signal -> %s" instance;
    Machine.deliver_signal p.p_machine

let on_divulge t ~instance callback =
  match find_proc t instance with
  | None ->
    (* idempotency parity with [wake]/[kill]: arming a callback on a
       removed instance is a quiet no-op, but an auditable one *)
    record t "audit" "divulge callback for dead instance %s discarded" instance
  | Some p -> (
    match p.p_divulged with
    | image :: rest ->
      p.p_divulged <- rest;
      callback image
    | [] -> (
      match Machine.status p.p_machine with
      | Machine.Halted | Machine.Crashed _ ->
        (* a stopped machine will never divulge; parking the callback
           would wait forever — discard it now, auditable *)
        record t "audit" "divulge callback for %s discarded: already stopped"
          instance
      | _ -> p.p_on_divulge <- Some callback))

let cancel_divulge t ~instance =
  match find_proc t instance with
  | None -> record t "audit" "divulge cancel ignored: no instance %s" instance
  | Some p ->
    if Option.is_some p.p_on_divulge then begin
      p.p_on_divulge <- None;
      record t "state" "divulge callback for %s cancelled" instance
    end

let take_divulged t ~instance =
  match find_proc t instance with
  | None -> None
  | Some p -> (
    match p.p_divulged with
    | image :: rest ->
      p.p_divulged <- rest;
      Some image
    | [] -> None)

let deposit_state t ~instance ?expect image =
  match find_proc t instance with
  | None ->
    record t "audit" "state image for dead instance %s discarded" instance
  | Some p -> (
    match Machine.status p.p_machine with
    | Machine.Halted | Machine.Crashed _ ->
      record t "audit" "state image for %s discarded: already stopped" instance
    | _ -> (
      match expect with
      | Some digest when not (Int64.equal digest (Image.digest image)) ->
        quarantine_image t ~instance
          ~reason:
            (Printf.sprintf "digest mismatch (expected %016Lx, got %016Lx)"
               digest (Image.digest image))
          ~byte_size:(Image.byte_size image)
      | _ ->
        m_incr t ~labels:[ ("instance", instance) ] "reconfig.state_deposits";
        record t "state" "state image deposited into %s" instance;
        Machine.feed_image p.p_machine image;
        schedule_quantum t p ~delay:0.0))

let run ?until ?max_events t = Engine.run ?until ?max_events t.engine

let run_while t ?(max_events = max_int) predicate =
  let fired = ref 0 in
  while predicate () && !fired < max_events && Engine.step t.engine do
    incr fired
  done

let quiescent t = Engine.pending t.engine = 0

(* ------------------------------------------------------------- domains *)

type domain_stats = {
  d_id : int;
  d_live : int;
  d_routed : int;
  d_delivered : int;
  d_batches : int;
  d_batched : int;
}

let domain_of_instance t ~instance =
  Option.bind (find_proc t instance) (fun p ->
      if Domain.is_null p.p_handle then None else Some p.p_handle.Domain.h_dom)

let domain_stats t =
  Array.to_list
    (Array.map
       (fun d ->
         { d_id = Domain.id d;
           d_live = Domain.live_count d;
           d_routed = Domain.routed d;
           d_delivered = Domain.delivered d;
           d_batches = Domain.batches d;
           d_batched = Domain.batched d })
       t.domains)
