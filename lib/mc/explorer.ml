(* Stateless model checker for the reconfiguration protocols.

   The explorer drives the deterministic simulator through every
   interleaving of a small configuration, CHESS-style: an execution is a
   sequence of *choices*, and each branch re-runs the simulation from
   scratch, replaying the shared choice prefix and then diverging. The
   engine's MC mode guarantees that replaying the same prefix reproduces
   the same event sequence numbers, so a recorded schedule is a stable
   name for an execution — which is what makes counterexamples
   replayable ([drc mc --repro]).

   Two kinds of choice point:

   - a {e scheduler} point: which pending event fires next, or an
     adversary move — kill an instance, arm a controller crash;
   - a {e fault} point: inside a firing, each message send asks the
     fault plane for a decision (deliver / drop / duplicate), bounded
     by the configuration's fault budget.

   Reduction, in three switchable tiers ({!mode}):

   - [Naive]: full enumeration — the denominator of the reported
     reduction ratio;
   - [Sleep]: sleep sets only — still provably exhaustive over the
     reachable state space, used for the "explored everything" claim;
   - [Dpor]: sleep sets plus persistent-set seeding by race analysis
     over the event labels' touch sets (the bus's per-route delivery
     dependencies), the default.

   Independence comes from {!Dr_sim.Engine.label}: two events are
   dependent iff either touches the whole system or their touch sets
   intersect. Quantum labels include the instance's out-neighbours, so
   a quantum that *sends* to C is dependent with every delivery into C
   — the race analysis then seeds the reordering that makes the
   conservative "skip when not co-enabled" rule sound for Fire tokens
   (an event not yet scheduled at state [i] is causally after [i] and
   cannot be reordered before it).

   On top of both: stateful duplicate detection. After every transition
   the explorer fingerprints (roster + machine globals + print history +
   queues + routes + reliable-channel protocol state + journal length +
   pending-event labels + remaining adversary budgets) and cuts the
   execution when the fingerprint was already visited. The workload
   prints on every state-changing step, so the fingerprint subsumes
   everything the monitors observe — two fingerprint-equal states agree
   on every monitor verdict, which keeps dedup sound for the
   history-dependent monitors. Dedup is also what closes the protocol's
   infinite loops (retransmission, idle sleep-wake): their state cycles
   fingerprint-converge.

   Executions the bounds cut short are never silently dropped: depth
   cuts count the enabled-but-unexplored frontier and the report says
   loudly when exhaustiveness was lost. *)

module Bus = Dr_bus.Bus
module Faults = Dr_bus.Faults
module Reliable = Dr_bus.Reliable
module Engine = Dr_sim.Engine
module Machine = Dr_interp.Machine
module Value = Dr_state.Value
module Wal = Dr_wal.Wal

type token =
  | Fire of int  (** fire the pooled event with this sequence number *)
  | Deliver  (** fault point: let the message through *)
  | Drop  (** fault point: lose the message *)
  | Dup  (** fault point: deliver it twice *)
  | Kill of string  (** adversary: crash this instance *)
  | Ctlcrash  (** adversary: controller dies at its next journal tick *)

type mode = Naive | Sleep | Dpor

(* One booted simulation instance, rebuilt from scratch per execution. *)
type run = {
  r_bus : Bus.t;
  r_monitors : Monitor.t list;
  r_reliable : Reliable.t option;
  r_globals : string list;  (** machine globals hashed into fingerprints *)
  r_extra_fp : unit -> string;  (** config-specific fingerprint extension *)
  r_kill_candidates : string list;
  r_allow_ctlcrash : bool;
}

type config = {
  c_name : string;
  c_setup : unit -> run;
  c_fault_budget : int;  (** total Drop/Dup decisions per execution *)
  c_crash_budget : int;  (** total Kill/Ctlcrash injections per execution *)
  c_depth : int;  (** max scheduler transitions per execution *)
  c_max_execs : int;  (** safety valve on total executions *)
}

type stats = {
  mutable executions : int;
  mutable transitions : int;  (** scheduler transitions fired, incl. replays *)
  mutable states : int;  (** distinct fingerprints *)
  mutable dedup_cuts : int;
  mutable sleep_prunes : int;
  mutable depth_cuts : int;
  mutable frontier : int;  (** enabled-but-unexplored transitions at cuts *)
  mutable capped : bool;  (** c_max_execs hit: exploration incomplete *)
}

type result = {
  res_mode : mode;
  res_stats : stats;
  res_violations : (Monitor.violation * token list) list;
      (** minimized, replayable schedules *)
}

let mode_name = function Naive -> "naive" | Sleep -> "sleep" | Dpor -> "dpor"

(* {1 Schedules as text} *)

let token_to_string = function
  | Fire seq -> Printf.sprintf "fire %d" seq
  | Deliver -> "deliver"
  | Drop -> "drop"
  | Dup -> "dup"
  | Kill i -> Printf.sprintf "kill %s" i
  | Ctlcrash -> "ctlcrash"

let token_of_string line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "fire"; n ] -> Option.map (fun s -> Fire s) (int_of_string_opt n)
  | [ "deliver" ] -> Some Deliver
  | [ "drop" ] -> Some Drop
  | [ "dup" ] -> Some Dup
  | [ "kill"; i ] -> Some (Kill i)
  | [ "ctlcrash" ] -> Some Ctlcrash
  | _ -> None

let schedule_to_string ~config_name tokens =
  String.concat "\n"
    (Printf.sprintf "config %s" config_name
    :: List.map token_to_string tokens)
  ^ "\n"

let schedule_of_string text =
  let lines =
    List.filter
      (fun l -> String.length l > 0 && l.[0] <> '#')
      (List.map String.trim (String.split_on_char '\n' text))
  in
  match lines with
  | [] -> Error "empty schedule"
  | first :: rest ->
    let name, body =
      match String.split_on_char ' ' first with
      | [ "config"; n ] -> (Some n, rest)
      | _ -> (None, lines)
    in
    let rec parse acc = function
      | [] -> Ok (name, List.rev acc)
      | l :: tl -> (
        match token_of_string l with
        | Some t -> parse (t :: acc) tl
        | None -> Error (Printf.sprintf "bad schedule line: %S" l))
    in
    parse [] body

(* {1 Independence} *)

(* An empty touch set means global: conservatively dependent with
   everything. Otherwise events commute unless their touch sets meet. *)
let dependent (a : Engine.label) (b : Engine.label) =
  a.Engine.lb_touch = []
  || b.Engine.lb_touch = []
  || List.exists (fun x -> List.mem x b.Engine.lb_touch) a.Engine.lb_touch

(* {1 The exploration tree}

   The stack holds one node per choice point of the current execution.
   A node is the state *before* its choice: [nd_chosen] is the branch
   the current execution took, [nd_done] every branch already fully
   explored (chosen included), [nd_todo] branches scheduled for later,
   [nd_sleep] the sleep set on entry. Branching pops a todo at the
   deepest such node and truncates everything beneath — by then the
   deeper subtree is fully explored, so nothing is lost. *)

type nd_kind = Sched | Fault

type node = {
  nd_kind : nd_kind;
  mutable nd_chosen : token;
  mutable nd_done : token list;
  mutable nd_todo : token list;
  nd_enabled : (token * Engine.label) list;  (** Sched nodes only *)
  nd_sleep : (token * Engine.label) list;
}

type st = {
  cfg : config;
  mode : mode;
  mutable stack : node array;
  mutable depth : int;  (** stack slots in use *)
  visited : (string, unit) Hashtbl.t;
  stats : stats;
  mutable violations : (Monitor.violation * token list) list;
}

let dummy_node =
  { nd_kind = Fault;
    nd_chosen = Deliver;
    nd_done = [];
    nd_todo = [];
    nd_enabled = [];
    nd_sleep = [] }

let push_node st nd =
  if st.depth = Array.length st.stack then begin
    let bigger = Array.make (max 64 (2 * st.depth)) dummy_node in
    Array.blit st.stack 0 bigger 0 st.depth;
    st.stack <- bigger
  end;
  st.stack.(st.depth) <- nd;
  st.depth <- st.depth + 1

let label_of nd tok =
  match List.find_opt (fun (t, _) -> t = tok) nd.nd_enabled with
  | Some (_, l) -> l
  | None -> Engine.tau

(* {1 Fingerprints} *)

let status_string = function
  | Machine.Ready -> "ready"
  | Machine.Sleeping _ -> "sleeping"  (* duration is timing, not state *)
  | Machine.Blocked_read iface -> "blocked:" ^ iface
  | Machine.Blocked_decode -> "blocked-decode"
  | Machine.Halted -> "halted"
  | Machine.Crashed m -> "crashed:" ^ m

let fingerprint run ~faults_left ~crash_left ~ctlcrash_used =
  let bus = run.r_bus in
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  List.iter
    (fun i ->
      add "I %s %s %s g%d %s\n" i
        (Option.value ~default:"?" (Bus.instance_module bus ~instance:i))
        (Option.value ~default:"?" (Bus.instance_host bus ~instance:i))
        (Option.value ~default:(-1) (Bus.instance_generation bus ~instance:i))
        (match Bus.process_status bus ~instance:i with
        | Some s -> status_string s
        | None -> "?");
      (match Bus.machine bus ~instance:i with
      | None -> ()
      | Some m ->
        List.iter
          (fun g ->
            match Machine.read_global m g with
            | Some v -> add "G %s=%s\n" g (Value.to_string v)
            | None -> ())
          run.r_globals);
      List.iter (fun line -> add "O %s\n" line) (Bus.outputs bus ~instance:i);
      List.iter
        (fun (iface, vs) ->
          add "Q %s.%s [%s]\n" i iface
            (String.concat ";" (List.map Value.to_string vs)))
        (Bus.queue_contents bus ~instance:i))
    (List.sort String.compare (Bus.instances bus));
  List.iter
    (fun (((si, sp), (di, dp)) : Bus.endpoint * Bus.endpoint) ->
      add "R %s.%s>%s.%s\n" si sp di dp)
    (List.sort compare (Bus.all_routes bus));
  add "D %s\n"
    (String.concat "," (List.sort String.compare (Bus.draining_instances bus)));
  add "C %d %b %d\n" (Bus.ctl_scripts_open bus) (Bus.controller_down bus)
    (Bus.ctl_appends bus);
  (match Bus.wal bus with
  | Some w -> add "W %d\n" (Wal.next_lsn w)
  | None -> ());
  (match run.r_reliable with
  | None -> ()
  | Some rel ->
    List.iter
      (fun s ->
        (* epoch + the counters that shape future protocol behaviour
           (sent ~ next sequence number, delivered ~ receiver cursor,
           unacked ~ in-flight window). Pure observability counters —
           retransmissions, suppressed dups, fenced discards — are
           excluded so retransmission loops fingerprint-converge. *)
        add "L %s.%s>%s.%s e%d s%d d%d u%d\n"
          (fst s.Reliable.st_src) (snd s.Reliable.st_src)
          (fst s.Reliable.st_dst) (snd s.Reliable.st_dst)
          s.Reliable.st_epoch s.Reliable.st_sent s.Reliable.st_delivered
          s.Reliable.st_unacked)
      (List.sort compare (Reliable.stats rel)));
  List.iter
    (fun (k, i) -> add "E %s|%s\n" k i)
    (List.sort compare
       (List.map
          (fun (pe : Engine.pending_event) ->
            (pe.Engine.pe_label.Engine.lb_kind,
             pe.Engine.pe_label.Engine.lb_info))
          (Engine.mc_pending (Bus.engine bus))));
  add "B %d %d %b\n" faults_left crash_left ctlcrash_used;
  add "X %s\n" (run.r_extra_fp ());
  Digest.to_hex (Digest.string (Buffer.contents b))

(* {1 One execution} *)

type exec_end =
  | Quiescent
  | Dedup
  | Depth_cut
  | Sleep_prune
  | Violated of Monitor.violation

type exec_report = {
  ex_end : exec_end;
  ex_schedule : token list;  (** every choice taken, in order *)
  ex_run : run;  (** the finished simulation, for post-mortem inspection *)
}

exception Stop_exec of exec_end

(* Drive one execution. [branch_depth] is the stack index of the node
   whose (freshly popped) [nd_chosen] this execution diverges on; -1
   runs pure defaults from the root. When [strict] is set the schedule
   comes from [forced] instead of the stack (counterexample replay) and
   any mismatch with what the simulation actually enables aborts. *)
let run_execution ?(strict = false) ?(forced = []) (st : st option) cfg mode
    ~branch_depth =
  let run = cfg.c_setup () in
  let bus = run.r_bus in
  let engine = Bus.engine bus in
  let faults_used = ref 0 in
  let kills_used = ref 0 in
  let ctlcrash_used = ref false in
  let sched_steps = ref 0 in
  let pos = ref 0 in
  let forced = Array.of_list forced in
  let schedule_rev = ref [] in
  let take tok =
    schedule_rev := tok :: !schedule_rev;
    (match tok with
    | Drop | Dup -> incr faults_used
    | Kill _ -> incr kills_used
    | Ctlcrash -> ctlcrash_used := true
    | Fire _ | Deliver -> ());
    tok
  in
  let fault_alternatives () =
    if cfg.c_fault_budget - !faults_used > 0 then [ Drop; Dup ] else []
  in
  (* every message send is a fault choice point *)
  let decide ~src:_ ~dst:_ =
    let tok =
      if strict then
        if !pos < Array.length forced then begin
          let t = forced.(!pos) in
          incr pos;
          match t with
          | Deliver | Drop | Dup -> t
          | _ -> raise (Stop_exec Depth_cut)  (* malformed: abort *)
        end
        else Deliver
      else (
        match st with
        | None -> Deliver
        | Some st ->
          if !pos <= branch_depth then begin
            let nd = st.stack.(!pos) in
            incr pos;
            nd.nd_chosen
          end
          else begin
            push_node st
              { nd_kind = Fault;
                nd_chosen = Deliver;
                nd_done = [ Deliver ];
                nd_todo = fault_alternatives ();
                nd_enabled = [];
                nd_sleep = [] };
            incr pos;
            Deliver
          end)
    in
    match take tok with
    | Deliver -> Bus.Deliver
    | Drop -> Bus.Drop
    | Dup -> Bus.Duplicate
    | _ -> Bus.Deliver
  in
  Faults.explorable bus ~decide;
  let apply_sched tok =
    incr sched_steps;
    (match st with Some st -> st.stats.transitions <- st.stats.transitions + 1
    | None -> ());
    match tok with
    | Fire seq ->
      if not (Engine.mc_fire engine ~seq) then
        if strict then raise (Stop_exec Depth_cut)
        else failwith "mc: replay diverged (event vanished)"
    | Kill inst -> Bus.crash_process bus ~instance:inst ~reason:"mc adversary"
    | Ctlcrash -> Bus.arm_ctl_crash bus ~after:1
    | Deliver | Drop | Dup -> failwith "mc: fault token at scheduler point"
  in
  let step_monitors () =
    List.fold_left
      (fun acc (m : Monitor.t) ->
        match acc with Some _ -> acc | None -> m.Monitor.m_step ())
      None run.r_monitors
  in
  let enabled_sched () =
    let fires =
      List.map
        (fun (pe : Engine.pending_event) ->
          (Fire pe.Engine.pe_seq, pe.Engine.pe_label))
        (Engine.mc_pending engine)
    in
    if fires = [] then []
    else begin
      let crash_left =
        cfg.c_crash_budget - !kills_used
        - (if !ctlcrash_used then 1 else 0)
      in
      let live = Bus.instances bus in
      let kills =
        if crash_left > 0 then
          List.filter_map
            (fun i ->
              if List.mem i live then
                Some
                  (Kill i, Engine.label ~touch:[ i ] ~info:("kill " ^ i) "kill")
              else None)
            run.r_kill_candidates
        else []
      in
      let ctlc =
        if crash_left > 0 && run.r_allow_ctlcrash && not !ctlcrash_used then
          [ (Ctlcrash, Engine.label ~info:"ctl-crash" "ctlcrash") ]
        else []
      in
      fires @ kills @ ctlc
    end
  in
  let fp () =
    fingerprint run
      ~faults_left:(cfg.c_fault_budget - !faults_used)
      ~crash_left:
        (cfg.c_crash_budget - !kills_used - if !ctlcrash_used then 1 else 0)
      ~ctlcrash_used:!ctlcrash_used
  in
  let check_state_new () =
    match st with
    | None -> ()
    | Some st ->
      let h = fp () in
      if Hashtbl.mem st.visited h then raise (Stop_exec Dedup)
      else begin
        Hashtbl.add st.visited h ();
        st.stats.states <- st.stats.states + 1
      end
  in
  let check_monitors () =
    match step_monitors () with
    | Some v -> raise (Stop_exec (Violated v))
    | None -> ()
  in
  let check_depth () =
    if !sched_steps >= cfg.c_depth then begin
      (match st with
      | Some st ->
        st.stats.frontier <- st.stats.frontier + List.length (enabled_sched ())
      | None -> ());
      raise (Stop_exec Depth_cut)
    end
  in
  let last_sched_node () =
    match st with
    | None -> None
    | Some st ->
      let rec scan i =
        if i < 0 then None
        else if st.stack.(i).nd_kind = Sched then Some st.stack.(i)
        else scan (i - 1)
      in
      scan (!pos - 1)
  in
  let ending =
    try
      (* replay the shared prefix (branch node included) *)
      if strict then
        while !pos < Array.length forced do
          let tok = forced.(!pos) in
          incr pos;
          (match tok with
          | Deliver | Drop | Dup ->
            (* fault token at a scheduler position: malformed schedule *)
            raise (Stop_exec Depth_cut)
          | _ -> apply_sched (take tok));
          check_monitors ()
        done
      else begin
        match st with
        | None -> ()
        | Some st ->
          while !pos <= branch_depth do
            let nd = st.stack.(!pos) in
            (match nd.nd_kind with
            | Fault ->
              (* fault nodes are consumed by the hook inside their
                 enclosing scheduler transition; reaching one here means
                 the stack is corrupt *)
              failwith "mc: dangling fault node in replay"
            | Sched ->
              incr pos;
              apply_sched (take nd.nd_chosen));
            check_monitors ()
          done;
          (* the branch node's choice produced a possibly-new state *)
          if branch_depth >= 0 then check_state_new ()
      end;
      (* default-extend to an end *)
      let continue = ref true in
      while !continue do
        check_depth ();
        let enabled = enabled_sched () in
        if enabled = [] then begin
          continue := false
        end
        else begin
          let sleep =
            match (mode, last_sched_node ()) with
            | Naive, _ | _, None -> []
            | _, Some parent ->
              let pl = label_of parent parent.nd_chosen in
              let explored =
                List.filter_map
                  (fun t ->
                    if t = parent.nd_chosen then None
                    else
                      match
                        List.find_opt (fun (e, _) -> e = t) parent.nd_enabled
                      with
                      | Some (_, l) -> Some (t, l)
                      | None -> None)
                  parent.nd_done
              in
              List.filter
                (fun (_, l) -> not (dependent l pl))
                (parent.nd_sleep @ explored)
          in
          let in_sleep t = List.exists (fun (s, _) -> s = t) sleep in
          let avail = List.filter (fun (t, _) -> not (in_sleep t)) enabled in
          if avail = [] then raise (Stop_exec Sleep_prune);
          let chosen, _ =
            match
              List.find_opt
                (fun (t, _) -> match t with Fire _ -> true | _ -> false)
                avail
            with
            | Some x -> x
            | None -> List.hd avail
          in
          let todo =
            let others =
              List.filter_map
                (fun (t, _) -> if t = chosen then None else Some t)
                enabled
            in
            match mode with
            | Naive -> others
            | Sleep -> List.filter (fun t -> not (in_sleep t)) others
            | Dpor ->
              (* adversary moves have no Fire event to race with, so the
                 race analysis never seeds them: seed exhaustively here *)
              List.filter
                (fun t ->
                  (match t with Kill _ | Ctlcrash -> true | _ -> false)
                  && not (in_sleep t))
                others
          in
          (match st with
          | Some st ->
            push_node st
              { nd_kind = Sched;
                nd_chosen = chosen;
                nd_done = [ chosen ];
                nd_todo = todo;
                nd_enabled = enabled;
                nd_sleep = sleep }
          | None -> ());
          incr pos;
          apply_sched (take chosen);
          check_monitors ();
          check_state_new ()
        end
      done;
      Quiescent
    with Stop_exec e -> e
  in
  (* terminal ends run the final monitors; pruned branches do not *)
  let ending =
    match ending with
    | Quiescent | Depth_cut -> (
      let fin =
        { Monitor.fin_quiescent = (ending = Quiescent);
          fin_faults = !faults_used;
          fin_kills = !kills_used;
          fin_ctlcrash = !ctlcrash_used }
      in
      match
        List.fold_left
          (fun acc (m : Monitor.t) ->
            match acc with Some _ -> acc | None -> m.Monitor.m_final fin)
          None run.r_monitors
      with
      | Some v -> Violated v
      | None -> ending)
    | e -> e
  in
  (match st with
  | Some st -> (
    st.stats.executions <- st.stats.executions + 1;
    match ending with
    | Dedup -> st.stats.dedup_cuts <- st.stats.dedup_cuts + 1
    | Sleep_prune -> st.stats.sleep_prunes <- st.stats.sleep_prunes + 1
    | Depth_cut -> st.stats.depth_cuts <- st.stats.depth_cuts + 1
    | Quiescent | Violated _ -> ())
  | None -> ());
  { ex_end = ending; ex_schedule = List.rev !schedule_rev; ex_run = run }

(* {1 Counterexample replay and minimization} *)

type replay_report = {
  rp_violation : Monitor.violation option;
  rp_end : string;
  rp_schedule : token list;  (** choices actually consumed *)
  rp_run : run option;  (** the replayed simulation ([None] on divergence) *)
}

(* Re-run one exact schedule against a fresh simulation, default-
   extending past its end. Used by [drc mc --repro] and by shrinking. *)
let replay cfg tokens =
  match
    run_execution ~strict:true ~forced:tokens None cfg Dpor ~branch_depth:(-1)
  with
  | r ->
    { rp_violation = (match r.ex_end with Violated v -> Some v | _ -> None);
      rp_end =
        (match r.ex_end with
        | Quiescent -> "quiescent"
        | Violated _ -> "violation"
        | Depth_cut -> "depth-cut"
        | Dedup -> "dedup"
        | Sleep_prune -> "sleep-prune");
      rp_schedule = r.ex_schedule;
      rp_run = Some r.ex_run }
  | exception Failure msg ->
    { rp_violation = None;
      rp_end = "diverged: " ^ msg;
      rp_schedule = [];
      rp_run = None }

(* ddmin-lite: drop the unused tail, then repeatedly try to neutralize
   each adversary choice (drop/dup -> deliver; kill/ctlcrash removed)
   while the same monitor still fires. Best-effort and bounded. *)
let minimize cfg ~monitor tokens =
  let attempts = ref 0 in
  let still_fails sch =
    incr attempts;
    !attempts <= 200
    &&
    match (replay cfg sch).rp_violation with
    | Some v -> String.equal v.Monitor.v_monitor monitor
    | None -> false
  in
  let truncate sch =
    match replay cfg sch with
    | { rp_violation = Some v; rp_schedule = consumed; _ }
      when String.equal v.Monitor.v_monitor monitor ->
      consumed
    | _ -> sch
  in
  let rec shrink sch =
    let n = List.length sch in
    let rec aux i =
      if i >= n then sch
      else
        let tok = List.nth sch i in
        let cand =
          match tok with
          | Drop | Dup ->
            Some (List.mapi (fun j t -> if j = i then Deliver else t) sch)
          | Kill _ | Ctlcrash -> Some (List.filteri (fun j _ -> j <> i) sch)
          | Fire _ | Deliver -> None
        in
        match cand with
        | Some cand when still_fails cand -> shrink (truncate cand)
        | _ -> aux (i + 1)
    in
    aux 0
  in
  shrink (truncate tokens)

(* {1 DPOR race analysis}

   After each execution, walk its scheduler transitions: for each step
   [j], find the most recent earlier step [i] whose label is dependent
   with [j]'s. If [j]'s token was already enabled in the state before
   [i], the two are racing — seed [j]'s token as a backtrack point at
   [i] so the reversed order gets explored. A token not enabled at [i]
   was scheduled by a later step: causally ordered, not a race. *)
let dpor_update st =
  let scheds =
    let acc = ref [] in
    for i = st.depth - 1 downto 0 do
      if st.stack.(i).nd_kind = Sched then acc := st.stack.(i) :: !acc
    done;
    Array.of_list !acc
  in
  let n = Array.length scheds in
  for j = 1 to n - 1 do
    let ndj = scheds.(j) in
    let tokj = ndj.nd_chosen in
    let lj = label_of ndj tokj in
    let rec back i =
      if i < 0 then ()
      else
        let ndi = scheds.(i) in
        if dependent (label_of ndi ndi.nd_chosen) lj then begin
          if
            List.exists (fun (t, _) -> t = tokj) ndi.nd_enabled
            && (not (List.mem tokj ndi.nd_done))
            && (not (List.mem tokj ndi.nd_todo))
            && not (List.exists (fun (t, _) -> t = tokj) ndi.nd_sleep)
          then ndi.nd_todo <- tokj :: ndi.nd_todo
        end
        else back (i - 1)
    in
    back (j - 1)
  done

(* {1 The exploration driver} *)

let fresh_stats () =
  { executions = 0;
    transitions = 0;
    states = 0;
    dedup_cuts = 0;
    sleep_prunes = 0;
    depth_cuts = 0;
    frontier = 0;
    capped = false }

let explore ?(mode = Dpor) ?(stop_on_violation = true)
    ?(on_exec : (exec_report -> unit) option) cfg =
  let st =
    { cfg;
      mode;
      stack = Array.make 64 dummy_node;
      depth = 0;
      visited = Hashtbl.create 4096;
      stats = fresh_stats ();
      violations = [] }
  in
  let branch = ref (-1) in
  let continue = ref true in
  while !continue do
    let r = run_execution (Some st) cfg mode ~branch_depth:!branch in
    (match on_exec with Some f -> f r | None -> ());
    (match r.ex_end with
    | Violated v ->
      let minimized = minimize cfg ~monitor:v.Monitor.v_monitor r.ex_schedule in
      st.violations <- (v, minimized) :: st.violations;
      if stop_on_violation then continue := false
    | _ -> ());
    if st.mode = Dpor then dpor_update st;
    if !continue then
      if st.stats.executions >= cfg.c_max_execs then begin
        st.stats.capped <- true;
        continue := false
      end
      else begin
        (* branch at the deepest unexplored choice *)
        let rec deepest i =
          if i < 0 then None
          else if st.stack.(i).nd_todo <> [] then Some i
          else deepest (i - 1)
        in
        match deepest (st.depth - 1) with
        | None -> continue := false
        | Some d ->
          let nd = st.stack.(d) in
          (match nd.nd_todo with
          | tok :: rest ->
            nd.nd_todo <- rest;
            nd.nd_chosen <- tok;
            nd.nd_done <- tok :: nd.nd_done
          | [] -> assert false);
          st.depth <- d + 1;
          branch := d
      end
  done;
  { res_mode = mode;
    res_stats = st.stats;
    res_violations = List.rev st.violations }

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "executions %d, transitions %d, states %d, dedup cuts %d, sleep prunes \
     %d, depth cuts %d, frontier %d%s"
    s.executions s.transitions s.states s.dedup_cuts s.sleep_prunes
    s.depth_cuts s.frontier
    (if s.capped then " [CAPPED: exploration incomplete]" else "")

let pp_result ppf r =
  Fmt.pf ppf "[%s] %a@." (mode_name r.res_mode) pp_stats r.res_stats;
  if r.res_stats.depth_cuts > 0 || r.res_stats.capped then
    Fmt.pf ppf
      "WARNING: exploration is NOT exhaustive (%d depth cuts leaving %d \
       enabled transitions unexplored%s)@."
      r.res_stats.depth_cuts r.res_stats.frontier
      (if r.res_stats.capped then "; execution cap hit" else "");
  List.iter
    (fun ((v : Monitor.violation), sched) ->
      Fmt.pf ppf "VIOLATION [%s] %s@.  schedule (%d choices): %s@."
        v.Monitor.v_monitor v.Monitor.v_detail (List.length sched)
        (String.concat " " (List.map token_to_string sched)))
    r.res_violations
