(* The model-checking workload: the smallest configuration that still
   exercises every protocol the monitors watch.

   A [pinger] fires [k] requests at a [cell] and then blocks reading the
   replies; the cell folds each request into two globals ([count],
   [acc]) and answers with a reply that encodes its processing count.
   Both halt once the work is done, so fault-free executions are finite
   by construction, and the only infinite behaviours are protocol loops
   (retransmission, idle sleep-wake) that the explorer's fingerprint
   dedup closes off.

   Soundness of the state fingerprint leans on one property of these
   programs: they print on EVERY state-changing step (each send, each
   processed request). The print history is part of the fingerprint, so
   two states with equal fingerprints agree on everything a monitor can
   observe. Keep that invariant when editing the sources.

   [cellv2] is byte-identical to [cell] apart from the module name: the
   point of the replacement under test is the protocol, not the upgrade
   payload, and an identical successor makes the no-lost-state monitor's
   expectation exact (the count sequence across the family must be
   1,2,3,…with no resets and no skips). *)

let cell_body : (int -> string, unit, string) format =
  {|
var count: int = 0;
var acc: int = 0;

proc main() {
  var r: int;
  mh_init();
  while (count < %d) {
    while (mh_query("req")) {
      mh_read("req", r);
      count = count + 1;
      acc = acc + r;
      print("cell ", count, " ", acc);
      mh_write("out", count * 100 + r);
    }
    R: sleep(1);
  }
}
|}

let cell_source ~k ~module_name =
  Printf.sprintf "module %s;\n%s" module_name (Printf.sprintf cell_body k)

let pinger_source ~k =
  Printf.sprintf
    {|
module pinger;

proc main() {
  var i: int;
  var r: int;
  mh_init();
  i = 0;
  while (i < %d) {
    i = i + 1;
    print("send ", i);
    mh_write("req", i);
  }
  i = 0;
  while (i < %d) {
    mh_read("out", r);
    print("got ", r);
    i = i + 1;
  }
}
|}
    k k

(* Two cells fed by one pinger: the drain-group scenario. The pinger
   alternates requests between the two, then collects all replies from
   the shared [out] fan-in. *)
let pinger2_source ~k =
  Printf.sprintf
    {|
module pinger2;

proc main() {
  var i: int;
  var r: int;
  mh_init();
  i = 0;
  while (i < %d) {
    i = i + 1;
    print("send ", i);
    mh_write("req1", i);
    print("send ", %d + i);
    mh_write("req2", %d + i);
  }
  i = 0;
  while (i < 2 * %d) {
    mh_read("out", r);
    print("got ", r);
    i = i + 1;
  }
}
|}
    k k k k

let cell_module ~name =
  Printf.sprintf
    {|
module %s {
  source = "./%s.exe";
  use interface req pattern {integer};
  define interface out pattern {integer};
  reconfiguration point R;
}
|}
    name name

let single_mil =
  Printf.sprintf
    {|
%s
%s
module pinger {
  source = "./pinger.exe";
  define interface req pattern {integer};
  use interface out pattern {integer};
}

application mc {
  instance c1 = cell on "mh1";
  instance pinger on "mh2";
  bind "pinger req" "c1 req";
  bind "c1 out" "pinger out";
}
|}
    (cell_module ~name:"cell")
    (cell_module ~name:"cellv2")

let pair_mil =
  Printf.sprintf
    {|
%s
%s
module pinger2 {
  source = "./pinger2.exe";
  define interface req1 pattern {integer};
  define interface req2 pattern {integer};
  use interface out pattern {integer};
}

application mc {
  instance c1 = cell on "mh1";
  instance c2 = cell on "mh1";
  instance pinger2 on "mh2";
  bind "pinger2 req1" "c1 req";
  bind "pinger2 req2" "c2 req";
  bind "c1 out" "pinger2 out";
  bind "c2 out" "pinger2 out";
}
|}
    (cell_module ~name:"cell")
    (cell_module ~name:"cellv2")

let hosts =
  [ { Dr_bus.Bus.host_name = "mh1"; arch = Dr_state.Arch.x86_64 };
    { Dr_bus.Bus.host_name = "mh2"; arch = Dr_state.Arch.x86_64 } ]

let load ~two_cells ~k =
  let mil = if two_cells then pair_mil else single_mil in
  let sources =
    [ ("cell", cell_source ~k ~module_name:"cell");
      ("cellv2", cell_source ~k ~module_name:"cellv2") ]
    @
    if two_cells then [ ("pinger2", pinger2_source ~k) ]
    else [ ("pinger", pinger_source ~k) ]
  in
  match Dynrecon.System.load ~mil ~sources () with
  | Ok system -> system
  | Error e -> failwith ("mc workload: load failed: " ^ e)

(* Assemble the bus by hand rather than through [System.start]:
   [Engine.mc_enable] must run before the first spawn parks a quantum
   in the event heap, and [System.start] creates the bus internally. *)
let boot ?params ~two_cells ~k () =
  let system = load ~two_cells ~k in
  let bus = Dr_bus.Bus.create ?params ~hosts () in
  Dr_sim.Engine.mc_enable (Dr_bus.Bus.engine bus);
  List.iter
    (fun lm ->
      match
        Dr_bus.Bus.register_program bus (Dynrecon.System.deployed_program lm)
      with
      | Ok () -> ()
      | Error e ->
        failwith
          (Printf.sprintf "mc workload: register %s: %s"
             lm.Dynrecon.System.lm_name e))
    system.Dynrecon.System.modules;
  (match
     Dr_bus.Deploy.deploy bus ~config:system.Dynrecon.System.config ~app:"mc"
       ~default_host:"mh1"
   with
  | Ok () -> ()
  | Error e -> failwith ("mc workload: deploy failed: " ^ e));
  bus

(* Globals the fingerprint must read from cell-family machines. *)
let fingerprint_globals = [ "count"; "acc" ]

(* Parse the cell family's per-request prints out of trace "print"
   entries: "c1: cell 3 6" -> (3, 6). *)
let parse_cell_print detail =
  match String.index_opt detail ':' with
  | None -> None
  | Some i -> (
    let line = String.sub detail (i + 1) (String.length detail - i - 1) in
    try Scanf.sscanf line " cell %d %d" (fun n a -> Some (n, a))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
