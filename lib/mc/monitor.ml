(* Safety monitors checked after every transition the explorer fires.

   Each monitor is a record of closures created fresh per execution (the
   explorer re-runs the simulation from scratch for every schedule, so
   monitor state must not leak across runs). [m_step] is called after
   every fired transition; [m_final] once, when the execution ends, with
   a summary of what the adversary did on this path — several end-to-end
   properties (at-least-once delivery, pinger termination) only hold on
   fault-free paths and must not fire spuriously on paths where the
   adversary legitimately destroyed the message or the process. *)

module Bus = Dr_bus.Bus
module Reliable = Dr_bus.Reliable
module Trace = Dr_sim.Trace
module Value = Dr_state.Value
module Wal = Dr_wal.Wal
module Recovery = Dr_reconfig.Recovery

type violation = { v_monitor : string; v_detail : string }

(* What the adversary spent on the path that just ended. *)
type final_info = {
  fin_quiescent : bool;  (** no transition left enabled *)
  fin_faults : int;  (** Drop/Dup decisions taken *)
  fin_kills : int;  (** instances killed by the adversary *)
  fin_ctlcrash : bool;  (** a controller crash was injected *)
}

type t = {
  m_name : string;
  m_step : unit -> violation option;
  m_final : final_info -> violation option;
}

let violation m_name fmt =
  Format.kasprintf (fun v_detail -> Some { v_monitor = m_name; v_detail }) fmt

(* {1 Exactly-once delivery per reliable route}

   Counts [Fresh] enqueues per (destination interface, payload) via the
   bus's delivery observer. [Transfer] deliveries — queue moves during
   replacement — are the same message changing address, not a second
   delivery, and are discounted. The uniqueness check applies only to
   interfaces covered by the reliable layer: without it the bus promises
   nothing. At quiescence on adversary-free paths the count must be
   exactly one for every request the pinger reports having sent. *)
let exactly_once ~bus ~iface () =
  let name = "exactly-once" in
  let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  Bus.set_delivery_observer bus
    (Some
       (fun ~dst:(_, dst_iface) ~kind v ->
         match kind with
         | Bus.Transfer -> ()
         | Bus.Fresh ->
           if String.equal dst_iface iface then begin
             let key = Value.to_string v in
             Hashtbl.replace counts key
               (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
           end));
  let sent_of_pinger () =
    List.concat_map
      (fun instance ->
        List.filter_map
          (fun line ->
            try Scanf.sscanf line "send %d" (fun i -> Some i)
            with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
          (Bus.outputs bus ~instance))
      (Bus.instances bus)
  in
  { m_name = name;
    m_step =
      (fun () ->
        Hashtbl.fold
          (fun key n acc ->
            match acc with
            | Some _ -> acc
            | None ->
              if n > 1 then
                violation name "request %s delivered %d times on %S" key n
                  iface
              else None)
          counts None);
    m_final =
      (fun fin ->
        if
          (not fin.fin_quiescent)
          || fin.fin_faults > 0 || fin.fin_kills > 0 || fin.fin_ctlcrash
        then None
        else
          List.fold_left
            (fun acc i ->
              match acc with
              | Some _ -> acc
              | None -> (
                match Hashtbl.find_opt counts (string_of_int i) with
                | Some 1 -> None
                | Some n ->
                  violation name "request %d delivered %d times on %S" i n
                    iface
                | None ->
                  violation name
                    "request %d sent but never delivered on %S (fault-free \
                     path)"
                    i iface))
            None (sent_of_pinger ())) }

(* {1 Epoch monotonicity under fencing}

   A channel's fencing epoch must never regress: frames from a previous
   epoch are discarded on arrival, so a regression would resurrect them.
   Keyed per (src, dst) endpoint pair; a replacement renames the channel
   (new key), which is not a regression of the old key. *)
let epoch_monotonic ~reliable () =
  let name = "epoch-monotonic" in
  let seen : (Bus.endpoint * Bus.endpoint, int) Hashtbl.t =
    Hashtbl.create 8
  in
  { m_name = name;
    m_step =
      (fun () ->
        List.fold_left
          (fun acc st ->
            match acc with
            | Some _ -> acc
            | None ->
              let key = (st.Reliable.st_src, st.Reliable.st_dst) in
              let prev =
                Option.value ~default:min_int (Hashtbl.find_opt seen key)
              in
              if st.Reliable.st_epoch < prev then
                violation name "channel %s.%s -> %s.%s epoch regressed %d -> %d"
                  (fst st.Reliable.st_src) (snd st.Reliable.st_src)
                  (fst st.Reliable.st_dst) (snd st.Reliable.st_dst) prev
                  st.Reliable.st_epoch
              else begin
                Hashtbl.replace seen key st.Reliable.st_epoch;
                None
              end)
          None
          (Reliable.stats reliable));
    m_final = (fun _ -> None) }

(* {1 No lost state across replace/rollback}

   The cell prints "cell <count> <acc>" once per processed request,
   where [count] is state carried across replacements. Whatever the
   controller does — replace, roll back, retry — the count sequence
   observed across one cell *lineage* (an instance and every successor
   a replace or supervised restart handed its state to) must be exactly
   1,2,3,…: a reset means a successor started from stale state, a skip
   means two live copies processed concurrently or a deposit landed
   twice. Lineages are read off the trace: script entries name the
   replacement successor, supervisor entries the restart successor. *)
let no_lost_state ~bus () =
  let name = "no-lost-state" in
  let trace = Bus.trace bus in
  let cursor = ref 0 in
  let root : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let last : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let root_of i =
    match Hashtbl.find_opt root i with Some r -> r | None -> i
  in
  let note_rename ~old_i ~new_i =
    if not (Hashtbl.mem root new_i) then
      Hashtbl.replace root new_i (root_of old_i)
  in
  let find_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.equal (String.sub s i m) sub then Some i
      else go (i + 1)
    in
    go 0
  in
  (* first instance name in a fragment like "c1: cell on mh1" or "c1v
     complete" *)
  let leading_name s =
    let stop = ref (String.length s) in
    String.iteri (fun j c -> if (c = ':' || c = ' ') && j < !stop then stop := j) s;
    String.sub s 0 !stop
  in
  let scan_entry (e : Trace.entry) =
    if String.equal e.Trace.category "script" then begin
      let d = e.Trace.detail in
      if String.length d > 8 && String.equal (String.sub d 0 8) "replace " then
        match find_sub d " -> " with
        | None -> ()
        | Some i ->
          let left = String.sub d 8 (i - 8) in
          let right = String.sub d (i + 4) (String.length d - i - 4) in
          note_rename ~old_i:(leading_name left) ~new_i:(leading_name right)
    end
    else if String.equal e.Trace.category "supervisor" then
      try
        Scanf.sscanf e.Trace.detail "restarted %s@ as %s@ on"
          (fun old_i new_i -> note_rename ~old_i ~new_i)
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
  in
  { m_name = name;
    m_step =
      (fun () ->
        let entries = Trace.entries trace in
        let n = List.length entries in
        let fresh = List.filteri (fun i _ -> i >= !cursor) entries in
        cursor := n;
        List.fold_left
          (fun acc (e : Trace.entry) ->
            scan_entry e;
            match acc with
            | Some _ -> acc
            | None ->
              if not (String.equal e.Trace.category "print") then None
              else (
                match Workload.parse_cell_print e.Trace.detail with
                | None -> None
                | Some (count, _) ->
                  let lineage =
                    match String.index_opt e.Trace.detail ':' with
                    | Some i -> root_of (String.sub e.Trace.detail 0 i)
                    | None -> "?"
                  in
                  let prev =
                    Option.value ~default:0 (Hashtbl.find_opt last lineage)
                  in
                  if count <> prev + 1 then
                    violation name
                      "cell count sequence broke in lineage %s: %d after %d \
                       (%s)"
                      lineage count prev e.Trace.detail
                  else begin
                    Hashtbl.replace last lineage count;
                    None
                  end))
          None fresh);
    m_final = (fun _ -> None) }

(* {1 Detector false positives are harmless}

   A fenced restart of a falsely-suspected instance must never leave
   both the "failed" original and its replacement alive: the whole point
   of generation fencing is that the loser of that race is dead. Parsed
   from the supervisor's trace entries. *)
let no_double_serve ~bus () =
  let name = "no-double-serve" in
  let trace = Bus.trace bus in
  let cursor = ref 0 in
  let pairs : (string * string) list ref = ref [] in
  { m_name = name;
    m_step =
      (fun () ->
        let entries = Trace.entries trace in
        let n = List.length entries in
        let fresh = List.filteri (fun i _ -> i >= !cursor) entries in
        cursor := n;
        List.iter
          (fun (e : Trace.entry) ->
            if String.equal e.Trace.category "supervisor" then
              try
                Scanf.sscanf e.Trace.detail "restarted %s@ as %s@ on"
                  (fun old_i new_i -> pairs := (old_i, new_i) :: !pairs)
              with Scanf.Scan_failure _ | Failure _ | End_of_file -> ())
          fresh;
        let live = Bus.instances bus in
        let is_live i = List.mem i live in
        List.fold_left
          (fun acc (old_i, new_i) ->
            match acc with
            | Some _ -> acc
            | None ->
              if is_live old_i && is_live new_i then
                violation name
                  "restart left two live successors: %s and %s" old_i new_i
              else None)
          None !pairs);
    m_final = (fun _ -> None) }

(* {1 WAL-replay equivalence (bounded form)}

   At the end of every execution the journal must parse back cleanly
   and satisfy the WAL's structural invariants; if the controller died,
   recovery replay must succeed from exactly this journal; and on paths
   where the controller survived to quiescence, no script may be left
   open — every reconfiguration either committed or rolled back. *)
let wal_consistent ~bus () =
  let name = "wal-consistent" in
  { m_name = name;
    m_step = (fun () -> None);
    m_final =
      (fun fin ->
        match Bus.wal bus with
        | None -> None
        | Some wal -> (
          match Recovery.scan wal with
          | Error e -> violation name "journal scan failed: %s" e
          | Ok scripts -> (
            match Wal.check_invariants wal with
            | Error e -> violation name "WAL invariants violated: %s" e
            | Ok () ->
              if Bus.controller_down bus then (
                match Recovery.replay bus with
                | Error e -> violation name "recovery replay failed: %s" e
                | Ok _ -> None)
              else if fin.fin_quiescent then
                List.fold_left
                  (fun acc (sc : Recovery.script) ->
                    match acc with
                    | Some _ -> acc
                    | None -> (
                      match sc.Recovery.sc_status with
                      | Recovery.In_flight ->
                        violation name
                          "script %d (%s) still open at quiescence"
                          sc.Recovery.sc_sid sc.Recovery.sc_label
                      | _ -> None))
                  None scripts
              else None))) }
