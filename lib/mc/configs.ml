(* The checked configuration catalogue.

   Each constructor builds an {!Explorer.config} whose [c_setup] boots a
   fresh simulation (bus in MC mode, workload deployed, monitors armed)
   — called once per explored execution. Everything scheduled here must
   go through labeled events so the explorer sees it as a transition;
   in particular the reconfiguration kick is itself a "ctl" event, so
   its placement relative to application traffic is explored too. *)

module Bus = Dr_bus.Bus
module Reliable = Dr_bus.Reliable
module Engine = Dr_sim.Engine
module Script = Dr_reconfig.Script
module Detector = Dr_reconfig.Detector
module Supervisor = Dr_reconfig.Supervisor
module Storage = Dr_wal.Storage
module Wal = Dr_wal.Wal

let fresh_wal () =
  match Wal.create (Storage.storage_of_mem (Storage.memory ())) with
  | Ok w -> w
  | Error e -> failwith ("mc: wal create failed: " ^ e)

let kick_replace bus ~at ~instance ~new_instance ?new_module ?deadline () =
  Engine.schedule_at
    ~label:
      (Engine.label ~info:(Printf.sprintf "ctl kick: replace %s" instance)
         "ctl")
    (Bus.engine bus) ~time:at
    (fun () ->
      Script.replace bus ~instance ~new_instance ?new_module ?deadline
        ~on_done:(fun _ -> ())
        ())

(* {1 single-replace}

   One cell, one pinger, a reliable request route, a journal, and one
   replacement of the cell mid-traffic. The acceptance configuration:
   exhaustively explorable, all five monitors armed (the detector
   monitor is vacuously true without a supervisor — the configurations
   below give it teeth). *)
let single_replace ?(k = 2) ?(fault_budget = 0) ?(crash_budget = 0)
    ?(ctlcrash = false) ?(depth = 400) ?(max_execs = 200_000) () =
  let setup () =
    let bus = Workload.boot ~two_cells:false ~k () in
    let wal = fresh_wal () in
    Bus.set_wal bus wal;
    (* bounded retransmission keeps the reachable space finite: every
       in-flight retransmitted copy is explorer-visible state *)
    let rel =
      Reliable.attach ~params:{ Reliable.default_params with retx_limit = 2 }
        bus
    in
    Reliable.enable_route rel ~src:("pinger", "req") ~dst:("c1", "req");
    kick_replace bus ~at:1.0 ~instance:"c1" ~new_instance:"c1v"
      ~new_module:"cellv2" ~deadline:50.0 ();
    let monitors =
      [ Monitor.exactly_once ~bus ~iface:"req" ();
        Monitor.epoch_monotonic ~reliable:rel ();
        Monitor.no_lost_state ~bus ();
        Monitor.no_double_serve ~bus ();
        Monitor.wal_consistent ~bus () ]
    in
    { Explorer.r_bus = bus;
      r_monitors = monitors;
      r_reliable = Some rel;
      r_globals = Workload.fingerprint_globals;
      r_extra_fp = (fun () -> "");
      r_kill_candidates = (if crash_budget > 0 then [ "c1" ] else []);
      r_allow_ctlcrash = ctlcrash }
  in
  { Explorer.c_name = "single-replace";
    c_setup = setup;
    c_fault_budget = fault_budget;
    c_crash_budget = crash_budget;
    c_depth = depth;
    c_max_execs = max_execs }

(* {1 double-replace}

   Two cells behind one pinger and two concurrent replacement scripts —
   the controller interleaving the explorer is really for. *)
let double_replace ?(k = 1) ?(fault_budget = 0) ?(crash_budget = 0)
    ?(ctlcrash = false) ?(depth = 500) ?(max_execs = 400_000) () =
  let setup () =
    let bus = Workload.boot ~two_cells:true ~k () in
    let wal = fresh_wal () in
    Bus.set_wal bus wal;
    let rel =
      Reliable.attach ~params:{ Reliable.default_params with retx_limit = 2 }
        bus
    in
    Reliable.enable_route rel ~src:("pinger2", "req1") ~dst:("c1", "req");
    Reliable.enable_route rel ~src:("pinger2", "req2") ~dst:("c2", "req");
    kick_replace bus ~at:1.0 ~instance:"c1" ~new_instance:"c1v"
      ~new_module:"cellv2" ~deadline:50.0 ();
    kick_replace bus ~at:1.0 ~instance:"c2" ~new_instance:"c2v"
      ~new_module:"cellv2" ~deadline:50.0 ();
    let monitors =
      [ Monitor.exactly_once ~bus ~iface:"req" ();
        Monitor.epoch_monotonic ~reliable:rel ();
        Monitor.no_lost_state ~bus ();
        Monitor.no_double_serve ~bus ();
        Monitor.wal_consistent ~bus () ]
    in
    { Explorer.r_bus = bus;
      r_monitors = monitors;
      r_reliable = Some rel;
      r_globals = Workload.fingerprint_globals;
      r_extra_fp = (fun () -> "");
      r_kill_candidates = (if crash_budget > 0 then [ "c1"; "c2" ] else []);
      r_allow_ctlcrash = ctlcrash }
  in
  { Explorer.c_name = "double-replace";
    c_setup = setup;
    c_fault_budget = fault_budget;
    c_crash_budget = crash_budget;
    c_depth = depth;
    c_max_execs = max_execs }

(* {1 detector-restart}

   One cell under a failure detector and supervisor, with a loss budget
   aimed at heartbeats and a kill budget aimed at the cell: the false-
   suspicion / fenced-restart race. The detector's suspicion state is
   explorer-visible via the extra fingerprint component (last-seen
   times are wall-clock noise and stay out). *)
let detector_restart ?(k = 1) ?(fault_budget = 1) ?(crash_budget = 1)
    ?(depth = 60) ?(max_execs = 200_000) () =
  let setup () =
    let bus = Workload.boot ~two_cells:false ~k () in
    Bus.set_detector_config bus
      { Bus.dc_period = 1.0; dc_timeout = 1.5; dc_threshold = 1 };
    let detector = Detector.start bus ~watch:[ "c1" ] () in
    let sup =
      Supervisor.start bus ~period:1.0 ~max_restarts:1 ~detector
        ~watch:[ "c1" ] ()
    in
    let extra_fp () =
      String.concat ";"
        (List.map
           (fun i ->
             Printf.sprintf "%s:l%d:s%b" i
               (Detector.suspicion detector ~instance:i)
               (Detector.suspected detector ~instance:i))
           (Detector.watched detector))
      ^ Printf.sprintf "|restarts=%d" (List.length (Supervisor.restarts sup))
    in
    let monitors =
      [ Monitor.no_lost_state ~bus ();
        Monitor.no_double_serve ~bus ();
        Monitor.wal_consistent ~bus () ]
    in
    { Explorer.r_bus = bus;
      r_monitors = monitors;
      r_reliable = None;
      r_globals = Workload.fingerprint_globals;
      r_extra_fp = extra_fp;
      r_kill_candidates = [ "c1" ];
      r_allow_ctlcrash = false }
  in
  { Explorer.c_name = "detector-restart";
    c_setup = setup;
    c_fault_budget = fault_budget;
    c_crash_budget = crash_budget;
    c_depth = depth;
    c_max_execs = max_execs }

(* The catalogue must stay in lockstep with the bench rows: a recorded
   schedule only replays against the exact configuration (same workload
   size, same budgets) that produced it. *)
let by_name name =
  match name with
  | "single-replace" -> Some (single_replace ~k:1 ())
  | "single-replace-k2" -> Some (single_replace ~k:2 ())
  | "single-replace-faults" ->
    Some (single_replace ~k:1 ~fault_budget:1 ~depth:200 ())
  | "single-replace-crash" ->
    Some (single_replace ~k:1 ~crash_budget:1 ~ctlcrash:true ~depth:200 ())
  | "double-replace" -> Some (double_replace ())
  | "detector-restart" -> Some (detector_restart ())
  | _ -> None

let names =
  [ "single-replace";
    "single-replace-k2";
    "single-replace-faults";
    "single-replace-crash";
    "double-replace";
    "detector-restart" ]
