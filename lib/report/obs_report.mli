(** Text rendering of a metrics registry: the span trees (disruption
    windows with their phase decomposition) followed by counters and
    gauges. Used by [drc run --metrics] alongside the JSON artifact. *)

val render_spans : now:float -> Dr_obs.Metrics.t -> string
(** One indented block per root span: kind, key attributes, start/end,
    duration, and each child phase with its share of the window. Spans
    still open at [now] are marked. *)

val render : now:float -> Dr_obs.Metrics.t -> string
(** [render_spans] plus sorted [name{labels} = value] lines for every
    counter and gauge. Runs the registry's collectors (via a snapshot),
    so sampled gauges are fresh. *)
