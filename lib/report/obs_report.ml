module Metrics = Dr_obs.Metrics

let labels_str labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let attr attrs name = List.assoc_opt name attrs

let span_title s =
  let attrs = Metrics.span_attrs s in
  let who =
    match (attr attrs "instance", attr attrs "new_instance") with
    | Some a, Some b -> Printf.sprintf " %s -> %s" a b
    | Some a, None -> " " ^ a
    | None, _ -> ""
  in
  let hosts =
    match (attr attrs "src_host", attr attrs "dst_host") with
    | Some a, Some b when not (String.equal a b) ->
      Printf.sprintf " (%s => %s)" a b
    | _ -> ""
  in
  Metrics.span_kind s ^ who ^ hosts

let rec render_span b ~now ~indent ~total s =
  let start = Metrics.span_start s in
  let ended, stop =
    match Metrics.span_end s with Some e -> (true, e) | None -> (false, now)
  in
  let duration = stop -. start in
  let pad = String.make indent ' ' in
  let share =
    if indent = 0 || total <= 0. then ""
    else Printf.sprintf " (%2.0f%%)" (100. *. duration /. total)
  in
  Buffer.add_string b
    (Printf.sprintf "%s%-12s %8.2f .. %8.2f  =%7.2f%s%s\n" pad
       (if indent = 0 then span_title s else Metrics.span_kind s)
       start stop duration share
       (if ended then "" else "  [open]"));
  (match attr (Metrics.span_attrs s) "outcome" with
  | Some "error" ->
    let reason =
      Option.value ~default:"?" (attr (Metrics.span_attrs s) "reason")
    in
    Buffer.add_string b (Printf.sprintf "%s  !! failed: %s\n" pad reason)
  | _ -> ());
  List.iter
    (render_span b ~now ~indent:(indent + 2) ~total:duration)
    (Metrics.span_children s)

let render_spans ~now registry =
  let b = Buffer.create 512 in
  (match Metrics.roots registry with
  | [] -> Buffer.add_string b "no reconfiguration spans recorded\n"
  | roots ->
    Buffer.add_string b "disruption windows (virtual time):\n";
    List.iter (fun s -> render_span b ~now ~indent:0 ~total:0. s) roots);
  Buffer.contents b

let render ~now registry =
  Metrics.run_collectors registry;
  let b = Buffer.create 1024 in
  Buffer.add_string b (render_spans ~now registry);
  (match Metrics.counters registry with
  | [] -> ()
  | counters ->
    Buffer.add_string b "\ncounters:\n";
    List.iter
      (fun (name, labels, v) ->
        Buffer.add_string b
          (Printf.sprintf "  %s%s = %d\n" name (labels_str labels) v))
      counters);
  (match Metrics.gauges registry with
  | [] -> ()
  | gauges ->
    Buffer.add_string b "\ngauges:\n";
    List.iter
      (fun (name, labels, v) ->
        Buffer.add_string b
          (Printf.sprintf "  %s%s = %g\n" name (labels_str labels) v))
      gauges);
  Buffer.contents b
