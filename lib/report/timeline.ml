module Bus = Dr_bus.Bus
module Trace = Dr_sim.Trace

let default_events =
  [ "script"; "signal"; "state"; "lifecycle"; "crash"; "fault"; "rollback";
    "supervisor" ]

(* Marker characters drawn on an instance's bar:
   S — reconfiguration signal delivered
   D — state divulged
   R — state deposited (restoration)
   X — crash
   L — injected message loss at the sending instance
   B — instance brought back by a rollback *)
let marker_of_entry (e : Trace.entry) instance =
  let starts prefix =
    let d = e.detail in
    String.length d >= String.length prefix
    && String.equal (String.sub d 0 (String.length prefix)) prefix
  in
  (* instance names can be prefixes of each other (compute, compute'):
     where the name ends the detail, require exact equality *)
  match e.category with
  | "signal" when String.equal e.detail ("reconfiguration signal -> " ^ instance)
    ->
    Some 'S'
  | "state" when starts (instance ^ " divulged") -> Some 'D'
  | "state" when String.equal e.detail ("state image deposited into " ^ instance)
    ->
    Some 'R'
  | "crash" when starts (instance ^ " crashed") -> Some 'X'
  | "fault" when starts ("injected loss: " ^ instance ^ ".") -> Some 'L'
  | "rollback" when String.equal e.detail ("restored instance " ^ instance) ->
    Some 'B'
  | _ -> None

let render ?(width = 60) ?(events = default_events) bus =
  let buf = Buffer.create 1024 in
  let roster = Bus.roster bus in
  let t_end = Float.max (Bus.now bus) 1e-9 in
  let column time =
    let c = int_of_float (time /. t_end *. float_of_int (width - 1)) in
    max 0 (min (width - 1) c)
  in
  let name_width =
    List.fold_left
      (fun acc (r : Bus.roster_entry) ->
        max acc (String.length r.r_instance))
      8 roster
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s t=0%s t=%.1f\n" name_width ""
       (String.make (max 0 (width - 8)) ' ')
       t_end);
  let entries = Trace.entries (Bus.trace bus) in
  List.iter
    (fun (r : Bus.roster_entry) ->
      let bar = Bytes.make width ' ' in
      let start_col = column r.r_started in
      let end_col =
        match r.r_ended with Some t -> column t | None -> width - 1
      in
      for i = start_col to end_col do
        Bytes.set bar i '='
      done;
      Bytes.set bar start_col '[';
      (match r.r_ended with Some _ -> Bytes.set bar end_col ']' | None -> ());
      List.iter
        (fun (e : Trace.entry) ->
          match marker_of_entry e r.r_instance with
          | Some marker -> Bytes.set bar (column e.time) marker
          | None -> ())
        entries;
      let state =
        match r.r_status with
        | None -> "removed"
        | Some status -> Fmt.str "%a" Dr_interp.Machine.pp_status status
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s %s  %s on %s (%s)\n" name_width r.r_instance
           (Bytes.to_string bar) r.r_module r.r_host state))
    roster;
  Buffer.add_string buf
    "\n\
    \  [ start   ] end   S signal   D divulge   R restore   X crash   L loss  \
    \ B rollback\n";
  let logged =
    List.filter (fun (e : Trace.entry) -> List.mem e.category events) entries
  in
  if logged <> [] then begin
    Buffer.add_string buf "\nevents:\n";
    List.iter
      (fun (e : Trace.entry) ->
        Buffer.add_string buf
          (Printf.sprintf "  [%8.2f] %-10s %s\n" e.time e.category e.detail))
      logged
  end;
  Buffer.contents buf
