(* Abstract syntax of the module interconnection language (MIL), the
   configuration specification of Fig. 2: module specifications with
   typed message interfaces and reconfiguration points, and application
   specifications with instances and bindings. *)

type msg_ty = Mint | Mfloat | Mbool | Mstr

(* Interface roles, as in the paper's example:
   - [Define]: produces messages (outgoing stream);
   - [Use]: consumes messages (incoming stream);
   - [Client]: sends requests, accepts replies (bidirectional);
   - [Server]: receives requests, returns replies (bidirectional). *)
type role = Client | Server | Use | Define

type iface = {
  if_name : string;
  role : role;
  pattern : msg_ty list;   (* types carried in the primary direction *)
  accepts : msg_ty list;   (* client: reply types *)
  returns : msg_ty list;   (* server: reply types *)
}

type point_decl = {
  rp_label : string;
  rp_state : string list option;  (* variables comprising the state *)
}

type module_spec = {
  ms_name : string;
  source : string option;
  machine : string option;  (* preferred host *)
  ifaces : iface list;
  points : point_decl list;
  attrs : (string * string) list;  (* any other key = "value" attributes *)
}

type instance_decl = {
  inst_name : string;
  inst_module : string;
  inst_host : string option;
}

(* bind "display temper" "compute display" — endpoints are
   (instance, interface) pairs. *)
type binding_decl = {
  b_from : string * string;
  b_to : string * string;
}

type application = {
  app_name : string;
  instances : instance_decl list;
  binds : binding_decl list;
}

type config = { modules : module_spec list; apps : application list }

let msg_ty_name = function
  | Mint -> "integer"
  | Mfloat -> "float"
  | Mbool -> "boolean"
  | Mstr -> "string"

let msg_ty_of_lang : Dr_lang.Ast.ty -> msg_ty option = function
  | Tint -> Some Mint
  | Tfloat -> Some Mfloat
  | Tbool -> Some Mbool
  | Tstr -> Some Mstr
  | Tarr _ | Tptr _ -> None

let role_name = function
  | Client -> "client"
  | Server -> "server"
  | Use -> "use"
  | Define -> "define"

(* Can a message be sent out of / received into an interface with this
   role? Client/server interfaces carry traffic both ways. *)
let can_send = function Define | Client | Server -> true | Use -> false
let can_receive = function Use | Client | Server -> true | Define -> false

let find_module config name =
  List.find_opt (fun m -> String.equal m.ms_name name) config.modules

let find_app config name =
  List.find_opt (fun a -> String.equal a.app_name name) config.apps

let find_iface spec name =
  List.find_opt (fun i -> String.equal i.if_name name) spec.ifaces

let find_instance app name =
  List.find_opt (fun i -> String.equal i.inst_name name) app.instances

(* Indexed lookups for large applications: the [find_*] scans above are
   fine for hand-written configs but turn binding resolution into
   O(instances x binds) when a 100k-instance deploy resolves every
   endpoint. Each index is built once per deploy/validation pass;
   first occurrence wins, matching [List.find_opt] on specs that carry
   duplicate names (the validator reports those separately). *)
let index_instances app =
  let tbl = Hashtbl.create (max 16 (List.length app.instances)) in
  List.iter
    (fun i ->
      if not (Hashtbl.mem tbl i.inst_name) then Hashtbl.add tbl i.inst_name i)
    app.instances;
  tbl

let index_modules config =
  let tbl = Hashtbl.create (max 16 (List.length config.modules)) in
  List.iter
    (fun m ->
      if not (Hashtbl.mem tbl m.ms_name) then Hashtbl.add tbl m.ms_name m)
    config.modules;
  tbl
