open Spec

let duplicates names =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then true
      else begin
        Hashtbl.replace seen n ();
        false
      end)
    names

let validate_module m =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  List.iter
    (fun n -> err "module %s: duplicate interface %s" m.ms_name n)
    (duplicates (List.map (fun i -> i.if_name) m.ifaces));
  List.iter
    (fun n -> err "module %s: duplicate reconfiguration point %s" m.ms_name n)
    (duplicates (List.map (fun p -> p.rp_label) m.points));
  List.iter
    (fun i ->
      match i.role with
      | Client ->
        if i.returns <> [] then
          err "module %s: client interface %s cannot declare 'returns'"
            m.ms_name i.if_name
      | Server ->
        if i.accepts <> [] then
          err "module %s: server interface %s cannot declare 'accepts'"
            m.ms_name i.if_name
      | Use | Define ->
        if i.accepts <> [] || i.returns <> [] then
          err "module %s: %s interface %s carries messages one way only"
            m.ms_name (role_name i.role) i.if_name)
    m.ifaces;
  !errors

let validate_app config app =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* indexed lookups: binding resolution must stay linear in the number
     of binds, not O(instances x binds) — at 100k instances the scans
     would dominate the whole deploy *)
  let inst_index = index_instances app in
  let mod_index = index_modules config in
  List.iter
    (fun n -> err "application %s: duplicate instance %s" app.app_name n)
    (duplicates (List.map (fun i -> i.inst_name) app.instances));
  List.iter
    (fun inst ->
      if Hashtbl.find_opt mod_index inst.inst_module = None then
        err "application %s: instance %s references unknown module %s"
          app.app_name inst.inst_name inst.inst_module)
    app.instances;
  let resolve (inst_name, if_name) =
    match Hashtbl.find_opt inst_index inst_name with
    | None ->
      err "application %s: binding references unknown instance %s" app.app_name
        inst_name;
      None
    | Some inst -> (
      match Hashtbl.find_opt mod_index inst.inst_module with
      | None -> None
      | Some m -> (
        match find_iface m if_name with
        | None ->
          err "application %s: module %s has no interface %s" app.app_name
            m.ms_name if_name;
          None
        | Some iface -> Some iface))
  in
  List.iter
    (fun b ->
      match resolve b.b_from, resolve b.b_to with
      | Some from_if, Some to_if -> (
        let bname =
          Printf.sprintf "bind \"%s %s\" \"%s %s\"" (fst b.b_from) (snd b.b_from)
            (fst b.b_to) (snd b.b_to)
        in
        match from_if.role, to_if.role with
        | Define, Use ->
          if from_if.pattern <> to_if.pattern then
            err "%s: pattern mismatch (%s vs %s)" bname
              (String.concat "," (List.map msg_ty_name from_if.pattern))
              (String.concat "," (List.map msg_ty_name to_if.pattern))
        | Client, Server ->
          if from_if.pattern <> to_if.pattern then
            err "%s: request pattern mismatch" bname;
          if from_if.accepts <> to_if.returns then
            err "%s: reply pattern mismatch" bname
        | Server, Client ->
          err "%s: write the binding client-to-server" bname
        | Use, _ -> err "%s: interface %s cannot send" bname from_if.if_name
        | _, Define -> err "%s: interface %s cannot receive" bname to_if.if_name
        | _, _ ->
          err "%s: incompatible roles %s -> %s" bname (role_name from_if.role)
            (role_name to_if.role))
      | _ -> ())
    app.binds;
  match List.rev !errors with [] -> Ok () | es -> Error es

let validate config =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  List.iter
    (fun n -> err "duplicate module %s" n)
    (duplicates (List.map (fun m -> m.ms_name) config.modules));
  List.iter
    (fun n -> err "duplicate application %s" n)
    (duplicates (List.map (fun a -> a.app_name) config.apps));
  List.iter (fun m -> errors := validate_module m @ !errors) config.modules;
  List.iter
    (fun a ->
      match validate_app config a with
      | Ok () -> ()
      | Error es -> errors := es @ !errors)
    config.apps;
  match List.rev !errors with [] -> Ok () | es -> Error es

(* -------------------------------------------------------------------- *)
(* Cross-checking a module's program against its specification.          *)

let interface_literals (program : Dr_lang.Ast.program) =
  (* (interface, operation) pairs from mh_read/mh_write/mh_query
     occurrences whose interface argument is a string literal. *)
  let acc = ref [] in
  let rec expr (e : Dr_lang.Ast.expr) =
    match e with
    | Builtin ("mh_query", [ Str iface ]) -> acc := (iface, `Query) :: !acc
    | Int _ | Float _ | Bool _ | Str _ | Null | Var _ -> ()
    | Index (a, i) -> expr a; expr i
    | Addr (_, i) -> expr i
    | Unop (_, e) -> expr e
    | Binop (_, a, b) -> expr a; expr b
    | Call (_, args) | Builtin (_, args) -> List.iter expr args
  in
  List.iter
    (fun (p : Dr_lang.Ast.proc) ->
      Dr_lang.Ast.iter_stmts
        (fun s ->
          match s.kind with
          | BuiltinS ("mh_read", Aexpr (Str iface) :: _) ->
            acc := (iface, `Read) :: !acc
          | BuiltinS ("mh_write", Aexpr (Str iface) :: _) ->
            acc := (iface, `Write) :: !acc
          | Decl (_, _, Some e) -> expr e
          | Assign (_, e) -> expr e
          | If (c, _, _) | While (c, _) -> expr c
          | CallS (_, args) -> List.iter expr args
          | Return (Some e) -> expr e
          | Sleep e -> expr e
          | Print es -> List.iter expr es
          | BuiltinS (_, args) ->
            List.iter
              (function Dr_lang.Ast.Aexpr e -> expr e | Alv _ -> ())
              args
          | Decl (_, _, None) | Return None | Goto _ | Skip -> ())
        p.body)
    program.procs;
  List.rev !acc

let check_program_against_spec (spec : module_spec)
    (program : Dr_lang.Ast.program) =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* reconfiguration points: label must exist somewhere; declared state
     variables must exist in the procedure containing the label *)
  List.iter
    (fun point ->
      let holder =
        List.find_opt
          (fun (p : Dr_lang.Ast.proc) ->
            List.mem point.rp_label (Dr_lang.Ast.labels_in_block p.body))
          program.procs
      in
      match holder with
      | None ->
        err "module %s: reconfiguration point %s has no matching label"
          spec.ms_name point.rp_label
      | Some proc -> (
        match point.rp_state with
        | None -> ()
        | Some vars ->
          let known =
            List.map (fun (p : Dr_lang.Ast.param) -> p.pname) proc.params
            @ List.map fst (Dr_lang.Typecheck.locals_of_proc proc)
            @ List.map (fun (g : Dr_lang.Ast.global) -> g.gname) program.globals
          in
          List.iter
            (fun v ->
              if not (List.mem v known) then
                err
                  "module %s: point %s lists state variable %s, unknown in \
                   procedure %s"
                  spec.ms_name point.rp_label v proc.proc_name)
            vars))
    spec.points;
  (* interfaces used by the program must be declared with a usable
     direction *)
  List.iter
    (fun (iface, op) ->
      match find_iface spec iface with
      | None ->
        err "module %s: program uses undeclared interface %s" spec.ms_name iface
      | Some i -> (
        match op with
        | `Write ->
          if not (can_send i.role) then
            err "module %s: program writes on %s interface %s" spec.ms_name
              (role_name i.role) iface
        | `Read | `Query ->
          if not (can_receive i.role) then
            err "module %s: program reads from %s interface %s" spec.ms_name
              (role_name i.role) iface))
    (interface_literals program);
  match List.rev !errors with [] -> Ok () | es -> Error es
