(** An elastic worker farm: a feeder produces jobs, a dispatcher
    round-robins them over up to three worker slots, workers compute and
    report to a collector. The active slot count is itself application
    state (changed by control messages), workers are added and retired
    at run time, and the dispatcher — the stateful coordinator — can be
    migrated under load.

    Invariant: every job's result arrives at the collector exactly once,
    whatever reconfigurations happen in flight. *)

val mil : string
val sources : (string * string) list
val hosts : Dr_bus.Bus.host list

val job_count : int
(** The feeder produces jobs 1..job_count, then stops. *)

val load : unit -> Dynrecon.System.t

val start : ?params:Dr_bus.Bus.params -> Dynrecon.System.t -> Dr_bus.Bus.t
(** Deploys the farm with worker slot 1 occupied (instance [w1]). *)

val scale_out : Dr_bus.Bus.t -> slot:int -> host:string -> (string, string) result
(** Occupy slot 2 or 3: spawn a worker, bind it, and raise the
    dispatcher's active-slot count. Returns the worker's instance
    name. *)

val scale_in : Dr_bus.Bus.t -> unit
(** Lower the dispatcher's active-slot count by one (the highest
    occupied slot stops receiving new jobs; its queue drains). *)

val dispatcher_backlog : Dr_bus.Bus.t -> instance:string -> int
(** Jobs queued at the dispatcher. *)

val worker_drain_group : Dr_bus.Bus.t -> string list
(** Register the live workers as a bus drain group
    ({!Dr_bus.Bus.set_drain_group}) and return them, sorted — jobs
    routed to a member marked draining are absorbed by its siblings,
    on the {e routed} delivery path (unlike the kvstore group, which
    is driven by direct injection). *)

val results : Dr_bus.Bus.t -> int list
(** Job results the collector has received, in arrival order. *)

val expected_results : int list
(** Squares of 1..job_count, sorted. *)
