let parse name source =
  try Dr_lang.Parser.parse_program source
  with Dr_lang.Parser.Error (message, line) ->
    failwith (Printf.sprintf "synthetic %s: line %d: %s" name line message)

let hotloop ~rounds ~inner =
  parse "hotloop"
    (Printf.sprintf
       {|
module hotloop;

var acc: int = 0;

proc rare_check(round: int) {
  Rrare: acc = acc + round %% 7;
}

proc main() {
  var i: int;
  var j: int;
  mh_init();
  i = 0;
  while (i < %d) {
    j = 0;
    while (j < %d) {
      acc = acc + (j * 31) %% 97;
      Rinner: j = j + 1;
    }
    Router: i = i + 1;
    if (i %% 16 == 0) {
      rare_check(i);
    }
  }
  print("acc=", acc);
}
|}
       rounds inner)

let hotloop_points placement =
  let point label proc =
    [ { Dr_transform.Instrument.pt_proc = proc; pt_label = label; pt_vars = None } ]
  in
  match placement with
  | `Inner -> point "Rinner" "main"
  | `Outer -> point "Router" "main"
  | `Rare -> point "Rrare" "rare_check"

let deeprec ~depth =
  parse "deeprec"
    (Printf.sprintf
       {|
module deeprec;

var ticks: int = 0;

proc dive(depth: int, ref out: int) {
  var here: int;
  var weight: float;
  here = depth * 3;
  weight = float(depth) / 2.0;
  if (depth <= 0) {
    while (true) {
      R: out = out + 1;
      ticks = ticks + here + int(weight);
      sleep(1);
    }
  }
  dive(depth - 1, out);
  out = out + here;
}

proc main() {
  var total: int;
  mh_init();
  total = 0;
  dive(%d, total);
}
|}
       depth)

let deeprec_points =
  [ { Dr_transform.Instrument.pt_proc = "dive"; pt_label = "R"; pt_vars = None } ]

(* [deeprec] made bus-hostable and widened: every activation record
   carries [payload] extra live int locals, so the captured image grows
   as depth x payload. The payload vars are read after the recursive
   call (keeping them live across it, hence in every frame's capture
   set) and in the bottom loop (keeping the deepest frame's copies
   live at R). *)
let deeprec_payload ~depth ~payload =
  let line f = String.concat "\n  " (List.init payload f) in
  let decls = line (fun i -> Printf.sprintf "var p%d: int;" i) in
  let inits = line (fun i -> Printf.sprintf "p%d = depth * 7 + %d;" i i) in
  let sum =
    String.concat " + " ("here" :: List.init payload (Printf.sprintf "p%d"))
  in
  parse "deeprec_payload"
    (Printf.sprintf
       {|
module deeppay;

var ticks: int = 0;

proc dive(depth: int, ref out: int) {
  var here: int;
  %s
  here = depth * 3;
  %s
  if (depth <= 0) {
    while (true) {
      R: out = out + 1;
      ticks = ticks + %s;
      sleep(1);
    }
  }
  dive(depth - 1, out);
  out = out + %s;
}

proc main() {
  var total: int;
  mh_init();
  total = 0;
  dive(%d, total);
}
|}
       decls inits sum sum depth)

(* A loop whose inner body recomputes a loop-invariant value each
   iteration. With no label in the inner loop the optimiser can hoist
   it; a reconfiguration point inside pins it (paper §4: points can
   prohibit code motion). *)
let hoistable ?(point = `No) ~rounds ~inner () =
  let inner_label = match point with `Inner -> "R: " | `No | `Outer -> "" in
  let outer_label = match point with `Outer -> "R: " | `No | `Inner -> "" in
  parse "hoistable"
    (Printf.sprintf
       {|
module hoistable;

var acc: int = 0;
var seed: int = 13;

proc main() {
  var i: int;
  var j: int;
  var scale: int;
  mh_init();
  i = 0;
  while (i < %d) {
    j = 0;
    while (j < %d) {
      scale = seed * 31 + 7;
      acc = acc + j * scale;
      %sj = j + 1;
    }
    %si = i + 1;
  }
  print("acc=", acc);
}
|}
       rounds inner inner_label outer_label)

let hoistable_points =
  [ { Dr_transform.Instrument.pt_proc = "main"; pt_label = "R"; pt_vars = None } ]

let layered_source ~iterations ~leaf_const ~mid_const ~main_const =
  Printf.sprintf
    {|
module layered;

var out: int = 0;

proc leaf(x: int): int {
  return x * 2 + %d;
}

proc mid(x: int): int {
  var y: int;
  y = leaf(x);
  return y + %d;
}

proc main() {
  var i: int;
  var v: int;
  i = 0;
  while (i < %d) {
    v = mid(i + %d);
    out = out + v;
    i = i + 1;
  }
  print("out=", out);
}
|}
    leaf_const mid_const iterations main_const

let layered ~iterations =
  parse "layered"
    (layered_source ~iterations ~leaf_const:1 ~mid_const:10 ~main_const:0)

let layered_pointed ~iterations =
  parse "layered_pointed"
    (Printf.sprintf
       {|
module layered;

var out: int = 0;

proc leaf(x: int): int {
  return x * 2 + 1;
}

proc mid(x: int, ref y: int) {
  y = leaf(x);
  R: y = y + 10;
}

proc main() {
  var i: int;
  var v: int;
  i = 0;
  while (i < %d) {
    mid(i, v);
    out = out + v;
    i = i + 1;
  }
  print("out=", out);
}
|}
       iterations)

let layered_points =
  [ { Dr_transform.Instrument.pt_proc = "mid"; pt_label = "R"; pt_vars = None } ]

let layered_variant ~iterations ~change =
  let leaf_const, mid_const, main_const =
    match change with
    | `Leaf -> (2, 10, 0)
    | `Mid -> (1, 20, 0)
    | `Main -> (1, 10, 5)
  in
  parse "layered_variant"
    (layered_source ~iterations ~leaf_const ~mid_const ~main_const)
