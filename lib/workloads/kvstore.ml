let capacity = 64

let mil =
  {|
module store {
  source = "./store.exe";
  use interface set pattern {integer};
  server interface get pattern {integer} returns {integer};
  reconfiguration point R;
}

module client {
  source = "./client.exe";
  define interface set pattern {integer};
  client interface get pattern {integer} accepts {integer};
}

application kv {
  instance store on "hostA";
  instance client on "hostB";
  bind "client set" "store set";
  bind "client get" "store get";
}
|}

(* The table is a heap array reached from a global; a second global
   pointer into the same block exercises aliasing across capture. *)
let store_source =
  Printf.sprintf
    {|
module store;

var table: int[];
var cursor: int*;
var ready: bool = false;

proc apply_set(cmd: int) {
  table[cmd / 1000] = cmd %% 1000;
  cursor = &table[cmd / 1000];
}

proc main() {
  var cmd: int;
  var k: int;
  mh_init();
  if (!ready) {
    table = alloc_int(%d);
    cursor = &table[0];
    ready = true;
  }
  while (true) {
    while (mh_query("set")) {
      mh_read("set", cmd);
      apply_set(cmd);
    }
    while (mh_query("get")) {
      R: mh_read("get", k);
      mh_write("get", table[k]);
    }
    sleep(1);
  }
}
|}
    capacity

(* Keys cycle below the store's capacity; the value stored under key k
   is always k*7, so every reply is checkable: v = k*7. *)
let client_source =
  {|
module client;

proc main() {
  var i: int;
  var k: int;
  var v: int;
  mh_init();
  i = 1;
  while (true) {
    k = i % 60;
    mh_write("set", k * 1000 + k * 7);
    if (i % 3 == 0) {
      mh_write("get", k);
      mh_read("get", v);
      print("got ", k, " -> ", v);
    }
    i = i + 1;
    sleep(3);
  }
}
|}

let sources = [ ("store", store_source); ("client", client_source) ]

let hosts =
  [ { Dr_bus.Bus.host_name = "hostA"; arch = Dr_state.Arch.x86_64 };
    { Dr_bus.Bus.host_name = "hostB"; arch = Dr_state.Arch.arm32 };
    { Dr_bus.Bus.host_name = "hostC"; arch = Dr_state.Arch.sparc32 } ]

let load () =
  match Dynrecon.System.load ~mil ~sources () with
  | Ok system -> system
  | Error e -> failwith ("kvstore: load failed: " ^ e)

let start ?params system =
  match
    Dynrecon.System.start system ~app:"kv" ~hosts ?params ~default_host:"hostA"
      ()
  with
  | Ok bus -> bus
  | Error e -> failwith ("kvstore: start failed: " ^ e)

let encode_set ~key ~value = (key * 1000) + value

let client_got bus =
  List.filter_map
    (fun line ->
      try Scanf.sscanf line "got %d -> %d" (fun k v -> Some (k, v))
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
    (Dr_bus.Bus.outputs bus ~instance:"client")

(* ================================================================== *)
(* Replica-group variant: N interchangeable stores behind drain-aware
   routing, the workload of the rolling-replacement controller.        *)
(* ================================================================== *)

module Replica = struct
  let capacity = 512 (* keys are encoded modulo 500 *)

  (* Requests and replies travel as single integers:
       request = id * 1000 + op * 500 + key   (op 0 = get, 1 = set)
       reply   = id * 1000 + value            (value < 1000)
     The stored value is a pure function of the key ((key*7) mod 251),
     and a get of a never-set key answers the same function — so every
     reply is checkable no matter which sibling absorbed the redirected
     request, and no matter how writes interleave with a replacement. *)
  let encode_request ~id ~op ~key = (id * 1000) + (op * 500) + key
  let decode_reply r = (r / 1000, r mod 1000)
  let expected_get ~key = key * 7 mod 251
  let set_ack = 507
  let bad_value = 666

  let serving_body =
    {|
    while (mh_query("req")) {
      mh_read("req", r);
      id = r / 1000;
      op = (r % 1000) / 500;
      k = r % 500;
      if (op == 1) {
        table[k] = (k * 7) % 251;
        v = 507;
      } else {
        v = table[k];
        if (v == 0) { v = (k * 7) % 251; }
      }
      mh_write("out", id * 1000 + v);
    }
|}

  (* The reconfiguration point sits on the idle-loop sleep, not inside
     the serving loop: a drained replica never re-enters the inner
     [while (mh_query(...))], so a point there would never be passed
     and a post-drain replace would hang until its deadline. *)
  let store_body ~module_name ~body =
    Printf.sprintf
      {|
module %s;

var table: int[];
var ready: bool = false;

proc main() {
  var r: int;
  var id: int;
  var op: int;
  var k: int;
  var v: int;
  mh_init();
  if (!ready) {
    table = alloc_int(%d);
    ready = true;
  }
  while (true) {
%s    R: sleep(1);
  }
}
|}
      module_name capacity body

  let rstore_source = store_body ~module_name:"rstore" ~body:serving_body
  let rstorev2_source = store_body ~module_name:"rstorev2" ~body:serving_body

  (* The deliberately-bad canary build: same interfaces, same globals
     (so state transfer round-trips), but every reply carries a value
     no request can validate. *)
  let rstorebad_source =
    store_body ~module_name:"rstorebad"
      ~body:
        {|
    while (mh_query("req")) {
      mh_read("req", r);
      id = r / 1000;
      mh_write("out", id * 1000 + 666);
    }
|}

  (* Replies converge on a sink that never reads; the load generator
     drains its queue directly. *)
  let rsink_source = {|
module rsink;

proc main() {
  mh_init();
  while (true) {
    sleep(100);
  }
}
|}

  let store_spec name =
    Printf.sprintf
      {|
module %s {
  source = "./%s.exe";
  use interface req pattern {integer};
  define interface out pattern {integer};
  reconfiguration point R;
}
|}
      name name

  let slot i = Printf.sprintf "s%d" i
  let host i = Printf.sprintf "rh%d" i
  let sink = ("rsink", "out")

  let mil ~n =
    let b = Buffer.create 1024 in
    List.iter
      (fun m -> Buffer.add_string b (store_spec m))
      [ "rstore"; "rstorev2"; "rstorebad" ];
    Buffer.add_string b
      {|
module rsink {
  source = "./rsink.exe";
  use interface out pattern {integer};
}

application rgroup {
|};
    for i = 1 to n do
      Buffer.add_string b
        (Printf.sprintf "  instance %s = rstore on \"%s\";\n" (slot i) (host i))
    done;
    Buffer.add_string b "  instance rsink on \"rhsink\";\n";
    for i = 1 to n do
      Buffer.add_string b
        (Printf.sprintf "  bind \"%s out\" \"rsink out\";\n" (slot i))
    done;
    Buffer.add_string b "}\n";
    Buffer.contents b

  let sources =
    [ ("rstore", rstore_source);
      ("rstorev2", rstorev2_source);
      ("rstorebad", rstorebad_source);
      ("rsink", rsink_source) ]

  (* Every replica host shares one architecture so live pre-copy ships
     deltas instead of falling back to full images. *)
  let hosts ~n =
    List.init n (fun i ->
        { Dr_bus.Bus.host_name = host (i + 1); arch = Dr_state.Arch.x86_64 })
    @ [ { Dr_bus.Bus.host_name = "rhsink"; arch = Dr_state.Arch.x86_64 } ]

  let group ~n = List.init n (fun i -> (slot (i + 1), slot (i + 1)))

  let load ~n =
    match Dynrecon.System.load ~mil:(mil ~n) ~sources () with
    | Ok system -> system
    | Error e -> failwith ("kvstore replica group: load failed: " ^ e)

  let start ?params ?shards ~n system =
    match
      Dynrecon.System.start system ~app:"rgroup" ~hosts:(hosts ~n) ?params
        ?shards ~default_host:(host 1) ()
    with
    | Ok bus -> bus
    | Error e -> failwith ("kvstore replica group: start failed: " ^ e)
end

(* ------------------------------------------------------------------ *)
(* Seeded open-loop traffic over a replica group.                      *)
(* ------------------------------------------------------------------ *)

module Loadgen = struct
  module Bus = Dr_bus.Bus
  module Engine = Dr_sim.Engine
  module Metrics = Dr_obs.Metrics
  module Rolling = Dr_reconfig.Rolling

  type conf = {
    lc_rate : float;
    lc_read_ratio : float;
    lc_hot_ratio : float;
    lc_hot_keys : int;
    lc_keys : int;
    lc_seed : int;
    lc_duration : float;
  }

  let default_conf =
    { lc_rate = 4.0;
      lc_read_ratio = 0.5;
      lc_hot_ratio = 0.8;
      lc_hot_keys = 8;
      lc_keys = 100;
      lc_seed = 11;
      lc_duration = 60.0 }

  type pending = { p_sent : float; p_slot : string; p_expect : int }

  type t = {
    bus : Bus.t;
    conf : conf;
    metrics : Metrics.t;
    sink : Bus.endpoint;
    slots : string array;
    targets : (string, string) Hashtbl.t;  (* slot -> current instance *)
    prng : Dr_sim.Prng.t;
    pending : (int, pending) Hashtbl.t;
    mutable next_id : int;
    mutable sent : int;
    mutable shed : int;
    mutable answered : int;
    mutable wrong : int;
    mutable duplicated : int;
    mutable stray : int;
    mutable issuing : bool;
    mutable polling : bool;
    mutable stop_at : float;
  }

  let labels slot = [ ("slot", slot) ]

  (* Replies ride the routed path into the sink's queue; the generator
     owns the sink, so draining it here is the measurement point. *)
  let drain_replies t =
    List.iter
      (fun v ->
        match v with
        | Dr_state.Value.Vint r -> (
          let id, value = Replica.decode_reply r in
          match Hashtbl.find_opt t.pending id with
          | None ->
            (* answered before: the fault plane duplicated it somewhere
               the reliable layer didn't cover, or it's not ours *)
            t.duplicated <- t.duplicated + 1
          | Some p ->
            Hashtbl.remove t.pending id;
            t.answered <- t.answered + 1;
            let lat = Bus.now t.bus -. p.p_sent in
            Metrics.observe t.metrics ~labels:(labels p.p_slot)
              Rolling.latency_metric lat;
            Metrics.incr t.metrics ~labels:(labels p.p_slot)
              Rolling.answered_metric;
            if value <> p.p_expect then begin
              t.wrong <- t.wrong + 1;
              Metrics.incr t.metrics ~labels:(labels p.p_slot)
                Rolling.error_metric
            end)
        | _ -> t.stray <- t.stray + 1)
      (Bus.take_queue t.bus t.sink)

  let send t =
    let slot = t.slots.(Dr_sim.Prng.int t.prng (Array.length t.slots)) in
    let target =
      Option.value ~default:slot (Hashtbl.find_opt t.targets slot)
    in
    match Bus.resolve_drain t.bus ~instance:target with
    | None ->
      (* nowhere alive to admit it: shed explicitly, never silently.
         Shed is a disposition of a sent request, so the ledger
         invariant sent = answered + shed + inflight always holds. *)
      t.sent <- t.sent + 1;
      t.shed <- t.shed + 1;
      Metrics.incr t.metrics ~labels:(labels slot) Rolling.shed_metric
    | Some instance ->
      let key =
        if
          Dr_sim.Prng.float t.prng 1.0 < t.conf.lc_hot_ratio
          && t.conf.lc_hot_keys > 0
        then Dr_sim.Prng.int t.prng t.conf.lc_hot_keys
        else Dr_sim.Prng.int t.prng (max 1 t.conf.lc_keys)
      in
      let op =
        if Dr_sim.Prng.float t.prng 1.0 < t.conf.lc_read_ratio then 0 else 1
      in
      let id = t.next_id in
      t.next_id <- id + 1;
      let expect =
        if op = 0 then Replica.expected_get ~key else Replica.set_ack
      in
      Hashtbl.replace t.pending id
        { p_sent = Bus.now t.bus; p_slot = slot; p_expect = expect };
      t.sent <- t.sent + 1;
      Bus.inject t.bus
        ~dst:(instance, "req")
        (Dr_state.Value.Vint (Replica.encode_request ~id ~op ~key))

  let rec issue_tick t () =
    if t.issuing then begin
      if Bus.now t.bus < t.stop_at then begin
        send t;
        Engine.schedule (Bus.engine t.bus) ~delay:(1.0 /. t.conf.lc_rate)
          (issue_tick t)
      end
      else t.issuing <- false
    end

  let rec poll_tick t () =
    if t.polling then begin
      drain_replies t;
      (* keep polling while traffic is in flight, then let the engine
         run dry so drivers' [run ~until] bounds still terminate *)
      if t.issuing || Hashtbl.length t.pending > 0 then
        Engine.schedule (Bus.engine t.bus) ~delay:0.25 (poll_tick t)
      else t.polling <- false
    end

  let start bus conf ~slots =
    let metrics =
      match Bus.metrics bus with
      | Some m -> m
      | None ->
        let m = Metrics.create () in
        Bus.set_metrics bus m;
        m
    in
    let t =
      { bus; conf; metrics;
        sink = Replica.sink;
        slots = Array.of_list (List.map fst slots);
        targets = Hashtbl.create 8;
        prng = Dr_sim.Prng.create ~seed:conf.lc_seed;
        pending = Hashtbl.create 64;
        next_id = 1;
        sent = 0; shed = 0; answered = 0; wrong = 0; duplicated = 0;
        stray = 0;
        issuing = true;
        polling = true;
        stop_at = Bus.now bus +. conf.lc_duration }
    in
    List.iter (fun (slot, inst) -> Hashtbl.replace t.targets slot inst) slots;
    Engine.schedule (Bus.engine bus) ~delay:(1.0 /. conf.lc_rate)
      (issue_tick t);
    Engine.schedule (Bus.engine bus) ~delay:0.25 (poll_tick t);
    t

  let retarget t ~slot ~instance = Hashtbl.replace t.targets slot instance

  let stop t =
    t.issuing <- false;
    drain_replies t

  type stats = {
    st_sent : int;
    st_answered : int;
    st_shed : int;
    st_wrong : int;
    st_duplicated : int;
    st_stray : int;
    st_inflight : int;  (* sent, unanswered, not shed *)
  }

  let stats t =
    drain_replies t;
    { st_sent = t.sent;
      st_answered = t.answered;
      st_shed = t.shed;
      st_wrong = t.wrong;
      st_duplicated = t.duplicated;
      st_stray = t.stray;
      st_inflight = Hashtbl.length t.pending }
end
