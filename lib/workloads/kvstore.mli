(** A key-value store whose state lives in the heap: a client streams
    [set] commands and issues [get] requests; the store keeps values in
    a heap-allocated array reached through a global. Migrating the store
    exercises heap-block capture and symbolic-pointer translation —
    values written before a migration must be readable after it. *)

val mil : string
val sources : (string * string) list
val hosts : Dr_bus.Bus.host list

val capacity : int

val load : unit -> Dynrecon.System.t
val start : ?params:Dr_bus.Bus.params -> Dynrecon.System.t -> Dr_bus.Bus.t

val encode_set : key:int -> value:int -> int
(** Commands travel as a single integer [key * 1000 + value]. *)

val client_got : Dr_bus.Bus.t -> (int * int) list
(** (key, value) pairs the client printed from [get] replies. *)

(** A replica-group variant of the store: [n] interchangeable [rstore]
    instances ([s1] .. [sn], one per x86_64 host) answering on a [req]
    interface and replying into a shared sink, the workload of the
    rolling-replacement controller ({!Dr_reconfig.Rolling}). Three
    store builds are registered: [rstore] (v1), [rstorev2] (the upgrade
    target — same semantics) and [rstorebad] (the deliberately-bad
    canary build: every reply carries an unvalidatable value). Replies
    are a pure function of the key, so a request redirected to any
    sibling still validates. *)
module Replica : sig
  val capacity : int

  val encode_request : id:int -> op:int -> key:int -> int
  (** [op] 0 = get, 1 = set; [key < 500]. *)

  val decode_reply : int -> int * int
  (** [(id, value)]. *)

  val expected_get : key:int -> int
  val set_ack : int
  val bad_value : int

  val slot : int -> string
  (** Instance name of the [i]-th replica ([s1] ..). *)

  val sink : Dr_bus.Bus.endpoint
  (** Where replies accumulate ([rsink.out]); never read by a machine —
      the load generator drains it. *)

  val mil : n:int -> string
  val sources : (string * string) list
  val hosts : n:int -> Dr_bus.Bus.host list

  val group : n:int -> (string * string) list
  (** The [(slot, instance)] pairs of a fresh deployment, ready for
      {!Dr_reconfig.Rolling.run} / {!Loadgen.start}. *)

  val load : n:int -> Dynrecon.System.t

  val start :
    ?params:Dr_bus.Bus.params ->
    ?shards:int ->
    n:int ->
    Dynrecon.System.t ->
    Dr_bus.Bus.t
end

(** Seeded open-loop traffic generator over a {!Replica} group:
    requests are injected at a fixed rate (loss-free by construction —
    admission control is the drain hook's job), each one addressed
    through {!Dr_bus.Bus.resolve_drain} so draining members are
    avoided and a group with no live member sheds {e explicitly}.
    Every request is accounted exactly-once-or-shed: answered (latency
    recorded into the {!Dr_reconfig.Rolling} metric contract, wrong
    values counted), still in flight, or shed at admission; surplus
    replies count as duplicates. *)
module Loadgen : sig
  type conf = {
    lc_rate : float;  (** requests per unit of virtual time *)
    lc_read_ratio : float;  (** fraction of gets *)
    lc_hot_ratio : float;  (** traffic fraction on the hot key range *)
    lc_hot_keys : int;
    lc_keys : int;  (** total key range (< 500) *)
    lc_seed : int;
    lc_duration : float;  (** stop issuing after this much time *)
  }

  val default_conf : conf

  type t

  val start : Dr_bus.Bus.t -> conf -> slots:(string * string) list -> t
  (** Begin issuing. [slots] is the replica group as [(slot, instance)];
      per-slot metrics are labelled by slot. Attaches a metrics
      registry to the bus if none is present. Ticks stop by themselves
      once issuing is done and every reply is in, so driver [run]
      bounds still terminate. *)

  val retarget : t -> slot:string -> instance:string -> unit
  (** Follow a roster change (feed {!Dr_reconfig.Rolling.run}'s
      [on_retarget] here). *)

  val stop : t -> unit
  (** Stop issuing early (replies keep being collected). *)

  type stats = {
    st_sent : int;
    st_answered : int;
    st_shed : int;
    st_wrong : int;  (** answered with a value that fails validation *)
    st_duplicated : int;
    st_stray : int;  (** non-integer values in the sink *)
    st_inflight : int;  (** sent, not yet answered *)
  }

  val stats : t -> stats
  (** Drains pending replies first. Zero-loss gate:
      [st_sent = st_answered] and [st_inflight = 0] after the fleet
      runs dry. *)
end
