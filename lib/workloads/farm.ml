module Bus = Dr_bus.Bus

let job_count = 40

let mil =
  Printf.sprintf
    {|
module feeder {
  define interface jobs pattern {integer};
}

module dispatcher {
  use interface jobs pattern {integer};
  use interface ctl pattern {integer};
  define interface out1 pattern {integer};
  define interface out2 pattern {integer};
  define interface out3 pattern {integer};
  reconfiguration point R state {active, next_slot, j};
}

module worker {
  use interface in pattern {integer};
  define interface done pattern {integer};
  reconfiguration point R;
}

module collector {
  use interface done pattern {integer};
}

application farm {
  instance feeder on "hostA";
  instance dispatcher on "hostA";
  instance w1 = worker on "hostB";
  instance collector on "hostA";
  bind "feeder jobs" "dispatcher jobs";
  bind "dispatcher out1" "w1 in";
  bind "w1 done" "collector done";
}
|}

let feeder_source =
  Printf.sprintf
    {|
module feeder;

var produced: int = 0;

proc main() {
  mh_init();
  while (produced < %d) {
    produced = produced + 1;
    mh_write("jobs", produced);
    sleep(1);
  }
}
|}
    job_count

(* Round-robins jobs over the active slots. [active] is live application
   state: raised/lowered by ctl messages, and captured with the
   dispatcher when it migrates. *)
let dispatcher_source =
  {|
module dispatcher;

var active: int = 1;
var next_slot: int = 0;

proc main() {
  var j: int;
  mh_init();
  while (true) {
    while (mh_query("ctl")) {
      mh_read("ctl", active);
      if (next_slot >= active) { next_slot = 0; }
    }
    R: mh_read("jobs", j);
    if (next_slot == 0) { mh_write("out1", j); }
    if (next_slot == 1) { mh_write("out2", j); }
    if (next_slot == 2) { mh_write("out3", j); }
    next_slot = (next_slot + 1) % active;
  }
}
|}

let worker_source =
  {|
module worker;

var handled: int = 0;

proc main() {
  var j: int;
  mh_init();
  while (true) {
    R: mh_read("in", j);
    handled = handled + 1;
    sleep(2);
    mh_write("done", j * j);
  }
}
|}

let collector_source =
  {|
module collector;

var received: int = 0;

proc main() {
  var r: int;
  mh_init();
  while (true) {
    mh_read("done", r);
    received = received + 1;
    print("result ", r);
  }
}
|}

let sources =
  [ ("feeder", feeder_source);
    ("dispatcher", dispatcher_source);
    ("worker", worker_source);
    ("collector", collector_source) ]

let hosts =
  [ { Bus.host_name = "hostA"; arch = Dr_state.Arch.x86_64 };
    { Bus.host_name = "hostB"; arch = Dr_state.Arch.arm32 };
    { Bus.host_name = "hostC"; arch = Dr_state.Arch.sparc32 } ]

let load () =
  match Dynrecon.System.load ~mil ~sources () with
  | Ok system -> system
  | Error e -> failwith ("farm: load failed: " ^ e)

let start ?params system =
  match
    Dynrecon.System.start system ~app:"farm" ~hosts ?params ~default_host:"hostA"
      ()
  with
  | Ok bus -> bus
  | Error e -> failwith ("farm: start failed: " ^ e)

let dispatcher_instance bus =
  (* the dispatcher may have been migrated under a new name *)
  List.find_opt
    (fun inst -> Bus.instance_module bus ~instance:inst = Some "dispatcher")
    (Bus.instances bus)

let scale_out bus ~slot ~host =
  if slot < 2 || slot > 3 then Error "only slots 2 and 3 can be added"
  else
    match dispatcher_instance bus with
    | None -> Error "no dispatcher"
    | Some dispatcher -> (
      let worker = Printf.sprintf "w%d" slot in
      match Bus.spawn bus ~instance:worker ~module_name:"worker" ~host () with
      | Error e -> Error e
      | Ok () ->
        Bus.add_route bus
          ~src:(dispatcher, Printf.sprintf "out%d" slot)
          ~dst:(worker, "in");
        Bus.add_route bus ~src:(worker, "done") ~dst:("collector", "done");
        (* slots fill in order, so the new active count equals the slot *)
        Bus.inject bus ~dst:(dispatcher, "ctl") (Dr_state.Value.Vint slot);
        Ok worker)

let scale_in bus =
  match dispatcher_instance bus with
  | None -> ()
  | Some dispatcher ->
    (* conservative: drop back to 1 active slot; queued jobs at retired
       workers still drain because their routes stay up *)
    Bus.inject bus ~dst:(dispatcher, "ctl") (Dr_state.Value.Vint 1)

let dispatcher_backlog bus ~instance = Bus.pending_messages bus (instance, "jobs")

(* The occupied worker slots form a natural drain group: they serve the
   same jobs, so a draining worker's routed traffic can be absorbed by
   its siblings. Registers the group and returns the members. *)
let worker_drain_group bus =
  let workers =
    List.sort String.compare
      (List.filter
         (fun inst -> Bus.instance_module bus ~instance:inst = Some "worker")
         (Bus.instances bus))
  in
  Bus.set_drain_group bus ~members:workers;
  workers

let results bus =
  List.filter_map
    (fun line ->
      try Scanf.sscanf line "result %d" (fun v -> Some v)
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
    (Bus.outputs bus ~instance:"collector")

let expected_results = List.init job_count (fun i -> (i + 1) * (i + 1))
