(** A token ring whose topology evolves while the token circulates — an
    adaptation of the evolving philosophers problem (Kramer & Magee,
    discussed in the paper's §4). Members pass an incrementing token;
    reconfigurations insert members, migrate a member that may be
    holding the token (its value is then part of the captured process
    state), and remove members by re-routing around them.

    Invariant: the token is never lost or duplicated, so its value
    always equals the total number of passes performed by all members,
    past and present. *)

val mil : string
val sources : (string * string) list
val hosts : Dr_bus.Bus.host list

val load : unit -> Dynrecon.System.t

val start :
  ?params:Dr_bus.Bus.params -> ?shards:int -> Dynrecon.System.t -> Dr_bus.Bus.t
(** Deploys the 3-member ring a → b → c → a and injects the initial
    token (value 0) into [a]. *)

val large_mil : n:int -> string
(** MIL text for a generated [n]-member ring (instances [m0..m(n-1)]
    alternating across hosts, no tap) — the bench scaling workload. *)

val member_name : int -> string

val members : n:int -> string list

val load_large : n:int -> Dynrecon.System.t

val start_large :
  ?params:Dr_bus.Bus.params -> ?shards:int -> ?tokens:int ->
  Dynrecon.System.t -> n:int -> Dr_bus.Bus.t
(** Deploy the [n]-member ring and inject [tokens] (default 1) tokens at
    evenly spaced members, so up to [tokens] deliveries are in flight at
    once. *)

val chaos_plan :
  ?loss:float ->
  ?dup:float ->
  ?jitter:float ->
  ?host_crash:string * float ->
  ?host_recover:float ->
  unit ->
  Dr_bus.Faults.plan
(** A fault plan for the chaos variant: uniform message [loss] (default
    5%) and [dup] probabilities on every route, optional latency
    [jitter], and optionally a host crash at a virtual time (with a
    later recovery). Under loss the token invariant no longer holds —
    chaos runs measure whether {e reconfigurations} stay consistent, not
    whether the application survives an unreliable network. *)

val start_chaos :
  ?params:Dr_bus.Bus.params ->
  ?shards:int ->
  ?seed:int ->
  ?plan:Dr_bus.Faults.plan ->
  Dynrecon.System.t ->
  Dr_bus.Bus.t
(** [start] plus {!Dr_bus.Faults.install} of [plan] (default
    {!chaos_plan}[ ()]) seeded with [seed] (default 1) — a deterministic,
    replayable faulty run. *)

val passes : Dr_bus.Bus.t -> instance:string -> int
(** The member's pass counter (-1 if the instance is gone). *)

val total_passes : Dr_bus.Bus.t -> instances:string list -> int

val insert_member :
  Dr_bus.Bus.t ->
  instance:string ->
  host:string ->
  after:string ->
  before:string ->
  (unit, string) result
(** Splice a new member into the ring between [after] and [before]. *)

val bypass_member :
  Dr_bus.Bus.t -> instance:string -> pred:string -> succ:string -> unit
(** Route [pred] around [instance] (first step of safe removal); the
    bypassed member keeps its outgoing route so a token it still holds
    drains to [succ]. *)

val find_token : Dr_bus.Bus.t -> members:string list -> int option
(** Drain the ring's queues and return the token value, if the token is
    currently queued (it may instead be inside a member). *)

val tap_history : Dr_bus.Bus.t -> int list
(** Every token value the tap observer has seen, in order. *)

val history_consecutive : int list -> bool
(** True iff the history is exactly 1, 2, 3, … — the token was never
    lost, duplicated or reordered by any reconfiguration. *)

val history_exactly_once : int list -> bool
(** True iff the history is a permutation of 1, 2, 3, …, n — every token
    observed exactly once, in any order. The right invariant under the
    reliable delivery layer, where retransmission can reorder tokens
    across the member→tap channels without losing or duplicating any. *)
