(** Parameterised synthetic MiniProc programs for the benchmarks.

    - {!hotloop}: a two-level arithmetic loop with candidate
      reconfiguration points in the inner loop ([Rinner]), the outer loop
      ([Router]) and a rarely-called procedure ([Rrare]) — the placement
      trade-off of §4;
    - {!deeprec}: recursion to a fixed depth with the point in the
      deepest frame, driving activation-record capture cost and image
      size;
    - {!layered} / {!layered_variant}: a three-level call chain whose
      leaf, middle or main procedure can be "updated", for the
      procedure-level-update baseline. *)

val hotloop : rounds:int -> inner:int -> Dr_lang.Ast.program
(** Terminates after [rounds × inner] inner iterations and prints the
    accumulator. Labels: [Rinner] (hot), [Router] (per round), [Rrare]
    (in a procedure called once every 16 rounds). *)

val hotloop_points :
  [ `Inner | `Outer | `Rare ] -> Dr_transform.Instrument.point_spec list

val deeprec : depth:int -> Dr_lang.Ast.program
(** Dives to [depth] frames, then loops at the bottom around point [R]
    (sleeping between iterations), so a reconfiguration captures
    [depth + 2] activation records. *)

val deeprec_points : Dr_transform.Instrument.point_spec list

val deeprec_payload : depth:int -> payload:int -> Dr_lang.Ast.program
(** {!deeprec} made bus-hostable (module [deeppay], calls [mh_init])
    with [payload] extra int locals live in every activation record, so
    the captured state image scales as depth x payload. Drives the
    disruption-window benchmark. *)

val hoistable :
  ?point:[ `No | `Inner | `Outer ] ->
  rounds:int ->
  inner:int ->
  unit ->
  Dr_lang.Ast.program
(** An inner loop recomputing a loop-invariant value each iteration.
    [`Inner] places a reconfiguration point inside the inner loop,
    pinning the invariant there (the §4 code-motion inhibition);
    [`Outer] places it in the outer loop, where it does not block
    hoisting from the inner one. *)

val hoistable_points : Dr_transform.Instrument.point_spec list

val layered : iterations:int -> Dr_lang.Ast.program
(** A loop over a [main → mid → leaf] chain; terminates. *)

val layered_pointed : iterations:int -> Dr_lang.Ast.program
(** [layered] with a reconfiguration point inside [mid] (so the
    statement-level approach can reconfigure it at any iteration). *)

val layered_points : Dr_transform.Instrument.point_spec list

val layered_variant :
  iterations:int -> change:[ `Leaf | `Mid | `Main ] -> Dr_lang.Ast.program
(** The same program with exactly one procedure's body changed. *)
