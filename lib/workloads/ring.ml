module Bus = Dr_bus.Bus

let mil =
  {|
module member {
  source = "./member.exe";
  use interface in pattern {integer};
  define interface out pattern {integer};
  reconfiguration point R;
}

module tap {
  source = "./tap.exe";
  use interface in pattern {integer};
}

application ring {
  instance a = member on "hostA";
  instance b = member on "hostA";
  instance c = member on "hostB";
  bind "a out" "b in";
  bind "b out" "c in";
  bind "c out" "a in";
}
|}

let member_source =
  {|
module member;

var passes: int = 0;

proc main() {
  var token: int;
  mh_init();
  while (true) {
    R: mh_read("in", token);
    passes = passes + 1;
    token = token + 1;
    sleep(1);
    mh_write("out", token);
  }
}
|}

(* The tap observes every pass: each member's out fans out to the next
   member AND to the tap, so the tap sees the full token history. *)
let tap_source =
  {|
module tap;

var seen: int = 0;

proc main() {
  var t: int;
  mh_init();
  while (true) {
    mh_read("in", t);
    seen = seen + 1;
    print(t);
  }
}
|}

let sources = [ ("member", member_source); ("tap", tap_source) ]

let hosts =
  [ { Bus.host_name = "hostA"; arch = Dr_state.Arch.x86_64 };
    { Bus.host_name = "hostB"; arch = Dr_state.Arch.sparc32 };
    { Bus.host_name = "hostC"; arch = Dr_state.Arch.m68k } ]

let load () =
  match Dynrecon.System.load ~mil ~sources () with
  | Ok system -> system
  | Error e -> failwith ("ring: load failed: " ^ e)

let start ?params ?shards system =
  match
    Dynrecon.System.start system ~app:"ring" ~hosts ?params ?shards
      ~default_host:"hostA" ()
  with
  | Ok bus ->
    (match Bus.spawn bus ~instance:"tap" ~module_name:"tap" ~host:"hostA" () with
    | Ok () -> ()
    | Error e -> failwith ("ring: tap: " ^ e));
    List.iter
      (fun m -> Bus.add_route bus ~src:(m, "out") ~dst:("tap", "in"))
      [ "a"; "b"; "c" ];
    Bus.inject bus ~dst:("a", "in") (Dr_state.Value.Vint 0);
    bus
  | Error e -> failwith ("ring: start failed: " ^ e)

(* ------------------------------------------------------- large rings *)

(* A generated N-member ring (no tap) for the bench scaling suite: the
   same member module, instances m0..m(n-1) alternating across hosts,
   each bound to its successor. *)
let large_mil ~n =
  let buf = Buffer.create (256 + (n * 64)) in
  Buffer.add_string buf
    {|module member {
  source = "./member.exe";
  use interface in pattern {integer};
  define interface out pattern {integer};
  reconfiguration point R;
}

application ring {
|};
  for i = 0 to n - 1 do
    let host = if i mod 2 = 0 then "hostA" else "hostB" in
    Buffer.add_string buf (Printf.sprintf "  instance m%d = member on %S;\n" i host)
  done;
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  bind \"m%d out\" \"m%d in\";\n" i ((i + 1) mod n))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let member_name i = Printf.sprintf "m%d" i

let members ~n = List.init n member_name

let load_large ~n =
  match
    Dynrecon.System.load ~mil:(large_mil ~n)
      ~sources:[ ("member", member_source) ]
      ()
  with
  | Ok system -> system
  | Error e -> failwith ("ring: large load failed: " ^ e)

let start_large ?params ?shards ?(tokens = 1) system ~n =
  match
    Dynrecon.System.start system ~app:"ring" ~hosts ?params ?shards
      ~default_host:"hostA" ()
  with
  | Ok bus ->
    let tokens = max 1 (min tokens n) in
    let stride = n / tokens in
    for k = 0 to tokens - 1 do
      Bus.inject bus
        ~dst:(member_name (k * stride), "in")
        (Dr_state.Value.Vint (k * 1_000_000))
    done;
    bus
  | Error e -> failwith ("ring: large start failed: " ^ e)

(* ------------------------------------------------------------- chaos *)

module Faults = Dr_bus.Faults

let chaos_plan ?(loss = 0.05) ?(dup = 0.0) ?(jitter = 0.0) ?host_crash
    ?host_recover () =
  let events =
    (match host_crash with
    | None -> []
    | Some (h, t) -> [ (t, Faults.Host_crash h) ])
    @
    match (host_crash, host_recover) with
    | Some (h, _), Some t -> [ (t, Faults.Host_recover h) ]
    | _ -> []
  in
  Faults.plan ~events ~rules:[ Faults.rule ~loss ~dup () ] ~jitter ()

let start_chaos ?params ?shards ?(seed = 1) ?plan system =
  let bus = start ?params ?shards system in
  Faults.install bus ~seed (Option.value ~default:(chaos_plan ()) plan);
  bus

let passes bus ~instance =
  match Bus.machine bus ~instance with
  | Some m -> (
    match Dr_interp.Machine.read_global m "passes" with
    | Some (Dr_state.Value.Vint n) -> n
    | _ -> -1)
  | None -> -1

let total_passes bus ~instances =
  List.fold_left
    (fun acc instance -> acc + max 0 (passes bus ~instance))
    0 instances

let insert_member bus ~instance ~host ~after ~before =
  match Bus.spawn bus ~instance ~module_name:"member" ~host () with
  | Error _ as e -> e
  | Ok () ->
    Bus.del_route bus ~src:(after, "out") ~dst:(before, "in");
    Bus.add_route bus ~src:(after, "out") ~dst:(instance, "in");
    Bus.add_route bus ~src:(instance, "out") ~dst:(before, "in");
    Bus.add_route bus ~src:(instance, "out") ~dst:("tap", "in");
    Ok ()

let bypass_member bus ~instance ~pred ~succ =
  Bus.del_route bus ~src:(pred, "out") ~dst:(instance, "in");
  Bus.add_route bus ~src:(pred, "out") ~dst:(succ, "in")
  (* the bypassed member's own out-route stays: a token it holds or has
     queued still drains to [succ] *)

let find_token bus ~members =
  List.find_map
    (fun instance ->
      match Bus.take_queue bus (instance, "in") with
      | [ Dr_state.Value.Vint v ] -> Some v
      | [] -> None
      | _ -> None)
    members

let tap_history bus =
  List.filter_map int_of_string_opt (Bus.outputs bus ~instance:"tap")

let history_consecutive history =
  let rec check expected = function
    | [] -> true
    | v :: rest -> v = expected && check (expected + 1) rest
  in
  check 1 history

(* Exactly-once as a multiset property: every token 1..n observed once,
   none missing, none twice. Arrival *order* is deliberately not
   checked — under the reliable layer a retransmitted token can
   overtake a fresh one on a different member->tap channel, which is
   reordering, not loss or duplication. *)
let history_exactly_once history =
  let rec check expected = function
    | [] -> true
    | v :: rest -> v = expected && check (expected + 1) rest
  in
  check 1 (List.sort compare history)
