open Dr_lang

(* A flattened CFG node: use/def sets plus successor indices. *)
type node = {
  uses : string list;
  defs : string list;
  mutable succs : int list;
  src_label : string option;
  call_ordinal : int option;
      (* pre-order index among statement-level call sites, matching
         Callgraph ordinals *)
}

type t = {
  nodes : node array;
  live_in : string list array;
  live_out : string list array;
  params : string list;
}

let rec expr_uses acc (e : Ast.expr) =
  match e with
  | Int _ | Float _ | Bool _ | Str _ | Null -> acc
  | Var name -> name :: acc
  | Index (a, i) -> expr_uses (expr_uses acc a) i
  | Addr (name, i) -> expr_uses (name :: acc) i
  | Unop (_, e) -> expr_uses acc e
  | Binop (_, a, b) -> expr_uses (expr_uses acc a) b
  | Call (_, args) | Builtin (_, args) -> List.fold_left expr_uses acc args

let lvalue_uses acc = function
  | Ast.Lvar _ -> acc
  | Ast.Lindex (name, i) ->
    (* Writing through an index reads the base (array/pointer). *)
    expr_uses (name :: acc) i

let lvalue_defs = function
  | Ast.Lvar name -> [ name ]
  | Ast.Lindex _ -> []  (* heap write, not a variable definition *)

(* Flatten a body into nodes. Returns the node list (in order) with
   pending successor links resolved afterwards. *)
type builder = {
  mutable rev_nodes : node list;
  mutable count : int;
  mutable next_call_ordinal : int;
  labels : (string, int) Hashtbl.t;
  mutable gotos : (int * string) list;  (* node index, target label *)
  program : Ast.program option;
}

let new_node b ?src_label ?call_ordinal ~uses ~defs succs =
  let node = { uses; defs; succs; src_label; call_ordinal } in
  b.rev_nodes <- node :: b.rev_nodes;
  (match src_label with Some l -> Hashtbl.replace b.labels l b.count | None -> ());
  b.count <- b.count + 1;
  b.count - 1

(* Call-site uses/defs: plain arguments are used; arguments bound to ref
   parameters are both used and defined. *)
let call_effects b name args =
  let ref_flags =
    match b.program with
    | Some program -> (
      match Ast.find_proc program name with
      | Some callee -> List.map (fun (p : Ast.param) -> p.pref) callee.params
      | None -> List.map (fun _ -> false) args)
    | None -> List.map (fun _ -> false) args
  in
  let ref_flags =
    if List.length ref_flags = List.length args then ref_flags
    else List.map (fun _ -> false) args
  in
  let uses = List.fold_left expr_uses [] args in
  let defs =
    List.concat
      (List.map2
         (fun is_ref arg ->
           match is_ref, arg with true, Ast.Var v -> [ v ] | _ -> [])
         ref_flags args)
  in
  (uses, defs)

let arg_effects args =
  List.fold_left
    (fun (uses, defs) a ->
      match a with
      | Ast.Aexpr e -> (expr_uses uses e, defs)
      | Ast.Alv (Ast.Lvar v) -> (uses, v :: defs)
      | Ast.Alv (Ast.Lindex (name, i)) -> (expr_uses (name :: uses) i, defs))
    ([], []) args

(* Flattening: each statement becomes one or more nodes whose default
   successor is the next node in sequence; we fix up structured control
   flow as we go and resolve gotos at the end. Returns the index of the
   first node of the block, or [next] if the block is empty — so we
   always append a final sentinel exit node. *)
let rec flatten_block b (block : Ast.block) =
  List.iter (flatten_stmt b) block

and flatten_stmt b (s : Ast.stmt) =
  let src_label = s.label in
  match s.kind with
  | Decl (name, _, init) ->
    (* A declaration without an initialiser is a runtime no-op: lowering
       emits no instruction for it, so the frame slot keeps whatever
       value it already carried — around a loop back-edge, the value of
       the previous iteration. Treating the bare decl as a definition
       would kill liveness above it and wrongly trim the variable from
       capture sets at reconfiguration points inside the loop. Only an
       initialised decl defines. *)
    let uses, defs =
      match init with
      | Some e -> (expr_uses [] e, [ name ])
      | None -> ([], [])
    in
    ignore (new_node b ?src_label ~uses ~defs [ b.count + 1 ])
  | Assign (lv, e) ->
    let uses = expr_uses (lvalue_uses [] lv) e in
    ignore (new_node b ?src_label ~uses ~defs:(lvalue_defs lv) [ b.count + 1 ])
  | If (cond, then_b, else_b) ->
    let cond_idx =
      new_node b ?src_label ~uses:(expr_uses [] cond) ~defs:[] []
    in
    let then_start = b.count in
    flatten_block b then_b;
    let then_jump = new_node b ~uses:[] ~defs:[] [] in
    let else_start = b.count in
    flatten_block b else_b;
    let after = b.count in
    (List.nth (List.rev b.rev_nodes) cond_idx).succs <- [ then_start; else_start ];
    (List.nth (List.rev b.rev_nodes) then_jump).succs <- [ after ]
  | While (cond, body) ->
    let cond_idx =
      new_node b ?src_label ~uses:(expr_uses [] cond) ~defs:[] []
    in
    let body_start = b.count in
    flatten_block b body;
    let back_jump = new_node b ~uses:[] ~defs:[] [ cond_idx ] in
    ignore back_jump;
    let after = b.count in
    (List.nth (List.rev b.rev_nodes) cond_idx).succs <- [ body_start; after ]
  | CallS (name, args) ->
    let uses, defs = call_effects b name args in
    let call_ordinal = b.next_call_ordinal in
    b.next_call_ordinal <- call_ordinal + 1;
    ignore (new_node b ?src_label ~call_ordinal ~uses ~defs [ b.count + 1 ])
  | Return e ->
    let uses = match e with Some e -> expr_uses [] e | None -> [] in
    ignore (new_node b ?src_label ~uses ~defs:[] [])
  | Goto target ->
    let idx = new_node b ?src_label ~uses:[] ~defs:[] [] in
    b.gotos <- (idx, target) :: b.gotos
  | Print es ->
    ignore
      (new_node b ?src_label ~uses:(List.fold_left expr_uses [] es) ~defs:[]
         [ b.count + 1 ])
  | Sleep e ->
    ignore (new_node b ?src_label ~uses:(expr_uses [] e) ~defs:[] [ b.count + 1 ])
  | BuiltinS (_, args) ->
    let uses, defs = arg_effects args in
    ignore (new_node b ?src_label ~uses ~defs [ b.count + 1 ])
  | Skip -> ignore (new_node b ?src_label ~uses:[] ~defs:[] [ b.count + 1 ])

let analyze_with ?program (proc : Ast.proc) =
  let b =
    { rev_nodes = []; count = 0; next_call_ordinal = 0;
      labels = Hashtbl.create 8; gotos = []; program }
  in
  flatten_block b proc.body;
  (* sentinel exit node *)
  ignore (new_node b ~uses:[] ~defs:[] []);
  let nodes = Array.of_list (List.rev b.rev_nodes) in
  let n = Array.length nodes in
  (* Clamp fall-through successors past the end, resolve gotos. *)
  Array.iter
    (fun node -> node.succs <- List.filter (fun s -> s < n) node.succs)
    nodes;
  List.iter
    (fun (idx, target) ->
      match Hashtbl.find_opt b.labels target with
      | Some t -> nodes.(idx).succs <- [ t ]
      | None -> ())
    b.gotos;
  (* Backward fixpoint. *)
  let live_in = Array.make n [] in
  let live_out = Array.make n [] in
  let union a bs = List.sort_uniq String.compare (List.rev_append a bs) in
  let diff a b = List.filter (fun x -> not (List.mem x b)) a in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let node = nodes.(i) in
      let out = List.fold_left (fun acc s -> union acc live_in.(s)) [] node.succs in
      let inn = union (List.sort_uniq String.compare node.uses) (diff out node.defs) in
      if inn <> live_in.(i) || out <> live_out.(i) then begin
        live_in.(i) <- inn;
        live_out.(i) <- out;
        changed := true
      end
    done
  done;
  let params = List.map (fun (p : Ast.param) -> p.pname) proc.params in
  { nodes; live_in; live_out; params }

let analyze ?program proc = analyze_with ?program proc

let live_at_label t label =
  let found = ref None in
  Array.iteri
    (fun i node ->
      if node.src_label = Some label && !found = None then
        found := Some t.live_in.(i))
    t.nodes;
  !found

let live_at_entry t = if Array.length t.live_in = 0 then [] else t.live_in.(0)

let live_after_call t ordinal =
  let found = ref None in
  Array.iteri
    (fun i node ->
      if node.call_ordinal = Some ordinal && !found = None then
        found := Some t.live_out.(i))
    t.nodes;
  !found

let used_anywhere t =
  Array.fold_left
    (fun acc node ->
      List.sort_uniq String.compare (acc @ node.uses @ node.defs))
    [] t.nodes
