(** Virtual-time metrics and span registry.

    A registry collects three kinds of instruments, each keyed by a
    metric name plus a small label set ([("instance", "monitor")],
    [("route", "a->b")], ...):

    - {b counters} — monotonically increasing integers (messages routed,
      instructions executed, retransmissions);
    - {b gauges} — last-write-wins floats (queue depth, in-flight
      frames);
    - {b histograms} — log-scale (base-2 bucketed) distributions of
      float observations (latencies, sizes).

    It also records {b spans}: named intervals of virtual time arranged
    in trees, used to decompose a reconfiguration's disruption window
    into signal / drain / capture / translate / restore phases.

    The registry is deliberately passive: it never schedules events,
    never touches the simulation trace, and never reads wall-clock time.
    Every timestamp is supplied by the caller (from the engine's virtual
    clock), so attaching a registry cannot perturb a simulation — golden
    traces stay byte-identical with metrics on.

    Snapshots serialise deterministically: instruments are sorted by
    (name, labels), spans appear in creation order, and floats are
    printed with a fixed format. *)

type t

type labels = (string * string) list
(** Label sets are canonicalised (sorted by key) on every use, so
    [[("a","1");("b","2")]] and [[("b","2");("a","1")]] address the same
    instrument. *)

val create : unit -> t

val enabled_from_env : unit -> bool
(** [true] iff the [DRC_METRICS] environment variable is set to [1],
    [true] or [yes]. Used by the bus to auto-attach a registry so the
    whole test suite can run metrics-on. *)

(** {1 Instruments} *)

val incr : t -> ?labels:labels -> ?by:int -> string -> unit
val set_gauge : t -> ?labels:labels -> string -> float -> unit

val add_gauge : t -> ?labels:labels -> string -> float -> unit
(** Add to a gauge (creating it at 0); negative deltas allowed. *)

val observe : t -> ?labels:labels -> string -> float -> unit
(** Record one observation into a log-scale histogram. *)

val register_collector : t -> (t -> unit) -> unit
(** Register a callback run at the start of every {!snapshot_json} (in
    registration order) — the hook for sampling state held elsewhere
    (queue depths, unacked frame counts) without coupling that code to
    the snapshot cadence. *)

(** {1 Reading back} (primarily for tests) *)

val counter_value : t -> ?labels:labels -> string -> int
(** 0 if the counter was never incremented. *)

val gauge_value : t -> ?labels:labels -> string -> float option

val histogram_count : t -> ?labels:labels -> string -> int

val histogram_sum : t -> ?labels:labels -> string -> float
(** 0 if the histogram has no observations. *)

val histogram_buckets : t -> ?labels:labels -> string -> (int * int) list
(** The log-2 buckets as [(exponent, count)] pairs sorted by exponent:
    bucket [e] counts observations [v] with [2^e <= v < 2^(e+1)];
    exponent [min_int] collects [v <= 0]. Empty when the histogram does
    not exist. The raw material for windowed quantile estimates — diff
    two snapshots of the same histogram and feed the deltas to
    {!bucket_quantile}. *)

val bucket_quantile : q:float -> (int * int) list -> float option
(** Estimate the [q]-quantile (0 < q <= 1) from [(exponent, count)]
    bucket deltas: the upper bound [2^(e+1)] of the first bucket whose
    cumulative count reaches [q] of the total — a conservative
    (over-)estimate, appropriate for SLO ceilings. [None] when the
    total count is zero. *)

val counters : t -> (string * labels * int) list
(** All counters, sorted by (name, labels). *)

val gauges : t -> (string * labels * float) list
(** All gauges, sorted by (name, labels). Does not run collectors; call
    {!run_collectors} first for fresh sampled values. *)

val run_collectors : t -> unit

(** {1 Spans} *)

type span

val span : t -> ?attrs:labels -> kind:string -> start:float -> unit -> span
(** Open a new root span at virtual time [start]. *)

val child : span -> ?attrs:labels -> kind:string -> start:float -> unit -> span

val set_attr : span -> string -> string -> unit

val finish : span -> at:float -> unit
(** Close the span at virtual time [at]. Closing twice keeps the first
    end time. *)

val finish_with : span -> (unit -> float option) -> unit
(** Close the span with a thunk evaluated lazily (at snapshot or
    {!span_end} time) — for phases, like a clone's restore, that
    complete after the span is built. [None] leaves the span open (the
    thunk is retried on the next read). *)

val span_kind : span -> string
val span_start : span -> float

val span_end : span -> float option
(** Resolves a {!finish_with} thunk; [None] if the span is still open. *)

val span_duration : span -> float option
val span_children : span -> span list
(** In creation order. *)

val span_attrs : span -> labels
val roots : t -> span list

(** {1 Snapshot} *)

val snapshot_json : now:float -> t -> string
(** Serialise the whole registry to JSON. [now] (the engine's current
    virtual time) closes any still-open span for duration reporting and
    is echoed in the output. Runs registered collectors first. *)
