(* Passive metrics registry on virtual time. No engine, no trace, no
   wall clock: every timestamp comes in from the caller, so attaching a
   registry cannot perturb a simulation. *)

type labels = (string * string) list

let canon labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

type key = string * labels

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : (int, int ref) Hashtbl.t;
      (* bucket i counts observations v with 2^i <= v < 2^(i+1);
         min_int collects v <= 0 *)
}

type span_end = End_open | End_at of float | End_thunk of (unit -> float option)

type span = {
  sp_kind : string;
  sp_start : float;
  mutable sp_attrs : labels;
  mutable sp_end : span_end;
  mutable sp_children : span list;  (* reverse creation order *)
}

type t = {
  counters : (key, int ref) Hashtbl.t;
  gauges : (key, float ref) Hashtbl.t;
  hists : (key, hist) Hashtbl.t;
  mutable collectors : (t -> unit) list;  (* reverse registration order *)
  mutable roots : span list;              (* reverse creation order *)
}

let create () =
  { counters = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
    hists = Hashtbl.create 16;
    collectors = [];
    roots = [] }

let enabled_from_env () =
  match Sys.getenv_opt "DRC_METRICS" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* --- instruments --------------------------------------------------- *)

let incr t ?(labels = []) ?(by = 1) name =
  let key = (name, canon labels) in
  match Hashtbl.find_opt t.counters key with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters key (ref by)

let set_gauge t ?(labels = []) name v =
  let key = (name, canon labels) in
  match Hashtbl.find_opt t.gauges key with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges key (ref v)

let add_gauge t ?(labels = []) name v =
  let key = (name, canon labels) in
  match Hashtbl.find_opt t.gauges key with
  | Some r -> r := !r +. v
  | None -> Hashtbl.replace t.gauges key (ref v)

let bucket_of v =
  if v <= 0. then min_int
  else
    (* floor(log2 v), nudged so exact powers of two land in their own
       bucket despite rounding *)
    int_of_float (Float.floor ((Float.log v /. Float.log 2.) +. 1e-9))

let observe t ?(labels = []) name v =
  let key = (name, canon labels) in
  let h =
    match Hashtbl.find_opt t.hists key with
    | Some h -> h
    | None ->
      let h =
        { h_count = 0; h_sum = 0.; h_min = infinity; h_max = neg_infinity;
          h_buckets = Hashtbl.create 8 }
      in
      Hashtbl.replace t.hists key h;
      h
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  match Hashtbl.find_opt h.h_buckets b with
  | Some r -> Stdlib.incr r
  | None -> Hashtbl.replace h.h_buckets b (ref 1)

let register_collector t f = t.collectors <- f :: t.collectors

let run_collectors t = List.iter (fun f -> f t) (List.rev t.collectors)

let counter_value t ?(labels = []) name =
  match Hashtbl.find_opt t.counters (name, canon labels) with
  | Some r -> !r
  | None -> 0

let gauge_value t ?(labels = []) name =
  Option.map ( ! ) (Hashtbl.find_opt t.gauges (name, canon labels))

let histogram_count t ?(labels = []) name =
  match Hashtbl.find_opt t.hists (name, canon labels) with
  | Some h -> h.h_count
  | None -> 0

let histogram_sum t ?(labels = []) name =
  match Hashtbl.find_opt t.hists (name, canon labels) with
  | Some h -> h.h_sum
  | None -> 0.

let histogram_buckets t ?(labels = []) name =
  match Hashtbl.find_opt t.hists (name, canon labels) with
  | None -> []
  | Some h ->
    Hashtbl.fold (fun e r acc -> (e, !r) :: acc) h.h_buckets []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

let bucket_quantile ~q buckets =
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 buckets in
  if total = 0 || q <= 0. || q > 1. then None
  else
    let target = q *. float_of_int total in
    let rec walk cum = function
      | [] -> None
      | (e, n) :: rest ->
        let cum = cum + n in
        if float_of_int cum >= target -. 1e-9 then
          Some (if e = min_int then 0. else Float.pow 2. (float_of_int (e + 1)))
        else walk cum rest
    in
    walk 0 buckets

let sorted_entries tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (((na, la) : key), _) ((nb, lb), _) ->
         match String.compare na nb with 0 -> compare la lb | c -> c)

let counters t =
  List.map (fun ((name, labels), r) -> (name, labels, !r))
    (sorted_entries t.counters)

let gauges t =
  List.map (fun ((name, labels), r) -> (name, labels, !r))
    (sorted_entries t.gauges)

(* --- spans --------------------------------------------------------- *)

let span t ?(attrs = []) ~kind ~start () =
  let s =
    { sp_kind = kind; sp_start = start; sp_attrs = canon attrs;
      sp_end = End_open; sp_children = [] }
  in
  t.roots <- s :: t.roots;
  s

let child parent ?(attrs = []) ~kind ~start () =
  let s =
    { sp_kind = kind; sp_start = start; sp_attrs = canon attrs;
      sp_end = End_open; sp_children = [] }
  in
  parent.sp_children <- s :: parent.sp_children;
  s

let set_attr s k v = s.sp_attrs <- canon ((k, v) :: List.remove_assoc k s.sp_attrs)

let finish s ~at =
  match s.sp_end with End_open -> s.sp_end <- End_at at | _ -> ()

let finish_with s thunk =
  match s.sp_end with End_open -> s.sp_end <- End_thunk thunk | _ -> ()

let span_kind s = s.sp_kind
let span_start s = s.sp_start

let span_end s =
  match s.sp_end with
  | End_open -> None
  | End_at at -> Some at
  | End_thunk f -> (
    match f () with
    | Some at ->
      s.sp_end <- End_at at;
      Some at
    | None -> None (* keep the thunk: the phase may complete later *))

let span_duration s = Option.map (fun e -> e -. s.sp_start) (span_end s)
let span_children s = List.rev s.sp_children
let span_attrs s = s.sp_attrs
let roots t = List.rev t.roots

(* --- snapshot ------------------------------------------------------ *)

(* Hand-rolled JSON writer: deterministic field order, fixed float
   format, no dependencies. *)

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let buf_str b s =
  Buffer.add_char b '"';
  buf_escape b s;
  Buffer.add_char b '"'

let buf_float b v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" v)
  else Buffer.add_string b (Printf.sprintf "%.9g" v)

let buf_labels b labels =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_str b k;
      Buffer.add_char b ':';
      buf_str b v)
    labels;
  Buffer.add_char b '}'

let rec buf_span b ~now s =
  Buffer.add_string b "{\"kind\":";
  buf_str b s.sp_kind;
  Buffer.add_string b ",\"start\":";
  buf_float b s.sp_start;
  let ended, at =
    match span_end s with Some at -> (true, at) | None -> (false, now)
  in
  Buffer.add_string b ",\"end\":";
  buf_float b at;
  Buffer.add_string b ",\"duration\":";
  buf_float b (at -. s.sp_start);
  if not ended then Buffer.add_string b ",\"open\":true";
  if s.sp_attrs <> [] then begin
    Buffer.add_string b ",\"attrs\":";
    buf_labels b s.sp_attrs
  end;
  (match span_children s with
  | [] -> ()
  | children ->
    Buffer.add_string b ",\"children\":[";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char b ',';
        buf_span b ~now c)
      children;
    Buffer.add_char b ']');
  Buffer.add_char b '}'

let snapshot_json ~now t =
  run_collectors t;
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"now\":";
  buf_float b now;
  Buffer.add_string b ",\"counters\":[";
  List.iteri
    (fun i (((name, labels) : key), r) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":";
      buf_str b name;
      Buffer.add_string b ",\"labels\":";
      buf_labels b labels;
      Buffer.add_string b ",\"value\":";
      Buffer.add_string b (string_of_int !r);
      Buffer.add_char b '}')
    (sorted_entries t.counters);
  Buffer.add_string b "],\"gauges\":[";
  List.iteri
    (fun i (((name, labels) : key), r) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":";
      buf_str b name;
      Buffer.add_string b ",\"labels\":";
      buf_labels b labels;
      Buffer.add_string b ",\"value\":";
      buf_float b !r;
      Buffer.add_char b '}')
    (sorted_entries t.gauges);
  Buffer.add_string b "],\"histograms\":[";
  List.iteri
    (fun i (((name, labels) : key), h) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":";
      buf_str b name;
      Buffer.add_string b ",\"labels\":";
      buf_labels b labels;
      Buffer.add_string b ",\"count\":";
      Buffer.add_string b (string_of_int h.h_count);
      Buffer.add_string b ",\"sum\":";
      buf_float b h.h_sum;
      Buffer.add_string b ",\"min\":";
      buf_float b (if h.h_count = 0 then 0. else h.h_min);
      Buffer.add_string b ",\"max\":";
      buf_float b (if h.h_count = 0 then 0. else h.h_max);
      Buffer.add_string b ",\"buckets\":{";
      let buckets =
        Hashtbl.fold (fun k v acc -> (k, !v) :: acc) h.h_buckets []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      List.iteri
        (fun j (exp, n) ->
          if j > 0 then Buffer.add_char b ',';
          buf_str b (if exp = min_int then "le0" else string_of_int exp);
          Buffer.add_char b ':';
          Buffer.add_string b (string_of_int n))
        buckets;
      Buffer.add_string b "}}")
    (sorted_entries t.hists);
  Buffer.add_string b "],\"spans\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      buf_span b ~now s)
    (roots t);
  Buffer.add_string b "]}";
  Buffer.contents b
