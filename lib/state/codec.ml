exception Malformed of string

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

(* Value tags shared by abstract and native layouts. *)
let tag_int = 0
let tag_float = 1
let tag_bool = 2
let tag_str = 3
let tag_arr = 4
let tag_ptr = 5
let tag_null = 6

(* Type tags for heap block element types. *)
let rec write_ty buf (ty : Dr_lang.Ast.ty) =
  match ty with
  | Tint -> Bin_util.write_u8 buf 0
  | Tfloat -> Bin_util.write_u8 buf 1
  | Tbool -> Bin_util.write_u8 buf 2
  | Tstr -> Bin_util.write_u8 buf 3
  | Tarr t ->
    Bin_util.write_u8 buf 4;
    write_ty buf t
  | Tptr t ->
    Bin_util.write_u8 buf 5;
    write_ty buf t

let rec read_ty r : Dr_lang.Ast.ty =
  match Bin_util.read_u8 r with
  | 0 -> Tint
  | 1 -> Tfloat
  | 2 -> Tbool
  | 3 -> Tstr
  | 4 -> Tarr (read_ty r)
  | 5 -> Tptr (read_ty r)
  | tag -> malformed "unknown type tag %d" tag

(* A "layout" fixes byte order and integer width; the abstract format is
   the big-endian 64-bit instance. Native formats use the architecture's
   parameters. *)
type layout = { big : bool; word_bits : int }

let abstract_layout = { big = true; word_bits = 64 }

let layout_of_arch (a : Arch.t) =
  { big = (a.endian = Arch.Big); word_bits = a.word_bits }

let write_int layout buf v =
  if layout.word_bits = 32 then begin
    if not (v >= Int32.to_int Int32.min_int && v <= Int32.to_int Int32.max_int)
    then malformed "integer %d does not fit a 32-bit word" v;
    Bin_util.write_i32 buf ~big:layout.big v
  end
  else Bin_util.write_i64 buf ~big:layout.big (Int64.of_int v)

let read_int layout r =
  if layout.word_bits = 32 then Bin_util.read_i32 r ~big:layout.big
  else Int64.to_int (Bin_util.read_i64 r ~big:layout.big)

let write_string layout buf s =
  write_int layout buf (String.length s);
  Bin_util.write_bytes buf s

let read_string layout r =
  let n = read_int layout r in
  if n < 0 || n > Bin_util.remaining r then malformed "bad string length %d" n;
  Bin_util.read_bytes r n

let write_value layout buf (v : Value.t) =
  match v with
  | Vint i ->
    Bin_util.write_u8 buf tag_int;
    write_int layout buf i
  | Vfloat f ->
    Bin_util.write_u8 buf tag_float;
    Bin_util.write_f64 buf ~big:layout.big f
  | Vbool b ->
    Bin_util.write_u8 buf tag_bool;
    Bin_util.write_u8 buf (if b then 1 else 0)
  | Vstr s ->
    Bin_util.write_u8 buf tag_str;
    write_string layout buf s
  | Varr block ->
    Bin_util.write_u8 buf tag_arr;
    write_int layout buf block
  | Vptr (block, off) ->
    Bin_util.write_u8 buf tag_ptr;
    write_int layout buf block;
    write_int layout buf off
  | Vnull -> Bin_util.write_u8 buf tag_null

let read_value layout r : Value.t =
  let tag = Bin_util.read_u8 r in
  if tag = tag_int then Vint (read_int layout r)
  else if tag = tag_float then Vfloat (Bin_util.read_f64 r ~big:layout.big)
  else if tag = tag_bool then Vbool (Bin_util.read_u8 r <> 0)
  else if tag = tag_str then Vstr (read_string layout r)
  else if tag = tag_arr then Varr (read_int layout r)
  else if tag = tag_ptr then begin
    let block = read_int layout r in
    let off = read_int layout r in
    Vptr (block, off)
  end
  else if tag = tag_null then Vnull
  else malformed "unknown value tag %d" tag

(* Container format. Version 2 ("DRIMG2") wraps the body in a version
   byte and a CRC-32 trailer, so a flipped bit anywhere in transit is
   caught at decode instead of silently restoring garbage state.
   Version 3 is version 2 plus an opaque metadata string (a metrics
   snapshot, provenance, ...) between the version byte and the body —
   emitted only when the caller attaches one, so meta-less encodes stay
   byte-identical to version 2. Version 1 ("DRIMG1", no version byte,
   no checksum) is still accepted on decode — images frozen to disk by
   older builds keep loading. *)
let magic = "DRIMG2"
let magic_v1 = "DRIMG1"
let format_version = 2
let format_version_meta = 3

let encode_with ?meta layout (image : Image.t) =
  let payload =
    Bin_util.with_buffer @@ fun buf ->
    Bin_util.write_bytes buf magic;
    (match meta with
    | None -> Bin_util.write_u8 buf format_version
    | Some m ->
      Bin_util.write_u8 buf format_version_meta;
      write_string layout buf m);
    write_string layout buf image.source_module;
    write_int layout buf (List.length image.records);
    List.iter
      (fun (r : Image.record) ->
        write_int layout buf r.location;
        write_int layout buf (List.length r.values);
        List.iter (write_value layout buf) r.values)
      image.records;
    write_int layout buf (List.length image.heap);
    List.iter
      (fun (id, (block : Image.heap_block)) ->
        write_int layout buf id;
        write_ty buf block.elem_ty;
        write_int layout buf (Array.length block.cells);
        Array.iter (write_value layout buf) block.cells)
      image.heap;
    Buffer.to_bytes buf
  in
  let n = Bytes.length payload in
  let out = Bytes.create (n + 4) in
  Bytes.blit payload 0 out 0 n;
  Bytes.set_int32_be out n (Bin_util.crc32 payload);
  out

let decode_body layout r : Image.t =
  let source_module = read_string layout r in
  let n_records = read_int layout r in
  if n_records < 0 || n_records > 1_000_000 then
    malformed "bad record count %d" n_records;
  let records =
    List.init n_records (fun _ ->
        let location = read_int layout r in
        let n_values = read_int layout r in
        if n_values < 0 || n_values > 1_000_000 then
          malformed "bad value count %d" n_values;
        let values = List.init n_values (fun _ -> read_value layout r) in
        { Image.location; values })
  in
  let n_blocks = read_int layout r in
  if n_blocks < 0 || n_blocks > 1_000_000 then
    malformed "bad heap block count %d" n_blocks;
  let heap =
    List.init n_blocks (fun _ ->
        let id = read_int layout r in
        let elem_ty = read_ty r in
        let n = read_int layout r in
        if n < 0 || n > 10_000_000 then malformed "bad block length %d" n;
        let cells = Array.init n (fun _ -> read_value layout r) in
        (id, { Image.elem_ty; cells }))
  in
  if Bin_util.remaining r <> 0 then
    malformed "%d trailing bytes" (Bin_util.remaining r);
  Image.make ~source_module ~records ~heap

let starts_with data prefix =
  Bytes.length data >= String.length prefix
  && String.equal (Bytes.sub_string data 0 (String.length prefix)) prefix

let decode_with_full layout data : Image.t * string option =
  let ml = String.length magic in
  if starts_with data magic then begin
    let len = Bytes.length data in
    if len < ml + 1 + 4 then malformed "truncated image container";
    let payload = Bytes.sub data 0 (len - 4) in
    let stored = Bytes.get_int32_be data (len - 4) in
    let computed = Bin_util.crc32 payload in
    if not (Int32.equal stored computed) then
      malformed "checksum mismatch (stored %08lx, computed %08lx)" stored
        computed;
    let r = Bin_util.reader payload in
    ignore (Bin_util.read_bytes r ml);
    let version = Bin_util.read_u8 r in
    let meta =
      if version = format_version then None
      else if version = format_version_meta then Some (read_string layout r)
      else malformed "unsupported image version %d" version
    in
    (decode_body layout r, meta)
  end
  else if starts_with data magic_v1 then begin
    let r = Bin_util.reader data in
    ignore (Bin_util.read_bytes r ml);
    (decode_body layout r, None)
  end
  else
    malformed "bad magic %S"
      (Bytes.sub_string data 0 (min ml (Bytes.length data)))

let decode_with layout data : Image.t = fst (decode_with_full layout data)

let guarded f =
  try Ok (f ()) with
  | Malformed message -> Error message
  | Bin_util.Truncated -> Error "truncated image"

let encode_abstract ?meta image = encode_with ?meta abstract_layout image

let decode_abstract data = guarded (fun () -> decode_with abstract_layout data)

let decode_abstract_full data =
  guarded (fun () -> decode_with_full abstract_layout data)

module Wire = struct
  let write_int buf v = write_int abstract_layout buf v
  let read_int r = read_int abstract_layout r
  let write_string buf s = write_string abstract_layout buf s
  let read_string r = read_string abstract_layout r
  let write_value buf v = write_value abstract_layout buf v
  let read_value r = read_value abstract_layout r

  let guarded f = guarded f
end

module Native = struct
  let encode arch image =
    guarded (fun () -> encode_with (layout_of_arch arch) image)

  let decode arch data =
    guarded (fun () -> decode_with (layout_of_arch arch) data)

  let translate ~src ~dst data =
    match decode src data with
    | Error _ as e -> e
    | Ok image -> encode dst image

  let same_layout a b =
    let la = layout_of_arch a and lb = layout_of_arch b in
    la.big = lb.big && la.word_bits = lb.word_bits

  (* Zero-copy fast path for same-architecture moves: when the two
     layouts agree byte-for-byte the encoded container needs no
     translation, so the bytes ship as-is — no decode to an abstract
     value tree, no re-encode. Corruption is still caught: the receiver
     decodes (CRC check included) before restoring. *)
  let recode ~src ~dst data =
    if same_layout src dst then Ok data else translate ~src ~dst data
end

(* ------------------------------------------------- delta containers *)

(* "DRIMGD1": the delta-image container. Always the abstract layout (a
   delta crosses the bus like a full abstract image would), wrapped in
   the same CRC-32 trailer as "DRIMG2". The referenced base is
   identified by digest; the decoder only parses — resolving the base
   is the caller's job (restore path, recovery replay). *)
let delta_magic = "DRIMGD1"
let delta_version = 1

let encode_delta (d : Image.delta) =
  let layout = abstract_layout in
  let payload =
    Bin_util.with_buffer @@ fun buf ->
    Bin_util.write_bytes buf delta_magic;
    Bin_util.write_u8 buf delta_version;
    write_string layout buf d.Image.d_source_module;
    Bin_util.write_i64 buf ~big:layout.big d.Image.d_base_digest;
    write_int layout buf d.Image.d_record_count;
    write_int layout buf (List.length d.Image.d_slots);
    List.iter
      (fun (ri, vi, v) ->
        write_int layout buf ri;
        write_int layout buf vi;
        write_value layout buf v)
      d.Image.d_slots;
    write_int layout buf (List.length d.Image.d_heap_new);
    List.iter
      (fun (id, (block : Image.heap_block)) ->
        write_int layout buf id;
        write_ty buf block.elem_ty;
        write_int layout buf (Array.length block.cells);
        Array.iter (write_value layout buf) block.cells)
      d.Image.d_heap_new;
    write_int layout buf (List.length d.Image.d_heap_keep);
    List.iter (write_int layout buf) d.Image.d_heap_keep;
    Buffer.to_bytes buf
  in
  let n = Bytes.length payload in
  let out = Bytes.create (n + 4) in
  Bytes.blit payload 0 out 0 n;
  Bytes.set_int32_be out n (Bin_util.crc32 payload);
  out

let decode_delta_exn data : Image.delta =
  let layout = abstract_layout in
  let ml = String.length delta_magic in
  if not (starts_with data delta_magic) then
    malformed "bad delta magic %S"
      (Bytes.sub_string data 0 (min ml (Bytes.length data)));
  let len = Bytes.length data in
  if len < ml + 1 + 4 then malformed "truncated delta container";
  let payload = Bytes.sub data 0 (len - 4) in
  let stored = Bytes.get_int32_be data (len - 4) in
  let computed = Bin_util.crc32 payload in
  if not (Int32.equal stored computed) then
    malformed "delta checksum mismatch (stored %08lx, computed %08lx)" stored
      computed;
  let r = Bin_util.reader payload in
  ignore (Bin_util.read_bytes r ml);
  let version = Bin_util.read_u8 r in
  if version <> delta_version then
    malformed "unsupported delta version %d" version;
  let d_source_module = read_string layout r in
  let d_base_digest = Bin_util.read_i64 r ~big:layout.big in
  let d_record_count = read_int layout r in
  if d_record_count < 0 || d_record_count > 1_000_000 then
    malformed "bad delta record count %d" d_record_count;
  let n_slots = read_int layout r in
  if n_slots < 0 || n_slots > 1_000_000 then
    malformed "bad delta slot count %d" n_slots;
  let d_slots =
    List.init n_slots (fun _ ->
        let ri = read_int layout r in
        let vi = read_int layout r in
        let v = read_value layout r in
        (ri, vi, v))
  in
  let n_new = read_int layout r in
  if n_new < 0 || n_new > 1_000_000 then
    malformed "bad delta heap block count %d" n_new;
  let d_heap_new =
    List.init n_new (fun _ ->
        let id = read_int layout r in
        let elem_ty = read_ty r in
        let n = read_int layout r in
        if n < 0 || n > 10_000_000 then malformed "bad block length %d" n;
        let cells = Array.init n (fun _ -> read_value layout r) in
        (id, { Image.elem_ty; cells }))
  in
  let n_keep = read_int layout r in
  if n_keep < 0 || n_keep > 1_000_000 then
    malformed "bad delta keep count %d" n_keep;
  let d_heap_keep = List.init n_keep (fun _ -> read_int layout r) in
  if Bin_util.remaining r <> 0 then
    malformed "%d trailing bytes in delta" (Bin_util.remaining r);
  { Image.d_source_module; d_base_digest; d_record_count; d_slots;
    d_heap_new; d_heap_keep }

let decode_delta data = guarded (fun () -> decode_delta_exn data)
