exception Truncated

type reader = { data : bytes; mutable pos : int }

let reader data = { data; pos = 0 }

let remaining r = Bytes.length r.data - r.pos

let need r n = if remaining r < n then raise Truncated

let read_u8 r =
  need r 1;
  let v = Char.code (Bytes.get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

let read_i32 r ~big =
  need r 4;
  let raw =
    if big then Bytes.get_int32_be r.data r.pos
    else Bytes.get_int32_le r.data r.pos
  in
  r.pos <- r.pos + 4;
  Int32.to_int raw

let read_i64 r ~big =
  need r 8;
  let raw = if big then Bytes.get_int64_be r.data r.pos else Bytes.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  raw

let read_f64 r ~big = Int64.float_of_bits (read_i64 r ~big)

let read_bytes r n =
  need r n;
  let s = Bytes.sub_string r.data r.pos n in
  r.pos <- r.pos + n;
  s

let write_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let write_i32 buf ~big v =
  let v32 = Int32.of_int v in
  if big then Buffer.add_int32_be buf v32 else Buffer.add_int32_le buf v32

let write_i64 buf ~big v =
  if big then Buffer.add_int64_be buf v else Buffer.add_int64_le buf v

let write_f64 buf ~big v = write_i64 buf ~big (Int64.bits_of_float v)

let write_bytes buf s = Buffer.add_string buf s

(* ------------------------------------------------------------- crc32 *)

(* Table-driven CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the
   integrity trailer of the versioned image container. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 data =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFFl in
  Bytes.iter
    (fun ch ->
      let idx =
        Int32.to_int
          (Int32.logand
             (Int32.logxor !crc (Int32.of_int (Char.code ch)))
             0xFFl)
      in
      crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
    data;
  Int32.logxor !crc 0xFFFFFFFFl

(* ------------------------------------------------------- buffer pool *)

(* Small free-list of scratch buffers for the encode hot path: every
   capture/divulge on the migration path used to allocate a fresh
   [Buffer.t] per record. Buffers are cleared on take; oversized ones
   (a huge image inflates the backing store permanently) are dropped
   rather than retained. Encoding is single-threaded and non-reentrant
   in this codebase, so a plain list suffices. *)

let pool : Buffer.t list ref = ref []
let pool_capacity = 8
let pool_size = ref 0
let retain_limit = 1 lsl 16

let take_buffer () =
  match !pool with
  | buf :: rest ->
    pool := rest;
    decr pool_size;
    Buffer.clear buf;
    buf
  | [] -> Buffer.create 256

let return_buffer buf =
  if Buffer.length buf <= retain_limit && !pool_size < pool_capacity then begin
    pool := buf :: !pool;
    incr pool_size
  end

let with_buffer f =
  let buf = take_buffer () in
  match f buf with
  | v ->
    return_buffer buf;
    v
  | exception e ->
    return_buffer buf;
    raise e
