(** The abstract process-state image (paper §1.2).

    An image is what a prepared module divulges at a reconfiguration
    point: one {!record} per captured activation record — deepest frame
    first, [main] last — plus the transitively reachable heap blocks.
    Restoration consumes records LIFO (the clone's [main] restores first,
    taking the record its predecessor captured last).

    Temporary values, the program counter and call/return linkage are
    deliberately absent: resume locations are the integer edge labels of
    the reconfiguration graph, stored in each record's [location]. *)

type heap_block = { elem_ty : Dr_lang.Ast.ty; cells : Value.t array }

type record = { location : int; values : Value.t list }

type t = {
  source_module : string;   (** module the state was captured from *)
  records : record list;    (** capture order *)
  heap : (int * heap_block) list;  (** captured blocks, symbolic ids *)
}

val empty : source_module:string -> t

val push_record : t -> record -> t
(** Append a record (capture order). *)

val pop_record : t -> (record * t) option
(** Remove the most recently captured record — restoration order. *)

val depth : t -> int

val equal : t -> t -> bool

val digest : t -> int64
(** Structural 64-bit digest (FNV-1a mixing) over everything {!equal}
    compares. [equal a b] implies [digest a = digest b]; the scripts
    use it to verify a restored image end-to-end across
    encode/translate/decode ({!Dr_bus.Bus.deposit_state} [?expect]). *)

val pp : Format.formatter -> t -> unit

val value_size : Value.t -> int
(** Abstract size in bytes of one value (8 per scalar word, strings by
    length); used by the benchmarks to report image sizes. *)

val byte_size : t -> int

val gather_blocks :
  lookup:(int -> heap_block option) ->
  Value.t list ->
  (int * heap_block) list
(** Transitive closure of heap blocks reachable from the given values.
    [lookup] resolves a live block id; unknown ids are ignored (dangling
    pointers are the programmer's responsibility, as in the paper).
    Result is sorted by block id; shared blocks appear once. *)
