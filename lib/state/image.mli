(** The abstract process-state image (paper §1.2).

    An image is what a prepared module divulges at a reconfiguration
    point: one {!record} per captured activation record — deepest frame
    first, [main] last — plus the transitively reachable heap blocks.
    Restoration consumes records LIFO (the clone's [main] restores first,
    taking the record its predecessor captured last).

    Temporary values, the program counter and call/return linkage are
    deliberately absent: resume locations are the integer edge labels of
    the reconfiguration graph, stored in each record's [location]. *)

type heap_block = { elem_ty : Dr_lang.Ast.ty; cells : Value.t array }

type record = { location : int; values : Value.t list }

type t = {
  source_module : string;   (** module the state was captured from *)
  records : record list;    (** capture order *)
  heap : (int * heap_block) list;  (** captured blocks, symbolic ids *)
  mutable digest_memo : int64 option;
      (** cached {!digest}; construct through {!make}/{!empty} and never
          update [records]/[heap] through [{ t with ... }] without
          resetting it *)
}

val make :
  source_module:string ->
  records:record list ->
  heap:(int * heap_block) list ->
  t

val empty : source_module:string -> t

val push_record : t -> record -> t
(** Append a record (capture order). *)

val pop_record : t -> (record * t) option
(** Remove the most recently captured record — restoration order. *)

val depth : t -> int

val equal : t -> t -> bool

val digest : t -> int64
(** Structural 64-bit digest (FNV-1a mixing) over everything {!equal}
    compares. [equal a b] implies [digest a = digest b]; the scripts
    use it to verify a restored image end-to-end across
    encode/translate/decode ({!Dr_bus.Bus.deposit_state} [?expect]).
    Memoised in the handle: the first call hashes the payload, repeats
    are free (the deposit path re-checks the digest computed at
    capture time). *)

val pp : Format.formatter -> t -> unit

val value_size : Value.t -> int
(** Abstract size in bytes of one value (8 per scalar word, strings by
    length); used by the benchmarks to report image sizes. *)

val byte_size : t -> int

val gather_blocks :
  lookup:(int -> heap_block option) ->
  Value.t list ->
  (int * heap_block) list
(** Transitive closure of heap blocks reachable from the given values.
    [lookup] resolves a live block id; unknown ids are ignored (dangling
    pointers are the programmer's responsibility, as in the paper).
    Result is sorted by block id; shared blocks appear once. *)

(** {1 Delta images (pre-copy)}

    A delta is the dirtied subset of a capture relative to a base
    snapshot taken while the module was still serving (live pre-copy).
    Slots are addressed by (record index, value index) against the
    base's record layout; heap blocks are shipped whole when dirtied or
    new ([d_heap_new]) and pulled from the base by id otherwise
    ([d_heap_keep]). *)

type delta = {
  d_source_module : string;
  d_base_digest : int64;   (** digest of the base this delta applies to *)
  d_record_count : int;
  d_slots : (int * int * Value.t) list;
  d_heap_new : (int * heap_block) list;
  d_heap_keep : int list;
}

val diff :
  base:t ->
  masks:bool array list ->
  heap_dirty:(int -> bool) ->
  t ->
  delta option
(** [diff ~base ~masks ~heap_dirty final] builds the delta such that
    [apply_delta ~base] reproduces [final]. [masks] holds one dirty mask
    per record, in record order, from the machine's write barrier: a
    clean slot is {e guaranteed} to hold its base value, so only dirty
    slots are shipped and no value comparison is made. [None] on any
    structural mismatch (record count, locations, value counts) — the
    caller falls back to the full image. *)

val apply_delta : base:t -> delta -> t option
(** Reconstruct the full image. [None] if [base]'s digest does not match
    [d_base_digest] or the delta is structurally incompatible. *)

val delta_byte_size : delta -> int
(** Abstract wire size of the delta, comparable with {!byte_size}. *)
