(** Endian-aware binary readers/writers used by the state codecs. *)

exception Truncated
(** Raised by readers when the input ends prematurely. *)

type reader

val reader : bytes -> reader

val remaining : reader -> int

val read_u8 : reader -> int
val read_i32 : reader -> big:bool -> int
val read_i64 : reader -> big:bool -> int64
val read_f64 : reader -> big:bool -> float
val read_bytes : reader -> int -> string

val write_u8 : Buffer.t -> int -> unit
val write_i32 : Buffer.t -> big:bool -> int -> unit
val write_i64 : Buffer.t -> big:bool -> int64 -> unit
val write_f64 : Buffer.t -> big:bool -> float -> unit
val write_bytes : Buffer.t -> string -> unit

val crc32 : bytes -> int32
(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of the whole byte
    string — the integrity trailer of the versioned image container. *)

val with_buffer : (Buffer.t -> 'a) -> 'a
(** Run [f] with a pooled scratch buffer (cleared before use, returned
    to the pool afterwards, even on exceptions). The buffer must not
    escape [f] — extract the contents with [Buffer.to_bytes] /
    [Buffer.contents] before returning. Not reentrant-safe beyond the
    pool simply handing out a fresh buffer when empty. *)
