type heap_block = { elem_ty : Dr_lang.Ast.ty; cells : Value.t array }

type record = { location : int; values : Value.t list }

type t = {
  source_module : string;
  records : record list;
  heap : (int * heap_block) list;
}

let empty ~source_module = { source_module; records = []; heap = [] }

let push_record t record = { t with records = t.records @ [ record ] }

let pop_record t =
  match List.rev t.records with
  | [] -> None
  | last :: rev_rest -> Some (last, { t with records = List.rev rev_rest })

let depth t = List.length t.records

let equal_block a b =
  Dr_lang.Ast.equal_ty a.elem_ty b.elem_ty
  && Array.length a.cells = Array.length b.cells
  && Array.for_all2 Value.equal a.cells b.cells

let equal_record a b =
  a.location = b.location
  && List.length a.values = List.length b.values
  && List.for_all2 Value.equal a.values b.values

let equal a b =
  String.equal a.source_module b.source_module
  && List.length a.records = List.length b.records
  && List.for_all2 equal_record a.records b.records
  && List.length a.heap = List.length b.heap
  && List.for_all2
       (fun (i, ba) (j, bb) -> i = j && equal_block ba bb)
       a.heap b.heap

let pp ppf t =
  Fmt.pf ppf "@[<v>image of %s (%d records, %d heap blocks)" t.source_module
    (List.length t.records) (List.length t.heap);
  List.iteri
    (fun i r ->
      Fmt.pf ppf "@,  record %d: location=%d [%a]" i r.location
        (Fmt.list ~sep:(Fmt.any ", ") Value.pp)
        r.values)
    t.records;
  List.iter
    (fun (id, block) ->
      Fmt.pf ppf "@,  block #%d: %s[%d]" id
        (Dr_lang.Pretty.ty_to_string block.elem_ty)
        (Array.length block.cells))
    t.heap;
  Fmt.pf ppf "@]"

(* Structural 64-bit digest (FNV-1a style mixing) over everything
   [equal] compares: the module name, each record's location and
   values, and each heap block's id, element type and cells. Equal
   images digest equally; a restore can therefore verify that the image
   it feeds is the image that was captured ([Bus.deposit_state
   ?expect]). This is an end-to-end check above the container's CRC-32:
   it survives encode/translate/decode across architectures. *)
let digest t =
  let h = ref 0xcbf29ce484222325L in
  let mix v = h := Int64.mul (Int64.logxor !h v) 0x100000001b3L in
  let mix_int i = mix (Int64.of_int i) in
  let mix_string s =
    mix_int (String.length s);
    String.iter (fun c -> mix (Int64.of_int (Char.code c))) s
  in
  let mix_value = function
    | Value.Vint i ->
      mix_int 1;
      mix_int i
    | Value.Vfloat f ->
      mix_int 2;
      mix (Int64.bits_of_float f)
    | Value.Vbool b ->
      mix_int 3;
      mix_int (if b then 1 else 0)
    | Value.Vstr s ->
      mix_int 4;
      mix_string s
    | Value.Varr block ->
      mix_int 5;
      mix_int block
    | Value.Vptr (block, off) ->
      mix_int 6;
      mix_int block;
      mix_int off
    | Value.Vnull -> mix_int 7
  in
  let rec mix_ty = function
    | Dr_lang.Ast.Tint -> mix_int 1
    | Dr_lang.Ast.Tfloat -> mix_int 2
    | Dr_lang.Ast.Tbool -> mix_int 3
    | Dr_lang.Ast.Tstr -> mix_int 4
    | Dr_lang.Ast.Tarr ty ->
      mix_int 5;
      mix_ty ty
    | Dr_lang.Ast.Tptr ty ->
      mix_int 6;
      mix_ty ty
  in
  mix_string t.source_module;
  mix_int (List.length t.records);
  List.iter
    (fun r ->
      mix_int r.location;
      mix_int (List.length r.values);
      List.iter mix_value r.values)
    t.records;
  mix_int (List.length t.heap);
  List.iter
    (fun (id, block) ->
      mix_int id;
      mix_ty block.elem_ty;
      mix_int (Array.length block.cells);
      Array.iter mix_value block.cells)
    t.heap;
  !h

let value_size = function
  | Value.Vint _ | Value.Vfloat _ | Value.Vbool _ -> 8
  | Value.Vstr s -> 8 + String.length s
  | Value.Varr _ -> 8
  | Value.Vptr _ -> 16
  | Value.Vnull -> 8

let byte_size t =
  let record_size r =
    8 + List.fold_left (fun acc v -> acc + value_size v) 0 r.values
  in
  let block_size (_, b) =
    16 + Array.fold_left (fun acc v -> acc + value_size v) 0 b.cells
  in
  List.fold_left (fun acc r -> acc + record_size r) 0 t.records
  + List.fold_left (fun acc b -> acc + block_size b) 0 t.heap

let gather_blocks ~lookup roots =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec visit_value v =
    match v with
    | Value.Varr block | Value.Vptr (block, _) -> visit_block block
    | Value.Vint _ | Value.Vfloat _ | Value.Vbool _ | Value.Vstr _ | Value.Vnull
      ->
      ()
  and visit_block id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      match lookup id with
      | None -> ()
      | Some block ->
        acc := (id, block) :: !acc;
        Array.iter visit_value block.cells
    end
  in
  List.iter visit_value roots;
  List.sort (fun (a, _) (b, _) -> compare a b) !acc
